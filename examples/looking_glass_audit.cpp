// Looking-glass walkthrough: the operational surface of the EONA plane.
//
// Shows what a provider actually serves and what a peer actually sees:
// a report rendered as JSON (the human/debug view), the same report on the
// binary wire, per-peer policy narrowing, injected staleness, and the §5
// trust auditor catching an InfP that shades the truth.
//
//   $ ./looking_glass_audit
#include <cstdio>

#include "eona/audit.hpp"
#include "eona/endpoint.hpp"
#include "eona/json.hpp"
#include "eona/registry.hpp"
#include "eona/wire.hpp"

using namespace eona;

int main() {
  core::ProviderRegistry registry;
  ProviderId isp = registry.register_provider(core::ProviderKind::kInfP,
                                              "access-isp");
  ProviderId vod = registry.register_provider(core::ProviderKind::kAppP,
                                              "vod-appp");

  // --- the InfP's current report --------------------------------------------
  core::I2AReport report;
  report.from = isp;
  report.generated_at = 3600.0;
  core::PeeringStatus b;
  b.peering = PeeringId(0);
  b.isp = IspId(0);
  b.cdn = CdnId(0);
  b.capacity = mbps(45);
  b.utilization = 0.97;
  b.congested = true;
  b.selected = true;
  core::PeeringStatus c;
  c.peering = PeeringId(1);
  c.isp = IspId(0);
  c.cdn = CdnId(0);
  c.capacity = mbps(400);
  c.utilization = 0.08;
  report.peerings = {b, c};
  core::CongestionSignal signal;
  signal.isp = IspId(0);
  signal.scope = core::CongestionScope::kPeering;
  signal.peering = PeeringId(0);
  signal.severity = 0.85;
  report.congestion.push_back(signal);

  std::printf("--- the looking glass, human view (JSON) ---\n%s\n\n",
              core::to_json(report).c_str());

  core::WireBytes frame = core::encode(report);
  std::printf("--- the same report on the wire: %zu bytes, kind=%s, "
              "round-trip %s ---\n\n",
              frame.size(),
              core::peek_kind(frame) == core::MessageKind::kI2A ? "I2A" : "?",
              core::decode_i2a(frame) == report ? "intact" : "CORRUPT");

  // --- per-peer policy + staleness --------------------------------------------
  core::I2AEndpoint glass(isp);
  core::I2APolicy narrow;
  narrow.share_peering_capacity = false;  // this peer doesn't get capacities
  glass.authorize(vod, registry.mint_token(isp, vod), narrow,
                  /*delay=*/30.0);
  glass.publish(report, 3600.0);

  auto at_publish = glass.query(vod, registry.mint_token(isp, vod), 3605.0);
  std::printf("query 5 s after publish : %s (30 s staleness injected)\n",
              at_publish ? "report" : "nothing visible yet");
  auto later = glass.query(vod, registry.mint_token(isp, vod), 3640.0);
  std::printf("query 40 s after publish: %zu peerings, capacity field = %.0f "
              "(blinded by policy)\n\n",
              later->peerings.size(), later->peerings[0].capacity);

  // --- auditing a peer that shades the truth -----------------------------------
  std::printf("--- trust auditor: honest vs lying congestion claims ---\n");
  for (bool lying : {false, true}) {
    core::InterfaceAuditor auditor;
    for (int epoch = 0; epoch < 30; ++epoch) {
      bool truly_congested = epoch % 2 == 0;
      core::I2AReport claim;
      claim.from = isp;
      core::PeeringStatus p = b;
      p.congested = lying ? false : truly_congested;  // liar always denies
      claim.peerings = {p};

      core::CdnEvidence evidence;
      evidence.cdn = CdnId(0);
      evidence.intended_bitrate = mbps(3);
      evidence.sessions = 40;
      evidence.mean_bitrate = truly_congested ? mbps(0.8) : mbps(2.95);
      evidence.mean_buffering = truly_congested ? 0.12 : 0.001;
      auditor.audit(claim, {evidence});
    }
    std::printf("  %-7s peer: %llu/%llu claims contradicted, trust=%.3f%s\n",
                lying ? "lying" : "honest",
                static_cast<unsigned long long>(auditor.contradictions()),
                static_cast<unsigned long long>(auditor.claims_checked()),
                auditor.trust(), auditor.trusted() ? "" : "  << distrusted");
  }
  return 0;
}
