// Figure 5 walkthrough: control loops chasing each other across peering
// points, and how EONA information breaks the cycle.
//
//   $ ./peering_oscillation
#include <cstdio>

#include "scenarios/oscillation.hpp"

using namespace eona;
using scenarios::ControlMode;

int main() {
  scenarios::OscillationConfig config;
  std::printf("Fig 5 world: X@B=%.0fM (preferred), X@C=%.0fM, Y@C=%.0fM, "
              "%.2f sessions/s x %.0fs videos\n\n",
              config.capacity_b / 1e6, config.capacity_cx / 1e6,
              config.capacity_cy / 1e6, config.arrival_rate,
              config.video_duration);
  std::printf("%-9s %8s %8s %8s %8s %7s %7s %6s %9s %9s\n", "mode",
              "app-sw", "isp-sw", "app-rev", "isp-rev", "cycle", "conv",
              "green", "buffering", "bitrate");

  for (ControlMode mode :
       {ControlMode::kBaseline, ControlMode::kEona, ControlMode::kOracle}) {
    config.mode = mode;
    scenarios::OscillationResult r = scenarios::run_oscillation(config);
    std::printf("%-9s %8zu %8zu %8zu %8zu %7s %7s %6s %9.4f %8.2fM\n",
                scenarios::to_string(mode), r.appp_switches, r.infp_switches,
                r.appp_reversals, r.infp_reversals, r.cycling ? "yes" : "no",
                r.converged ? "yes" : "no", r.green_path ? "yes" : "no",
                r.qoe.mean_buffering, r.qoe.mean_bitrate / 1e6);

    if (mode == ControlMode::kBaseline) {
      std::printf("\n  baseline knob timeline (primary cdn / X egress):\n");
      const auto& primary = r.metrics.series("primary_cdn");
      const auto& egress = r.metrics.series("x_egress");
      for (const auto& s : primary.resample(0, 1500, 120)) {
        std::printf("    t=%5.0fs  primary=cdn%d  X-egress=peering%d\n", s.t,
                    static_cast<int>(s.value),
                    static_cast<int>(egress.value_at(s.t)));
      }
      std::printf("\n");
    }
  }
  return 0;
}
