// §2/§5 walkthrough: server energy management with and without application
// visibility. Sweeps the scale-down aggressiveness and prints the
// energy-saved vs QoE frontier for the blind (baseline) and A2I-guarded
// (EONA) controllers.
//
//   $ ./server_energy
#include <cstdio>

#include "scenarios/energy.hpp"

using namespace eona;

int main() {
  scenarios::EnergyScenarioConfig config;
  std::printf("Energy: %zu servers x %.0f Mbps, day=%.2f/s night=%.2f/s, "
              "%zu cycles x %.0fs phases\n\n",
              config.servers, config.server_capacity / 1e6, config.day_rate,
              config.night_rate, config.cycles, config.phase_length);
  std::printf("%-9s %10s %8s %9s %10s %9s %7s %6s\n", "mode", "scaledown",
              "saved%", "online", "buffering", "nightbuf", "engage", "wakes");

  for (double aggressiveness : {0.25, 0.40, 0.55, 0.70}) {
    for (bool eona : {false, true}) {
      config.eona = eona;
      config.scale_down_load = aggressiveness;
      scenarios::EnergyScenarioResult r = scenarios::run_energy(config);
      std::printf("%-9s %10.2f %7.1f%% %9.2f %10.4f %9.4f %7.3f %6llu\n",
                  eona ? "eona" : "baseline", aggressiveness,
                  100.0 * r.saved_fraction, r.mean_online,
                  r.qoe.mean_buffering, r.night_qoe.mean_buffering,
                  r.qoe.mean_engagement,
                  static_cast<unsigned long long>(r.wakes));
    }
  }
  return 0;
}
