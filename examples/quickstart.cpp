// Quickstart: the smallest complete EONA world.
//
// Builds a two-CDN delivery chain over an access ISP, runs a handful of
// adaptive video sessions in baseline and EONA modes, and shows the two
// EONA interfaces in action -- including what actually crosses the wire.
//
//   $ ./quickstart
#include <cstdio>

#include "app/content_catalog.hpp"
#include "app/session_pool.hpp"
#include "app/video_player.hpp"
#include "control/appp.hpp"
#include "control/infp.hpp"
#include "eona/wire.hpp"
#include "net/peering.hpp"
#include "net/transfer.hpp"
#include "scenarios/common.hpp"

using namespace eona;

int main() {
  // --- 1. a world: clients behind an access ISP, two CDNs ------------------
  sim::Scheduler sched;
  net::Topology topo;
  NodeId client = topo.add_node(net::NodeKind::kClientPop, "clients");
  NodeId edge = topo.add_node(net::NodeKind::kRouter, "isp-edge");
  NodeId srv1 = topo.add_node(net::NodeKind::kCdnServer, "cdn1-srv");
  NodeId srv2 = topo.add_node(net::NodeKind::kCdnServer, "cdn2-srv");
  NodeId origin = topo.add_node(net::NodeKind::kOrigin, "origin");

  LinkId access = topo.add_link(edge, client, mbps(50), milliseconds(5));
  LinkId peer1 = topo.add_link(srv1, edge, mbps(200), milliseconds(8));
  LinkId peer2 = topo.add_link(srv2, edge, mbps(200), milliseconds(8));
  topo.add_link(origin, srv1, mbps(100), milliseconds(20));
  topo.add_link(origin, srv2, mbps(100), milliseconds(20));

  net::Network network(topo);
  net::TransferManager transfers(sched, network);
  net::Routing routing(topo);
  net::PeeringBook peering(topo);
  IspId isp(0);

  // --- 2. the delivery ecosystem --------------------------------------------
  app::ContentCatalog catalog = app::ContentCatalog::videos(8, 60.0);
  app::Cdn cdn1(CdnId(0), "cdn-1", origin);
  app::Cdn cdn2(CdnId(1), "cdn-2", origin);
  ServerId s1 = cdn1.add_server(srv1, peer1, 8);
  cdn2.add_server(srv2, peer2, 8);
  peering.add(isp, cdn1.id(), peer1, "cdn1@edge");
  peering.add(isp, cdn2.id(), peer2, "cdn2@edge");
  cdn1.warm_cache(s1, {ContentId(0), ContentId(1)});
  app::CdnDirectory directory;
  directory.add(&cdn1);
  directory.add(&cdn2);

  // --- 3. control planes and the brokered EONA exchange ---------------------
  core::ProviderRegistry registry;
  ProviderId appp_id =
      registry.register_provider(core::ProviderKind::kAppP, "video-appp");
  ProviderId infp_id =
      registry.register_provider(core::ProviderKind::kInfP, "access-isp");

  core::Exchange exchange(registry);
  exchange.register_appp(appp_id);
  exchange.register_infp(infp_id);

  control::AppPController appp(sched, network, directory, appp_id);
  control::InfPController infp(sched, network, routing, peering, isp, infp_id,
                               {access});
  infp.attach_cdn(&cdn1);
  infp.attach_cdn(&cdn2);
  appp.bind_exchange(core::ExchangeEndpoint(&exchange, appp_id));
  infp.bind_exchange(core::ExchangeEndpoint(&exchange, infp_id));
  exchange.wire(appp_id, infp_id);  // broker mints both bearer tokens
  infp.subscribe_a2i(appp_id);
  appp.subscribe_i2a(infp_id);
  appp.set_eona_enabled(true);
  infp.set_eona_enabled(true);
  appp.start();
  infp.start();

  // --- 4. a few video sessions ----------------------------------------------
  app::SessionPool pool(sched, &network);
  for (int i = 0; i < 6; ++i) {
    SessionId session(static_cast<SessionId::rep_type>(i));
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content(static_cast<ContentId::rep_type>(i % 4));
    sched.schedule_at(5.0 * i, [&, session, dims, content] {
      pool.spawn([&, session, dims,
                  content](app::VideoPlayer::DoneCallback done) {
        return std::make_unique<app::VideoPlayer>(
            sched, transfers, network, routing, directory, appp.brain(),
            &appp.collector(), app::PlayerConfig{}, session, dims, client,
            catalog.item(content), qoe::EngagementModel{}, std::move(done));
      });
    });
  }

  sched.run_until(180.0);
  pool.abort_all();
  sched.run_until(181.0);

  // --- 5. results -------------------------------------------------------------
  scenarios::QoeSummary qoe = scenarios::QoeSummary::from(pool.summaries());
  std::printf("sessions finished : %zu\n", qoe.sessions);
  std::printf("mean buffering    : %.4f\n", qoe.mean_buffering);
  std::printf("mean bitrate      : %.2f Mbps\n", qoe.mean_bitrate / 1e6);
  std::printf("mean join time    : %.2f s\n", qoe.mean_join_time);
  std::printf("mean engagement   : %.3f\n", qoe.mean_engagement);
  std::printf("beacons collected : %llu\n",
              static_cast<unsigned long long>(
                  appp.collector().beacon_count()));

  // --- 6. what crossed the EONA interfaces -----------------------------------
  core::A2IReport a2i = appp.build_a2i_report();
  core::I2AReport i2a = infp.build_i2a_report();
  std::printf("\nA2I report: %zu QoE groups, %zu forecasts\n",
              a2i.groups.size(), a2i.forecasts.size());
  for (const auto& g : a2i.groups) {
    if (g.server.valid()) continue;
    std::printf("  isp=%u cdn=%u  buffering=%.4f bitrate=%.2fMbps n=%llu\n",
                g.isp.value(), g.cdn.value(), g.mean_buffering_ratio,
                g.mean_bitrate / 1e6,
                static_cast<unsigned long long>(g.sessions));
  }
  std::printf("I2A report: %zu peerings, %zu server hints, %zu signals\n",
              i2a.peerings.size(), i2a.server_hints.size(),
              i2a.congestion.size());

  core::WireBytes frame = core::encode(a2i);
  core::A2IReport round_trip = core::decode_a2i(frame);
  std::printf("wire round-trip   : %zu bytes, %s\n", frame.size(),
              round_trip == a2i ? "intact" : "CORRUPT");
  return 0;
}
