// Figure 4 walkthrough: inferring web QoE from network metrics vs receiving
// it directly over A2I, across radio-noise levels.
//
//   $ ./cellular_web_inference
#include <cstdio>

#include "scenarios/cellular_web.hpp"

using namespace eona;

int main() {
  scenarios::CellularWebConfig config;
  std::printf("Cellular web QoE: %zu sessions over %zu sectors, "
              "%2.0f%% labelled panel, k=%llu\n\n",
              config.sessions, config.sectors,
              100.0 * config.labeled_fraction,
              static_cast<unsigned long long>(config.k_anonymity));
  std::printf("%-6s %9s | %9s %9s | %9s %9s | %8s %8s\n", "noise", "truePLT",
              "inf-MAE", "a2i-MAE", "inf-gMAE", "a2i-gMAE", "inf-rank",
              "a2i-rank");

  for (double noise : {0.0, 0.25, 0.5, 1.0}) {
    config.feature_noise = noise;
    scenarios::CellularWebResult r = scenarios::run_cellular_web(config);
    std::printf("%-6.1f %8.2fs | %8.2fs %8.2fs | %8.3fs %8.3fs | %8.3f %8.3f\n",
                noise, r.mean_true_plt, r.inference_mae, r.a2i_mae,
                r.inference_group_mae, r.a2i_group_mae,
                r.inference_rank_corr, r.a2i_rank_corr);
  }
  std::printf("\n(noise = InfP feature-measurement noise; inference = ridge regression on passive network features; "
              "a2i = direct k-anonymous group aggregates)\n");
  return 0;
}
