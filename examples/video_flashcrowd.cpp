// Figure 3 walkthrough: a flash crowd congests the access ISP.
//
// Runs the same flash crowd three times -- baseline (trial-and-error CDN
// switching), EONA (I2A congestion attribution -> bitrate-down), and the
// omniscient oracle -- and prints the QoE comparison plus a timeline.
//
//   $ ./video_flashcrowd [crowd_background_fraction]
#include <cstdio>
#include <cstdlib>

#include "scenarios/flashcrowd.hpp"

using namespace eona;
using scenarios::ControlMode;

int main(int argc, char** argv) {
  scenarios::FlashCrowdConfig config;
  if (argc > 1) config.crowd_background_fraction = std::atof(argv[1]);

  std::printf("Flash crowd: access=%.0f Mbps, videos=%.2f/s, background "
              "surge=%.0f%% of access during [%.0f, %.0f] s\n\n",
              config.access_capacity / 1e6, config.arrival_rate,
              100.0 * config.crowd_background_fraction, config.crowd_start,
              config.crowd_end);
  std::printf("%-9s %9s %10s %9s %7s %7s %8s %8s\n", "mode", "sessions",
              "buffering", "bitrate", "joins", "engage", "cdn-sw",
              "peak-stall");

  for (ControlMode mode :
       {ControlMode::kBaseline, ControlMode::kEona, ControlMode::kOracle}) {
    config.mode = mode;
    scenarios::FlashCrowdResult r = scenarios::run_flash_crowd(config);
    std::printf("%-9s %9zu %10.4f %8.2fM %6.2fs %7.3f %8llu %8.2f\n",
                scenarios::to_string(mode), r.crowd_qoe.sessions,
                r.crowd_qoe.mean_buffering, r.crowd_qoe.mean_bitrate / 1e6,
                r.crowd_qoe.mean_join_time, r.crowd_qoe.mean_engagement,
                static_cast<unsigned long long>(r.crowd_qoe.cdn_switches),
                r.peak_stalled_fraction);

    if (mode == ControlMode::kEona) {
      std::printf("\n  EONA timeline (stalled fraction / mean bitrate):\n");
      for (const auto& s :
           r.metrics.series("stalled_fraction").resample(0, 720, 60)) {
        double bitrate = r.metrics.series("mean_bitrate").value_at(s.t);
        std::printf("    t=%4.0fs  stalled=%.2f  bitrate=%.2fM\n", s.t,
                    s.value, bitrate / 1e6);
      }
      std::printf("\n");
    }
  }
  return 0;
}
