// Property tests for max-min fair allocation.
//
// The allocation is max-min fair iff (a) it is feasible (no link over
// capacity, no flow over demand) and (b) every flow is either
// demand-satisfied or crosses a *bottleneck* link: a saturated link on which
// it has the maximal rate. These invariants are checked on hand-built
// cases and on randomly generated instances across a parameterized sweep.
#include "net/fairshare.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/rng.hpp"

namespace eona::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = 1e-6;

/// Checks feasibility + the bottleneck characterisation of max-min fairness.
void expect_max_min(const Topology& topo, const std::vector<FlowSpec>& flows,
                    const std::vector<BitsPerSecond>& rates) {
  ASSERT_EQ(rates.size(), flows.size());

  std::vector<double> load(topo.link_count(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(rates[f], -kTol);
    EXPECT_LE(rates[f], flows[f].demand + kTol) << "flow " << f;
    for (LinkId l : flows[f].path) load[l.value()] += rates[f];
  }
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    double cap = topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
    EXPECT_LE(load[l], cap * (1 + 1e-9) + kTol) << "link " << l;
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (rates[f] >= flows[f].demand - kTol) continue;  // demand-satisfied
    bool has_bottleneck = false;
    for (LinkId l : flows[f].path) {
      double cap = topo.link(l).capacity;
      if (load[l.value()] < cap - std::max(kTol, 1e-9 * cap)) continue;
      // Saturated; is this flow maximal on it?
      bool maximal = true;
      for (std::size_t g = 0; g < flows.size(); ++g) {
        if (g == f) continue;
        for (LinkId gl : flows[g].path)
          if (gl == l && rates[g] > rates[f] + kTol) maximal = false;
      }
      if (maximal) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "unsatisfied flow " << f
                                << " lacks a bottleneck (rate " << rates[f]
                                << ")";
  }
}

/// Single shared link, equal elastic flows -> equal split.
TEST(MaxMin, EqualSplitOnSharedLink) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId l = topo.add_link(a, b, mbps(30), 0.0);
  std::vector<FlowSpec> flows(3, FlowSpec{{l}, kInf});
  auto rates = max_min_allocation(topo, flows);
  for (double r : rates) EXPECT_NEAR(r, mbps(10), kTol);
  expect_max_min(topo, flows, rates);
}

TEST(MaxMin, DemandCapsFreeCapacityForOthers) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId l = topo.add_link(a, b, mbps(30), 0.0);
  std::vector<FlowSpec> flows{
      FlowSpec{{l}, mbps(4)},   // capped well below the equal share
      FlowSpec{{l}, kInf},
      FlowSpec{{l}, kInf},
  };
  auto rates = max_min_allocation(topo, flows);
  EXPECT_NEAR(rates[0], mbps(4), kTol);
  EXPECT_NEAR(rates[1], mbps(13), kTol);
  EXPECT_NEAR(rates[2], mbps(13), kTol);
  expect_max_min(topo, flows, rates);
}

TEST(MaxMin, MultiLinkBottleneckHierarchy) {
  // Classic 3-flow example: flow0 crosses both links, flow1 only link1,
  // flow2 only link2. cap1 = 10, cap2 = 30. Max-min: flow0 and flow1 get 5
  // (link1 bottleneck); flow2 gets 25.
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  NodeId c = topo.add_node(NodeKind::kRouter, "c");
  LinkId l1 = topo.add_link(a, b, mbps(10), 0.0);
  LinkId l2 = topo.add_link(b, c, mbps(30), 0.0);
  std::vector<FlowSpec> flows{
      FlowSpec{{l1, l2}, kInf},
      FlowSpec{{l1}, kInf},
      FlowSpec{{l2}, kInf},
  };
  auto rates = max_min_allocation(topo, flows);
  EXPECT_NEAR(rates[0], mbps(5), kTol);
  EXPECT_NEAR(rates[1], mbps(5), kTol);
  EXPECT_NEAR(rates[2], mbps(25), kTol);
  expect_max_min(topo, flows, rates);
}

TEST(MaxMin, ZeroDemandFlowsGetZero) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId l = topo.add_link(a, b, mbps(10), 0.0);
  std::vector<FlowSpec> flows{FlowSpec{{l}, 0.0}, FlowSpec{{l}, kInf}};
  auto rates = max_min_allocation(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_NEAR(rates[1], mbps(10), kTol);
}

TEST(MaxMin, LocalFlowGetsItsDemand) {
  Topology topo;
  std::vector<FlowSpec> flows{FlowSpec{{}, mbps(7)}};
  auto rates = max_min_allocation(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], mbps(7));
}

TEST(MaxMin, LocalElasticFlowIsAContractViolation) {
  Topology topo;
  std::vector<FlowSpec> flows{FlowSpec{{}, kInf}};
  EXPECT_THROW(max_min_allocation(topo, flows), ContractViolation);
}

TEST(MaxMin, NoFlowsNoProblem) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  topo.add_link(a, b, mbps(10), 0.0);
  EXPECT_TRUE(max_min_allocation(topo, {}).empty());
}

TEST(MaxMin, DynamicCapacitiesOverrideTopology) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId l = topo.add_link(a, b, mbps(10), 0.0);
  std::vector<FlowSpec> flows{FlowSpec{{l}, kInf}};
  std::vector<BitsPerSecond> caps{mbps(3)};
  auto rates = max_min_allocation(topo, flows, caps);
  EXPECT_NEAR(rates[0], mbps(3), kTol);
}

TEST(MaxMin, ZeroCapacityLinkStarvesItsFlows) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId l = topo.add_link(a, b, mbps(10), 0.0);
  std::vector<FlowSpec> flows{FlowSpec{{l}, kInf}, FlowSpec{{l}, mbps(1)}};
  std::vector<BitsPerSecond> caps{0.0};
  auto rates = max_min_allocation(topo, flows, caps);
  EXPECT_NEAR(rates[0], 0.0, kTol);
  EXPECT_NEAR(rates[1], 0.0, kTol);
}

// --- randomized property sweep ---------------------------------------------

class MaxMinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinPropertyTest, RandomInstanceIsMaxMinFair) {
  sim::Rng rng(GetParam());
  // Random linear backbone with shortcut links.
  Topology topo;
  const int node_count = static_cast<int>(rng.uniform_int(4, 10));
  std::vector<NodeId> nodes;
  for (int i = 0; i < node_count; ++i)
    nodes.push_back(topo.add_node(NodeKind::kRouter, "n" + std::to_string(i)));
  std::vector<LinkId> links;
  for (int i = 0; i + 1 < node_count; ++i)
    links.push_back(topo.add_link(nodes[i], nodes[i + 1],
                                  mbps(rng.uniform(5, 100)), 0.0));

  // Random flows along contiguous segments; mixed demands.
  const int flow_count = static_cast<int>(rng.uniform_int(1, 25));
  std::vector<FlowSpec> flows;
  for (int f = 0; f < flow_count; ++f) {
    int start = static_cast<int>(rng.uniform_int(0, node_count - 2));
    int end = static_cast<int>(rng.uniform_int(start + 1, node_count - 1));
    Path path;
    for (int i = start; i < end; ++i) path.push_back(links[i]);
    double demand = rng.bernoulli(0.5) ? kInf : mbps(rng.uniform(0.1, 50));
    flows.push_back(FlowSpec{path, demand});
  }

  auto rates = max_min_allocation(topo, flows);
  expect_max_min(topo, flows, rates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace eona::net
