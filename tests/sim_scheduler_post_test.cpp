// Pins the handle-free post path to the schedule path: identical ordering
// and tie-breaking (one shared sequence counter), gate revocation
// equivalent to EventHandle cancellation, and PeriodicTask riding on gated
// posts without leaking ticks past stop().
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace eona::sim {
namespace {

TEST(SchedulerPost, PostAndScheduleShareOneSequenceCounter) {
  Scheduler sched;
  std::vector<std::string> order;
  // Interleave both APIs at one timestamp: ties must fire in call order
  // regardless of which API queued the event.
  sched.post_at(1.0, [&] { order.push_back("post0"); });
  sched.schedule_at(1.0, [&] { order.push_back("sched1"); });
  sched.post_at(1.0, [&] { order.push_back("post2"); });
  sched.schedule_at(1.0, [&] { order.push_back("sched3"); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<std::string>{"post0", "sched1", "post2",
                                             "sched3"}));
}

TEST(SchedulerPost, PostAfterMatchesScheduleAfterTiming) {
  Scheduler sched;
  std::vector<int> order;
  sched.post_after(2.0, [&] { order.push_back(2); });
  sched.schedule_after(1.0, [&] { order.push_back(1); });
  sched.post_after(3.0, [&] { order.push_back(3); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(SchedulerPost, ClosedGateSkipsEventsLikeCancel) {
  Scheduler sched;
  std::vector<std::string> fired;
  // Same cancellation story told twice: once per mechanism.
  EventHandle handle =
      sched.schedule_at(1.0, [&] { fired.push_back("handle"); });
  Gate gate = sched.open_gate();
  sched.post_at(1.0, gate, [&] { fired.push_back("gate"); });
  sched.post_at(2.0, gate, [&] { fired.push_back("gate-late"); });
  sched.cancel(handle);
  sched.close_gate(gate);
  sched.post_at(3.0, [&] { fired.push_back("ungated"); });
  sched.run_all();
  EXPECT_EQ(fired, (std::vector<std::string>{"ungated"}));
  EXPECT_EQ(sched.events_fired(), 1u);
}

TEST(SchedulerPost, CloseGateIsIdempotentAndResetsTheToken) {
  Scheduler sched;
  Gate gate = sched.open_gate();
  EXPECT_TRUE(gate.valid());
  EXPECT_TRUE(sched.gate_open(gate));
  Gate copy = gate;
  sched.close_gate(gate);
  EXPECT_FALSE(gate.valid());        // reset to the default token
  EXPECT_FALSE(sched.gate_open(copy));  // the gate itself is closed
  sched.close_gate(copy);            // closing again is a no-op
  sched.close_gate(gate);            // closing the default token too
}

TEST(SchedulerPost, ReopenedGateSlotDoesNotReviveOldEvents) {
  Scheduler sched;
  int old_fired = 0, new_fired = 0;
  Gate first = sched.open_gate();
  sched.post_at(1.0, first, [&] { ++old_fired; });
  sched.close_gate(first);
  // The arena recycles the slot; the generation bump must keep the old
  // event dead even though the new gate reuses its storage.
  Gate second = sched.open_gate();
  sched.post_at(1.0, second, [&] { ++new_fired; });
  sched.run_all();
  EXPECT_EQ(old_fired, 0);
  EXPECT_EQ(new_fired, 1);
}

TEST(SchedulerPost, GateClosedMidRunSkipsRemainingEvents) {
  Scheduler sched;
  std::vector<int> fired;
  Gate gate = sched.open_gate();
  sched.post_at(1.0, gate, [&] {
    fired.push_back(1);
    sched.close_gate(gate);  // revoke everything still queued below
  });
  sched.post_at(2.0, gate, [&] { fired.push_back(2); });
  sched.post_at(3.0, gate, [&] { fired.push_back(3); });
  sched.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1}));
}

TEST(SchedulerPost, PostActionsStayInlineNoHeapFallback) {
  // The whole point of InlineAction: hot-path posts (small lambdas, a few
  // captured pointers/doubles) must not heap-allocate per event. The
  // fallback counter is process-global, so measure a delta.
  Scheduler sched;
  sched.reserve_events(64);
  sched.reserve_slots(64);
  Gate gate = sched.open_gate();
  std::uint64_t before = InlineAction::heap_fallbacks_count();
  long counter = 0;
  double acc = 0.0;
  for (int i = 0; i < 16; ++i) {
    sched.post_at(static_cast<double>(i), [&counter] { ++counter; });
    sched.post_after(0.5, gate, [&acc, i] { acc += i; });
    sched.schedule_at(static_cast<double>(i) + 0.25,
                      [&counter, &acc] { acc += static_cast<double>(++counter); });
  }
  sched.run_all();
  EXPECT_EQ(InlineAction::heap_fallbacks_count(), before);
  EXPECT_EQ(counter, 32);
  sched.close_gate(gate);
}

TEST(SchedulerPost, OversizeActionFallsBackToHeapAndStillRuns) {
  Scheduler sched;
  std::uint64_t before = InlineAction::heap_fallbacks_count();
  // 64 bytes of captured state cannot fit the 48-byte inline buffer.
  std::array<std::uint64_t, 8> big{};
  big[7] = 7;
  std::uint64_t seen = 0;
  sched.post_at(1.0, [big, &seen] { seen = big[7]; });
  EXPECT_EQ(InlineAction::heap_fallbacks_count(), before + 1);
  sched.run_all();
  EXPECT_EQ(seen, 7u);
}

TEST(SchedulerPost, PeriodicTaskTicksOnGatedPostsAndStopsCleanly) {
  Scheduler sched;
  int ticks = 0;
  {
    PeriodicTask task(sched, 1.0, [&] { ++ticks; });
    sched.run_until(3.5);
    EXPECT_EQ(ticks, 3);
    EXPECT_EQ(task.ticks(), 3u);
    task.stop();
    task.stop();  // idempotent
    sched.run_until(10.0);
    EXPECT_EQ(ticks, 3);  // the revoked tick never fired
  }
  // Destruction after stop() must not double-close or fire anything.
  sched.run_all();
  EXPECT_EQ(ticks, 3);
}

TEST(SchedulerPost, PeriodicTaskDestructionRevokesPendingTick) {
  Scheduler sched;
  int ticks = 0;
  {
    PeriodicTask task(sched, 1.0, [&] { ++ticks; });
    sched.run_until(1.5);
    EXPECT_EQ(ticks, 1);
  }  // ~PeriodicTask closes the gate with a tick still queued
  sched.run_all();
  EXPECT_EQ(ticks, 1);
}

}  // namespace
}  // namespace eona::sim
