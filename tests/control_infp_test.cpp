// Tests for the InfP control plane: I2A report construction, baseline
// flee/return traffic engineering, EONA forecast-driven placement, and live
// flow migration.
#include "control/infp.hpp"

#include <gtest/gtest.h>

#include "net/transfer.hpp"

namespace eona::control {
namespace {

/// Fig 5-shaped world: one ISP, CDN X with peering points B (small,
/// preferred) and C (large), plus an access link.
class InfPTest : public ::testing::Test {
 protected:
  InfPTest() {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    srv = topo.add_node(net::NodeKind::kCdnServer, "srv");
    access = topo.add_link(edge, client, mbps(100), milliseconds(2));
    link_b = topo.add_link(srv, edge, mbps(10), milliseconds(2), "B");
    link_c = topo.add_link(srv, edge, mbps(100), milliseconds(10), "C");
    network.emplace(topo);
    routing.emplace(topo);
    peering.emplace(topo);
    peer_b = peering->add(isp, cdn, link_b, "B");
    peer_c = peering->add(isp, cdn, link_c, "C");
  }

  InfPController make(InfPConfig config = {}) {
    config.sample_period = 0.5;
    config.window_samples = 10;
    return InfPController(sched, *network, *routing, *peering, isp,
                          ProviderId(1), {access}, config);
  }

  /// Let the monitor accumulate samples.
  void settle(Duration how_long = 10.0) { sched.run_until(sched.now() + how_long); }

  /// Publish a synthetic A2I report into a controller's subscription
  /// (through a single-pair exchange standing in for the broker).
  void push_a2i(InfPController& infp, BitsPerSecond forecast) {
    if (!exchange) {
      exchange.emplace(registry);
      exchange->register_appp(ProviderId(0));
      exchange->register_infp(ProviderId(1));
      infp.bind_exchange(core::ExchangeEndpoint(&*exchange, ProviderId(1)));
      exchange->wire(ProviderId(0), ProviderId(1));
      infp.subscribe_a2i(ProviderId(0));
    }
    core::A2IReport report;
    report.from = ProviderId(0);
    report.generated_at = sched.now();
    core::TrafficForecast f;
    f.isp = isp;
    f.cdn = cdn;
    f.expected_rate = forecast;
    report.forecasts.push_back(f);
    exchange->publish_a2i(ProviderId(0), report, sched.now());
  }

  net::Topology topo;
  NodeId client, edge, srv;
  LinkId access, link_b, link_c;
  IspId isp{0};
  CdnId cdn{0};
  PeeringId peer_b, peer_c;
  sim::Scheduler sched;
  std::optional<net::Network> network;
  std::optional<net::Routing> routing;
  std::optional<net::PeeringBook> peering;
  core::ProviderRegistry registry;
  std::optional<core::Exchange> exchange;
};

TEST_F(InfPTest, ReportsPeeringStatusWithSelection) {
  InfPController infp = make();
  settle();
  core::I2AReport report = infp.build_i2a_report();
  ASSERT_EQ(report.peerings.size(), 2u);
  EXPECT_EQ(report.peerings[0].peering, peer_b);
  EXPECT_TRUE(report.peerings[0].selected);
  EXPECT_FALSE(report.peerings[1].selected);
  EXPECT_DOUBLE_EQ(report.peerings[0].capacity, mbps(10));
  EXPECT_TRUE(report.congestion.empty());
}

TEST_F(InfPTest, CongestedPeeringRaisesSignal) {
  InfPController infp = make();
  // Saturate B with elastic flows.
  network->add_flow({link_b, access});
  network->add_flow({link_b, access});
  settle();
  core::I2AReport report = infp.build_i2a_report();
  EXPECT_TRUE(report.peerings[0].congested);
  ASSERT_FALSE(report.congestion.empty());
  EXPECT_EQ(report.congestion[0].scope, core::CongestionScope::kPeering);
  EXPECT_GT(report.congestion[0].severity, 0.5);
}

TEST_F(InfPTest, AccessCongestionIsAttributed) {
  InfPController infp = make();
  for (int i = 0; i < 4; ++i) network->add_flow({access});
  settle();
  core::I2AReport report = infp.build_i2a_report();
  bool found_access = false;
  for (const auto& c : report.congestion)
    if (c.scope == core::CongestionScope::kAccess) found_access = true;
  EXPECT_TRUE(found_access);
}

TEST_F(InfPTest, ServerHintsComeFromOperatedCdns) {
  InfPController infp = make();
  app::Cdn operated(cdn, "x", NodeId{});
  ServerId sid = operated.add_server(srv, link_b, 4);
  operated.set_online(sid, false);
  infp.attach_cdn(&operated);
  settle();
  core::I2AReport report = infp.build_i2a_report();
  ASSERT_EQ(report.server_hints.size(), 1u);
  EXPECT_EQ(report.server_hints[0].server, sid);
  EXPECT_FALSE(report.server_hints[0].online);
}

TEST_F(InfPTest, BaselineFleesHotPeering) {
  InfPController infp = make();
  network->add_flow({link_b, access});  // elastic: saturates B
  network->add_flow({link_b, access});
  settle(12.0);
  infp.tick();
  EXPECT_EQ(peering->selected(isp, cdn), peer_c);
  EXPECT_EQ(infp.egress_trace(cdn).change_count(), 1u);
  EXPECT_EQ(infp.reroutes(), 2u);
  // The flows were physically moved.
  EXPECT_EQ(network->link_flow_count(link_b), 0);
  EXPECT_EQ(network->link_flow_count(link_c), 2);
}

TEST_F(InfPTest, BaselineDriftsHomeWhenPreferredIsIdle) {
  InfPController infp = make();
  infp.select_egress(peer_c);
  settle(12.0);  // B reads idle
  infp.tick();
  EXPECT_EQ(peering->selected(isp, cdn), peer_b);
}

TEST_F(InfPTest, EonaPlacesForecastThatDoesNotFitB) {
  InfPConfig config;
  InfPController infp = make(config);
  infp.set_eona_enabled(true);
  push_a2i(infp, mbps(50));  // doesn't fit B (10), fits C (100)
  settle(2.0);
  infp.tick();
  EXPECT_EQ(peering->selected(isp, cdn), peer_c);
}

TEST_F(InfPTest, EonaPrefersCheapBWhenForecastFits) {
  InfPController infp = make();
  infp.set_eona_enabled(true);
  infp.select_egress(peer_c);
  push_a2i(infp, mbps(5));  // fits B comfortably (headroom 1.15)
  settle(2.0);
  infp.tick();
  EXPECT_EQ(peering->selected(isp, cdn), peer_b);
}

TEST_F(InfPTest, EonaHoldsWithoutForecasts) {
  InfPController infp = make();
  infp.set_eona_enabled(true);
  network->add_flow({link_b, access});
  network->add_flow({link_b, access});
  settle(12.0);
  infp.tick();  // no A2I data: hold position even though B is hot
  EXPECT_EQ(peering->selected(isp, cdn), peer_b);
}

TEST_F(InfPTest, EgressDwellDampensFlapping) {
  InfPConfig config;
  config.egress_dwell = 1000.0;
  InfPController infp = make(config);
  infp.set_eona_enabled(true);
  push_a2i(infp, mbps(50));
  settle(2.0);
  infp.tick();
  EXPECT_EQ(peering->selected(isp, cdn), peer_c);  // first change is free
  push_a2i(infp, mbps(5));
  settle(2.0);
  infp.tick();  // wants B, but dwell blocks
  EXPECT_EQ(peering->selected(isp, cdn), peer_c);
}

TEST_F(InfPTest, MigrationPreservesFlowEndpoints) {
  InfPController infp = make();
  FlowId f = network->add_flow({link_b, access});
  infp.select_egress(peer_c);
  EXPECT_EQ(network->flow_src(f), srv);
  EXPECT_EQ(network->flow_dst(f), client);
  const net::Path& path = network->path(f);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], link_c);
}

TEST_F(InfPTest, PeriodicTicksRun) {
  InfPConfig config;
  config.control_period = 5.0;
  InfPController infp = make(config);
  infp.start();
  sched.run_until(16.0);
  EXPECT_EQ(infp.ticks(), 3u);
  infp.stop();
  sched.run_until(30.0);
  EXPECT_EQ(infp.ticks(), 3u);
}

TEST_F(InfPTest, UnknownTraceThrows) {
  InfPController infp = make();
  EXPECT_THROW(infp.egress_trace(CdnId(9)), NotFoundError);
}

}  // namespace
}  // namespace eona::control
