// Integration tests: run each paper scenario end-to-end (at modest scale)
// and assert the *shape* of the result the paper claims -- who wins, and in
// which direction every headline metric moves.
#include <gtest/gtest.h>

#include "scenarios/cellular_web.hpp"
#include "scenarios/coarse_control.hpp"
#include "scenarios/energy.hpp"
#include "scenarios/flashcrowd.hpp"
#include "scenarios/oscillation.hpp"

namespace eona::scenarios {
namespace {

// --- E2: Fig 3 flash crowd ----------------------------------------------------

class FlashCrowdShape : public ::testing::Test {
 protected:
  static FlashCrowdConfig config(ControlMode mode) {
    FlashCrowdConfig c;  // the calibrated defaults
    c.mode = mode;
    return c;
  }
};

TEST_F(FlashCrowdShape, EonaEliminatesFutileCdnSwitching) {
  FlashCrowdResult baseline = run_flash_crowd(config(ControlMode::kBaseline));
  FlashCrowdResult eona = run_flash_crowd(config(ControlMode::kEona));
  ASSERT_GT(baseline.qoe.sessions, 50u);
  ASSERT_GT(eona.qoe.sessions, 50u);
  // The paper's claim: switching CDNs cannot relieve access congestion, so
  // the informed AppP stops doing it entirely.
  EXPECT_GT(baseline.qoe.cdn_switches, 100u);
  EXPECT_EQ(eona.qoe.cdn_switches, 0u);
  // And experience improves: faster joins, better engagement, no worse
  // rebuffering (tolerances absorb seed-level noise on near-zero values).
  EXPECT_LE(eona.qoe.mean_buffering, baseline.qoe.mean_buffering + 0.002);
  EXPECT_LE(eona.crowd_qoe.mean_join_time, baseline.crowd_qoe.mean_join_time);
  EXPECT_GT(eona.qoe.mean_engagement, baseline.qoe.mean_engagement);
  EXPECT_LE(eona.peak_stalled_fraction,
            baseline.peak_stalled_fraction + 0.02);
}

TEST_F(FlashCrowdShape, CongestionWindowIsVisibleInTheSeries) {
  FlashCrowdConfig c = config(ControlMode::kEona);
  FlashCrowdResult result = run_flash_crowd(c);
  const auto& bitrate = result.metrics.series("mean_bitrate");
  double before = bitrate.time_weighted_mean(c.crowd_start - 60.0,
                                             c.crowd_start);
  double during = bitrate.time_weighted_mean(c.crowd_start + 50.0,
                                             c.crowd_end - 10.0);
  double after = bitrate.time_weighted_mean(c.crowd_end + 100.0,
                                            c.run_duration - 30.0);
  EXPECT_LT(during, before * 0.5) << "the crowd must squeeze bitrate";
  EXPECT_GT(after, during * 1.5) << "and it must recover";
  EXPECT_GT(result.mean_access_utilization, 0.8);
}

// --- E4: Fig 5 oscillation ------------------------------------------------------

class OscillationShape : public ::testing::Test {
 protected:
  static OscillationConfig config(ControlMode mode) {
    OscillationConfig c;
    c.mode = mode;
    c.run_duration = 1200.0;
    return c;
  }
};

TEST_F(OscillationShape, BaselineCyclesEonaConverges) {
  OscillationResult baseline = run_oscillation(config(ControlMode::kBaseline));
  OscillationResult eona = run_oscillation(config(ControlMode::kEona));

  // Baseline: the two blind loops keep flapping.
  EXPECT_GE(baseline.infp_switches + baseline.appp_switches, 4u);
  EXPECT_GE(baseline.infp_reversals, 2u);
  EXPECT_FALSE(baseline.green_path);

  // EONA: the forecast + peering status break the cycle...
  EXPECT_TRUE(eona.converged);
  EXPECT_EQ(eona.appp_switches, 0u);
  EXPECT_EQ(eona.infp_switches, 0u);
  // ...landing on the paper's green path (X via the IXP).
  EXPECT_TRUE(eona.green_path);
  // With better experience.
  EXPECT_LT(eona.qoe.mean_buffering, baseline.qoe.mean_buffering + 1e-9);
  EXPECT_GT(eona.qoe.mean_bitrate, baseline.qoe.mean_bitrate);
}

TEST_F(OscillationShape, DampeningReducesBaselineFlapping) {
  OscillationConfig undamped = config(ControlMode::kBaseline);
  OscillationConfig damped = undamped;
  damped.infp_dwell = 600.0;
  damped.appp_dwell = 600.0;
  OscillationResult loose = run_oscillation(undamped);
  OscillationResult tight = run_oscillation(damped);
  EXPECT_LT(tight.infp_switches + tight.appp_switches,
            loose.infp_switches + loose.appp_switches);
}

// --- E5: §2 coarse control --------------------------------------------------------

TEST(CoarseControlShape, ServerHintsBeatWholeCdnSwitching) {
  CoarseControlConfig config;
  config.run_duration = 700.0;
  config.mode = ControlMode::kBaseline;
  CoarseControlResult baseline = run_coarse_control(config);
  config.mode = ControlMode::kEona;
  CoarseControlResult eona = run_coarse_control(config);

  ASSERT_GT(baseline.post_incident.sessions, 20u);
  // Baseline can only switch CDNs; EONA switches servers inside CDN 1.
  EXPECT_GT(baseline.cdn_switches, eona.cdn_switches);
  EXPECT_GT(eona.server_switches, 0u);
  EXPECT_EQ(baseline.server_switches, 0u);
  // CDN 1 keeps (at least as much of) the traffic when hints exist -- the
  // revenue argument of §2. Most sessions never touch the degraded server,
  // so the shares are close; the claim is that hints do not cost CDN 1.
  EXPECT_GE(eona.cdn1_traffic_share, baseline.cdn1_traffic_share - 0.05);
  // And the clients are clearly better off (cold rival caches + reconnect
  // thrash hurt the baseline).
  EXPECT_GT(eona.post_incident.mean_engagement,
            baseline.post_incident.mean_engagement);
}

// --- E6: §2/§5 energy ---------------------------------------------------------------

TEST(EnergyShape, GuardrailTradesAWhiskerOfSavingsForQoe) {
  EnergyScenarioConfig config;
  config.scale_down_load = 0.70;  // aggressive operator
  config.cycles = 1;
  config.eona = false;
  EnergyScenarioResult baseline = run_energy(config);
  config.eona = true;
  EnergyScenarioResult eona = run_energy(config);

  ASSERT_GT(baseline.qoe.sessions, 100u);
  EXPECT_GT(baseline.saved_fraction, 0.1);
  EXPECT_GT(eona.saved_fraction, 0.1);
  // The guarded controller never does worse on experience...
  EXPECT_LE(eona.qoe.mean_buffering, baseline.qoe.mean_buffering + 1e-9);
  EXPECT_GE(eona.qoe.mean_engagement, baseline.qoe.mean_engagement - 1e-9);
  // ...at a bounded cost in savings.
  EXPECT_GT(eona.saved_fraction, baseline.saved_fraction * 0.8);
}

// --- E3: Fig 4 inference vs direct measurement ---------------------------------------

TEST(CellularWebShape, DirectMeasurementBeatsInference) {
  CellularWebConfig config;
  config.sessions = 800;
  CellularWebResult result = run_cellular_web(config);
  ASSERT_GT(result.evaluated, 300u);
  // Per-sector estimates: A2I is the measurement itself (error ~ 0);
  // inference carries model bias.
  EXPECT_LT(result.a2i_group_mae, 1e-9);
  EXPECT_GT(result.inference_group_mae, result.a2i_group_mae + 0.01);
  EXPECT_GE(result.a2i_rank_corr, result.inference_rank_corr - 1e-9);
}

TEST(CellularWebShape, FeatureNoiseWidensTheGap) {
  CellularWebConfig clean;
  clean.sessions = 800;
  clean.feature_noise = 0.0;
  CellularWebConfig noisy = clean;
  noisy.feature_noise = 1.0;
  CellularWebResult low = run_cellular_web(clean);
  CellularWebResult high = run_cellular_web(noisy);
  EXPECT_GT(high.inference_mae, low.inference_mae);
  EXPECT_NEAR(high.a2i_mae, low.a2i_mae, 0.02)
      << "direct measurement is immune to the InfP's measurement noise";
}

TEST(CellularWebShape, KAnonymitySuppressesThinSectors) {
  CellularWebConfig config;
  config.sessions = 400;
  config.sectors = 8;
  config.k_anonymity = 10000;  // absurd floor: everything suppressed
  CellularWebResult result = run_cellular_web(config);
  EXPECT_EQ(result.suppressed_sectors, 8u);
}

// --- determinism across the board ------------------------------------------------------

TEST(ScenarioDeterminism, SameSeedSameResult) {
  FlashCrowdConfig config;
  config.run_duration = 400.0;
  config.crowd_start = 100.0;
  config.crowd_end = 250.0;
  FlashCrowdResult a = run_flash_crowd(config);
  FlashCrowdResult b = run_flash_crowd(config);
  EXPECT_EQ(a.qoe.sessions, b.qoe.sessions);
  EXPECT_DOUBLE_EQ(a.qoe.mean_buffering, b.qoe.mean_buffering);
  EXPECT_DOUBLE_EQ(a.qoe.mean_bitrate, b.qoe.mean_bitrate);
  EXPECT_EQ(a.qoe.cdn_switches, b.qoe.cdn_switches);
}

TEST(ScenarioDeterminism, DifferentSeedsDiffer) {
  FlashCrowdConfig config;
  config.run_duration = 400.0;
  config.crowd_start = 100.0;
  config.crowd_end = 250.0;
  FlashCrowdResult a = run_flash_crowd(config);
  config.seed = 999;
  FlashCrowdResult b = run_flash_crowd(config);
  EXPECT_NE(a.qoe.sessions, b.qoe.sessions);
}

}  // namespace
}  // namespace eona::scenarios
