// Tests for Network batching: hook coalescing, nesting, empty batches,
// exception safety, recompute accounting, and equivalence of batched vs
// per-mutation results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.hpp"

namespace eona::net {
namespace {

class NetworkBatchTest : public ::testing::Test {
 protected:
  NetworkBatchTest() {
    a = topo.add_node(NodeKind::kRouter, "a");
    b = topo.add_node(NodeKind::kRouter, "b");
    c = topo.add_node(NodeKind::kRouter, "c");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1));
    bc = topo.add_link(b, c, mbps(20), milliseconds(1));
  }
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;
};

TEST_F(NetworkBatchTest, BatchFiresHookExactlyOnceAtCommit) {
  Network net(topo);
  int hook_calls = 0;
  std::vector<RateChange> last;
  net.set_rates_changed_hook([&](const std::vector<RateChange>& changes) {
    ++hook_calls;
    last = changes;
  });
  FlowId f1, f2, f3;
  {
    Network::Batch batch(net);
    f1 = net.add_flow({ab});
    f2 = net.add_flow({ab, bc});
    f3 = net.add_flow({bc});
    // Nothing fires until commit; rates are stale inside the batch.
    EXPECT_EQ(hook_calls, 0);
  }
  EXPECT_EQ(hook_calls, 1);
  // All three flows moved from 0 to their share, in ascending flow-id order.
  ASSERT_EQ(last.size(), 3u);
  EXPECT_EQ(last[0].flow, f1);
  EXPECT_EQ(last[1].flow, f2);
  EXPECT_EQ(last[2].flow, f3);
  for (const RateChange& change : last)
    EXPECT_EQ(change.rate, net.rate(change.flow));
}

TEST_F(NetworkBatchTest, BatchRunsOneRecompute) {
  Network net(topo);
  std::uint64_t base = net.recompute_count();
  {
    Network::Batch batch(net);
    for (int i = 0; i < 16; ++i) net.add_flow({ab});
  }
  EXPECT_EQ(net.recompute_count(), base + 1);
  // Unbatched: one recompute per mutation.
  base = net.recompute_count();
  net.add_flow({ab});
  net.add_flow({bc});
  net.set_link_capacity(ab, mbps(5));
  EXPECT_EQ(net.recompute_count(), base + 3);
}

TEST_F(NetworkBatchTest, NestedBatchesCommitAtOutermost) {
  Network net(topo);
  int after_calls = 0;
  net.set_rates_changed_hook(
      [&](const std::vector<RateChange>&) { ++after_calls; });
  std::uint64_t base = net.recompute_count();
  {
    Network::Batch outer(net);
    net.add_flow({ab});
    {
      Network::Batch inner(net);
      net.add_flow({ab});
      net.add_flow({bc});
    }
    // Inner commit must not recompute or fire the hook.
    EXPECT_EQ(net.recompute_count(), base);
    EXPECT_EQ(after_calls, 0);
  }
  EXPECT_EQ(net.recompute_count(), base + 1);
  EXPECT_EQ(after_calls, 1);
}

TEST_F(NetworkBatchTest, EmptyBatchFiresNothing) {
  Network net(topo);
  net.add_flow({ab});
  int hook_calls = 0;
  net.set_rates_changed_hook(
      [&](const std::vector<RateChange>&) { ++hook_calls; });
  std::uint64_t base = net.recompute_count();
  {
    Network::Batch batch(net);
  }
  {
    Network::Batch outer(net);
    Network::Batch inner(net);
  }
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(net.recompute_count(), base);
}

TEST_F(NetworkBatchTest, NoopMutationsInsideBatchStayNoops) {
  Network net(topo);
  FlowId f = net.add_flow({ab}, mbps(3));
  int hook_calls = 0;
  net.set_rates_changed_hook(
      [&](const std::vector<RateChange>&) { ++hook_calls; });
  std::uint64_t base = net.recompute_count();
  {
    Network::Batch batch(net);
    net.set_demand(f, mbps(3));                     // same demand: no-op
    net.set_link_capacity(ab, net.link_capacity(ab));  // same cap: no-op
  }
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(net.recompute_count(), base);
}

TEST_F(NetworkBatchTest, MidBatchStructureIsLiveRatesAreStale) {
  Network net(topo);
  FlowId f0 = net.add_flow({ab});
  {
    Network::Batch batch(net);
    FlowId f1 = net.add_flow({ab});
    EXPECT_TRUE(net.contains(f1));
    EXPECT_EQ(net.flow_count(), 2u);
    EXPECT_EQ(net.link_flow_count(ab), 2);
    EXPECT_TRUE(net.in_batch());
    // Rates move only at commit: the old flow still holds the whole link,
    // the new one has nothing yet.
    EXPECT_NEAR(net.rate(f0), mbps(10), 1.0);
    EXPECT_EQ(net.rate(f1), 0.0);
  }
  EXPECT_FALSE(net.in_batch());
  EXPECT_NEAR(net.rate(f0), mbps(5), 1.0);
}

TEST_F(NetworkBatchTest, ThrowingMutationLeavesNetworkConsistent) {
  Network net(topo);
  FlowId keep = net.add_flow({ab, bc});
  FlowId added;
  EXPECT_THROW(
      {
        Network::Batch batch(net);
        added = net.add_flow({ab});
        net.add_flow({LinkId(99)});  // unknown link: throws mid-batch
      },
      NotFoundError);
  // The Batch destructor committed the mutations that succeeded; the failed
  // one left no partial state behind.
  EXPECT_EQ(net.flow_count(), 2u);
  EXPECT_TRUE(net.contains(added));
  EXPECT_NEAR(net.rate(keep) + net.rate(added), mbps(10), 1.0);
  EXPECT_NEAR(net.link_allocated(ab), mbps(10), 1.0);
  EXPECT_THROW(
      {
        Network::Batch batch(net);
        net.remove_flow(FlowId(1234));  // unknown flow mid-batch
      },
      NotFoundError);
  EXPECT_EQ(net.flow_count(), 2u);
}

TEST_F(NetworkBatchTest, EarlyCommitThenDestructorIsSingleCommit) {
  Network net(topo);
  int after_calls = 0;
  net.set_rates_changed_hook(
      [&](const std::vector<RateChange>&) { ++after_calls; });
  std::uint64_t base = net.recompute_count();
  {
    Network::Batch batch(net);
    FlowId f = net.add_flow({ab});
    batch.commit();
    EXPECT_NEAR(net.rate(f), mbps(10), 1.0);  // rates live after commit
    EXPECT_EQ(after_calls, 1);
  }
  EXPECT_EQ(after_calls, 1);
  EXPECT_EQ(net.recompute_count(), base + 1);
}

TEST_F(NetworkBatchTest, BatchedEqualsUnbatchedBitExact) {
  Network batched(topo), unbatched(topo);
  std::vector<FlowId> bf, uf;
  {
    Network::Batch batch(batched);
    bf.push_back(batched.add_flow({ab, bc}));
    bf.push_back(batched.add_flow({ab}, mbps(2)));
    bf.push_back(batched.add_flow({bc}));
    batched.set_demand(bf[0], mbps(7));
    batched.set_link_capacity(bc, mbps(12));
  }
  uf.push_back(unbatched.add_flow({ab, bc}));
  uf.push_back(unbatched.add_flow({ab}, mbps(2)));
  uf.push_back(unbatched.add_flow({bc}));
  unbatched.set_demand(uf[0], mbps(7));
  unbatched.set_link_capacity(bc, mbps(12));
  for (std::size_t i = 0; i < bf.size(); ++i)
    EXPECT_EQ(batched.rate(bf[i]), unbatched.rate(uf[i])) << "flow " << i;
  EXPECT_EQ(batched.link_allocated(ab), unbatched.link_allocated(ab));
  EXPECT_EQ(batched.link_allocated(bc), unbatched.link_allocated(bc));
}

TEST_F(NetworkBatchTest, RemovalBatchZeroesAbandonedLinks) {
  Network net(topo);
  FlowId f1 = net.add_flow({ab});
  FlowId f2 = net.add_flow({ab});
  {
    Network::Batch batch(net);
    net.remove_flow(f1);
    net.remove_flow(f2);
  }
  EXPECT_EQ(net.flow_count(), 0u);
  EXPECT_EQ(net.link_allocated(ab), 0.0);
  EXPECT_EQ(net.link_flow_count(ab), 0);
}

}  // namespace
}  // namespace eona::net
