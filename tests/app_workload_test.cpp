// Tests for the workload generators: the non-homogeneous Poisson arrival
// process, the diurnal / flash-crowd phase helpers, and the Zipf content
// popularity the catalogs sample from -- shape sanity plus cross-seed
// determinism.
#include "app/workload.hpp"

#include <gtest/gtest.h>

#include <map>

#include "app/content_catalog.hpp"

namespace eona::app {
namespace {

TEST(PoissonArrivals, EmpiricalRateMatchesPhase) {
  sim::Scheduler sched;
  int count = 0;
  PoissonArrivals arrivals(sched, sim::Rng(1), {{0.0, 2.0}}, 1000.0,
                           [&] { ++count; });
  sched.run_all();
  // 2/s for 1000 s: expect ~2000 +- a few sigma (sigma ~ 45).
  EXPECT_NEAR(count, 2000, 200);
  EXPECT_EQ(arrivals.arrivals(), static_cast<std::uint64_t>(count));
}

TEST(PoissonArrivals, PhasesChangeTheRate) {
  sim::Scheduler sched;
  std::vector<TimePoint> times;
  PoissonArrivals arrivals(sched, sim::Rng(2),
                           {{0.0, 0.2}, {500.0, 5.0}, {600.0, 0.2}}, 1100.0,
                           [&] { times.push_back(sched.now()); });
  sched.run_all();
  int before = 0, during = 0, after = 0;
  for (TimePoint t : times) {
    if (t < 500.0)
      ++before;
    else if (t < 600.0)
      ++during;
    else
      ++after;
  }
  EXPECT_NEAR(before, 100, 40);   // 0.2/s x 500 s
  EXPECT_NEAR(during, 500, 100);  // 5/s x 100 s
  EXPECT_NEAR(after, 100, 40);
}

TEST(PoissonArrivals, ZeroRatePhaseProducesNothing) {
  sim::Scheduler sched;
  std::vector<TimePoint> times;
  PoissonArrivals arrivals(sched, sim::Rng(3), {{0.0, 0.0}, {100.0, 1.0}},
                           200.0, [&] { times.push_back(sched.now()); });
  sched.run_all();
  for (TimePoint t : times) EXPECT_GE(t, 100.0);
  EXPECT_GT(times.size(), 50u);
}

TEST(PoissonArrivals, NoArrivalsAtOrAfterEnd) {
  sim::Scheduler sched;
  std::vector<TimePoint> times;
  PoissonArrivals arrivals(sched, sim::Rng(4), {{0.0, 10.0}}, 50.0,
                           [&] { times.push_back(sched.now()); });
  sched.run_all();
  for (TimePoint t : times) EXPECT_LT(t, 50.0);
}

TEST(PoissonArrivals, StopHalts) {
  sim::Scheduler sched;
  int count = 0;
  PoissonArrivals arrivals(sched, sim::Rng(5), {{0.0, 10.0}}, 1000.0,
                           [&] { ++count; });
  sched.run_until(10.0);
  int at_stop = count;
  arrivals.stop();
  sched.run_all();
  EXPECT_EQ(count, at_stop);
}

TEST(PoissonArrivals, RateAtAndBoundaries) {
  sim::Scheduler sched;
  PoissonArrivals arrivals(sched, sim::Rng(6), {{0.0, 1.0}, {10.0, 2.0}},
                           100.0, [] {});
  EXPECT_DOUBLE_EQ(arrivals.rate_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(arrivals.rate_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(arrivals.rate_at(50.0), 2.0);
  EXPECT_DOUBLE_EQ(arrivals.next_boundary(5.0), 10.0);
  EXPECT_DOUBLE_EQ(arrivals.next_boundary(10.0), 100.0);
  arrivals.stop();
}

TEST(PoissonArrivals, InvalidConfigsAreContractViolations) {
  sim::Scheduler sched;
  EXPECT_THROW(
      PoissonArrivals(sched, sim::Rng(7), {}, 10.0, [] {}),
      ContractViolation);
  EXPECT_THROW(PoissonArrivals(sched, sim::Rng(7), {{0.0, -1.0}}, 10.0, [] {}),
               ContractViolation);
  EXPECT_THROW(PoissonArrivals(sched, sim::Rng(7), {{5.0, 1.0}, {5.0, 2.0}},
                               10.0, [] {}),
               ContractViolation);
}

TEST(PoissonArrivals, DeterministicForFixedSeed) {
  auto run = [] {
    sim::Scheduler sched;
    std::vector<TimePoint> times;
    PoissonArrivals arrivals(sched, sim::Rng(99), {{0.0, 1.0}}, 100.0,
                             [&] { times.push_back(sched.now()); });
    sched.run_all();
    return times;
  };
  EXPECT_EQ(run(), run());
}

TEST(DiurnalPhases, RaisedCosineShape) {
  // 24 one-hour slices over one day, tiled twice.
  auto phases = diurnal_phases(1.0, 9.0, 86400.0, 24, 2 * 86400.0);
  ASSERT_EQ(phases.size(), 48u);
  EXPECT_DOUBLE_EQ(phases[0].start, 0.0);
  // Trough at midnight, peak at noon (slices 0 and 12), symmetric flanks.
  EXPECT_LT(phases[0].rate, phases[6].rate);
  EXPECT_LT(phases[6].rate, phases[12].rate);
  EXPECT_GT(phases[12].rate, 8.9);
  EXPECT_LT(phases[0].rate, 1.1);
  // Midpoint symmetry about noon: slice 6 (6.5 h) mirrors slice 17 (17.5 h).
  EXPECT_NEAR(phases[6].rate, phases[17].rate, 1e-9);
  // Second day repeats the first.
  for (std::size_t i = 0; i < 24; ++i)
    EXPECT_NEAR(phases[i].rate, phases[i + 24].rate, 1e-9) << i;
  // Mean over a whole period is (night + day) / 2.
  double mean = 0.0;
  for (std::size_t i = 0; i < 24; ++i) mean += phases[i].rate;
  EXPECT_NEAR(mean / 24.0, 5.0, 0.05);
  // All rates within [night, day].
  for (const auto& p : phases) {
    EXPECT_GE(p.rate, 1.0 - 1e-9);
    EXPECT_LE(p.rate, 9.0 + 1e-9);
  }
}

TEST(DiurnalPhases, FeedsPoissonArrivalsDeterministically) {
  auto run = [] {
    sim::Scheduler sched;
    std::vector<TimePoint> times;
    PoissonArrivals arrivals(sched, sim::Rng(7),
                             diurnal_phases(0.5, 4.0, 400.0, 8, 400.0), 400.0,
                             [&] { times.push_back(sched.now()); });
    sched.run_all();
    return times;
  };
  auto times = run();
  EXPECT_EQ(run(), times);
  // Day half (around t = 200) must be visibly busier than the night edges.
  int night = 0, day = 0;
  for (TimePoint t : times) (t > 100.0 && t < 300.0 ? day : night) += 1;
  EXPECT_GT(day, 2 * night);
}

TEST(DiurnalPhases, InvalidArgumentsAreContractViolations) {
  EXPECT_THROW(diurnal_phases(-1.0, 2.0, 10.0, 4, 10.0), ContractViolation);
  EXPECT_THROW(diurnal_phases(1.0, 2.0, 0.0, 4, 10.0), ContractViolation);
  EXPECT_THROW(diurnal_phases(1.0, 2.0, 10.0, 0, 10.0), ContractViolation);
}

TEST(FlashPhases, StepUpThenBackDown) {
  auto phases = flash_phases(1.5, 30.0, 120.0, 240.0);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_DOUBLE_EQ(phases[0].start, 0.0);
  EXPECT_DOUBLE_EQ(phases[0].rate, 1.5);
  EXPECT_DOUBLE_EQ(phases[1].start, 120.0);
  EXPECT_DOUBLE_EQ(phases[1].rate, 30.0);
  EXPECT_DOUBLE_EQ(phases[2].start, 240.0);
  EXPECT_DOUBLE_EQ(phases[2].rate, 1.5);
  EXPECT_THROW(flash_phases(1.0, 2.0, 240.0, 120.0), ContractViolation);
}

TEST(ZipfCatalog, PopularityIsSkewedAndMatchesAnalyticMass) {
  sim::ZipfSampler zipf(16, 0.8);
  // Analytic shape: strictly decreasing mass by rank.
  for (std::size_t r = 1; r < 16; ++r)
    EXPECT_LT(zipf.probability(r), zipf.probability(r - 1)) << r;
  // Empirical draw frequencies track the analytic mass for the head ranks.
  sim::Rng rng(11);
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    double expected = zipf.probability(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, 4.0 * std::sqrt(expected)) << r;
  }
}

TEST(ZipfCatalog, SamplingIsDeterministicPerSeedAndDiffersAcrossSeeds) {
  auto draw = [](std::uint64_t seed) {
    app::ContentCatalog catalog = app::ContentCatalog::videos(32, 120.0, 0.8);
    sim::Rng rng(seed);
    std::vector<ContentId> ids;
    for (int i = 0; i < 64; ++i) ids.push_back(catalog.sample(rng));
    return ids;
  };
  EXPECT_EQ(draw(5), draw(5));
  EXPECT_NE(draw(5), draw(6));
}

}  // namespace
}  // namespace eona::app
