// Tests for the non-homogeneous Poisson arrival process.
#include "app/workload.hpp"

#include <gtest/gtest.h>

namespace eona::app {
namespace {

TEST(PoissonArrivals, EmpiricalRateMatchesPhase) {
  sim::Scheduler sched;
  int count = 0;
  PoissonArrivals arrivals(sched, sim::Rng(1), {{0.0, 2.0}}, 1000.0,
                           [&] { ++count; });
  sched.run_all();
  // 2/s for 1000 s: expect ~2000 +- a few sigma (sigma ~ 45).
  EXPECT_NEAR(count, 2000, 200);
  EXPECT_EQ(arrivals.arrivals(), static_cast<std::uint64_t>(count));
}

TEST(PoissonArrivals, PhasesChangeTheRate) {
  sim::Scheduler sched;
  std::vector<TimePoint> times;
  PoissonArrivals arrivals(sched, sim::Rng(2),
                           {{0.0, 0.2}, {500.0, 5.0}, {600.0, 0.2}}, 1100.0,
                           [&] { times.push_back(sched.now()); });
  sched.run_all();
  int before = 0, during = 0, after = 0;
  for (TimePoint t : times) {
    if (t < 500.0)
      ++before;
    else if (t < 600.0)
      ++during;
    else
      ++after;
  }
  EXPECT_NEAR(before, 100, 40);   // 0.2/s x 500 s
  EXPECT_NEAR(during, 500, 100);  // 5/s x 100 s
  EXPECT_NEAR(after, 100, 40);
}

TEST(PoissonArrivals, ZeroRatePhaseProducesNothing) {
  sim::Scheduler sched;
  std::vector<TimePoint> times;
  PoissonArrivals arrivals(sched, sim::Rng(3), {{0.0, 0.0}, {100.0, 1.0}},
                           200.0, [&] { times.push_back(sched.now()); });
  sched.run_all();
  for (TimePoint t : times) EXPECT_GE(t, 100.0);
  EXPECT_GT(times.size(), 50u);
}

TEST(PoissonArrivals, NoArrivalsAtOrAfterEnd) {
  sim::Scheduler sched;
  std::vector<TimePoint> times;
  PoissonArrivals arrivals(sched, sim::Rng(4), {{0.0, 10.0}}, 50.0,
                           [&] { times.push_back(sched.now()); });
  sched.run_all();
  for (TimePoint t : times) EXPECT_LT(t, 50.0);
}

TEST(PoissonArrivals, StopHalts) {
  sim::Scheduler sched;
  int count = 0;
  PoissonArrivals arrivals(sched, sim::Rng(5), {{0.0, 10.0}}, 1000.0,
                           [&] { ++count; });
  sched.run_until(10.0);
  int at_stop = count;
  arrivals.stop();
  sched.run_all();
  EXPECT_EQ(count, at_stop);
}

TEST(PoissonArrivals, RateAtAndBoundaries) {
  sim::Scheduler sched;
  PoissonArrivals arrivals(sched, sim::Rng(6), {{0.0, 1.0}, {10.0, 2.0}},
                           100.0, [] {});
  EXPECT_DOUBLE_EQ(arrivals.rate_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(arrivals.rate_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(arrivals.rate_at(50.0), 2.0);
  EXPECT_DOUBLE_EQ(arrivals.next_boundary(5.0), 10.0);
  EXPECT_DOUBLE_EQ(arrivals.next_boundary(10.0), 100.0);
  arrivals.stop();
}

TEST(PoissonArrivals, InvalidConfigsAreContractViolations) {
  sim::Scheduler sched;
  EXPECT_THROW(
      PoissonArrivals(sched, sim::Rng(7), {}, 10.0, [] {}),
      ContractViolation);
  EXPECT_THROW(PoissonArrivals(sched, sim::Rng(7), {{0.0, -1.0}}, 10.0, [] {}),
               ContractViolation);
  EXPECT_THROW(PoissonArrivals(sched, sim::Rng(7), {{5.0, 1.0}, {5.0, 2.0}},
                               10.0, [] {}),
               ContractViolation);
}

TEST(PoissonArrivals, DeterministicForFixedSeed) {
  auto run = [] {
    sim::Scheduler sched;
    std::vector<TimePoint> times;
    PoissonArrivals arrivals(sched, sim::Rng(99), {{0.0, 1.0}}, 100.0,
                             [&] { times.push_back(sched.now()); });
    sched.run_all();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace eona::app
