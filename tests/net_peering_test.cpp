// Tests for the peering book: registration, default and explicit selection.
#include "net/peering.hpp"

#include <gtest/gtest.h>

namespace eona::net {
namespace {

class PeeringTest : public ::testing::Test {
 protected:
  PeeringTest() {
    NodeId cdn_edge = topo.add_node(NodeKind::kCdnServer, "cdn");
    NodeId isp_edge = topo.add_node(NodeKind::kRouter, "isp");
    link_b = topo.add_link(cdn_edge, isp_edge, mbps(50), milliseconds(2));
    link_c = topo.add_link(cdn_edge, isp_edge, mbps(200), milliseconds(10));
  }
  Topology topo;
  LinkId link_b, link_c;
  IspId isp{0};
  CdnId cdn_x{0}, cdn_y{1};
};

TEST_F(PeeringTest, FirstRegisteredIsDefaultSelection) {
  PeeringBook book(topo);
  PeeringId b = book.add(isp, cdn_x, link_b, "B");
  PeeringId c = book.add(isp, cdn_x, link_c, "C");
  EXPECT_EQ(book.selected(isp, cdn_x), b);
  EXPECT_EQ(book.points_between(isp, cdn_x),
            (std::vector<PeeringId>{b, c}));
}

TEST_F(PeeringTest, SelectSwitchesThePair) {
  PeeringBook book(topo);
  book.add(isp, cdn_x, link_b, "B");
  PeeringId c = book.add(isp, cdn_x, link_c, "C");
  book.select(c);
  EXPECT_EQ(book.selected(isp, cdn_x), c);
}

TEST_F(PeeringTest, PairsAreIndependent) {
  PeeringBook book(topo);
  PeeringId xb = book.add(isp, cdn_x, link_b, "X@B");
  PeeringId yc = book.add(isp, cdn_y, link_c, "Y@C");
  EXPECT_EQ(book.selected(isp, cdn_x), xb);
  EXPECT_EQ(book.selected(isp, cdn_y), yc);
  EXPECT_EQ(book.points_of_isp(isp).size(), 2u);
}

TEST_F(PeeringTest, UnknownPairThrows) {
  PeeringBook book(topo);
  EXPECT_THROW(book.selected(isp, cdn_x), NotFoundError);
  EXPECT_THROW(book.point(PeeringId(3)), NotFoundError);
}

TEST_F(PeeringTest, PointMetadataRoundTrips) {
  PeeringBook book(topo);
  PeeringId b = book.add(isp, cdn_x, link_b, "local-B");
  const PeeringPoint& p = book.point(b);
  EXPECT_EQ(p.isp, isp);
  EXPECT_EQ(p.cdn, cdn_x);
  EXPECT_EQ(p.ingress_link, link_b);
  EXPECT_EQ(p.name, "local-B");
}

}  // namespace
}  // namespace eona::net
