// Tests for the JSON codec: value model, parser strictness, and report
// round trips (including a randomized sweep).
#include "eona/json.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace eona::core {
namespace {

TEST(Json, ScalarDumpAndParse) {
  EXPECT_EQ(JsonValue::number(42).dump(), "42");
  EXPECT_EQ(JsonValue::number(-3.5).dump(), "-3.5");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue{}.dump(), "null");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");

  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_TRUE(JsonValue::parse(" null ").is_null());
}

TEST(Json, StringEscapes) {
  JsonValue v = JsonValue::string("a\"b\\c\nd\te");
  std::string dumped = v.dump();
  EXPECT_EQ(JsonValue::parse(dumped).as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, NestedStructures) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("eona"));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(1));
  arr.push_back(JsonValue::number(2));
  obj.set("values", std::move(arr));

  JsonValue parsed = JsonValue::parse(obj.dump(2));
  EXPECT_EQ(parsed.at("name").as_string(), "eona");
  ASSERT_EQ(parsed.at("values").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("values").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(parsed.has("name"));
  EXPECT_FALSE(parsed.has("nope"));
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "[1 2]", "nul", "\"bad\\q\"", "--1", "{a:1}"}) {
    EXPECT_THROW(JsonValue::parse(bad), CodecError) << bad;
  }
}

TEST(Json, KindMismatchesThrow) {
  JsonValue n = JsonValue::number(1);
  EXPECT_THROW(n.as_string(), CodecError);
  EXPECT_THROW(n.as_array(), CodecError);
  EXPECT_THROW(n.at("x"), CodecError);
  JsonValue obj = JsonValue::object();
  EXPECT_THROW(obj.at("missing"), CodecError);
}

TEST(Json, NonFiniteNumbersRefuseToSerialise) {
  EXPECT_THROW(JsonValue::number(1.0 / 0.0).dump(), CodecError);
}

TEST(JsonReports, A2IRoundTrip) {
  A2IReport report;
  report.from = ProviderId(3);
  report.generated_at = 12.5;
  QoeGroupReport g;
  g.isp = IspId(1);
  g.cdn = CdnId(2);
  // server deliberately invalid: must survive as a wildcard
  g.mean_buffering_ratio = 0.0625;
  g.mean_bitrate = 2.5e6;
  g.sessions = 12345;
  report.groups.push_back(g);
  TrafficForecast f;
  f.cdn = CdnId(2);
  f.expected_rate = 1.25e8;
  report.forecasts.push_back(f);

  std::string text = to_json(report);
  A2IReport decoded = a2i_from_json(text);
  EXPECT_EQ(decoded, report);
  EXPECT_FALSE(decoded.groups[0].server.valid());
}

TEST(JsonReports, I2ARoundTripAllScopes) {
  I2AReport report;
  report.from = ProviderId(9);
  for (auto scope : {CongestionScope::kAccess, CongestionScope::kPeering,
                     CongestionScope::kBackbone}) {
    CongestionSignal c;
    c.isp = IspId(0);
    c.scope = scope;
    c.severity = 0.5;
    report.congestion.push_back(c);
  }
  PeeringStatus p;
  p.peering = PeeringId(1);
  p.congested = true;
  p.selected = true;
  report.peerings.push_back(p);
  ServerHint h;
  h.server = ServerId(4);
  h.online = false;
  report.server_hints.push_back(h);

  EXPECT_EQ(i2a_from_json(to_json(report)), report);
}

TEST(JsonReports, KindFieldIsEnforced) {
  A2IReport a2i;
  a2i.from = ProviderId(0);
  I2AReport i2a;
  i2a.from = ProviderId(0);
  EXPECT_THROW(i2a_from_json(to_json(a2i)), CodecError);
  EXPECT_THROW(a2i_from_json(to_json(i2a)), CodecError);
}

TEST(JsonReports, CompactAndIndentedAgree) {
  A2IReport report;
  report.from = ProviderId(1);
  QoeGroupReport g;
  g.sessions = 7;
  report.groups.push_back(g);
  EXPECT_EQ(a2i_from_json(to_json(report, 0)),
            a2i_from_json(to_json(report, 4)));
}

class JsonFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzzTest, RandomReportsRoundTrip) {
  sim::Rng rng(GetParam());
  A2IReport report;
  report.from = ProviderId(static_cast<std::uint32_t>(rng.uniform_int(0, 50)));
  report.generated_at = rng.uniform(0, 1e5);
  auto n = static_cast<std::size_t>(rng.uniform_int(0, 12));
  for (std::size_t i = 0; i < n; ++i) {
    QoeGroupReport g;
    if (rng.bernoulli(0.8))
      g.isp = IspId(static_cast<std::uint32_t>(rng.uniform_int(0, 9)));
    g.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
    g.mean_buffering_ratio = rng.uniform(0, 1);
    g.mean_bitrate = rng.uniform(0, 1e7);
    g.mean_engagement = rng.uniform(0, 1);
    g.sessions = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    report.groups.push_back(g);
  }
  EXPECT_EQ(a2i_from_json(to_json(report)), report);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 15));

// --- fault profiles -----------------------------------------------------------

TEST(JsonFault, FaultProfileRoundTrip) {
  FaultProfile fault;
  fault.drop_rate = 0.25;
  fault.duplicate_rate = 0.0625;
  fault.max_extra_delay = 2.5;
  fault.outages = {{30.0, 60.0}, {120.0, 180.0}};
  fault.seed = 0xFEEDull;
  EXPECT_EQ(fault_profile_from_json(to_json(fault)), fault);
}

TEST(JsonFault, IdealProfileRoundTripsToIdeal) {
  FaultProfile decoded = fault_profile_from_json(to_json(FaultProfile{}));
  EXPECT_TRUE(decoded.ideal());
  EXPECT_EQ(decoded, FaultProfile{});
}

TEST(JsonFault, GoldenDumpIsStable) {
  // The wire shape is a contract for lab configs: field names and order
  // change only deliberately.
  FaultProfile fault;
  fault.drop_rate = 0.5;
  fault.outages = {{10.0, 20.0}};
  EXPECT_EQ(to_json(fault, 0),
            "{\"drop_rate\":0.5,\"duplicate_rate\":0,"
            "\"kind\":\"fault_profile\",\"max_extra_delay\":0,"
            "\"outages\":[{\"end\":20,\"start\":10}],\"seed\":0}");
}

TEST(JsonFault, DecodingValidatesSemantics) {
  // Structurally valid JSON, semantically invalid profile -> ConfigError.
  FaultProfile negative;
  negative.drop_rate = -0.1;
  std::string negative_drop = to_json(negative);
  EXPECT_THROW(fault_profile_from_json(negative_drop), ConfigError);

  FaultProfile overlapping;
  overlapping.outages = {{10.0, 30.0}, {20.0, 40.0}};
  std::string bad_windows = to_json(overlapping);
  EXPECT_THROW(fault_profile_from_json(bad_windows), ConfigError);
}

TEST(JsonFault, StructuralGarbageIsCodecError) {
  EXPECT_THROW(fault_profile_from_json("{\"kind\":\"fault_profile\"}"),
               CodecError);  // missing fields
  EXPECT_THROW(fault_profile_from_json("{\"kind\":\"not_a_fault\"}"),
               CodecError);  // wrong kind
  EXPECT_THROW(fault_profile_from_json("[1,2,3]"), CodecError);
  EXPECT_THROW(fault_profile_from_json("{"), CodecError);
  FaultProfile fault;
  fault.seed = 1;
  std::string text = to_json(fault, 0);
  auto pos = text.find("\"seed\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "\"seed\":-1");
  EXPECT_THROW(fault_profile_from_json(text), CodecError);  // negative seed
}

// --- delivery health ----------------------------------------------------------

TEST(JsonHealth, DeliveryHealthRoundTrip) {
  telemetry::DeliveryHealthSnapshot h;
  h.publishes = 1000;
  h.deliveries = 870;
  h.drops = 130;
  h.duplicates = 42;
  h.fetch_attempts = 512;
  h.retries = 64;
  h.fresh_hits = 400;
  h.stale_hits = 48;
  h.misses = 64;
  h.stale_serves = 17;
  h.staleness_p90 = 12.5;
  EXPECT_EQ(delivery_health_from_json(to_json(h)), h);
}

TEST(JsonHealth, EmptySnapshotRoundTrips) {
  telemetry::DeliveryHealthSnapshot empty;
  EXPECT_EQ(delivery_health_from_json(to_json(empty)), empty);
}

TEST(JsonHealth, RejectsNegativeCountsAndStaleness) {
  telemetry::DeliveryHealthSnapshot h;
  h.drops = 5;
  std::string text = to_json(h, 0);
  auto pos = text.find("\"drops\":5");
  ASSERT_NE(pos, std::string::npos);
  std::string negative_count = text;
  negative_count.replace(pos, 9, "\"drops\":-5");
  EXPECT_THROW(delivery_health_from_json(negative_count), CodecError);

  pos = text.find("\"staleness_p90\":0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 17, "\"staleness_p90\":-1");
  EXPECT_THROW(delivery_health_from_json(text), CodecError);
}

TEST(JsonHealth, WrongKindIsRejected) {
  telemetry::DeliveryHealthSnapshot h;
  std::string as_fault = to_json(h);
  EXPECT_THROW(fault_profile_from_json(as_fault), CodecError);
  EXPECT_THROW(delivery_health_from_json(to_json(FaultProfile{})), CodecError);
}

}  // namespace
}  // namespace eona::core
