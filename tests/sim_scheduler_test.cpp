// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, periodic tasks, and the runaway guard.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace eona::sim {
namespace {

TEST(Scheduler, StartsAtTimeZeroWithNoEvents) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0.0);
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.events_fired(), 0u);
}

TEST(Scheduler, FiresEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(Scheduler, SimultaneousEventsFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sched.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sched.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler sched;
  TimePoint seen = -1.0;
  sched.schedule_after(7.5, [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Scheduler, SchedulingInThePastIsAContractViolation) {
  Scheduler sched;
  sched.schedule_at(10.0, [] {});
  sched.run_all();
  EXPECT_THROW(sched.schedule_at(5.0, [] {}), ContractViolation);
}

TEST(Scheduler, NullActionIsAContractViolation) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(1.0, Scheduler::Action{}),
               ContractViolation);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle handle = sched.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  sched.cancel(handle);
  EXPECT_FALSE(handle.pending());
  sched.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFiring) {
  Scheduler sched;
  int fires = 0;
  EventHandle handle = sched.schedule_at(1.0, [&] { ++fires; });
  sched.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(handle.pending());
  sched.cancel(handle);  // no-op
  sched.cancel(handle);  // still a no-op
  EXPECT_EQ(fires, 1);
}

TEST(Scheduler, DefaultConstructedHandleIsNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  std::vector<TimePoint> times;
  sched.schedule_at(1.0, [&] {
    times.push_back(sched.now());
    sched.schedule_after(1.0, [&] { times.push_back(sched.now()); });
  });
  sched.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndSetsClock) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1.0, [&] { ++fired; });
  sched.schedule_at(5.0, [&] { ++fired; });
  sched.schedule_at(10.0, [&] { ++fired; });
  sched.run_until(5.0);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline fire
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
  sched.run_until(20.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sched.now(), 20.0);
}

TEST(Scheduler, RunUntilWithOnlyCancelledEventsAdvancesClock) {
  Scheduler sched;
  EventHandle handle = sched.schedule_at(3.0, [] {});
  sched.cancel(handle);
  sched.run_until(10.0);
  EXPECT_DOUBLE_EQ(sched.now(), 10.0);
}

TEST(Scheduler, RunAllGuardsAgainstRunawayLoops) {
  Scheduler sched;
  std::function<void()> rearm = [&] { sched.schedule_after(0.001, rearm); };
  sched.schedule_after(0.001, rearm);
  EXPECT_THROW(sched.run_all(/*max_events=*/1000), Error);
}

TEST(Scheduler, NextEventTimeSkipsCancelled) {
  Scheduler sched;
  EventHandle first = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  sched.cancel(first);
  EXPECT_DOUBLE_EQ(sched.next_event_time(), 2.0);
}

TEST(Scheduler, NextEventTimeOrFallsBackWhenEmpty) {
  Scheduler sched;
  EXPECT_DOUBLE_EQ(sched.next_event_time_or(99.0), 99.0);
  EventHandle pending = sched.schedule_at(3.0, [] {});
  EXPECT_DOUBLE_EQ(sched.next_event_time_or(99.0), 3.0);
  sched.cancel(pending);
  EXPECT_DOUBLE_EQ(sched.next_event_time_or(99.0), 99.0);
}

TEST(PeriodicTask, TicksAtFixedPeriod) {
  Scheduler sched;
  std::vector<TimePoint> ticks;
  PeriodicTask task(sched, 2.0, [&] { ticks.push_back(sched.now()); });
  sched.run_until(7.0);
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 2.0);
  EXPECT_DOUBLE_EQ(ticks[1], 4.0);
  EXPECT_DOUBLE_EQ(ticks[2], 6.0);
  EXPECT_EQ(task.ticks(), 3u);
}

TEST(PeriodicTask, FireImmediatelyStartsAtOffset) {
  Scheduler sched;
  std::vector<TimePoint> ticks;
  PeriodicTask task(sched, 5.0, [&] { ticks.push_back(sched.now()); },
                    /*start_offset=*/1.0, /*fire_immediately=*/true);
  sched.run_until(12.0);
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 1.0);
  EXPECT_DOUBLE_EQ(ticks[1], 6.0);
  EXPECT_DOUBLE_EQ(ticks[2], 11.0);
}

TEST(PeriodicTask, StopIsIdempotentAndHalting) {
  Scheduler sched;
  int ticks = 0;
  PeriodicTask task(sched, 1.0, [&] {
    ++ticks;
    if (ticks == 3) task.stop();
  });
  sched.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  task.stop();
  sched.run_until(20.0);
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTask, SetPeriodAffectsSubsequentTicks) {
  Scheduler sched;
  std::vector<TimePoint> ticks;
  PeriodicTask task(sched, 1.0, [&] {
    ticks.push_back(sched.now());
    task.set_period(3.0);
  });
  sched.run_until(8.0);
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 1.0);
  EXPECT_DOUBLE_EQ(ticks[1], 4.0);
  EXPECT_DOUBLE_EQ(ticks[2], 7.0);
}

TEST(PeriodicTask, DestructorStopsTicking) {
  Scheduler sched;
  int ticks = 0;
  {
    PeriodicTask task(sched, 1.0, [&] { ++ticks; });
    sched.run_until(2.5);
  }
  sched.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, ZeroPeriodIsAContractViolation) {
  Scheduler sched;
  EXPECT_THROW(PeriodicTask(sched, 0.0, [] {}), ContractViolation);
}

/// Two identical event programs must fire identically (determinism).
TEST(Scheduler, DeterministicAcrossRuns) {
  auto run = [] {
    Scheduler sched;
    std::vector<std::string> log;
    for (int i = 0; i < 50; ++i) {
      double t = (i * 37 % 10) * 0.5;
      sched.schedule_at(t, [&log, i] { log.push_back(std::to_string(i)); });
    }
    sched.run_all();
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace eona::sim
