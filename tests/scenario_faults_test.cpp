// The --faults plumbing every eona_lab scenario shares (sim::schedule_faults):
//  * an explicitly-passed empty plan attaches no chaos engine at all, so the
//    scenario JSON and event trace stay byte-identical to the plan-free run
//    (the guarantee chaos.hpp documents),
//  * a non-empty exchange plan really reaches the broker (epoch fences fire
//    and the output moves),
//  * scale and cellular -- whose worlds predate the chaos engine -- accept
//    only the empty plan and reject everything else by name,
//  * the E20 broker_outage scenario sweeps byte-identically for any thread
//    count, faults and churn included.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "scenarios/lab.hpp"
#include "scenarios/sweep.hpp"
#include "sim/trace.hpp"

namespace eona {
namespace {

using Overrides = std::map<std::string, std::string>;

/// Cheap federation run (the E19/E20 topology at a fraction of the load).
Overrides small_federation(const std::string& faults) {
  Overrides ov{{"seed", "5"},
               {"run_duration", "240"},
               {"arrival_rate", "0.1"}};
  if (!faults.empty()) ov["faults"] = faults;
  return ov;
}

TEST(ScenarioFaults, EmptyPlanIsByteIdenticalToPlanFreeRun) {
  for (const char* scenario : {"federation", "quickstart"}) {
    Overrides without{{"seed", "3"}};
    Overrides with_empty = without;
    with_empty["faults"] = "";
    if (std::string(scenario) == "federation") {
      without = small_federation("");
      with_empty = without;
      with_empty["faults"] = "";
    }
    sim::TraceWriter trace_without, trace_with;
    core::JsonValue a = scenarios::run_scenario_json(scenario, without,
                                                     nullptr, &trace_without);
    core::JsonValue b = scenarios::run_scenario_json(scenario, with_empty,
                                                     nullptr, &trace_with);
    EXPECT_EQ(a.dump(2), b.dump(2)) << scenario;
    EXPECT_FALSE(trace_without.buffer().empty()) << scenario;
    EXPECT_EQ(trace_without.buffer(), trace_with.buffer()) << scenario;
  }
}

TEST(ScenarioFaults, ExchangePlanReachesTheBroker) {
  core::JsonValue clean =
      scenarios::run_scenario_json("federation", small_federation(""));
  scenarios::RunPerf perf;
  core::JsonValue faulted = scenarios::run_scenario_json(
      "federation", small_federation("crash:exchange@60;restart:exchange@120"),
      nullptr, nullptr, nullptr, &perf);
  EXPECT_NE(clean.dump(2), faulted.dump(2));
  // Ticks landed inside the outage window, so the epoch fence counted them.
  EXPECT_GT(perf.epoch_rejected, 0u);
}

TEST(ScenarioFaults, ScaleAndCellularAcceptOnlyTheEmptyPlan) {
  EXPECT_THROW((void)scenarios::run_scenario_json(
                   "scale", {{"faults", "down:x@1"}}),
               ConfigError);
  EXPECT_THROW((void)scenarios::run_scenario_json(
                   "cellular", {{"faults", "crash:exchange@1"}}),
               ConfigError);
}

TEST(ScenarioFaults, BrokerOutageSweepIdenticalForAnyThreadCount) {
  scenarios::SweepSpec spec;
  spec.scenario = "broker_outage";
  spec.seeds = {1, 2};
  spec.mode_key = "degraded";
  spec.modes = {"0", "1"};
  // The full E20 timeline at half scale: crash, restart, churn join/leave
  // all inside the run, load light enough for a unit test.
  spec.overrides = {{"run_duration", "300"},   {"video_duration", "60"},
                    {"crash_at", "90"},        {"restart_at", "150"},
                    {"churn_join_at", "195"},  {"churn_leave_at", "240"},
                    {"heavy_arrival_rate", "0.5"}};
  std::string trace_serial, trace_parallel;
  spec.threads = 1;
  core::JsonValue serial = scenarios::run_sweep(spec, &trace_serial);
  spec.threads = 2;
  core::JsonValue parallel = scenarios::run_sweep(spec, &trace_parallel);
  EXPECT_EQ(serial.dump(2), parallel.dump(2));
  EXPECT_FALSE(trace_serial.empty());
  EXPECT_EQ(trace_serial, trace_parallel);
}

}  // namespace
}  // namespace eona
