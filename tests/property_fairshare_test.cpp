// Property sweep for the max-min fair allocator over 200 seeded random
// topologies. net_fairshare_test.cpp checks the bottleneck characterisation
// on linear backbones; this sweep generates richer random graphs (backbone +
// shortcut links, flows over arbitrary link subsets) and checks three
// invariants the simulator's fluid model leans on:
//
//  * bottleneck fair share -- no unsatisfied flow is beaten on every one of
//    its saturated links (equivalently: each has a link where it is maximal);
//  * work conservation -- no unsatisfied flow has slack on every link it
//    crosses; rates cannot be grown without violating a constraint;
//  * permutation invariance -- shuffling the flow order permutes the rate
//    vector and changes nothing else.
#include "net/fairshare.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace eona::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = 1e-6;

struct Instance {
  Topology topo;
  std::vector<FlowSpec> flows;
};

/// Random topology: a router backbone plus random shortcut links, with flows
/// over random (not necessarily contiguous) link subsets. Every flow has at
/// least one link, so elastic demand is always legal.
Instance random_instance(std::uint64_t seed) {
  sim::Rng rng(seed);
  Instance inst;
  const int node_count = static_cast<int>(rng.uniform_int(3, 12));
  std::vector<NodeId> nodes;
  for (int i = 0; i < node_count; ++i)
    nodes.push_back(inst.topo.add_node(NodeKind::kRouter,
                                       "n" + std::to_string(i)));

  std::vector<LinkId> links;
  for (int i = 0; i + 1 < node_count; ++i)
    links.push_back(inst.topo.add_link(nodes[i], nodes[i + 1],
                                       mbps(rng.uniform(1, 200)), 0.0));
  const int shortcuts = static_cast<int>(rng.uniform_int(0, node_count / 2));
  for (int s = 0; s < shortcuts; ++s) {
    int a = static_cast<int>(rng.uniform_int(0, node_count - 1));
    int b = static_cast<int>(rng.uniform_int(0, node_count - 1));
    if (a == b) continue;
    links.push_back(
        inst.topo.add_link(nodes[a], nodes[b], mbps(rng.uniform(1, 200)), 0.0));
  }

  const int flow_count = static_cast<int>(rng.uniform_int(1, 30));
  for (int f = 0; f < flow_count; ++f) {
    Path path;
    for (LinkId l : links)
      if (rng.bernoulli(0.3)) path.push_back(l);
    if (path.empty())
      path.push_back(links[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))]);
    double demand = rng.bernoulli(0.4) ? kInf : mbps(rng.uniform(0.05, 80));
    inst.flows.push_back(FlowSpec{std::move(path), demand});
  }
  return inst;
}

std::vector<double> link_loads(const Topology& topo,
                               const std::vector<FlowSpec>& flows,
                               const std::vector<BitsPerSecond>& rates) {
  std::vector<double> load(topo.link_count(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f)
    for (LinkId l : flows[f].path) load[l.value()] += rates[f];
  return load;
}

class FairSharePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairSharePropertyTest, FeasibleAndBottleneckFair) {
  Instance inst = random_instance(GetParam());
  auto rates = max_min_allocation(inst.topo, inst.flows);
  ASSERT_EQ(rates.size(), inst.flows.size());

  std::vector<double> load = link_loads(inst.topo, inst.flows, rates);
  for (std::size_t f = 0; f < inst.flows.size(); ++f) {
    EXPECT_GE(rates[f], -kTol) << "flow " << f;
    EXPECT_LE(rates[f], inst.flows[f].demand + kTol) << "flow " << f;
  }
  for (std::size_t l = 0; l < inst.topo.link_count(); ++l) {
    double cap =
        inst.topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
    EXPECT_LE(load[l], cap * (1 + 1e-9) + kTol) << "link " << l;
  }

  // Bottleneck fair share: every demand-unsatisfied flow must cross some
  // saturated link on which no co-located flow gets a strictly higher rate.
  for (std::size_t f = 0; f < inst.flows.size(); ++f) {
    if (rates[f] >= inst.flows[f].demand - kTol) continue;
    bool has_bottleneck = false;
    for (LinkId l : inst.flows[f].path) {
      double cap = inst.topo.link(l).capacity;
      if (load[l.value()] < cap - std::max(kTol, 1e-9 * cap)) continue;
      bool maximal = true;
      for (std::size_t g = 0; g < inst.flows.size() && maximal; ++g) {
        if (g == f || rates[g] <= rates[f] + kTol) continue;
        for (LinkId gl : inst.flows[g].path)
          if (gl == l) maximal = false;
      }
      if (maximal) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "seed " << GetParam() << ": flow " << f << " (rate " << rates[f]
        << ") is unsatisfied yet maximal on none of its saturated links";
  }
}

TEST_P(FairSharePropertyTest, WorkConserving) {
  Instance inst = random_instance(GetParam());
  auto rates = max_min_allocation(inst.topo, inst.flows);
  std::vector<double> load = link_loads(inst.topo, inst.flows, rates);

  // No unsatisfied flow can be grown: each must cross at least one link with
  // (numerically) zero slack. Otherwise bumping that one flow by the minimum
  // slack would be a strictly better feasible allocation.
  for (std::size_t f = 0; f < inst.flows.size(); ++f) {
    if (rates[f] >= inst.flows[f].demand - kTol) continue;
    double min_slack = kInf;
    for (LinkId l : inst.flows[f].path) {
      double cap = inst.topo.link(l).capacity;
      min_slack = std::min(min_slack, cap - load[l.value()]);
    }
    EXPECT_LE(min_slack, std::max(kTol, 1e-9 * rates[f]))
        << "seed " << GetParam() << ": flow " << f
        << " is unsatisfied but has " << min_slack
        << " bps of slack on every link it crosses";
  }
}

TEST_P(FairSharePropertyTest, PermutationInvariant) {
  Instance inst = random_instance(GetParam());
  auto rates = max_min_allocation(inst.topo, inst.flows);

  // Shuffle the flow order with an independent stream and re-solve: each
  // flow's rate must ride along with it (up to summation rounding).
  std::vector<std::size_t> perm(inst.flows.size());
  std::iota(perm.begin(), perm.end(), 0);
  sim::Rng shuffle_rng(GetParam() ^ 0x5DEECE66Dull);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1],
              perm[static_cast<std::size_t>(
                  shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

  std::vector<FlowSpec> shuffled;
  for (std::size_t i : perm) shuffled.push_back(inst.flows[i]);
  auto shuffled_rates = max_min_allocation(inst.topo, shuffled);
  ASSERT_EQ(shuffled_rates.size(), rates.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    EXPECT_NEAR(shuffled_rates[i], rates[perm[i]],
                kTol + 1e-9 * rates[perm[i]])
        << "seed " << GetParam() << ": flow " << perm[i]
        << " changed rate when moved to position " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairSharePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 200));

}  // namespace
}  // namespace eona::net
