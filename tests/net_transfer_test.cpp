// Tests for volume transfers over the fluid network: completion timing is
// analytically exact, including across rate changes, cancellation, and
// callback-driven chaining.
#include "net/transfer.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace eona::net {
namespace {

class TransferTest : public ::testing::Test {
 protected:
  TransferTest() {
    a = topo.add_node(NodeKind::kRouter, "a");
    b = topo.add_node(NodeKind::kRouter, "b");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1));
  }
  Topology topo;
  NodeId a, b;
  LinkId ab;
};

TEST_F(TransferTest, SingleTransferCompletesAtVolumeOverRate) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  TimePoint done_at = -1.0;
  transfers.start({ab}, megabits(20),
                  [&](TransferId) { done_at = sched.now(); });
  sched.run_all();
  // 20 Mb at 10 Mbps = 2 s.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
  EXPECT_EQ(transfers.active_count(), 0u);
  EXPECT_EQ(net.flow_count(), 0u);
}

TEST_F(TransferTest, TwoConcurrentTransfersShareFairly) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  std::vector<TimePoint> done;
  transfers.start({ab}, megabits(10),
                  [&](TransferId) { done.push_back(sched.now()); });
  transfers.start({ab}, megabits(10),
                  [&](TransferId) { done.push_back(sched.now()); });
  sched.run_all();
  // Both at 5 Mbps until both finish at t=2 s.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST_F(TransferTest, ProgressIsBankedAcrossRateChanges) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  TimePoint done_at = -1.0;
  // Transfer of 10 Mb. Alone: 10 Mbps. At t=0.5 a second transfer starts,
  // halving the rate.
  transfers.start({ab}, megabits(10),
                  [&](TransferId) { done_at = sched.now(); });
  sched.schedule_at(0.5, [&] {
    transfers.start({ab}, megabits(100), nullptr);
  });
  sched.run_all();
  // 5 Mb delivered by t=0.5; remaining 5 Mb at 5 Mbps = 1 s more.
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST_F(TransferTest, DemandCapLimitsRate) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  TimePoint done_at = -1.0;
  transfers.start({ab}, megabits(4),
                  [&](TransferId) { done_at = sched.now(); },
                  /*demand=*/mbps(2));
  sched.run_all();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST_F(TransferTest, StatusReflectsLiveProgress) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  TransferId id = transfers.start({ab}, megabits(10), nullptr);
  sched.run_until(0.5);
  TransferStatus status = transfers.status(id);
  EXPECT_NEAR(status.remaining, megabits(5), 1e3);
  EXPECT_NEAR(status.current_rate, mbps(10), 1.0);
  EXPECT_DOUBLE_EQ(status.total, megabits(10));
  EXPECT_DOUBLE_EQ(status.started_at, 0.0);
}

TEST_F(TransferTest, CancelStopsCompletionAndFreesTheFlow) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  bool fired = false;
  TransferId id = transfers.start({ab}, megabits(10),
                                  [&](TransferId) { fired = true; });
  sched.run_until(0.2);
  transfers.cancel(id);
  EXPECT_FALSE(transfers.active(id));
  EXPECT_EQ(net.flow_count(), 0u);
  sched.run_all();
  EXPECT_FALSE(fired);
  transfers.cancel(id);  // idempotent
}

TEST_F(TransferTest, StatusOfUnknownTransferThrows) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  EXPECT_THROW(transfers.status(TransferId(7)), NotFoundError);
  EXPECT_THROW(transfers.flow(TransferId(7)), NotFoundError);
}

TEST_F(TransferTest, CompletionCallbackMayStartNewTransfers) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  std::vector<TimePoint> completions;
  std::function<void(int)> chain = [&](int remaining) {
    transfers.start({ab}, megabits(10), [&, remaining](TransferId) {
      completions.push_back(sched.now());
      if (remaining > 1) chain(remaining - 1);
    });
  };
  chain(3);
  sched.run_all();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 1.0, 1e-9);
  EXPECT_NEAR(completions[1], 2.0, 1e-9);
  EXPECT_NEAR(completions[2], 3.0, 1e-9);
}

TEST_F(TransferTest, StarvedTransferResumesWhenCapacityReturns) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  TimePoint done_at = -1.0;
  transfers.start({ab}, megabits(10),
                  [&](TransferId) { done_at = sched.now(); });
  sched.schedule_at(0.5, [&] { net.set_link_capacity(ab, 0.0); });
  sched.schedule_at(10.5, [&] { net.set_link_capacity(ab, mbps(10)); });
  sched.run_all();
  // 5 Mb by 0.5 s, starved for 10 s, remaining 5 Mb takes 0.5 s.
  EXPECT_NEAR(done_at, 11.0, 1e-9);
}

TEST_F(TransferTest, SetDemandAdjustsPacing) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  TimePoint done_at = -1.0;
  TransferId id = transfers.start({ab}, megabits(10),
                                  [&](TransferId) { done_at = sched.now(); });
  sched.schedule_at(0.5, [&] { transfers.set_demand(id, mbps(1)); });
  sched.run_all();
  // 5 Mb by 0.5 s at 10 Mbps, then 5 Mb at 1 Mbps = 5 s.
  EXPECT_NEAR(done_at, 5.5, 1e-9);
}

TEST_F(TransferTest, ManyTransfersAllCompleteExactlyOnce) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  int completions = 0;
  for (int i = 0; i < 40; ++i)
    transfers.start({ab}, megabits(1 + i % 5),
                    [&](TransferId) { ++completions; });
  sched.run_all();
  EXPECT_EQ(completions, 40);
  EXPECT_EQ(transfers.active_count(), 0u);
  EXPECT_EQ(net.flow_count(), 0u);
}

TEST_F(TransferTest, ZeroVolumeIsAContractViolation) {
  sim::Scheduler sched;
  Network net(topo);
  TransferManager transfers(sched, net);
  EXPECT_THROW(transfers.start({ab}, 0.0, nullptr), ContractViolation);
}

}  // namespace
}  // namespace eona::net
