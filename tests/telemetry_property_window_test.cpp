// Property test: the WindowedAggregator's incrementally maintained
// query/snapshot results are BIT-identical to a from-scratch oracle that
// re-merges every live bucket chronologically on every call.
//
// The oracle mirrors the canonical semantics documented in aggregator.hpp:
// a group's windowed aggregate is the left-fold, from a default
// MetricAggregate, of its per-bucket aggregates over live buckets in
// chronological order. The incremental path (prefix fold + newest bucket
// last + memoized snapshot) must reproduce exactly that, across randomized
// schedules of ingest bursts, time advances (including jumps that recycle
// several buckets), backdated records, and interleaved reads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <tuple>
#include <type_traits>
#include <vector>

#include "sim/rng.hpp"
#include "telemetry/aggregator.hpp"

namespace eona::telemetry {
namespace {

constexpr Dim kMask = Dim::kIsp | Dim::kCdn;

/// From-scratch reference: plain per-bucket maps, full chronological merge
/// on every read. Deliberately the simplest possible implementation.
class OracleWindowed {
 public:
  OracleWindowed(Duration window, std::size_t buckets)
      : span_(window / static_cast<double>(buckets)), buckets_(buckets) {}

  void ingest(const SessionRecord& record) {
    std::int64_t idx =
        static_cast<std::int64_t>(record.timestamp / span_);
    // Mirror the ring's recycling: slot contents survive only while no
    // newer slice claimed the same slot.
    auto [it, inserted] = ring_.try_emplace(slot(idx));
    if (inserted || it->second.index != idx) {
      it->second.index = idx;
      it->second.groups.clear();
    }
    it->second.groups[project(record.dims, kMask)].add(record.metrics);
  }

  [[nodiscard]] MetricAggregate query(const Dimensions& dims,
                                      TimePoint now) const {
    Dimensions key = project(dims, kMask);
    MetricAggregate merged;
    for_each_live_chronological(now, [&](const BucketState& bucket) {
      auto it = bucket.groups.find(key);
      if (it != bucket.groups.end()) merged.merge(it->second);
    });
    return merged;
  }

  [[nodiscard]] std::vector<std::pair<Dimensions, MetricAggregate>> snapshot(
      TimePoint now) const {
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                        std::uint32_t>,
             Dimensions>
        seen;
    for_each_live_chronological(now, [&](const BucketState& bucket) {
      for (const auto& [dims, agg] : bucket.groups)
        seen.emplace(dim_tuple(dims), dims);
    });
    std::vector<std::pair<Dimensions, MetricAggregate>> result;
    for (const auto& [key, dims] : seen) {
      MetricAggregate merged = query(dims, now);
      if (merged.empty()) continue;
      result.emplace_back(dims, merged);
    }
    return result;
  }

 private:
  struct BucketState {
    std::int64_t index = -1;
    std::map<Dimensions, MetricAggregate,
             decltype([](const Dimensions& a, const Dimensions& b) {
               return dim_order(a, b);
             })>
        groups;
  };

  [[nodiscard]] std::int64_t slot(std::int64_t idx) const {
    return idx % static_cast<std::int64_t>(buckets_);
  }

  template <typename Fn>
  void for_each_live_chronological(TimePoint now, Fn&& fn) const {
    std::int64_t newest = static_cast<std::int64_t>(now / span_);
    std::int64_t oldest = newest - static_cast<std::int64_t>(buckets_) + 1;
    for (std::int64_t idx = oldest; idx <= newest; ++idx) {
      if (idx < 0) continue;
      auto it = ring_.find(slot(idx));
      if (it == ring_.end() || it->second.index != idx) continue;
      fn(it->second);
    }
  }

  Duration span_;
  std::size_t buckets_;
  std::map<std::int64_t, BucketState> ring_;
};

bool bit_equal(const MetricAggregate& a, const MetricAggregate& b) {
  static_assert(std::is_trivially_copyable_v<MetricAggregate>);
  return std::memcmp(&a, &b, sizeof(MetricAggregate)) == 0;
}

SessionRecord random_record(sim::Rng& rng, TimePoint t) {
  SessionRecord r;
  r.session = SessionId(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)));
  r.dims.isp = IspId(static_cast<std::uint32_t>(rng.uniform_int(0, 7)));
  r.dims.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
  r.dims.server = ServerId(static_cast<std::uint32_t>(rng.uniform_int(0, 15)));
  r.metrics.buffering_ratio = rng.uniform(0, 0.5);
  r.metrics.avg_bitrate = rng.uniform(1e5, 8e6);
  r.metrics.join_time = rng.uniform(0, 12);
  r.metrics.rebuffer_rate = rng.uniform(0, 2);
  r.metrics.page_load_time = rng.uniform(0, 5);
  r.metrics.ttfb = rng.uniform(0, 1);
  r.metrics.engagement = rng.uniform(0, 1);
  r.metrics.bytes_delivered = rng.uniform(1e4, 1e8);
  r.timestamp = t;
  return r;
}

/// One randomized schedule: bursts of beacons, random time advances (some
/// big enough to expire several buckets), occasional backdated records, and
/// reads after every step.
void run_schedule(std::uint64_t seed) {
  sim::Rng rng(seed);
  const Duration window = 60.0;
  const std::size_t buckets = 6;
  WindowedAggregator incremental(kMask, window, buckets);
  OracleWindowed oracle(window, buckets);

  TimePoint now = 0.0;
  std::vector<Dimensions> probes;
  for (int step = 0; step < 40; ++step) {
    // Advance time: usually a fraction of a bucket, sometimes far enough to
    // recycle most or all of the ring.
    double advance = rng.uniform(0, 1) < 0.15
                         ? rng.uniform(0, 2.5 * window)
                         : rng.uniform(0, 2.0 * window / buckets);
    now += advance;

    int burst = static_cast<int>(rng.uniform_int(0, 24));
    for (int i = 0; i < burst; ++i) {
      // Mostly current beacons, occasionally backdated into an older (maybe
      // already-expired) slice.
      TimePoint t = rng.uniform(0, 1) < 0.2
                        ? std::max(0.0, now - rng.uniform(0, 1.5 * window))
                        : now;
      SessionRecord r = random_record(rng, t);
      probes.push_back(r.dims);
      incremental.ingest(r);
      oracle.ingest(r);
    }

    // Interleave reads (including repeats at the same position, which hit
    // the memoized paths) with ingest.
    auto inc_snap = incremental.snapshot(now);
    auto ora_snap = oracle.snapshot(now);
    ASSERT_EQ(inc_snap.size(), ora_snap.size()) << "seed " << seed;
    for (std::size_t i = 0; i < inc_snap.size(); ++i) {
      ASSERT_EQ(dim_tuple(inc_snap[i].first), dim_tuple(ora_snap[i].first))
          << "seed " << seed;
      ASSERT_TRUE(bit_equal(inc_snap[i].second, ora_snap[i].second))
          << "seed " << seed << " group " << i;
    }
    auto inc_again = incremental.snapshot(now);
    ASSERT_EQ(inc_again.size(), inc_snap.size());

    for (int q = 0; q < 4 && !probes.empty(); ++q) {
      const Dimensions& dims =
          probes[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(probes.size()) - 1))];
      ASSERT_TRUE(
          bit_equal(incremental.query(dims, now), oracle.query(dims, now)))
          << "seed " << seed;
    }
    // Unseen group stays empty on both sides.
    Dimensions unseen;
    unseen.isp = IspId(999);
    unseen.cdn = CdnId(999);
    ASSERT_TRUE(
        bit_equal(incremental.query(unseen, now), oracle.query(unseen, now)));
  }
}

TEST(WindowedAggregatorProperty, BitIdenticalToFromScratchMergeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) run_schedule(seed);
}

TEST(WindowedAggregatorProperty, QueryAtEarlierPositionAfterLaterReads) {
  // Reads move the cached window position forward and back again; the
  // incremental path must refold correctly in both directions.
  sim::Rng rng(7);
  WindowedAggregator incremental(kMask, 60.0, 6);
  OracleWindowed oracle(60.0, 6);
  std::vector<SessionRecord> records;
  for (int i = 0; i < 200; ++i) {
    SessionRecord r = random_record(rng, rng.uniform(0, 120.0));
    records.push_back(r);
    incremental.ingest(r);
    oracle.ingest(r);
  }
  for (TimePoint now : {120.0, 90.0, 125.0, 60.0, 130.0}) {
    for (const auto& r : records) {
      ASSERT_TRUE(bit_equal(incremental.query(r.dims, now),
                            oracle.query(r.dims, now)))
          << "now " << now;
    }
  }
}

}  // namespace
}  // namespace eona::telemetry
