// SweepRunner and scenarios::run_sweep: parallel fan-out must be an
// implementation detail. Results come back in job order, errors propagate,
// and the collated sweep JSON is byte-identical for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "scenarios/sweep.hpp"
#include "sim/sweep.hpp"

namespace eona {
namespace {

TEST(SweepRunnerTest, ResultsComeBackInJobOrder) {
  sim::SweepRunner runner(4);
  std::vector<int> results =
      runner.run(64, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i], static_cast<int>(i) * 3);
}

TEST(SweepRunnerTest, SerialAndParallelAgree) {
  auto fn = [](std::size_t i) { return static_cast<double>(i * i) + 0.5; };
  sim::SweepRunner serial(1);
  sim::SweepRunner parallel(4);
  EXPECT_EQ(serial.run(17, fn), parallel.run(17, fn));
}

TEST(SweepRunnerTest, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  sim::SweepRunner runner(4);
  runner.run(100, [&](std::size_t i) {
    hits[i].fetch_add(1);
    return 0;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunnerTest, PropagatesWorkerException) {
  sim::SweepRunner runner(4);
  EXPECT_THROW(runner.run(32,
                          [](std::size_t i) {
                            if (i == 7) throw std::runtime_error("job 7");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunnerTest, ZeroThreadsMeansHardwareDefault) {
  EXPECT_GE(sim::SweepRunner(0).threads(), 1u);
  EXPECT_EQ(sim::SweepRunner(3).threads(), 3u);
}

TEST(SweepRunnerTest, HandlesZeroJobs) {
  sim::SweepRunner runner(4);
  EXPECT_TRUE(runner.run(0, [](std::size_t) { return 1; }).empty());
}

scenarios::SweepSpec small_flashcrowd_spec(std::size_t threads) {
  scenarios::SweepSpec spec;
  spec.scenario = "flashcrowd";
  spec.seeds = {1, 2, 3};
  spec.modes = {"baseline", "eona"};
  spec.overrides["run_duration"] = "40";
  spec.overrides["arrival_rate"] = "0.5";
  spec.threads = threads;
  return spec;
}

TEST(RunSweepTest, CollatedJsonIsByteIdenticalAcrossThreadCounts) {
  std::string serial = scenarios::run_sweep(small_flashcrowd_spec(1)).dump(2);
  std::string pooled = scenarios::run_sweep(small_flashcrowd_spec(4)).dump(2);
  EXPECT_EQ(serial, pooled);
}

TEST(RunSweepTest, ExpandsSeedMajorModeMinorGrid) {
  core::JsonValue out = scenarios::run_sweep(small_flashcrowd_spec(2));
  EXPECT_EQ(out.at("scenario").as_string(), "flashcrowd");
  EXPECT_EQ(static_cast<int>(out.at("run_count").as_number()), 6);
  const auto& runs = out.at("runs").as_array();
  ASSERT_EQ(runs.size(), 6u);
  // seed-major, mode-minor: (1,baseline) (1,eona) (2,baseline) ...
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(static_cast<int>(runs[i].at("seed").as_number()),
              static_cast<int>(i / 2) + 1);
}

TEST(RunSweepTest, RejectsEmptySpec) {
  scenarios::SweepSpec no_scenario;
  no_scenario.seeds = {1};
  EXPECT_THROW(scenarios::run_sweep(no_scenario), ConfigError);

  scenarios::SweepSpec no_seeds;
  no_seeds.scenario = "flashcrowd";
  no_seeds.seeds.clear();
  EXPECT_THROW(scenarios::run_sweep(no_seeds), ConfigError);
}

TEST(RunSweepTest, UnknownScenarioThrows) {
  scenarios::SweepSpec spec;
  spec.scenario = "nope";
  spec.seeds = {1};
  EXPECT_THROW(scenarios::run_sweep(spec), ConfigError);
}

}  // namespace
}  // namespace eona
