// Tests for the dynamic Network layer: flow lifecycle, rate recomputation,
// change hooks, dynamic capacity, link statistics, and introspection.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eona::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() {
    a = topo.add_node(NodeKind::kRouter, "a");
    b = topo.add_node(NodeKind::kRouter, "b");
    c = topo.add_node(NodeKind::kRouter, "c");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1));
    bc = topo.add_link(b, c, mbps(20), milliseconds(1));
  }
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;
};

TEST_F(NetworkTest, SingleElasticFlowFillsBottleneck) {
  Network net(topo);
  FlowId f = net.add_flow({ab, bc});
  EXPECT_NEAR(net.rate(f), mbps(10), 1.0);
  EXPECT_NEAR(net.link_utilization(ab), 1.0, 1e-6);
  EXPECT_NEAR(net.link_utilization(bc), 0.5, 1e-6);
  EXPECT_EQ(net.link_flow_count(ab), 1);
}

TEST_F(NetworkTest, RatesRebalanceOnArrivalAndDeparture) {
  Network net(topo);
  FlowId f1 = net.add_flow({ab});
  EXPECT_NEAR(net.rate(f1), mbps(10), 1.0);
  FlowId f2 = net.add_flow({ab});
  EXPECT_NEAR(net.rate(f1), mbps(5), 1.0);
  EXPECT_NEAR(net.rate(f2), mbps(5), 1.0);
  net.remove_flow(f2);
  EXPECT_NEAR(net.rate(f1), mbps(10), 1.0);
  EXPECT_FALSE(net.contains(f2));
}

TEST_F(NetworkTest, SetDemandCapsAndReleases) {
  Network net(topo);
  FlowId f1 = net.add_flow({ab});
  FlowId f2 = net.add_flow({ab});
  net.set_demand(f1, mbps(2));
  EXPECT_NEAR(net.rate(f1), mbps(2), 1.0);
  EXPECT_NEAR(net.rate(f2), mbps(8), 1.0);
  net.set_demand(f1, kElasticDemand);
  EXPECT_NEAR(net.rate(f1), mbps(5), 1.0);
}

TEST_F(NetworkTest, RerouteMovesLoad) {
  Network net(topo);
  FlowId f = net.add_flow({ab});
  EXPECT_EQ(net.link_flow_count(ab), 1);
  net.reroute(f, {bc});
  EXPECT_EQ(net.link_flow_count(ab), 0);
  EXPECT_EQ(net.link_flow_count(bc), 1);
  EXPECT_NEAR(net.rate(f), mbps(20), 1.0);
}

TEST_F(NetworkTest, RatesChangedHookFiresOncePerChange) {
  Network net(topo);
  int hook_calls = 0;
  std::vector<std::vector<RateChange>> reports;
  net.set_rates_changed_hook([&](const std::vector<RateChange>& changes) {
    ++hook_calls;
    reports.push_back(changes);
  });
  FlowId f = net.add_flow({ab});
  net.set_demand(f, mbps(1));
  net.reroute(f, {bc});
  net.set_link_capacity(ab, mbps(5));
  net.remove_flow(f);
  EXPECT_EQ(hook_calls, 5);
  // First mutation: the new flow's rate moved 0 -> capacity.
  ASSERT_EQ(reports[0].size(), 1u);
  EXPECT_EQ(reports[0][0].flow, f);
  EXPECT_NEAR(reports[0][0].rate, mbps(10), 1.0);
  // Capacity change on the now-empty link ab moves no flow rate.
  EXPECT_TRUE(reports[3].empty());
  EXPECT_TRUE(reports[4].empty());
}

TEST_F(NetworkTest, ReportsOnlyFlowsWhoseRateMoved) {
  Network net(topo);
  FlowId f1 = net.add_flow({ab});
  FlowId f2 = net.add_flow({bc});
  std::vector<RateChange> last;
  net.set_rates_changed_hook(
      [&](const std::vector<RateChange>& changes) { last = changes; });
  // Shrinking ab only moves f1; f2's component is untouched even under a
  // full re-solve (bit-identical recompute).
  net.set_link_capacity(ab, mbps(4));
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].flow, f1);
  EXPECT_NEAR(last[0].rate, mbps(4), 1.0);
  (void)f2;
}

TEST_F(NetworkTest, NoopDemandChangeSkipsHooks) {
  Network net(topo);
  FlowId f = net.add_flow({ab}, mbps(3));
  int hook_calls = 0;
  net.set_rates_changed_hook(
      [&](const std::vector<RateChange>&) { ++hook_calls; });
  net.set_demand(f, mbps(3));
  EXPECT_EQ(hook_calls, 0);
  net.set_link_capacity(ab, net.link_capacity(ab));
  EXPECT_EQ(hook_calls, 0);
}

TEST_F(NetworkTest, DynamicCapacityChangesRates) {
  Network net(topo);
  FlowId f = net.add_flow({ab});
  net.set_link_capacity(ab, mbps(4));
  EXPECT_NEAR(net.rate(f), mbps(4), 1.0);
  EXPECT_DOUBLE_EQ(net.link_capacity(ab), mbps(4));
  net.set_link_capacity(ab, 0.0);
  EXPECT_NEAR(net.rate(f), 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(net.link_utilization(ab), 1.0);  // unusable reads as full
}

TEST_F(NetworkTest, CongestionRequiresSaturationAndStarvation) {
  Network net(topo);
  // One demand-capped flow below capacity: not congested.
  FlowId f1 = net.add_flow({ab}, mbps(3));
  EXPECT_FALSE(net.link_congested(ab));
  // One elastic flow saturates and is starved: congested.
  net.add_flow({ab});
  EXPECT_TRUE(net.link_congested(ab));
  net.remove_flow(f1);
  EXPECT_TRUE(net.link_congested(ab));  // the elastic flow alone still wants more
}

TEST_F(NetworkTest, SaturatedButSatisfiedIsNotCongested) {
  Network net(topo);
  net.add_flow({ab}, mbps(10));  // demand exactly equals capacity
  EXPECT_NEAR(net.link_utilization(ab), 1.0, 1e-9);
  EXPECT_FALSE(net.link_congested(ab));
}

TEST_F(NetworkTest, FlowsOnAndEndpointIntrospection) {
  Network net(topo);
  FlowId f1 = net.add_flow({ab, bc});
  FlowId f2 = net.add_flow({bc});
  std::vector<FlowId> on_bc = net.flows_on(bc);
  ASSERT_EQ(on_bc.size(), 2u);
  EXPECT_EQ(on_bc[0], f1);
  EXPECT_EQ(on_bc[1], f2);
  EXPECT_EQ(net.flow_src(f1), a);
  EXPECT_EQ(net.flow_dst(f1), c);
  EXPECT_EQ(net.flow_src(f2), b);
}

TEST_F(NetworkTest, PredictedShareAccountsForExistingFlows) {
  Network net(topo);
  EXPECT_NEAR(net.predicted_share({ab}), mbps(10), 1.0);
  net.add_flow({ab});
  EXPECT_NEAR(net.predicted_share({ab}), mbps(5), 1.0);
  EXPECT_NEAR(net.predicted_share({ab, bc}), mbps(5), 1.0);
}

TEST_F(NetworkTest, UnknownFlowThrows) {
  Network net(topo);
  EXPECT_THROW(net.rate(FlowId(99)), NotFoundError);
  EXPECT_THROW(net.remove_flow(FlowId(99)), NotFoundError);
  EXPECT_THROW(net.set_demand(FlowId(99), 1.0), NotFoundError);
}

TEST_F(NetworkTest, FlowIdsAreNeverReused) {
  Network net(topo);
  FlowId f1 = net.add_flow({ab});
  net.remove_flow(f1);
  FlowId f2 = net.add_flow({ab});
  EXPECT_NE(f1, f2);
}

TEST_F(NetworkTest, DeterministicRatesRegardlessOfInsertionPattern) {
  Network net1(topo), net2(topo);
  FlowId a1 = net1.add_flow({ab});
  net1.add_flow({ab, bc});
  net1.remove_flow(a1);
  net1.add_flow({ab});

  net2.add_flow({ab, bc});
  net2.add_flow({ab});
  // Same multiset of flows; rates must match by path.
  double total1 = net1.link_allocated(ab);
  double total2 = net2.link_allocated(ab);
  EXPECT_NEAR(total1, total2, 1e-9);
}

}  // namespace
}  // namespace eona::net
