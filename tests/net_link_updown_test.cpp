// First-class link up/down semantics across the data plane:
//  * the Network's dynamic up/down overlay (effective vs configured
//    capacity, topology epochs, exactly-zero stranded shares),
//  * zero-capacity edge cases (no NaN utilisation, link_congested without a
//    divide-by-zero, empty-path flows),
//  * failure-aware Routing (down links excluded, fallback-path cache
//    invalidated per epoch),
//  * TransferManager stranding (aborts with the distinct "link-down" reason
//    instead of silently starving; rerouted flows survive the sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>

#include "net/network.hpp"
#include "net/routing.hpp"
#include "net/transfer.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::net {
namespace {

class LinkUpDownTest : public ::testing::Test {
 protected:
  LinkUpDownTest() {
    a = topo.add_node(NodeKind::kRouter, "a");
    b = topo.add_node(NodeKind::kRouter, "b");
    c = topo.add_node(NodeKind::kRouter, "c");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1), "ab");
    ac = topo.add_link(a, c, mbps(10), milliseconds(5), "ac");
    cb = topo.add_link(c, b, mbps(10), milliseconds(5), "cb");
    net.emplace(topo);
  }
  Topology topo;
  NodeId a, b, c;
  LinkId ab, ac, cb;
  std::optional<Network> net;
};

// --- up/down overlay -------------------------------------------------------

TEST_F(LinkUpDownTest, DownZeroesEffectiveCapacityKeepsConfigured) {
  EXPECT_DOUBLE_EQ(net->link_capacity(ab), mbps(10));
  net->set_link_up(ab, false);
  EXPECT_FALSE(net->link_up(ab));
  EXPECT_DOUBLE_EQ(net->link_capacity(ab), 0.0);
  EXPECT_DOUBLE_EQ(net->configured_link_capacity(ab), mbps(10));
  // Capacity configured mid-outage takes effect only on link up.
  net->set_link_capacity(ab, mbps(4));
  EXPECT_DOUBLE_EQ(net->link_capacity(ab), 0.0);
  net->set_link_up(ab, true);
  EXPECT_DOUBLE_EQ(net->link_capacity(ab), mbps(4));
  EXPECT_DOUBLE_EQ(net->configured_link_capacity(ab), mbps(4));
}

TEST_F(LinkUpDownTest, EpochBumpsOncePerTransition) {
  std::uint64_t epoch0 = net->topology_epoch();
  net->set_link_up(ab, true);  // already up: idempotent, no epoch bump
  EXPECT_EQ(net->topology_epoch(), epoch0);
  net->set_link_up(ab, false);
  EXPECT_EQ(net->topology_epoch(), epoch0 + 1);
  net->set_link_up(ab, false);  // idempotent again
  EXPECT_EQ(net->topology_epoch(), epoch0 + 1);
  net->set_link_up(ab, true);
  EXPECT_EQ(net->topology_epoch(), epoch0 + 2);
}

TEST_F(LinkUpDownTest, DownLinkStrandsItsFlowsAtExactlyZero) {
  FlowId direct = net->add_flow({ab});
  FlowId detour = net->add_flow({ac, cb});
  EXPECT_GT(net->rate(direct), 0.0);
  net->set_link_up(ab, false);
  // Exactly 0, not "very small": stranded is a distinct state.
  EXPECT_EQ(net->rate(direct), 0.0);
  EXPECT_FALSE(net->path_up(net->path(direct)));
  // The detour shares no link with the outage and keeps its full rate.
  EXPECT_DOUBLE_EQ(net->rate(detour), mbps(10));
  EXPECT_TRUE(net->path_up(net->path(detour)));
  net->set_link_up(ab, true);
  EXPECT_DOUBLE_EQ(net->rate(direct), mbps(10));
}

// --- zero-capacity edge cases ---------------------------------------------

TEST_F(LinkUpDownTest, ZeroCapacitySharesAreExactlyZeroNoNan) {
  FlowId flow = net->add_flow({ab});
  net->set_link_capacity(ab, 0.0);
  EXPECT_EQ(net->rate(flow), 0.0);
  EXPECT_FALSE(std::isnan(net->rate(flow)));
  EXPECT_DOUBLE_EQ(net->link_allocated(ab), 0.0);
  // A zero-capacity link reads as unusable, not as NaN or +inf.
  EXPECT_DOUBLE_EQ(net->link_utilization(ab), 1.0);
  EXPECT_FALSE(std::isnan(net->link_utilization(ab)));
}

TEST_F(LinkUpDownTest, LinkCongestedOnZeroCapacityDoesNotDivide) {
  net->add_flow({ab});  // elastic: wants more than the 0 it gets
  net->set_link_capacity(ab, 0.0);
  // Utilisation pegs at 1 and the flow is starved: congested, no FP traps.
  EXPECT_TRUE(net->link_congested(ab));
  // An idle zero-capacity link is saturated-by-definition but nobody on it
  // is starved, so it is not "congested".
  net->set_link_capacity(cb, 0.0);
  EXPECT_FALSE(net->link_congested(cb));
}

TEST_F(LinkUpDownTest, EmptyPathFlowIsLocalAndAlwaysUp) {
  FlowId local = net->add_flow({}, mbps(3));
  EXPECT_DOUBLE_EQ(net->rate(local), mbps(3));
  EXPECT_TRUE(net->path_up(net->path(local)));
  net->set_link_up(ab, false);  // unrelated outage cannot strand it
  EXPECT_DOUBLE_EQ(net->rate(local), mbps(3));
}

// --- failure-aware routing -------------------------------------------------

TEST_F(LinkUpDownTest, RoutingAvoidsDownLinksAndRecovers) {
  Routing routing(topo);
  routing.attach_link_state(&*net);
  EXPECT_EQ(routing.shortest_path(a, b), Path{ab});
  net->set_link_up(ab, false);
  EXPECT_EQ(routing.shortest_path(a, b), (Path{ac, cb}));
  net->set_link_up(ab, true);
  EXPECT_EQ(routing.shortest_path(a, b), Path{ab});
}

TEST_F(LinkUpDownTest, FallbackPathCacheInvalidatesPerEpoch) {
  Routing routing(topo);
  routing.attach_link_state(&*net);
  (void)routing.shortest_path(a, b);
  (void)routing.shortest_path(a, b);  // same epoch: memoised
  (void)routing.shortest_path(a, c);
  EXPECT_EQ(routing.cached_path_count(), 2u);
  net->set_link_up(cb, false);  // epoch moves: every cached path is suspect
  (void)routing.shortest_path(a, b);
  EXPECT_EQ(routing.cached_path_count(), 1u);
}

TEST_F(LinkUpDownTest, NoLiveRouteReportsAndThrows) {
  Routing routing(topo);
  routing.attach_link_state(&*net);
  net->set_link_up(ab, false);
  net->set_link_up(ac, false);
  EXPECT_FALSE(routing.has_route(a, b));
  EXPECT_THROW((void)routing.shortest_path(a, b), NotFoundError);
}

TEST_F(LinkUpDownTest, PathViaLinkUsesTheDemandedLinkEvenWhenDown) {
  // Documented contract: callers pick live peering points; the query does
  // not silently reroute around an explicit via link.
  Routing routing(topo);
  routing.attach_link_state(&*net);
  net->set_link_up(ab, false);
  EXPECT_EQ(routing.path_via_link(a, ab, b), Path{ab});
}

// --- transfer stranding ----------------------------------------------------

class StrandingTest : public LinkUpDownTest {
 protected:
  StrandingTest() : transfers(sched, *net) {
    net->set_event_bus(&bus, &sched);
    transfers.set_event_bus(&bus);
    bus.subscribe<sim::TransferAbortedEvent>(
        [this](const sim::TransferAbortedEvent& e) { aborts.push_back(e); });
  }
  sim::Scheduler sched;
  sim::EventBus bus;
  TransferManager transfers;
  std::vector<sim::TransferAbortedEvent> aborts;
};

TEST_F(StrandingTest, DeadLinkAbortsWithLinkDownReason) {
  bool completed = false;
  std::string failure;
  TransferId id = transfers.start(
      {ab}, mbps(10) * 100.0, [&](TransferId) { completed = true; },
      kElasticDemand,
      [&](TransferId, const char* reason) { failure = reason; });
  sched.run_until(1.0);
  ASSERT_TRUE(transfers.active(id));
  net->set_link_up(ab, false);
  sched.run_until(2.0);  // zero-delay sweep fires
  EXPECT_FALSE(transfers.active(id));
  EXPECT_FALSE(completed);
  EXPECT_EQ(failure, TransferManager::kLinkDownReason);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_STREQ(aborts[0].reason, TransferManager::kLinkDownReason);
  EXPECT_EQ(aborts[0].transfer, id.value());
}

TEST_F(StrandingTest, TransferOverAlreadyDeadLinkFailsNextStep) {
  net->set_link_up(ab, false);
  std::string failure;
  transfers.start({ab}, 1.0, [](TransferId) { FAIL() << "completed"; },
                  kElasticDemand,
                  [&](TransferId, const char* reason) { failure = reason; });
  sched.run_until(0.1);
  EXPECT_EQ(failure, TransferManager::kLinkDownReason);
  EXPECT_EQ(transfers.active_count(), 0u);
}

TEST_F(StrandingTest, CongestionStarvedTransferIsNotAborted) {
  // Rate 0 from contention alone must NOT abort: only a dead link does.
  transfers.start({ab}, mbps(10) * 1000.0, [](TransferId) {});
  TransferId starved = transfers.start(
      {ab}, 1.0, [](TransferId) {}, 0.0,  // demand 0: rate exactly 0
      [](TransferId, const char*) { FAIL() << "aborted a live flow"; });
  sched.run_until(5.0);
  EXPECT_TRUE(transfers.active(starved));
}

TEST_F(StrandingTest, RerouteBeforeTheSweepSavesTheTransfer) {
  bool failed = false;
  TransferId id = transfers.start(
      {ab}, mbps(10) * 5.0, [](TransferId) {}, kElasticDemand,
      [&](TransferId, const char*) { failed = true; });
  sched.run_until(1.0);
  net->set_link_up(ab, false);  // queues the abort sweep at now+0
  // A controller reacting synchronously (InfP on the fault event) moves the
  // flow to the surviving path before the sweep runs: the transfer lives.
  net->reroute(transfers.flow(id), {ac, cb});
  sched.run_until(2.0);
  EXPECT_TRUE(transfers.active(id));
  EXPECT_FALSE(failed);
  sched.run_until(60.0);
  EXPECT_FALSE(transfers.active(id));  // completed over the detour
  EXPECT_FALSE(failed);
}

}  // namespace
}  // namespace eona::net
