// Tests for the deterministic RNG facade and the Zipf sampler: determinism,
// stream independence, and distribution sanity (parameterized sweeps).
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace eona::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // Forking then draining the parent must not change the child's stream.
  Rng parent1(7);
  Rng child1 = parent1.fork();
  std::vector<double> child1_draws;
  for (int i = 0; i < 10; ++i) child1_draws.push_back(child1.uniform(0, 1));

  Rng parent2(7);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) parent2.uniform(0, 1);  // drain parent
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(child2.uniform(0, 1), child1_draws[i]);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t x = rng.uniform_int(0, 4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 4);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, InvalidBoundsAreContractViolations) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
  EXPECT_THROW(rng.pareto(0.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.poisson(-1.0), ContractViolation);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalWithZeroSigmaReturnsMean) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(rng.normal(3.14, 0.0), 3.14);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(8);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

// --- parameterized distribution-mean checks --------------------------------

struct MeanCase {
  const char* name;
  double expected_mean;
  double tolerance;
  double (*draw)(Rng&);
};

class RngMeanTest : public ::testing::TestWithParam<MeanCase> {};

TEST_P(RngMeanTest, EmpiricalMeanMatches) {
  const MeanCase& c = GetParam();
  Rng rng(1234);
  double total = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) total += c.draw(rng);
  EXPECT_NEAR(total / kSamples, c.expected_mean, c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, RngMeanTest,
    ::testing::Values(
        MeanCase{"uniform01", 0.5, 0.02,
                 [](Rng& r) { return r.uniform(0, 1); }},
        MeanCase{"exponential_mean3", 3.0, 0.1,
                 [](Rng& r) { return r.exponential(3.0); }},
        MeanCase{"normal_mu2", 2.0, 0.05,
                 [](Rng& r) { return r.normal(2.0, 1.0); }},
        MeanCase{"poisson_mean4", 4.0, 0.1,
                 [](Rng& r) { return static_cast<double>(r.poisson(4.0)); }},
        MeanCase{"bernoulli_03", 0.3, 0.02,
                 [](Rng& r) { return r.bernoulli(0.3) ? 1.0 : 0.0; }},
        // Pareto(xm=1, alpha=3) has mean alpha*xm/(alpha-1) = 1.5.
        MeanCase{"pareto_a3", 1.5, 0.1,
                 [](Rng& r) { return r.pareto(1.0, 3.0); }}),
    [](const ::testing::TestParamInfo<MeanCase>& info) {
      return info.param.name;
    });

// --- Zipf sampler ------------------------------------------------------------

TEST(ZipfSampler, ProbabilitiesAreNormalisedAndDecreasing) {
  ZipfSampler zipf(10, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < 10; ++r) {
    total += zipf.probability(r);
    if (r > 0) EXPECT_LT(zipf.probability(r), zipf.probability(r - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, SkewZeroIsUniform) {
  ZipfSampler zipf(5, 0.0);
  for (std::size_t r = 0; r < 5; ++r)
    EXPECT_NEAR(zipf.probability(r), 0.2, 1e-12);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchAnalytic) {
  ZipfSampler zipf(8, 0.8);
  Rng rng(99);
  std::vector<int> counts(8, 0);
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 8; ++r) {
    double freq = static_cast<double>(counts[r]) / kSamples;
    EXPECT_NEAR(freq, zipf.probability(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace eona::sim
