// Tests for windowed link statistics.
#include "control/link_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/transfer.hpp"

namespace eona::control {
namespace {

class LinkMonitorTest : public ::testing::Test {
 protected:
  LinkMonitorTest() {
    a = topo.add_node(net::NodeKind::kRouter, "a");
    b = topo.add_node(net::NodeKind::kRouter, "b");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1));
    network.emplace(topo);
  }
  net::Topology topo;
  NodeId a, b;
  LinkId ab;
  sim::Scheduler sched;
  std::optional<net::Network> network;
};

TEST_F(LinkMonitorTest, IdleLinkReadsZero) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  sched.run_until(20.0);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(ab), 0.0);
  EXPECT_DOUBLE_EQ(monitor.starved_fraction(ab), 0.0);
  EXPECT_FALSE(monitor.congested(ab, 0.8));
  EXPECT_GT(monitor.sample_count(), 15u);
}

TEST_F(LinkMonitorTest, DutyCycleShowsUpInTheMean) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 20);
  // Saturate the link for exactly half the window.
  FlowId flow{};
  sched.schedule_at(0.5, [&] { flow = network->add_flow({ab}); });
  sched.schedule_at(10.5, [&] { network->remove_flow(flow); });
  sched.run_until(20.5);
  EXPECT_NEAR(monitor.mean_utilization(ab), 0.5, 0.1);
  EXPECT_NEAR(monitor.starved_fraction(ab), 0.5, 0.1);
}

TEST_F(LinkMonitorTest, WindowForgetsOldSamples) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  FlowId flow{};
  sched.schedule_at(0.5, [&] { flow = network->add_flow({ab}); });
  sched.schedule_at(5.5, [&] { network->remove_flow(flow); });
  // 30 s later the 10-sample window holds only idle samples.
  sched.run_until(35.0);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(ab), 0.0);
}

TEST_F(LinkMonitorTest, CongestedNeedsBothConditions) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  // Demand-capped at capacity: high utilisation but nobody starved.
  network->add_flow({ab}, mbps(10));
  sched.run_until(15.0);
  EXPECT_GT(monitor.mean_utilization(ab), 0.9);
  EXPECT_DOUBLE_EQ(monitor.starved_fraction(ab), 0.0);
  EXPECT_FALSE(monitor.congested(ab, 0.85));
  // Add an elastic flow: now flows are starved too.
  network->add_flow({ab});
  sched.run_until(40.0);
  EXPECT_TRUE(monitor.congested(ab, 0.85));
}

TEST_F(LinkMonitorTest, MeanFlowsTracksConcurrency) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  network->add_flow({ab});
  network->add_flow({ab});
  sched.run_until(15.0);
  EXPECT_NEAR(monitor.mean_flows(ab), 2.0, 0.01);
}

TEST_F(LinkMonitorTest, CapacityFlapReadsAsFullUtilization) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  network->add_flow({ab}, mbps(5));  // 50% of nominal
  sched.run_until(12.0);
  EXPECT_NEAR(monitor.mean_utilization(ab), 0.5, 0.05);
  // Brown the link out under the demand: utilisation pegs at 1 (and a
  // zero-capacity flap must not divide by zero).
  sched.schedule_at(12.5, [&] { network->set_link_capacity(ab, 0.0); });
  sched.run_until(25.0);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(ab), 1.0);
  EXPECT_FALSE(std::isnan(monitor.mean_utilization(ab)));
  // Restore: the window recovers to the true 50% once the flap ages out.
  sched.schedule_at(25.5, [&] { network->set_link_capacity(ab, mbps(10)); });
  sched.run_until(40.0);
  EXPECT_NEAR(monitor.mean_utilization(ab), 0.5, 0.05);
}

TEST_F(LinkMonitorTest, DownUpCycleWithClearDropsStaleSamples) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 20);
  network->add_flow({ab});  // elastic: saturates the link
  sched.run_until(10.0);
  EXPECT_GT(monitor.mean_utilization(ab), 0.9);
  EXPECT_GT(monitor.window_fill(ab), 5u);
  // Outage. Down samples read utilisation 1 (unusable), so the ring keeps a
  // high mean -- which is stale the instant the link is back up. clear() on
  // each transition (what InfP::on_fault does) drops the straddle.
  sched.schedule_at(10.5, [&] {
    network->set_link_up(ab, false);
    monitor.clear(ab);
  });
  sched.run_until(12.0);
  sched.schedule_at(12.5, [&] {
    network->set_link_up(ab, true);
    network->remove_flow(FlowId(0));  // the viewer left during the outage
    monitor.clear(ab);
  });
  sched.run_until(12.9);  // before the t=13 sample refills the ring
  EXPECT_EQ(monitor.window_fill(ab), 0u);
  // Post-outage the link is idle; without clear() the ring would still be
  // reporting ~1.0 from the pre-outage and down-time samples.
  sched.run_until(17.0);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(ab), 0.0);
  EXPECT_FALSE(monitor.congested(ab, 0.8));
}

TEST_F(LinkMonitorTest, WithoutClearTheRingStraddlesTheOutage) {
  // Negative control for the clear() contract: the ring alone does NOT
  // forget the outage until the window ages it out.
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 20);
  network->add_flow({ab});
  sched.run_until(10.0);
  sched.schedule_at(10.5, [&] {
    network->set_link_up(ab, false);
    network->remove_flow(FlowId(0));
  });
  sched.schedule_at(12.5, [&] { network->set_link_up(ab, true); });
  sched.run_until(14.0);
  // Stale: the idle, healthy link still reads as hot.
  EXPECT_GT(monitor.mean_utilization(ab), 0.5);
}

TEST_F(LinkMonitorTest, ClearUntrackedLinkIsNoop) {
  LinkMonitor monitor(sched, *network, {}, 1.0, 10);
  EXPECT_NO_THROW(monitor.clear(ab));
  EXPECT_FALSE(monitor.tracks(ab));
}

TEST_F(LinkMonitorTest, TrackAddsLinksLazily) {
  LinkMonitor monitor(sched, *network, {}, 1.0, 10);
  EXPECT_FALSE(monitor.tracks(ab));
  EXPECT_THROW(monitor.mean_utilization(ab), NotFoundError);
  monitor.track(ab);
  network->add_flow({ab});
  sched.run_until(5.0);
  EXPECT_GT(monitor.mean_utilization(ab), 0.9);
}

}  // namespace
}  // namespace eona::control
