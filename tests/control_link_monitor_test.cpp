// Tests for windowed link statistics.
#include "control/link_monitor.hpp"

#include <gtest/gtest.h>

#include "net/transfer.hpp"

namespace eona::control {
namespace {

class LinkMonitorTest : public ::testing::Test {
 protected:
  LinkMonitorTest() {
    a = topo.add_node(net::NodeKind::kRouter, "a");
    b = topo.add_node(net::NodeKind::kRouter, "b");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1));
    network.emplace(topo);
  }
  net::Topology topo;
  NodeId a, b;
  LinkId ab;
  sim::Scheduler sched;
  std::optional<net::Network> network;
};

TEST_F(LinkMonitorTest, IdleLinkReadsZero) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  sched.run_until(20.0);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(ab), 0.0);
  EXPECT_DOUBLE_EQ(monitor.starved_fraction(ab), 0.0);
  EXPECT_FALSE(monitor.congested(ab, 0.8));
  EXPECT_GT(monitor.sample_count(), 15u);
}

TEST_F(LinkMonitorTest, DutyCycleShowsUpInTheMean) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 20);
  // Saturate the link for exactly half the window.
  FlowId flow{};
  sched.schedule_at(0.5, [&] { flow = network->add_flow({ab}); });
  sched.schedule_at(10.5, [&] { network->remove_flow(flow); });
  sched.run_until(20.5);
  EXPECT_NEAR(monitor.mean_utilization(ab), 0.5, 0.1);
  EXPECT_NEAR(monitor.starved_fraction(ab), 0.5, 0.1);
}

TEST_F(LinkMonitorTest, WindowForgetsOldSamples) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  FlowId flow{};
  sched.schedule_at(0.5, [&] { flow = network->add_flow({ab}); });
  sched.schedule_at(5.5, [&] { network->remove_flow(flow); });
  // 30 s later the 10-sample window holds only idle samples.
  sched.run_until(35.0);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(ab), 0.0);
}

TEST_F(LinkMonitorTest, CongestedNeedsBothConditions) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  // Demand-capped at capacity: high utilisation but nobody starved.
  network->add_flow({ab}, mbps(10));
  sched.run_until(15.0);
  EXPECT_GT(monitor.mean_utilization(ab), 0.9);
  EXPECT_DOUBLE_EQ(monitor.starved_fraction(ab), 0.0);
  EXPECT_FALSE(monitor.congested(ab, 0.85));
  // Add an elastic flow: now flows are starved too.
  network->add_flow({ab});
  sched.run_until(40.0);
  EXPECT_TRUE(monitor.congested(ab, 0.85));
}

TEST_F(LinkMonitorTest, MeanFlowsTracksConcurrency) {
  LinkMonitor monitor(sched, *network, {ab}, 1.0, 10);
  network->add_flow({ab});
  network->add_flow({ab});
  sched.run_until(15.0);
  EXPECT_NEAR(monitor.mean_flows(ab), 2.0, 0.01);
}

TEST_F(LinkMonitorTest, TrackAddsLinksLazily) {
  LinkMonitor monitor(sched, *network, {}, 1.0, 10);
  EXPECT_FALSE(monitor.tracks(ab));
  EXPECT_THROW(monitor.mean_utilization(ab), NotFoundError);
  monitor.track(ab);
  network->add_flow({ab});
  sched.run_until(5.0);
  EXPECT_GT(monitor.mean_utilization(ab), 0.9);
}

}  // namespace
}  // namespace eona::control
