// Tests for the web page-load and abandonment models.
#include "qoe/web_qoe.hpp"

#include <gtest/gtest.h>

namespace eona::qoe {
namespace {

PageLoadInputs base_inputs() {
  PageLoadInputs in;
  in.rtt = 0.050;
  in.bandwidth = mbps(10);
  in.page_bits = megabits(8);
  in.objects = 12;
  in.server_think = 0.05;
  return in;
}

TEST(WebQoe, TtfbFollowsHandshakeModel) {
  PageLoadResult out = evaluate_page_load(base_inputs());
  // 1.5 RTT setup + think + 0.5 RTT first byte = 2 RTT + think.
  EXPECT_NEAR(out.ttfb, 2.0 * 0.050 + 0.05, 1e-12);
}

TEST(WebQoe, PltDecomposition) {
  PageLoadInputs in = base_inputs();
  PageLoadResult out = evaluate_page_load(in);
  double transfer = in.page_bits / in.bandwidth;   // 0.8 s
  double rounds = ((in.objects + 5) / 6) * in.rtt;  // 2 rounds
  EXPECT_NEAR(out.plt, out.ttfb + transfer + rounds, 1e-12);
}

TEST(WebQoe, MoreBandwidthNeverHurts) {
  PageLoadInputs in = base_inputs();
  double prev = 1e9;
  for (double mb : {1.0, 2.0, 5.0, 20.0, 100.0}) {
    in.bandwidth = mbps(mb);
    double plt = evaluate_page_load(in).plt;
    EXPECT_LT(plt, prev);
    prev = plt;
  }
}

TEST(WebQoe, MoreRttAlwaysHurts) {
  PageLoadInputs in = base_inputs();
  double prev = 0.0;
  for (double ms : {10.0, 50.0, 100.0, 300.0}) {
    in.rtt = ms / 1000.0;
    double plt = evaluate_page_load(in).plt;
    EXPECT_GT(plt, prev);
    prev = plt;
  }
}

TEST(WebQoe, EngagementCurveShape) {
  WebEngagementModel model;
  EXPECT_DOUBLE_EQ(model.predict(0.5), 1.0);
  EXPECT_DOUBLE_EQ(model.predict(model.tolerable_plt), 1.0);
  // One halving time past tolerable: 0.5.
  EXPECT_NEAR(model.predict(model.tolerable_plt + model.halving_time), 0.5,
              1e-12);
  EXPECT_NEAR(model.predict(model.tolerable_plt + 2 * model.halving_time),
              0.25, 1e-12);
  EXPECT_THROW(model.predict(-1.0), ContractViolation);
}

TEST(WebQoe, SessionMetricsPacking) {
  PageLoadInputs in = base_inputs();
  PageLoadResult out = evaluate_page_load(in);
  telemetry::SessionMetrics m = to_session_metrics(in, out);
  EXPECT_DOUBLE_EQ(m.page_load_time, out.plt);
  EXPECT_DOUBLE_EQ(m.ttfb, out.ttfb);
  EXPECT_DOUBLE_EQ(m.engagement, out.engagement);
  EXPECT_DOUBLE_EQ(m.bytes_delivered, in.page_bits);
}

TEST(WebQoe, InvalidInputsAreContractViolations) {
  PageLoadInputs in = base_inputs();
  in.bandwidth = 0.0;
  EXPECT_THROW(evaluate_page_load(in), ContractViolation);
  in = base_inputs();
  in.objects = 0;
  EXPECT_THROW(evaluate_page_load(in), ContractViolation);
}

}  // namespace
}  // namespace eona::qoe
