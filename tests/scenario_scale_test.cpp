// Acceptance pins for the sector-partitioned scale scenario (E17): the
// serial and sector-parallel executions must produce byte-identical JSON
// for every seed, admission is exact, and unsupported artifact modes are
// rejected up front.
#include "scenarios/scale.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "scenarios/lab.hpp"
#include "sim/trace.hpp"

namespace eona::scenarios {
namespace {

using Overmap = std::map<std::string, std::string>;

/// Small but structurally honest config: several sectors, several barrier
/// rounds, a little headroom churn.
Overmap small_config(std::uint64_t seed, std::size_t threads) {
  return {{"seed", std::to_string(seed)},
          {"threads", std::to_string(threads)},
          {"sessions", "160"},
          {"sectors", "8"},
          {"run_duration", "150"},
          {"video_duration", "30"},
          {"barrier_period", "20"},
          {"access_capacity_mbps", "20"}};
}

std::string run_json(std::uint64_t seed, std::size_t threads) {
  return run_scenario_json("scale", small_config(seed, threads)).dump(2);
}

TEST(ScaleScenario, SectorParallelIsByteIdenticalToSerialForSeeds1To5) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string serial = run_json(seed, 1);
    EXPECT_EQ(run_json(seed, 2), serial) << "seed " << seed << " threads 2";
    EXPECT_EQ(run_json(seed, 4), serial) << "seed " << seed << " threads 4";
  }
}

TEST(ScaleScenario, RepeatedRunsAreDeterministic) {
  EXPECT_EQ(run_json(42, 2), run_json(42, 2));
}

TEST(ScaleScenario, AdmitsExactlyTheConfiguredSessions) {
  ScaleConfig config;
  config.sessions = 161;  // deliberately not divisible by sectors
  config.sectors = 8;
  config.threads = 2;
  config.run_duration = 150.0;
  config.video_duration = 30.0;
  config.barrier_period = 20.0;
  config.access_capacity = mbps(20);
  ScaleResult r = run_scale(config);
  EXPECT_EQ(r.arrivals, 161u);
  EXPECT_EQ(r.qoe.sessions, 161u);
  ASSERT_EQ(r.per_sector.size(), 8u);
  std::size_t total = 0;
  for (const QoeSummary& qoe : r.per_sector) total += qoe.sessions;
  EXPECT_EQ(total, 161u);
  // The first sector carries the remainder session.
  EXPECT_EQ(r.per_sector[0].sessions, 21u);
  EXPECT_EQ(r.per_sector[7].sessions, 20u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.peak_concurrent, 0u);
  EXPECT_GE(r.barrier_rounds, 7u);
}

TEST(ScaleScenario, DiurnalProfileStillAdmitsExactQuota) {
  Overmap ov = small_config(3, 2);
  ov["diurnal"] = "true";
  core::JsonValue out = run_scenario_json("scale", ov);
  EXPECT_EQ(out.dump(2), run_scenario_json("scale", ov).dump(2));
}

TEST(ScaleScenario, PerfCountersAccumulateWhenRequested) {
  RunPerf perf;
  core::JsonValue out = run_scenario_json("scale", small_config(1, 1), nullptr,
                                          nullptr, nullptr, &perf);
  EXPECT_GT(perf.events, 0u);
  (void)out;
}

TEST(ScaleScenario, TraceAndStoreAreRejected) {
  sim::TraceWriter trace;
  telemetry::ColumnStore store;
  EXPECT_THROW(run_scenario_json("scale", small_config(1, 1), nullptr, &trace),
               ConfigError);
  EXPECT_THROW(run_scenario_json("scale", small_config(1, 1), nullptr, nullptr,
                                 &store),
               ConfigError);
}

TEST(ScaleScenario, ModeChangesOutcomesButNotDeterminism) {
  Overmap baseline = small_config(2, 2);
  baseline["mode"] = "baseline";
  std::string a = run_scenario_json("scale", baseline).dump(2);
  EXPECT_EQ(run_scenario_json("scale", baseline).dump(2), a);
  EXPECT_NE(a, run_json(2, 2));  // eona mode differs from baseline
}

}  // namespace
}  // namespace eona::scenarios
