// Acceptance pins for the sector-partitioned scale scenario (E17): the
// serial and sector-parallel executions must produce byte-identical JSON
// for every seed, admission is exact, and unsupported artifact modes are
// rejected up front.
#include "scenarios/scale.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "scenarios/lab.hpp"
#include "sim/trace.hpp"

namespace eona::scenarios {
namespace {

using Overmap = std::map<std::string, std::string>;

/// Small but structurally honest config: several sectors, several barrier
/// rounds, a little headroom churn.
Overmap small_config(std::uint64_t seed, std::size_t threads) {
  return {{"seed", std::to_string(seed)},
          {"threads", std::to_string(threads)},
          {"sessions", "160"},
          {"sectors", "8"},
          {"run_duration", "150"},
          {"video_duration", "30"},
          {"barrier_period", "20"},
          {"access_capacity_mbps", "20"}};
}

std::string run_json(std::uint64_t seed, std::size_t threads) {
  return run_scenario_json("scale", small_config(seed, threads)).dump(2);
}

TEST(ScaleScenario, SectorParallelIsByteIdenticalToSerialForSeeds1To5) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string serial = run_json(seed, 1);
    EXPECT_EQ(run_json(seed, 2), serial) << "seed " << seed << " threads 2";
    EXPECT_EQ(run_json(seed, 4), serial) << "seed " << seed << " threads 4";
  }
}

TEST(ScaleScenario, RepeatedRunsAreDeterministic) {
  EXPECT_EQ(run_json(42, 2), run_json(42, 2));
}

TEST(ScaleScenario, AdmitsExactlyTheConfiguredSessions) {
  ScaleConfig config;
  config.sessions = 161;  // deliberately not divisible by sectors
  config.sectors = 8;
  config.threads = 2;
  config.run_duration = 150.0;
  config.video_duration = 30.0;
  config.barrier_period = 20.0;
  config.access_capacity = mbps(20);
  ScaleResult r = run_scale(config);
  EXPECT_EQ(r.arrivals, 161u);
  EXPECT_EQ(r.qoe.sessions, 161u);
  ASSERT_EQ(r.per_sector.size(), 8u);
  std::size_t total = 0;
  for (const QoeSummary& qoe : r.per_sector) total += qoe.sessions;
  EXPECT_EQ(total, 161u);
  // The first sector carries the remainder session.
  EXPECT_EQ(r.per_sector[0].sessions, 21u);
  EXPECT_EQ(r.per_sector[7].sessions, 20u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.peak_concurrent, 0u);
  EXPECT_GE(r.barrier_rounds, 7u);
}

TEST(ScaleScenario, DiurnalProfileStillAdmitsExactQuota) {
  Overmap ov = small_config(3, 2);
  ov["diurnal"] = "true";
  core::JsonValue out = run_scenario_json("scale", ov);
  EXPECT_EQ(out.dump(2), run_scenario_json("scale", ov).dump(2));
}

/// Config whose arrival window closes well before the run ends, so the tail
/// rounds have genuinely quiescent sectors for the barrier loop to elide.
Overmap quiet_tail_config(std::uint64_t seed, std::size_t threads) {
  Overmap ov = small_config(seed, threads);
  ov["run_duration"] = "240";
  ov["arrival_window"] = "90";
  return ov;
}

TEST(ScaleScenario, ElisionOnOffIsByteIdenticalForSeeds1To5) {
  // Skipping a quiescent sector must be observationally equivalent to
  // dispatching it: deferred periodic ticks fire at the same sim times on
  // catch-up, so the result JSON is byte-identical for every seed and
  // thread count, elision on or off.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string reference;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      Overmap on = quiet_tail_config(seed, threads);
      Overmap off = on;
      off["elide"] = "false";
      std::string elided = run_scenario_json("scale", on).dump(2);
      EXPECT_EQ(run_scenario_json("scale", off).dump(2), elided)
          << "seed " << seed << " threads " << threads;
      if (reference.empty()) reference = elided;
      EXPECT_EQ(elided, reference) << "seed " << seed << " threads "
                                   << threads;
    }
  }
}

TEST(ScaleScenario, QuietTailActuallyElidesSectors) {
  ScaleConfig config;
  config.sessions = 160;
  config.sectors = 8;
  config.threads = 2;
  config.run_duration = 240.0;
  config.video_duration = 30.0;
  config.barrier_period = 20.0;
  config.arrival_window = 90.0;
  config.access_capacity = mbps(20);
  ScaleResult on = run_scale(config);
  EXPECT_GT(on.sectors_elided, 0u);
  // Every sector is either dispatched or elided each barrier round, plus
  // one dense drain round at the end.
  EXPECT_EQ(on.sectors_dispatched + on.sectors_elided,
            (on.barrier_rounds + 1) * config.sectors);

  config.elide_quiescent = false;
  ScaleResult off = run_scale(config);
  EXPECT_EQ(off.sectors_elided, 0u);
  EXPECT_EQ(off.sectors_dispatched, (off.barrier_rounds + 1) * config.sectors);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.arrivals, on.arrivals);
  EXPECT_EQ(off.reallocations, on.reallocations);
}

TEST(ScaleScenario, DiurnalNightTroughElidesAndStaysDeterministic) {
  // diurnal_night_frac=0 zeroes the overnight arrival rate, so sectors that
  // drain during the trough are elided mid-run, not just in the tail.
  Overmap ov = small_config(4, 2);
  ov["run_duration"] = "600";
  ov["video_duration"] = "20";
  ov["sessions"] = "400";
  ov["diurnal"] = "true";
  ov["diurnal_night_frac"] = "0";
  std::string a = run_scenario_json("scale", ov).dump(2);
  EXPECT_EQ(run_scenario_json("scale", ov).dump(2), a);
  Overmap off = ov;
  off["elide"] = "false";
  off["threads"] = "1";
  EXPECT_EQ(run_scenario_json("scale", off).dump(2), a);
}

TEST(ScaleScenario, PerfCountersAccumulateWhenRequested) {
  RunPerf perf;
  core::JsonValue out = run_scenario_json("scale", small_config(1, 1), nullptr,
                                          nullptr, nullptr, &perf);
  EXPECT_GT(perf.events, 0u);
  EXPECT_GT(perf.barrier_rounds, 0u);
  EXPECT_GT(perf.sectors_dispatched, 0u);
  EXPECT_GT(perf.parallel_advance_ns, 0u);
  double frac = perf.serial_fraction();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  (void)out;
}

TEST(ScaleScenario, TraceAndStoreAreRejected) {
  sim::TraceWriter trace;
  telemetry::ColumnStore store;
  EXPECT_THROW(run_scenario_json("scale", small_config(1, 1), nullptr, &trace),
               ConfigError);
  EXPECT_THROW(run_scenario_json("scale", small_config(1, 1), nullptr, nullptr,
                                 &store),
               ConfigError);
}

TEST(ScaleScenario, ModeChangesOutcomesButNotDeterminism) {
  Overmap baseline = small_config(2, 2);
  baseline["mode"] = "baseline";
  std::string a = run_scenario_json("scale", baseline).dump(2);
  EXPECT_EQ(run_scenario_json("scale", baseline).dump(2), a);
  EXPECT_NE(a, run_json(2, 2));  // eona mode differs from baseline
}

}  // namespace
}  // namespace eona::scenarios
