// Tests for time-series recording: step-function semantics, time-weighted
// means, resampling, and MetricSet accounting.
#include "sim/timeseries.hpp"

#include <gtest/gtest.h>

namespace eona::sim {
namespace {

TEST(TimeSeries, RecordsAndExposesSamples) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.record(1.0, 10.0);
  ts.record(2.0, 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.back().value, 20.0);
}

TEST(TimeSeries, RejectsTimeGoingBackwards) {
  TimeSeries ts;
  ts.record(5.0, 1.0);
  EXPECT_THROW(ts.record(4.0, 2.0), ContractViolation);
  ts.record(5.0, 3.0);  // equal timestamps are fine
}

TEST(TimeSeries, BasicStats) {
  TimeSeries ts;
  ts.record(0.0, 2.0);
  ts.record(1.0, 8.0);
  ts.record(2.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 5.0);
  EXPECT_DOUBLE_EQ(ts.min(), 2.0);
  EXPECT_DOUBLE_EQ(ts.max(), 8.0);
}

TEST(TimeSeries, StatsOnEmptySeriesAreContractViolations) {
  TimeSeries ts;
  EXPECT_THROW(ts.mean(), ContractViolation);
  EXPECT_THROW(ts.min(), ContractViolation);
  EXPECT_THROW(ts.back(), ContractViolation);
  EXPECT_THROW(ts.value_at(0.0), ContractViolation);
}

TEST(TimeSeries, ValueAtIsAStepFunction) {
  TimeSeries ts;
  ts.record(1.0, 10.0);
  ts.record(3.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.0), 10.0);  // before first: first value
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2.999), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(3.0), 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 30.0);
}

TEST(TimeSeries, TimeWeightedMeanOfStepFunction) {
  TimeSeries ts;
  ts.record(0.0, 10.0);
  ts.record(4.0, 20.0);  // 10 for [0,4), 20 for [4,8)
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(0.0, 8.0), 15.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(0.0, 4.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(4.0, 8.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(2.0, 6.0), 15.0);
}

TEST(TimeSeries, TimeWeightedMeanExtendsFirstValueBackwards) {
  TimeSeries ts;
  ts.record(5.0, 10.0);
  // The gauge is taken as 10 before its first sample too.
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(0.0, 10.0), 10.0);
}

TEST(TimeSeries, ResampleOntoGrid) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  ts.record(2.5, 2.0);
  std::vector<Sample> grid = ts.resample(0.0, 5.0, 1.0);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0].value, 1.0);
  EXPECT_DOUBLE_EQ(grid[2].value, 1.0);
  EXPECT_DOUBLE_EQ(grid[3].value, 2.0);  // t=3 after the 2.5 sample
  EXPECT_DOUBLE_EQ(grid[4].value, 2.0);
}

TEST(MetricSet, SeriesAreCreatedOnDemand) {
  MetricSet metrics;
  EXPECT_FALSE(metrics.has_series("x"));
  metrics.series("x").record(1.0, 2.0);
  EXPECT_TRUE(metrics.has_series("x"));
  const MetricSet& view = metrics;
  EXPECT_DOUBLE_EQ(view.series("x").back().value, 2.0);
}

TEST(MetricSet, MissingSeriesLookupOnConstIsAViolation) {
  const MetricSet metrics;
  EXPECT_THROW(metrics.series("nope"), ContractViolation);
}

TEST(MetricSet, CountersAccumulate) {
  MetricSet metrics;
  EXPECT_DOUBLE_EQ(metrics.counter("hits"), 0.0);
  metrics.count("hits");
  metrics.count("hits", 2.5);
  EXPECT_DOUBLE_EQ(metrics.counter("hits"), 3.5);
  EXPECT_EQ(metrics.all_counters().size(), 1u);
}

}  // namespace
}  // namespace eona::sim
