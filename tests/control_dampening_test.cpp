// Tests for dampening primitives and oscillation detection.
#include "control/dampening.hpp"

#include <gtest/gtest.h>

#include "control/oscillation.hpp"

namespace eona::control {
namespace {

TEST(DwellTimer, FirstChangeIsAlwaysAllowed) {
  DwellTimer timer(60.0);
  EXPECT_TRUE(timer.may_change(0.0));
}

TEST(DwellTimer, BlocksUntilDwellElapses) {
  DwellTimer timer(60.0);
  timer.record_change(100.0);
  EXPECT_FALSE(timer.may_change(130.0));
  EXPECT_FALSE(timer.may_change(159.9));
  EXPECT_TRUE(timer.may_change(160.0));
}

TEST(DwellTimer, ZeroDwellNeverBlocks) {
  DwellTimer timer(0.0);
  timer.record_change(5.0);
  EXPECT_TRUE(timer.may_change(5.0));
}

TEST(ImprovementGate, RequiresRelativeMargin) {
  ImprovementGate gate(0.2);
  EXPECT_FALSE(gate.clears(10.0, 11.0));
  EXPECT_FALSE(gate.clears(10.0, 12.0));  // exactly at margin: not strict
  EXPECT_TRUE(gate.clears(10.0, 12.01));
}

TEST(ExponentialBackoff, DoublesOnReversals) {
  ExponentialBackoff backoff(10.0, /*quiet=*/1000.0);
  EXPECT_TRUE(backoff.may_change(0.0));
  backoff.record_change(0.0, 1);
  EXPECT_DOUBLE_EQ(backoff.current_dwell(), 10.0);
  backoff.record_change(10.0, 2);   // 1 -> 2
  backoff.record_change(20.0, 1);   // back to 1: reversal, dwell doubles
  EXPECT_DOUBLE_EQ(backoff.current_dwell(), 20.0);
  backoff.record_change(40.0, 2);   // reversal again
  EXPECT_DOUBLE_EQ(backoff.current_dwell(), 40.0);
  EXPECT_FALSE(backoff.may_change(60.0));
  EXPECT_TRUE(backoff.may_change(80.0));
}

TEST(ExponentialBackoff, QuietPeriodResets) {
  ExponentialBackoff backoff(10.0, /*quiet=*/50.0);
  backoff.record_change(0.0, 1);
  backoff.record_change(10.0, 2);
  backoff.record_change(20.0, 1);  // reversal: dwell 20
  EXPECT_DOUBLE_EQ(backoff.current_dwell(), 20.0);
  backoff.record_change(100.0, 2);  // 80 s of quiet: reset to base
  EXPECT_DOUBLE_EQ(backoff.current_dwell(), 10.0);
}

TEST(ExponentialBackoff, CapsAtMaxDwell) {
  ExponentialBackoff backoff(10.0, 1e9, 2.0, /*max=*/35.0);
  backoff.record_change(0.0, 1);
  for (int i = 0; i < 10; ++i)
    backoff.record_change(100.0 * (i + 1), i % 2 == 0 ? 2 : 1);
  EXPECT_DOUBLE_EQ(backoff.current_dwell(), 35.0);
}

// --- DecisionTrace ------------------------------------------------------------

TEST(DecisionTrace, DeduplicatesUnchangedValues) {
  DecisionTrace trace;
  trace.record(0.0, 1);
  trace.record(1.0, 1);
  trace.record(2.0, 2);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.change_count(), 1u);
  EXPECT_EQ(trace.last_value(), 2);
}

TEST(DecisionTrace, ChangesAfterAndSettledAt) {
  DecisionTrace trace;
  trace.record(0.0, 1);
  trace.record(10.0, 2);
  trace.record(20.0, 3);
  trace.record(30.0, 4);
  EXPECT_EQ(trace.changes_after(15.0), 2u);
  EXPECT_DOUBLE_EQ(trace.settled_at(), 30.0);
}

TEST(DecisionTrace, ReversalsAreAbaPatterns) {
  DecisionTrace trace;
  for (int i = 0; i < 6; ++i) trace.record(i, i % 2);  // 0 1 0 1 0 1
  EXPECT_EQ(trace.reversal_count(), 4u);

  DecisionTrace progressive;
  for (int i = 0; i < 6; ++i) progressive.record(i, i);  // no reversals
  EXPECT_EQ(progressive.reversal_count(), 0u);
}

// --- CycleDetector --------------------------------------------------------------

TEST(CycleDetector, DetectsPeriodTwoCycle) {
  CycleDetector detector;
  for (int i = 0; i < 12; ++i) detector.observe(i % 2);
  EXPECT_TRUE(detector.cycling());
  EXPECT_FALSE(detector.converged());
}

TEST(CycleDetector, DetectsLongerCycles) {
  CycleDetector detector;
  for (int i = 0; i < 20; ++i) detector.observe(i % 4);
  EXPECT_TRUE(detector.cycling(/*max_period=*/8));
}

TEST(CycleDetector, ConstantTailIsConvergenceNotCycling) {
  CycleDetector detector;
  detector.observe(1);
  detector.observe(2);
  for (int i = 0; i < 10; ++i) detector.observe(7);
  EXPECT_FALSE(detector.cycling());
  EXPECT_TRUE(detector.converged());
}

TEST(CycleDetector, NeedsEnoughRepetitions) {
  CycleDetector detector;
  detector.observe(0);
  detector.observe(1);
  detector.observe(0);
  detector.observe(1);
  EXPECT_FALSE(detector.cycling());  // only one full repetition of period 2
}

TEST(CycleDetector, ChaoticTrajectoryIsNeither) {
  CycleDetector detector;
  int value = 1;
  for (int i = 0; i < 30; ++i) {
    value = (value * 31 + 7) % 101;  // pseudo-chaotic
    detector.observe(value);
  }
  EXPECT_FALSE(detector.cycling());
  EXPECT_FALSE(detector.converged());
}

}  // namespace
}  // namespace eona::control
