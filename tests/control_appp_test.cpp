// Tests for the AppP control plane: A2I report construction, I2A
// consumption, the two player brains, and primary-CDN steering.
#include "control/appp.hpp"

#include <gtest/gtest.h>

#include "net/transfer.hpp"

namespace eona::control {
namespace {

class AppPTest : public ::testing::Test {
 protected:
  AppPTest() : cdn1(CdnId(0), "cdn1", NodeId{}), cdn2(CdnId(1), "cdn2", NodeId{}) {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    s1 = topo.add_node(net::NodeKind::kCdnServer, "s1");
    s2 = topo.add_node(net::NodeKind::kCdnServer, "s2");
    origin = topo.add_node(net::NodeKind::kOrigin, "origin");
    topo.add_link(edge, client, mbps(100), milliseconds(1));
    e1 = topo.add_link(s1, edge, mbps(50), milliseconds(1));
    e2 = topo.add_link(s2, edge, mbps(50), milliseconds(1));
    topo.add_link(origin, s1, mbps(20), milliseconds(5));
    topo.add_link(origin, s2, mbps(20), milliseconds(5));
    network.emplace(topo);

    cdn1 = app::Cdn(CdnId(0), "cdn1", origin);
    cdn2 = app::Cdn(CdnId(1), "cdn2", origin);
    srv1a = cdn1.add_server(s1, e1, 8);
    srv1b = cdn1.add_server(s2, e2, 8);
    cdn2.add_server(s2, e2, 8);
    directory.add(&cdn1);
    directory.add(&cdn2);

    AppPConfig config;
    config.qoe_window = 60.0;
    config.k_anonymity = 1;
    config.bad_qoe_buffering = 0.10;
    appp.emplace(sched, *network, directory, ProviderId(0), config);
  }

  /// Feed one beacon into the controller's pipeline.
  void beacon(CdnId cdn, double buffering, double bitrate, Bits bits,
              TimePoint t, ServerId server = ServerId{}) {
    telemetry::SessionRecord r;
    r.session = SessionId(next_session_++);
    r.dims.isp = IspId(0);
    r.dims.cdn = cdn;
    r.dims.server = server;
    r.metrics.buffering_ratio = buffering;
    r.metrics.avg_bitrate = bitrate;
    r.metrics.engagement = 0.5;
    r.metrics.bytes_delivered = bits;
    r.timestamp = t;
    appp->collector().report(r);
  }

  /// A PlayerView for brain probing.
  app::PlayerView view(CdnId cdn, ServerId server,
                       std::uint64_t stalls_since_switch = 0) {
    app::PlayerView v;
    v.session = SessionId(7);
    v.now = sched.now();
    v.buffer = 15.0;
    v.throughput_estimate = mbps(4);
    v.bitrate_index = 2;
    v.cdn = cdn;
    v.server = server;
    v.stalls_since_switch = stalls_since_switch;
    v.stall_count = stalls_since_switch;
    v.joined = true;
    v.chunks_fetched = 10;
    v.chunks_total = 30;
    v.isp = IspId(0);
    v.client_node = client;
    v.ladder = &ladder;
    v.max_buffer = 24.0;
    return v;
  }

  /// Publish a synthetic I2A report into the AppP's subscription (through a
  /// single-pair exchange standing in for the broker).
  void push_i2a(const core::I2AReport& report) {
    if (!exchange) {
      exchange.emplace(registry);
      exchange->register_appp(ProviderId(0));
      exchange->register_infp(ProviderId(1));
      appp->bind_exchange(core::ExchangeEndpoint(&*exchange, ProviderId(0)));
      exchange->wire(ProviderId(0), ProviderId(1));
      appp->subscribe_i2a(ProviderId(1));
    }
    exchange->publish_i2a(ProviderId(1), report, sched.now());
    appp->tick();
  }

  net::Topology topo;
  NodeId client, edge, s1, s2, origin;
  LinkId e1, e2;
  std::optional<net::Network> network;
  app::Cdn cdn1, cdn2;
  ServerId srv1a, srv1b;
  app::CdnDirectory directory;
  sim::Scheduler sched;
  core::ProviderRegistry registry;
  std::optional<core::Exchange> exchange;
  std::optional<AppPController> appp;
  std::vector<BitsPerSecond> ladder{kbps(300), mbps(1), mbps(3), mbps(6)};
  std::uint64_t next_session_ = 0;
};

TEST_F(AppPTest, A2IReportAggregatesByIspCdn) {
  beacon(CdnId(0), 0.10, mbps(2), 1e6, 0.0);
  beacon(CdnId(0), 0.20, mbps(4), 1e6, 1.0);
  beacon(CdnId(1), 0.00, mbps(6), 2e6, 2.0);
  core::A2IReport report = appp->build_a2i_report();

  // CDN-level groups (server wildcard): one per CDN.
  int cdn_level = 0;
  for (const auto& g : report.groups) {
    if (g.server.valid()) continue;
    ++cdn_level;
    if (g.cdn == CdnId(0)) {
      EXPECT_EQ(g.sessions, 2u);
      EXPECT_NEAR(g.mean_buffering_ratio, 0.15, 1e-9);
      EXPECT_NEAR(g.mean_bitrate, mbps(3), 1.0);
      EXPECT_GE(g.p90_buffering_ratio, g.mean_buffering_ratio);
    }
  }
  EXPECT_EQ(cdn_level, 2);
  ASSERT_EQ(report.forecasts.size(), 2u);
  // Forecast = window volume / window length.
  for (const auto& f : report.forecasts)
    if (f.cdn == CdnId(0)) EXPECT_NEAR(f.expected_rate, 2e6 / 60.0, 1.0);
}

TEST_F(AppPTest, IntendedBitrateLiftsForecasts) {
  AppPConfig config;
  config.qoe_window = 60.0;
  config.intended_bitrate = mbps(3);
  config.assumed_beacon_period = 10.0;
  AppPController intender(sched, *network, directory, ProviderId(5), config);
  for (int i = 0; i < 12; ++i) {  // ~2 active sessions' worth of beacons
    telemetry::SessionRecord r;
    r.session = SessionId(static_cast<std::uint64_t>(100 + i));
    r.dims.isp = IspId(0);
    r.dims.cdn = CdnId(0);
    r.metrics.bytes_delivered = 1e5;  // tiny measured volume
    r.timestamp = 0.0;
    intender.collector().report(r);
  }
  core::A2IReport report = intender.build_a2i_report();
  ASSERT_EQ(report.forecasts.size(), 1u);
  // 12 records * 10 s / 60 s = 2 active sessions * 3 Mbps intended.
  EXPECT_NEAR(report.forecasts[0].expected_rate, mbps(6), 1e3);
}

TEST_F(AppPTest, BaselineBrainRoundRobinsOnTrouble) {
  app::PlayerBrain& brain = appp->baseline_brain();
  EXPECT_FALSE(brain.should_switch_endpoint(view(CdnId(0), srv1a, 0)));
  EXPECT_TRUE(brain.should_switch_endpoint(view(CdnId(0), srv1a, 1)));
  app::Endpoint next = brain.choose_endpoint(view(CdnId(0), srv1a, 1));
  EXPECT_EQ(next.cdn, CdnId(1));  // round robin to the other CDN
}

TEST_F(AppPTest, BaselineBrainSwitchesOnPoorThroughput) {
  app::PlayerBrain& brain = appp->baseline_brain();
  app::PlayerView v = view(CdnId(0), srv1a, 0);
  v.throughput_estimate = kbps(500);  // below ladder rung 1 (1 Mbps)
  EXPECT_TRUE(brain.should_switch_endpoint(v));
}

TEST_F(AppPTest, EonaBrainHoldsUnderAccessCongestion) {
  core::I2AReport i2a;
  i2a.from = ProviderId(1);
  core::CongestionSignal c;
  c.isp = IspId(0);
  c.scope = core::CongestionScope::kAccess;
  c.severity = 1.0;
  i2a.congestion.push_back(c);
  push_i2a(i2a);

  app::PlayerBrain& brain = appp->eona_brain();
  // Even with stalls: switching cannot help, so hold.
  EXPECT_FALSE(brain.should_switch_endpoint(view(CdnId(0), srv1a, 3)));
  // And the bitrate choice is capped below the throughput-safe rung: with
  // 10 Mbps estimated, uncapped rate-based picks the 6 Mbps top rung, but
  // severity 1.0 caps the budget at 10 * (1 - 0.5) = 5 Mbps -> 3 Mbps rung.
  app::PlayerView v = view(CdnId(0), srv1a, 0);
  v.throughput_estimate = mbps(10);
  v.bitrate_index = 3;  // smoothing must not mask the congestion jump-down
  std::size_t capped = brain.choose_bitrate(v);
  std::size_t uncapped = appp->baseline_brain().choose_bitrate(v);
  EXPECT_EQ(uncapped, 3u);
  EXPECT_EQ(capped, 2u);
}

TEST_F(AppPTest, EonaBrainPrefersIntraCdnServerSwitch) {
  core::I2AReport i2a;
  i2a.from = ProviderId(1);
  core::ServerHint bad;
  bad.cdn = CdnId(0);
  bad.server = srv1a;
  bad.load = 0.99;
  core::ServerHint good;
  good.cdn = CdnId(0);
  good.server = srv1b;
  good.load = 0.10;
  i2a.server_hints = {bad, good};
  push_i2a(i2a);

  app::PlayerBrain& brain = appp->eona_brain();
  EXPECT_TRUE(brain.should_switch_endpoint(view(CdnId(0), srv1a, 0)));
  app::Endpoint next = brain.choose_endpoint(view(CdnId(0), srv1a, 1));
  EXPECT_EQ(next.cdn, CdnId(0)) << "cache locality: stay inside the CDN";
  EXPECT_EQ(next.server, srv1b);
}

TEST_F(AppPTest, EonaBrainFleesOfflineServer) {
  core::I2AReport i2a;
  i2a.from = ProviderId(1);
  core::ServerHint down;
  down.cdn = CdnId(0);
  down.server = srv1a;
  down.online = false;
  core::ServerHint up;
  up.cdn = CdnId(0);
  up.server = srv1b;
  up.load = 0.2;
  i2a.server_hints = {down, up};
  push_i2a(i2a);
  EXPECT_TRUE(
      appp->eona_brain().should_switch_endpoint(view(CdnId(0), srv1a, 0)));
}

TEST_F(AppPTest, SteeringSwitchesPrimaryOnBadQoeBaseline) {
  EXPECT_EQ(appp->primary_cdn(), CdnId(0));
  for (int i = 0; i < 10; ++i)
    beacon(CdnId(0), /*buffering=*/0.30, mbps(2), 1e6, 0.0);
  appp->tick();
  EXPECT_EQ(appp->primary_cdn(), CdnId(1));
  EXPECT_EQ(appp->primary_trace().change_count(), 1u);
}

TEST_F(AppPTest, SteeringHoldsWhenGoodQoe) {
  for (int i = 0; i < 10; ++i) beacon(CdnId(0), 0.00, mbps(4), 1e6, 0.0);
  appp->tick();
  EXPECT_EQ(appp->primary_cdn(), CdnId(0));
}

TEST_F(AppPTest, EonaSteeringHoldsWhenIspHasPeeringHeadroom) {
  appp->set_eona_enabled(true);
  // Bad QoE on the primary...
  for (int i = 0; i < 10; ++i) beacon(CdnId(0), 0.30, mbps(1), 1e6, 0.0);
  // ...but the I2A shows an unselected peering point with ample capacity.
  core::I2AReport i2a;
  i2a.from = ProviderId(1);
  core::PeeringStatus alt;
  alt.peering = PeeringId(1);
  alt.isp = IspId(0);
  alt.cdn = CdnId(0);
  alt.capacity = gbps(1);
  alt.utilization = 0.05;
  alt.selected = false;
  i2a.peerings.push_back(alt);
  push_i2a(i2a);
  EXPECT_EQ(appp->primary_cdn(), CdnId(0)) << "hold: the ISP can fix this";
}

TEST_F(AppPTest, EonaSteeringHoldsUnderAccessCongestion) {
  appp->set_eona_enabled(true);
  for (int i = 0; i < 10; ++i) beacon(CdnId(0), 0.30, mbps(1), 1e6, 0.0);
  core::I2AReport i2a;
  i2a.from = ProviderId(1);
  core::CongestionSignal c;
  c.isp = IspId(0);
  c.scope = core::CongestionScope::kAccess;
  c.severity = 1.0;
  i2a.congestion.push_back(c);
  push_i2a(i2a);
  EXPECT_EQ(appp->primary_cdn(), CdnId(0));
}

TEST_F(AppPTest, BrainSelectionFollowsEonaFlag) {
  EXPECT_EQ(&appp->brain(), &appp->baseline_brain());
  appp->set_eona_enabled(true);
  EXPECT_EQ(&appp->brain(), &appp->eona_brain());
}

}  // namespace
}  // namespace eona::control
