// Golden-trace determinism: for a fixed seed the JSONL event trace is
// bit-identical across repeated runs, and a sweep's collated trace is
// bit-identical for any thread count (per-job buffers concatenated in job
// order). Guards the sim/trace.hpp + sweep collation contract the
// eona_lab --trace flag exposes.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "scenarios/lab.hpp"
#include "scenarios/sweep.hpp"

namespace eona::scenarios {
namespace {

/// One scenario run with a fresh TraceWriter; returns the JSONL buffer.
std::string trace_of(const std::string& scenario,
                     const std::map<std::string, std::string>& overrides) {
  sim::TraceWriter trace;
  (void)run_scenario_json(scenario, overrides, nullptr, &trace);
  return trace.buffer();
}

TEST(TraceDeterminism, FlashcrowdTraceIsBitIdenticalAcrossRuns) {
  const std::map<std::string, std::string> overrides = {
      {"mode", "eona"}, {"seed", "11"}, {"run_duration", "300"}};
  std::string first = trace_of("flashcrowd", overrides);
  std::string second = trace_of("flashcrowd", overrides);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.back(), '\n');
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
}

TEST(TraceDeterminism, CellularTraceIsBitIdenticalAcrossRuns) {
  const std::map<std::string, std::string> overrides = {{"seed", "5"},
                                                        {"sessions", "300"}};
  std::string first = trace_of("cellular", overrides);
  std::string second = trace_of("cellular", overrides);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
}

TEST(TraceDeterminism, QuickstartTraceRecordsSessionLifecycle) {
  std::string trace = trace_of("quickstart", {{"seed", "3"}});
  EXPECT_NE(trace.find("\"type\":\"session_started\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"session_finished\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"rate_recompute\""), std::string::npos);
}

TEST(TraceDeterminism, SweepTraceIsIdenticalForAnyThreadCount) {
  SweepSpec spec;
  spec.scenario = "quickstart";
  spec.seeds = {1, 2, 3, 4};
  spec.modes = {"baseline", "eona"};
  spec.overrides = {{"run_duration", "240"}};

  spec.threads = 1;
  std::string serial;
  core::JsonValue serial_json = run_sweep(spec, &serial);

  spec.threads = 4;
  std::string threaded;
  core::JsonValue threaded_json = run_sweep(spec, &threaded);

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), threaded.size());
  EXPECT_EQ(std::memcmp(serial.data(), threaded.data(), serial.size()), 0);
  EXPECT_EQ(serial_json.dump(2), threaded_json.dump(2));
}

TEST(TraceDeterminism, SweepWithoutTraceOutStillRuns) {
  SweepSpec spec;
  spec.scenario = "quickstart";
  spec.seeds = {1};
  spec.overrides = {{"run_duration", "240"}};
  core::JsonValue out = run_sweep(spec);
  EXPECT_EQ(out.at("run_count").as_number(), 1.0);
}

}  // namespace
}  // namespace eona::scenarios
