// Golden-trace determinism: for a fixed seed the JSONL event trace is
// bit-identical across repeated runs, and a sweep's collated trace is
// bit-identical for any thread count (per-job buffers concatenated in job
// order). Guards the sim/trace.hpp + sweep collation contract the
// eona_lab --trace flag exposes.
//
// The same contract extends to the columnar store: a store fed live by the
// run's event bus is byte-identical (dump + query output) to one rebuilt by
// replaying the run's --trace JSONL, and a store built from a sweep's
// collated trace is identical for any thread count.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "scenarios/lab.hpp"
#include "scenarios/sweep.hpp"
#include "telemetry/column_store.hpp"
#include "telemetry/store_replay.hpp"

namespace eona::scenarios {
namespace {

/// One scenario run with a fresh TraceWriter; returns the JSONL buffer.
std::string trace_of(const std::string& scenario,
                     const std::map<std::string, std::string>& overrides) {
  sim::TraceWriter trace;
  (void)run_scenario_json(scenario, overrides, nullptr, &trace);
  return trace.buffer();
}

TEST(TraceDeterminism, FlashcrowdTraceIsBitIdenticalAcrossRuns) {
  const std::map<std::string, std::string> overrides = {
      {"mode", "eona"}, {"seed", "11"}, {"run_duration", "300"}};
  std::string first = trace_of("flashcrowd", overrides);
  std::string second = trace_of("flashcrowd", overrides);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.back(), '\n');
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
}

TEST(TraceDeterminism, CellularTraceIsBitIdenticalAcrossRuns) {
  const std::map<std::string, std::string> overrides = {{"seed", "5"},
                                                        {"sessions", "300"}};
  std::string first = trace_of("cellular", overrides);
  std::string second = trace_of("cellular", overrides);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
}

TEST(TraceDeterminism, QuickstartTraceRecordsSessionLifecycle) {
  std::string trace = trace_of("quickstart", {{"seed", "3"}});
  EXPECT_NE(trace.find("\"type\":\"session_started\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"session_finished\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"rate_recompute\""), std::string::npos);
}

TEST(TraceDeterminism, SweepTraceIsIdenticalForAnyThreadCount) {
  SweepSpec spec;
  spec.scenario = "quickstart";
  spec.seeds = {1, 2, 3, 4};
  spec.modes = {"baseline", "eona"};
  spec.overrides = {{"run_duration", "240"}};

  spec.threads = 1;
  std::string serial;
  core::JsonValue serial_json = run_sweep(spec, &serial);

  spec.threads = 4;
  std::string threaded;
  core::JsonValue threaded_json = run_sweep(spec, &threaded);

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), threaded.size());
  EXPECT_EQ(std::memcmp(serial.data(), threaded.data(), serial.size()), 0);
  EXPECT_EQ(serial_json.dump(2), threaded_json.dump(2));
}

TEST(StoreDeterminism, LiveStoreMatchesTraceReplayByteForByte) {
  // One run, trace and store attached to the same event bus. Rebuilding a
  // store from the trace must reproduce the live store exactly: same rows,
  // same canonical dump bytes, same query answers.
  const std::map<std::string, std::string> overrides = {
      {"mode", "eona"}, {"seed", "11"}, {"run_duration", "300"}};
  sim::TraceWriter trace;
  telemetry::ColumnStore live;
  (void)run_scenario_json("flashcrowd", overrides, nullptr, &trace, &live);
  ASSERT_GT(live.row_count(), 0u);

  // replay_jsonl counts mapped *lines*; one event line can append several
  // rows (a QoE sample fans out per metric), so compare rows to rows.
  telemetry::ColumnStore replayed;
  EXPECT_GT(telemetry::replay_jsonl(replayed, trace.buffer()), 0u);
  EXPECT_EQ(replayed.row_count(), live.row_count());
  EXPECT_EQ(replayed.dump_rows(), live.dump_rows());

  telemetry::StoreQuery q;
  q.metric = "a2i_mean_buffering";
  q.group_by = telemetry::Dim::kIsp | telemetry::Dim::kCdn;
  q.agg = telemetry::Agg::kP90;
  auto a = live.run(q);
  auto b = replayed.run(q);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].rows, b[i].rows);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(StoreDeterminism, StoreRebuiltFromRunTraceIsRepeatable) {
  const std::map<std::string, std::string> overrides = {
      {"mode", "baseline"}, {"seed", "4"}, {"run_duration", "300"}};
  telemetry::ColumnStore first, second;
  sim::TraceWriter unused;
  (void)run_scenario_json("flashcrowd", overrides, nullptr, nullptr, &first);
  (void)run_scenario_json("flashcrowd", overrides, nullptr, nullptr,
                          &second);
  ASSERT_GT(first.row_count(), 0u);
  EXPECT_EQ(first.dump_rows(), second.dump_rows());
}

TEST(StoreDeterminism, SweepTraceBuildsIdenticalStoreForAnyThreadCount) {
  // The sweep collates per-job traces in job order regardless of thread
  // count; a store replayed from that collation inherits the guarantee.
  SweepSpec spec;
  spec.scenario = "quickstart";
  spec.seeds = {1, 2, 3, 4};
  spec.modes = {"baseline", "eona"};
  spec.overrides = {{"run_duration", "240"}};

  spec.threads = 1;
  std::string serial;
  (void)run_sweep(spec, &serial);
  spec.threads = 4;
  std::string threaded;
  (void)run_sweep(spec, &threaded);

  telemetry::ColumnStore store1, store4;
  ASSERT_GT(telemetry::replay_jsonl(store1, serial), 0u);
  ASSERT_GT(telemetry::replay_jsonl(store4, threaded), 0u);
  ASSERT_EQ(store4.row_count(), store1.row_count());
  EXPECT_EQ(store1.dump_rows(), store4.dump_rows());

  telemetry::StoreQuery q;
  q.metric = "link_util";
  q.agg = telemetry::Agg::kMean;
  auto a = store1.run(q);
  auto b = store4.run(q);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].value, b[i].value);
}

TEST(TraceDeterminism, SweepWithoutTraceOutStillRuns) {
  SweepSpec spec;
  spec.scenario = "quickstart";
  spec.seeds = {1};
  spec.overrides = {{"run_duration", "240"}};
  core::JsonValue out = run_sweep(spec);
  EXPECT_EQ(out.at("run_count").as_number(), 1.0);
}

}  // namespace
}  // namespace eona::scenarios
