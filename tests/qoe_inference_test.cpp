// Tests for the inference substrate: linear solver, ridge regression, and
// Spearman rank correlation.
#include "qoe/inference.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace eona::qoe {
namespace {

TEST(LinearSolver, SolvesSmallSystemExactly) {
  // x + y = 3, x - y = 1  ->  x = 2, y = 1.
  auto x = solve_linear_system({{1, 1}, {1, -1}}, {3, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(LinearSolver, NeedsPivoting) {
  // Leading zero forces a row swap.
  auto x = solve_linear_system({{0, 1}, {1, 0}}, {5, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(LinearSolver, SingularSystemThrows) {
  EXPECT_THROW(solve_linear_system({{1, 1}, {2, 2}}, {1, 2}), ConfigError);
}

TEST(LinearSolver, ShapeMismatchIsAContractViolation) {
  EXPECT_THROW(solve_linear_system({{1, 0}, {0, 1}}, {1}),
               ContractViolation);
}

TEST(Ridge, RecoversALinearFunction) {
  sim::Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.uniform(-5, 5), b = rng.uniform(-5, 5);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 7.0);
  }
  RidgeRegression model(1e-6);
  model.fit(x, y);
  ASSERT_EQ(model.weights().size(), 2u);
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-3);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-3);
  EXPECT_NEAR(model.bias(), 7.0, 1e-3);
  EXPECT_NEAR(model.predict({1.0, 1.0}), 8.0, 1e-3);
  EXPECT_LT(model.mae(x, y), 1e-3);
}

TEST(Ridge, NoisyFitHasBoundedError) {
  sim::Rng rng(13);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    double a = rng.uniform(0, 10);
    x.push_back({a});
    y.push_back(2.0 * a + rng.normal(0.0, 1.0));
  }
  RidgeRegression model(1e-3);
  model.fit(x, y);
  EXPECT_NEAR(model.weights()[0], 2.0, 0.1);
  double mae = model.mae(x, y);
  EXPECT_GT(mae, 0.5);  // noise floor ~ E|N(0,1)| = 0.8
  EXPECT_LT(mae, 1.2);
}

TEST(Ridge, RegularisationShrinksWeights) {
  std::vector<std::vector<double>> x{{1}, {2}, {3}, {4}};
  std::vector<double> y{2, 4, 6, 8};
  RidgeRegression weak(1e-9), strong(100.0);
  weak.fit(x, y);
  strong.fit(x, y);
  EXPECT_GT(weak.weights()[0], strong.weights()[0]);
}

TEST(Ridge, BadInputsThrow) {
  RidgeRegression model;
  EXPECT_THROW(model.fit({}, {}), ConfigError);
  EXPECT_THROW(model.fit({{1.0}}, {1.0, 2.0}), ConfigError);
  EXPECT_THROW(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), ConfigError);
  EXPECT_THROW(model.predict({1.0}), ContractViolation);  // not fitted
}

TEST(Spearman, PerfectMonotoneIsOne) {
  EXPECT_NEAR(spearman_correlation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0,
              1e-12);
  // Monotone but nonlinear still gives 1 (rank correlation).
  EXPECT_NEAR(spearman_correlation({1, 2, 3, 4}, {1, 8, 27, 64}), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne) {
  EXPECT_NEAR(spearman_correlation({1, 2, 3}, {9, 5, 1}), -1.0, 1e-12);
}

TEST(Spearman, TiesShareRanks) {
  double rho = spearman_correlation({1, 2, 2, 3}, {1, 2, 2, 3});
  EXPECT_NEAR(rho, 1.0, 1e-12);
}

TEST(Spearman, ConstantInputGivesZero) {
  EXPECT_DOUBLE_EQ(spearman_correlation({5, 5, 5}, {1, 2, 3}), 0.0);
}

TEST(Spearman, IndependentIsNearZero) {
  sim::Rng rng(17);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(0, 1));
  }
  EXPECT_NEAR(spearman_correlation(a, b), 0.0, 0.05);
}

TEST(Spearman, InvalidInputsAreContractViolations) {
  EXPECT_THROW(spearman_correlation({1.0}, {1.0}), ContractViolation);
  EXPECT_THROW(spearman_correlation({1, 2}, {1, 2, 3}), ContractViolation);
}

}  // namespace
}  // namespace eona::qoe
