// Behavioural tests of the player's switching discipline: reconnect delay,
// switch cooldown, and stall-time bitrate abandonment.
#include <gtest/gtest.h>

#include <optional>

#include "app/video_player.hpp"
#include "net/transfer.hpp"

namespace eona::app {
namespace {

/// Brain that always wants to switch between two servers and records how
/// often it was allowed to.
class EagerSwitcher : public PlayerBrain {
 public:
  ServerId a, b;
  std::size_t bitrate = 0;
  int endpoint_calls = 0;

  Endpoint choose_endpoint(const PlayerView& v) override {
    ++endpoint_calls;
    if (!v.server.valid()) return {CdnId(0), a};
    return {CdnId(0), v.server == a ? b : a};
  }
  bool should_switch_endpoint(const PlayerView& v) override {
    return v.chunks_fetched > 0;  // always, after the first chunk
  }
  std::size_t choose_bitrate(const PlayerView&) override { return bitrate; }
};

class PlayerBehaviorTest : public ::testing::Test {
 protected:
  PlayerBehaviorTest() : cdn(CdnId(0), "cdn", NodeId{}) {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    sa = topo.add_node(net::NodeKind::kCdnServer, "a");
    sb = topo.add_node(net::NodeKind::kCdnServer, "b");
    origin = topo.add_node(net::NodeKind::kOrigin, "o");
    topo.add_link(edge, client, mbps(100), milliseconds(1));
    ea = topo.add_link(sa, edge, mbps(10), milliseconds(1));
    eb = topo.add_link(sb, edge, mbps(10), milliseconds(1));
    topo.add_link(origin, sa, mbps(10), milliseconds(1));
    topo.add_link(origin, sb, mbps(10), milliseconds(1));
    cdn = Cdn(CdnId(0), "cdn", origin);
    srv_a = cdn.add_server(sa, ea, 4);
    srv_b = cdn.add_server(sb, eb, 4);
    cdn.warm_cache(srv_a, {ContentId(0)});
    cdn.warm_cache(srv_b, {ContentId(0)});
    directory.add(&cdn);
    network.emplace(topo);
    transfers.emplace(sched, *network);
    routing.emplace(topo);
    content.id = ContentId(0);
    content.kind = ContentKind::kVideo;
    content.video_duration = 60.0;
    config.ladder = {mbps(1), mbps(2)};
    config.chunk_duration = 4.0;
    config.min_switch_interval = 10.0;
    config.switch_delay = 0.5;
    config.beacon_period = 0.0;  // no beacons
  }

  std::unique_ptr<VideoPlayer> make_player(PlayerBrain& brain) {
    telemetry::Dimensions dims;
    dims.isp = IspId(0);
    return std::make_unique<VideoPlayer>(
        sched, *transfers, *network, *routing, directory, brain, nullptr,
        config, SessionId(1), dims, client, content, qoe::EngagementModel{},
        nullptr);
  }

  net::Topology topo;
  NodeId client, edge, sa, sb, origin;
  LinkId ea, eb;
  Cdn cdn;
  ServerId srv_a, srv_b;
  CdnDirectory directory;
  sim::Scheduler sched;
  std::optional<net::Network> network;
  std::optional<net::TransferManager> transfers;
  std::optional<net::Routing> routing;
  ContentItem content;
  PlayerConfig config;
};

TEST_F(PlayerBehaviorTest, SwitchCooldownBoundsChurn) {
  EagerSwitcher brain;
  brain.a = srv_a;
  brain.b = srv_b;
  auto player = make_player(brain);
  player->start();
  sched.run_all();
  EXPECT_TRUE(player->finished());
  // A 60 s video with a 10 s cooldown admits at most ~7 switches even
  // though the brain wants one per chunk (15 chunks).
  EXPECT_LE(player->server_switches(), 7u);
  EXPECT_GE(player->server_switches(), 3u);
}

TEST_F(PlayerBehaviorTest, ZeroCooldownSwitchesEveryChunk) {
  config.min_switch_interval = 0.0;
  config.switch_delay = 0.0;
  EagerSwitcher brain;
  brain.a = srv_a;
  brain.b = srv_b;
  auto player = make_player(brain);
  player->start();
  sched.run_all();
  // 15 chunks, switching considered before each after the first.
  EXPECT_GE(player->server_switches(), 12u);
}

TEST_F(PlayerBehaviorTest, ReconnectDelayExtendsTheSession) {
  // Same brain, same world; with a large reconnect delay the session must
  // take visibly longer in startup-bound phases.
  EagerSwitcher fast_brain;
  fast_brain.a = srv_a;
  fast_brain.b = srv_b;
  config.min_switch_interval = 4.0;
  config.switch_delay = 0.0;
  TimePoint fast_end;
  {
    auto player = make_player(fast_brain);
    player->start();
    sched.run_all();
    fast_end = sched.now();
  }
  sim::Scheduler sched2;
  net::Network network2(topo);
  net::TransferManager transfers2(sched2, network2);
  config.switch_delay = 2.0;  // every switch stalls the pipeline 2 s
  EagerSwitcher slow_brain;
  slow_brain.a = srv_a;
  slow_brain.b = srv_b;
  telemetry::Dimensions dims;
  dims.isp = IspId(0);
  VideoPlayer slow(sched2, transfers2, network2, *routing, directory,
                   slow_brain, nullptr, config, SessionId(2), dims, client,
                   content, qoe::EngagementModel{}, nullptr);
  slow.start();
  sched2.run_all();
  // Both finish; the delayed one cannot finish earlier.
  EXPECT_TRUE(slow.finished());
  EXPECT_GE(sched2.now(), fast_end - 1e-9);
}

/// Brain that never switches endpoints and greedily retries the oversized
/// top rung whenever the buffer looks comfortable.
class StubbornBrain : public PlayerBrain {
 public:
  ServerId server;
  Endpoint choose_endpoint(const PlayerView&) override {
    return {CdnId(0), server};
  }
  bool should_switch_endpoint(const PlayerView&) override { return false; }
  std::size_t choose_bitrate(const PlayerView& v) override {
    return (v.joined && v.buffer >= 8.0) ? 1 : 0;
  }
};

TEST_F(PlayerBehaviorTest, StallAbandonsOversizedChunkAndRecovers) {
  // A 6 Mbps top rung over a link squeezed to 1.5 Mbps: every top-rung
  // chunk (24 Mb, 16 s) is doomed. Stall-time abandonment must cancel it
  // and refetch at the floor (4 Mb, 2.7 s) so stalls stay short; without
  // abandonment each stall would run ~13 s and the session would spend the
  // majority of its time frozen.
  config.ladder = {mbps(1), mbps(6)};
  config.max_buffer = 12.0;
  config.startup_target = 8.0;
  content.video_duration = 120.0;
  StubbornBrain brain;
  brain.server = srv_a;
  std::optional<telemetry::SessionRecord> final_record;
  telemetry::Dimensions dims;
  dims.isp = IspId(0);
  VideoPlayer player(sched, *transfers, *network, *routing, directory, brain,
                     nullptr, config, SessionId(1), dims, client, content,
                     qoe::EngagementModel{},
                     [&](const telemetry::SessionRecord& r) {
                       final_record = r;
                     });
  player.start();
  sched.schedule_at(12.0, [&] { network->set_link_capacity(ea, mbps(1.5)); });
  sched.run_all();
  ASSERT_TRUE(final_record.has_value());
  EXPECT_TRUE(player.finished());
  EXPECT_GE(player.stall_count(), 2u);  // the brain keeps re-trying the top
  EXPECT_EQ(player.server_switches(), 0u);
  // Short abandonment stalls, not 13 s freezes.
  EXPECT_LT(final_record->metrics.buffering_ratio, 0.30);
  // And the session ends in bounded time (no wedging on doomed requests).
  EXPECT_LT(final_record->timestamp, 1.8 * content.video_duration);
}

}  // namespace
}  // namespace eona::app
