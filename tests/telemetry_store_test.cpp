// ColumnStore unit tests: ingest, the typed query surface (filters,
// group-by projection, every aggregate), window semantics, and the
// dump/replay round trip eona_lab --store / query rides on.
#include "telemetry/column_store.hpp"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/store_replay.hpp"

namespace eona::telemetry {
namespace {

Dimensions dims(std::uint32_t isp, std::uint32_t cdn, std::uint32_t server,
                std::uint32_t region = 0) {
  Dimensions d;
  d.isp = IspId(isp);
  d.cdn = CdnId(cdn);
  d.server = ServerId(server);
  d.region = region;
  return d;
}

TEST(ColumnStore, InternAssignsDenseStableIds) {
  ColumnStore store;
  EXPECT_EQ(store.intern_metric("a"), 0u);
  EXPECT_EQ(store.intern_metric("b"), 1u);
  EXPECT_EQ(store.intern_metric("a"), 0u);
  EXPECT_EQ(store.find_metric("b"), 1u);
  EXPECT_EQ(store.find_metric("missing"), kNoMetric);
  EXPECT_EQ(store.metric_names().size(), 2u);
}

TEST(ColumnStore, InternSurvivesNameVectorGrowth) {
  // The id map must not dangle into reallocated name storage.
  ColumnStore store;
  for (int i = 0; i < 200; ++i)
    store.intern_metric("metric_" + std::to_string(i));
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(store.find_metric("metric_" + std::to_string(i)),
              static_cast<MetricId>(i));
}

TEST(ColumnStore, CountSumMeanOverOneGroup) {
  ColumnStore store;
  for (int i = 1; i <= 4; ++i)
    store.append(static_cast<double>(i), dims(0, 1, 2), "m", 7, i * 1.5);
  EXPECT_EQ(store.row_count(), 4u);

  StoreQuery q;
  q.metric = "m";
  q.agg = Agg::kCount;
  auto out = store.run(q);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, 4u);
  EXPECT_EQ(out[0].value, 4.0);

  q.agg = Agg::kSum;
  EXPECT_EQ(store.run(q)[0].value, 1.5 + 3.0 + 4.5 + 6.0);
  q.agg = Agg::kMean;
  EXPECT_EQ(store.run(q)[0].value, (1.5 + 3.0 + 4.5 + 6.0) / 4.0);
}

TEST(ColumnStore, PercentilesAreExactOrderStatistics) {
  ColumnStore store;
  // 11 values 0..10: lower nearest-rank p50 = index 5, p90 = index 9.
  for (int i = 0; i <= 10; ++i)
    store.append(1.0, dims(0, 0, 0), "m", 0, static_cast<double>(i));
  StoreQuery q;
  q.metric = "m";
  q.agg = Agg::kP50;
  EXPECT_EQ(store.run(q)[0].value, 5.0);
  q.agg = Agg::kP90;
  EXPECT_EQ(store.run(q)[0].value, 9.0);
}

TEST(ColumnStore, WindowIsHalfOpen) {
  ColumnStore store;
  for (double t : {10.0, 20.0, 30.0})
    store.append(t, dims(0, 0, 0), "m", 0, t);
  StoreQuery q;
  q.metric = "m";
  q.t0 = 10.0;
  q.t1 = 30.0;  // [10, 30): keeps 10 and 20, drops 30
  q.agg = Agg::kSum;
  auto out = store.run(q);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, 2u);
  EXPECT_EQ(out[0].value, 30.0);
}

TEST(ColumnStore, WindowSpanningSegmentsFoldsInTimeOrder) {
  ColumnStore store(60.0);  // rows below land in three segments
  for (double t : {10.0, 70.0, 130.0})
    store.append(t, dims(0, 0, 0), "m", 0, 1.0);
  StoreQuery q;
  q.metric = "m";
  q.agg = Agg::kCount;
  EXPECT_EQ(store.run(q)[0].rows, 3u);
  EXPECT_EQ(store.segment_count(), 3u);
}

TEST(ColumnStore, FiltersMatchExactAttributeValues) {
  ColumnStore store;
  store.append(1.0, dims(1, 2, 3, 4), "m", 10, 100.0);
  store.append(2.0, dims(1, 9, 3, 4), "m", 11, 200.0);
  store.append(3.0, dims(5, 2, 3, 4), "m", 10, 400.0);

  StoreQuery q;
  q.metric = "m";
  q.agg = Agg::kSum;
  q.isp = IspId(1);
  EXPECT_EQ(store.run(q)[0].value, 300.0);
  q.cdn = CdnId(2);
  EXPECT_EQ(store.run(q)[0].value, 100.0);

  StoreQuery by_entity;
  by_entity.metric = "m";
  by_entity.agg = Agg::kSum;
  by_entity.entity = 10;
  EXPECT_EQ(store.run(by_entity)[0].value, 500.0);
}

TEST(ColumnStore, GroupByProjectsAndSortsCanonically) {
  ColumnStore store;
  // Insert out of dimension order; results must come back sorted.
  store.append(1.0, dims(2, 0, 0), "m", 0, 20.0);
  store.append(2.0, dims(1, 0, 0), "m", 0, 10.0);
  store.append(3.0, dims(2, 1, 0), "m", 0, 5.0);

  StoreQuery q;
  q.metric = "m";
  q.group_by = Dim::kIsp;
  q.agg = Agg::kSum;
  auto out = store.run(q);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key.isp, IspId(1));
  EXPECT_EQ(out[0].value, 10.0);
  EXPECT_EQ(out[1].key.isp, IspId(2));
  EXPECT_EQ(out[1].value, 25.0);  // both cdn groups fold into isp 2
  // Projected-away attributes come back as wildcards.
  EXPECT_EQ(out[0].key.cdn, CdnId());
}

TEST(ColumnStore, ConsecutiveQueriesDoNotLeakSlotState) {
  ColumnStore store;
  store.append(1.0, dims(1, 0, 0), "m", 0, 1.0);
  store.append(2.0, dims(2, 0, 0), "m", 0, 2.0);
  StoreQuery q;
  q.metric = "m";
  q.group_by = Dim::kIsp;
  q.agg = Agg::kSum;
  auto first = store.run(q);
  auto second = store.run(q);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].key, second[i].key);
    EXPECT_EQ(first[i].value, second[i].value);
  }
}

TEST(ColumnStore, UnknownMetricAndEmptyWindowReturnNothing) {
  ColumnStore store;
  store.append(1.0, dims(0, 0, 0), "m", 0, 1.0);
  StoreQuery q;
  q.metric = "other";
  EXPECT_TRUE(store.run(q).empty());
  q.metric = "m";
  q.t0 = 5.0;
  q.t1 = 5.0;  // empty [t0, t1)
  EXPECT_TRUE(store.run(q).empty());
}

TEST(ColumnStore, DumpReplayRoundTripIsByteIdentical) {
  ColumnStore store;
  // Awkward doubles: denormal-ish, many digits, negative zero.
  store.append(0.1 + 0.2, dims(1, 2, 3, 4), "m", 5, 1.0 / 3.0);
  store.append(61.5, dims(1, 2, 3, 4), "other", 6, -0.0);
  store.append(-5.0, Dimensions{}, "m", 0, 1e-300);

  std::string dump = store.dump_rows();
  ColumnStore reloaded;
  EXPECT_EQ(replay_jsonl(reloaded, dump), 3u);
  EXPECT_EQ(reloaded.dump_rows(), dump);

  StoreQuery q;
  q.metric = "m";
  q.agg = Agg::kSum;
  auto a = store.run(q);
  auto b = reloaded.run(q);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].value, b[0].value);
}

TEST(ColumnStore, ReplaySkipsUnmappedLines) {
  ColumnStore store;
  EXPECT_FALSE(replay_jsonl_line(store, "{\"type\":\"log\",\"msg\":\"x\"}"));
  EXPECT_FALSE(replay_jsonl_line(store, ""));
  EXPECT_EQ(store.row_count(), 0u);
}

TEST(ColumnStore, ReplayMapsTraceEventsThroughRecorder) {
  ColumnStore store;
  EXPECT_TRUE(replay_jsonl_line(
      store,
      "{\"t\":3.5,\"type\":\"link_sample\",\"link\":2,"
      "\"utilization\":0.75,\"rate\":45000000,\"capacity\":60000000}"));
  EXPECT_EQ(store.row_count(), 2u);  // link_rate + link_util
  StoreQuery q;
  q.metric = "link_util";
  q.entity = 2;
  auto out = store.run(q);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 0.75);
}

}  // namespace
}  // namespace eona::telemetry
