// Tests for the trust auditor (§5 fairness & trust).
#include "eona/audit.hpp"

#include <gtest/gtest.h>

namespace eona::core {
namespace {

CdnEvidence healthy(CdnId cdn) {
  CdnEvidence e;
  e.cdn = cdn;
  e.mean_bitrate = 2.9e6;
  e.intended_bitrate = 3e6;
  e.mean_buffering = 0.001;
  e.sessions = 50;
  return e;
}

CdnEvidence starving(CdnId cdn) {
  CdnEvidence e;
  e.cdn = cdn;
  e.mean_bitrate = 0.8e6;
  e.intended_bitrate = 3e6;
  e.mean_buffering = 0.15;
  e.sessions = 50;
  return e;
}

I2AReport selected_claim(CdnId cdn, bool congested) {
  I2AReport report;
  report.from = ProviderId(1);
  PeeringStatus p;
  p.peering = PeeringId(0);
  p.cdn = cdn;
  p.selected = true;
  p.congested = congested;
  report.peerings.push_back(p);
  return report;
}

TEST(Auditor, StartsFullyTrusted) {
  InterfaceAuditor auditor;
  EXPECT_DOUBLE_EQ(auditor.trust(), 1.0);
  EXPECT_TRUE(auditor.trusted());
}

TEST(Auditor, ConsistentClaimsKeepTrustHigh) {
  InterfaceAuditor auditor;
  for (int i = 0; i < 20; ++i) {
    // Claims congestion; clients are indeed starving. Consistent.
    auto outcome = auditor.audit(selected_claim(CdnId(0), true),
                                 {starving(CdnId(0))});
    EXPECT_EQ(outcome.contradictions, 0u);
  }
  EXPECT_DOUBLE_EQ(auditor.trust(), 1.0);
  EXPECT_EQ(auditor.claims_checked(), 20u);
}

TEST(Auditor, CryingWolfErodesTrust) {
  InterfaceAuditor auditor;
  for (int i = 0; i < 20; ++i) {
    // Claims congestion while clients thrive: contradiction every report.
    auto outcome =
        auditor.audit(selected_claim(CdnId(0), true), {healthy(CdnId(0))});
    EXPECT_EQ(outcome.contradictions, 1u);
  }
  EXPECT_LT(auditor.trust(), 0.05);
  EXPECT_FALSE(auditor.trusted());
  EXPECT_EQ(auditor.contradictions(), 20u);
}

TEST(Auditor, DenyingRealCongestionErodesTrust) {
  InterfaceAuditor auditor;
  for (int i = 0; i < 10; ++i)
    auditor.audit(selected_claim(CdnId(0), false), {starving(CdnId(0))});
  EXPECT_LT(auditor.trust(), 0.2);
}

TEST(Auditor, StarvationExcusedByAccessCongestion) {
  InterfaceAuditor auditor;
  I2AReport report = selected_claim(CdnId(0), false);
  CongestionSignal access;
  access.scope = CongestionScope::kAccess;
  access.severity = 0.7;
  report.congestion.push_back(access);
  auto outcome = auditor.audit(report, {starving(CdnId(0))});
  EXPECT_EQ(outcome.contradictions, 0u);
  EXPECT_DOUBLE_EQ(auditor.trust(), 1.0);
}

TEST(Auditor, StarvationExcusedByOfflineServer) {
  InterfaceAuditor auditor;
  I2AReport report = selected_claim(CdnId(0), false);
  ServerHint hint;
  hint.cdn = CdnId(0);
  hint.server = ServerId(1);
  hint.online = false;
  report.server_hints.push_back(hint);
  auto outcome = auditor.audit(report, {starving(CdnId(0))});
  EXPECT_EQ(outcome.contradictions, 0u);
}

TEST(Auditor, ThinEvidenceIsNotAudited) {
  InterfaceAuditor auditor;
  CdnEvidence thin = healthy(CdnId(0));
  thin.sessions = 2;  // below min_sessions
  auto outcome = auditor.audit(selected_claim(CdnId(0), true), {thin});
  EXPECT_EQ(outcome.claims_checked, 0u);
  EXPECT_DOUBLE_EQ(auditor.trust(), 1.0);
}

TEST(Auditor, AmbiguousEvidenceIsNotAudited) {
  InterfaceAuditor auditor;
  CdnEvidence middling = healthy(CdnId(0));
  middling.mean_bitrate = 2.2e6;  // 73% of intent: neither healthy nor starving
  auto outcome = auditor.audit(selected_claim(CdnId(0), true), {middling});
  EXPECT_EQ(outcome.claims_checked, 0u);
}

TEST(Auditor, UnreportedCdnsAreSkipped) {
  InterfaceAuditor auditor;
  auto outcome =
      auditor.audit(selected_claim(CdnId(0), true), {healthy(CdnId(7))});
  EXPECT_EQ(outcome.claims_checked, 0u);
}

TEST(Auditor, TrustRecoversAfterHonestStreak) {
  InterfaceAuditor auditor;
  for (int i = 0; i < 10; ++i)
    auditor.audit(selected_claim(CdnId(0), true), {healthy(CdnId(0))});
  double low = auditor.trust();
  ASSERT_LT(low, 0.5);
  for (int i = 0; i < 30; ++i)
    auditor.audit(selected_claim(CdnId(0), true), {starving(CdnId(0))});
  EXPECT_GT(auditor.trust(), 0.9);
}

TEST(Auditor, InvalidConfigIsAContractViolation) {
  AuditConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(InterfaceAuditor{bad}, ContractViolation);
  AuditConfig inverted;
  inverted.healthy_bitrate_fraction = 0.5;
  inverted.starving_bitrate_fraction = 0.6;
  EXPECT_THROW(InterfaceAuditor{inverted}, ContractViolation);
}

}  // namespace
}  // namespace eona::core
