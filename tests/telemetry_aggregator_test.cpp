// Tests for the aggregation pipeline: dimension projection, group-by,
// windowed expiry, the beacon collector, and the k-anonymity gate.
#include "telemetry/aggregator.hpp"

#include <gtest/gtest.h>

#include "telemetry/anonymity.hpp"
#include "telemetry/collector.hpp"

namespace eona::telemetry {
namespace {

SessionRecord make_record(std::uint64_t session, IspId isp, CdnId cdn,
                          ServerId server, double buffering, TimePoint t,
                          Bits bits = 1e6) {
  SessionRecord r;
  r.session = SessionId(session);
  r.dims.isp = isp;
  r.dims.cdn = cdn;
  r.dims.server = server;
  r.metrics.buffering_ratio = buffering;
  r.metrics.bytes_delivered = bits;
  r.timestamp = t;
  return r;
}

TEST(Dimensions, ProjectionKeepsOnlyMaskedColumns) {
  Dimensions dims;
  dims.isp = IspId(1);
  dims.cdn = CdnId(2);
  dims.server = ServerId(3);
  dims.region = 4;
  Dimensions key = project(dims, Dim::kIsp | Dim::kCdn);
  EXPECT_EQ(key.isp, IspId(1));
  EXPECT_EQ(key.cdn, CdnId(2));
  EXPECT_FALSE(key.server.valid());
  EXPECT_EQ(key.region, 0u);
}

TEST(GroupByAggregator, GroupsByProjectedKey) {
  GroupByAggregator agg(Dim::kIsp | Dim::kCdn);
  agg.ingest(make_record(1, IspId(0), CdnId(0), ServerId(0), 0.1, 0.0));
  agg.ingest(make_record(2, IspId(0), CdnId(0), ServerId(1), 0.3, 1.0));
  agg.ingest(make_record(3, IspId(0), CdnId(1), ServerId(2), 0.5, 2.0));
  EXPECT_EQ(agg.group_count(), 2u);  // server is projected away

  Dimensions probe;
  probe.isp = IspId(0);
  probe.cdn = CdnId(0);
  const MetricAggregate* group = agg.find(probe);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->records, 2u);
  EXPECT_NEAR(group->buffering_ratio.mean(), 0.2, 1e-12);
}

TEST(GroupByAggregator, SnapshotIsSortedDeterministically) {
  GroupByAggregator agg(Dim::kIsp | Dim::kCdn);
  agg.ingest(make_record(1, IspId(1), CdnId(1), ServerId{}, 0.1, 0.0));
  agg.ingest(make_record(2, IspId(0), CdnId(1), ServerId{}, 0.1, 0.0));
  agg.ingest(make_record(3, IspId(0), CdnId(0), ServerId{}, 0.1, 0.0));
  auto snapshot = agg.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first.isp, IspId(0));
  EXPECT_EQ(snapshot[0].first.cdn, CdnId(0));
  EXPECT_EQ(snapshot[2].first.isp, IspId(1));
}

TEST(GroupByAggregator, BufferingPercentilesPerGroup) {
  GroupByAggregator agg(Dim::kCdn);
  Dimensions dims;
  dims.cdn = CdnId(0);
  for (int i = 1; i <= 100; ++i) {
    SessionRecord r = make_record(static_cast<std::uint64_t>(i), IspId(0),
                                  CdnId(0), ServerId{}, i / 100.0, 0.0);
    agg.ingest(r);
  }
  auto [p50, p90] = agg.buffering_percentiles(dims);
  EXPECT_NEAR(p50, 0.5, 0.1);
  EXPECT_NEAR(p90, 0.9, 0.1);
  Dimensions unseen;
  unseen.cdn = CdnId(9);
  auto [u50, u90] = agg.buffering_percentiles(unseen);
  EXPECT_EQ(u50, 0.0);
  EXPECT_EQ(u90, 0.0);
}

TEST(WindowedAggregator, QueriesCoverOnlyTheTrailingWindow) {
  WindowedAggregator agg(Dim::kCdn, /*window=*/60.0, /*buckets=*/6);
  Dimensions dims;
  dims.cdn = CdnId(0);
  agg.ingest(make_record(1, IspId(0), CdnId(0), ServerId{}, 0.9, 5.0));
  agg.ingest(make_record(2, IspId(0), CdnId(0), ServerId{}, 0.1, 100.0));
  // At t=110, only the second record is within the last 60 s.
  MetricAggregate recent = agg.query(dims, 110.0);
  EXPECT_EQ(recent.records, 1u);
  EXPECT_NEAR(recent.buffering_ratio.mean(), 0.1, 1e-12);
}

TEST(WindowedAggregator, BucketsExpireAsTimeAdvances) {
  WindowedAggregator agg(Dim::kCdn, 30.0, 3);
  Dimensions dims;
  dims.cdn = CdnId(0);
  agg.ingest(make_record(1, IspId(0), CdnId(0), ServerId{}, 0.5, 0.0));
  EXPECT_EQ(agg.query(dims, 5.0).records, 1u);
  EXPECT_EQ(agg.query(dims, 29.0).records, 1u);
  EXPECT_EQ(agg.query(dims, 200.0).records, 0u);
}

TEST(WindowedAggregator, BucketReuseClearsOldData) {
  WindowedAggregator agg(Dim::kCdn, 30.0, 3);  // 10 s buckets
  Dimensions dims;
  dims.cdn = CdnId(0);
  agg.ingest(make_record(1, IspId(0), CdnId(0), ServerId{}, 0.9, 0.0));
  // 40 s later the same ring slot is reused; the old record must be gone.
  agg.ingest(make_record(2, IspId(0), CdnId(0), ServerId{}, 0.1, 31.0));
  MetricAggregate result = agg.query(dims, 35.0);
  EXPECT_EQ(result.records, 1u);
  EXPECT_NEAR(result.buffering_ratio.mean(), 0.1, 1e-12);
}

TEST(WindowedAggregator, SnapshotMergesAcrossBuckets) {
  WindowedAggregator agg(Dim::kCdn, 60.0, 6);
  agg.ingest(make_record(1, IspId(0), CdnId(0), ServerId{}, 0.2, 1.0, 100.0));
  agg.ingest(make_record(2, IspId(0), CdnId(0), ServerId{}, 0.4, 25.0, 300.0));
  agg.ingest(make_record(3, IspId(0), CdnId(1), ServerId{}, 0.6, 30.0));
  auto snapshot = agg.snapshot(40.0);
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].second.records, 2u);
  EXPECT_NEAR(snapshot[0].second.total_bits, 400.0, 1e-12);
}

TEST(BeaconCollector, FansOutToSinksInOrder) {
  BeaconCollector collector;
  std::vector<int> order;
  collector.add_sink([&](const SessionRecord&) { order.push_back(1); });
  collector.add_sink([&](const SessionRecord&) { order.push_back(2); });
  collector.report(make_record(1, IspId(0), CdnId(0), ServerId{}, 0.0, 0.0,
                               5e6));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(collector.beacon_count(), 1u);
  EXPECT_DOUBLE_EQ(collector.total_bits_reported(), 5e6);
}

TEST(KAnonymityGate, SuppressesSmallGroups) {
  GroupByAggregator agg(Dim::kCdn);
  for (int i = 0; i < 10; ++i)
    agg.ingest(make_record(static_cast<std::uint64_t>(i), IspId(0), CdnId(0),
                           ServerId{}, 0.1, 0.0));
  agg.ingest(make_record(99, IspId(0), CdnId(1), ServerId{}, 0.9, 0.0));

  GatedSnapshot gated = k_anonymity_gate(agg.snapshot(), 5);
  ASSERT_EQ(gated.groups.size(), 1u);
  EXPECT_EQ(gated.groups[0].first.cdn, CdnId(0));
  EXPECT_EQ(gated.suppressed_groups, 1u);
  EXPECT_EQ(gated.suppressed_records, 1u);
}

TEST(KAnonymityGate, KOneKeepsEverything) {
  GroupByAggregator agg(Dim::kCdn);
  agg.ingest(make_record(1, IspId(0), CdnId(0), ServerId{}, 0.1, 0.0));
  GatedSnapshot gated = k_anonymity_gate(agg.snapshot(), 1);
  EXPECT_EQ(gated.groups.size(), 1u);
  EXPECT_EQ(gated.suppressed_groups, 0u);
}

}  // namespace
}  // namespace eona::telemetry
