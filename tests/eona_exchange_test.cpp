// Tests for the brokered exchange (the federated N x M interface plane):
// tenant registration, trust-level redaction on wired legs, the per-leg I2A
// token bucket, and the broker-enforced egress-share quota clamp.
#include "eona/exchange.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "eona/endpoint.hpp"
#include "eona/registry.hpp"

namespace eona::core {
namespace {

A2IReport a2i_at(TimePoint t, std::uint64_t sessions = 100) {
  A2IReport r;
  r.from = ProviderId(0);
  r.generated_at = t;
  QoeGroupReport g;
  g.isp = IspId(0);
  g.cdn = CdnId(0);
  g.sessions = sessions;
  r.groups.push_back(g);
  return r;
}

I2AReport i2a_at(TimePoint t) {
  I2AReport r;
  r.from = ProviderId(1);
  r.generated_at = t;
  PeeringStatus p;
  p.peering = PeeringId(1);
  p.isp = IspId(0);
  p.cdn = CdnId(0);
  p.capacity = 1e6;
  r.peerings.push_back(p);
  return r;
}

/// A registry pre-loaded with one AppP and `infps` InfPs.
struct Plane {
  explicit Plane(std::size_t infps = 1) : exchange(registry) {
    appp = registry.register_provider(ProviderKind::kAppP, "vod");
    exchange.register_appp(appp);
    for (std::size_t i = 0; i < infps; ++i) {
      ProviderId id =
          registry.register_provider(ProviderKind::kInfP, "isp" + std::to_string(i));
      exchange.register_infp(id);
      infp.push_back(id);
    }
  }
  ProviderRegistry registry;
  Exchange exchange;
  ProviderId appp;
  std::vector<ProviderId> infp;
};

// --- registration ------------------------------------------------------------

TEST(Exchange, RegistersTenantsOnce) {
  Plane plane(2);
  EXPECT_TRUE(plane.exchange.has_appp(plane.appp));
  EXPECT_TRUE(plane.exchange.has_infp(plane.infp[1]));
  EXPECT_FALSE(plane.exchange.has_infp(plane.appp));
  EXPECT_EQ(plane.exchange.appp_count(), 1u);
  EXPECT_EQ(plane.exchange.infp_count(), 2u);
  EXPECT_THROW(plane.exchange.register_appp(plane.appp), ConfigError);
  EXPECT_THROW(plane.exchange.register_infp(plane.infp[0]), ConfigError);
}

TEST(Exchange, RejectsOutOfRangeQuotas) {
  Plane plane;
  ProviderId other = plane.registry.register_provider(ProviderKind::kAppP, "x");
  EXPECT_THROW(plane.exchange.register_appp(other, TenantQuota{0.0}),
               ConfigError);
  EXPECT_THROW(plane.exchange.register_appp(other, TenantQuota{1.5}),
               ConfigError);
  EXPECT_THROW(plane.exchange.set_quota(plane.appp, TenantQuota{-0.1}),
               ConfigError);
  plane.exchange.set_quota(plane.appp, TenantQuota{0.25});
  EXPECT_EQ(plane.exchange.quota(plane.appp).egress_share, 0.25);
}

TEST(Exchange, UnregisteredTenantsCannotBeWiredOrFetched) {
  Plane plane;
  ProviderId stranger =
      plane.registry.register_provider(ProviderKind::kInfP, "stranger");
  EXPECT_THROW(plane.exchange.wire(plane.appp, stranger), NotFoundError);
  EXPECT_THROW(plane.exchange.wire(stranger, plane.infp[0]), NotFoundError);
  // Registered but unwired: the broker holds no token for the leg.
  EXPECT_THROW(plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 0.0),
               AccessDenied);
  EXPECT_THROW(plane.exchange.fetch_i2a(plane.appp, plane.infp[0], 0.0),
               AccessDenied);
}

// --- full-trust legs reproduce direct wiring ---------------------------------

TEST(Exchange, FullTrustLegMatchesDirectChannelExactly) {
  Plane plane;
  plane.exchange.wire(plane.appp, plane.infp[0], {});

  // The reference: a hand-wired glass with the same (default) policy/delay.
  A2IEndpoint direct(plane.appp);
  direct.authorize(plane.infp[0], "tok");

  for (int i = 0; i < 20; ++i) {
    TimePoint t = 10.0 * (i + 1);
    A2IReport r = a2i_at(t, 50 + static_cast<std::uint64_t>(i));
    plane.exchange.publish_a2i(plane.appp, r, t);
    direct.publish(r, t);
    EXPECT_EQ(plane.exchange.fetch_a2i(plane.infp[0], plane.appp, t),
              direct.query(plane.infp[0], "tok", t));
  }
  EXPECT_EQ(plane.exchange.a2i_leg_stats(plane.appp, plane.infp[0]).delivered,
            20u);
}

// --- trust redaction ---------------------------------------------------------

TEST(Exchange, TrustLevelsRedactPerLeg) {
  Plane plane(3);
  TenantLink full;
  full.a2i_policy.share_server_level_qoe = true;
  plane.exchange.wire(plane.appp, plane.infp[0], full);
  TenantLink aggregate = full;
  aggregate.trust = TrustLevel::kAggregate;
  plane.exchange.wire(plane.appp, plane.infp[1], aggregate);
  TenantLink minimal = full;
  minimal.trust = TrustLevel::kMinimal;
  plane.exchange.wire(plane.appp, plane.infp[2], minimal);

  A2IReport r = a2i_at(10.0, 7);  // 7 sessions: >= 5, < 10
  QoeGroupReport server_grain = r.groups.front();
  server_grain.server = ServerId(3);
  server_grain.sessions = 500;
  r.groups.push_back(server_grain);
  TrafficForecast f;
  f.isp = IspId(0);
  f.cdn = CdnId(0);
  f.expected_rate = 1e6;
  r.forecasts.push_back(f);
  plane.exchange.publish_a2i(plane.appp, r, 10.0);

  auto full_view = plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 10.0);
  ASSERT_TRUE(full_view.has_value());
  EXPECT_EQ(full_view->groups.size(), 2u);  // aggregate + server grain
  EXPECT_EQ(full_view->forecasts.size(), 1u);

  auto agg_view = plane.exchange.fetch_a2i(plane.infp[1], plane.appp, 10.0);
  ASSERT_TRUE(agg_view.has_value());
  ASSERT_EQ(agg_view->groups.size(), 1u);  // server grain masked, 7 >= k=5
  EXPECT_FALSE(agg_view->groups.front().server.valid());
  EXPECT_EQ(agg_view->forecasts.size(), 1u);  // forecasts still shared

  auto min_view = plane.exchange.fetch_a2i(plane.infp[2], plane.appp, 10.0);
  ASSERT_TRUE(min_view.has_value());
  EXPECT_TRUE(min_view->groups.empty());  // 7 sessions < k=10
  EXPECT_TRUE(min_view->forecasts.empty());
}

// --- I2A rate limiting -------------------------------------------------------

TEST(Exchange, I2ALegTokenBucketSuppressesChattyInfP) {
  Plane plane;
  TenantLink link;
  // 0.25/s is binary-exact, so the refill arithmetic has no rounding slack.
  link.i2a_rate = RateLimit{/*rate=*/0.25, /*burst=*/1.0};  // 1 per 4 s
  plane.exchange.wire(plane.appp, plane.infp[0], link);

  // Publish every second for 31 s: only t=0, 4, 8, ..., 28 fit the budget.
  for (int i = 0; i <= 30; ++i) {
    TimePoint t = static_cast<double>(i);
    plane.exchange.publish_i2a(plane.infp[0], i2a_at(t), t);
  }
  const ChannelStats& leg =
      plane.exchange.i2a_leg_stats(plane.infp[0], plane.appp);
  EXPECT_EQ(leg.published, 31u);
  EXPECT_EQ(leg.delivered, 8u);
  EXPECT_EQ(leg.rate_limited, 23u);
  // The consumer still sees the newest *delivered* report.
  auto got = plane.exchange.fetch_i2a(plane.appp, plane.infp[0], 31.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->generated_at, 28.0);
}

TEST(Exchange, DefaultRateLimitIsUnlimited) {
  Plane plane;
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  for (int i = 0; i < 50; ++i) {
    TimePoint t = 0.1 * i;
    plane.exchange.publish_i2a(plane.infp[0], i2a_at(t), t);
  }
  EXPECT_EQ(plane.exchange.i2a_leg_stats(plane.infp[0], plane.appp).rate_limited,
            0u);
}

// --- egress quota clamp ------------------------------------------------------

A2IReport forecast_report(TimePoint t, double rate_per_isp) {
  A2IReport r;
  r.from = ProviderId(0);
  r.generated_at = t;
  for (std::uint64_t isp = 0; isp < 2; ++isp)
    for (std::uint64_t cdn = 0; cdn < 2; ++cdn) {
      TrafficForecast f;
      f.isp = IspId(isp);
      f.cdn = CdnId(cdn);
      f.expected_rate = rate_per_isp / 2.0;  // two CDNs split each ISP claim
      r.forecasts.push_back(f);
    }
  return r;
}

TEST(Exchange, DefaultInfiniteReferenceNeverClamps) {
  Plane plane;
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  plane.exchange.set_quota(plane.appp, TenantQuota{0.01});
  plane.exchange.publish_a2i(plane.appp, forecast_report(10.0, 1e12), 10.0);
  EXPECT_EQ(plane.exchange.clamp_count(), 0u);
  auto got = plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 10.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->forecasts.front().expected_rate, 5e11);
}

TEST(Exchange, QuotaClampScalesOverclaimedForecastsPerIsp) {
  Plane plane(2);
  plane.exchange.set_egress_reference(100e6);
  plane.exchange.set_quota(plane.appp, TenantQuota{0.5});  // allowance 50 Mbps
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  plane.exchange.wire(plane.appp, plane.infp[1], {});

  // Claims 120 Mbps toward each of two ISPs: 2.4x the allowance.
  plane.exchange.publish_a2i(plane.appp, forecast_report(10.0, 120e6), 10.0);
  EXPECT_EQ(plane.exchange.clamp_count(), 1u);
  for (ProviderId infp : plane.infp) {
    auto got = plane.exchange.fetch_a2i(infp, plane.appp, 10.0);
    ASSERT_TRUE(got.has_value());
    // Every wired InfP sees the same clamped view: totals at the allowance,
    // per-CDN proportions preserved.
    EXPECT_NEAR(total_forecast_rate(*got, IspId(0)), 50e6, 1.0);
    EXPECT_NEAR(total_forecast_rate(*got, IspId(1)), 50e6, 1.0);
    for (const TrafficForecast& f : got->forecasts)
      EXPECT_NEAR(f.expected_rate, 25e6, 1.0);
  }

  // An honest publish under the allowance passes through untouched.
  plane.exchange.publish_a2i(plane.appp, forecast_report(20.0, 40e6), 20.0);
  EXPECT_EQ(plane.exchange.clamp_count(), 1u);
  auto honest = plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 20.0);
  ASSERT_TRUE(honest.has_value());
  EXPECT_DOUBLE_EQ(total_forecast_rate(*honest, IspId(0)), 40e6);
}

TEST(Exchange, ClampIsEnforcedAtTheBrokerNotTheClient) {
  // The glass the broker holds is the only path to any InfP, so even a
  // tenant publishing through raw glass access cannot bypass publish_a2i's
  // clamp: the scenario-facing publish path is the one that clamps, and the
  // unclamped raw path is the broker's own (trusted) surface.
  Plane plane;
  plane.exchange.set_egress_reference(100e6);
  plane.exchange.set_quota(plane.appp, TenantQuota{0.5});
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  plane.exchange.publish_a2i(plane.appp, forecast_report(10.0, 200e6), 10.0);
  auto got = plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 10.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_NEAR(total_forecast_rate(*got, IspId(0)), 50e6, 1.0);
  EXPECT_EQ(plane.exchange.clamp_count(), 1u);
}

// --- broker lifecycle: crash, epoch fencing, reattach, churn -----------------

TEST(ExchangeLifecycle, CrashBumpsEpochAndFencesPublishes) {
  Plane plane;
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  const std::uint64_t epoch0 = plane.exchange.epoch();
  EXPECT_TRUE(plane.exchange.publish_a2i(plane.appp, a2i_at(1.0), 1.0));

  plane.exchange.crash();
  EXPECT_TRUE(plane.exchange.crashed());
  EXPECT_EQ(plane.exchange.epoch(), epoch0 + 1);
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());
  // Down broker: every publish is fenced and counted; fetches answer
  // nothing (the legs died with the broker) rather than throwing.
  EXPECT_FALSE(
      plane.exchange.publish_a2i(plane.appp, a2i_at(2.0), 2.0, epoch0));
  EXPECT_FALSE(plane.exchange.publish_i2a(plane.infp[0], i2a_at(2.0), 2.0));
  EXPECT_EQ(plane.exchange.epoch_rejected(), 2u);
  EXPECT_EQ(plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 2.0),
            std::nullopt);

  plane.exchange.restart();
  EXPECT_FALSE(plane.exchange.crashed());
  // A restart alone restores nothing: a pre-crash epoch stays fenced and
  // the legs wait for their producer's reattach handshake.
  EXPECT_FALSE(
      plane.exchange.publish_a2i(plane.appp, a2i_at(3.0), 3.0, epoch0));
  EXPECT_EQ(plane.exchange.epoch_rejected(), 3u);
  EXPECT_EQ(plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 3.0),
            std::nullopt);

  EXPECT_EQ(plane.exchange.reattach(plane.appp), plane.exchange.epoch());
  EXPECT_TRUE(plane.exchange.publish_a2i(plane.appp, a2i_at(4.0), 4.0));
  auto got = plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 4.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->generated_at, 4.0);
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());
}

TEST(ExchangeLifecycle, ReattachWhileDownIsRefused) {
  Plane plane;
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  plane.exchange.crash();
  EXPECT_EQ(plane.exchange.reattach(plane.appp), 0u);  // caller backs off
}

TEST(ExchangeLifecycle, ReattachIsIdempotentAndKeepsTrustRedaction) {
  Plane plane(2);
  TenantLink minimal;
  minimal.trust = TrustLevel::kMinimal;
  plane.exchange.wire(plane.appp, plane.infp[0], minimal);
  TenantLink full;
  full.a2i_policy.share_server_level_qoe = true;
  plane.exchange.wire(plane.appp, plane.infp[1], full);

  plane.exchange.crash();
  plane.exchange.restart();
  EXPECT_EQ(plane.exchange.reattach(plane.appp), plane.exchange.epoch());
  // A duplicated handshake (retry chain racing a fault-delayed ack) must
  // not double-register or reset the restored legs.
  EXPECT_EQ(plane.exchange.reattach(plane.appp), plane.exchange.epoch());
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());

  A2IReport r = a2i_at(10.0, 500);
  QoeGroupReport server_grain = r.groups.front();
  server_grain.server = ServerId(3);
  r.groups.push_back(server_grain);
  TrafficForecast f;
  f.isp = IspId(0);
  f.cdn = CdnId(0);
  f.expected_rate = 1e6;
  r.forecasts.push_back(f);
  EXPECT_TRUE(plane.exchange.publish_a2i(plane.appp, r, 10.0));
  // Reconstructed legs carry the link record's trust-redacted policies:
  // exactly one delivery per leg, the minimal view still stripped.
  EXPECT_EQ(plane.exchange.a2i_leg_stats(plane.appp, plane.infp[0]).delivered,
            1u);
  auto min_view = plane.exchange.fetch_a2i(plane.infp[0], plane.appp, 10.0);
  ASSERT_TRUE(min_view.has_value());
  EXPECT_TRUE(min_view->forecasts.empty());
  for (const QoeGroupReport& g : min_view->groups)
    EXPECT_FALSE(g.server.valid());
  auto full_view = plane.exchange.fetch_a2i(plane.infp[1], plane.appp, 10.0);
  ASSERT_TRUE(full_view.has_value());
  EXPECT_FALSE(full_view->forecasts.empty());
}

TEST(ExchangeLifecycle, ArmedEndpointReattachesWithinHorizon) {
  Plane plane;
  plane.exchange.wire(plane.appp, plane.infp[0], {});
  sim::Scheduler sched;
  ExchangeEndpoint port(&plane.exchange, plane.appp);
  port.arm_reattach(sched, /*seed=*/42);
  TimePoint reattached_at = -1.0;
  port.set_on_reattach([&](TimePoint t) { reattached_at = t; });

  constexpr TimePoint kCrash = 10.0, kRestart = 25.0;
  sched.schedule_at(kCrash, [&] {
    plane.exchange.crash();
    port.on_broker_fault("exchange_crash", kCrash);
  });
  sched.schedule_at(kRestart, [&] { plane.exchange.restart(); });
  sched.run_all();

  EXPECT_TRUE(port.attached());
  EXPECT_EQ(port.reattach_count(), 1u);      // re-admitted exactly once
  EXPECT_GT(port.reattach_attempts(), 1u);   // it really backed off while down
  EXPECT_GE(reattached_at, kRestart);
  EXPECT_LE(reattached_at, kRestart + ReattachPolicy{}.horizon());
  EXPECT_DOUBLE_EQ(port.last_reattach_at(), reattached_at);
  EXPECT_GE(port.detached_seconds(), kRestart - kCrash);
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());
}

TEST(ExchangeLifecycle, RenormalizeQuotasRestoresUnitSum) {
  Plane plane;
  plane.exchange.set_egress_reference(100e6);
  plane.exchange.set_quota(plane.appp, TenantQuota{0.5});
  ProviderId second =
      plane.registry.register_provider(ProviderKind::kAppP, "b");
  plane.exchange.register_appp(second, TenantQuota{0.5});
  EXPECT_NEAR(plane.exchange.total_egress_share(), 1.0, 1e-12);
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());

  // A third tenant joins mid-run: shares overflow until the churn hook
  // renormalizes them back to a unit sum.
  ProviderId third = plane.registry.register_provider(ProviderKind::kAppP, "c");
  plane.exchange.register_appp(third, TenantQuota{0.5});
  EXPECT_FALSE(plane.exchange.invariant_violation().empty());  // 1.5 > 1
  plane.exchange.renormalize_quotas();
  EXPECT_NEAR(plane.exchange.total_egress_share(), 1.0, 1e-12);
  EXPECT_NEAR(plane.exchange.quota(plane.appp).egress_share, 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());

  // And again after a leave.
  plane.exchange.unregister_appp(third);
  plane.exchange.renormalize_quotas();
  EXPECT_NEAR(plane.exchange.total_egress_share(), 1.0, 1e-12);
  EXPECT_NEAR(plane.exchange.quota(second).egress_share, 0.5, 1e-12);
  EXPECT_TRUE(plane.exchange.invariant_violation().empty());
}

}  // namespace
}  // namespace eona::core
