// Integration tests for the E11 fairness/partial-deployment scenario.
#include <gtest/gtest.h>

#include "scenarios/fairness.hpp"

namespace eona::scenarios {
namespace {

FairnessConfig config(bool one, bool two) {
  FairnessConfig c;
  c.appp1_eona = one;
  c.appp2_eona = two;
  return c;
}

TEST(FairnessShape, FullParticipationIsFairAndGreen) {
  FairnessResult r = run_fairness(config(true, true));
  ASSERT_GT(r.appp1.sessions, 50u);
  ASSERT_GT(r.appp2.sessions, 20u);
  EXPECT_TRUE(r.green_path);
  EXPECT_EQ(r.isp_switches, 0u);
  // Both tenants thrive, and neither at the other's expense.
  EXPECT_GT(r.appp1.mean_engagement, 0.95);
  EXPECT_GT(r.appp2.mean_engagement, 0.95);
  EXPECT_LT(r.engagement_gap, 0.02);
}

TEST(FairnessShape, BaselineIsWorseForEveryone) {
  FairnessResult baseline = run_fairness(config(false, false));
  FairnessResult eona = run_fairness(config(true, true));
  EXPECT_GT(eona.appp1.mean_engagement, baseline.appp1.mean_engagement);
  EXPECT_GT(eona.appp2.mean_engagement, baseline.appp2.mean_engagement);
  EXPECT_GT(baseline.appp1.cdn_switches + baseline.appp2.cdn_switches, 100u);
}

TEST(FairnessShape, LargeTenantParticipationLiftsTheFreeRider) {
  // Only the large AppP shares its forecast; its volume alone justifies the
  // IXP, so the non-participating small tenant free-rides to full quality.
  FairnessResult r = run_fairness(config(true, false));
  EXPECT_TRUE(r.green_path);
  EXPECT_GT(r.appp2.mean_engagement, 0.95) << "free-riding works";
}

TEST(FairnessShape, SmallTenantAloneCannotFixTheInterconnect) {
  // The small AppP's forecast fits the cheap point B, so the ISP never
  // moves -- and the non-participating large tenant is left worst off.
  FairnessResult r = run_fairness(config(false, true));
  EXPECT_FALSE(r.green_path);
  EXPECT_LT(r.appp1.mean_engagement, r.appp2.mean_engagement);
  EXPECT_GT(r.engagement_gap, 0.02);
}

}  // namespace
}  // namespace eona::scenarios
