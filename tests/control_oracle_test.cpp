// Tests for the omniscient oracle brain.
#include "control/oracle.hpp"

#include <gtest/gtest.h>

#include "net/transfer.hpp"

namespace eona::control {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : cdn1(CdnId(0), "c1", NodeId{}), cdn2(CdnId(1), "c2", NodeId{}) {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    s1 = topo.add_node(net::NodeKind::kCdnServer, "s1");
    s2 = topo.add_node(net::NodeKind::kCdnServer, "s2");
    s3 = topo.add_node(net::NodeKind::kCdnServer, "s3");
    origin = topo.add_node(net::NodeKind::kOrigin, "origin");
    topo.add_link(edge, client, mbps(200), milliseconds(2));
    e1 = topo.add_link(s1, edge, mbps(50), milliseconds(2));
    e2 = topo.add_link(s2, edge, mbps(10), milliseconds(2));
    e3 = topo.add_link(s3, edge, mbps(30), milliseconds(2));
    cdn1 = app::Cdn(CdnId(0), "c1", origin);
    cdn2 = app::Cdn(CdnId(1), "c2", origin);
    srv1 = cdn1.add_server(s1, e1, 4);
    srv2 = cdn1.add_server(s2, e2, 4);
    srv3 = cdn2.add_server(s3, e3, 4);
    directory.add(&cdn1);
    directory.add(&cdn2);
    network.emplace(topo);
    routing.emplace(topo);
  }

  app::PlayerView view(CdnId cdn = CdnId{}, ServerId server = ServerId{}) {
    app::PlayerView v;
    v.session = SessionId(1);
    v.cdn = cdn;
    v.server = server;
    v.isp = IspId(0);
    v.client_node = client;
    v.joined = true;
    v.buffer = 15.0;
    v.max_buffer = 24.0;
    v.ladder = &ladder;
    return v;
  }

  net::Topology topo;
  NodeId client, edge, s1, s2, s3, origin;
  LinkId e1, e2, e3;
  app::Cdn cdn1, cdn2;
  ServerId srv1, srv2, srv3;
  app::CdnDirectory directory;
  std::optional<net::Network> network;
  std::optional<net::Routing> routing;
  std::vector<BitsPerSecond> ladder{mbps(1), mbps(3), mbps(6)};
};

TEST_F(OracleTest, PicksTheBiggestPipeAcrossCdns) {
  OracleBrain oracle(*network, *routing, directory);
  app::Endpoint choice = oracle.choose_endpoint(view());
  EXPECT_EQ(choice.cdn, CdnId(0));
  EXPECT_EQ(choice.server, srv1);  // 50 Mbps beats 30 and 10
}

TEST_F(OracleTest, AccountsForExistingLoad) {
  OracleBrain oracle(*network, *routing, directory);
  // Crowd server 1 with background flows: 50/(5+1) ~ 8.3 < 30 on server 3.
  for (int i = 0; i < 5; ++i) network->add_flow({e1});
  app::Endpoint choice = oracle.choose_endpoint(view());
  EXPECT_EQ(choice.server, srv3);
  EXPECT_EQ(choice.cdn, CdnId(1));
}

TEST_F(OracleTest, SkipsOfflineServers) {
  OracleBrain oracle(*network, *routing, directory);
  cdn1.set_online(srv1, false);
  app::Endpoint choice = oracle.choose_endpoint(view());
  // Best remaining pipe is cdn2's 30 Mbps server (server ids are per-CDN,
  // so compare the full endpoint).
  EXPECT_EQ(choice.cdn, CdnId(1));
  EXPECT_EQ(choice.server, srv3);
}

TEST_F(OracleTest, SwitchRequiresRealGain) {
  OracleConfig config;
  config.switch_gain = 1.3;
  OracleBrain oracle(*network, *routing, directory, config);
  // Currently on server 3 (30 Mbps); best is server 1 (50 Mbps): 50/30 =
  // 1.67 > 1.3 -> switch.
  EXPECT_TRUE(oracle.should_switch_endpoint(view(CdnId(1), srv3)));
  // Load server 1 so its edge drops to 25 Mbps for a newcomer: gain < 1.3.
  network->add_flow({e1});
  EXPECT_FALSE(oracle.should_switch_endpoint(view(CdnId(1), srv3)));
  // Already on the best endpoint: never switch.
  EXPECT_FALSE(oracle.should_switch_endpoint(view(CdnId(0), srv1)));
}

TEST_F(OracleTest, BitrateFollowsPredictedShare) {
  OracleBrain oracle(*network, *routing, directory);
  app::PlayerView v = view(CdnId(0), srv1);
  // Empty network: share 50/(0+1) -> 0.85*50 = 42.5 -> top rung.
  EXPECT_EQ(oracle.choose_bitrate(v), 2u);
  // Crowd it: share 50/11 = 4.5 -> 0.85*4.5 = 3.9 -> 3 Mbps rung.
  for (int i = 0; i < 10; ++i) network->add_flow({e1});
  EXPECT_EQ(oracle.choose_bitrate(v), 1u);
}

TEST_F(OracleTest, PanicBufferDropsToFloor) {
  OracleBrain oracle(*network, *routing, directory);
  app::PlayerView v = view(CdnId(0), srv1);
  v.buffer = 1.0;
  EXPECT_EQ(oracle.choose_bitrate(v), 0u);
}

TEST_F(OracleTest, MeasuredThroughputTempersOptimism) {
  OracleBrain oracle(*network, *routing, directory);
  app::PlayerView v = view(CdnId(0), srv1);
  v.throughput_estimate = mbps(2);  // reality disagrees with the share
  EXPECT_EQ(oracle.choose_bitrate(v), 0u);  // 0.85*2 = 1.7 -> 1 Mbps rung
}

}  // namespace
}  // namespace eona::control
