// End-to-end tests of the adaptive video player mechanics on a tiny network
// with scripted brains: startup, steady playback, stalls and recovery,
// beacons, switching, and abort.
#include "app/video_player.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "app/session_pool.hpp"
#include "net/transfer.hpp"

namespace eona::app {
namespace {

/// Brain with fixed decisions (and optional stall-triggered switching).
class ScriptedBrain : public PlayerBrain {
 public:
  Endpoint endpoint{CdnId(0), ServerId(0)};
  Endpoint switch_target{CdnId(0), ServerId(0)};
  std::size_t bitrate = 0;
  bool switch_on_stall = false;

  Endpoint choose_endpoint(const PlayerView& v) override {
    return v.stall_count > 0 && switch_on_stall ? switch_target : endpoint;
  }
  bool should_switch_endpoint(const PlayerView& v) override {
    return switch_on_stall && v.stalls_since_switch > 0;
  }
  std::size_t choose_bitrate(const PlayerView&) override { return bitrate; }
};

class PlayerTest : public ::testing::Test {
 protected:
  PlayerTest() : cdn(CdnId(0), "cdn", NodeId{}) {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    srv = topo.add_node(net::NodeKind::kCdnServer, "srv");
    srv2 = topo.add_node(net::NodeKind::kCdnServer, "srv2");
    origin = topo.add_node(net::NodeKind::kOrigin, "origin");
    topo.add_link(edge, client, mbps(100), milliseconds(1));
    egress = topo.add_link(srv, edge, mbps(10), milliseconds(1));
    egress2 = topo.add_link(srv2, edge, mbps(10), milliseconds(1));
    topo.add_link(origin, srv, mbps(10), milliseconds(1));
    topo.add_link(origin, srv2, mbps(10), milliseconds(1));

    cdn = Cdn(CdnId(0), "cdn", origin);
    s0 = cdn.add_server(srv, egress, 8);
    s1 = cdn.add_server(srv2, egress2, 8);
    cdn.warm_cache(s0, {ContentId(0)});
    cdn.warm_cache(s1, {ContentId(0)});
    directory.add(&cdn);

    network.emplace(topo);
    transfers.emplace(sched, *network);
    routing.emplace(topo);

    content.id = ContentId(0);
    content.kind = ContentKind::kVideo;
    content.video_duration = 40.0;

    config.ladder = {mbps(1)};
    config.chunk_duration = 4.0;
    config.startup_target = 8.0;
    config.resume_target = 4.0;
    config.max_buffer = 24.0;
    config.beacon_period = 5.0;
    config.switch_delay = 0.2;
    config.min_switch_interval = 1.0;
  }

  std::unique_ptr<VideoPlayer> make_player(
      PlayerBrain& brain, VideoPlayer::DoneCallback done,
      telemetry::BeaconCollector* collector = nullptr) {
    telemetry::Dimensions dims;
    dims.isp = IspId(0);
    return std::make_unique<VideoPlayer>(
        sched, *transfers, *network, *routing, directory, brain, collector,
        config, SessionId(1), dims, client, content, qoe::EngagementModel{},
        std::move(done));
  }

  net::Topology topo;
  NodeId client, edge, srv, srv2, origin;
  LinkId egress, egress2;
  Cdn cdn;
  ServerId s0, s1;
  CdnDirectory directory;
  sim::Scheduler sched;
  std::optional<net::Network> network;
  std::optional<net::TransferManager> transfers;
  std::optional<net::Routing> routing;
  ContentItem content;
  PlayerConfig config;
};

TEST_F(PlayerTest, CleanPlaybackTimeline) {
  ScriptedBrain brain;
  std::optional<telemetry::SessionRecord> final_record;
  auto player = make_player(
      brain, [&](const telemetry::SessionRecord& r) { final_record = r; });
  player->start();
  sched.run_all();

  ASSERT_TRUE(final_record.has_value());
  EXPECT_TRUE(player->finished());
  const auto& m = final_record->metrics;
  // 1 Mbps rendition over a 10 Mbps path: each 4 Mb chunk takes 0.4 s;
  // join after 2 chunks (8 s buffered) at ~0.8 s.
  EXPECT_NEAR(m.join_time, 0.8, 0.05);
  EXPECT_DOUBLE_EQ(m.buffering_ratio, 0.0);
  EXPECT_NEAR(m.avg_bitrate, mbps(1), 1e3);
  EXPECT_EQ(player->stall_count(), 0u);
  // Session ends when the 40 s of content drain after the join.
  EXPECT_NEAR(final_record->timestamp, 40.8, 0.1);
  // All 10 chunks were delivered.
  EXPECT_NEAR(m.bytes_delivered, 10 * mbps(1) * 4.0, 1.0);
}

TEST_F(PlayerTest, BufferCapThrottlesFetching) {
  ScriptedBrain brain;
  auto player = make_player(brain, nullptr);
  player->start();
  sched.run_until(12.0);
  // Buffer must never exceed max_buffer.
  EXPECT_LE(player->buffer_level(), config.max_buffer + 1e-9);
  EXPECT_GT(player->buffer_level(), config.max_buffer - 2 * config.chunk_duration);
}

TEST_F(PlayerTest, CapacityLossCausesStallThenRecovery) {
  ScriptedBrain brain;
  std::optional<telemetry::SessionRecord> final_record;
  auto player = make_player(
      brain, [&](const telemetry::SessionRecord& r) { final_record = r; });
  player->start();
  // Starve the server mid-stream for 40 s: buffer (<=24 s) must run dry.
  sched.schedule_at(10.0, [&] { network->set_link_capacity(egress, kbps(1)); });
  sched.schedule_at(50.0, [&] { network->set_link_capacity(egress, mbps(10)); });
  sched.run_all();

  ASSERT_TRUE(final_record.has_value());
  EXPECT_GE(player->stall_count(), 1u);
  EXPECT_GT(final_record->metrics.buffering_ratio, 0.1);
  EXPECT_TRUE(player->finished());
}

TEST_F(PlayerTest, StallTriggersBrainDrivenServerSwitch) {
  ScriptedBrain brain;
  brain.switch_on_stall = true;
  brain.switch_target = Endpoint{CdnId(0), s1};
  std::optional<telemetry::SessionRecord> final_record;
  auto player = make_player(
      brain, [&](const telemetry::SessionRecord& r) { final_record = r; });
  player->start();
  // Kill server 0 permanently; the player must stall, switch to server 1,
  // and finish from there.
  sched.schedule_at(10.0, [&] { network->set_link_capacity(egress, 0.0); });
  sched.run_all();

  ASSERT_TRUE(final_record.has_value());
  EXPECT_TRUE(player->finished());
  EXPECT_EQ(player->endpoint().server, s1);
  EXPECT_EQ(player->server_switches(), 1u);
  EXPECT_EQ(player->cdn_switches(), 0u);
}

TEST_F(PlayerTest, BeaconsCarryDeltaTraffic) {
  ScriptedBrain brain;
  telemetry::BeaconCollector collector;
  double beaconed_bits = 0.0;
  collector.add_sink([&](const telemetry::SessionRecord& r) {
    beaconed_bits += r.metrics.bytes_delivered;
  });
  auto player = make_player(brain, nullptr, &collector);
  player->start();
  sched.run_all();
  // Sum of beacon deltas == total delivered volume (10 chunks x 4 Mb).
  EXPECT_NEAR(beaconed_bits, 10 * mbps(1) * 4.0, 1.0);
  EXPECT_GE(collector.beacon_count(), 5u);
}

TEST_F(PlayerTest, AbortEmitsFinalRecordAndCleansUp) {
  ScriptedBrain brain;
  std::optional<telemetry::SessionRecord> final_record;
  auto player = make_player(
      brain, [&](const telemetry::SessionRecord& r) { final_record = r; });
  player->start();
  sched.run_until(6.0);
  player->abort();
  EXPECT_TRUE(player->finished());
  ASSERT_TRUE(final_record.has_value());
  EXPECT_EQ(network->flow_count(), 0u);
  sched.run_all();  // nothing further may fire
  EXPECT_TRUE(player->finished());
}

TEST_F(PlayerTest, ThroughputEstimateConverges) {
  ScriptedBrain brain;
  auto player = make_player(brain, nullptr);
  player->start();
  sched.run_until(10.0);
  EXPECT_NEAR(player->throughput_estimate(), mbps(10), mbps(1));
}

TEST_F(PlayerTest, SessionPoolTracksLifecycle) {
  ScriptedBrain brain;
  SessionPool pool(sched);
  SessionId id = pool.spawn([&](VideoPlayer::DoneCallback done) {
    telemetry::Dimensions dims;
    dims.isp = IspId(0);
    return std::make_unique<VideoPlayer>(
        sched, *transfers, *network, *routing, directory, brain, nullptr,
        config, SessionId(42), dims, client, content, qoe::EngagementModel{},
        std::move(done));
  });
  EXPECT_EQ(id, SessionId(42));
  EXPECT_EQ(pool.active_count(), 1u);
  EXPECT_TRUE(pool.contains(id));
  sched.run_all();
  EXPECT_EQ(pool.active_count(), 0u);
  ASSERT_EQ(pool.summaries().size(), 1u);
  EXPECT_EQ(pool.summaries()[0].record.session, SessionId(42));
  EXPECT_EQ(pool.summaries()[0].stalls, 0u);
}

TEST_F(PlayerTest, ShortVideoJoinsEvenBelowStartupTarget) {
  content.video_duration = 4.0;  // a single chunk < startup target
  ScriptedBrain brain;
  std::optional<telemetry::SessionRecord> final_record;
  auto player = make_player(
      brain, [&](const telemetry::SessionRecord& r) { final_record = r; });
  player->start();
  sched.run_all();
  ASSERT_TRUE(final_record.has_value());
  EXPECT_TRUE(player->finished());
  EXPECT_NEAR(final_record->timestamp, 0.4 + 4.0, 0.1);
}

}  // namespace
}  // namespace eona::app
