// Chaos engine, invariant auditor, and the failover scenario:
//  * FaultPlan text-form parsing (grammar + rejection of malformed specs),
//  * ChaosEngine execution (same-instant grouping into one batch, typed
//    FaultEvents, unknown-target errors, server crash/restart),
//  * InvariantAuditor negative tests -- it must FIRE on a flow left routed
//    over a down link and on a stranded session nobody resolved,
//  * chaos determinism: identical plan + seed => byte-identical scenario
//    JSON and event trace, for any sweep thread count,
//  * the E15 headline: EONA-coordinated recovery beats siloed recovery on
//    both time-to-recovery and rebuffer-seconds.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "scenarios/chaos.hpp"
#include "scenarios/auditor.hpp"
#include "scenarios/failover.hpp"
#include "scenarios/lab.hpp"
#include "scenarios/sweep.hpp"
#include "sim/trace.hpp"

namespace eona {
namespace {

using sim::FaultAction;
using sim::FaultPlan;

// --- plan parsing ----------------------------------------------------------

TEST(FaultPlanParse, FullGrammar) {
  FaultPlan plan = FaultPlan::parse(
      "down:X@B@120;up:X@B@180;brownout:Y@C@60:0.25;crash:cdn-X/0@90;"
      "restart:cdn-X/0@150");
  ASSERT_EQ(plan.actions.size(), 5u);
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::kLinkDown);
  EXPECT_EQ(plan.actions[0].target, "X@B");  // link names may contain '@'
  EXPECT_DOUBLE_EQ(plan.actions[0].at, 120.0);
  EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::kLinkUp);
  EXPECT_EQ(plan.actions[2].kind, FaultAction::Kind::kBrownout);
  EXPECT_DOUBLE_EQ(plan.actions[2].factor, 0.25);
  EXPECT_EQ(plan.actions[3].kind, FaultAction::Kind::kServerCrash);
  EXPECT_EQ(plan.actions[3].target, "cdn-X/0");
  EXPECT_EQ(plan.actions[4].kind, FaultAction::Kind::kServerRestart);
}

TEST(FaultPlanParse, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(FaultPlanParse, RejectsMalformedClauses) {
  EXPECT_THROW((void)FaultPlan::parse("melt:X@B@120"), ConfigError);   // kind
  EXPECT_THROW((void)FaultPlan::parse("down:X@B"), ConfigError);       // time
  EXPECT_THROW((void)FaultPlan::parse("downX@B@120"), ConfigError);    // ':'
  EXPECT_THROW((void)FaultPlan::parse("down:X@B@-5"), ConfigError);
  EXPECT_THROW((void)FaultPlan::parse("down:X@B@abc"), ConfigError);
  // Factor is brownout-only and must stay in (0, 1].
  EXPECT_THROW((void)FaultPlan::parse("down:X@B@120:0.5"), ConfigError);
  EXPECT_THROW((void)FaultPlan::parse("brownout:X@B@120:0"), ConfigError);
  EXPECT_THROW((void)FaultPlan::parse("brownout:X@B@120:1.5"), ConfigError);
}

TEST(FaultPlanParse, ExchangeTargetMapsToBrokerKinds) {
  FaultPlan plan = FaultPlan::parse("crash:exchange@180;restart:exchange@300");
  ASSERT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::kExchangeCrash);
  EXPECT_EQ(plan.actions[0].target, "exchange");
  EXPECT_DOUBLE_EQ(plan.actions[0].at, 180.0);
  EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::kExchangeRestart);
  EXPECT_DOUBLE_EQ(plan.actions[1].at, 300.0);
  // Only crash/restart address the broker; it has no capacity to brown out.
  EXPECT_THROW((void)FaultPlan::parse("down:exchange@10"), ConfigError);
  EXPECT_THROW((void)FaultPlan::parse("brownout:exchange@10:0.5"),
               ConfigError);
}

TEST(FaultPlanParse, ErrorsNameOffendingTokenAndBytePosition) {
  auto message_of = [](const std::string& spec) {
    try {
      (void)FaultPlan::parse(spec);
    } catch (const ConfigError& e) {
      return std::string(e.what());
    }
    return std::string("<no error>");
  };
  // The bad clause sits at byte 11 of the plan (1-based): the message must
  // point there, name the clause, and name the offending token.
  std::string msg = message_of("down:ab@5;melt:X@9");
  EXPECT_NE(msg.find("unknown kind 'melt'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'melt:X@9'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at position 11"), std::string::npos) << msg;

  msg = message_of("down:ab@xyz");
  EXPECT_NE(msg.find("bad number 'xyz'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at position 1"), std::string::npos) << msg;

  msg = message_of("up:ab@5;up:ab@6;down:ab@120:0.5");
  EXPECT_NE(msg.find("factor only valid for brownout"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("at position 17"), std::string::npos) << msg;
}

// --- chaos engine ----------------------------------------------------------

class ChaosEngineTest : public ::testing::Test {
 protected:
  ChaosEngineTest() {
    a = topo.add_node(net::NodeKind::kRouter, "a");
    b = topo.add_node(net::NodeKind::kRouter, "b");
    ab = topo.add_link(a, b, mbps(10), milliseconds(1), "ab");
    ab2 = topo.add_link(a, b, mbps(10), milliseconds(2), "ab2");
    network.emplace(topo);
    bus.subscribe<sim::FaultEvent>(
        [this](const sim::FaultEvent& e) { events.push_back(e); });
  }
  net::Topology topo;
  NodeId a, b;
  LinkId ab, ab2;
  sim::Scheduler sched;
  sim::EventBus bus;
  std::optional<net::Network> network;
  std::vector<sim::FaultEvent> events;
};

TEST_F(ChaosEngineTest, SameInstantActionsLandAsOneBatch) {
  sim::ChaosEngine chaos(sched, bus, *network);
  // A scheduled partition: both parallel links die at the same instant.
  sim::FaultPlan plan = sim::FaultPlan::parse("down:ab@5;down:ab2@5;up:ab@9");
  chaos.schedule(plan);
  std::uint64_t recomputes_before = network->recompute_count();
  sched.run_until(6.0);
  EXPECT_EQ(chaos.fault_count(), 2u);
  // One Network batch for the instant: exactly one extra recompute.
  EXPECT_EQ(network->recompute_count(), recomputes_before + 1);
  EXPECT_FALSE(network->link_up(ab));
  EXPECT_FALSE(network->link_up(ab2));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "link_down");
  EXPECT_DOUBLE_EQ(events[0].t, 5.0);
  // FaultEvents publish AFTER the batch commits: a subscriber at t=5 already
  // observed both links down (events recorded post-mutation by definition of
  // the synchronous bus; pinned here via the network state above).
  sched.run_until(10.0);
  EXPECT_EQ(chaos.fault_count(), 3u);
  EXPECT_TRUE(network->link_up(ab));
  EXPECT_FALSE(network->link_up(ab2));
}

TEST_F(ChaosEngineTest, BrownoutScalesConfiguredCapacity) {
  sim::ChaosEngine chaos(sched, bus, *network);
  chaos.schedule(sim::FaultPlan::parse("brownout:ab@2:0.25"));
  sched.run_until(3.0);
  EXPECT_DOUBLE_EQ(network->link_capacity(ab), 0.25 * mbps(10));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].kind, "brownout");
  EXPECT_DOUBLE_EQ(events[0].factor, 0.25);
}

TEST_F(ChaosEngineTest, UnknownTargetsThrowAtScheduleTime) {
  sim::ChaosEngine chaos(sched, bus, *network);
  EXPECT_THROW(chaos.schedule(sim::FaultPlan::parse("down:nope@1")),
               ConfigError);
  // Server faults need a CDN directory; this engine has none.
  EXPECT_THROW(chaos.schedule(sim::FaultPlan::parse("crash:cdn-X/0@1")),
               ConfigError);
  // Broker faults need an attached exchange; this engine has none either.
  EXPECT_THROW(chaos.schedule(sim::FaultPlan::parse("crash:exchange@1")),
               ConfigError);
}

// --- invariant auditor -----------------------------------------------------

TEST_F(ChaosEngineTest, AuditorFiresOnFlowLeftOverDownLink) {
  sim::InvariantAuditor auditor(bus, *network);
  network->add_flow({ab});
  network->set_link_up(ab, false);
  // Nobody rerouted or aborted the flow: finalize must abort loudly.
  EXPECT_THROW(auditor.finalize(), Error);
  // Rerouting the flow onto the live twin link clears the violation.
  network->reroute(FlowId(0), {ab2});
  EXPECT_NO_THROW(auditor.finalize());
}

TEST_F(ChaosEngineTest, AuditorFiresOnUnresolvedStrandedSession) {
  sim::InvariantAuditor auditor(bus, *network);
  bus.publish(sim::SessionStrandedEvent{1.0, SessionId(7), "link-down"});
  EXPECT_EQ(auditor.open_stranded(), 1u);
  EXPECT_THROW(auditor.finalize(), Error);
  // A resume resolves it; so would a SessionFinishedEvent.
  bus.publish(sim::SessionResumedEvent{2.0, SessionId(7), 1.0});
  EXPECT_EQ(auditor.open_stranded(), 0u);
  EXPECT_NO_THROW(auditor.finalize());
  EXPECT_EQ(auditor.stranded_events(), 1u);
  EXPECT_EQ(auditor.resumed_events(), 1u);
}

TEST_F(ChaosEngineTest, AuditorChecksEveryRecompute) {
  network->set_event_bus(&bus, &sched);
  sim::InvariantAuditor auditor(bus, *network);
  network->add_flow({ab});
  network->add_flow({ab2});
  network->set_link_up(ab2, false);  // strands flow 1 at rate exactly 0: OK
  EXPECT_GE(auditor.check_count(), 3u);
  network->remove_flow(FlowId(1));
  EXPECT_NO_THROW(auditor.finalize());
}

// --- failover scenario: determinism ----------------------------------------

std::map<std::string, std::string> fast_failover_overrides(
    const std::string& mode, const std::string& seed) {
  return {{"mode", mode},           {"seed", seed},
          {"run_duration", "240"},  {"outage_start", "90"},
          {"arrival_rate", "0.3"}};
}

TEST(FailoverDeterminism, SameSeedSamePlanSameBytes) {
  sim::TraceWriter trace1, trace2;
  core::JsonValue out1 = scenarios::run_scenario_json(
      "failover", fast_failover_overrides("eona", "3"), nullptr, &trace1);
  core::JsonValue out2 = scenarios::run_scenario_json(
      "failover", fast_failover_overrides("eona", "3"), nullptr, &trace2);
  EXPECT_EQ(out1.dump(2), out2.dump(2));
  EXPECT_FALSE(trace1.buffer().empty());
  EXPECT_EQ(trace1.buffer(), trace2.buffer());
  // A different seed must actually change the run (the trace is not inert).
  sim::TraceWriter trace3;
  core::JsonValue out3 = scenarios::run_scenario_json(
      "failover", fast_failover_overrides("eona", "4"), nullptr, &trace3);
  EXPECT_NE(trace1.buffer(), trace3.buffer());
}

TEST(FailoverDeterminism, SweepOutputIdenticalForAnyThreadCount) {
  scenarios::SweepSpec spec;
  spec.scenario = "failover";
  spec.seeds = {1, 2};
  spec.modes = {"baseline", "eona"};
  spec.overrides = fast_failover_overrides("eona", "1");
  spec.overrides.erase("mode");
  spec.overrides.erase("seed");
  std::string trace_serial, trace_parallel;
  spec.threads = 1;
  core::JsonValue serial = scenarios::run_sweep(spec, &trace_serial);
  spec.threads = 4;
  core::JsonValue parallel = scenarios::run_sweep(spec, &trace_parallel);
  EXPECT_EQ(serial.dump(2), parallel.dump(2));
  EXPECT_EQ(trace_serial, trace_parallel);
}

// --- failover scenario: the §4 recovery claim ------------------------------

TEST(FailoverScenario, EonaRecoversFasterThanSiloed) {
  scenarios::FailoverConfig config;
  config.seed = 1;
  config.mode = scenarios::ControlMode::kBaseline;
  scenarios::FailoverResult base = scenarios::run_failover(config);
  config.mode = scenarios::ControlMode::kEona;
  scenarios::FailoverResult eona = scenarios::run_failover(config);

  // Both worlds took the same single fault, and the auditor watched both.
  EXPECT_EQ(base.faults, 1u);
  EXPECT_EQ(eona.faults, 1u);
  EXPECT_GT(base.auditor_checks, 0u);
  EXPECT_GT(eona.auditor_checks, 0u);

  // Siloed world: the outage is discovered one aborted fetch at a time.
  EXPECT_GT(base.aborted_transfers, 0u);
  EXPECT_GT(base.stranded_sessions, 0u);
  EXPECT_EQ(base.infp_failovers, 0u);  // nothing tells the siloed InfP

  // EONA world: the InfP re-steers off the dead interconnect.
  EXPECT_GE(eona.infp_failovers, 1u);

  // The §4 claim, per-seed: faster recovery AND fewer rebuffer-seconds.
  EXPECT_LT(eona.time_to_recovery, base.time_to_recovery);
  EXPECT_LT(eona.rebuffer_seconds, base.rebuffer_seconds);
}

TEST(FailoverScenario, ServerCrashPlanRunsCleanly) {
  scenarios::FailoverConfig config;
  config.mode = scenarios::ControlMode::kEona;
  config.run_duration = 240.0;
  config.faults = "crash:cdn-X/0@60;restart:cdn-X/0@120";
  scenarios::FailoverResult result = scenarios::run_failover(config);
  EXPECT_EQ(result.faults, 2u);  // run_failover finalized the auditor: clean
  EXPECT_GT(result.qoe.sessions, 0u);
}

}  // namespace
}  // namespace eona
