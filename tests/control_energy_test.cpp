// Tests for server energy management: load-threshold scaling, the EONA QoE
// guardrail, cache loss on power-off, and savings accounting.
#include "control/energy.hpp"

#include <gtest/gtest.h>

#include "net/transfer.hpp"

namespace eona::control {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest() : cdn(CdnId(0), "cdn", NodeId{}) {
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    origin = topo.add_node(net::NodeKind::kOrigin, "origin");
    for (int i = 0; i < 3; ++i) {
      NodeId node =
          topo.add_node(net::NodeKind::kCdnServer, "s" + std::to_string(i));
      nodes.push_back(node);
      links.push_back(topo.add_link(node, edge, mbps(10), milliseconds(1)));
    }
    network.emplace(topo);
    cdn = app::Cdn(CdnId(0), "cdn", origin);
    for (int i = 0; i < 3; ++i) {
      servers.push_back(cdn.add_server(nodes[i], links[i], 4));
      cdn.warm_cache(servers.back(), {ContentId(0)});
    }
  }

  EnergyManager make(EnergyConfig config = {}) {
    return EnergyManager(sched, *network, cdn, ProviderId(2), config);
  }

  void push_a2i(EnergyManager& energy, double buffering, double engagement,
                std::uint64_t sessions = 100) {
    if (!a2i_source) {
      a2i_source.emplace(ProviderId(0));
      a2i_source->authorize(ProviderId(2), "tok");
      energy.subscribe_a2i(&*a2i_source, "tok");
    }
    core::A2IReport report;
    report.from = ProviderId(0);
    report.generated_at = sched.now();
    core::QoeGroupReport g;
    g.isp = IspId(0);
    g.cdn = CdnId(0);
    g.mean_buffering_ratio = buffering;
    g.mean_engagement = engagement;
    g.sessions = sessions;
    report.groups.push_back(g);
    a2i_source->publish(report, sched.now());
  }

  net::Topology topo;
  NodeId edge, origin;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  std::vector<ServerId> servers;
  sim::Scheduler sched;
  std::optional<net::Network> network;
  app::Cdn cdn;
  std::optional<core::A2IEndpoint> a2i_source;
};

TEST_F(EnergyTest, BaselineShedsWhenIdle) {
  EnergyManager energy = make();
  EXPECT_EQ(cdn.online_count(), 3u);
  energy.tick();  // load 0 <= scale_down
  EXPECT_EQ(cdn.online_count(), 2u);
  EXPECT_EQ(energy.shutdowns(), 1u);
  energy.tick();
  energy.tick();
  // min_online=1 floors the shedding.
  EXPECT_EQ(cdn.online_count(), 1u);
  energy.tick();
  EXPECT_EQ(cdn.online_count(), 1u);
}

TEST_F(EnergyTest, ShutdownZeroesCapacityAndDropsCache) {
  EnergyManager energy = make();
  energy.tick();
  // Find the offline server.
  ServerId off;
  for (const auto& s : cdn.servers())
    if (!s.online) off = s.id;
  ASSERT_TRUE(off.valid());
  EXPECT_DOUBLE_EQ(network->link_capacity(cdn.server(off).egress), 0.0);
  EXPECT_EQ(cdn.server(off).cache.size(), 0u) << "power-off loses the cache";
}

TEST_F(EnergyTest, WakeRestoresCapacity) {
  EnergyManager energy = make();
  energy.tick();  // shed one
  // Saturate the two remaining servers so mean load > scale_up.
  for (const auto& s : cdn.servers())
    if (s.online) network->add_flow({s.egress});
  energy.tick();
  EXPECT_EQ(cdn.online_count(), 3u);
  EXPECT_EQ(energy.wakes(), 1u);
  for (const auto& s : cdn.servers())
    EXPECT_DOUBLE_EQ(network->link_capacity(s.egress), mbps(10));
}

TEST_F(EnergyTest, ShedsTheLeastLoadedServer) {
  EnergyManager energy = make();
  network->add_flow({links[0]});
  network->add_flow({links[1]});
  // Server 2 idle -> it is the victim. (Loads: 1, 1, 0 -> mean ~0.67, but
  // scale_down must permit: use a generous threshold.)
  EnergyConfig config;
  config.scale_down_load = 0.7;
  config.scale_up_load = 0.9;
  EnergyManager aggressive = make(config);
  aggressive.tick();
  EXPECT_FALSE(cdn.server(servers[2]).online);
}

TEST_F(EnergyTest, EonaGuardrailBlocksSheddingOnBadQoe) {
  EnergyManager energy = make();
  energy.set_eona_enabled(true);
  push_a2i(energy, /*buffering=*/0.10, /*engagement=*/0.95);
  energy.tick();
  // Bad buffering: wake (no-op at 3/3) and refuse to shed.
  EXPECT_EQ(cdn.online_count(), 3u);
  EXPECT_EQ(energy.shutdowns(), 0u);
}

TEST_F(EnergyTest, EonaGuardrailBlocksSheddingOnLowEngagement) {
  EnergyManager energy = make();
  energy.set_eona_enabled(true);
  push_a2i(energy, 0.0, /*engagement=*/0.70);
  energy.tick();
  EXPECT_EQ(energy.shutdowns(), 0u);
}

TEST_F(EnergyTest, EonaWakesOnQoeDegradation) {
  EnergyManager energy = make();
  energy.set_eona_enabled(true);
  push_a2i(energy, 0.0, 0.99);
  energy.tick();  // healthy: sheds one
  EXPECT_EQ(cdn.online_count(), 2u);
  push_a2i(energy, 0.20, 0.50);
  energy.tick();  // QoE collapsed: wake immediately
  EXPECT_EQ(cdn.online_count(), 3u);
}

TEST_F(EnergyTest, EonaShedsWhenComfortable) {
  EnergyManager energy = make();
  energy.set_eona_enabled(true);
  push_a2i(energy, 0.001, 0.98);
  energy.tick();
  EXPECT_EQ(cdn.online_count(), 2u);
}

TEST_F(EnergyTest, SavingsAccounting) {
  EnergyManager energy = make();
  energy.tick();  // 2 online from t=0
  sched.run_until(100.0);
  // 3 servers, one off for ~100 s.
  EXPECT_NEAR(energy.server_seconds_saved(100.0), 100.0, 1.0);
  EXPECT_NEAR(energy.online_series().time_weighted_mean(0.0, 100.0), 2.0,
              0.05);
}

TEST_F(EnergyTest, MeanLoadCoversOnlyOnlineServers) {
  EnergyManager energy = make();
  network->add_flow({links[0]});  // saturates server 0
  EXPECT_NEAR(energy.mean_online_load(), 1.0 / 3.0, 1e-9);
  cdn.set_online(servers[1], false);
  cdn.set_online(servers[2], false);
  EXPECT_NEAR(energy.mean_online_load(), 1.0, 1e-9);
}

TEST_F(EnergyTest, ReportedMetricsComeFromMatchingCdnOnly) {
  EnergyManager energy = make();
  energy.set_eona_enabled(true);
  // Report for a different CDN: must be ignored.
  core::A2IReport report;
  report.from = ProviderId(0);
  core::QoeGroupReport g;
  g.cdn = CdnId(9);
  g.mean_buffering_ratio = 0.9;
  g.sessions = 10;
  report.groups.push_back(g);
  a2i_source.emplace(ProviderId(0));
  a2i_source->authorize(ProviderId(2), "tok");
  energy.subscribe_a2i(&*a2i_source, "tok");
  a2i_source->publish(report, 0.0);
  energy.tick();
  EXPECT_FALSE(energy.reported_buffering().has_value());
  // With no QoE data the EONA controller still sheds on load.
  EXPECT_EQ(energy.shutdowns(), 1u);
}

}  // namespace
}  // namespace eona::control
