// Tests for Dijkstra routing: correctness, determinism, via-constraints.
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace eona::net {
namespace {

/// A small diamond:  a -> b -> d (slow upper), a -> c -> d (fast lower),
/// plus a direct a -> d link that is slowest.
class DiamondTest : public ::testing::Test {
 protected:
  DiamondTest() {
    a = topo.add_node(NodeKind::kRouter, "a");
    b = topo.add_node(NodeKind::kRouter, "b");
    c = topo.add_node(NodeKind::kRouter, "c");
    d = topo.add_node(NodeKind::kRouter, "d");
    ab = topo.add_link(a, b, mbps(10), milliseconds(10));
    bd = topo.add_link(b, d, mbps(10), milliseconds(10));
    ac = topo.add_link(a, c, mbps(10), milliseconds(4));
    cd = topo.add_link(c, d, mbps(10), milliseconds(4));
    ad = topo.add_link(a, d, mbps(10), milliseconds(50));
  }
  Topology topo;
  NodeId a, b, c, d;
  LinkId ab, bd, ac, cd, ad;
};

TEST_F(DiamondTest, ShortestPathPicksMinimumDelay) {
  Routing routing(topo);
  Path path = routing.shortest_path(a, d);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], ac);
  EXPECT_EQ(path[1], cd);
  EXPECT_DOUBLE_EQ(path_delay(topo, path), milliseconds(8));
}

TEST_F(DiamondTest, SelfPathIsEmpty) {
  Routing routing(topo);
  EXPECT_TRUE(routing.shortest_path(a, a).empty());
  EXPECT_TRUE(routing.has_route(a, a));
}

TEST_F(DiamondTest, PathViaForcesTheWaypoint) {
  Routing routing(topo);
  Path path = routing.path_via(a, b, d);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], ab);
  EXPECT_EQ(path[1], bd);
}

TEST_F(DiamondTest, PathViaLinkForcesTheLink) {
  Routing routing(topo);
  Path path = routing.path_via_link(a, ad, d);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], ad);

  // Via the slow b->d link: must route a->b first.
  Path via_bd = routing.path_via_link(a, bd, d);
  ASSERT_EQ(via_bd.size(), 2u);
  EXPECT_EQ(via_bd[0], ab);
  EXPECT_EQ(via_bd[1], bd);
}

TEST_F(DiamondTest, PathConnectsValidatesWalks) {
  EXPECT_TRUE(path_connects(topo, {ac, cd}, a, d));
  EXPECT_FALSE(path_connects(topo, {cd, ac}, a, d));  // broken order
  EXPECT_FALSE(path_connects(topo, {ac}, a, d));      // stops early
  EXPECT_TRUE(path_connects(topo, {}, a, a));
  EXPECT_FALSE(path_connects(topo, {}, a, d));
}

TEST(Routing, NoRouteThrows) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "island");
  Routing routing(topo);
  EXPECT_FALSE(routing.has_route(a, b));
  EXPECT_THROW(routing.shortest_path(a, b), NotFoundError);
}

TEST(Routing, DirectedLinksAreOneWay) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  topo.add_link(a, b, mbps(1), milliseconds(1));
  Routing routing(topo);
  EXPECT_TRUE(routing.has_route(a, b));
  EXPECT_FALSE(routing.has_route(b, a));
}

TEST(Routing, EqualCostTieBreaksDeterministically) {
  // Two equal-delay parallel two-hop routes; the one through the
  // lower-id links must win, consistently.
  Topology topo;
  NodeId s = topo.add_node(NodeKind::kRouter, "s");
  NodeId m1 = topo.add_node(NodeKind::kRouter, "m1");
  NodeId m2 = topo.add_node(NodeKind::kRouter, "m2");
  NodeId t = topo.add_node(NodeKind::kRouter, "t");
  LinkId s_m1 = topo.add_link(s, m1, mbps(1), milliseconds(5));
  topo.add_link(s, m2, mbps(1), milliseconds(5));
  LinkId m1_t = topo.add_link(m1, t, mbps(1), milliseconds(5));
  topo.add_link(m2, t, mbps(1), milliseconds(5));
  Routing routing(topo);
  for (int i = 0; i < 5; ++i) {
    Path path = routing.shortest_path(s, t);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], s_m1);
    EXPECT_EQ(path[1], m1_t);
  }
}

TEST(Routing, LongChain) {
  Topology topo;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 50; ++i)
    nodes.push_back(topo.add_node(NodeKind::kRouter, "n" + std::to_string(i)));
  for (int i = 0; i + 1 < 50; ++i)
    topo.add_link(nodes[i], nodes[i + 1], mbps(1), milliseconds(1));
  Routing routing(topo);
  Path path = routing.shortest_path(nodes.front(), nodes.back());
  EXPECT_EQ(path.size(), 49u);
  EXPECT_TRUE(path_connects(topo, path, nodes.front(), nodes.back()));
  EXPECT_NEAR(path_delay(topo, path), milliseconds(49), 1e-12);
}

}  // namespace
}  // namespace eona::net
