// Tests for the streaming statistics: Welford mean/variance (including the
// parallel merge) and the P² quantile estimator, with parameterized
// accuracy sweeps across distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "telemetry/p2_quantile.hpp"
#include "telemetry/welford.hpp"

namespace eona::telemetry {
namespace {

TEST(Welford, MatchesExactMomentsOnSmallData) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, EmptyQueriesAreContractViolations) {
  Welford w;
  EXPECT_TRUE(w.empty());
  EXPECT_THROW(w.mean(), ContractViolation);
  EXPECT_THROW(w.variance(), ContractViolation);
}

TEST(Welford, SingleObservationHasZeroVariance) {
  Welford w;
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, MergeWithEmptySides) {
  Welford w, empty;
  w.add(1.0);
  w.add(3.0);
  Welford copy = w;
  copy.merge(empty);
  EXPECT_DOUBLE_EQ(copy.mean(), 2.0);
  empty.merge(w);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_EQ(empty.count(), 2u);
}

/// Property: splitting a stream at any point and merging gives the same
/// moments as one pass.
class WelfordMergeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WelfordMergeTest, MergeEqualsOnePass) {
  sim::Rng rng(GetParam());
  std::vector<double> data;
  auto n = static_cast<std::size_t>(rng.uniform_int(2, 500));
  for (std::size_t i = 0; i < n; ++i) data.push_back(rng.normal(5.0, 3.0));
  auto split = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n)));

  Welford whole, left, right;
  for (double x : data) whole.add(x);
  for (std::size_t i = 0; i < split; ++i) left.add(data[i]);
  for (std::size_t i = split; i < n; ++i) right.add(data[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordMergeTest,
                         ::testing::Range<std::uint64_t>(0, 25));

// --- P² quantile -------------------------------------------------------------

TEST(P2Quantile, InvalidQuantileIsAContractViolation) {
  EXPECT_THROW(P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), ContractViolation);
}

TEST(P2Quantile, SmallSampleFallsBackToNearestRank) {
  P2Quantile q(0.5);
  EXPECT_THROW(q.value(), ContractViolation);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.value(), 10.0);
  q.add(20.0);
  q.add(30.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);  // median of {10,20,30}
}

struct QuantileCase {
  const char* name;
  double q;
  double (*draw)(sim::Rng&);
  double exact;       ///< analytic quantile
  double tolerance;   ///< absolute
};

class P2AccuracyTest : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(P2AccuracyTest, EstimateConverges) {
  const QuantileCase& c = GetParam();
  P2Quantile estimator(c.q);
  sim::Rng rng(777);
  for (int i = 0; i < 50000; ++i) estimator.add(c.draw(rng));
  EXPECT_NEAR(estimator.value(), c.exact, c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, P2AccuracyTest,
    ::testing::Values(
        QuantileCase{"uniform_median", 0.5,
                     [](sim::Rng& r) { return r.uniform(0, 1); }, 0.5, 0.02},
        QuantileCase{"uniform_p90", 0.9,
                     [](sim::Rng& r) { return r.uniform(0, 1); }, 0.9, 0.02},
        QuantileCase{"normal_median", 0.5,
                     [](sim::Rng& r) { return r.normal(10, 2); }, 10.0, 0.1},
        // N(10,2) p90 = 10 + 1.2816*2.
        QuantileCase{"normal_p90", 0.9,
                     [](sim::Rng& r) { return r.normal(10, 2); }, 12.563, 0.15},
        // Exp(mean 2) p90 = -2 ln(0.1).
        QuantileCase{"exponential_p90", 0.9,
                     [](sim::Rng& r) { return r.exponential(2.0); }, 4.605,
                     0.25},
        QuantileCase{"exponential_p50", 0.5,
                     [](sim::Rng& r) { return r.exponential(2.0); }, 1.386,
                     0.1}),
    [](const ::testing::TestParamInfo<QuantileCase>& info) {
      return info.param.name;
    });

TEST(P2Quantile, MonotoneUnderSortedInsertions) {
  P2Quantile q(0.5);
  for (int i = 1; i <= 1000; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.value(), 500.0, 25.0);
}

TEST(P2Quantile, TracksExtremesSanely) {
  P2Quantile q(0.9);
  sim::Rng rng(5);
  double max_seen = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(0, 100);
    max_seen = std::max(max_seen, x);
    q.add(x);
  }
  EXPECT_LE(q.value(), max_seen);
  EXPECT_GE(q.value(), 0.0);
}

}  // namespace
}  // namespace eona::telemetry
