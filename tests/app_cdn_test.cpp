// Tests for the LRU cache, the content catalog, and the CDN model.
#include "app/cdn.hpp"

#include <gtest/gtest.h>

#include "app/content_catalog.hpp"
#include "app/lru_cache.hpp"
#include "net/peering.hpp"
#include "sim/rng.hpp"

namespace eona::app {
namespace {

// --- LruCache ---------------------------------------------------------------

TEST(LruCache, InsertContainsErase) {
  LruCache<int> cache(3);
  EXPECT_TRUE(cache.insert(1));
  EXPECT_FALSE(cache.insert(1));  // refresh, not a new insert
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(3);
  cache.insert(1);
  cache.insert(2);
  cache.insert(3);
  cache.insert(4);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCache, TouchRefreshesRecency) {
  LruCache<int> cache(3);
  cache.insert(1);
  cache.insert(2);
  cache.insert(3);
  EXPECT_TRUE(cache.touch(1));  // 1 becomes most recent; 2 is now LRU
  cache.insert(4);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_FALSE(cache.touch(99));
}

TEST(LruCache, ClearEmptiesEverything) {
  LruCache<int> cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCache, ZeroCapacityIsAContractViolation) {
  EXPECT_THROW(LruCache<int>(0), ContractViolation);
}

// --- ContentCatalog ------------------------------------------------------------

TEST(ContentCatalog, VideoItemsCarryDuration) {
  ContentCatalog catalog = ContentCatalog::videos(5, 120.0);
  EXPECT_EQ(catalog.size(), 5u);
  const ContentItem& item = catalog.item(ContentId(2));
  EXPECT_EQ(item.kind, ContentKind::kVideo);
  EXPECT_DOUBLE_EQ(item.video_duration, 120.0);
  EXPECT_EQ(item.name, "video-2");
}

TEST(ContentCatalog, PageItemsCarryBits) {
  ContentCatalog catalog = ContentCatalog::pages(3, megabits(10));
  EXPECT_EQ(catalog.item(ContentId(0)).kind, ContentKind::kWebPage);
  EXPECT_DOUBLE_EQ(catalog.item(ContentId(0)).page_bits, megabits(10));
}

TEST(ContentCatalog, SamplingFollowsPopularity) {
  ContentCatalog catalog = ContentCatalog::videos(10, 60.0, /*skew=*/1.0);
  sim::Rng rng(4);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[catalog.sample(rng).value()];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  double expected = catalog.popularity(ContentId(0));
  EXPECT_NEAR(counts[0] / 20000.0, expected, 0.02);
}

// --- Cdn -------------------------------------------------------------------------

class CdnTest : public ::testing::Test {
 protected:
  CdnTest() : cdn(CdnId(0), "cdn", NodeId{}) {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    s1 = topo.add_node(net::NodeKind::kCdnServer, "s1");
    s2 = topo.add_node(net::NodeKind::kCdnServer, "s2");
    origin = topo.add_node(net::NodeKind::kOrigin, "origin");
    topo.add_link(edge, client, mbps(100), milliseconds(1));
    e1 = topo.add_link(s1, edge, mbps(50), milliseconds(1));
    e2 = topo.add_link(s2, edge, mbps(50), milliseconds(1));
    o1 = topo.add_link(origin, s1, mbps(20), milliseconds(10));
    topo.add_link(origin, s2, mbps(20), milliseconds(10));
    cdn = Cdn(CdnId(0), "cdn", origin);
    srv1 = cdn.add_server(s1, e1, 4);
    srv2 = cdn.add_server(s2, e2, 4);
  }
  net::Topology topo;
  NodeId client, edge, s1, s2, origin;
  LinkId e1, e2, o1;
  Cdn cdn;
  ServerId srv1, srv2;
};

TEST_F(CdnTest, CacheMissDetoursThroughOriginThenHits) {
  net::Routing routing(topo);
  FetchPlan miss = cdn.plan_fetch(ContentId(0), srv1, client, IspId{}, routing);
  EXPECT_FALSE(miss.cache_hit);
  ASSERT_EQ(miss.path.size(), 3u);  // origin->s1, s1->edge, edge->client
  EXPECT_EQ(miss.path[0], o1);

  FetchPlan hit = cdn.plan_fetch(ContentId(0), srv1, client, IspId{}, routing);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.path.size(), 2u);
  EXPECT_EQ(cdn.cache_hits(), 1u);
  EXPECT_EQ(cdn.cache_misses(), 1u);
  EXPECT_DOUBLE_EQ(cdn.hit_ratio(), 0.5);
}

TEST_F(CdnTest, FillCacheFalseLeavesCacheCold) {
  net::Routing routing(topo);
  cdn.plan_fetch(ContentId(0), srv1, client, IspId{}, routing,
                 /*fill_cache=*/false);
  FetchPlan again =
      cdn.plan_fetch(ContentId(0), srv1, client, IspId{}, routing);
  EXPECT_FALSE(again.cache_hit);
}

TEST_F(CdnTest, WarmAndClearCache) {
  net::Routing routing(topo);
  cdn.warm_cache(srv2, {ContentId(1), ContentId(2)});
  EXPECT_TRUE(
      cdn.plan_fetch(ContentId(1), srv2, client, IspId{}, routing).cache_hit);
  cdn.clear_cache(srv2);
  EXPECT_FALSE(
      cdn.plan_fetch(ContentId(1), srv2, client, IspId{}, routing).cache_hit);
}

TEST_F(CdnTest, CachesAreIndependentPerServer) {
  net::Routing routing(topo);
  cdn.warm_cache(srv1, {ContentId(3)});
  EXPECT_TRUE(
      cdn.plan_fetch(ContentId(3), srv1, client, IspId{}, routing).cache_hit);
  EXPECT_FALSE(
      cdn.plan_fetch(ContentId(3), srv2, client, IspId{}, routing).cache_hit);
}

TEST_F(CdnTest, PickServerIsLeastLoaded) {
  net::Network network(topo);
  network.add_flow({e1});
  network.add_flow({e1});
  network.add_flow({e2});
  EXPECT_EQ(cdn.pick_server(network), srv2);
  EXPECT_EQ(cdn.server_load(srv1, network), 2);
}

TEST_F(CdnTest, OfflineServersAreSkippedAndEmptyThrows) {
  net::Network network(topo);
  cdn.set_online(srv1, false);
  EXPECT_EQ(cdn.pick_server(network), srv2);
  EXPECT_EQ(cdn.online_count(), 1u);
  cdn.set_online(srv2, false);
  EXPECT_THROW(cdn.pick_server(network), NotFoundError);
}

TEST_F(CdnTest, PeeringSelectionShapesDeliveryPath) {
  // Two parallel ingress links from s1 to edge; the ISP's selection decides.
  LinkId alt = topo.add_link(s1, edge, mbps(200), milliseconds(20), "alt");
  net::Routing routing(topo);
  net::PeeringBook book(topo);
  IspId isp(0);
  PeeringId preferred = book.add(isp, cdn.id(), e1, "primary");
  PeeringId alternate = book.add(isp, cdn.id(), alt, "alternate");
  cdn.set_peering_book(&book);
  cdn.warm_cache(srv1, {ContentId(7)});

  FetchPlan via_primary =
      cdn.plan_fetch(ContentId(7), srv1, client, isp, routing);
  ASSERT_FALSE(via_primary.path.empty());
  EXPECT_EQ(via_primary.path[0], e1);

  book.select(alternate);
  FetchPlan via_alt = cdn.plan_fetch(ContentId(7), srv1, client, isp, routing);
  EXPECT_EQ(via_alt.path[0], alt);
  (void)preferred;
}

TEST_F(CdnTest, DirectoryResolvesAndRejects) {
  CdnDirectory directory;
  directory.add(&cdn);
  EXPECT_EQ(&directory.at(CdnId(0)), &cdn);
  EXPECT_THROW(directory.at(CdnId(5)), NotFoundError);
}

TEST_F(CdnTest, UnknownServerThrows) {
  EXPECT_THROW(cdn.server(ServerId(9)), NotFoundError);
  EXPECT_THROW(cdn.set_online(ServerId(9), false), NotFoundError);
}

}  // namespace
}  // namespace eona::app
