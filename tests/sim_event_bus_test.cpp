// Unit tests for the typed event bus: subscription-order dispatch,
// reentrancy (nested publish, subscribe/unsubscribe mid-dispatch), and
// slot compaction semantics the world's subscribers rely on.
#include "sim/event_bus.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace eona::sim {
namespace {

struct Ping {
  int value = 0;
};
struct Pong {
  int value = 0;
};

TEST(EventBus, PublishWithNoSubscribersIsANoOp) {
  EventBus bus;
  bus.publish(Ping{1});  // must not throw or allocate a channel entry
  EXPECT_EQ(bus.subscriber_count<Ping>(), 0u);
}

TEST(EventBus, DispatchesInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe<Ping>([&](const Ping&) { order.push_back(1); });
  bus.subscribe<Ping>([&](const Ping&) { order.push_back(2); });
  bus.subscribe<Ping>([&](const Ping&) { order.push_back(3); });
  bus.publish(Ping{});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventBus, ChannelsAreIndependentPerEventType) {
  EventBus bus;
  int pings = 0, pongs = 0;
  bus.subscribe<Ping>([&](const Ping&) { ++pings; });
  bus.subscribe<Pong>([&](const Pong&) { ++pongs; });
  bus.publish(Ping{});
  bus.publish(Ping{});
  bus.publish(Pong{});
  EXPECT_EQ(pings, 2);
  EXPECT_EQ(pongs, 1);
  EXPECT_EQ(bus.subscriber_count<Ping>(), 1u);
  EXPECT_EQ(bus.subscriber_count<Pong>(), 1u);
}

TEST(EventBus, UnsubscribeStopsDeliveryAndIsIdempotent) {
  EventBus bus;
  int count = 0;
  auto sub = bus.subscribe<Ping>([&](const Ping&) { ++count; });
  bus.publish(Ping{});
  bus.unsubscribe(sub);
  bus.unsubscribe(sub);  // idempotent on the reset token
  bus.publish(Ping{});
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(sub.active());
  EXPECT_EQ(bus.subscriber_count<Ping>(), 0u);
}

TEST(EventBus, HandlerMayPublishNestedEvents) {
  EventBus bus;
  std::vector<std::string> log;
  bus.subscribe<Ping>([&](const Ping& e) {
    log.push_back("ping" + std::to_string(e.value));
    if (e.value == 0) bus.publish(Pong{7});
  });
  bus.subscribe<Pong>([&](const Pong& e) {
    log.push_back("pong" + std::to_string(e.value));
  });
  bus.publish(Ping{0});
  EXPECT_EQ(log, (std::vector<std::string>{"ping0", "pong7"}));
}

TEST(EventBus, HandlerMayPublishSameTypeReentrantly) {
  EventBus bus;
  std::vector<int> seen;
  bus.subscribe<Ping>([&](const Ping& e) {
    seen.push_back(e.value);
    if (e.value < 3) bus.publish(Ping{e.value + 1});
  });
  bus.publish(Ping{0});
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventBus, SubscriberAddedDuringDispatchMissesCurrentEvent) {
  EventBus bus;
  int late_calls = 0;
  bus.subscribe<Ping>([&](const Ping&) {
    bus.subscribe<Ping>([&](const Ping&) { ++late_calls; });
  });
  bus.publish(Ping{});
  EXPECT_EQ(late_calls, 0);  // missed the event that created it
  bus.publish(Ping{});
  EXPECT_EQ(late_calls, 1);  // sees the next one (one more was added too)
}

TEST(EventBus, HandlerMayUnsubscribeItselfMidDispatch) {
  EventBus bus;
  int first = 0, second = 0;
  EventBus::Subscription sub;
  sub = bus.subscribe<Ping>([&](const Ping&) {
    ++first;
    bus.unsubscribe(sub);  // removes the handler currently running
  });
  bus.subscribe<Ping>([&](const Ping&) { ++second; });
  bus.publish(Ping{});
  bus.publish(Ping{});
  EXPECT_EQ(first, 1);   // fired once, then removed itself
  EXPECT_EQ(second, 2);  // later subscriber unaffected by the removal
  EXPECT_EQ(bus.subscriber_count<Ping>(), 1u);
}

TEST(EventBus, HandlerMayUnsubscribeALaterHandlerMidDispatch) {
  EventBus bus;
  int removed_calls = 0;
  EventBus::Subscription victim;
  bus.subscribe<Ping>([&](const Ping&) { bus.unsubscribe(victim); });
  victim = bus.subscribe<Ping>([&](const Ping&) { ++removed_calls; });
  bus.publish(Ping{});
  // The victim slot went dead before its turn in the same dispatch.
  EXPECT_EQ(removed_calls, 0);
  EXPECT_EQ(bus.subscriber_count<Ping>(), 1u);
}

TEST(EventBus, UnsubscribeDuringNestedDispatchCompactsAfterUnwind) {
  EventBus bus;
  EventBus::Subscription victim;
  std::vector<int> seen;
  bus.subscribe<Ping>([&](const Ping& e) {
    seen.push_back(e.value);
    if (e.value == 1) bus.publish(Ping{0});  // nested same-type dispatch
    if (e.value == 0) bus.unsubscribe(victim);  // two dispatches in flight
  });
  victim = bus.subscribe<Ping>([&](const Ping& e) { seen.push_back(100 + e.value); });
  bus.publish(Ping{1});
  // Outer event reached handler 1; the nested publish killed the victim
  // before either dispatch got to it.
  EXPECT_EQ(seen, (std::vector<int>{1, 0}));
  bus.publish(Ping{2});
  EXPECT_EQ(seen, (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(bus.subscriber_count<Ping>(), 1u);
}

}  // namespace
}  // namespace eona::sim
