// Wire-format tests: round-trip fidelity (including a randomized property
// sweep), framing validation, and corruption detection.
#include "eona/wire.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace eona::core {
namespace {

A2IReport sample_a2i() {
  A2IReport report;
  report.from = ProviderId(3);
  report.generated_at = 123.5;
  QoeGroupReport g;
  g.isp = IspId(1);
  g.cdn = CdnId(2);
  g.server = ServerId(4);
  g.mean_buffering_ratio = 0.05;
  g.p90_buffering_ratio = 0.20;
  g.mean_bitrate = 2.5e6;
  g.mean_join_time = 1.25;
  g.mean_engagement = 0.8;
  g.sessions = 1234;
  report.groups.push_back(g);
  TrafficForecast f;
  f.isp = IspId(1);
  f.cdn = CdnId(2);
  f.expected_rate = 1e8;
  report.forecasts.push_back(f);
  return report;
}

I2AReport sample_i2a() {
  I2AReport report;
  report.from = ProviderId(9);
  report.generated_at = 99.0;
  PeeringStatus p;
  p.peering = PeeringId(0);
  p.isp = IspId(1);
  p.cdn = CdnId(2);
  p.capacity = 4.5e7;
  p.utilization = 0.93;
  p.congested = true;
  p.selected = true;
  report.peerings.push_back(p);
  ServerHint h;
  h.cdn = CdnId(2);
  h.server = ServerId(7);
  h.load = 0.4;
  h.online = false;
  report.server_hints.push_back(h);
  CongestionSignal c;
  c.isp = IspId(1);
  c.scope = CongestionScope::kPeering;
  c.peering = PeeringId(0);
  c.severity = 0.66;
  report.congestion.push_back(c);
  return report;
}

TEST(Wire, A2IRoundTrip) {
  A2IReport report = sample_a2i();
  WireBytes bytes = encode(report);
  EXPECT_EQ(peek_kind(bytes), MessageKind::kA2I);
  EXPECT_EQ(decode_a2i(bytes), report);
}

TEST(Wire, I2ARoundTrip) {
  I2AReport report = sample_i2a();
  WireBytes bytes = encode(report);
  EXPECT_EQ(peek_kind(bytes), MessageKind::kI2A);
  EXPECT_EQ(decode_i2a(bytes), report);
}

TEST(Wire, EmptyReportsRoundTrip) {
  A2IReport a2i;
  a2i.from = ProviderId(0);
  EXPECT_EQ(decode_a2i(encode(a2i)), a2i);
  I2AReport i2a;
  i2a.from = ProviderId(0);
  EXPECT_EQ(decode_i2a(encode(i2a)), i2a);
}

TEST(Wire, InvalidIdsSurviveTheTrip) {
  A2IReport report;
  report.from = ProviderId(1);
  QoeGroupReport g;  // all ids invalid (wildcards)
  g.sessions = 5;
  report.groups.push_back(g);
  A2IReport decoded = decode_a2i(encode(report));
  EXPECT_FALSE(decoded.groups[0].isp.valid());
  EXPECT_FALSE(decoded.groups[0].server.valid());
  EXPECT_EQ(decoded, report);
}

TEST(Wire, KindMismatchIsRejected) {
  WireBytes a2i_frame = encode(sample_a2i());
  EXPECT_THROW(decode_i2a(a2i_frame), CodecError);
  WireBytes i2a_frame = encode(sample_i2a());
  EXPECT_THROW(decode_a2i(i2a_frame), CodecError);
}

TEST(Wire, TruncationIsDetected) {
  WireBytes bytes = encode(sample_a2i());
  for (std::size_t keep : {0UL, 5UL, bytes.size() / 2, bytes.size() - 1}) {
    WireBytes cut(bytes.begin(), bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(decode_a2i(cut), CodecError) << "kept " << keep;
  }
}

TEST(Wire, SingleBitCorruptionIsDetected) {
  WireBytes bytes = encode(sample_i2a());
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    WireBytes corrupted = bytes;
    corrupted[pos] ^= 0x10;
    EXPECT_THROW(decode_i2a(corrupted), CodecError) << "byte " << pos;
  }
}

TEST(Wire, TrailingGarbageIsDetected) {
  WireBytes bytes = encode(sample_a2i());
  bytes.push_back(0xAB);
  EXPECT_THROW(decode_a2i(bytes), CodecError);
}

TEST(Wire, BadMagicIsRejected) {
  WireBytes bytes = encode(sample_a2i());
  bytes[0] = 0x00;
  EXPECT_THROW(peek_kind(bytes), CodecError);
}

// --- randomized round-trip property sweep ----------------------------------

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, RandomReportsRoundTrip) {
  sim::Rng rng(GetParam());
  A2IReport a2i;
  a2i.from = ProviderId(static_cast<std::uint32_t>(rng.uniform_int(0, 100)));
  a2i.generated_at = rng.uniform(0, 1e6);
  auto groups = static_cast<std::size_t>(rng.uniform_int(0, 20));
  for (std::size_t i = 0; i < groups; ++i) {
    QoeGroupReport g;
    g.isp = IspId(static_cast<std::uint32_t>(rng.uniform_int(0, 5)));
    g.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, 5)));
    if (rng.bernoulli(0.5))
      g.server = ServerId(static_cast<std::uint32_t>(rng.uniform_int(0, 9)));
    g.mean_buffering_ratio = rng.uniform(0, 1);
    g.p90_buffering_ratio = rng.uniform(0, 1);
    g.mean_bitrate = rng.uniform(0, 1e7);
    g.mean_join_time = rng.uniform(0, 30);
    g.mean_engagement = rng.uniform(0, 1);
    g.sessions = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    a2i.groups.push_back(g);
  }
  auto forecasts = static_cast<std::size_t>(rng.uniform_int(0, 10));
  for (std::size_t i = 0; i < forecasts; ++i) {
    TrafficForecast f;
    f.isp = IspId(static_cast<std::uint32_t>(rng.uniform_int(0, 5)));
    f.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, 5)));
    f.expected_rate = rng.uniform(0, 1e9);
    a2i.forecasts.push_back(f);
  }
  EXPECT_EQ(decode_a2i(encode(a2i)), a2i);

  I2AReport i2a;
  i2a.from = ProviderId(static_cast<std::uint32_t>(rng.uniform_int(0, 100)));
  i2a.generated_at = rng.uniform(0, 1e6);
  auto peerings = static_cast<std::size_t>(rng.uniform_int(0, 8));
  for (std::size_t i = 0; i < peerings; ++i) {
    PeeringStatus p;
    p.peering = PeeringId(static_cast<std::uint32_t>(i));
    p.capacity = rng.uniform(0, 1e9);
    p.utilization = rng.uniform(0, 1.2);
    p.congested = rng.bernoulli(0.3);
    p.selected = rng.bernoulli(0.5);
    i2a.peerings.push_back(p);
  }
  auto hints = static_cast<std::size_t>(rng.uniform_int(0, 12));
  for (std::size_t i = 0; i < hints; ++i) {
    ServerHint h;
    h.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
    h.server = ServerId(static_cast<std::uint32_t>(i));
    h.load = rng.uniform(0, 1);
    h.online = rng.bernoulli(0.9);
    i2a.server_hints.push_back(h);
  }
  auto signals = static_cast<std::size_t>(rng.uniform_int(0, 5));
  for (std::size_t i = 0; i < signals; ++i) {
    CongestionSignal c;
    c.scope = static_cast<CongestionScope>(rng.uniform_int(0, 2));
    c.severity = rng.uniform(0, 1);
    i2a.congestion.push_back(c);
  }
  EXPECT_EQ(decode_i2a(encode(i2a)), i2a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace eona::core
