// Tests for the EONA control-plane machinery: delayed report channels,
// looking-glass access control, per-peer policies, and the registry.
#include "eona/endpoint.hpp"

#include <gtest/gtest.h>

#include "eona/channel.hpp"
#include "eona/registry.hpp"
#include "eona/robust.hpp"

namespace eona::core {
namespace {

A2IReport report_at(TimePoint t, std::uint64_t sessions = 100) {
  A2IReport r;
  r.from = ProviderId(0);
  r.generated_at = t;
  QoeGroupReport g;
  g.isp = IspId(0);
  g.cdn = CdnId(0);
  g.sessions = sessions;
  g.mean_buffering_ratio = t;  // encode the publish time for assertions
  r.groups.push_back(g);
  return r;
}

// --- ReportChannel ------------------------------------------------------------

TEST(ReportChannel, ZeroDelayIsImmediatelyVisible) {
  ReportChannel<A2IReport> channel;
  EXPECT_FALSE(channel.fetch(0.0).has_value());
  channel.publish(report_at(10.0), 10.0);
  auto got = channel.fetch(10.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->generated_at, 10.0);
}

TEST(ReportChannel, DelayHidesFreshReports) {
  ReportChannel<A2IReport> channel(5.0);
  channel.publish(report_at(10.0), 10.0);
  EXPECT_FALSE(channel.fetch(14.9).has_value());
  ASSERT_TRUE(channel.fetch(15.0).has_value());
}

TEST(ReportChannel, QueriesSeeTheNewestVisibleNotTheNewest) {
  ReportChannel<A2IReport> channel(5.0);
  channel.publish(report_at(10.0), 10.0);
  channel.publish(report_at(12.0), 12.0);
  auto got = channel.fetch(16.0);  // 12.0 not visible until 17.0
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->generated_at, 10.0);
  got = channel.fetch(17.0);
  EXPECT_DOUBLE_EQ(got->generated_at, 12.0);
}

TEST(ReportChannel, StalenessIsAgeOfVisibleReport) {
  ReportChannel<A2IReport> channel(3.0);
  EXPECT_FALSE(channel.staleness(0.0).has_value());
  channel.publish(report_at(10.0), 10.0);
  ASSERT_TRUE(channel.staleness(15.0).has_value());
  EXPECT_DOUBLE_EQ(*channel.staleness(15.0), 5.0);
}

TEST(ReportChannel, PublishTimesMustBeMonotone) {
  ReportChannel<A2IReport> channel;
  channel.publish(report_at(10.0), 10.0);
  EXPECT_THROW(channel.publish(report_at(5.0), 5.0), ContractViolation);
}

// --- LookingGlass ----------------------------------------------------------------

TEST(LookingGlass, OptInIsRequired) {
  A2IEndpoint glass(ProviderId(0));
  EXPECT_FALSE(glass.authorized(ProviderId(1)));
  EXPECT_THROW(glass.query(ProviderId(1), "tok", 0.0), AccessDenied);
}

TEST(LookingGlass, BadTokenIsRejected) {
  A2IEndpoint glass(ProviderId(0));
  glass.authorize(ProviderId(1), "secret");
  EXPECT_THROW(glass.query(ProviderId(1), "wrong", 0.0), AccessDenied);
}

TEST(LookingGlass, AuthorizedPeerSeesPublishedReports) {
  A2IEndpoint glass(ProviderId(0));
  glass.authorize(ProviderId(1), "secret");
  glass.publish(report_at(5.0), 5.0);
  auto got = glass.query(ProviderId(1), "secret", 5.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(glass.publish_count(), 1u);
  EXPECT_EQ(glass.query_count(), 1u);
}

TEST(LookingGlass, RevokeCutsAccess) {
  A2IEndpoint glass(ProviderId(0));
  glass.authorize(ProviderId(1), "secret");
  glass.revoke(ProviderId(1));
  EXPECT_THROW(glass.query(ProviderId(1), "secret", 0.0), AccessDenied);
}

TEST(LookingGlass, PerPeerPoliciesDiffer) {
  A2IEndpoint glass(ProviderId(0));
  A2IPolicy open;
  A2IPolicy strict;
  strict.k_anonymity = 1000;  // suppress everything below 1000 sessions
  glass.authorize(ProviderId(1), "a", open);
  glass.authorize(ProviderId(2), "b", strict);
  glass.publish(report_at(1.0, /*sessions=*/100), 1.0);
  EXPECT_EQ(glass.query(ProviderId(1), "a", 1.0)->groups.size(), 1u);
  EXPECT_TRUE(glass.query(ProviderId(2), "b", 1.0)->groups.empty());
}

TEST(LookingGlass, PerPeerDelayInjectsStaleness) {
  A2IEndpoint glass(ProviderId(0));
  glass.authorize(ProviderId(1), "a", {}, /*delay=*/0.0);
  glass.authorize(ProviderId(2), "b", {}, /*delay=*/30.0);
  glass.publish(report_at(0.0), 0.0);
  EXPECT_TRUE(glass.query(ProviderId(1), "a", 1.0).has_value());
  EXPECT_FALSE(glass.query(ProviderId(2), "b", 1.0).has_value());
  EXPECT_TRUE(glass.query(ProviderId(2), "b", 30.0).has_value());
  glass.set_peer_delay(ProviderId(2), 0.0);
  glass.publish(report_at(31.0), 31.0);
  EXPECT_DOUBLE_EQ(glass.query(ProviderId(2), "b", 31.0)->generated_at, 31.0);
}

// --- policies -----------------------------------------------------------------------

TEST(A2IPolicy, KAnonymityFiltersGroups) {
  A2IPolicy policy;
  policy.k_anonymity = 50;
  A2IReport report = report_at(0.0, /*sessions=*/49);
  A2IReport filtered = policy.apply(report);
  EXPECT_TRUE(filtered.groups.empty());
  EXPECT_EQ(filtered.forecasts.size(), report.forecasts.size());
}

TEST(A2IPolicy, ServerLevelGroupsNeedExplicitSharing) {
  A2IReport report;
  report.from = ProviderId(0);
  QoeGroupReport cdn_level;
  cdn_level.sessions = 100;
  QoeGroupReport server_level = cdn_level;
  server_level.server = ServerId(3);
  report.groups = {cdn_level, server_level};

  A2IPolicy closed;  // default: no server-level groups
  EXPECT_EQ(closed.apply(report).groups.size(), 1u);
  A2IPolicy open;
  open.share_server_level_qoe = true;
  EXPECT_EQ(open.apply(report).groups.size(), 2u);
}

TEST(A2IPolicy, SectionsCanBeWithheld) {
  A2IReport report = report_at(0.0);
  TrafficForecast f;
  report.forecasts.push_back(f);
  A2IPolicy policy;
  policy.share_qoe_groups = false;
  policy.share_traffic_forecasts = false;
  A2IReport filtered = policy.apply(report);
  EXPECT_TRUE(filtered.groups.empty());
  EXPECT_TRUE(filtered.forecasts.empty());
  EXPECT_EQ(filtered.from, report.from);
}

TEST(I2APolicy, CapacityBlindingZeroesCapacity) {
  I2AReport report;
  PeeringStatus p;
  p.capacity = 1e9;
  report.peerings.push_back(p);
  I2APolicy policy;
  policy.share_peering_capacity = false;
  I2AReport filtered = policy.apply(report);
  ASSERT_EQ(filtered.peerings.size(), 1u);
  EXPECT_DOUBLE_EQ(filtered.peerings[0].capacity, 0.0);
}

TEST(I2APolicy, SectionsCanBeWithheld) {
  I2AReport report;
  report.peerings.emplace_back();
  report.server_hints.emplace_back();
  report.congestion.emplace_back();
  I2APolicy policy;
  policy.share_peering_status = false;
  policy.share_server_hints = false;
  policy.share_congestion = false;
  I2AReport filtered = policy.apply(report);
  EXPECT_TRUE(filtered.peerings.empty());
  EXPECT_TRUE(filtered.server_hints.empty());
  EXPECT_TRUE(filtered.congestion.empty());
}

// --- endpoint health ----------------------------------------------------------

TEST(EndpointHealth, HeldDownStragglersDoNotRearmTheHold) {
  EndpointHealth health;  // base 2 s, factor 2, ceiling 60 s
  health.record_failure(7, 0.0);  // first failure: held until 2.0
  EXPECT_FALSE(health.available(7, 1.0));
  // A straggler failure landing inside the window must not extend it...
  health.record_failure(7, 1.0);
  EXPECT_TRUE(health.available(7, 2.0));
  // ...but it still counts, so the next post-expiry failure opens the
  // third-failure hold (2 * 2^2 = 8 s), not the second.
  EXPECT_EQ(health.consecutive_failures(7), 2u);
  health.record_failure(7, 2.0);
  EXPECT_FALSE(health.available(7, 9.9));
  EXPECT_TRUE(health.available(7, 10.0));
}

TEST(EndpointHealth, AllUnhealthyFleetReprobesAfterBackoffCeiling) {
  // Regression: when every endpoint is down, selection keeps using a
  // held-down one, so it keeps failing *during* its hold. Re-arming the hold
  // on each straggler pushed held_until forward forever and the fleet was
  // never probed again. A probe window must open at least once per
  // max_backoff (60 s) once the hold ramps to the ceiling.
  EndpointHealth health;
  int probe_windows = 0;
  for (int step = 0; step <= 1200; ++step) {  // a failure every 0.5 s to 600 s
    TimePoint now = 0.5 * step;
    if (health.available(7, now)) ++probe_windows;
    health.record_failure(7, now);
  }
  // Fixed behaviour opens ~12 windows over 600 s; the broken behaviour
  // opened exactly one (the very first call).
  EXPECT_GE(probe_windows, 8);
}

// --- registry ------------------------------------------------------------------------

TEST(ProviderRegistry, RegistersAndResolves) {
  ProviderRegistry registry;
  ProviderId appp = registry.register_provider(ProviderKind::kAppP, "vod");
  ProviderId infp = registry.register_provider(ProviderKind::kInfP, "isp");
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.info(appp).kind, ProviderKind::kAppP);
  EXPECT_EQ(registry.info(infp).name, "isp");
  EXPECT_THROW(registry.info(ProviderId(9)), NotFoundError);
}

TEST(ProviderRegistry, TokensAreDeterministicAndDirectional) {
  ProviderRegistry registry;
  ProviderId a = registry.register_provider(ProviderKind::kAppP, "a");
  ProviderId b = registry.register_provider(ProviderKind::kInfP, "b");
  EXPECT_EQ(registry.mint_token(a, b), registry.mint_token(a, b));
  EXPECT_NE(registry.mint_token(a, b), registry.mint_token(b, a));

  ProviderRegistry other_seed(42);
  ProviderId a2 = other_seed.register_provider(ProviderKind::kAppP, "a");
  ProviderId b2 = other_seed.register_provider(ProviderKind::kInfP, "b");
  EXPECT_NE(registry.mint_token(a, b), other_seed.mint_token(a2, b2));
}

}  // namespace
}  // namespace eona::core
