// Tests for the §4 interface-design recipe engine: owner mapping of the
// knob/data inventory and greedy narrowing.
#include "eona/recipe.hpp"

#include <gtest/gtest.h>

namespace eona::core {
namespace {

TEST(Inventory, SharedFieldsAreCrossOwnerCouplingsOnly) {
  InterfaceInventory inventory;
  inventory.knobs = {
      {"cdn_choice", Owner::kAppP},      // 0
      {"bitrate", Owner::kAppP},         // 1
      {"peering_point", Owner::kInfP},   // 2
  };
  inventory.data = {
      {"session_qoe", Owner::kAppP},       // 0
      {"traffic_intent", Owner::kAppP},    // 1
      {"peering_congestion", Owner::kInfP}, // 2
      {"access_congestion", Owner::kInfP}, // 3
  };
  inventory.couplings = {
      {0, 2},  // cdn_choice needs peering_congestion (InfP data) -> shared
      {1, 3},  // bitrate needs access_congestion -> shared
      {1, 0},  // bitrate needs session_qoe (same owner) -> NOT shared
      {2, 1},  // peering_point needs traffic_intent -> shared
      {0, 2},  // duplicate coupling must not duplicate the field
  };
  std::vector<std::size_t> shared = inventory.shared_fields();
  EXPECT_EQ(shared, (std::vector<std::size_t>{2, 3, 1}));
}

TEST(Inventory, OutOfRangeCouplingIsAContractViolation) {
  InterfaceInventory inventory;
  inventory.knobs = {{"k", Owner::kAppP}};
  inventory.data = {{"d", Owner::kInfP}};
  inventory.couplings = {{0, 5}};
  EXPECT_THROW(inventory.shared_fields(), ContractViolation);
}

/// Synthetic quality function: additive field values with diminishing
/// baseline; greedy must pick fields in descending value order.
TEST(Narrowing, GreedyPicksByMarginalGain) {
  std::vector<double> value{0.05, 0.30, 0.10, 0.02};
  auto eval = [&](const std::vector<bool>& enabled) {
    double q = 0.5;
    for (std::size_t i = 0; i < enabled.size(); ++i)
      if (enabled[i]) q += value[i];
    return q;
  };
  NarrowingResult result = narrow_interface(4, eval);
  EXPECT_DOUBLE_EQ(result.baseline_quality, 0.5);
  ASSERT_EQ(result.steps.size(), 4u);
  EXPECT_EQ(result.steps[0].field, 1u);
  EXPECT_EQ(result.steps[1].field, 2u);
  EXPECT_EQ(result.steps[2].field, 0u);
  EXPECT_EQ(result.steps[3].field, 3u);
  EXPECT_DOUBLE_EQ(result.steps[3].quality, 0.97);
}

TEST(Narrowing, MinimalWidthFindsTheKnee) {
  // One dominant field; the rest contribute nothing.
  auto eval = [](const std::vector<bool>& enabled) {
    return enabled[2] ? 1.0 : 0.2;
  };
  NarrowingResult result = narrow_interface(5, eval);
  EXPECT_EQ(result.steps[0].field, 2u);
  EXPECT_EQ(result.minimal_width(0.01), 1u);
}

TEST(Narrowing, MinimalWidthZeroWhenSharingIsUseless) {
  auto eval = [](const std::vector<bool>&) { return 0.7; };
  NarrowingResult result = narrow_interface(3, eval);
  EXPECT_EQ(result.minimal_width(0.01), 0u);
}

TEST(Narrowing, SynergisticFieldsAreStillFound) {
  // Quality only improves when BOTH fields 0 and 1 are shared (the Fig 5
  // situation: forecast alone or peering status alone is not enough).
  auto eval = [](const std::vector<bool>& enabled) {
    return (enabled[0] && enabled[1]) ? 1.0 : 0.3;
  };
  NarrowingResult result = narrow_interface(3, eval);
  double best = 0.0;
  for (const auto& s : result.steps) best = std::max(best, s.quality);
  EXPECT_DOUBLE_EQ(best, 1.0);
  EXPECT_LE(result.minimal_width(0.01), 2u);
}

TEST(Narrowing, NullEvaluatorIsAContractViolation) {
  EXPECT_THROW(narrow_interface(2, nullptr), ContractViolation);
}

TEST(Narrowing, ZeroFieldsYieldsBaselineOnly) {
  auto eval = [](const std::vector<bool>&) { return 0.4; };
  NarrowingResult result = narrow_interface(0, eval);
  EXPECT_TRUE(result.steps.empty());
  EXPECT_DOUBLE_EQ(result.baseline_quality, 0.4);
}

}  // namespace
}  // namespace eona::core
