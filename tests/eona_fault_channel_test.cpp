// Tests for the fault-injection layer of the EONA control plane: the
// FaultProfile contract, the faulted ReportChannel, and the per-peer wiring
// through the looking glass.
//
// The load-bearing guarantees:
//  * an ideal (all-zero) profile is byte-identical to the unfaulted channel,
//    draw for draw and counter for counter;
//  * a 100%-drop profile delivers nothing, ever;
//  * duplicates are invisible to fetch() -- the same report twice can never
//    change what a query returns;
//  * outage windows silence both publishes and queries;
//  * the same (profile, publish sequence) reproduces the same faults.
#include "eona/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "eona/channel.hpp"
#include "eona/endpoint.hpp"
#include "eona/exchange.hpp"
#include "eona/registry.hpp"
#include "eona/robust.hpp"
#include "sim/scheduler.hpp"

namespace eona::core {
namespace {

A2IReport report_at(TimePoint t) {
  A2IReport r;
  r.from = ProviderId(0);
  r.generated_at = t;
  QoeGroupReport g;
  g.isp = IspId(0);
  g.cdn = CdnId(0);
  g.sessions = 100;
  g.mean_buffering_ratio = t;  // encode the publish time for assertions
  r.groups.push_back(g);
  return r;
}

// --- FaultProfile::validate ---------------------------------------------------

TEST(FaultProfile, DefaultIsIdealAndValid) {
  FaultProfile fault;
  EXPECT_TRUE(fault.ideal());
  EXPECT_NO_THROW(fault.validate());
}

TEST(FaultProfile, RejectsOutOfRangeRates) {
  FaultProfile fault;
  fault.drop_rate = -0.1;
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.drop_rate = 1.1;
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.drop_rate = 0.0;
  fault.duplicate_rate = -0.01;
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.duplicate_rate = 2.0;
  EXPECT_THROW(fault.validate(), ConfigError);
}

TEST(FaultProfile, RejectsNegativeJitter) {
  FaultProfile fault;
  fault.max_extra_delay = -1.0;
  EXPECT_THROW(fault.validate(), ConfigError);
}

TEST(FaultProfile, RejectsMalformedOutageWindows) {
  FaultProfile fault;
  fault.outages = {{10.0, 10.0}};  // empty
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.outages = {{10.0, 5.0}};  // inverted
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.outages = {{20.0, 30.0}, {10.0, 15.0}};  // unsorted
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.outages = {{10.0, 30.0}, {20.0, 40.0}};  // overlapping
  EXPECT_THROW(fault.validate(), ConfigError);
  fault.outages = {{10.0, 20.0}, {20.0, 40.0}};  // touching is fine
  EXPECT_NO_THROW(fault.validate());
}

TEST(FaultProfile, ChannelConstructorValidates) {
  FaultProfile fault;
  fault.drop_rate = 2.0;
  EXPECT_THROW(ReportChannel<A2IReport>(0.0, fault), ConfigError);
  ReportChannel<A2IReport> channel;
  EXPECT_THROW(channel.set_fault(fault), ConfigError);
}

TEST(FaultProfile, InOutageIsHalfOpen) {
  FaultProfile fault;
  fault.outages = {{10.0, 20.0}};
  EXPECT_FALSE(fault.in_outage(9.999));
  EXPECT_TRUE(fault.in_outage(10.0));
  EXPECT_TRUE(fault.in_outage(19.999));
  EXPECT_FALSE(fault.in_outage(20.0));
}

// --- ideal profile == unfaulted channel -------------------------------------

TEST(FaultChannel, IdealProfileIsByteIdenticalToUnfaulted) {
  // A profile with only a seed set is still ideal: it must perform no draws,
  // so every fetch and every counter matches the plain channel exactly.
  FaultProfile seeded;
  seeded.seed = 0xDEADBEEFull;
  ReportChannel<A2IReport> plain(5.0);
  ReportChannel<A2IReport> faulted(5.0, seeded);

  for (int i = 0; i < 50; ++i) {
    TimePoint t = 10.0 * (i + 1);
    plain.publish(report_at(t), t);
    faulted.publish(report_at(t), t);
    for (TimePoint probe : {t, t + 2.5, t + 5.0, t + 9.0}) {
      EXPECT_EQ(plain.fetch(probe), faulted.fetch(probe)) << "probe " << probe;
      EXPECT_EQ(plain.staleness(probe), faulted.staleness(probe));
    }
  }
  EXPECT_EQ(plain.stats(), faulted.stats());
  EXPECT_EQ(faulted.stats().dropped, 0u);
  EXPECT_EQ(faulted.stats().duplicated, 0u);
  EXPECT_EQ(faulted.stats().delivered, faulted.stats().published);
}

// --- drop -------------------------------------------------------------------

TEST(FaultChannel, FullDropDeliversNothing) {
  FaultProfile fault;
  fault.drop_rate = 1.0;
  fault.seed = 42;
  ReportChannel<A2IReport> channel(0.0, fault);
  for (int i = 0; i < 100; ++i) {
    TimePoint t = static_cast<double>(i);
    channel.publish(report_at(t), t);
    EXPECT_FALSE(channel.fetch(t + 1000.0).has_value());
  }
  EXPECT_EQ(channel.stats().published, 100u);
  EXPECT_EQ(channel.stats().dropped, 100u);
  EXPECT_EQ(channel.stats().delivered, 0u);
}

TEST(FaultChannel, PartialDropLosesSomeDeliversTheRest) {
  FaultProfile fault;
  fault.drop_rate = 0.5;
  fault.seed = 7;
  ReportChannel<A2IReport> channel(0.0, fault);
  for (int i = 0; i < 200; ++i) {
    TimePoint t = static_cast<double>(i);
    channel.publish(report_at(t), t);
  }
  const ChannelStats& s = channel.stats();
  EXPECT_EQ(s.published, 200u);
  EXPECT_EQ(s.delivered + s.dropped, 200u);
  // A 50% coin over 200 flips: both outcomes occur (overwhelming odds; the
  // stream is deterministic so this can never flake).
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.delivered, 0u);
}

// --- duplication ------------------------------------------------------------

TEST(FaultChannel, DuplicatesNeverChangeWhatFetchReturns) {
  FaultProfile fault;
  fault.duplicate_rate = 1.0;  // every delivery duplicated
  fault.seed = 3;
  ReportChannel<A2IReport> duplicating(2.0, fault);
  ReportChannel<A2IReport> plain(2.0);

  for (int i = 0; i < 60; ++i) {
    TimePoint t = 5.0 * (i + 1);
    duplicating.publish(report_at(t), t);
    plain.publish(report_at(t), t);
    for (TimePoint probe : {t, t + 1.0, t + 2.0, t + 4.9}) {
      EXPECT_EQ(duplicating.fetch(probe), plain.fetch(probe))
          << "probe " << probe;
    }
  }
  EXPECT_EQ(duplicating.stats().duplicated, 60u);
  EXPECT_EQ(duplicating.stats().delivered, 120u);  // each publish enqueued 2x
  EXPECT_EQ(duplicating.stats().published, 60u);
  EXPECT_EQ(duplicating.stats().dropped, 0u);
}

TEST(FaultChannel, DuplicateCopiesGetIndependentJitter) {
  // With jitter, the duplicate may become visible before the original; the
  // report content is identical either way, so fetch() must still agree with
  // an unfaulted channel once the un-jittered delay has elapsed.
  FaultProfile fault;
  fault.duplicate_rate = 1.0;
  fault.max_extra_delay = 3.0;
  fault.seed = 11;
  ReportChannel<A2IReport> channel(1.0, fault);
  channel.publish(report_at(10.0), 10.0);
  // By 10 + 1 + 3 every copy is visible, jitter or not.
  auto got = channel.fetch(14.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->generated_at, 10.0);
}

// --- jitter -----------------------------------------------------------------

TEST(FaultChannel, JitterDelaysButNeverLoses) {
  FaultProfile fault;
  fault.max_extra_delay = 10.0;
  fault.seed = 13;
  ReportChannel<A2IReport> channel(5.0, fault);
  channel.publish(report_at(0.0), 0.0);
  EXPECT_FALSE(channel.fetch(4.9).has_value());  // base delay still applies
  ASSERT_TRUE(channel.fetch(15.0).has_value());  // delay + max jitter passed
  EXPECT_EQ(channel.stats().delivered, 1u);
  EXPECT_EQ(channel.stats().dropped, 0u);
}

// --- outages ----------------------------------------------------------------

TEST(FaultChannel, OutageSilencesQueries) {
  FaultProfile fault;
  fault.outages = {{100.0, 200.0}};
  ReportChannel<A2IReport> channel(0.0, fault);
  channel.publish(report_at(50.0), 50.0);
  ASSERT_TRUE(channel.fetch(99.0).has_value());
  EXPECT_FALSE(channel.fetch(100.0).has_value());  // down
  EXPECT_FALSE(channel.staleness(150.0).has_value());
  auto got = channel.fetch(200.0);  // back up; old report still there
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->generated_at, 50.0);
}

TEST(FaultChannel, PublishesDuringOutageAreLostForGood) {
  FaultProfile fault;
  fault.outages = {{100.0, 200.0}};
  ReportChannel<A2IReport> channel(0.0, fault);
  channel.publish(report_at(150.0), 150.0);  // into the void
  EXPECT_FALSE(channel.fetch(300.0).has_value());
  EXPECT_EQ(channel.stats().dropped, 1u);
  channel.publish(report_at(250.0), 250.0);  // after the outage: delivered
  ASSERT_TRUE(channel.fetch(250.0).has_value());
  EXPECT_DOUBLE_EQ(channel.fetch(250.0)->generated_at, 250.0);
}

// --- determinism ------------------------------------------------------------

TEST(FaultChannel, SameSeedSameFaults) {
  FaultProfile fault;
  fault.drop_rate = 0.3;
  fault.duplicate_rate = 0.2;
  fault.max_extra_delay = 4.0;
  fault.seed = 99;
  ReportChannel<A2IReport> a(2.0, fault);
  ReportChannel<A2IReport> b(2.0, fault);
  for (int i = 0; i < 100; ++i) {
    TimePoint t = 3.0 * (i + 1);
    a.publish(report_at(t), t);
    b.publish(report_at(t), t);
    EXPECT_EQ(a.fetch(t + 1.0), b.fetch(t + 1.0));
    EXPECT_EQ(a.fetch(t + 2.5), b.fetch(t + 2.5));
  }
  EXPECT_EQ(a.stats(), b.stats());
}

TEST(FaultChannel, DifferentSeedsDifferentFaults) {
  FaultProfile fault;
  fault.drop_rate = 0.5;
  fault.seed = 1;
  ReportChannel<A2IReport> a(0.0, fault);
  fault.seed = 2;
  ReportChannel<A2IReport> b(0.0, fault);
  std::vector<bool> pattern_a, pattern_b;
  for (int i = 0; i < 200; ++i) {
    TimePoint t = static_cast<double>(i);
    a.publish(report_at(t), t);
    b.publish(report_at(t), t);
    pattern_a.push_back(a.fetch(t).has_value() &&
                        a.fetch(t)->generated_at == t);
    pattern_b.push_back(b.fetch(t).has_value() &&
                        b.fetch(t)->generated_at == t);
  }
  EXPECT_NE(pattern_a, pattern_b);  // 2^-200 odds of colliding
}

TEST(FaultChannel, SetFaultRestartsTheStream) {
  FaultProfile fault;
  fault.drop_rate = 0.5;
  fault.seed = 5;
  ReportChannel<A2IReport> once(0.0, fault);
  ReportChannel<A2IReport> reset(0.0, fault);
  for (int i = 0; i < 50; ++i) {
    TimePoint t = static_cast<double>(i);
    once.publish(report_at(t), t);
    reset.publish(report_at(t), t);
  }
  // Re-installing the same profile rewinds the draw stream, so replaying the
  // suffix of the sequence reproduces the *prefix* of the fault pattern.
  ChannelStats first_half = once.stats();
  reset.set_fault(fault);
  for (int i = 50; i < 100; ++i) {
    TimePoint t = static_cast<double>(i);
    once.publish(report_at(t), t);
    reset.publish(report_at(t), t);
  }
  EXPECT_EQ(reset.stats().dropped - first_half.dropped, first_half.dropped);
}

// --- looking-glass integration ----------------------------------------------

TEST(FaultGlass, PerPeerFaultsAreIndependent) {
  A2IEndpoint glass(ProviderId(0));
  FaultProfile lossy;
  lossy.drop_rate = 1.0;
  lossy.seed = 17;
  glass.authorize(ProviderId(1), "good", {}, 0.0, lossy);
  glass.authorize(ProviderId(2), "also-good");  // ideal channel

  glass.publish(report_at(10.0), 10.0);
  EXPECT_FALSE(glass.query(ProviderId(1), "good", 10.0).has_value());
  EXPECT_TRUE(glass.query(ProviderId(2), "also-good", 10.0).has_value());

  EXPECT_EQ(glass.peer_stats(ProviderId(1)).dropped, 1u);
  EXPECT_EQ(glass.peer_stats(ProviderId(2)).dropped, 0u);
  ChannelStats total = glass.delivery_stats();
  EXPECT_EQ(total.published, 2u);
  EXPECT_EQ(total.dropped, 1u);
  EXPECT_EQ(total.delivered, 1u);
}

TEST(FaultGlass, SetPeerFaultTakesEffectMidStream) {
  A2IEndpoint glass(ProviderId(0));
  glass.authorize(ProviderId(1), "tok");
  glass.publish(report_at(10.0), 10.0);
  ASSERT_TRUE(glass.query(ProviderId(1), "tok", 10.0).has_value());

  FaultProfile down;
  down.outages = {{20.0, 60.0}};
  glass.set_peer_fault(ProviderId(1), down);
  EXPECT_FALSE(glass.query(ProviderId(1), "tok", 30.0).has_value());
  EXPECT_TRUE(glass.query(ProviderId(1), "tok", 60.0).has_value());
}

// --- broker legs: faults must never leak past trust redaction ----------------
//
// Trust redaction happens at publish time inside the broker's per-leg policy,
// so a faulted leg -- however it drops, duplicates, jitters, or blacks out --
// can only ever re-deliver the *redacted* bytes. These tests hammer lossy
// kMinimal legs with dense probe sequences (the access pattern of a retry
// chain harvesting late and duplicated deliveries) and assert no probe ever
// surfaces a redacted attribute, while a kFull control leg on the same
// exchange proves the sensitive attributes were really in flight.

A2IReport sensitive_a2i(TimePoint t) {
  A2IReport r;
  r.from = ProviderId(0);
  r.generated_at = t;
  QoeGroupReport aggregate;
  aggregate.isp = IspId(0);
  aggregate.cdn = CdnId(0);
  aggregate.sessions = 500;  // survives any k-anonymity floor
  r.groups.push_back(aggregate);
  QoeGroupReport tiny = aggregate;
  tiny.sessions = 2;  // below the kMinimal floor of 10
  r.groups.push_back(tiny);
  QoeGroupReport per_server = aggregate;
  per_server.server = ServerId(7);  // server-level grain
  r.groups.push_back(per_server);
  TrafficForecast f;
  f.isp = IspId(0);
  f.cdn = CdnId(0);
  f.expected_rate = 1e6;
  r.forecasts.push_back(f);
  return r;
}

I2AReport sensitive_i2a(TimePoint t) {
  I2AReport r;
  r.from = ProviderId(1);
  r.generated_at = t;
  PeeringStatus p;
  p.peering = PeeringId(1);
  p.isp = IspId(0);
  p.cdn = CdnId(0);
  p.capacity = 5e6;  // zeroed under kMinimal
  r.peerings.push_back(p);
  ServerHint h;
  h.cdn = CdnId(0);
  h.server = ServerId(7);
  h.load = 0.5;
  r.server_hints.push_back(h);  // withheld under kMinimal
  CongestionSignal c;
  c.isp = IspId(0);
  c.severity = 0.5;
  r.congestion.push_back(c);  // still shared under kMinimal
  return r;
}

FaultProfile nasty_leg(std::uint64_t seed) {
  FaultProfile fault;
  fault.drop_rate = 0.3;
  fault.duplicate_rate = 0.6;
  fault.max_extra_delay = 4.0;
  fault.outages = {{100.0, 140.0}};
  fault.seed = seed;
  return fault;
}

void expect_a2i_redacted(const A2IReport& got, TimePoint probe) {
  EXPECT_TRUE(got.forecasts.empty()) << "forecast leaked at " << probe;
  for (const QoeGroupReport& g : got.groups) {
    EXPECT_FALSE(g.server.valid()) << "server group leaked at " << probe;
    EXPECT_GE(g.sessions, 10u) << "sub-k group leaked at " << probe;
  }
}

TEST(FaultExchange, A2IFaultsNeverLeakRedactedAttributes) {
  ProviderRegistry registry;
  ProviderId appp = registry.register_provider(ProviderKind::kAppP, "vod");
  ProviderId isp_min = registry.register_provider(ProviderKind::kInfP, "min");
  ProviderId isp_full = registry.register_provider(ProviderKind::kInfP, "full");
  Exchange exchange(registry);
  exchange.register_appp(appp);
  exchange.register_infp(isp_min);
  exchange.register_infp(isp_full);

  TenantLink untrusted;
  untrusted.trust = TrustLevel::kMinimal;
  untrusted.a2i_delay = 2.0;
  untrusted.a2i_fault = nasty_leg(21);
  exchange.wire(appp, isp_min, untrusted);
  TenantLink trusted;  // ideal full-trust control leg, server grain allowed
  trusted.a2i_policy.share_server_level_qoe = true;
  exchange.wire(appp, isp_full, trusted);

  bool full_saw_forecast = false, full_saw_server = false;
  for (int i = 0; i < 30; ++i) {
    TimePoint t = 10.0 * (i + 1);
    exchange.publish_a2i(appp, sensitive_a2i(t), t);
    // Dense probes across the delay + jitter window: exactly what a retry
    // chain does, harvesting late/duplicated deliveries.
    for (double off = 0.0; off <= 8.0; off += 0.5) {
      TimePoint probe = t + off;
      if (auto got = exchange.fetch_a2i(isp_min, appp, probe))
        expect_a2i_redacted(*got, probe);
      if (auto got = exchange.fetch_a2i(isp_full, appp, probe)) {
        full_saw_forecast |= !got->forecasts.empty();
        for (const QoeGroupReport& g : got->groups)
          full_saw_server |= g.server.valid();
      }
    }
  }
  // The faulted leg really did deliver (with duplicates), and the sensitive
  // attributes really were in flight on this exchange.
  const ChannelStats& leg = exchange.a2i_leg_stats(appp, isp_min);
  EXPECT_GT(leg.delivered, 0u);
  EXPECT_GT(leg.duplicated, 0u);
  EXPECT_GT(leg.dropped, 0u);
  EXPECT_TRUE(full_saw_forecast);
  EXPECT_TRUE(full_saw_server);
}

TEST(FaultExchange, I2AFaultsNeverLeakRedactedAttributes) {
  ProviderRegistry registry;
  ProviderId appp = registry.register_provider(ProviderKind::kAppP, "vod");
  ProviderId infp = registry.register_provider(ProviderKind::kInfP, "isp");
  Exchange exchange(registry);
  exchange.register_appp(appp);
  exchange.register_infp(infp);
  TenantLink untrusted;
  untrusted.trust = TrustLevel::kMinimal;
  untrusted.i2a_delay = 1.0;
  untrusted.i2a_fault = nasty_leg(22);
  exchange.wire(appp, infp, untrusted);

  bool saw_congestion = false;
  for (int i = 0; i < 30; ++i) {
    TimePoint t = 10.0 * (i + 1);
    exchange.publish_i2a(infp, sensitive_i2a(t), t);
    for (double off = 0.0; off <= 6.0; off += 0.5) {
      TimePoint probe = t + off;
      auto got = exchange.fetch_i2a(appp, infp, probe);
      if (!got) continue;
      EXPECT_TRUE(got->server_hints.empty()) << "hint leaked at " << probe;
      for (const PeeringStatus& p : got->peerings)
        EXPECT_EQ(p.capacity, 0.0) << "capacity leaked at " << probe;
      saw_congestion |= !got->congestion.empty();
    }
  }
  const ChannelStats& leg = exchange.i2a_leg_stats(infp, appp);
  EXPECT_GT(leg.delivered, 0u);
  EXPECT_GT(leg.duplicated, 0u);
  EXPECT_TRUE(saw_congestion);  // the allowed section still flows
}

TEST(FaultExchange, RobustRetryChainHarvestsOnlyRedactedReports) {
  // The literal consumer stack: a RobustFetcher retrying a faulted broker
  // leg. Whatever late or duplicated delivery a retry lands, the harvested
  // last-known-good report must already be redacted.
  ProviderRegistry registry;
  ProviderId appp = registry.register_provider(ProviderKind::kAppP, "vod");
  ProviderId infp = registry.register_provider(ProviderKind::kInfP, "isp");
  Exchange exchange(registry);
  exchange.register_appp(appp);
  exchange.register_infp(infp);
  TenantLink untrusted;
  untrusted.trust = TrustLevel::kMinimal;
  untrusted.a2i_delay = 2.0;
  untrusted.a2i_fault = nasty_leg(23);
  exchange.wire(appp, infp, untrusted);

  sim::Scheduler sched;
  RetryPolicy retry;
  retry.max_retries = 4;
  retry.base_backoff = 0.5;
  retry.freshness_deadline = 5.0;
  int harvested = 0;
  RobustFetcher<A2IReport> fetcher(
      sched,
      [&](TimePoint now) { return exchange.fetch_a2i(infp, appp, now); },
      retry, /*seed=*/9,
      /*on_update=*/[&] {
        ASSERT_TRUE(fetcher.report().has_value());
        expect_a2i_redacted(*fetcher.report(), sched.now());
        ++harvested;
      });

  for (int i = 0; i < 40; ++i) {
    TimePoint t = 10.0 * (i + 1);
    sched.schedule_at(t, [&, t] {
      exchange.publish_a2i(appp, sensitive_a2i(t), t);
      fetcher.poll();
      if (fetcher.report()) expect_a2i_redacted(*fetcher.report(), t);
    });
  }
  sched.run_all();
  ASSERT_TRUE(fetcher.report().has_value());
  expect_a2i_redacted(*fetcher.report(), sched.now());
  EXPECT_GT(fetcher.stats().retries, 0u);  // the chain really ran
  EXPECT_GT(harvested, 0);                 // retries really landed reports
}

// --- broker outage on top of channel faults ----------------------------------

TEST(FaultExchange, UnboundEndpointAnswersNothing) {
  ExchangeEndpoint port;
  EXPECT_FALSE(port.bound());
  EXPECT_FALSE(port.attached());
  EXPECT_FALSE(port.fetch_a2i(ProviderId(0), 1.0).has_value());
  EXPECT_FALSE(port.fetch_i2a(ProviderId(1), 1.0).has_value());
  EXPECT_EQ(port.reattach_count(), 0u);
  EXPECT_EQ(port.reattach_attempts(), 0u);
}

TEST(FaultExchange, DetachedEndpointUnderChannelFaultsReattachesOnce) {
  // A broker crash in the middle of a leg that is already dropping,
  // duplicating, and delaying: the disconnected endpoints answer nullopt
  // while detached (never throw, never leak), and the armed backoff chains
  // re-admit each tenant exactly once even though the leg's faults keep
  // firing around the handshake.
  ProviderRegistry registry;
  ProviderId appp = registry.register_provider(ProviderKind::kAppP, "vod");
  ProviderId infp = registry.register_provider(ProviderKind::kInfP, "isp");
  Exchange exchange(registry);
  exchange.register_appp(appp);
  exchange.register_infp(infp);
  TenantLink untrusted;
  untrusted.trust = TrustLevel::kMinimal;
  untrusted.a2i_fault = nasty_leg(31);
  exchange.wire(appp, infp, untrusted);

  sim::Scheduler sched;
  ExchangeEndpoint producer(&exchange, appp);
  producer.arm_reattach(sched, /*seed=*/7);
  ExchangeEndpoint consumer(&exchange, infp);
  consumer.arm_reattach(sched, /*seed=*/8);

  constexpr TimePoint kCrash = 55.0, kRestart = 85.0;
  sched.schedule_at(kCrash, [&] {
    exchange.crash();
    producer.on_broker_fault("exchange_crash", kCrash);
    consumer.on_broker_fault("exchange_crash", kCrash);
  });
  sched.schedule_at(kRestart, [&] { exchange.restart(); });
  for (int i = 1; i <= 16; ++i) {
    TimePoint t = 10.0 * i;
    sched.schedule_at(t, [&, t] {
      bool accepted = producer.publish_a2i(sensitive_a2i(t), t);
      EXPECT_EQ(accepted, producer.attached());
      // Whatever a faulted leg (re)delivers, it is already redacted; while
      // detached the fetch guard answers nothing at all.
      if (auto got = consumer.fetch_a2i(appp, t)) expect_a2i_redacted(*got, t);
      if (t > kCrash && t < kRestart)
        EXPECT_FALSE(consumer.fetch_a2i(appp, t).has_value());
    });
  }
  sched.run_all();

  EXPECT_TRUE(producer.attached());
  EXPECT_TRUE(consumer.attached());
  EXPECT_EQ(producer.reattach_count(), 1u);  // no double-register
  EXPECT_EQ(consumer.reattach_count(), 1u);
  EXPECT_GT(exchange.epoch_rejected(), 0u);  // the fence really fired
  EXPECT_TRUE(exchange.invariant_violation().empty());
}

}  // namespace
}  // namespace eona::core
