// Property sweep for the incremental data-plane solver over 200 seeded
// random mutation sequences. Each sequence drives three views of the same
// history on a random topology:
//
//  * an incremental Network (the default: dirty-component re-solve),
//  * a from-scratch twin (RecomputeMode::kFullSolve, every commit re-solves
//    every flow),
//  * a mirror of plain FlowSpecs solved by max_min_allocation directly.
//
// After every commit the three rate vectors must agree EXACTLY (==, not
// within a tolerance): the solver water-fills connected components
// independently, so the dirty component's arithmetic is identical no matter
// how much of the network is handed to it. Mutations cover flow arrival,
// departure, demand changes, reroutes, capacity changes (including to zero),
// topology-epoch link down/up flips (the oracle mirrors a down link as
// effective capacity 0), and randomly sized batches.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/fairshare.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"

namespace eona::net {
namespace {

struct Arena {
  Topology topo;
  std::vector<LinkId> links;
};

Arena random_arena(sim::Rng& rng) {
  Arena arena;
  const int node_count = static_cast<int>(rng.uniform_int(3, 10));
  std::vector<NodeId> nodes;
  for (int i = 0; i < node_count; ++i)
    nodes.push_back(
        arena.topo.add_node(NodeKind::kRouter, "n" + std::to_string(i)));
  for (int i = 0; i + 1 < node_count; ++i)
    arena.links.push_back(arena.topo.add_link(nodes[i], nodes[i + 1],
                                              mbps(rng.uniform(1, 200)), 0.0));
  const int shortcuts = static_cast<int>(rng.uniform_int(0, node_count / 2));
  for (int s = 0; s < shortcuts; ++s) {
    int i = static_cast<int>(rng.uniform_int(0, node_count - 1));
    int j = static_cast<int>(rng.uniform_int(0, node_count - 1));
    if (i == j) continue;
    arena.links.push_back(arena.topo.add_link(nodes[i], nodes[j],
                                              mbps(rng.uniform(1, 200)), 0.0));
  }
  return arena;
}

Path random_path(sim::Rng& rng, const std::vector<LinkId>& links) {
  Path path;
  for (LinkId l : links)
    if (rng.bernoulli(0.3)) path.push_back(l);
  if (path.empty())
    path.push_back(links[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))]);
  return path;
}

BitsPerSecond random_demand(sim::Rng& rng) {
  return rng.bernoulli(0.4) ? kElasticDemand : mbps(rng.uniform(0.05, 80));
}

class IncrementalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IncrementalPropertyTest, MatchesFromScratchAfterEveryCommit) {
  sim::Rng rng(GetParam() ^ 0x1C0DEull);
  Arena arena = random_arena(rng);

  Network inc(arena.topo);  // incremental (default)
  Network full(arena.topo, Network::RecomputeMode::kFullSolve);
  std::map<FlowId, FlowSpec> mirror;  // ordered: ascending-id solve order
  std::vector<BitsPerSecond> caps(arena.topo.link_count());  // configured
  for (std::size_t l = 0; l < arena.topo.link_count(); ++l)
    caps[l] =
        arena.topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
  std::vector<char> up(arena.topo.link_count(), 1);
  std::vector<FlowId> live;

  auto check = [&] {
    std::vector<FlowSpec> specs;
    std::vector<FlowId> ids;
    specs.reserve(mirror.size());
    for (const auto& [id, spec] : mirror) {
      ids.push_back(id);
      specs.push_back(spec);
    }
    // The oracle sees effective capacity: a down link is a zero-cap link.
    std::vector<BitsPerSecond> effective(caps.size());
    for (std::size_t l = 0; l < caps.size(); ++l)
      effective[l] = up[l] ? caps[l] : 0.0;
    std::vector<BitsPerSecond> oracle =
        max_min_allocation(arena.topo, specs, effective);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(inc.rate(ids[i]), oracle[i])
          << "seed " << GetParam() << ": incremental vs from-scratch oracle "
          << "diverged on flow " << ids[i].value();
      ASSERT_EQ(inc.rate(ids[i]), full.rate(ids[i]))
          << "seed " << GetParam() << ": incremental vs kFullSolve twin "
          << "diverged on flow " << ids[i].value();
    }
  };

  // One mutation applied identically to the incremental network, the
  // from-scratch twin, and the spec mirror.
  auto mutate = [&] {
    int op = static_cast<int>(rng.uniform_int(0, 5));
    if (live.empty() && (op == 1 || op == 2 || op == 3)) op = 0;
    switch (op) {
      case 0: {  // arrival
        Path path = random_path(rng, arena.links);
        BitsPerSecond demand = random_demand(rng);
        FlowId id = inc.add_flow(path, demand);
        FlowId twin = full.add_flow(path, demand);
        ASSERT_EQ(id, twin);
        mirror.emplace(id, FlowSpec{std::move(path), demand});
        live.push_back(id);
        break;
      }
      case 1: {  // departure
        std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        FlowId id = live[pick];
        live[pick] = live.back();
        live.pop_back();
        inc.remove_flow(id);
        full.remove_flow(id);
        mirror.erase(id);
        break;
      }
      case 2: {  // demand change
        FlowId id = live[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1))];
        BitsPerSecond demand = random_demand(rng);
        inc.set_demand(id, demand);
        full.set_demand(id, demand);
        mirror.at(id).demand = demand;
        break;
      }
      case 3: {  // reroute
        FlowId id = live[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1))];
        Path path = random_path(rng, arena.links);
        inc.reroute(id, path);
        full.reroute(id, path);
        mirror.at(id).path = std::move(path);
        break;
      }
      case 4: {  // capacity change (occasionally a dead link)
        LinkId link = arena.links[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(arena.links.size()) - 1))];
        BitsPerSecond cap =
            rng.bernoulli(0.1) ? 0.0 : mbps(rng.uniform(0.5, 200));
        inc.set_link_capacity(link, cap);
        full.set_link_capacity(link, cap);
        caps[link.value()] = cap;
        break;
      }
      case 5: {  // link down/up flip (bumps the topology epoch)
        LinkId link = arena.links[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(arena.links.size()) - 1))];
        bool new_up = !up[link.value()];
        inc.set_link_up(link, new_up);
        full.set_link_up(link, new_up);
        up[link.value()] = new_up ? 1 : 0;
        ASSERT_EQ(inc.topology_epoch(), full.topology_epoch());
        break;
      }
    }
  };

  const int steps = 40;
  for (int step = 0; step < steps; ++step) {
    if (rng.bernoulli(0.3)) {
      // A batch: several mutations, one commit on both networks.
      auto burst = rng.uniform_int(2, 6);
      {
        Network::Batch inc_batch(inc);
        Network::Batch full_batch(full);
        for (std::int64_t i = 0; i < burst; ++i) mutate();
      }
    } else {
      mutate();
    }
    check();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 200));

}  // namespace
}  // namespace eona::net
