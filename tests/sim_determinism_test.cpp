// End-to-end determinism of the simulator under control-plane fault
// injection. The fault layer runs on its own seeded draw streams, so a full
// flash-crowd run -- players, transfers, EONA control loops, drops,
// duplicates, jitter, an outage, retries, stale serves -- must reproduce
// bit-identically from the same seed, and must actually change when the seed
// changes (i.e. the seed is truly load-bearing, not decorative).
#include <gtest/gtest.h>

#include <cstdint>

#include "scenarios/flashcrowd.hpp"

namespace eona::scenarios {
namespace {

/// A shortened, fault-ridden flash crowd: small enough to run in test time,
/// rich enough to exercise drops, duplicates, jitter, an outage window,
/// retries, and stale fallback in both report directions.
FlashCrowdConfig faulted_config(std::uint64_t seed) {
  FlashCrowdConfig config;
  config.seed = seed;
  config.mode = ControlMode::kEona;
  config.crowd_start = 60.0;
  config.crowd_end = 180.0;
  config.run_duration = 260.0;
  config.video_duration = 60.0;
  config.crowd_flows = 80;

  core::FaultProfile fault;
  fault.drop_rate = 0.25;
  fault.duplicate_rate = 0.15;
  fault.max_extra_delay = 2.0;
  fault.outages = {{90.0, 130.0}};
  config.i2a_fault = fault;
  config.a2i_fault = fault;  // seed 0: each direction derives its own

  config.retry.max_retries = 3;
  config.retry.base_backoff = 0.5;
  config.retry.freshness_deadline = 20.0;
  config.stale_widening = 2.0;
  return config;
}

void expect_identical(const FlashCrowdResult& a, const FlashCrowdResult& b) {
  // QoE summaries, exact -- no tolerance anywhere.
  EXPECT_EQ(a.qoe.sessions, b.qoe.sessions);
  EXPECT_EQ(a.qoe.mean_buffering, b.qoe.mean_buffering);
  EXPECT_EQ(a.qoe.p90_buffering, b.qoe.p90_buffering);
  EXPECT_EQ(a.qoe.mean_bitrate, b.qoe.mean_bitrate);
  EXPECT_EQ(a.qoe.mean_join_time, b.qoe.mean_join_time);
  EXPECT_EQ(a.qoe.mean_engagement, b.qoe.mean_engagement);
  EXPECT_EQ(a.qoe.stalls, b.qoe.stalls);
  EXPECT_EQ(a.qoe.cdn_switches, b.qoe.cdn_switches);
  EXPECT_EQ(a.qoe.server_switches, b.qoe.server_switches);
  EXPECT_EQ(a.crowd_qoe.sessions, b.crowd_qoe.sessions);
  EXPECT_EQ(a.crowd_qoe.mean_engagement, b.crowd_qoe.mean_engagement);
  EXPECT_EQ(a.peak_stalled_fraction, b.peak_stalled_fraction);
  EXPECT_EQ(a.mean_access_utilization, b.mean_access_utilization);
  EXPECT_EQ(a.arrivals, b.arrivals);

  // Every metric sample, exact.
  ASSERT_EQ(a.metrics.all_series().size(), b.metrics.all_series().size());
  for (const auto& [name, series] : a.metrics.all_series()) {
    ASSERT_TRUE(b.metrics.has_series(name)) << name;
    const auto& other = b.metrics.series(name);
    ASSERT_EQ(series.size(), other.size()) << name;
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_EQ(series.samples()[i].t, other.samples()[i].t) << name;
      EXPECT_EQ(series.samples()[i].value, other.samples()[i].value)
          << name << "[" << i << "]";
    }
  }

  // Delivery-health counters, both directions.
  EXPECT_EQ(a.i2a_health, b.i2a_health);
  EXPECT_EQ(a.a2i_health, b.a2i_health);
}

TEST(SimDeterminism, SameSeedIsBitIdenticalUnderFaults) {
  FlashCrowdResult first = run_flash_crowd(faulted_config(7));
  FlashCrowdResult second = run_flash_crowd(faulted_config(7));
  expect_identical(first, second);
  // Sanity: the faults actually fired -- this config is not quietly ideal.
  EXPECT_GT(first.i2a_health.drops, 0u);
  EXPECT_GT(first.i2a_health.retries, 0u);
  EXPECT_GT(first.qoe.sessions, 0u);
}

TEST(SimDeterminism, SameSeedIsBitIdenticalWithNaiveConsumer) {
  FlashCrowdConfig config = faulted_config(7);
  config.robust_fetch = false;
  FlashCrowdResult first = run_flash_crowd(config);
  FlashCrowdResult second = run_flash_crowd(config);
  expect_identical(first, second);
}

TEST(SimDeterminism, DifferentSeedsDiffer) {
  FlashCrowdResult a = run_flash_crowd(faulted_config(7));
  FlashCrowdResult b = run_flash_crowd(faulted_config(8));
  // The workload stream and both fault streams all derive from the seed; a
  // one-off collision across every one of these would be astronomical.
  EXPECT_FALSE(a.qoe.mean_engagement == b.qoe.mean_engagement &&
               a.qoe.stalls == b.qoe.stalls &&
               a.arrivals == b.arrivals &&
               a.i2a_health == b.i2a_health);
}

TEST(SimDeterminism, ExplicitFaultSeedOverridesDerivation) {
  // Pinning the fault seed while changing the run seed changes the workload
  // but keeps the fault draw stream; pinning both reproduces everything.
  FlashCrowdConfig config = faulted_config(7);
  config.i2a_fault.seed = 0xFEEDFACEull;
  config.a2i_fault.seed = 0xFEEDFACEull;
  FlashCrowdResult first = run_flash_crowd(config);
  FlashCrowdResult second = run_flash_crowd(config);
  expect_identical(first, second);
}

}  // namespace
}  // namespace eona::scenarios
