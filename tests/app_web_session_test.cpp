// Tests for web page-load sessions over the fluid network.
#include "app/web_session.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "net/transfer.hpp"

namespace eona::app {
namespace {

class WebSessionTest : public ::testing::Test {
 protected:
  WebSessionTest() {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    server = topo.add_node(net::NodeKind::kOrigin, "server");
    link = topo.add_link(server, client, mbps(8), milliseconds(25));
    network.emplace(topo);
    transfers.emplace(sched, *network);
    routing.emplace(topo);
  }

  net::Topology topo;
  NodeId client, server;
  LinkId link;
  sim::Scheduler sched;
  std::optional<net::Network> network;
  std::optional<net::TransferManager> transfers;
  std::optional<net::Routing> routing;
};

TEST_F(WebSessionTest, OutcomeMatchesAnalyticModel) {
  WebSessionConfig cfg;
  cfg.objects = 12;
  cfg.server_think = 0.05;
  std::optional<WebSessionOutcome> outcome;
  telemetry::Dimensions dims;
  dims.region = 3;
  WebSession session(sched, *transfers, *routing, cfg, SessionId(1), dims,
                     client, server, megabits(8), nullptr,
                     [&](const WebSessionOutcome& o) { outcome = o; });
  session.start();
  sched.run_all();

  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(session.finished());
  // One-way delay 25 ms -> RTT 50 ms; transfer of 8 Mb at 8 Mbps = 1 s.
  EXPECT_NEAR(outcome->rtt, 0.050, 1e-9);
  EXPECT_NEAR(outcome->flow_duration, 1.0, 1e-9);
  EXPECT_NEAR(outcome->observed_throughput, mbps(8), 1e3);
  // TTFB = 2 RTT + think.
  EXPECT_NEAR(outcome->record.metrics.ttfb, 0.15, 1e-9);
  // PLT = ttfb + transfer + 2 request rounds x RTT.
  EXPECT_NEAR(outcome->record.metrics.page_load_time, 0.15 + 1.0 + 0.1, 1e-9);
  EXPECT_EQ(outcome->record.dims.region, 3u);
  EXPECT_GT(outcome->record.metrics.engagement, 0.9);
}

TEST_F(WebSessionTest, ExtraRttModelsRadioLatency) {
  WebSessionConfig base;
  WebSessionConfig radio = base;
  radio.extra_rtt = 0.2;

  std::optional<WebSessionOutcome> fast, slow;
  WebSession s1(sched, *transfers, *routing, base, SessionId(1), {}, client,
                server, megabits(4), nullptr,
                [&](const WebSessionOutcome& o) { fast = o; });
  WebSession s2(sched, *transfers, *routing, radio, SessionId(2), {}, client,
                server, megabits(4), nullptr,
                [&](const WebSessionOutcome& o) { slow = o; });
  s1.start();
  sched.run_all();
  s2.start();
  sched.run_all();
  ASSERT_TRUE(fast && slow);
  EXPECT_NEAR(slow->rtt - fast->rtt, 0.2, 1e-9);
  EXPECT_GT(slow->record.metrics.page_load_time,
            fast->record.metrics.page_load_time + 0.4);
}

TEST_F(WebSessionTest, CongestionSlowsTheLoad) {
  // Occupy the link with a competitor so the page gets half the bandwidth.
  network->add_flow({link});
  std::optional<WebSessionOutcome> outcome;
  WebSession session(sched, *transfers, *routing, {}, SessionId(1), {}, client,
                     server, megabits(8), nullptr,
                     [&](const WebSessionOutcome& o) { outcome = o; });
  session.start();
  sched.run_all();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NEAR(outcome->flow_duration, 2.0, 1e-6);
  EXPECT_NEAR(outcome->observed_throughput, mbps(4), 1e3);
}

TEST_F(WebSessionTest, BeaconGoesToCollector) {
  telemetry::BeaconCollector collector;
  WebSession session(sched, *transfers, *routing, {}, SessionId(9), {}, client,
                     server, megabits(1), &collector, nullptr);
  session.start();
  sched.run_all();
  EXPECT_EQ(collector.beacon_count(), 1u);
}

TEST_F(WebSessionTest, DoubleStartIsAContractViolation) {
  WebSession session(sched, *transfers, *routing, {}, SessionId(1), {}, client,
                     server, megabits(1), nullptr, nullptr);
  session.start();
  EXPECT_THROW(session.start(), ContractViolation);
}

}  // namespace
}  // namespace eona::app
