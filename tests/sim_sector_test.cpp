// Tests for the persistent barrier-round pool under sector-parallel
// execution: full coverage of each round, reuse across many rounds,
// deterministic error selection, and serial/parallel equivalence on a
// sharded counter workload.
#include "sim/sector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace eona::sim {
namespace {

TEST(SectorRunner, RunsEveryJobExactlyOncePerRound) {
  SectorRunner runner(4);
  std::vector<std::atomic<int>> hits(64);
  runner.run_round(hits.size(), [&](std::size_t i) { ++hits[i]; });
  runner.run_round(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
  EXPECT_EQ(runner.rounds(), 2u);
}

TEST(SectorRunner, SerialWhenSingleThreaded) {
  SectorRunner runner(1);
  EXPECT_EQ(runner.threads(), 1u);
  // Single-threaded rounds run inline: jobs may freely touch shared state
  // in index order.
  std::vector<int> order;
  runner.run_round(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(SectorRunner, PersistentWorkersSurviveManyRounds) {
  // A barrier loop issues thousands of rounds; the pool must not leak or
  // wedge across them.
  SectorRunner runner(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 500; ++round)
    runner.run_round(7, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 500 * 7);
  EXPECT_EQ(runner.rounds(), 500u);
}

TEST(SectorRunner, LowestIndexErrorWinsDeterministically) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SectorRunner runner(threads);
    try {
      runner.run_round(16, [&](std::size_t i) {
        if (i % 5 == 2) throw std::runtime_error("job " + std::to_string(i));
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      // Serial hits job 2 first; parallel must report the same one.
      EXPECT_STREQ(e.what(), "job 2");
    }
    // The pool stays usable after a failed round.
    std::atomic<int> ok{0};
    runner.run_round(4, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(SectorRunner, ShardedWorkMatchesSerialResult) {
  // The sector contract in miniature: jobs own disjoint state, rounds
  // alternate with serial coordination, results must not depend on the
  // thread count.
  auto run = [](std::size_t threads) {
    SectorRunner runner(threads);
    std::vector<long> shard(32, 0);
    long coordinated = 0;
    for (int round = 1; round <= 20; ++round) {
      runner.run_round(shard.size(), [&](std::size_t i) {
        shard[i] += static_cast<long>(i) * round;
      });
      for (long s : shard) coordinated += s;  // serial barrier step
    }
    return coordinated;
  };
  long serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(SectorRunner, ZeroAndSingleJobRoundsAreFine) {
  SectorRunner runner(4);
  runner.run_round(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  int ran = 0;
  runner.run_round(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(SectorRunner, SparseRoundDispatchesOnlyListedIndices) {
  // The quiescence-aware barrier loop hands run_round the active subset;
  // fn must see exactly the listed sector indices, nothing else.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SectorRunner runner(threads);
    std::vector<std::atomic<int>> hits(16);

    std::vector<std::size_t> none;
    runner.run_round(std::span<const std::size_t>(none),
                     [](std::size_t) { FAIL() << "empty round ran a job"; });

    std::vector<std::size_t> one{5};
    runner.run_round(std::span<const std::size_t>(one),
                     [&](std::size_t i) { ++hits[i]; });

    std::vector<std::size_t> sparse{1, 5, 9, 13};
    runner.run_round(std::span<const std::size_t>(sparse),
                     [&](std::size_t i) { ++hits[i]; });

    std::vector<std::size_t> all(hits.size());
    std::iota(all.begin(), all.end(), 0);
    runner.run_round(std::span<const std::size_t>(all),
                     [&](std::size_t i) { ++hits[i]; });

    for (std::size_t i = 0; i < hits.size(); ++i) {
      int expect = 1;                 // the full round
      if (i % 4 == 1) ++expect;       // the sparse round
      if (i == 5) ++expect;           // the single-index round
      EXPECT_EQ(hits[i].load(), expect) << "threads " << threads << " i " << i;
    }
    EXPECT_EQ(runner.rounds(), 4u);
  }
}

TEST(SectorRunner, SparseLowestPositionErrorWinsDeterministically) {
  // Among failures in a sparse set, the rethrown one must be the failure a
  // serial walk of the index list would hit first -- regardless of which
  // worker hit which index.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SectorRunner runner(threads);
    std::vector<std::size_t> sparse{3, 7, 11, 15};
    try {
      runner.run_round(std::span<const std::size_t>(sparse),
                       [](std::size_t i) {
                         if (i == 7 || i == 15)
                           throw std::runtime_error("sector " +
                                                    std::to_string(i));
                       });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "sector 7") << "threads " << threads;
    }
    // The pool stays usable after a failed sparse round.
    std::atomic<int> ok{0};
    runner.run_round(std::span<const std::size_t>(sparse),
                     [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(SectorRunner, SmallRoundsWakeOnlyAsManyWorkersAsJobs) {
  // Thundering-herd pin: a round of j jobs on t workers admits exactly
  // min(j, t) participants -- the rest are never woken (or bounce off the
  // entered cap without claiming), so a mostly-quiescent round does not
  // pay t wakeups to run two sectors.
  SectorRunner runner(8);
  std::atomic<int> hits{0};
  runner.run_round(64, [&](std::size_t) { ++hits; });  // full: all 8 join
  EXPECT_EQ(runner.participations(), 8u);
  runner.run_round(3, [&](std::size_t) { ++hits; });   // sparse: only 3
  EXPECT_EQ(runner.participations(), 11u);
  std::vector<std::size_t> two{4, 9};
  runner.run_round(std::span<const std::size_t>(two),
                   [&](std::size_t) { ++hits; });      // sparse list: only 2
  EXPECT_EQ(runner.participations(), 13u);
  runner.run_round(1, [&](std::size_t) { ++hits; });   // inline: none
  EXPECT_EQ(runner.participations(), 13u);
  EXPECT_EQ(hits.load(), 64 + 3 + 2 + 1);
  EXPECT_EQ(runner.rounds(), 4u);
  EXPECT_EQ(runner.threads(), 8u);
}

}  // namespace
}  // namespace eona::sim
