// Tests for the persistent barrier-round pool under sector-parallel
// execution: full coverage of each round, reuse across many rounds,
// deterministic error selection, and serial/parallel equivalence on a
// sharded counter workload.
#include "sim/sector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace eona::sim {
namespace {

TEST(SectorRunner, RunsEveryJobExactlyOncePerRound) {
  SectorRunner runner(4);
  std::vector<std::atomic<int>> hits(64);
  runner.run_round(hits.size(), [&](std::size_t i) { ++hits[i]; });
  runner.run_round(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
  EXPECT_EQ(runner.rounds(), 2u);
}

TEST(SectorRunner, SerialWhenSingleThreaded) {
  SectorRunner runner(1);
  EXPECT_EQ(runner.threads(), 1u);
  // Single-threaded rounds run inline: jobs may freely touch shared state
  // in index order.
  std::vector<int> order;
  runner.run_round(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(SectorRunner, PersistentWorkersSurviveManyRounds) {
  // A barrier loop issues thousands of rounds; the pool must not leak or
  // wedge across them.
  SectorRunner runner(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 500; ++round)
    runner.run_round(7, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 500 * 7);
  EXPECT_EQ(runner.rounds(), 500u);
}

TEST(SectorRunner, LowestIndexErrorWinsDeterministically) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SectorRunner runner(threads);
    try {
      runner.run_round(16, [&](std::size_t i) {
        if (i % 5 == 2) throw std::runtime_error("job " + std::to_string(i));
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      // Serial hits job 2 first; parallel must report the same one.
      EXPECT_STREQ(e.what(), "job 2");
    }
    // The pool stays usable after a failed round.
    std::atomic<int> ok{0};
    runner.run_round(4, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(SectorRunner, ShardedWorkMatchesSerialResult) {
  // The sector contract in miniature: jobs own disjoint state, rounds
  // alternate with serial coordination, results must not depend on the
  // thread count.
  auto run = [](std::size_t threads) {
    SectorRunner runner(threads);
    std::vector<long> shard(32, 0);
    long coordinated = 0;
    for (int round = 1; round <= 20; ++round) {
      runner.run_round(shard.size(), [&](std::size_t i) {
        shard[i] += static_cast<long>(i) * round;
      });
      for (long s : shard) coordinated += s;  // serial barrier step
    }
    return coordinated;
  };
  long serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(SectorRunner, ZeroAndSingleJobRoundsAreFine) {
  SectorRunner runner(4);
  runner.run_round(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  int ran = 0;
  runner.run_round(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace eona::sim
