// Tests for the SessionPool's struct-of-arrays storage: slab-arena spawn
// with slot and storage recycling at scale, deferred erase coalescing, the
// batched abort_all sweep, and coexistence with the legacy Factory path.
#include "app/session_pool.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "net/transfer.hpp"

namespace eona::app {
namespace {

/// Fixed-decision brain: always the one warmed server, lowest rendition.
class FixedBrain : public PlayerBrain {
 public:
  Endpoint choose_endpoint(const PlayerView&) override {
    return Endpoint{CdnId(0), ServerId(0)};
  }
  bool should_switch_endpoint(const PlayerView&) override { return false; }
  std::size_t choose_bitrate(const PlayerView&) override { return 0; }
};

class SessionPoolTest : public ::testing::Test {
 protected:
  SessionPoolTest() : cdn(CdnId(0), "cdn", NodeId{}) {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    srv = topo.add_node(net::NodeKind::kCdnServer, "srv");
    origin = topo.add_node(net::NodeKind::kOrigin, "origin");
    access = topo.add_link(edge, client, gbps(10), milliseconds(1));
    egress = topo.add_link(srv, edge, gbps(10), milliseconds(1));
    topo.add_link(origin, srv, mbps(10), milliseconds(1));

    cdn = Cdn(CdnId(0), "cdn", origin);
    cdn.warm_cache(cdn.add_server(srv, egress, 8), {ContentId(0)});
    directory.add(&cdn);

    network.emplace(topo);
    transfers.emplace(sched, *network);
    routing.emplace(topo);

    content.id = ContentId(0);
    content.kind = ContentKind::kVideo;
    content.video_duration = 8.0;

    config.ladder = {mbps(1)};
    config.chunk_duration = 4.0;
    config.startup_target = 4.0;
    config.resume_target = 4.0;
    config.max_buffer = 24.0;
    config.beacon_period = 0.0;  // no beacons: keep the event count small
  }

  SessionId spawn(SessionPool& pool, SessionId::rep_type id) {
    telemetry::Dimensions dims;
    dims.isp = IspId(0);
    return pool.spawn_player(sched, *transfers, *network, *routing, directory,
                             brain, nullptr, config, SessionId(id), dims,
                             client, content, qoe::EngagementModel{});
  }

  net::Topology topo;
  NodeId client, edge, srv, origin;
  LinkId access, egress;
  Cdn cdn;
  CdnDirectory directory;
  sim::Scheduler sched;
  std::optional<net::Network> network;
  std::optional<net::TransferManager> transfers;
  std::optional<net::Routing> routing;
  ContentItem content;
  PlayerConfig config;
  FixedBrain brain;
};

TEST_F(SessionPoolTest, LargeChurnRecyclesSlotsAndStaysBounded) {
  // Many waves of short sessions: slot table and slabs must stay sized for
  // the peak concurrency, not the total session count.
  SessionPool pool(sched, &*network);
  pool.reserve(64);
  constexpr int kWaves = 40;
  constexpr int kPerWave = 25;  // 1000 sessions total
  SessionId::rep_type next = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int i = 0; i < kPerWave; ++i) spawn(pool, next++);
    EXPECT_EQ(pool.active_count(), static_cast<std::size_t>(kPerWave));
    sched.run_all();  // wave drains completely before the next begins
    EXPECT_EQ(pool.active_count(), 0u);
  }
  EXPECT_EQ(pool.summaries().size(),
            static_cast<std::size_t>(kWaves * kPerWave));
  // Every session finished cleanly and was collected exactly once.
  std::set<SessionId::rep_type> seen;
  for (const auto& s : pool.summaries()) seen.insert(s.record.session.value());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kWaves * kPerWave));
}

TEST_F(SessionPoolTest, AbortAllCoalescesIntoOneEraseSweep) {
  // Starve the access link so all 50 sessions are mid-transfer at abort
  // time: each cancellation removes a live flow from the network.
  network->set_link_capacity(access, mbps(25));
  SessionPool pool(sched, &*network);
  for (SessionId::rep_type i = 0; i < 50; ++i) spawn(pool, i);
  sched.run_until(1.0);
  EXPECT_EQ(pool.active_count(), 50u);
  EXPECT_EQ(transfers->active_count(), 50u);

  std::uint64_t recomputes_before = network->recompute_count();
  std::uint64_t fired_before = sched.events_fired();
  pool.abort_all();
  // Batched: the burst of transfer cancellations lands as ONE recompute.
  EXPECT_EQ(network->recompute_count(), recomputes_before + 1);
  sched.run_until(sched.now() + 0.5);
  // Deferred teardown is coalesced: one zero-delay sweep, not one event per
  // session (+1 covers stray completion events already queued).
  EXPECT_LE(sched.events_fired() - fired_before, 2u);
  EXPECT_EQ(pool.active_count(), 0u);
  EXPECT_EQ(pool.summaries().size(), 50u);
}

TEST_F(SessionPoolTest, AbortAllSkipsAlreadyFinishedSessions) {
  SessionPool pool(sched, &*network);
  spawn(pool, 0);
  sched.run_all();  // session 0 finishes naturally
  EXPECT_EQ(pool.summaries().size(), 1u);
  spawn(pool, 1);
  sched.run_until(sched.now() + 1.0);
  pool.abort_all();  // must not double-finish session 0
  sched.run_all();
  EXPECT_EQ(pool.summaries().size(), 2u);
  EXPECT_EQ(pool.active_count(), 0u);
}

TEST_F(SessionPoolTest, LegacyFactoryAndArenaPlayersCoexist) {
  SessionPool pool(sched, &*network);
  spawn(pool, 0);  // arena slab storage
  telemetry::Dimensions dims;
  dims.isp = IspId(0);
  SessionId legacy = pool.spawn([&](VideoPlayer::DoneCallback done) {
    return std::make_unique<VideoPlayer>(
        sched, *transfers, *network, *routing, directory, brain, nullptr,
        config, SessionId(1), dims, client, content, qoe::EngagementModel{},
        std::move(done));
  });
  EXPECT_EQ(pool.active_count(), 2u);
  EXPECT_TRUE(pool.contains(SessionId(0)));
  EXPECT_TRUE(pool.contains(legacy));
  int visited = 0;
  pool.for_each([&](VideoPlayer&) { ++visited; });
  EXPECT_EQ(visited, 2);
  sched.run_all();
  EXPECT_EQ(pool.active_count(), 0u);
  EXPECT_EQ(pool.summaries().size(), 2u);
  EXPECT_FALSE(pool.contains(legacy));
}

TEST_F(SessionPoolTest, PlayerLookupAndDestructorCleanup) {
  auto pool = std::make_unique<SessionPool>(sched, &*network);
  spawn(*pool, 7);
  EXPECT_EQ(pool->player(SessionId(7)).session(), SessionId(7));
  EXPECT_THROW(pool->player(SessionId(99)), NotFoundError);
  // Destroying the pool mid-flight must tear down live players (arena
  // storage) without firing their deferred erase sweep afterwards.
  pool.reset();
  sched.run_all();
}

}  // namespace
}  // namespace eona::app
