// Forecaster unit tests against closed-form sequences: EWMA step response,
// Holt linear trend on ramps (exact with alpha = beta = 1), periodic input
// fixed points, and the edge cases a live feed produces -- cold start,
// single sample, gaps in time, duplicate timestamps.
#include "control/forecaster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace eona::control {
namespace {

TEST(Ewma, ColdStartAdoptsFirstSample) {
  Ewma e(0.3);
  EXPECT_TRUE(e.empty());
  e.observe(42.0);
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.value(), 42.0);
  EXPECT_EQ(e.observations(), 1u);
}

TEST(Ewma, StepResponseMatchesClosedForm) {
  // From level 0 (first sample 0), m observations of x converge as
  // level_m = x * (1 - (1-alpha)^m).
  const double alpha = 0.25, x = 10.0;
  Ewma e(alpha);
  e.observe(0.0);
  for (int m = 1; m <= 40; ++m) {
    e.observe(x);
    const double expected = x * (1.0 - std::pow(1.0 - alpha, m));
    EXPECT_NEAR(e.value(), expected, 1e-12) << "m=" << m;
  }
  EXPECT_NEAR(e.value(), x, 1e-3);  // converged: (1-alpha)^40 ~ 1e-5
}

TEST(Ewma, AlphaOneTracksInputExactly) {
  Ewma e(1.0);
  for (double x : {3.0, -7.5, 0.25}) {
    e.observe(x);
    EXPECT_EQ(e.value(), x);
  }
}

TEST(Ewma, RejectsInvalidAlpha) {
  EXPECT_THROW(Ewma(0.0), ContractViolation);
  EXPECT_THROW(Ewma(1.5), ContractViolation);
  EXPECT_THROW(Ewma(0.5).value(), ContractViolation);  // empty
}

ForecastConfig cfg(double alpha, double beta, double period = 10.0) {
  ForecastConfig c;
  c.alpha = alpha;
  c.beta = beta;
  c.period = period;
  return c;
}

TEST(HoltWinters, SingleSampleForecastsFlat) {
  HoltWinters hw(cfg(0.5, 0.3));
  hw.observe(0.0, 25.0);
  EXPECT_EQ(hw.level(), 25.0);
  EXPECT_EQ(hw.trend(), 0.0);
  EXPECT_EQ(hw.forecast(0.0), 25.0);
  EXPECT_EQ(hw.forecast(120.0), 25.0);  // no trend information yet
}

TEST(HoltWinters, AlphaBetaOneReproducesRampExactly) {
  // x(t) = 3 + 2 * t/period sampled every period: level locks to the last
  // sample, trend to the per-period slope, and the forecast extrapolates
  // the ramp with no error.
  HoltWinters hw(cfg(1.0, 1.0, 10.0));
  for (int n = 0; n <= 20; ++n) {
    const double t = 10.0 * n;
    hw.observe(t, 3.0 + 2.0 * n);
  }
  EXPECT_NEAR(hw.level(), 43.0, 1e-12);
  EXPECT_NEAR(hw.trend(), 2.0, 1e-12);
  EXPECT_NEAR(hw.forecast(30.0), 49.0, 1e-12);  // 3 periods ahead
}

TEST(HoltWinters, GenericWeightsConvergeOntoRamp) {
  // Any (alpha, beta) eventually locks onto a noiseless linear input: the
  // one-step-ahead prediction error vanishes.
  HoltWinters hw(cfg(0.5, 0.3, 10.0));
  double last_x = 0.0;
  for (int n = 0; n <= 400; ++n) {
    last_x = 5.0 + 1.5 * n;
    hw.observe(10.0 * n, last_x);
  }
  EXPECT_NEAR(hw.level(), last_x, 1e-6);
  EXPECT_NEAR(hw.trend(), 1.5, 1e-6);
  EXPECT_NEAR(hw.forecast(10.0), last_x + 1.5, 1e-5);
}

TEST(HoltWinters, StepInputMatchesRecurrence) {
  // Closed-form reference: run the textbook recurrence directly and demand
  // equality at every step (same arithmetic, same order).
  const double alpha = 0.4, beta = 0.2;
  HoltWinters hw(cfg(alpha, beta, 10.0));
  double level = 0.0, trend = 0.0;
  hw.observe(0.0, 0.0);
  for (int n = 1; n <= 50; ++n) {
    const double x = 8.0;  // step at n = 1
    const double predicted = level + trend;
    const double prev = level;
    level = alpha * x + (1.0 - alpha) * predicted;
    trend = beta * (level - prev) + (1.0 - beta) * trend;
    hw.observe(10.0 * n, x);
    EXPECT_EQ(hw.level(), level) << "n=" << n;
    EXPECT_EQ(hw.trend(), trend) << "n=" << n;
  }
  // A step has no persistent slope: the trend decays back toward zero.
  EXPECT_NEAR(hw.level(), 8.0, 1e-3);
  EXPECT_NEAR(hw.trend(), 0.0, 1e-3);
}

TEST(HoltWinters, PeriodicInputWithoutTrendHitsFixedPoint) {
  // Alternating +-A with beta = 0 (no trend): the level's steady state
  // after a +A sample is A * alpha / (2 - alpha).
  const double alpha = 0.5, A = 12.0;
  HoltWinters hw(cfg(alpha, 0.0, 10.0));
  for (int n = 0; n < 201; ++n)  // ends on a +A observation
    hw.observe(10.0 * n, n % 2 == 0 ? A : -A);
  EXPECT_NEAR(hw.level(), A * alpha / (2.0 - alpha), 1e-9);
  EXPECT_EQ(hw.trend(), 0.0);
  EXPECT_EQ(hw.forecast(50.0), hw.level());  // flat projection
}

TEST(HoltWinters, GapNormalizesTrendInnovation) {
  // Exact ramp with a 3-period hole: gap handling projects the level across
  // the hole and divides the innovation by the elapsed steps, so the
  // tracker stays locked instead of tripling the trend.
  HoltWinters hw(cfg(1.0, 1.0, 10.0));
  hw.observe(0.0, 0.0);
  hw.observe(10.0, 10.0);   // trend = 10 per period
  hw.observe(40.0, 40.0);   // 3 periods later, still on the ramp
  EXPECT_NEAR(hw.level(), 40.0, 1e-12);
  EXPECT_NEAR(hw.trend(), 10.0, 1e-12);
  EXPECT_NEAR(hw.forecast(10.0), 50.0, 1e-12);
}

TEST(HoltWinters, DuplicateTimestampCountsAsOneStep) {
  HoltWinters hw(cfg(0.5, 0.5, 10.0));
  hw.observe(0.0, 10.0);
  hw.observe(0.0, 20.0);  // same t: steps clamps to 1, no divide-by-zero
  EXPECT_TRUE(std::isfinite(hw.level()));
  EXPECT_TRUE(std::isfinite(hw.trend()));
  EXPECT_EQ(hw.observations(), 2u);
}

TEST(HoltWinters, ForecastBeforeAnyObservationThrows) {
  HoltWinters hw(cfg(0.5, 0.3));
  EXPECT_THROW(hw.forecast(10.0), ContractViolation);
}

TEST(Forecaster, KeysAreIndependent) {
  Forecaster f(cfg(1.0, 1.0, 10.0));
  EXPECT_EQ(f.size(), 0u);
  EXPECT_FALSE(f.forecast(1, 10.0).has_value());

  for (int n = 0; n <= 5; ++n) {
    f.observe(1, 10.0 * n, 100.0 + 10.0 * n);  // rising link
    f.observe(2, 10.0 * n, 50.0);              // flat link
  }
  EXPECT_EQ(f.size(), 2u);
  ASSERT_TRUE(f.forecast(1, 30.0).has_value());
  EXPECT_NEAR(*f.forecast(1, 30.0), 180.0, 1e-9);
  EXPECT_NEAR(*f.forecast(2, 30.0), 50.0, 1e-9);
  EXPECT_EQ(f.group(3), nullptr);
  ASSERT_NE(f.group(1), nullptr);
  EXPECT_EQ(f.group(1)->observations(), 6u);
}

}  // namespace
}  // namespace eona::control
