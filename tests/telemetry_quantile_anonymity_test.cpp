// Coverage for two small telemetry pieces the pipeline leans on:
//  - P2Quantile (streaming P-square estimator) checked against an exact
//    nth_element oracle -- exact below 5 samples, within a tolerance above;
//  - k_anonymity_gate suppression boundaries (records == k survives,
//    records == k-1 does not).
#include "telemetry/anonymity.hpp"
#include "telemetry/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/contracts.hpp"

namespace eona::telemetry {
namespace {

/// Exact ceil-rank quantile -- the convention P2Quantile::value() documents
/// for its small-sample fallback.
double exact_quantile(std::vector<double> sample, double q) {
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sample.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), sample.size());
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   sample.end());
  return sample[rank - 1];
}

TEST(P2Quantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), ContractViolation);
  EXPECT_THROW(P2Quantile(0.5).value(), ContractViolation);  // empty
}

TEST(P2Quantile, UnderFiveSamplesIsExact) {
  // The bootstrap phase stores raw observations, so the estimate must equal
  // the exact ceil-rank quantile for 1..4 samples, in any arrival order.
  const std::vector<double> stream = {7.0, -2.0, 11.0, 3.0};
  for (double q : {0.1, 0.5, 0.9}) {
    P2Quantile est(q);
    std::vector<double> seen;
    for (double x : stream) {
      est.add(x);
      seen.push_back(x);
      EXPECT_EQ(est.value(), exact_quantile(seen, q))
          << "q=" << q << " n=" << seen.size();
    }
  }
}

TEST(P2Quantile, ConstantStreamIsExact) {
  P2Quantile est(0.9);
  for (int i = 0; i < 1000; ++i) est.add(5.5);
  EXPECT_EQ(est.value(), 5.5);
  EXPECT_EQ(est.count(), 1000u);
}

TEST(P2Quantile, TracksUniformStreamWithinTolerance) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (double q : {0.5, 0.9}) {
    P2Quantile est(q);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
      double x = dist(rng);
      est.add(x);
      all.push_back(x);
    }
    // P^2 is an estimator; on a smooth distribution it lands within a
    // couple of percent of the exact order statistic.
    EXPECT_NEAR(est.value(), exact_quantile(all, q), 2.0) << "q=" << q;
  }
}

TEST(P2Quantile, TracksSkewedStreamWithinTolerance) {
  // Exponential-ish tail: the p90 sits well away from the median, which is
  // where naive five-point estimators drift.
  std::mt19937_64 rng(23);
  std::exponential_distribution<double> dist(0.1);
  P2Quantile est(0.9);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double x = dist(rng);
    est.add(x);
    all.push_back(x);
  }
  double exact = exact_quantile(all, 0.9);  // ~23 for lambda = 0.1
  EXPECT_NEAR(est.value(), exact, 0.1 * exact);
}

TEST(P2Quantile, SortedInputDoesNotBreakMonotonicity) {
  P2Quantile est(0.5);
  for (int i = 0; i < 10000; ++i) est.add(static_cast<double>(i));
  EXPECT_NEAR(est.value(), 5000.0, 500.0);
}

// --- k-anonymity gate ----------------------------------------------------

std::pair<Dimensions, MetricAggregate> group(std::uint32_t isp,
                                             std::uint64_t records) {
  Dimensions d;
  d.isp = IspId(isp);
  MetricAggregate agg;
  agg.records = records;
  return {d, agg};
}

TEST(KAnonymityGate, RecordsAtExactlyKSurvive) {
  auto gated = k_anonymity_gate({group(0, 5), group(1, 4), group(2, 6)}, 5);
  ASSERT_EQ(gated.groups.size(), 2u);
  EXPECT_EQ(gated.groups[0].first.isp, IspId(0));  // == k: kept
  EXPECT_EQ(gated.groups[1].first.isp, IspId(2));
  EXPECT_EQ(gated.suppressed_groups, 1u);   // k-1: suppressed
  EXPECT_EQ(gated.suppressed_records, 4u);
}

TEST(KAnonymityGate, KOfOneKeepsEveryNonEmptyGroup) {
  auto gated = k_anonymity_gate({group(0, 1), group(1, 100)}, 1);
  EXPECT_EQ(gated.groups.size(), 2u);
  EXPECT_EQ(gated.suppressed_groups, 0u);
  EXPECT_EQ(gated.suppressed_records, 0u);
}

TEST(KAnonymityGate, SuppressionCountsSumAcrossGroups) {
  auto gated =
      k_anonymity_gate({group(0, 1), group(1, 2), group(2, 3)}, 10);
  EXPECT_TRUE(gated.groups.empty());
  EXPECT_EQ(gated.suppressed_groups, 3u);
  EXPECT_EQ(gated.suppressed_records, 6u);
}

TEST(KAnonymityGate, PreservesInputOrderOfSurvivors) {
  auto gated = k_anonymity_gate(
      {group(3, 10), group(1, 10), group(2, 1), group(0, 10)}, 2);
  ASSERT_EQ(gated.groups.size(), 3u);
  EXPECT_EQ(gated.groups[0].first.isp, IspId(3));
  EXPECT_EQ(gated.groups[1].first.isp, IspId(1));
  EXPECT_EQ(gated.groups[2].first.isp, IspId(0));
}

TEST(KAnonymityGate, RejectsZeroK) {
  EXPECT_THROW(k_anonymity_gate({}, 0), ContractViolation);
}

}  // namespace
}  // namespace eona::telemetry
