// Tests for the what-if planning engine (§5 search-space exploration).
#include "control/whatif.hpp"

#include <gtest/gtest.h>

namespace eona::control {
namespace {

/// World: two servers behind one edge; one shared access link.
class WhatIfTest : public ::testing::Test {
 protected:
  WhatIfTest() {
    client = topo.add_node(net::NodeKind::kClientPop, "client");
    edge = topo.add_node(net::NodeKind::kRouter, "edge");
    s_big = topo.add_node(net::NodeKind::kCdnServer, "big");
    s_small = topo.add_node(net::NodeKind::kCdnServer, "small");
    access = topo.add_link(edge, client, mbps(100), milliseconds(5));
    big = topo.add_link(s_big, edge, mbps(80), milliseconds(5));
    small = topo.add_link(s_small, edge, mbps(10), milliseconds(5));
  }

  Problem one_group_problem(std::size_t sessions = 10) {
    Problem p;
    SessionGroup group;
    group.name = "g";
    group.sessions = sessions;
    group.isp = IspId(0);
    group.client = client;
    group.intended_bitrate = mbps(3);
    p.groups.push_back(group);
    p.options.push_back({
        EndpointOption{CdnId(0), ServerId(0), {big, access}},
        EndpointOption{CdnId(0), ServerId(1), {small, access}},
    });
    p.ladder = {kbps(300), mbps(1), mbps(3)};
    return p;
  }

  net::Topology topo;
  NodeId client, edge, s_big, s_small;
  LinkId access, big, small;
};

TEST_F(WhatIfTest, ScorePredictsSatisfiedPlan) {
  WhatIfEngine engine(topo);
  Problem p = one_group_problem();
  Plan plan;
  plan.endpoint = {0};  // big server
  plan.bitrate = {2};   // 3 Mbps
  PlanScore score = engine.score(p, plan);
  // 10 sessions x 3 Mbps = 30 < 80: fully satisfied.
  EXPECT_NEAR(score.satisfied_fraction, 1.0, 1e-9);
  EXPECT_NEAR(score.total_rate, mbps(30), 1.0);
  EXPECT_GT(score.mean_engagement, 0.9);
}

TEST_F(WhatIfTest, ScorePenalisesOverload) {
  WhatIfEngine engine(topo);
  Problem p = one_group_problem();
  Plan overloaded;
  overloaded.endpoint = {1};  // small server: 10 Mbps for 30 Mbps of intent
  overloaded.bitrate = {2};
  Plan fitted;
  fitted.endpoint = {1};
  fitted.bitrate = {0};  // 300 kbps x 10 = 3 Mbps fits easily
  PlanScore bad = engine.score(p, overloaded);
  PlanScore ok = engine.score(p, fitted);
  EXPECT_LT(bad.satisfied_fraction, 0.5);
  EXPECT_NEAR(ok.satisfied_fraction, 1.0, 1e-9);
}

TEST_F(WhatIfTest, SearchFindsTheObviousOptimum) {
  WhatIfEngine engine(topo);
  Problem p = one_group_problem();
  auto result = engine.search(p);
  EXPECT_EQ(result.evaluated, p.plan_count());
  EXPECT_EQ(result.evaluated, 6u);  // 2 endpoints x 3 bitrates
  EXPECT_EQ(result.best.endpoint[0], 0u);  // the big server
  EXPECT_EQ(result.best.bitrate[0], 2u);   // at full quality
}

TEST_F(WhatIfTest, SearchTradesBitrateWhenCapacityIsShort) {
  WhatIfEngine engine(topo);
  Problem p = one_group_problem(/*sessions=*/50);  // 150M intent vs 80M best
  auto result = engine.search(p);
  EXPECT_EQ(result.best.endpoint[0], 0u);
  // 50 x 1 Mbps = 50M fits; 50 x 3 Mbps = 150M starves. The fluid-model
  // engagement prefers the satisfied 1 Mbps plan.
  EXPECT_EQ(result.best.bitrate[0], 1u);
}

TEST_F(WhatIfTest, PlanCountIsCombinatorial) {
  Problem p = one_group_problem();
  // Add a second group with the same options.
  p.groups.push_back(p.groups[0]);
  p.options.push_back(p.options[0]);
  EXPECT_EQ(p.plan_count(), 36u);  // (2*3)^2
}

TEST_F(WhatIfTest, AccessCongestionPrunesEndpointKnobs) {
  Problem p = one_group_problem();
  core::I2AReport i2a;
  core::CongestionSignal c;
  c.isp = IspId(0);
  c.scope = core::CongestionScope::kAccess;
  c.severity = 0.8;
  i2a.congestion.push_back(c);
  Problem pruned = prune_problem(p, i2a);
  EXPECT_EQ(pruned.options[0].size(), 1u);
  EXPECT_EQ(pruned.plan_count(), 3u);  // only the bitrate knob remains
}

TEST_F(WhatIfTest, UnhealthyServerHintsPruneOptions) {
  Problem p = one_group_problem();
  core::I2AReport i2a;
  core::ServerHint down;
  down.cdn = CdnId(0);
  down.server = ServerId(0);
  down.online = false;
  i2a.server_hints.push_back(down);
  Problem pruned = prune_problem(p, i2a);
  ASSERT_EQ(pruned.options[0].size(), 1u);
  EXPECT_EQ(pruned.options[0][0].server, ServerId(1));
}

TEST_F(WhatIfTest, PruningNeverLeavesAGroupWithoutOptions) {
  Problem p = one_group_problem();
  core::I2AReport i2a;
  for (std::uint32_t s : {0u, 1u}) {
    core::ServerHint down;
    down.cdn = CdnId(0);
    down.server = ServerId(s);
    down.online = false;
    i2a.server_hints.push_back(down);
  }
  Problem pruned = prune_problem(p, i2a);
  EXPECT_EQ(pruned.options[0].size(), p.options[0].size());  // keep original
}

TEST_F(WhatIfTest, PrunedSearchMatchesFullSearchQuality) {
  // With an honest hint (the small server irrelevant to the optimum), the
  // pruned search reaches the same quality with fewer evaluations.
  WhatIfEngine engine(topo);
  Problem p = one_group_problem();
  core::I2AReport i2a;
  core::ServerHint overloaded;
  overloaded.cdn = CdnId(0);
  overloaded.server = ServerId(1);
  overloaded.load = 0.99;
  i2a.server_hints.push_back(overloaded);

  auto full = engine.search(p);
  auto pruned = engine.search_pruned(p, i2a);
  EXPECT_LT(pruned.plans_after, pruned.plans_before);
  EXPECT_NEAR(pruned.result.best_score.mean_engagement,
              full.best_score.mean_engagement, 1e-9);
  EXPECT_LT(pruned.result.evaluated, full.evaluated);
}

TEST_F(WhatIfTest, MalformedPlansAreContractViolations) {
  WhatIfEngine engine(topo);
  Problem p = one_group_problem();
  Plan bad;
  bad.endpoint = {5};
  bad.bitrate = {0};
  EXPECT_THROW(engine.score(p, bad), ContractViolation);
  Plan short_plan;
  EXPECT_THROW(engine.score(p, short_plan), ContractViolation);
}

}  // namespace
}  // namespace eona::control
