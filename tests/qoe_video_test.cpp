// Tests for video QoE accounting and the engagement model.
#include "qoe/video_qoe.hpp"

#include <gtest/gtest.h>

namespace eona::qoe {
namespace {

TEST(EngagementModel, PerfectSessionScoresNearOne) {
  EngagementModel model;
  EXPECT_NEAR(model.predict(0.0, mbps(6), 0.0), 1.0, 1e-9);
}

TEST(EngagementModel, BufferingIsThePrimaryPenalty) {
  EngagementModel model;
  double clean = model.predict(0.0, mbps(2), 1.0);
  double buffered = model.predict(0.10, mbps(2), 1.0);
  EXPECT_LT(buffered, clean * 0.8);
  // Beyond 1/penalty buffering, engagement bottoms out at 0.
  EXPECT_DOUBLE_EQ(model.predict(0.5, mbps(2), 1.0), 0.0);
}

TEST(EngagementModel, MonotoneInEachInput) {
  EngagementModel model;
  double prev = 1.0;
  for (double buffering : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    double e = model.predict(buffering, mbps(2), 1.0);
    EXPECT_LE(e, prev);
    prev = e;
  }
  prev = 0.0;
  for (double bitrate : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    double e = model.predict(0.0, mbps(bitrate), 1.0);
    EXPECT_GE(e, prev);
    prev = e;
  }
  prev = 1.0;
  for (double join : {0.0, 2.0, 10.0, 30.0, 120.0}) {
    double e = model.predict(0.0, mbps(2), join);
    EXPECT_LE(e, prev);
    prev = e;
  }
}

TEST(EngagementModel, InvalidBufferingIsAContractViolation) {
  EngagementModel model;
  EXPECT_THROW(model.predict(-0.1, mbps(1), 0.0), ContractViolation);
  EXPECT_THROW(model.predict(1.5, mbps(1), 0.0), ContractViolation);
}

TEST(VideoQoeTracker, CleanPlaybackHasZeroBuffering) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(2.0, mbps(3));
  telemetry::SessionMetrics m = tracker.snapshot(62.0);
  EXPECT_DOUBLE_EQ(m.buffering_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.join_time, 2.0);
  EXPECT_NEAR(m.avg_bitrate, mbps(3), 1.0);
  EXPECT_DOUBLE_EQ(m.rebuffer_rate, 0.0);
}

TEST(VideoQoeTracker, BufferingRatioCountsStallTime) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(0.0, mbps(1));
  tracker.on_stall_start(10.0);
  tracker.on_stall_end(15.0);
  // 15 s of activity: 10 play + 5 stall.
  telemetry::SessionMetrics m = tracker.snapshot(20.0);
  EXPECT_NEAR(m.buffering_ratio, 5.0 / 20.0, 1e-12);
  EXPECT_EQ(tracker.rebuffer_events(), 1u);
  EXPECT_GT(m.rebuffer_rate, 0.0);
}

TEST(VideoQoeTracker, BitrateIsTimeWeightedOverPlayTime) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(0.0, mbps(1));
  tracker.on_bitrate_change(10.0, mbps(3));  // 10 s at 1M, then 10 s at 3M
  telemetry::SessionMetrics m = tracker.snapshot(20.0);
  EXPECT_NEAR(m.avg_bitrate, mbps(2), 1.0);
}

TEST(VideoQoeTracker, StallTimeDoesNotAccrueBitrate) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(0.0, mbps(2));
  tracker.on_stall_start(5.0);
  tracker.on_stall_end(15.0);
  telemetry::SessionMetrics m = tracker.snapshot(20.0);
  // Play time is 10 s, all at 2 Mbps.
  EXPECT_NEAR(m.avg_bitrate, mbps(2), 1.0);
}

TEST(VideoQoeTracker, PreJoinTimeCountsAsJoinTime) {
  VideoQoeTracker tracker(5.0);
  telemetry::SessionMetrics m = tracker.snapshot(12.0);
  EXPECT_DOUBLE_EQ(m.join_time, 7.0);  // still joining
  EXPECT_DOUBLE_EQ(m.buffering_ratio, 0.0);
}

TEST(VideoQoeTracker, StateMachineViolationsThrow) {
  VideoQoeTracker tracker(0.0);
  EXPECT_THROW(tracker.on_stall_start(1.0), ContractViolation);  // not joined
  tracker.on_join(1.0, mbps(1));
  EXPECT_THROW(tracker.on_join(2.0, mbps(1)), ContractViolation);
  EXPECT_THROW(tracker.on_stall_end(2.0), ContractViolation);  // not stalled
  tracker.on_stall_start(3.0);
  EXPECT_THROW(tracker.on_stall_start(4.0), ContractViolation);
}

TEST(VideoQoeTracker, TimeMustNotGoBackwards) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(5.0, mbps(1));
  EXPECT_THROW(tracker.on_stall_start(4.0), ContractViolation);
}

TEST(VideoQoeTracker, BitsDeliveredAccumulate) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(0.0, mbps(1));
  tracker.on_bits_delivered(1e6);
  tracker.on_bits_delivered(2e6);
  EXPECT_DOUBLE_EQ(tracker.snapshot(10.0).bytes_delivered, 3e6);
}

TEST(VideoQoeTracker, SnapshotIsNonDestructive) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(0.0, mbps(1));
  tracker.snapshot(50.0);
  tracker.on_stall_start(10.0);  // 10 < 50: snapshot must not advance state
  telemetry::SessionMetrics m = tracker.snapshot(20.0);
  EXPECT_NEAR(m.buffering_ratio, 0.5, 1e-12);
}

TEST(VideoQoeTracker, EngagementFlowsIntoMetrics) {
  VideoQoeTracker tracker(0.0);
  tracker.on_join(1.0, mbps(6));
  telemetry::SessionMetrics clean = tracker.snapshot(61.0);
  EXPECT_GT(clean.engagement, 0.9);

  VideoQoeTracker bad(0.0);
  bad.on_join(1.0, mbps(6));
  bad.on_stall_start(11.0);
  bad.on_stall_end(31.0);
  telemetry::SessionMetrics stalled = bad.snapshot(61.0);
  EXPECT_LT(stalled.engagement, clean.engagement * 0.5);
}

}  // namespace
}  // namespace eona::qoe
