// Tests for the static topology graph.
#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace eona::net {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kClientPop, "b");
  LinkId ab = topo.add_link(a, b, mbps(10), milliseconds(5));
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(ab).src, a);
  EXPECT_EQ(topo.link(ab).dst, b);
  EXPECT_DOUBLE_EQ(topo.link(ab).capacity, mbps(10));
  EXPECT_EQ(topo.node(b).kind, NodeKind::kClientPop);
}

TEST(Topology, LinkNameDefaultsToEndpointNames) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "left");
  NodeId b = topo.add_node(NodeKind::kRouter, "right");
  LinkId ab = topo.add_link(a, b, mbps(1), 0.0);
  EXPECT_EQ(topo.link(ab).name, "left->right");
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId forward = topo.add_duplex_link(a, b, mbps(5), milliseconds(1));
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.link(forward).src, a);
  LinkId reverse = topo.find_link(b, a);
  ASSERT_TRUE(reverse.valid());
  EXPECT_DOUBLE_EQ(topo.link(reverse).capacity, mbps(5));
}

TEST(Topology, FindLinkReturnsInvalidWhenAbsent) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  EXPECT_FALSE(topo.find_link(a, b).valid());
}

TEST(Topology, ParallelLinksAreAllowed) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  LinkId l1 = topo.add_link(a, b, mbps(1), 0.0, "small");
  LinkId l2 = topo.add_link(a, b, mbps(10), 0.0, "big");
  EXPECT_NE(l1, l2);
  EXPECT_EQ(topo.out_links(a).size(), 2u);
  // find_link returns the first registered.
  EXPECT_EQ(topo.find_link(a, b), l1);
}

TEST(Topology, UnknownIdsThrow) {
  Topology topo;
  topo.add_node(NodeKind::kRouter, "a");
  EXPECT_THROW(topo.node(NodeId(5)), NotFoundError);
  EXPECT_THROW(topo.link(LinkId(0)), NotFoundError);
  EXPECT_THROW(topo.node(NodeId{}), NotFoundError);
}

TEST(Topology, LinkValidationIsContractual) {
  Topology topo;
  NodeId a = topo.add_node(NodeKind::kRouter, "a");
  NodeId b = topo.add_node(NodeKind::kRouter, "b");
  EXPECT_THROW(topo.add_link(a, b, 0.0, 0.0), ContractViolation);      // no capacity
  EXPECT_THROW(topo.add_link(a, b, mbps(1), -1.0), ContractViolation); // negative delay
  EXPECT_THROW(topo.add_link(a, NodeId(9), mbps(1), 0.0), ContractViolation);
}

TEST(Topology, OutLinksPreserveInsertionOrder) {
  Topology topo;
  NodeId hub = topo.add_node(NodeKind::kRouter, "hub");
  std::vector<LinkId> expected;
  for (int i = 0; i < 5; ++i) {
    NodeId spoke = topo.add_node(NodeKind::kRouter, "s" + std::to_string(i));
    expected.push_back(topo.add_link(hub, spoke, mbps(1), 0.0));
  }
  EXPECT_EQ(topo.out_links(hub), expected);
}

}  // namespace
}  // namespace eona::net
