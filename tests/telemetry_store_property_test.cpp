// Property test pinning the ColumnStore determinism contract: for any query
// plan, the store's columnar fold is bit-identical to a naive row-scan
// oracle that walks the same rows in canonical order (ascending time
// partition, append order within a partition) with plain left-to-right
// double accumulation. 120 seeded random plans over a random row set; every
// aggregate value must match to the last bit, not within a tolerance.
#include "telemetry/column_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "telemetry/store_replay.hpp"

namespace eona::telemetry {
namespace {

constexpr double kSegmentSpan = 60.0;

struct Row {
  TimePoint t = 0.0;
  Dimensions dims;
  std::string metric;
  std::uint64_t entity = 0;
  double value = 0.0;
};

/// Naive reference: filter + project + aggregate by scanning `rows` in
/// canonical store order. Mirrors the store's lazy slot assignment (first
/// matching row materializes the group) and its exact percentile
/// convention, then sorts by the same canonical dimension order.
std::vector<StoreResultRow> oracle_run(std::vector<Row> rows,
                                       const StoreQuery& q) {
  std::vector<StoreResultRow> out;
  if (!(q.t0 < q.t1)) return out;

  // Canonical order: ascending partition; append order within. The input
  // vector is in append order, so a stable partition sort reproduces it.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::floor(a.t / kSegmentSpan) < std::floor(b.t / kSegmentSpan);
  });

  struct Slot {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> values;
  };
  std::unordered_map<Dimensions, std::size_t> slots;
  std::vector<Slot> accs;

  for (const Row& r : rows) {
    if (r.metric != q.metric) continue;
    if (r.t < q.t0 || r.t >= q.t1) continue;
    if (q.isp && r.dims.isp != *q.isp) continue;
    if (q.cdn && r.dims.cdn != *q.cdn) continue;
    if (q.server && r.dims.server != *q.server) continue;
    if (q.region && r.dims.region != *q.region) continue;
    if (q.entity && r.entity != *q.entity) continue;
    Dimensions key = project(r.dims, q.group_by);
    auto [it, inserted] = slots.try_emplace(key, accs.size());
    if (inserted) {
      accs.emplace_back();
      out.push_back(StoreResultRow{key, 0, 0.0});
    }
    Slot& s = accs[it->second];
    ++s.count;
    s.sum += r.value;
    s.values.push_back(r.value);
  }

  for (std::size_t i = 0; i < accs.size(); ++i) {
    Slot& s = accs[i];
    out[i].rows = s.count;
    switch (q.agg) {
      case Agg::kCount:
        out[i].value = static_cast<double>(s.count);
        break;
      case Agg::kSum:
        out[i].value = s.sum;
        break;
      case Agg::kMean:
        out[i].value = s.sum / static_cast<double>(s.count);
        break;
      case Agg::kP50:
      case Agg::kP90: {
        const double quant = q.agg == Agg::kP50 ? 0.5 : 0.9;
        const auto rank = static_cast<std::size_t>(
            quant * static_cast<double>(s.values.size() - 1));
        std::nth_element(s.values.begin(),
                         s.values.begin() + static_cast<std::ptrdiff_t>(rank),
                         s.values.end());
        out[i].value = s.values[rank];
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StoreResultRow& a, const StoreResultRow& b) {
              return dim_order(a.key, b.key);
            });
  return out;
}

const char* kMetrics[] = {"buffering", "bitrate", "link_rate", "sessions"};

std::vector<Row> random_rows(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> t_dist(0.0, 600.0);
  std::uniform_real_distribution<double> v_dist(-1e3, 1e3);
  std::uniform_int_distribution<std::uint32_t> small(0, 3);
  std::uniform_int_distribution<std::uint64_t> ent(0, 7);
  std::uniform_int_distribution<int> metric(0, 3);
  std::uniform_int_distribution<int> invalid(0, 9);
  std::vector<Row> rows(n);
  for (Row& r : rows) {
    r.t = t_dist(rng);
    // One in ten attributes stays the invalid sentinel -- rows without that
    // dimension (e.g. link samples have no CDN) are first-class.
    r.dims.isp = invalid(rng) == 0 ? IspId() : IspId(small(rng));
    r.dims.cdn = invalid(rng) == 0 ? CdnId() : CdnId(small(rng));
    r.dims.server = invalid(rng) == 0 ? ServerId() : ServerId(small(rng));
    r.dims.region = small(rng);
    r.metric = kMetrics[metric(rng)];
    r.entity = ent(rng);
    r.value = v_dist(rng);
  }
  return rows;
}

StoreQuery random_plan(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> metric(0, 4);  // 4 = unknown metric
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> mask(0, 15);
  std::uniform_int_distribution<int> agg(0, 4);
  std::uniform_int_distribution<std::uint32_t> small(0, 3);
  std::uniform_int_distribution<std::uint64_t> ent(0, 7);
  std::uniform_real_distribution<double> t_dist(-50.0, 650.0);

  StoreQuery q;
  int m = metric(rng);
  q.metric = m == 4 ? "no_such_metric" : kMetrics[m];
  if (coin(rng)) {
    double a = t_dist(rng), b = t_dist(rng);
    q.t0 = std::min(a, b);
    q.t1 = std::max(a, b);
  }
  if (coin(rng)) q.isp = IspId(small(rng));
  if (coin(rng)) q.cdn = CdnId(small(rng));
  if (coin(rng)) q.server = ServerId(small(rng));
  if (coin(rng)) q.region = small(rng);
  if (coin(rng)) q.entity = ent(rng);
  q.group_by = static_cast<Dim>(mask(rng));
  q.agg = static_cast<Agg>(agg(rng));
  return q;
}

/// Bitwise double equality: the contract is bit-identity, so -0.0 vs 0.0 or
/// differently-rounded sums must fail.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(ColumnStoreProperty, RandomPlansMatchRowScanOracleBitForBit) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<Row> rows = random_rows(rng, 2000);
    ColumnStore store(kSegmentSpan);
    for (const Row& r : rows)
      store.append(r.t, r.dims, r.metric, r.entity, r.value);

    StoreQuery plan = random_plan(rng);
    std::vector<StoreResultRow> got = store.run(plan);
    std::vector<StoreResultRow> want = oracle_run(rows, plan);

    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, want[i].key) << "seed " << seed << " row " << i;
      EXPECT_EQ(got[i].rows, want[i].rows) << "seed " << seed << " row " << i;
      EXPECT_TRUE(same_bits(got[i].value, want[i].value))
          << "seed " << seed << " row " << i << ": store " << got[i].value
          << " vs oracle " << want[i].value;
    }
  }
}

TEST(ColumnStoreProperty, RepeatedQueriesAreIdempotent) {
  std::mt19937_64 rng(7);
  std::vector<Row> rows = random_rows(rng, 2000);
  ColumnStore store(kSegmentSpan);
  for (const Row& r : rows)
    store.append(r.t, r.dims, r.metric, r.entity, r.value);
  for (int trial = 0; trial < 20; ++trial) {
    StoreQuery plan = random_plan(rng);
    auto first = store.run(plan);
    auto second = store.run(plan);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].key, second[i].key);
      EXPECT_EQ(first[i].rows, second[i].rows);
      EXPECT_TRUE(same_bits(first[i].value, second[i].value));
    }
  }
}

TEST(ColumnStoreProperty, DumpReplayPreservesEveryQueryAnswer) {
  std::mt19937_64 rng(13);
  std::vector<Row> rows = random_rows(rng, 1000);
  ColumnStore store(kSegmentSpan);
  for (const Row& r : rows)
    store.append(r.t, r.dims, r.metric, r.entity, r.value);

  std::string dump = store.dump_rows();
  ColumnStore reloaded(kSegmentSpan);
  ASSERT_EQ(replay_jsonl(reloaded, dump), rows.size());
  EXPECT_EQ(reloaded.dump_rows(), dump);

  for (int trial = 0; trial < 20; ++trial) {
    StoreQuery plan = random_plan(rng);
    auto a = store.run(plan);
    auto b = reloaded.run(plan);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].key, b[i].key);
      EXPECT_TRUE(same_bits(a[i].value, b[i].value));
    }
  }
}

}  // namespace
}  // namespace eona::telemetry
