// Tests for information-gain feature ranking (§4 interface-design support).
#include "qoe/infogain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "sim/rng.hpp"

namespace eona::qoe {
namespace {

TEST(Entropy, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy_bits({}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({10}), 0.0);            // deterministic
  EXPECT_DOUBLE_EQ(entropy_bits({5, 5}), 1.0);          // fair coin
  EXPECT_DOUBLE_EQ(entropy_bits({4, 4, 4, 4}), 2.0);    // fair 4-way
  EXPECT_NEAR(entropy_bits({9, 1}),
              -(0.9 * std::log2(0.9) + 0.1 * std::log2(0.1)), 1e-12);
}

TEST(InformationGain, PerfectPredictorRecoversLabelEntropy) {
  // Label is a deterministic function of the feature.
  std::vector<double> feature, label;
  for (int i = 0; i < 400; ++i) {
    double x = (i % 2 == 0) ? 0.0 : 1.0;
    feature.push_back(x);
    label.push_back(x * 10.0);
  }
  double gain = information_gain(feature, label, 4);
  EXPECT_NEAR(gain, 1.0, 0.05);  // label entropy is 1 bit
}

TEST(InformationGain, IndependentFeatureGivesNearZero) {
  sim::Rng rng(3);
  std::vector<double> feature, label;
  for (int i = 0; i < 5000; ++i) {
    feature.push_back(rng.uniform(0, 1));
    label.push_back(rng.uniform(0, 1));
  }
  EXPECT_LT(information_gain(feature, label, 4), 0.03);
}

TEST(InformationGain, ConstantColumnsGiveZero) {
  std::vector<double> constant(100, 5.0), varying;
  for (int i = 0; i < 100; ++i) varying.push_back(i);
  EXPECT_DOUBLE_EQ(information_gain(constant, varying), 0.0);
  EXPECT_DOUBLE_EQ(information_gain(varying, constant), 0.0);
}

TEST(InformationGain, InvalidInputsAreContractViolations) {
  std::vector<double> a{1, 2}, b{1};
  EXPECT_THROW(information_gain(a, b), ContractViolation);
  EXPECT_THROW(information_gain({}, {}), ContractViolation);
  EXPECT_THROW(information_gain(a, a, 1), ContractViolation);
}

TEST(RankFeatures, OrdersByGainDescending) {
  sim::Rng rng(5);
  std::vector<double> label, strong, weak, noise;
  for (int i = 0; i < 3000; ++i) {
    double y = rng.uniform(0, 1);
    label.push_back(y);
    strong.push_back(y + rng.normal(0, 0.05));   // tightly coupled
    weak.push_back(y + rng.normal(0, 0.8));      // loosely coupled
    noise.push_back(rng.uniform(0, 1));          // independent
  }
  auto ranked = rank_features(
      {{"noise", noise}, {"strong", strong}, {"weak", weak}}, label);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, "strong");
  EXPECT_EQ(ranked[1].first, "weak");
  EXPECT_EQ(ranked[2].first, "noise");
  EXPECT_GT(ranked[0].second, ranked[1].second);
  EXPECT_GT(ranked[1].second, ranked[2].second);
}

}  // namespace
}  // namespace eona::qoe
