// Peering points: the interconnects between ISPs and CDNs, and the ISP's
// selectable mapping of "which peering point carries traffic from CDN X".
//
// In the paper's Figure 5 an ISP peers with CDN X at a local point B and at
// a public IXP C, and the InfP's knob is the per-CDN egress/ingress choice.
// Content flows CDN -> ISP, so a peering point is anchored on the directed
// link entering the ISP.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/topology.hpp"

namespace eona::net {

/// One interconnect between a CDN and an ISP.
struct PeeringPoint {
  PeeringId id;
  IspId isp;
  CdnId cdn;
  /// Directed link CDN-side -> ISP-side carrying the content traffic.
  LinkId ingress_link;
  std::string name;
};

/// Registry of peering points plus the ISP's current per-CDN selection.
/// The selection is an InfP-owned knob: only the InfP controller mutates it,
/// other parties may observe it exclusively through EONA-I2A.
class PeeringBook {
 public:
  explicit PeeringBook(const Topology& topo) : topo_(&topo) {}

  PeeringId add(IspId isp, CdnId cdn, LinkId ingress_link, std::string name) {
    EONA_EXPECTS(topo_->contains(ingress_link));
    PeeringId id(static_cast<PeeringId::rep_type>(points_.size()));
    points_.push_back(PeeringPoint{id, isp, cdn, ingress_link, std::move(name)});
    // The first registered point for a (isp, cdn) pair becomes the default
    // selection, mirroring a static BGP preference.
    auto key = pair_key(isp, cdn);
    if (selected_.find(key) == selected_.end()) selected_[key] = id;
    return id;
  }

  [[nodiscard]] const PeeringPoint& point(PeeringId id) const {
    if (!id.valid() || id.value() >= points_.size())
      throw NotFoundError("peering point " + std::to_string(id.value()));
    return points_[id.value()];
  }

  /// All peering points between the pair, in registration order.
  [[nodiscard]] std::vector<PeeringId> points_between(IspId isp,
                                                      CdnId cdn) const {
    std::vector<PeeringId> result;
    for (const auto& p : points_)
      if (p.isp == isp && p.cdn == cdn) result.push_back(p.id);
    return result;
  }

  [[nodiscard]] std::vector<PeeringId> points_of_isp(IspId isp) const {
    std::vector<PeeringId> result;
    for (const auto& p : points_)
      if (p.isp == isp) result.push_back(p.id);
    return result;
  }

  /// The peering point the ISP currently uses for traffic from `cdn`.
  [[nodiscard]] PeeringId selected(IspId isp, CdnId cdn) const {
    auto it = selected_.find(pair_key(isp, cdn));
    if (it == selected_.end())
      throw NotFoundError("no peering between isp " +
                          std::to_string(isp.value()) + " and cdn " +
                          std::to_string(cdn.value()));
    return it->second;
  }

  /// InfP knob: select which peering point carries the CDN's traffic.
  void select(PeeringId id) {
    const PeeringPoint& p = point(id);
    selected_[pair_key(p.isp, p.cdn)] = id;
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  static std::uint64_t pair_key(IspId isp, CdnId cdn) {
    return (static_cast<std::uint64_t>(isp.value()) << 32) | cdn.value();
  }

  const Topology* topo_;
  std::vector<PeeringPoint> points_;
  std::unordered_map<std::uint64_t, PeeringId> selected_;
};

}  // namespace eona::net
