// Volume-based transfers over the fluid network.
//
// A Transfer is "deliver V bits over this path, then call me back". Because
// rates change whenever any flow in the network changes, delivered volume
// must be integrated piecewise: the manager hooks the network's
// before-change/after-change events, banks progress under the outgoing rate
// vector, then re-predicts every transfer's completion time under the new
// one. Applications (video chunk fetches, page loads) are built on this.
//
// Batching (Network::Batch): the before hook fires once at the first
// mutation of a batch -- while every flow is still present and the old rate
// vector is live -- so progress banks exactly once; the after hook fires
// once at commit, re-predicting completions under the post-batch rates. A
// transfer started inside a batch sees rate 0 until commit (it is
// rescheduled by the commit's after hook), so coalescing a burst of starts,
// cancels, or demand changes costs one bank + one reschedule total.
//
// Stranding: a transfer whose path crosses a down link cannot make progress
// (its share is exactly 0) and, unlike a merely congested flow, no rate
// change will revive it while the link stays dead. Such transfers ABORT
// with a distinct failure reason instead of silently starving: the manager
// collects them during rescheduling and tears them down in one zero-delay
// sweep (re-entrancy: rescheduling runs inside network change hooks, where
// the flow table must not be mutated). A stranded transfer whose flow was
// rerouted onto a live path before the sweep runs (e.g. by an InfP egress
// migration) survives untouched.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/network.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::net {

struct TransferTag {};
/// Identifier of one in-flight transfer.
using TransferId = StrongId<TransferTag, std::uint64_t>;

/// Progress snapshot of an in-flight transfer.
struct TransferStatus {
  Bits total = 0.0;
  Bits remaining = 0.0;
  BitsPerSecond current_rate = 0.0;
  TimePoint started_at = 0.0;
};

/// Owns all volume transfers riding on one Network + Scheduler pair.
///
/// All network mutations made by applications and controllers can go through
/// the network directly; the manager keeps itself consistent via the change
/// hooks. Exactly one TransferManager may be attached to a Network.
class TransferManager {
 public:
  using CompletionCallback = std::function<void(TransferId)>;
  /// Fired (once, instead of the completion callback) when the data plane
  /// aborts a transfer; `reason` is a static literal such as "link-down".
  using FailureCallback = std::function<void(TransferId, const char* reason)>;

  /// Failure reason for transfers stranded by a dead link on their path.
  static constexpr const char* kLinkDownReason = "link-down";

  TransferManager(sim::Scheduler& sched, Network& network)
      : sched_(&sched), network_(&network) {
    network_->set_change_hooks([this] { advance_all(); },
                               [this] { reschedule_all(); });
  }

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  ~TransferManager() {
    network_->set_change_hooks(nullptr, nullptr);
    sched_->close_gate(sweep_gate_);
  }

  /// Emit TransferAbortedEvent on `bus` when transfers strand and abort.
  /// Pass nullptr to detach. Purely observational.
  void set_event_bus(sim::EventBus* bus) { bus_ = bus; }

  /// Start delivering `volume` bits along `path`, at most `demand` bps.
  /// `on_complete` fires (once) when the last bit lands; `on_fail` fires
  /// (once, instead) if the data plane aborts the transfer -- a transfer
  /// started over an already-dead link fails on the next scheduler step.
  TransferId start(Path path, Bits volume, CompletionCallback on_complete,
                   BitsPerSecond demand = kElasticDemand,
                   FailureCallback on_fail = nullptr) {
    EONA_EXPECTS(volume > 0.0);
    FlowId flow = network_->add_flow(std::move(path), demand);
    TransferId id(next_id_++);
    transfers_.emplace(
        id, State{flow, volume, volume, sched_->now(), sched_->now(),
                  std::move(on_complete), std::move(on_fail), sim::Gate{}});
    reschedule(id);
    return id;
  }

  /// Abort a transfer; its callback never fires. Idempotent for transfers
  /// that already completed (NotFoundError for never-existed ids is
  /// deliberately NOT thrown to keep cancellation races harmless).
  void cancel(TransferId id) {
    auto it = transfers_.find(id);
    if (it == transfers_.end()) return;
    sched_->close_gate(it->second.completion_gate);
    FlowId flow = it->second.flow;
    transfers_.erase(it);
    network_->remove_flow(flow);  // triggers hooks; transfer already gone
  }

  [[nodiscard]] bool active(TransferId id) const {
    return transfers_.count(id) > 0;
  }

  [[nodiscard]] TransferStatus status(TransferId id) const {
    auto it = transfers_.find(id);
    if (it == transfers_.end())
      throw NotFoundError("transfer " + std::to_string(id.value()));
    const State& state = it->second;
    Bits banked = state.remaining -
                  network_->rate(state.flow) * (sched_->now() - state.last_update);
    return TransferStatus{state.total, std::max(banked, 0.0),
                          network_->rate(state.flow), state.started_at};
  }

  /// The network flow carrying a transfer (lets controllers reroute it).
  [[nodiscard]] FlowId flow(TransferId id) const {
    auto it = transfers_.find(id);
    if (it == transfers_.end())
      throw NotFoundError("transfer " + std::to_string(id.value()));
    return it->second.flow;
  }

  /// Adjust the demand ceiling of a transfer (e.g. pacing a chunk fetch).
  void set_demand(TransferId id, BitsPerSecond demand) {
    network_->set_demand(flow(id), demand);
  }

  [[nodiscard]] std::size_t active_count() const { return transfers_.size(); }

 private:
  struct State {
    FlowId flow;
    Bits total;
    Bits remaining;
    TimePoint started_at;
    TimePoint last_update;
    CompletionCallback on_complete;
    FailureCallback on_fail;
    sim::Gate completion_gate;  ///< revokes the pending completion post
  };

  /// Bank progress for every transfer at the current rates (called just
  /// before the rate vector changes).
  void advance_all() {
    TimePoint now = sched_->now();
    for (auto& [id, state] : transfers_) {
      Duration elapsed = now - state.last_update;
      if (elapsed > 0.0) {
        state.remaining -= network_->rate(state.flow) * elapsed;
        state.remaining = std::max(state.remaining, 0.0);
        state.last_update = now;
      }
    }
  }

  /// Re-predict completion times under the (new) rate vector.
  void reschedule_all() {
    for (auto& [id, state] : transfers_) reschedule(id);
  }

  void reschedule(TransferId id) {
    State& state = transfers_.at(id);
    // Revoke the stale completion (predicted under the old rate vector) and
    // post a fresh one; the gate swap allocates nothing (hot path: every
    // transfer re-predicts on every rate change).
    sched_->close_gate(state.completion_gate);
    BitsPerSecond current = network_->rate(state.flow);
    if (current <= 0.0) {
      // Congestion-starved transfers revive on the next rate change, but a
      // dead link on the path strands the flow for good: queue it for the
      // abort sweep. No teardown here -- rescheduling runs inside network
      // change hooks where the flow table must stay intact.
      if (!network_->path_up(network_->path(state.flow))) mark_stranded(id);
      return;
    }
    Duration eta = state.remaining / current;
    state.completion_gate = sched_->open_gate();
    sched_->post_after(eta, state.completion_gate,
                       [this, id] { complete(id); });
  }

  void mark_stranded(TransferId id) {
    stranded_pending_.push_back(id);
    if (sweep_scheduled_) return;
    sweep_scheduled_ = true;
    sweep_gate_ = sched_->open_gate();
    sched_->post_after(0.0, sweep_gate_, [this] { fail_stranded(); });
  }

  /// Abort every still-stranded queued transfer: tear the flows down in one
  /// batch, publish TransferAbortedEvent per abort, then run the failure
  /// callbacks (which may freely start replacement transfers). Ascending
  /// transfer-id order -- deterministic.
  void fail_stranded() {
    sweep_scheduled_ = false;
    sched_->close_gate(sweep_gate_);
    std::vector<TransferId> pending;
    pending.swap(stranded_pending_);
    std::sort(pending.begin(), pending.end());
    pending.erase(std::unique(pending.begin(), pending.end()),
                  pending.end());
    std::vector<std::pair<TransferId, FailureCallback>> failed;
    {
      Network::Batch batch(*network_);
      for (TransferId id : pending) {
        auto it = transfers_.find(id);
        if (it == transfers_.end()) continue;  // completed or cancelled
        State& state = it->second;
        // Healed or rerouted onto a live path since queueing: lives on.
        if (network_->path_up(network_->path(state.flow))) continue;
        sched_->close_gate(state.completion_gate);
        FailureCallback on_fail = std::move(state.on_fail);
        FlowId flow = state.flow;
        transfers_.erase(it);
        network_->remove_flow(flow);
        if (bus_ != nullptr)
          bus_->publish(sim::TransferAbortedEvent{
              sched_->now(), id.value(), flow, kLinkDownReason});
        failed.emplace_back(id, std::move(on_fail));
      }
    }
    for (auto& [id, on_fail] : failed)
      if (on_fail) on_fail(id, kLinkDownReason);
  }

  void complete(TransferId id) {
    auto it = transfers_.find(id);
    if (it == transfers_.end()) return;  // raced with cancel
    sched_->close_gate(it->second.completion_gate);
    // Bank final progress, detach, then notify (callback may start new
    // transfers or mutate the network freely).
    CompletionCallback callback = std::move(it->second.on_complete);
    FlowId flow = it->second.flow;
    transfers_.erase(it);
    network_->remove_flow(flow);
    if (callback) callback(id);
  }

  sim::Scheduler* sched_;
  Network* network_;
  sim::EventBus* bus_ = nullptr;
  std::map<TransferId, State> transfers_;  // ordered: deterministic iteration
  std::vector<TransferId> stranded_pending_;
  sim::Gate sweep_gate_;
  bool sweep_scheduled_ = false;
  TransferId::rep_type next_id_ = 0;
};

}  // namespace eona::net
