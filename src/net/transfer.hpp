// Volume-based transfers over the fluid network.
//
// A Transfer is "deliver V bits over this path, then call me back". Because
// rates change whenever any flow in the network changes, delivered volume
// must be integrated piecewise. The manager subscribes to the network's
// rates-changed hook: each transfer stores the rate it has been running at,
// and when the network reports that rate moved the manager banks the bits
// delivered under the old rate (rate x elapsed -- exact, since the rate was
// constant over the interval) and re-predicts that transfer's completion
// under the new one. Only the transfers whose rate actually changed pay
// anything, so one network mutation costs O(dirty component), not O(all
// active transfers). Applications (video chunk fetches, page loads) build
// on this.
//
// Storage is flat: transfer state lives in a slot vector with a free list
// (no per-transfer allocation at steady state); hash indices map transfer
// and flow ids to slots.
//
// Batching (Network::Batch): structural changes land immediately but rates
// stay stale until commit; the rates-changed hook fires once at commit, so
// coalescing a burst of starts, cancels, or demand changes costs one
// reschedule per flow whose rate moved, total. A transfer started inside a
// batch sees rate 0 until commit (its first real prediction happens in the
// commit's hook).
//
// Stranding: a transfer whose path crosses a down link cannot make progress
// (its share is exactly 0) and, unlike a merely congested flow, no rate
// change will revive it while the link stays dead. Such transfers ABORT
// with a distinct failure reason instead of silently starving: the manager
// collects them during rescheduling and tears them down in one zero-delay
// sweep (re-entrancy: rescheduling runs inside the network change hook,
// where the flow table must not be mutated). A stranded transfer whose flow
// was rerouted onto a live path before the sweep runs (e.g. by an InfP
// egress migration) survives untouched. The rates-changed report includes
// zero-rate flows on down paths even when the value 0 is unchanged, so a
// dead-path reroute is always observed.
#pragma once

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/network.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::net {

struct TransferTag {};
/// Identifier of one in-flight transfer.
using TransferId = StrongId<TransferTag, std::uint64_t>;

/// Progress snapshot of an in-flight transfer.
struct TransferStatus {
  Bits total = 0.0;
  Bits remaining = 0.0;
  BitsPerSecond current_rate = 0.0;
  TimePoint started_at = 0.0;
};

/// Owns all volume transfers riding on one Network + Scheduler pair.
///
/// All network mutations made by applications and controllers can go through
/// the network directly; the manager keeps itself consistent via the
/// rates-changed hook. Exactly one TransferManager may be attached to a
/// Network.
class TransferManager {
 public:
  using CompletionCallback = std::function<void(TransferId)>;
  /// Fired (once, instead of the completion callback) when the data plane
  /// aborts a transfer; `reason` is a static literal such as "link-down".
  using FailureCallback = std::function<void(TransferId, const char* reason)>;

  /// Failure reason for transfers stranded by a dead link on their path.
  static constexpr const char* kLinkDownReason = "link-down";

  TransferManager(sim::Scheduler& sched, Network& network)
      : sched_(&sched), network_(&network) {
    network_->set_rates_changed_hook(
        [this](const std::vector<RateChange>& changes) {
          on_rates_changed(changes);
        });
  }

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  ~TransferManager() {
    network_->set_rates_changed_hook(nullptr);
    sched_->close_gate(sweep_gate_);
  }

  /// Emit TransferAbortedEvent on `bus` when transfers strand and abort.
  /// Pass nullptr to detach. Purely observational.
  void set_event_bus(sim::EventBus* bus) { bus_ = bus; }

  /// Pre-size the slot storage and indices for `n` concurrent transfers.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_slots_.reserve(n);
    slot_of_.reserve(n);
    flow_slot_.reserve(n);
  }

  /// Start delivering `volume` bits along `path`, at most `demand` bps.
  /// `on_complete` fires (once) when the last bit lands; `on_fail` fires
  /// (once, instead) if the data plane aborts the transfer -- a transfer
  /// started over an already-dead link fails on the next scheduler step.
  TransferId start(Path path, Bits volume, CompletionCallback on_complete,
                   BitsPerSecond demand = kElasticDemand,
                   FailureCallback on_fail = nullptr) {
    EONA_EXPECTS(volume > 0.0);
    FlowId flow = network_->add_flow(std::move(path), demand);
    TransferId id(next_id_++);
    std::uint32_t slot = alloc_slot();
    State& state = slots_[slot];
    state.id = id;
    state.flow = flow;
    state.total = volume;
    state.remaining = volume;
    state.rate = 0.0;
    state.started_at = sched_->now();
    state.last_update = sched_->now();
    state.on_complete = std::move(on_complete);
    state.on_fail = std::move(on_fail);
    state.completion_gate = sim::Gate{};
    slot_of_.emplace(id, slot);
    flow_slot_.emplace(flow, slot);
    // Inside a batch the rate is still stale 0; the commit's rates-changed
    // report re-predicts. Unbatched, this reads the fresh post-solve rate.
    reschedule(slot, network_->rate(flow));
    return id;
  }

  /// Abort a transfer; its callback never fires. Idempotent for transfers
  /// that already completed (NotFoundError for never-existed ids is
  /// deliberately NOT thrown to keep cancellation races harmless).
  void cancel(TransferId id) {
    auto it = slot_of_.find(id);
    if (it == slot_of_.end()) return;
    FlowId flow = slots_[it->second].flow;
    release_slot(it->second);
    network_->remove_flow(flow);  // triggers hook; transfer already gone
  }

  [[nodiscard]] bool active(TransferId id) const {
    return slot_of_.count(id) > 0;
  }

  [[nodiscard]] TransferStatus status(TransferId id) const {
    const State& state = slots_[require_slot(id)];
    // The stored rate has been in effect since last_update (banking happens
    // exactly when the rate moves), so the un-banked progress is one product.
    Bits banked =
        state.remaining - state.rate * (sched_->now() - state.last_update);
    return TransferStatus{state.total, std::max(banked, 0.0), state.rate,
                          state.started_at};
  }

  /// The network flow carrying a transfer (lets controllers reroute it).
  [[nodiscard]] FlowId flow(TransferId id) const {
    return slots_[require_slot(id)].flow;
  }

  /// Adjust the demand ceiling of a transfer (e.g. pacing a chunk fetch).
  void set_demand(TransferId id, BitsPerSecond demand) {
    network_->set_demand(flow(id), demand);
  }

  [[nodiscard]] std::size_t active_count() const { return slot_of_.size(); }

 private:
  struct State {
    TransferId id;
    FlowId flow;
    Bits total = 0.0;
    Bits remaining = 0.0;
    BitsPerSecond rate = 0.0;  ///< allocation in effect since last_update
    TimePoint started_at = 0.0;
    TimePoint last_update = 0.0;
    CompletionCallback on_complete;
    FailureCallback on_fail;
    sim::Gate completion_gate;  ///< revokes the pending completion post
    bool alive = false;
  };

  [[nodiscard]] std::uint32_t require_slot(TransferId id) const {
    auto it = slot_of_.find(id);
    if (it == slot_of_.end())
      throw NotFoundError("transfer " + std::to_string(id.value()));
    return it->second;
  }

  std::uint32_t alloc_slot() {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].alive = true;
    return slot;
  }

  /// Detach a slot from both indices and recycle it. Does NOT touch the
  /// network flow (callers differ) but does revoke the pending completion.
  void release_slot(std::uint32_t slot) {
    State& state = slots_[slot];
    sched_->close_gate(state.completion_gate);
    slot_of_.erase(state.id);
    flow_slot_.erase(state.flow);
    state.on_complete = nullptr;
    state.on_fail = nullptr;
    state.alive = false;
    free_slots_.push_back(slot);
  }

  /// React to the network's report of moved rates: bank progress under the
  /// outgoing rate and re-predict completion under the new one, for exactly
  /// the transfers affected.
  void on_rates_changed(const std::vector<RateChange>& changes) {
    for (const RateChange& change : changes) {
      auto it = flow_slot_.find(change.flow);
      if (it == flow_slot_.end()) continue;  // flow without a transfer
      reschedule(it->second, change.rate);
    }
  }

  void reschedule(std::uint32_t slot, BitsPerSecond new_rate) {
    State& state = slots_[slot];
    // Bank bits delivered under the outgoing rate; it was constant since
    // last_update, so one multiply integrates the whole interval exactly.
    Duration elapsed = sched_->now() - state.last_update;
    if (elapsed > 0.0 && state.rate > 0.0)
      state.remaining = std::max(state.remaining - state.rate * elapsed, 0.0);
    state.last_update = sched_->now();
    state.rate = new_rate;
    // Revoke the stale completion (predicted under the old rate) and post a
    // fresh one; the gate swap and the post allocate nothing.
    sched_->close_gate(state.completion_gate);
    if (new_rate <= 0.0) {
      // Congestion-starved transfers revive on the next rate change, but a
      // dead link on the path strands the flow for good: queue it for the
      // abort sweep. No teardown here -- rescheduling runs inside the
      // network change hook where the flow table must stay intact.
      if (!network_->path_up(network_->path(state.flow)))
        mark_stranded(state.id);
      return;
    }
    Duration eta = state.remaining / new_rate;
    state.completion_gate = sched_->open_gate();
    TransferId id = state.id;
    sched_->post_after(eta, state.completion_gate,
                       [this, id] { complete(id); });
  }

  void mark_stranded(TransferId id) {
    stranded_pending_.push_back(id);
    if (sweep_scheduled_) return;
    sweep_scheduled_ = true;
    sweep_gate_ = sched_->open_gate();
    sched_->post_after(0.0, sweep_gate_, [this] { fail_stranded(); });
  }

  /// Abort every still-stranded queued transfer: tear the flows down in one
  /// batch, publish TransferAbortedEvent per abort, then run the failure
  /// callbacks (which may freely start replacement transfers). Ascending
  /// transfer-id order -- deterministic.
  void fail_stranded() {
    sweep_scheduled_ = false;
    sched_->close_gate(sweep_gate_);
    std::vector<TransferId> pending;
    pending.swap(stranded_pending_);
    std::sort(pending.begin(), pending.end());
    pending.erase(std::unique(pending.begin(), pending.end()),
                  pending.end());
    std::vector<std::pair<TransferId, FailureCallback>> failed;
    {
      Network::Batch batch(*network_);
      for (TransferId id : pending) {
        auto it = slot_of_.find(id);
        if (it == slot_of_.end()) continue;  // completed or cancelled
        State& state = slots_[it->second];
        // Healed or rerouted onto a live path since queueing: lives on.
        if (network_->path_up(network_->path(state.flow))) continue;
        FailureCallback on_fail = std::move(state.on_fail);
        FlowId flow = state.flow;
        release_slot(it->second);
        network_->remove_flow(flow);
        if (bus_ != nullptr)
          bus_->publish(sim::TransferAbortedEvent{
              sched_->now(), id.value(), flow, kLinkDownReason});
        failed.emplace_back(id, std::move(on_fail));
      }
    }
    for (auto& [id, on_fail] : failed)
      if (on_fail) on_fail(id, kLinkDownReason);
  }

  void complete(TransferId id) {
    auto it = slot_of_.find(id);
    if (it == slot_of_.end()) return;  // raced with cancel
    State& state = slots_[it->second];
    // Detach, then notify (callback may start new transfers or mutate the
    // network freely).
    CompletionCallback callback = std::move(state.on_complete);
    FlowId flow = state.flow;
    release_slot(it->second);
    network_->remove_flow(flow);
    if (callback) callback(id);
  }

  sim::Scheduler* sched_;
  Network* network_;
  sim::EventBus* bus_ = nullptr;
  // Flat slot storage with a free list; indices map ids to slots. Bulk
  // operations iterate id lists sorted numerically, never the hash tables,
  // so iteration order stays deterministic.
  std::vector<State> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<TransferId, std::uint32_t> slot_of_;
  std::unordered_map<FlowId, std::uint32_t> flow_slot_;
  std::vector<TransferId> stranded_pending_;
  sim::Gate sweep_gate_;
  bool sweep_scheduled_ = false;
  TransferId::rep_type next_id_ = 0;
};

}  // namespace eona::net
