// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// This is the core of the fluid network model: given the set of flows, each
// with a route and an upper demand cap, compute the rate vector that is
// max-min fair subject to link capacities. TCP-style elastic flows use an
// effectively infinite demand and are limited only by their bottleneck link.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace eona::net {

/// Input to the allocator: one flow's route and demand ceiling.
struct FlowSpec {
  Path path;                 ///< links the flow traverses (may be empty: src==dst)
  BitsPerSecond demand = 0;  ///< upper bound on useful rate (inf for elastic)
};

/// Computes the max-min fair allocation for `flows` over `topo`, using
/// `capacities` (one per link, indexed by link id) instead of the static
/// topology capacities -- the Network layer owns dynamic capacity (server
/// shutdown, degradation).
///
/// Returns one rate per flow (same order as input). Flows with an empty path
/// are local (src == dst) and receive exactly their demand. The algorithm is
/// progressive filling: all unfrozen flows grow at the same pace; when a link
/// saturates, the flows crossing it freeze at the current level; when a flow
/// reaches its demand it freezes too. Complexity O((F + L) * rounds), rounds
/// <= F, ample for scenario-scale inputs.
[[nodiscard]] std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows,
    const std::vector<BitsPerSecond>& capacities);

/// Convenience overload using the topology's static capacities.
[[nodiscard]] std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows);

}  // namespace eona::net
