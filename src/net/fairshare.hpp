// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// This is the core of the fluid network model: given the set of flows, each
// with a route and an upper demand cap, compute the rate vector that is
// max-min fair subject to link capacities. TCP-style elastic flows use an
// effectively infinite demand and are limited only by their bottleneck link.
//
// The solver decomposes the conflict graph (flows sharing links) into
// connected components with a union-find pass and water-fills each component
// independently with an event queue: a min-heap of link saturation levels
// plus a sorted demand freeze order replaces the per-round full scans of the
// naive progressive-filling loop. Because components never interact, a
// component's rates depend only on its own flows and links -- this is what
// lets Network re-solve just the dirty component after a mutation and still
// produce bit-identical results to a from-scratch solve (see network.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace eona::net {

/// Input to the allocator: one flow's route and demand ceiling.
struct FlowSpec {
  Path path;                 ///< links the flow traverses (may be empty: src==dst)
  BitsPerSecond demand = 0;  ///< upper bound on useful rate (inf for elastic)
};

/// Non-owning view of one flow's route + demand. Lets callers that already
/// store paths (Network's flow table) feed the solver without copying them.
struct FlowView {
  const LinkId* links = nullptr;
  std::size_t link_count = 0;
  BitsPerSecond demand = 0;
};

/// Reusable max-min solver. Holds per-link scratch (epoch-stamped, so a
/// solve touching k links costs O(k), not O(L)) and the component/event
/// structures, so repeated solves over the same topology do not reallocate.
///
/// The allocation is computed per connected component of the flow/link
/// conflict graph; within a component, water-filling is event-driven:
/// all unfrozen flows sit at a common level t, a min-heap keyed by the level
/// at which each link saturates ((capacity - frozen) / active) supplies the
/// next link event, and a demand-sorted order supplies the next flow whose
/// cap is reached. Complexity O((F * pathlen) log(F * pathlen) + touched
/// links) per solve instead of O(rounds * (L + F * pathlen)).
class MaxMinSolver {
 public:
  /// Computes rates for `flows` (same order) into `rates` using per-link
  /// `capacities` (indexed by link id; must cover every referenced link).
  /// Flows with an empty path are local (src == dst) and receive exactly
  /// their (finite) demand; zero-demand flows receive zero.
  void solve(const Topology& topo, const std::vector<FlowView>& flows,
             const std::vector<BitsPerSecond>& capacities,
             std::vector<BitsPerSecond>& rates);

 private:
  struct Event {
    double level;        ///< water level at which the link saturates
    std::uint32_t link;
    std::uint32_t gen;   ///< link generation at push time (stale detection)
  };

  void solve_component(const std::vector<std::uint32_t>& comp,
                       const std::vector<FlowView>& flows,
                       const std::vector<BitsPerSecond>& capacities,
                       std::vector<BitsPerSecond>& rates);
  void push_event(std::uint32_t link, const std::vector<BitsPerSecond>& caps);
  std::uint32_t find(std::uint32_t f);

  // --- per-link scratch, lazily initialised via epoch stamps ---------------
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> owner_epoch_;  // union-find link-owner validity
  std::vector<std::uint32_t> owner_;        // first flow seen on the link
  std::vector<std::uint64_t> state_epoch_;  // component link-state validity
  std::vector<int> active_;                 // unfrozen flows crossing the link
  std::vector<double> frozen_alloc_;        // sum of frozen rates on the link
  std::vector<std::uint8_t> saturated_;
  std::vector<std::uint32_t> gen_;          // bumped on every state change
  std::vector<std::uint8_t> has_event_;     // a fresh heap entry exists
  std::vector<std::vector<std::uint32_t>> adj_;  // link -> flows crossing it

  // --- per-flow / per-component scratch ------------------------------------
  std::vector<std::uint32_t> parent_;       // union-find over flow positions
  std::vector<std::uint8_t> frozen_;
  std::vector<std::uint32_t> root_comp_;    // root position -> component idx
  std::vector<std::vector<std::uint32_t>> components_;
  std::vector<LinkId> comp_links_;
  std::vector<std::pair<double, std::uint32_t>> demand_order_;
  std::vector<Event> heap_;
};

/// Computes the max-min fair allocation for `flows` over `topo`, using
/// `capacities` (one per link, indexed by link id) instead of the static
/// topology capacities -- the Network layer owns dynamic capacity (server
/// shutdown, degradation). Returns one rate per flow (same order as input).
[[nodiscard]] std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows,
    const std::vector<BitsPerSecond>& capacities);

/// Convenience overload using the topology's static capacities.
[[nodiscard]] std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows);

}  // namespace eona::net
