#include "net/network.hpp"

#include <algorithm>
#include <cmath>

namespace eona::net {

// Re-solve rates for the dirty component: the flows whose spec changed plus
// everything transitively sharing a link with them. The BFS alternates
// between the two frontiers (flows -> their links, links -> flows on them)
// until closed; because the closure absorbs every flow on every visited
// link, the component can be re-solved against full link capacities and the
// result is bit-identical to a from-scratch solve (fairshare.hpp solves
// connected components independently in both cases).
void Network::recompute() {
  ++recompute_count_;

  if (mode_ == RecomputeMode::kFullSolve) {
    dirty_slots_.clear();
    dirty_links_.clear();
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot)
      if (slots_[slot].alive) dirty_slots_.push_back(slot);
  }

  ++visit_epoch_;
  affected_slots_.clear();
  affected_links_.clear();
  for (std::uint32_t slot : dirty_slots_) {
    if (slot >= slots_.size() || !slots_[slot].alive) continue;
    if (slot_visit_[slot] == visit_epoch_) continue;
    slot_visit_[slot] = visit_epoch_;
    affected_slots_.push_back(slot);
  }
  for (LinkId lid : dirty_links_) {
    if (link_visit_[lid.value()] == visit_epoch_) continue;
    link_visit_[lid.value()] = visit_epoch_;
    affected_links_.push_back(lid);
  }
  dirty_slots_.clear();
  dirty_links_.clear();

  std::size_t next_slot = 0;
  std::size_t next_link = 0;
  while (next_slot < affected_slots_.size() ||
         next_link < affected_links_.size()) {
    if (next_slot < affected_slots_.size()) {
      std::uint32_t slot = affected_slots_[next_slot++];
      for (LinkId lid : slots_[slot].path) {
        if (link_visit_[lid.value()] == visit_epoch_) continue;
        link_visit_[lid.value()] = visit_epoch_;
        affected_links_.push_back(lid);
      }
    } else {
      LinkId lid = affected_links_[next_link++];
      for (std::uint32_t slot : link_slots_[lid.value()]) {
        if (slot_visit_[slot] == visit_epoch_) continue;
        slot_visit_[slot] = visit_epoch_;
        affected_slots_.push_back(slot);
      }
    }
  }

  // Every affected link's allocation is rebuilt below; links that lost all
  // their flows (removals) must drop to zero even with nothing to solve.
  for (LinkId lid : affected_links_) link_allocated_[lid.value()] = 0.0;
  rate_changes_.clear();
  if (affected_slots_.empty()) {
    emit_recompute_events();
    return;
  }

  // Deterministic order: ascending flow id. The max-min allocation is
  // unique regardless of order, but fixed iteration keeps floating-point
  // results bit-identical between incremental and from-scratch solves.
  std::sort(affected_slots_.begin(), affected_slots_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return slots_[a].id < slots_[b].id;
            });

  solve_views_.clear();
  solve_views_.reserve(affected_slots_.size());
  for (std::uint32_t slot : affected_slots_) {
    const FlowState& flow = slots_[slot];
    solve_views_.push_back(
        FlowView{flow.path.data(), flow.path.size(), flow.demand});
  }
  solver_.solve(*topo_, solve_views_, effective_capacity_, solve_rates_);

  for (std::size_t i = 0; i < affected_slots_.size(); ++i) {
    FlowState& flow = slots_[affected_slots_[i]];
    BitsPerSecond new_rate = solve_rates_[i];
    // Report flows whose rate actually moved. Exact comparison is correct:
    // an untouched component re-solves bit-identically. Zero-rate flows on a
    // down path are reported unconditionally so a 0 -> 0 reroute onto a dead
    // link still surfaces as strandable (see transfer.hpp).
    if (new_rate != flow.rate || (new_rate == 0.0 && !path_up(flow.path)))
      rate_changes_.push_back(RateChange{flow.id, new_rate});
    flow.rate = new_rate;
    for (LinkId lid : flow.path) link_allocated_[lid.value()] += flow.rate;
  }

  emit_recompute_events();
}

// Observational only; fires after the rate vector is final. Saturation is
// edge-triggered per link (one event per threshold crossing), checked over
// the affected links -- an unaffected link's utilization cannot have moved.
void Network::emit_recompute_events() {
  if (bus_ == nullptr) return;
  TimePoint now = clock_->now();
  bus_->publish(sim::RateRecomputeEvent{now, recompute_count_,
                                        affected_slots_.size(),
                                        affected_links_.size()});
  for (LinkId lid : affected_links_) {
    bool saturated = link_utilization(lid) >= kSaturationThreshold;
    if (saturated == static_cast<bool>(link_saturated_[lid.value()])) continue;
    link_saturated_[lid.value()] = saturated ? 1 : 0;
    bus_->publish(sim::LinkSaturationEvent{now, lid, saturated,
                                           link_utilization(lid)});
  }
}

bool Network::link_congested(LinkId id, double threshold) const {
  EONA_EXPECTS(topo_->contains(id));
  EONA_EXPECTS(threshold > 0.0 && threshold <= 1.0);
  if (link_utilization(id) < threshold) return false;
  // Saturated AND at least one flow on it is demand-starved: some flow
  // crossing this link got less than it wanted.
  for (std::uint32_t slot : link_slots_[id.value()]) {
    const FlowState& flow = slots_[slot];
    if (flow.rate < flow.demand - 1e-9) return true;
  }
  return false;
}

}  // namespace eona::net
