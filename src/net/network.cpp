#include "net/network.hpp"

#include <algorithm>
#include <cmath>

namespace eona::net {

void Network::recompute() {
  ++recompute_count_;

  // Deterministic order: sort flow ids. The max-min allocation is unique
  // regardless of order, but fixed iteration keeps floating-point results
  // bit-identical across runs.
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<FlowSpec> specs;
  specs.reserve(ids.size());
  for (FlowId id : ids) {
    const FlowState& flow = flows_.at(id);
    specs.push_back(FlowSpec{flow.path, flow.demand});
  }

  std::vector<BitsPerSecond> rates =
      max_min_allocation(*topo_, specs, link_capacity_);

  std::fill(link_allocated_.begin(), link_allocated_.end(), 0.0);
  std::fill(link_flows_.begin(), link_flows_.end(), 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    FlowState& flow = flows_.at(ids[i]);
    flow.rate = rates[i];
    for (LinkId lid : flow.path) {
      link_allocated_[lid.value()] += rates[i];
      ++link_flows_[lid.value()];
    }
  }
}

bool Network::link_congested(LinkId id, double threshold) const {
  EONA_EXPECTS(topo_->contains(id));
  EONA_EXPECTS(threshold > 0.0 && threshold <= 1.0);
  if (link_utilization(id) < threshold) return false;
  // Saturated AND at least one flow on it is demand-starved: some flow
  // crossing this link got less than it wanted.
  for (const auto& [fid, flow] : flows_) {
    if (flow.rate >= flow.demand - 1e-9) continue;
    for (LinkId lid : flow.path)
      if (lid == id) return true;
  }
  return false;
}

}  // namespace eona::net
