// Network topology: nodes and directed capacity-constrained links.
//
// The topology is the static substrate; dynamic state (flows, rates) lives in
// eona::net::Network. Nodes carry a kind tag so scenario builders and
// diagnostics can tell client aggregates from routers from CDN servers.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"

namespace eona::net {

/// Role of a node in the delivery chain (for diagnostics and scenario
/// wiring; routing treats all nodes identically).
enum class NodeKind {
  kClientPop,     ///< aggregate of clients in one ISP region
  kRouter,        ///< interior ISP/transit router
  kPeeringPoint,  ///< interconnect between an ISP and a CDN/transit
  kCdnServer,     ///< CDN server cluster
  kOrigin,        ///< content origin
};

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kRouter;
  std::string name;
};

/// A directed link. Capacity constrains the sum of fair-share rates of the
/// flows crossing it; delay is propagation latency used by routing and RTT
/// estimates.
struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  BitsPerSecond capacity = 0.0;
  Duration delay = 0.0;
  std::string name;
};

/// Immutable-after-construction graph of nodes and links with O(1) lookup.
/// Built through the fluent add_* calls, then handed to Network/Routing.
class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name) {
    NodeId id(static_cast<NodeId::rep_type>(nodes_.size()));
    nodes_.push_back(Node{id, kind, std::move(name)});
    out_links_.emplace_back();
    return id;
  }

  /// Adds a directed link src -> dst.
  LinkId add_link(NodeId src, NodeId dst, BitsPerSecond capacity,
                  Duration delay, std::string name = {}) {
    EONA_EXPECTS(contains(src) && contains(dst));
    EONA_EXPECTS(capacity > 0.0);
    EONA_EXPECTS(delay >= 0.0);
    LinkId id(static_cast<LinkId::rep_type>(links_.size()));
    if (name.empty())
      name = node(src).name + "->" + node(dst).name;
    links_.push_back(Link{id, src, dst, capacity, delay, std::move(name)});
    out_links_[src.value()].push_back(id);
    return id;
  }

  /// Adds a pair of directed links (src<->dst) with identical parameters and
  /// returns the forward one (src -> dst).
  LinkId add_duplex_link(NodeId a, NodeId b, BitsPerSecond capacity,
                         Duration delay) {
    LinkId forward = add_link(a, b, capacity, delay);
    add_link(b, a, capacity, delay);
    return forward;
  }

  [[nodiscard]] bool contains(NodeId id) const {
    return id.valid() && id.value() < nodes_.size();
  }
  [[nodiscard]] bool contains(LinkId id) const {
    return id.valid() && id.value() < links_.size();
  }

  [[nodiscard]] const Node& node(NodeId id) const {
    if (!contains(id)) throw NotFoundError("node " + std::to_string(id.value()));
    return nodes_[id.value()];
  }

  [[nodiscard]] const Link& link(LinkId id) const {
    if (!contains(id)) throw NotFoundError("link " + std::to_string(id.value()));
    return links_[id.value()];
  }

  /// Links leaving `id`, in insertion order (deterministic).
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const {
    EONA_EXPECTS(contains(id));
    return out_links_[id.value()];
  }

  /// First link src -> dst if one exists; invalid LinkId otherwise.
  [[nodiscard]] LinkId find_link(NodeId src, NodeId dst) const {
    EONA_EXPECTS(contains(src) && contains(dst));
    for (LinkId lid : out_links_[src.value()])
      if (links_[lid.value()].dst == dst) return lid;
    return LinkId{};
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

}  // namespace eona::net
