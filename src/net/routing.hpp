// Shortest-path routing over the topology. Paths are sequences of link ids;
// Dijkstra runs on link propagation delay with deterministic tie-breaking
// (lower link id wins) so routes are reproducible.
//
// Failure awareness: a Routing with an attached LinkStateView (in practice
// the Network, which owns the dynamic up/down mask) excludes down links from
// every query, so shortest_path / path_via / path_via_link return live
// fallback routes during an outage. Query results are memoised in a
// fallback-path cache invalidated whenever the view's topology epoch moves
// (every link up/down transition), so steady-state routing -- with or
// without faults -- costs one Dijkstra per (src, dst) pair per epoch.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "net/topology.hpp"

namespace eona::net {

/// Read-only view of dynamic link health, implemented by net::Network. Lives
/// here (below Network in the dependency order) so Routing can consult the
/// dynamic up/down mask without depending on the flow table.
class LinkStateView {
 public:
  virtual ~LinkStateView() = default;
  /// False while the link is administratively/physically down.
  [[nodiscard]] virtual bool link_up(LinkId id) const = 0;
  /// Monotone counter bumped on every link up/down transition. Routing
  /// results are pure functions of (topology, epoch).
  [[nodiscard]] virtual std::uint64_t topology_epoch() const = 0;
};

/// An ordered sequence of links from a source node to a destination node.
/// Empty path means "src == dst" or "no route" depending on the query; use
/// Routing::has_route to disambiguate.
using Path = std::vector<LinkId>;

/// Total propagation delay along a path.
[[nodiscard]] Duration path_delay(const Topology& topo, const Path& path);

/// Validates that `path` is a contiguous walk from `src` to `dst` in `topo`.
[[nodiscard]] bool path_connects(const Topology& topo, const Path& path,
                                 NodeId src, NodeId dst);

/// Dijkstra shortest-path engine. Stateless between queries apart from the
/// topology reference; cheap enough to recompute on demand at the scales the
/// scenarios use (tens to hundreds of nodes).
class Routing {
 public:
  explicit Routing(const Topology& topo) : topo_(&topo) {}

  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// Attach (or detach with nullptr) the dynamic link-state view. With a
  /// view attached every query skips down links; with all links up the
  /// results are bit-identical to the unattached ones.
  void attach_link_state(const LinkStateView* view) {
    link_state_ = view;
    cache_.clear();
    cache_epoch_ = view != nullptr ? view->topology_epoch() : 0;
  }

  /// Shortest (min total delay) path src -> dst over the live links.
  /// Throws NotFoundError when no route exists.
  [[nodiscard]] Path shortest_path(NodeId src, NodeId dst) const;

  /// True when dst is reachable from src over the live links.
  [[nodiscard]] bool has_route(NodeId src, NodeId dst) const;

  /// Shortest path constrained to pass through `via` (e.g. a chosen peering
  /// point): concatenation of src->via and via->dst shortest paths.
  [[nodiscard]] Path path_via(NodeId src, NodeId via, NodeId dst) const;

  /// Shortest path that must traverse the specific link `via` as its
  /// entry into the second segment: src -> link.src, link, link.dst -> dst.
  /// The `via` link itself is used as demanded even when down (callers pick
  /// live peering points; asserting here would hide the real policy bug).
  [[nodiscard]] Path path_via_link(NodeId src, LinkId via, NodeId dst) const;

  /// Fallback-path cache entries currently held (observability for tests).
  [[nodiscard]] std::size_t cached_path_count() const { return cache_.size(); }

 private:
  /// Memoised shortest path; (re)computed when the (src, dst) pair misses
  /// or the link-state epoch moved since the cache was filled.
  const Path& cached_shortest(NodeId src, NodeId dst) const;

  const Topology* topo_;
  const LinkStateView* link_state_ = nullptr;

  // Fallback-path cache: (src, dst) -> shortest live path, valid for one
  // topology epoch. Mutable because queries are logically const.
  mutable std::unordered_map<std::uint64_t, Path> cache_;
  mutable std::uint64_t cache_epoch_ = 0;
};

}  // namespace eona::net
