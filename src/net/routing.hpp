// Shortest-path routing over the topology. Paths are sequences of link ids;
// Dijkstra runs on link propagation delay with deterministic tie-breaking
// (lower link id wins) so routes are reproducible.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "net/topology.hpp"

namespace eona::net {

/// An ordered sequence of links from a source node to a destination node.
/// Empty path means "src == dst" or "no route" depending on the query; use
/// Routing::has_route to disambiguate.
using Path = std::vector<LinkId>;

/// Total propagation delay along a path.
[[nodiscard]] Duration path_delay(const Topology& topo, const Path& path);

/// Validates that `path` is a contiguous walk from `src` to `dst` in `topo`.
[[nodiscard]] bool path_connects(const Topology& topo, const Path& path,
                                 NodeId src, NodeId dst);

/// Dijkstra shortest-path engine. Stateless between queries apart from the
/// topology reference; cheap enough to recompute on demand at the scales the
/// scenarios use (tens to hundreds of nodes).
class Routing {
 public:
  explicit Routing(const Topology& topo) : topo_(&topo) {}

  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// Shortest (min total delay) path src -> dst.
  /// Throws NotFoundError when no route exists.
  [[nodiscard]] Path shortest_path(NodeId src, NodeId dst) const;

  /// True when dst is reachable from src.
  [[nodiscard]] bool has_route(NodeId src, NodeId dst) const;

  /// Shortest path constrained to pass through `via` (e.g. a chosen peering
  /// point): concatenation of src->via and via->dst shortest paths.
  [[nodiscard]] Path path_via(NodeId src, NodeId via, NodeId dst) const;

  /// Shortest path that must traverse the specific link `via` as its
  /// entry into the second segment: src -> link.src, link, link.dst -> dst.
  [[nodiscard]] Path path_via_link(NodeId src, LinkId via, NodeId dst) const;

 private:
  const Topology* topo_;
};

}  // namespace eona::net
