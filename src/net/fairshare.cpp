#include "net/fairshare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace eona::net {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::uint32_t MaxMinSolver::find(std::uint32_t f) {
  while (parent_[f] != f) {
    parent_[f] = parent_[parent_[f]];
    f = parent_[f];
  }
  return f;
}

void MaxMinSolver::push_event(std::uint32_t link,
                              const std::vector<BitsPerSecond>& caps) {
  double level = (caps[link] - frozen_alloc_[link]) / active_[link];
  // Rounding in frozen_alloc_ can push the residual a hair below zero; a
  // zero-capacity (down) link must freeze its flows at exactly 0, never at
  // a negative share.
  if (level < 0.0) level = 0.0;
  heap_.push_back(Event{level, link, gen_[link]});
  has_event_[link] = 1;
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Event& a, const Event& b) {
                   if (a.level != b.level) return a.level > b.level;
                   if (a.link != b.link) return a.link > b.link;
                   return a.gen > b.gen;
                 });
}

void MaxMinSolver::solve(const Topology& topo,
                         const std::vector<FlowView>& flows,
                         const std::vector<BitsPerSecond>& capacities,
                         std::vector<BitsPerSecond>& rates) {
  EONA_EXPECTS(capacities.size() == topo.link_count());
  const std::size_t flow_count = flows.size();
  const std::size_t link_count = topo.link_count();
  rates.assign(flow_count, 0.0);
  frozen_.assign(flow_count, 0);
  parent_.resize(flow_count);

  if (owner_epoch_.size() < link_count) {
    owner_epoch_.resize(link_count, 0);
    owner_.resize(link_count, kNone);
    state_epoch_.resize(link_count, 0);
    active_.resize(link_count, 0);
    frozen_alloc_.resize(link_count, 0.0);
    saturated_.resize(link_count, 0);
    gen_.resize(link_count, 0);
    has_event_.resize(link_count, 0);
    adj_.resize(link_count);
  }
  ++epoch_;

  // Pass 1: settle trivial flows (zero demand, local) and union flows that
  // share a link. Links are "owned" by the first flow that touches them.
  std::size_t nontrivial = 0;
  for (std::size_t f = 0; f < flow_count; ++f) {
    EONA_EXPECTS(flows[f].demand >= 0.0);
    if (flows[f].demand <= kEps) {
      frozen_[f] = 1;  // zero-demand flows get zero
      continue;
    }
    if (flows[f].link_count == 0) {
      // Local flow: no shared links, gets its full demand immediately.
      // An elastic (infinite-demand) flow must cross at least one link.
      EONA_EXPECTS(std::isfinite(flows[f].demand));
      rates[f] = flows[f].demand;
      frozen_[f] = 1;
      continue;
    }
    ++nontrivial;
    auto pos = static_cast<std::uint32_t>(f);
    parent_[f] = pos;
    for (std::size_t i = 0; i < flows[f].link_count; ++i) {
      std::uint32_t l = flows[f].links[i].value();
      if (owner_epoch_[l] != epoch_) {
        owner_epoch_[l] = epoch_;
        owner_[l] = pos;
      } else {
        std::uint32_t a = find(pos);
        std::uint32_t b = find(owner_[l]);
        if (a != b) parent_[b] = a;
      }
    }
  }
  if (nontrivial == 0) return;

  // Pass 2: bucket flows into components, in first-appearance (= ascending
  // input position) order, then water-fill each component independently.
  root_comp_.assign(flow_count, kNone);
  std::size_t component_count = 0;
  for (std::size_t f = 0; f < flow_count; ++f) {
    if (frozen_[f]) continue;
    std::uint32_t root = find(static_cast<std::uint32_t>(f));
    if (root_comp_[root] == kNone) {
      root_comp_[root] = static_cast<std::uint32_t>(component_count);
      if (components_.size() <= component_count) components_.emplace_back();
      components_[component_count].clear();
      ++component_count;
    }
    components_[root_comp_[root]].push_back(static_cast<std::uint32_t>(f));
  }
  for (std::size_t c = 0; c < component_count; ++c)
    solve_component(components_[c], flows, capacities, rates);
}

void MaxMinSolver::solve_component(const std::vector<std::uint32_t>& comp,
                                   const std::vector<FlowView>& flows,
                                   const std::vector<BitsPerSecond>& caps,
                                   std::vector<BitsPerSecond>& rates) {
  // Initialise the component's link state. A link occurring k times in one
  // path is charged k times, mirroring how load accounting counts it.
  comp_links_.clear();
  for (std::uint32_t f : comp) {
    for (std::size_t i = 0; i < flows[f].link_count; ++i) {
      std::uint32_t l = flows[f].links[i].value();
      if (state_epoch_[l] != epoch_) {
        state_epoch_[l] = epoch_;
        active_[l] = 0;
        frozen_alloc_[l] = 0.0;
        saturated_[l] = 0;
        gen_[l] = 0;
        has_event_[l] = 0;
        adj_[l].clear();
        comp_links_.push_back(LinkId(static_cast<LinkId::rep_type>(l)));
      }
      ++active_[l];
      adj_[l].push_back(f);
    }
  }

  // Demand freeze order: ascending (demand, position). Every unfrozen flow
  // sits at the common water level, so the next demand to bind is always the
  // smallest remaining one -- a pointer scan, no per-round minimum.
  demand_order_.clear();
  for (std::uint32_t f : comp)
    if (std::isfinite(flows[f].demand))
      demand_order_.emplace_back(flows[f].demand, f);
  std::sort(demand_order_.begin(), demand_order_.end());
  std::size_t next_demand = 0;

  auto event_before = [](const Event& a, const Event& b) {
    if (a.level != b.level) return a.level > b.level;
    if (a.link != b.link) return a.link > b.link;
    return a.gen > b.gen;
  };
  heap_.clear();
  for (LinkId lid : comp_links_) push_event(lid.value(), caps);

  double level = 0.0;
  std::size_t unfrozen = comp.size();

  // Freezing only bumps the link generation; the replacement heap entry is
  // pushed lazily when the stale one reaches the top. A freeze can only
  // RAISE a link's saturation level (the frozen rate is at most the link's
  // equal share), so stale entries underestimate and popping them first is
  // safe. This keeps the heap at O(links) instead of O(freezes x pathlen).
  auto freeze = [&](std::uint32_t f, double rate) {
    frozen_[f] = 1;
    rates[f] = rate;
    --unfrozen;
    for (std::size_t i = 0; i < flows[f].link_count; ++i) {
      std::uint32_t l = flows[f].links[i].value();
      --active_[l];
      frozen_alloc_[l] += rate;
      ++gen_[l];
      has_event_[l] = 0;
    }
  };

  while (unfrozen > 0) {
    while (next_demand < demand_order_.size() &&
           frozen_[demand_order_[next_demand].second])
      ++next_demand;
    double t_demand = next_demand < demand_order_.size()
                          ? demand_order_[next_demand].first
                          : kInf;

    // Drop stale heap entries (the link's state moved since the push),
    // re-pushing the link's current event if it still needs one.
    while (!heap_.empty()) {
      Event top = heap_.front();
      if (saturated_[top.link] || gen_[top.link] != top.gen) {
        std::pop_heap(heap_.begin(), heap_.end(), event_before);
        heap_.pop_back();
        if (!saturated_[top.link] && !has_event_[top.link] &&
            active_[top.link] > 0)
          push_event(top.link, caps);
        continue;
      }
      break;
    }
    double t_link = heap_.empty() ? kInf : heap_.front().level;
    EONA_ASSERT(t_demand < kInf || t_link < kInf);

    if (t_demand <= t_link) {
      // The water level reaches one or more demand caps first.
      level = std::max(level, t_demand);
      while (next_demand < demand_order_.size() &&
             demand_order_[next_demand].first <= level + kEps) {
        auto [demand, f] = demand_order_[next_demand];
        ++next_demand;
        if (!frozen_[f]) freeze(f, std::min(level, demand));
      }
    } else {
      // A link saturates: every unfrozen flow crossing it freezes at the
      // current level. max() guards against rounding pushing an event
      // fractionally into the past after a neighbouring freeze.
      Event event = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), event_before);
      heap_.pop_back();
      level = std::max(level, event.level);
      saturated_[event.link] = 1;
      for (std::uint32_t f : adj_[event.link])
        if (!frozen_[f]) freeze(f, std::min(level, flows[f].demand));
    }
  }
}

std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows,
    const std::vector<BitsPerSecond>& capacities) {
  // Reuse one solver per thread so repeated calls keep their scratch
  // allocations warm (the solver is epoch-stamped, so no reset is needed).
  thread_local MaxMinSolver solver;
  thread_local std::vector<FlowView> views;
  views.clear();
  views.reserve(flows.size());
  for (const FlowSpec& spec : flows)
    views.push_back(FlowView{spec.path.data(), spec.path.size(), spec.demand});
  std::vector<BitsPerSecond> rates;
  solver.solve(topo, views, capacities, rates);
  return rates;
}

std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows) {
  std::vector<BitsPerSecond> capacities(topo.link_count());
  for (std::size_t l = 0; l < topo.link_count(); ++l)
    capacities[l] =
        topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
  return max_min_allocation(topo, flows, capacities);
}

}  // namespace eona::net
