#include "net/fairshare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace eona::net {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows) {
  std::vector<BitsPerSecond> capacities(topo.link_count());
  for (std::size_t l = 0; l < topo.link_count(); ++l)
    capacities[l] =
        topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
  return max_min_allocation(topo, flows, capacities);
}

std::vector<BitsPerSecond> max_min_allocation(
    const Topology& topo, const std::vector<FlowSpec>& flows,
    const std::vector<BitsPerSecond>& capacities) {
  EONA_EXPECTS(capacities.size() == topo.link_count());
  const std::size_t flow_count = flows.size();
  std::vector<BitsPerSecond> rate(flow_count, 0.0);
  std::vector<bool> frozen(flow_count, false);

  // Residual capacity per link and count of unfrozen flows per link.
  std::vector<double> residual = capacities;
  std::vector<int> active_on(topo.link_count(), 0);

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < flow_count; ++f) {
    EONA_EXPECTS(flows[f].demand >= 0.0);
    if (flows[f].demand <= kEps) {
      frozen[f] = true;  // zero-demand flows get zero
      continue;
    }
    if (flows[f].path.empty()) {
      // Local flow: no shared links, gets its full demand immediately.
      // An elastic (infinite-demand) flow must cross at least one link.
      EONA_EXPECTS(std::isfinite(flows[f].demand));
      rate[f] = flows[f].demand;
      frozen[f] = true;
      continue;
    }
    ++unfrozen;
    for (LinkId lid : flows[f].path) ++active_on[lid.value()];
  }

  while (unfrozen > 0) {
    // Uniform increment limited by (a) the tightest link's equal share and
    // (b) the smallest remaining demand among unfrozen flows.
    double inc = kInf;
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      if (active_on[l] > 0)
        inc = std::min(inc, residual[l] / active_on[l]);
    }
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (!frozen[f])
        inc = std::min(inc, flows[f].demand - rate[f]);
    }
    EONA_ASSERT(inc < kInf);
    inc = std::max(inc, 0.0);

    // Grow all unfrozen flows by inc and charge their links.
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (frozen[f]) continue;
      rate[f] += inc;
      for (LinkId lid : flows[f].path) residual[lid.value()] -= inc;
    }

    // Freeze demand-satisfied flows and flows crossing saturated links.
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (frozen[f]) continue;
      bool freeze = rate[f] >= flows[f].demand - kEps;
      if (!freeze) {
        for (LinkId lid : flows[f].path) {
          if (residual[lid.value()] <= kEps * capacities[lid.value()] + kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen[f] = true;
        --unfrozen;
        for (LinkId lid : flows[f].path) --active_on[lid.value()];
      }
    }
  }

  return rate;
}

}  // namespace eona::net
