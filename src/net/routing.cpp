#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace eona::net {

Duration path_delay(const Topology& topo, const Path& path) {
  Duration total = 0.0;
  for (LinkId lid : path) total += topo.link(lid).delay;
  return total;
}

bool path_connects(const Topology& topo, const Path& path, NodeId src,
                   NodeId dst) {
  NodeId at = src;
  for (LinkId lid : path) {
    if (!topo.contains(lid)) return false;
    const Link& link = topo.link(lid);
    if (link.src != at) return false;
    at = link.dst;
  }
  return at == dst;
}

namespace {

struct DijkstraResult {
  std::vector<Duration> dist;
  std::vector<LinkId> via;  // link used to reach each node
  bool reached(NodeId n) const {
    return dist[n.value()] < std::numeric_limits<Duration>::infinity();
  }
};

DijkstraResult dijkstra(const Topology& topo, NodeId src,
                        const LinkStateView* state) {
  constexpr Duration kInf = std::numeric_limits<Duration>::infinity();
  DijkstraResult result{std::vector<Duration>(topo.node_count(), kInf),
                        std::vector<LinkId>(topo.node_count())};
  result.dist[src.value()] = 0.0;

  using QueueEntry = std::pair<Duration, NodeId::rep_type>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  frontier.push({0.0, src.value()});

  while (!frontier.empty()) {
    auto [d, u] = frontier.top();
    frontier.pop();
    if (d > result.dist[u]) continue;  // stale entry
    for (LinkId lid : topo.out_links(NodeId(u))) {
      if (state != nullptr && !state->link_up(lid)) continue;  // dead link
      const Link& link = topo.link(lid);
      Duration nd = d + link.delay;
      auto v = link.dst.value();
      // Strict improvement, or equal cost broken towards the smaller link id
      // for determinism.
      if (nd < result.dist[v] ||
          (nd == result.dist[v] && result.via[v].valid() &&
           lid < result.via[v])) {
        result.dist[v] = nd;
        result.via[v] = lid;
        frontier.push({nd, v});
      }
    }
  }
  return result;
}

Path extract_path(const Topology& topo, const DijkstraResult& result,
                  NodeId src, NodeId dst) {
  Path reversed;
  NodeId at = dst;
  while (at != src) {
    LinkId lid = result.via[at.value()];
    EONA_ASSERT(lid.valid());
    reversed.push_back(lid);
    at = topo.link(lid).src;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

}  // namespace

const Path& Routing::cached_shortest(NodeId src, NodeId dst) const {
  std::uint64_t epoch = link_state_ != nullptr
                            ? link_state_->topology_epoch()
                            : 0;
  if (epoch != cache_epoch_) {
    cache_.clear();
    cache_epoch_ = epoch;
  }
  std::uint64_t key = (static_cast<std::uint64_t>(src.value()) << 32) |
                      static_cast<std::uint64_t>(dst.value());
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  DijkstraResult result = dijkstra(*topo_, src, link_state_);
  if (!result.reached(dst))
    throw NotFoundError("no route " + topo_->node(src).name + " -> " +
                        topo_->node(dst).name);
  return cache_.emplace(key, extract_path(*topo_, result, src, dst))
      .first->second;
}

Path Routing::shortest_path(NodeId src, NodeId dst) const {
  EONA_EXPECTS(topo_->contains(src) && topo_->contains(dst));
  if (src == dst) return {};
  return cached_shortest(src, dst);
}

bool Routing::has_route(NodeId src, NodeId dst) const {
  EONA_EXPECTS(topo_->contains(src) && topo_->contains(dst));
  if (src == dst) return true;
  return dijkstra(*topo_, src, link_state_).reached(dst);
}

Path Routing::path_via(NodeId src, NodeId via, NodeId dst) const {
  Path first = shortest_path(src, via);
  Path second = shortest_path(via, dst);
  first.insert(first.end(), second.begin(), second.end());
  return first;
}

Path Routing::path_via_link(NodeId src, LinkId via, NodeId dst) const {
  EONA_EXPECTS(topo_->contains(via));
  const Link& link = topo_->link(via);
  Path path = shortest_path(src, link.src);
  path.push_back(via);
  Path tail = shortest_path(link.dst, dst);
  path.insert(path.end(), tail.begin(), tail.end());
  return path;
}

}  // namespace eona::net
