// Dynamic flow-level network: live flows over a Topology with max-min fair
// rate allocation recomputed on every change.
//
// Mutations (add/remove/reroute/set_demand) trigger: before_change hook ->
// apply mutation -> recompute rates -> after_change hook. The hooks let the
// TransferManager integrate delivered bits under the old rate vector before
// rates move (see transfer.hpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/fairshare.hpp"
#include "net/topology.hpp"

namespace eona::net {

/// Demand value for an elastic (TCP-like) flow limited only by the network.
inline constexpr BitsPerSecond kElasticDemand =
    std::numeric_limits<BitsPerSecond>::infinity();

/// Live flow-level network state.
class Network {
 public:
  using Hook = std::function<void()>;

  explicit Network(const Topology& topo)
      : topo_(&topo),
        link_capacity_(topo.link_count(), 0.0),
        link_allocated_(topo.link_count(), 0.0),
        link_flows_(topo.link_count(), 0) {
    for (std::size_t l = 0; l < topo.link_count(); ++l)
      link_capacity_[l] =
          topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
  }

  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// Install hooks around state changes. Pass nullptr to clear.
  void set_change_hooks(Hook before, Hook after) {
    before_change_ = std::move(before);
    after_change_ = std::move(after);
  }

  /// Admit a new flow on `path` with the given demand ceiling.
  FlowId add_flow(Path path, BitsPerSecond demand = kElasticDemand) {
    validate_path(path);
    EONA_EXPECTS(demand >= 0.0);
    EONA_EXPECTS(!path.empty() || std::isfinite(demand));
    fire_before();
    FlowId id(next_flow_id_++);
    flows_.emplace(id, FlowState{std::move(path), demand, 0.0});
    recompute();
    fire_after();
    return id;
  }

  void remove_flow(FlowId id) {
    require(id);
    fire_before();
    flows_.erase(id);
    recompute();
    fire_after();
  }

  /// Change a flow's demand ceiling (e.g. the player picked a new bitrate).
  void set_demand(FlowId id, BitsPerSecond demand) {
    EONA_EXPECTS(demand >= 0.0);
    FlowState& flow = require(id);
    if (flow.demand == demand) return;
    EONA_EXPECTS(!flow.path.empty() || std::isfinite(demand));
    fire_before();
    flow.demand = demand;
    recompute();
    fire_after();
  }

  /// Move a flow to a new path (e.g. the ISP changed its egress point).
  void reroute(FlowId id, Path path) {
    validate_path(path);
    FlowState& flow = require(id);
    EONA_EXPECTS(!path.empty() || std::isfinite(flow.demand));
    fire_before();
    flow.path = std::move(path);
    recompute();
    fire_after();
  }

  [[nodiscard]] bool contains(FlowId id) const { return flows_.count(id) > 0; }

  /// Currently allocated max-min fair rate of the flow.
  [[nodiscard]] BitsPerSecond rate(FlowId id) const {
    return require(id).rate;
  }

  [[nodiscard]] BitsPerSecond demand(FlowId id) const {
    return require(id).demand;
  }

  [[nodiscard]] const Path& path(FlowId id) const { return require(id).path; }

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  /// Sum of allocated flow rates on the link.
  [[nodiscard]] BitsPerSecond link_allocated(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return link_allocated_[id.value()];
  }

  /// Current (dynamic) capacity of the link. Starts at the topology value.
  [[nodiscard]] BitsPerSecond link_capacity(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return link_capacity_[id.value()];
  }

  /// Change a link's effective capacity (degradation, server shutdown,
  /// maintenance). Capacity 0 starves every flow crossing the link.
  void set_link_capacity(LinkId id, BitsPerSecond capacity) {
    EONA_EXPECTS(topo_->contains(id));
    EONA_EXPECTS(capacity >= 0.0);
    if (link_capacity_[id.value()] == capacity) return;
    fire_before();
    link_capacity_[id.value()] = capacity;
    recompute();
    fire_after();
  }

  /// allocated / capacity, in [0, 1] modulo floating-point slack.
  /// A zero-capacity link reports utilisation 1 (unusable).
  [[nodiscard]] double link_utilization(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    BitsPerSecond cap = link_capacity_[id.value()];
    if (cap <= 0.0) return 1.0;
    return link_allocated_[id.value()] / cap;
  }

  /// Number of flows currently crossing the link.
  [[nodiscard]] int link_flow_count(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return link_flows_[id.value()];
  }

  /// A link is congested when it is nearly fully allocated and some flow on
  /// it wanted more (its demand was not met). This is the signal an InfP
  /// would derive from queue buildup / loss in a real network.
  [[nodiscard]] bool link_congested(LinkId id, double threshold = 0.98) const;

  /// Number of rate recomputations so far (for perf accounting in benches).
  [[nodiscard]] std::uint64_t recompute_count() const {
    return recompute_count_;
  }

  /// Flows currently crossing a link, in ascending flow-id order
  /// (deterministic). O(F * path length).
  [[nodiscard]] std::vector<FlowId> flows_on(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    std::vector<FlowId> result;
    for (const auto& [fid, flow] : flows_)
      for (LinkId lid : flow.path)
        if (lid == id) {
          result.push_back(fid);
          break;
        }
    std::sort(result.begin(), result.end());
    return result;
  }

  /// Source node of a flow (src of its first link); invalid for local flows.
  [[nodiscard]] NodeId flow_src(FlowId id) const {
    const FlowState& flow = require(id);
    if (flow.path.empty()) return NodeId{};
    return topo_->link(flow.path.front()).src;
  }

  /// Destination node of a flow (dst of its last link); invalid for local.
  [[nodiscard]] NodeId flow_dst(FlowId id) const {
    const FlowState& flow = require(id);
    if (flow.path.empty()) return NodeId{};
    return topo_->link(flow.path.back()).dst;
  }

  /// Rough fair share a hypothetical new flow would get on `path`: the
  /// minimum over links of capacity / (flows + 1). Used by oracle-grade
  /// controllers that may introspect the network directly.
  [[nodiscard]] BitsPerSecond predicted_share(const Path& path) const {
    BitsPerSecond share = std::numeric_limits<BitsPerSecond>::infinity();
    for (LinkId lid : path) {
      EONA_EXPECTS(topo_->contains(lid));
      BitsPerSecond cap = link_capacity_[lid.value()];
      share = std::min(
          share, cap / static_cast<double>(link_flows_[lid.value()] + 1));
    }
    return share;
  }

 private:
  struct FlowState {
    Path path;
    BitsPerSecond demand;
    BitsPerSecond rate;
  };

  void validate_path(const Path& path) const {
    for (LinkId lid : path)
      if (!topo_->contains(lid)) throw NotFoundError("link in path");
  }

  FlowState& require(FlowId id) {
    auto it = flows_.find(id);
    if (it == flows_.end())
      throw NotFoundError("flow " + std::to_string(id.value()));
    return it->second;
  }
  const FlowState& require(FlowId id) const {
    auto it = flows_.find(id);
    if (it == flows_.end())
      throw NotFoundError("flow " + std::to_string(id.value()));
    return it->second;
  }

  void fire_before() {
    if (before_change_ && !in_hook_) {
      in_hook_ = true;
      before_change_();
      in_hook_ = false;
    }
  }
  void fire_after() {
    if (after_change_ && !in_hook_) {
      in_hook_ = true;
      after_change_();
      in_hook_ = false;
    }
  }

  void recompute();

  const Topology* topo_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::vector<BitsPerSecond> link_capacity_;
  std::vector<BitsPerSecond> link_allocated_;
  std::vector<int> link_flows_;
  Hook before_change_;
  Hook after_change_;
  bool in_hook_ = false;
  FlowId::rep_type next_flow_id_ = 0;
  std::uint64_t recompute_count_ = 0;
};

}  // namespace eona::net
