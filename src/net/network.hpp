// Dynamic flow-level network: live flows over a Topology with max-min fair
// rate allocation kept current across changes.
//
// Mutations (add/remove/reroute/set_demand/set_link_capacity) trigger:
// apply mutation -> recompute rates -> rates-changed hook. The hook reports
// exactly the flows whose allocated rate actually moved (plus zero-rate
// flows whose path is down, so stranding is always observable), which lets
// the TransferManager bank delivered bits lazily per transfer and re-predict
// only the completions that shifted -- O(changed) per mutation instead of
// O(all transfers) (see transfer.hpp).
//
// Batching: any number of mutations can be coalesced into one recompute and
// one rates-changed callback with begin_batch()/commit() or the RAII
// Network::Batch. Inside a batch structural state (flow table, per-link
// indices) updates immediately, and rates stay stale until commit. An empty
// batch fires no hook and solves nothing.
//
// Recompute is incremental: the network maintains a per-link flow index, and
// a commit re-solves only the dirty component -- the changed flows plus
// everything transitively sharing a link with them (BFS over the conflict
// graph, seeded with the links the mutations touched). Because the solver
// water-fills each connected component independently (see fairshare.hpp),
// the incremental result is bit-identical to a from-scratch solve.
//
// Link up/down: the Topology stays immutable; the Network overlays a dynamic
// up/down mask. A down link has effective capacity 0 (its flows' shares
// collapse to exactly 0 -- stranded, see transfer.hpp), while its configured
// capacity survives the outage and is restored on link up. Each up/down
// transition bumps the topology epoch, the signal Routing uses to invalidate
// its fallback-path cache (the Network implements LinkStateView).
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/fairshare.hpp"
#include "net/topology.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::net {

/// Demand value for an elastic (TCP-like) flow limited only by the network.
inline constexpr BitsPerSecond kElasticDemand =
    std::numeric_limits<BitsPerSecond>::infinity();

/// One entry of a rates-changed report: flow + its freshly allocated rate.
struct RateChange {
  FlowId flow;
  BitsPerSecond rate = 0.0;
};

/// Live flow-level network state.
class Network : public LinkStateView {
 public:
  /// Called after each recompute with the flows whose rate moved, in
  /// ascending flow-id order (deterministic). Flows whose recomputed rate is
  /// 0 with a down link on their path are always included even if the rate
  /// did not change, so a reroute onto a dead path is observable.
  using RatesChangedHook = std::function<void(const std::vector<RateChange>&)>;

  /// How commits re-solve rates. kIncremental (default) solves only the
  /// dirty component; kFullSolve re-solves every flow on every commit (the
  /// pre-incremental behaviour, kept as a bench baseline and test oracle --
  /// both modes produce bit-identical rate vectors).
  enum class RecomputeMode { kIncremental, kFullSolve };

  explicit Network(const Topology& topo,
                   RecomputeMode mode = RecomputeMode::kIncremental)
      : topo_(&topo),
        mode_(mode),
        link_capacity_(topo.link_count(), 0.0),
        link_up_(topo.link_count(), 1),
        link_allocated_(topo.link_count(), 0.0),
        link_slots_(topo.link_count()),
        link_visit_(topo.link_count(), 0) {
    for (std::size_t l = 0; l < topo.link_count(); ++l)
      link_capacity_[l] =
          topo.link(LinkId(static_cast<LinkId::rep_type>(l))).capacity;
    effective_capacity_ = link_capacity_;
  }

  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// Install the rates-changed hook. Pass nullptr to clear.
  void set_rates_changed_hook(RatesChangedHook hook) {
    rates_changed_ = std::move(hook);
  }

  /// Emit RateRecomputeEvent and LinkSaturationEvent transitions on `bus`,
  /// timestamped from `clock`. Pass nullptrs to detach. Purely
  /// observational: rate allocation is identical with or without a bus.
  void set_event_bus(sim::EventBus* bus, const sim::Scheduler* clock) {
    EONA_EXPECTS((bus == nullptr) == (clock == nullptr));
    bus_ = bus;
    clock_ = clock;
    if (bus_ != nullptr && link_saturated_.empty())
      link_saturated_.assign(topo_->link_count(), 0);
  }

  /// Utilization at or above this is reported as saturated on the bus.
  static constexpr double kSaturationThreshold = 0.98;

  // --- batching ------------------------------------------------------------

  /// Open a batch: mutations apply immediately (structurally) but the rate
  /// solve and the rates-changed hook are deferred to the matching
  /// commit(). Batches nest; only the outermost commit recomputes.
  void begin_batch() { ++batch_depth_; }

  /// Close the innermost batch. Closing the outermost batch runs one rate
  /// recompute and fires the rates-changed hook -- iff the batch mutated
  /// anything.
  void commit() {
    EONA_EXPECTS(batch_depth_ > 0);
    if (--batch_depth_ > 0) return;
    if (!batch_mutated_) return;
    batch_mutated_ = false;
    recompute();
    fire_rates_changed();
  }

  /// RAII batch guard: opens a batch on construction, commits on
  /// destruction (also during unwinding, so mutations that succeeded before
  /// an exception still land consistently).
  class Batch {
   public:
    explicit Batch(Network& net) : net_(&net) { net_->begin_batch(); }
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;
    ~Batch() {
      if (net_ == nullptr) return;
      try {
        net_->commit();
      } catch (...) {
        // Destructors must not throw; a hook failure during unwinding is
        // dropped rather than terminating the process.
      }
    }
    /// Commit early (e.g. to observe the new rates before scope exit).
    void commit() {
      Network* net = net_;
      net_ = nullptr;
      net->commit();
    }

   private:
    Network* net_;
  };

  /// True while inside an open batch (rates may be stale).
  [[nodiscard]] bool in_batch() const { return batch_depth_ > 0; }

  // --- mutations -----------------------------------------------------------

  /// Admit a new flow on `path` with the given demand ceiling.
  FlowId add_flow(Path path, BitsPerSecond demand = kElasticDemand) {
    validate_path(path);
    EONA_EXPECTS(demand >= 0.0);
    EONA_EXPECTS(!path.empty() || std::isfinite(demand));
    FlowId id(next_flow_id_++);
    std::uint32_t slot = alloc_slot();
    FlowState& flow = slots_[slot];
    flow.path = std::move(path);
    flow.demand = demand;
    flow.rate = 0.0;
    flow.id = id;
    flow.alive = true;
    slot_of_.emplace(id, slot);
    index_add(slot);
    dirty_slots_.push_back(slot);
    end_mutation();
    return id;
  }

  void remove_flow(FlowId id) {
    std::uint32_t slot = require_slot(id);
    FlowState& flow = slots_[slot];
    for (LinkId lid : flow.path) dirty_links_.push_back(lid);
    index_remove(slot);
    flow.alive = false;
    flow.path.clear();
    slot_of_.erase(id);
    free_slots_.push_back(slot);
    end_mutation();
  }

  /// Change a flow's demand ceiling (e.g. the player picked a new bitrate).
  void set_demand(FlowId id, BitsPerSecond demand) {
    EONA_EXPECTS(demand >= 0.0);
    std::uint32_t slot = require_slot(id);
    FlowState& flow = slots_[slot];
    if (flow.demand == demand) return;
    EONA_EXPECTS(!flow.path.empty() || std::isfinite(demand));
    flow.demand = demand;
    dirty_slots_.push_back(slot);
    end_mutation();
  }

  /// Move a flow to a new path (e.g. the ISP changed its egress point).
  void reroute(FlowId id, Path path) {
    validate_path(path);
    std::uint32_t slot = require_slot(id);
    FlowState& flow = slots_[slot];
    EONA_EXPECTS(!path.empty() || std::isfinite(flow.demand));
    for (LinkId lid : flow.path) dirty_links_.push_back(lid);
    index_remove(slot);
    flow.path = std::move(path);
    index_add(slot);
    dirty_slots_.push_back(slot);
    end_mutation();
  }

  /// Change a link's configured capacity (degradation, server shutdown,
  /// maintenance). Capacity 0 starves every flow crossing the link with
  /// exactly-zero shares. A down link keeps effective capacity 0; the new
  /// configured value takes effect when the link comes back up.
  void set_link_capacity(LinkId id, BitsPerSecond capacity) {
    EONA_EXPECTS(topo_->contains(id));
    EONA_EXPECTS(capacity >= 0.0);
    if (link_capacity_[id.value()] == capacity) return;
    link_capacity_[id.value()] = capacity;
    if (link_up_[id.value()]) effective_capacity_[id.value()] = capacity;
    dirty_links_.push_back(id);
    end_mutation();
  }

  /// Take a link down (its flows strand at rate exactly 0, routing stops
  /// using it) or bring it back up at its configured capacity. Each
  /// transition bumps the topology epoch. Idempotent per state.
  void set_link_up(LinkId id, bool up) {
    EONA_EXPECTS(topo_->contains(id));
    if (static_cast<bool>(link_up_[id.value()]) == up) return;
    link_up_[id.value()] = up ? 1 : 0;
    effective_capacity_[id.value()] = up ? link_capacity_[id.value()] : 0.0;
    ++topology_epoch_;
    dirty_links_.push_back(id);
    end_mutation();
  }

  // --- flow accessors ------------------------------------------------------

  [[nodiscard]] bool contains(FlowId id) const {
    return slot_of_.count(id) > 0;
  }

  /// Currently allocated max-min fair rate of the flow. Stale inside an
  /// open batch (rates move at commit).
  [[nodiscard]] BitsPerSecond rate(FlowId id) const {
    return slots_[require_slot(id)].rate;
  }

  [[nodiscard]] BitsPerSecond demand(FlowId id) const {
    return slots_[require_slot(id)].demand;
  }

  [[nodiscard]] const Path& path(FlowId id) const {
    return slots_[require_slot(id)].path;
  }

  [[nodiscard]] std::size_t flow_count() const { return slot_of_.size(); }

  /// Source node of a flow (src of its first link); invalid for local flows.
  [[nodiscard]] NodeId flow_src(FlowId id) const {
    const FlowState& flow = slots_[require_slot(id)];
    if (flow.path.empty()) return NodeId{};
    return topo_->link(flow.path.front()).src;
  }

  /// Destination node of a flow (dst of its last link); invalid for local.
  [[nodiscard]] NodeId flow_dst(FlowId id) const {
    const FlowState& flow = slots_[require_slot(id)];
    if (flow.path.empty()) return NodeId{};
    return topo_->link(flow.path.back()).dst;
  }

  // --- link accessors ------------------------------------------------------

  /// Sum of allocated flow rates on the link.
  [[nodiscard]] BitsPerSecond link_allocated(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return link_allocated_[id.value()];
  }

  /// Current effective capacity of the link: the configured value while the
  /// link is up, 0 while it is down. Starts at the topology value. This is
  /// what controllers see -- an outage reads as capacity 0.
  [[nodiscard]] BitsPerSecond link_capacity(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return effective_capacity_[id.value()];
  }

  /// Configured capacity, independent of the up/down state (what the link
  /// returns to on link up).
  [[nodiscard]] BitsPerSecond configured_link_capacity(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return link_capacity_[id.value()];
  }

  /// Dynamic link health (LinkStateView). All links start up.
  [[nodiscard]] bool link_up(LinkId id) const override {
    EONA_EXPECTS(topo_->contains(id));
    return link_up_[id.value()] != 0;
  }

  /// Monotone up/down transition counter (LinkStateView); Routing's
  /// fallback-path cache is valid for exactly one epoch.
  [[nodiscard]] std::uint64_t topology_epoch() const override {
    return topology_epoch_;
  }

  /// True when every link on `path` is up (an empty path is trivially up).
  [[nodiscard]] bool path_up(const Path& path) const {
    for (LinkId lid : path)
      if (!link_up_[lid.value()]) return false;
    return true;
  }

  /// allocated / effective capacity, in [0, 1] modulo floating-point slack.
  /// A zero-capacity (or down) link reports utilisation 1 (unusable).
  [[nodiscard]] double link_utilization(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    BitsPerSecond cap = effective_capacity_[id.value()];
    if (cap <= 0.0) return 1.0;
    return link_allocated_[id.value()] / cap;
  }

  /// Number of flows currently crossing the link (kept incrementally by the
  /// per-link flow index; a flow whose path repeats a link counts once per
  /// occurrence, matching load accounting).
  [[nodiscard]] int link_flow_count(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    return static_cast<int>(link_slots_[id.value()].size());
  }

  /// A link is congested when it is nearly fully allocated and some flow on
  /// it wanted more (its demand was not met). This is the signal an InfP
  /// would derive from queue buildup / loss in a real network.
  [[nodiscard]] bool link_congested(LinkId id, double threshold = 0.98) const;

  /// Number of rate recomputations so far (for perf accounting in benches):
  /// one per unbatched mutation, one per non-empty batch commit.
  [[nodiscard]] std::uint64_t recompute_count() const {
    return recompute_count_;
  }

  /// Flows currently crossing a link, in ascending flow-id order
  /// (deterministic). Reads the per-link flow index: O(k log k) in the
  /// number of flows on the link, independent of total flow count.
  [[nodiscard]] std::vector<FlowId> flows_on(LinkId id) const {
    EONA_EXPECTS(topo_->contains(id));
    std::vector<FlowId> result;
    result.reserve(link_slots_[id.value()].size());
    for (std::uint32_t slot : link_slots_[id.value()])
      result.push_back(slots_[slot].id);
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
  }

  /// Rough fair share a hypothetical new flow would get on `path`: the
  /// minimum over links of capacity / (flows + 1). Used by oracle-grade
  /// controllers that may introspect the network directly.
  [[nodiscard]] BitsPerSecond predicted_share(const Path& path) const {
    BitsPerSecond share = std::numeric_limits<BitsPerSecond>::infinity();
    for (LinkId lid : path) {
      EONA_EXPECTS(topo_->contains(lid));
      BitsPerSecond cap = effective_capacity_[lid.value()];
      share = std::min(
          share,
          cap / static_cast<double>(link_slots_[lid.value()].size() + 1));
    }
    return share;
  }

 private:
  struct FlowState {
    Path path;
    BitsPerSecond demand = 0.0;
    BitsPerSecond rate = 0.0;
    FlowId id;
    bool alive = false;
  };

  void validate_path(const Path& path) const {
    for (LinkId lid : path)
      if (!topo_->contains(lid)) throw NotFoundError("link in path");
  }

  [[nodiscard]] std::uint32_t require_slot(FlowId id) const {
    auto it = slot_of_.find(id);
    if (it == slot_of_.end())
      throw NotFoundError("flow " + std::to_string(id.value()));
    return it->second;
  }

  std::uint32_t alloc_slot() {
    if (!free_slots_.empty()) {
      std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    slot_visit_.push_back(0);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void index_add(std::uint32_t slot) {
    for (LinkId lid : slots_[slot].path)
      link_slots_[lid.value()].push_back(slot);
  }

  /// Remove one index entry per path occurrence (swap-pop; order is not
  /// meaningful, flows_on() sorts).
  void index_remove(std::uint32_t slot) {
    for (LinkId lid : slots_[slot].path) {
      auto& entries = link_slots_[lid.value()];
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i] == slot) {
          entries[i] = entries.back();
          entries.pop_back();
          break;
        }
      }
    }
  }

  /// Tail of every mutation: recompute + rates-changed hook immediately
  /// when unbatched, deferred to commit() inside a batch.
  void end_mutation() {
    if (batch_depth_ > 0) {
      batch_mutated_ = true;
      return;
    }
    recompute();
    fire_rates_changed();
  }

  void fire_rates_changed() {
    if (rates_changed_ && !in_hook_) {
      in_hook_ = true;
      rates_changed_(rate_changes_);
      in_hook_ = false;
    }
  }

  void recompute();
  /// Publish recompute + saturation-transition events (bus attached only).
  void emit_recompute_events();

  const Topology* topo_;
  RecomputeMode mode_;

  sim::EventBus* bus_ = nullptr;
  const sim::Scheduler* clock_ = nullptr;
  std::vector<char> link_saturated_;  ///< last reported saturation state

  // Flow storage: a stable flat vector of slots (freed slots are recycled)
  // plus an id -> slot index. Flow ids are never reused.
  std::vector<FlowState> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<FlowId, std::uint32_t> slot_of_;

  std::vector<BitsPerSecond> link_capacity_;   ///< configured
  std::vector<BitsPerSecond> effective_capacity_;  ///< configured gated by up
  std::vector<char> link_up_;
  std::uint64_t topology_epoch_ = 0;
  std::vector<BitsPerSecond> link_allocated_;
  // Per-link flow index: slots of the flows crossing each link, one entry
  // per path occurrence. Kept current structurally even mid-batch.
  std::vector<std::vector<std::uint32_t>> link_slots_;

  // Dirty state accumulated since the last recompute: flows whose spec
  // changed, and links whose capacity or flow set changed.
  std::vector<std::uint32_t> dirty_slots_;
  std::vector<LinkId> dirty_links_;

  // Scratch for the dirty-component BFS and the solver (see network.cpp).
  std::vector<std::uint64_t> link_visit_;
  std::vector<std::uint64_t> slot_visit_;
  std::uint64_t visit_epoch_ = 0;
  std::vector<std::uint32_t> affected_slots_;
  std::vector<LinkId> affected_links_;
  std::vector<FlowView> solve_views_;
  std::vector<BitsPerSecond> solve_rates_;
  MaxMinSolver solver_;

  // Flows whose rate moved in the last recompute (ascending flow id),
  // handed to the rates-changed hook. Member to reuse capacity.
  std::vector<RateChange> rate_changes_;

  RatesChangedHook rates_changed_;
  bool in_hook_ = false;
  int batch_depth_ = 0;
  bool batch_mutated_ = false;
  FlowId::rep_type next_flow_id_ = 0;
  std::uint64_t recompute_count_ = 0;
};

}  // namespace eona::net
