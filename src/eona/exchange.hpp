// The brokered interface plane (ROADMAP item 1; AONA's "global
// collaboration" step). Instead of each AppP hand-wiring a ReportChannel to
// each InfP, every tenant registers with one eona::Exchange and all A2I/I2A
// flow crosses it:
//
//  * registration    -- AppPs and InfPs enroll once; the broker mints the
//                       bearer tokens for every leg it wires, so tenants
//                       never exchange credentials directly;
//  * trust levels    -- each tenant pair is wired at a TrustLevel that
//                       redacts attribute sets (policy.hpp) before delivery;
//                       kFull reproduces direct wiring byte-for-byte;
//  * rate limiting   -- each I2A leg carries a deterministic token bucket,
//                       so one chatty InfP cannot flood a tenant's fetchers;
//  * egress quotas   -- per-AppP egress-share quotas are enforced on the
//                       broker's A2I path: a tenant's exported traffic
//                       forecasts are clamped to its share of the exchange's
//                       egress reference *before* any InfP sees them. The
//                       clamp lives here, not in the (untrusted) client.
//
// Each producer tenant keeps one LookingGlass inside the broker, so all
// per-leg semantics -- per-peer policy application, propagation delay,
// FaultProfile, bus events, ChannelStats -- are exactly those of the
// pre-broker point-to-point channels.
//
// The broker is *mortal* (ChaosEngine `crash:exchange@t` /
// `restart:exchange@t`). A crash bumps the broker epoch -- invalidating
// every outstanding bearer token -- and tears down all brokered legs, so
// undelivered pre-crash reports die with the broker. While crashed (or
// holding a stale epoch) publishes are rejected and counted in
// `epoch_rejected`, and fetches answer nullopt so consumers degrade to
// last-known-good data instead of blocking. After a restart every tenant
// re-admits itself through ExchangeEndpoint's seeded jittered backoff
// handshake; the legs are reconstructed deterministically from the durable
// wiring record (same tokens, same trust-redacted policies, same rate
// buckets), so quota containment holds across the outage.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "eona/channel.hpp"
#include "eona/endpoint.hpp"
#include "eona/messages.hpp"
#include "eona/policy.hpp"
#include "eona/registry.hpp"
#include "sim/scheduler.hpp"

namespace eona::core {

/// Broker-enforced resource quota for one AppP tenant.
struct TenantQuota {
  /// Fraction of the exchange's egress reference this tenant's forecasts may
  /// claim per ISP. 1.0 (with the default infinite reference) never clamps.
  double egress_share = 1.0;

  friend bool operator==(const TenantQuota&, const TenantQuota&) = default;
};

/// Everything one (AppP, InfP) pairing needs: per-direction staleness,
/// policies and fault profiles (the same knobs the point-to-point wiring
/// exposed), plus the broker's trust level and I2A rate budget.
struct TenantLink {
  Duration a2i_delay = 0.0;
  Duration i2a_delay = 0.0;
  A2IPolicy a2i_policy{};
  I2APolicy i2a_policy{};
  FaultProfile a2i_fault{};
  FaultProfile i2a_fault{};
  TrustLevel trust = TrustLevel::kFull;
  RateLimit i2a_rate{};  ///< token bucket on the broker's I2A leg
};

/// Brokered N AppP x M InfP interface plane; see file header.
class Exchange {
 public:
  explicit Exchange(const ProviderRegistry& registry) : registry_(registry) {}

  Exchange(const Exchange&) = delete;
  Exchange& operator=(const Exchange&) = delete;

  /// Emit channel events for every tenant glass (current and future).
  void set_event_bus(sim::EventBus* bus);

  // --- registration (valid mid-run: tenant churn) ---
  void register_appp(ProviderId id, TenantQuota quota = {});
  void register_infp(ProviderId id);
  /// Drop a tenant: unwires every leg it participates in first.
  void unregister_appp(ProviderId id);
  void unregister_infp(ProviderId id);
  [[nodiscard]] bool has_appp(ProviderId id) const {
    return appps_.count(id) > 0;
  }
  [[nodiscard]] bool has_infp(ProviderId id) const {
    return infps_.count(id) > 0;
  }
  [[nodiscard]] std::size_t appp_count() const { return appps_.size(); }
  [[nodiscard]] std::size_t infp_count() const { return infps_.size(); }

  /// Replace an AppP's quota (scenario setup).
  void set_quota(ProviderId appp, TenantQuota quota);
  [[nodiscard]] const TenantQuota& quota(ProviderId appp) const;

  /// Rescale every AppP's egress share by the current total so the shares
  /// sum to exactly 1 again. Churn hooks call this after a tenant joins or
  /// leaves mid-run, keeping the quota invariant across re-registration.
  void renormalize_quotas();
  /// Sum of all registered AppPs' egress shares.
  [[nodiscard]] double total_egress_share() const;

  /// The egress capacity the quota shares refer to (per ISP). Default is
  /// infinite: no clamp ever fires, reproducing unbrokered behaviour.
  void set_egress_reference(BitsPerSecond reference);
  [[nodiscard]] BitsPerSecond egress_reference() const {
    return egress_reference_;
  }

  /// Wire both directions between a registered AppP and InfP. Mints both
  /// bearer tokens, applies the link's trust level to its policies, and
  /// attaches the I2A leg's token bucket. Order of channel creation matches
  /// the old point-to-point wire_eona helper exactly. The link parameters
  /// are recorded durably so a post-crash reattach (and nothing else)
  /// reconstructs the identical legs.
  void wire(ProviderId appp, ProviderId infp, const TenantLink& link = {});
  /// Undo a wire(): revoke both legs, retire their tokens and stats, and
  /// erase the durable link record.
  void unwire(ProviderId appp, ProviderId infp);
  [[nodiscard]] bool wired(ProviderId appp, ProviderId infp) const {
    return links_.count({appp, infp}) > 0;
  }

  // --- broker lifecycle (ChaosEngine `crash:exchange` / `restart:exchange`) ---
  /// Broker dies: the epoch is bumped (every outstanding bearer token is now
  /// stale) and all brokered legs are torn down, losing undelivered reports.
  /// Registration, quota, and durable wiring records survive -- they are the
  /// state a real broker recovers from its registry on restart.
  void crash();
  /// Broker comes back up. No leg is restored here: tenants re-admit
  /// themselves one by one through reattach(), as the paper's opt-in
  /// registration model requires.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Current broker epoch; bumped once per crash. Endpoints holding an older
  /// epoch are fenced off until they reattach.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Publishes rejected because the broker was down or the caller's epoch
  /// was stale.
  [[nodiscard]] std::uint64_t epoch_rejected() const { return epoch_rejected_; }

  /// Re-registration handshake target: restores the tenant's *producer*-side
  /// legs (tokens, trust-redacted policies, delays, faults, rate buckets)
  /// from the durable wiring record. Idempotent -- legs already restored are
  /// left untouched, so a duplicated handshake never double-registers.
  /// Returns the current epoch on success, 0 while the broker is still down
  /// (the caller backs off and retries).
  std::uint64_t reattach(ProviderId tenant);

  // --- producer side ---
  /// AppP publishes its A2I report under `epoch`: a crashed broker or a
  /// stale epoch rejects it (counted in epoch_rejected). Otherwise the
  /// egress quota clamp runs first (at the broker, not in the tenant), then
  /// every wired InfP's channel receives the clamped report through its own
  /// policy/delay/faults. Returns whether the broker accepted the publish.
  bool publish_a2i(ProviderId appp, const A2IReport& report, TimePoint now,
                   std::uint64_t epoch);
  /// Current-epoch convenience overload (tests, benches).
  bool publish_a2i(ProviderId appp, const A2IReport& report, TimePoint now) {
    return publish_a2i(appp, report, now, epoch_);
  }
  /// InfP publishes its I2A report to every wired AppP's channel; same
  /// epoch fence as publish_a2i.
  bool publish_i2a(ProviderId infp, const I2AReport& report, TimePoint now,
                   std::uint64_t epoch);
  bool publish_i2a(ProviderId infp, const I2AReport& report, TimePoint now) {
    return publish_i2a(infp, report, now, epoch_);
  }

  // --- consumer side (the broker holds the tokens) ---
  /// nullopt while the broker is down, or while a configured leg awaits its
  /// producer's reattach; throws AccessDenied only for never-wired pairs.
  [[nodiscard]] std::optional<A2IReport> fetch_a2i(ProviderId infp,
                                                   ProviderId appp,
                                                   TimePoint now) const;
  [[nodiscard]] std::optional<I2AReport> fetch_i2a(ProviderId appp,
                                                   ProviderId infp,
                                                   TimePoint now) const;

  // --- leg introspection ---
  /// Live counters of one leg; a leg torn down by crash/churn reads as all
  /// zeros (its history is folded into total_delivery_stats()).
  [[nodiscard]] const ChannelStats& a2i_leg_stats(ProviderId appp,
                                                  ProviderId infp) const;
  [[nodiscard]] const ChannelStats& i2a_leg_stats(ProviderId infp,
                                                  ProviderId appp) const;
  /// Channel stats summed over every live leg plus every leg already retired
  /// by unwire/crash teardown (so counters survive broker churn).
  [[nodiscard]] ChannelStats total_delivery_stats() const;

  /// Raw access to a tenant's glass: auxiliary consumers (the energy
  /// manager) subscribe here, and benches adjust per-leg delay/faults.
  [[nodiscard]] A2IEndpoint& a2i_glass(ProviderId appp);
  [[nodiscard]] I2AEndpoint& i2a_glass(ProviderId infp);

  /// Publishes whose forecasts the egress quota clamp scaled down.
  [[nodiscard]] std::uint64_t clamp_count() const { return clamp_count_; }

  /// Structural exchange invariants, checked by the InvariantAuditor across
  /// every crash/restart/churn step. Returns an empty string when all hold:
  ///  * a crashed broker holds no live bearer tokens;
  ///  * every live token corresponds to a durable link record;
  ///  * every restored leg still carries exactly the trust-redacted policy
  ///    of its link record (no redacted attribute leaks on replay);
  ///  * with a finite egress reference, tenant shares sum to <= 1.
  [[nodiscard]] std::string invariant_violation() const;

 private:
  struct AppTenant {
    explicit AppTenant(ProviderId id, TenantQuota q) : glass(id), quota(q) {}
    A2IEndpoint glass;
    TenantQuota quota;
  };
  struct InfTenant {
    explicit InfTenant(ProviderId id) : glass(id) {}
    I2AEndpoint glass;
  };

  [[nodiscard]] AppTenant& require_appp(ProviderId id);
  [[nodiscard]] const AppTenant& require_appp(ProviderId id) const;
  [[nodiscard]] InfTenant& require_infp(ProviderId id);
  [[nodiscard]] const InfTenant& require_infp(ProviderId id) const;

  /// Open the A2I (and then I2A) legs of one durable link record; skips a
  /// leg whose token is already live (idempotent restore).
  void open_a2i_leg(ProviderId appp, ProviderId infp, const TenantLink& link);
  void open_i2a_leg(ProviderId appp, ProviderId infp, const TenantLink& link);
  /// Tear one leg down, folding its channel stats into retired_.
  void close_a2i_leg(ProviderId appp, ProviderId infp);
  void close_i2a_leg(ProviderId appp, ProviderId infp);

  /// `report` with the tenant's per-ISP forecast totals clamped to
  /// egress_share * egress_reference; counts a clamp when anything shrank.
  [[nodiscard]] A2IReport clamp_forecasts(const AppTenant& tenant,
                                          const A2IReport& report);

  const ProviderRegistry& registry_;
  std::map<ProviderId, AppTenant> appps_;  // ordered: deterministic
  std::map<ProviderId, InfTenant> infps_;
  std::map<std::pair<ProviderId, ProviderId>, std::string> a2i_tokens_;
  std::map<std::pair<ProviderId, ProviderId>, std::string> i2a_tokens_;
  /// Durable wiring record, keyed (appp, infp): what wire() was told, and
  /// what reattach() reconstructs legs from after a crash.
  std::map<std::pair<ProviderId, ProviderId>, TenantLink> links_;
  BitsPerSecond egress_reference_ = std::numeric_limits<double>::infinity();
  std::uint64_t clamp_count_ = 0;
  std::uint64_t epoch_ = 1;
  std::uint64_t epoch_rejected_ = 0;
  bool crashed_ = false;
  ChannelStats retired_;  ///< stats of legs torn down by unwire/crash
  sim::EventBus* bus_ = nullptr;
};

/// Backoff schedule for the post-restart re-registration handshake (the
/// RobustFetcher retry discipline applied to broker reattachment). Attempts
/// start when the endpoint notices it is detached and are spaced
/// base * factor^n, jittered, capped at max_backoff -- so after the broker
/// restarts, every tenant reattaches within one capped interval.
struct ReattachPolicy {
  Duration base_backoff = 0.5;   ///< delay before the first attempt
  double backoff_factor = 2.0;   ///< growth per failed attempt
  double jitter_fraction = 0.25; ///< uniform +/- fraction on each delay
  Duration max_backoff = 8.0;    ///< attempt-interval ceiling

  void validate() const {
    if (base_backoff <= 0.0)
      throw ConfigError("reattach: base_backoff must be > 0");
    if (backoff_factor < 1.0)
      throw ConfigError("reattach: backoff_factor must be >= 1");
    if (jitter_fraction < 0.0 || jitter_fraction >= 1.0)
      throw ConfigError("reattach: jitter_fraction must be in [0, 1)");
    if (max_backoff < base_backoff)
      throw ConfigError("reattach: max_backoff must be >= base_backoff");
  }

  /// Upper bound on restart -> reattached latency: one capped attempt
  /// interval plus its jitter allowance.
  [[nodiscard]] Duration horizon() const {
    return max_backoff * (1.0 + jitter_fraction);
  }
};

/// The handle a controller holds instead of raw channels: its identity on
/// the exchange plus the operations its side of the plane may perform. A
/// default-constructed endpoint is unbound; controllers without an exchange
/// (unit fixtures) simply skip publishing.
///
/// The endpoint also owns the tenant's half of the broker survivability
/// story: it remembers the epoch it registered under, so after a broker
/// crash its publishes are fenced (rejected + counted at the broker) and its
/// fetches answer nullopt -- the controller degrades onto last-known-good
/// data. Once armed with a scheduler, a detected detach starts a seeded
/// jittered backoff chain of `Exchange::reattach` attempts, re-admitting the
/// tenant without any central coordination.
class ExchangeEndpoint {
 public:
  ExchangeEndpoint() = default;
  ExchangeEndpoint(Exchange* exchange, ProviderId self)
      : exchange_(exchange),
        self_(self),
        epoch_(exchange != nullptr ? exchange->epoch() : 0) {}

  // Copies transfer identity only, never an armed retry chain: the Builder
  // hands endpoints to controllers by value *before* arming, and an armed
  // endpoint must stay at a stable address (its scheduled attempts capture
  // `this`).
  ExchangeEndpoint(const ExchangeEndpoint& other)
      : exchange_(other.exchange_), self_(other.self_), epoch_(other.epoch_) {}
  ExchangeEndpoint& operator=(const ExchangeEndpoint& other);
  ~ExchangeEndpoint() { disarm(); }

  [[nodiscard]] bool bound() const { return exchange_ != nullptr; }
  [[nodiscard]] ProviderId self() const { return self_; }
  [[nodiscard]] Exchange& exchange() const { return *exchange_; }

  /// True when bound, the broker is up, and our registration epoch is
  /// current: publishes will be accepted and fetches answered.
  [[nodiscard]] bool attached() const {
    return bound() && !exchange_->crashed() && epoch_ == exchange_->epoch();
  }

  /// Arm the re-registration handshake: from now on a detected detach
  /// (broker fault event or rejected publish) retries Exchange::reattach on
  /// the seeded jittered backoff schedule until the broker re-admits us.
  void arm_reattach(sim::Scheduler& sched, std::uint64_t seed,
                    ReattachPolicy policy = {});
  /// Optional hook fired the moment a reattach lands (controllers republish
  /// out of band so peers recover without waiting for the next tick).
  void set_on_reattach(std::function<void(TimePoint)> hook) {
    on_reattach_ = std::move(hook);
  }
  /// Broker fault notification (controllers forward bus FaultEvents): a
  /// crash starts the backoff chain immediately; the chain's next attempt
  /// after a restart re-admits us.
  void on_broker_fault(const char* kind, TimePoint now);

  // --- reattach telemetry (scenario measurements) ---
  [[nodiscard]] std::uint64_t reattach_count() const { return reattaches_; }
  [[nodiscard]] std::uint64_t reattach_attempts() const { return attempts_total_; }
  [[nodiscard]] TimePoint last_reattach_at() const { return last_reattach_at_; }
  [[nodiscard]] Duration detached_seconds() const { return detached_seconds_; }

  // --- AppP side ---
  /// Publish under our registered epoch; false when the broker rejected it
  /// (down or stale epoch), which also kicks the reattach chain.
  bool publish_a2i(const A2IReport& report, TimePoint now) {
    bool ok = exchange_->publish_a2i(self_, report, now, epoch_);
    if (!ok) begin_reattach(now);
    return ok;
  }
  /// nullopt while detached or for unwired peers: consumers degrade to
  /// last-known-good instead of seeing broker exceptions.
  [[nodiscard]] std::optional<I2AReport> fetch_i2a(ProviderId infp,
                                                   TimePoint now) const {
    if (!attached() || !exchange_->wired(self_, infp)) return std::nullopt;
    return exchange_->fetch_i2a(self_, infp, now);
  }
  [[nodiscard]] const ChannelStats& i2a_leg_stats(ProviderId infp) const {
    return exchange_->i2a_leg_stats(infp, self_);
  }

  // --- InfP side ---
  bool publish_i2a(const I2AReport& report, TimePoint now) {
    bool ok = exchange_->publish_i2a(self_, report, now, epoch_);
    if (!ok) begin_reattach(now);
    return ok;
  }
  [[nodiscard]] std::optional<A2IReport> fetch_a2i(ProviderId appp,
                                                   TimePoint now) const {
    if (!attached() || !exchange_->wired(appp, self_)) return std::nullopt;
    return exchange_->fetch_a2i(self_, appp, now);
  }
  [[nodiscard]] const ChannelStats& a2i_leg_stats(ProviderId appp) const {
    return exchange_->a2i_leg_stats(appp, self_);
  }

 private:
  void disarm() {
    if (sched_ != nullptr) sched_->cancel(pending_);
  }
  /// Start the backoff chain if armed and not already running.
  void begin_reattach(TimePoint now);
  void attempt_reattach();
  void schedule_next_attempt();

  Exchange* exchange_ = nullptr;
  ProviderId self_;
  std::uint64_t epoch_ = 0;

  // Re-registration machinery (armed controllers only).
  sim::Scheduler* sched_ = nullptr;
  ReattachPolicy policy_{};
  FaultStream rng_{0};
  std::function<void(TimePoint)> on_reattach_;
  sim::EventHandle pending_{};
  std::size_t attempt_ = 0;
  bool chain_armed_ = false;
  TimePoint detach_started_ = 0.0;

  // Telemetry.
  std::uint64_t reattaches_ = 0;
  std::uint64_t attempts_total_ = 0;
  TimePoint last_reattach_at_ = 0.0;
  Duration detached_seconds_ = 0.0;
};

}  // namespace eona::core
