// The brokered interface plane (ROADMAP item 1; AONA's "global
// collaboration" step). Instead of each AppP hand-wiring a ReportChannel to
// each InfP, every tenant registers with one eona::Exchange and all A2I/I2A
// flow crosses it:
//
//  * registration    -- AppPs and InfPs enroll once; the broker mints the
//                       bearer tokens for every leg it wires, so tenants
//                       never exchange credentials directly;
//  * trust levels    -- each tenant pair is wired at a TrustLevel that
//                       redacts attribute sets (policy.hpp) before delivery;
//                       kFull reproduces direct wiring byte-for-byte;
//  * rate limiting   -- each I2A leg carries a deterministic token bucket,
//                       so one chatty InfP cannot flood a tenant's fetchers;
//  * egress quotas   -- per-AppP egress-share quotas are enforced on the
//                       broker's A2I path: a tenant's exported traffic
//                       forecasts are clamped to its share of the exchange's
//                       egress reference *before* any InfP sees them. The
//                       clamp lives here, not in the (untrusted) client.
//
// Each producer tenant keeps one LookingGlass inside the broker, so all
// per-leg semantics -- per-peer policy application, propagation delay,
// FaultProfile, bus events, ChannelStats -- are exactly those of the
// pre-broker point-to-point channels.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "eona/channel.hpp"
#include "eona/endpoint.hpp"
#include "eona/messages.hpp"
#include "eona/policy.hpp"
#include "eona/registry.hpp"

namespace eona::core {

/// Broker-enforced resource quota for one AppP tenant.
struct TenantQuota {
  /// Fraction of the exchange's egress reference this tenant's forecasts may
  /// claim per ISP. 1.0 (with the default infinite reference) never clamps.
  double egress_share = 1.0;

  friend bool operator==(const TenantQuota&, const TenantQuota&) = default;
};

/// Everything one (AppP, InfP) pairing needs: per-direction staleness,
/// policies and fault profiles (the same knobs the point-to-point wiring
/// exposed), plus the broker's trust level and I2A rate budget.
struct TenantLink {
  Duration a2i_delay = 0.0;
  Duration i2a_delay = 0.0;
  A2IPolicy a2i_policy{};
  I2APolicy i2a_policy{};
  FaultProfile a2i_fault{};
  FaultProfile i2a_fault{};
  TrustLevel trust = TrustLevel::kFull;
  RateLimit i2a_rate{};  ///< token bucket on the broker's I2A leg
};

/// Brokered N AppP x M InfP interface plane; see file header.
class Exchange {
 public:
  explicit Exchange(const ProviderRegistry& registry) : registry_(registry) {}

  Exchange(const Exchange&) = delete;
  Exchange& operator=(const Exchange&) = delete;

  /// Emit channel events for every tenant glass (current and future).
  void set_event_bus(sim::EventBus* bus);

  // --- registration ---
  void register_appp(ProviderId id, TenantQuota quota = {});
  void register_infp(ProviderId id);
  [[nodiscard]] bool has_appp(ProviderId id) const {
    return appps_.count(id) > 0;
  }
  [[nodiscard]] bool has_infp(ProviderId id) const {
    return infps_.count(id) > 0;
  }
  [[nodiscard]] std::size_t appp_count() const { return appps_.size(); }
  [[nodiscard]] std::size_t infp_count() const { return infps_.size(); }

  /// Replace an AppP's quota (scenario setup).
  void set_quota(ProviderId appp, TenantQuota quota);
  [[nodiscard]] const TenantQuota& quota(ProviderId appp) const;

  /// The egress capacity the quota shares refer to (per ISP). Default is
  /// infinite: no clamp ever fires, reproducing unbrokered behaviour.
  void set_egress_reference(BitsPerSecond reference);
  [[nodiscard]] BitsPerSecond egress_reference() const {
    return egress_reference_;
  }

  /// Wire both directions between a registered AppP and InfP. Mints both
  /// bearer tokens, applies the link's trust level to its policies, and
  /// attaches the I2A leg's token bucket. Order of channel creation matches
  /// the old point-to-point wire_eona helper exactly.
  void wire(ProviderId appp, ProviderId infp, const TenantLink& link = {});

  // --- producer side ---
  /// AppP publishes its A2I report: the egress quota clamp runs first (at
  /// the broker, not in the tenant), then every wired InfP's channel
  /// receives the clamped report through its own policy/delay/faults.
  void publish_a2i(ProviderId appp, const A2IReport& report, TimePoint now);
  /// InfP publishes its I2A report to every wired AppP's channel.
  void publish_i2a(ProviderId infp, const I2AReport& report, TimePoint now);

  // --- consumer side (the broker holds the tokens) ---
  [[nodiscard]] std::optional<A2IReport> fetch_a2i(ProviderId infp,
                                                   ProviderId appp,
                                                   TimePoint now) const;
  [[nodiscard]] std::optional<I2AReport> fetch_i2a(ProviderId appp,
                                                   ProviderId infp,
                                                   TimePoint now) const;

  // --- leg introspection ---
  [[nodiscard]] const ChannelStats& a2i_leg_stats(ProviderId appp,
                                                  ProviderId infp) const;
  [[nodiscard]] const ChannelStats& i2a_leg_stats(ProviderId infp,
                                                  ProviderId appp) const;

  /// Raw access to a tenant's glass: auxiliary consumers (the energy
  /// manager) subscribe here, and benches adjust per-leg delay/faults.
  [[nodiscard]] A2IEndpoint& a2i_glass(ProviderId appp);
  [[nodiscard]] I2AEndpoint& i2a_glass(ProviderId infp);

  /// Publishes whose forecasts the egress quota clamp scaled down.
  [[nodiscard]] std::uint64_t clamp_count() const { return clamp_count_; }

 private:
  struct AppTenant {
    explicit AppTenant(ProviderId id, TenantQuota q) : glass(id), quota(q) {}
    A2IEndpoint glass;
    TenantQuota quota;
  };
  struct InfTenant {
    explicit InfTenant(ProviderId id) : glass(id) {}
    I2AEndpoint glass;
  };

  [[nodiscard]] AppTenant& require_appp(ProviderId id);
  [[nodiscard]] const AppTenant& require_appp(ProviderId id) const;
  [[nodiscard]] InfTenant& require_infp(ProviderId id);
  [[nodiscard]] const InfTenant& require_infp(ProviderId id) const;

  /// `report` with the tenant's per-ISP forecast totals clamped to
  /// egress_share * egress_reference; counts a clamp when anything shrank.
  [[nodiscard]] A2IReport clamp_forecasts(const AppTenant& tenant,
                                          const A2IReport& report);

  const ProviderRegistry& registry_;
  std::map<ProviderId, AppTenant> appps_;  // ordered: deterministic
  std::map<ProviderId, InfTenant> infps_;
  std::map<std::pair<ProviderId, ProviderId>, std::string> a2i_tokens_;
  std::map<std::pair<ProviderId, ProviderId>, std::string> i2a_tokens_;
  BitsPerSecond egress_reference_ = std::numeric_limits<double>::infinity();
  std::uint64_t clamp_count_ = 0;
  sim::EventBus* bus_ = nullptr;
};

/// The handle a controller holds instead of raw channels: its identity on
/// the exchange plus the operations its side of the plane may perform. A
/// default-constructed endpoint is unbound; controllers without an exchange
/// (unit fixtures) simply skip publishing.
class ExchangeEndpoint {
 public:
  ExchangeEndpoint() = default;
  ExchangeEndpoint(Exchange* exchange, ProviderId self)
      : exchange_(exchange), self_(self) {}

  [[nodiscard]] bool bound() const { return exchange_ != nullptr; }
  [[nodiscard]] ProviderId self() const { return self_; }
  [[nodiscard]] Exchange& exchange() const { return *exchange_; }

  // --- AppP side ---
  void publish_a2i(const A2IReport& report, TimePoint now) {
    exchange_->publish_a2i(self_, report, now);
  }
  [[nodiscard]] std::optional<I2AReport> fetch_i2a(ProviderId infp,
                                                   TimePoint now) const {
    return exchange_->fetch_i2a(self_, infp, now);
  }
  [[nodiscard]] const ChannelStats& i2a_leg_stats(ProviderId infp) const {
    return exchange_->i2a_leg_stats(infp, self_);
  }

  // --- InfP side ---
  void publish_i2a(const I2AReport& report, TimePoint now) {
    exchange_->publish_i2a(self_, report, now);
  }
  [[nodiscard]] std::optional<A2IReport> fetch_a2i(ProviderId appp,
                                                   TimePoint now) const {
    return exchange_->fetch_a2i(self_, appp, now);
  }
  [[nodiscard]] const ChannelStats& a2i_leg_stats(ProviderId appp) const {
    return exchange_->a2i_leg_stats(appp, self_);
  }

 private:
  Exchange* exchange_ = nullptr;
  ProviderId self_;
};

}  // namespace eona::core
