// Provider registry: the directory of EONA participants and their bearer
// tokens. Token issuance is deterministic per (registry seed, provider) so
// experiments reproduce exactly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"

namespace eona::core {

enum class ProviderKind : std::uint8_t { kAppP, kInfP };

struct ProviderInfo {
  ProviderId id;
  ProviderKind kind = ProviderKind::kAppP;
  std::string name;
};

/// Directory of providers + token minting.
class ProviderRegistry {
 public:
  explicit ProviderRegistry(std::uint64_t seed = 0x45'4F'4E'41) : seed_(seed) {}

  ProviderId register_provider(ProviderKind kind, std::string name) {
    EONA_EXPECTS(!name.empty());
    ProviderId id(static_cast<ProviderId::rep_type>(providers_.size()));
    providers_.push_back(ProviderInfo{id, kind, std::move(name)});
    return id;
  }

  [[nodiscard]] const ProviderInfo& info(ProviderId id) const {
    if (!id.valid() || id.value() >= providers_.size())
      throw NotFoundError("provider " + std::to_string(id.value()));
    return providers_[id.value()];
  }

  [[nodiscard]] std::size_t size() const { return providers_.size(); }

  /// Deterministic bearer token binding (granter -> grantee).
  [[nodiscard]] std::string mint_token(ProviderId granter,
                                       ProviderId grantee) const {
    std::uint64_t h = seed_;
    auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    };
    mix(granter.value());
    mix(grantee.value());
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string("eona-") + buf;
  }

 private:
  std::uint64_t seed_;
  std::vector<ProviderInfo> providers_;
};

}  // namespace eona::core
