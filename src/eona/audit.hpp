// Interface auditing: the §5 "fairness and trust" open challenge.
//
// EONA assumes collaborators are honest; the paper suggests "third-party /
// neutral validation services" as the remedy when they are not. This module
// implements the AppP-side half of that service: cross-check an InfP's I2A
// claims against the AppP's own client-side evidence, maintain a trust
// score, and let control logic discount reports from low-trust peers.
//
// Auditable claims (per report):
//  * "the selected interconnect for CDN C is congested"   -- yet our
//    sessions through C deliver their intended bitrate cleanly;
//  * "nothing on the path to CDN C is congested"          -- yet our
//    sessions through C are starving (and no other report section explains
//    it: no access congestion, no offline/overloaded server).
//
// Each audited claim is consistent or contradicted; trust is an EWMA of
// consistency. A provider that reports honestly converges to trust ~1; one
// that shades the truth decays toward 0 at a rate set by how often its
// claims are checkable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "eona/messages.hpp"

namespace eona::core {

/// The AppP's own client-side evidence about one CDN over the last window.
struct CdnEvidence {
  CdnId cdn;
  BitsPerSecond mean_bitrate = 0.0;      ///< delivered, from beacons
  BitsPerSecond intended_bitrate = 0.0;  ///< what the AppP wanted to deliver
  double mean_buffering = 0.0;
  std::uint64_t sessions = 0;
};

struct AuditConfig {
  /// Sessions delivering at least this fraction of intent with negligible
  /// buffering count as "healthy" evidence.
  double healthy_bitrate_fraction = 0.9;
  double healthy_buffering_limit = 0.02;
  /// Below this fraction of intent (or above the buffering limit) the CDN
  /// counts as "starving" evidence.
  double starving_bitrate_fraction = 0.6;
  double starving_buffering_limit = 0.10;
  /// Minimum sessions behind the evidence before a claim is auditable.
  std::uint64_t min_sessions = 5;
  /// EWMA weight of each new audit outcome.
  double alpha = 0.2;
  /// Peers below this trust should be discounted by control logic.
  double distrust_threshold = 0.5;
};

/// Outcome of auditing one report.
struct AuditOutcome {
  std::size_t claims_checked = 0;
  std::size_t contradictions = 0;
};

/// Per-peer audit state (one auditor per InfP the AppP subscribes to).
class InterfaceAuditor {
 public:
  explicit InterfaceAuditor(AuditConfig config = {}) : config_(config) {
    EONA_EXPECTS(config.alpha > 0.0 && config.alpha <= 1.0);
    EONA_EXPECTS(config.healthy_bitrate_fraction >
                 config.starving_bitrate_fraction);
  }

  /// Audit one I2A report against the AppP's evidence; updates trust.
  AuditOutcome audit(const I2AReport& report,
                     const std::vector<CdnEvidence>& evidence);

  /// Current trust in [0, 1]; starts at 1 (innocent until contradicted).
  [[nodiscard]] double trust() const { return trust_; }
  [[nodiscard]] bool trusted() const {
    return trust_ >= config_.distrust_threshold;
  }

  [[nodiscard]] std::uint64_t claims_checked() const { return checked_; }
  [[nodiscard]] std::uint64_t contradictions() const { return contradicted_; }
  [[nodiscard]] const AuditConfig& config() const { return config_; }

 private:
  enum class Health { kHealthy, kStarving, kAmbiguous };
  [[nodiscard]] Health classify(const CdnEvidence& e) const;
  /// Does any report section other than the audited claim explain starving
  /// evidence for `cdn` (access congestion, offline/overloaded server)?
  [[nodiscard]] static bool excused(const I2AReport& report, CdnId cdn);

  AuditConfig config_;
  double trust_ = 1.0;
  std::uint64_t checked_ = 0;
  std::uint64_t contradicted_ = 0;
};

}  // namespace eona::core
