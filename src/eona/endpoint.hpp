// The EONA "looking glass": each provider runs an endpoint that peers query
// for the provider's current report. Opt-in is explicit (paper §3): the
// owner authorises peers individually with bearer tokens, attaches a
// per-peer export policy, and may set a per-peer propagation delay
// (staleness) and a per-peer FaultProfile (drop/duplicate/jitter/outages).
// Everything a peer sees has passed policy + delay + faults.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "eona/channel.hpp"
#include "eona/messages.hpp"
#include "eona/policy.hpp"

namespace eona::core {

/// Generic looking-glass endpoint parameterised on report and policy types.
/// AppPs instantiate A2IEndpoint; InfPs instantiate I2AEndpoint.
template <typename Report, typename Policy>
class LookingGlass {
 public:
  explicit LookingGlass(ProviderId owner) : owner_(owner) {}

  [[nodiscard]] ProviderId owner() const { return owner_; }

  /// Emit channel events for every peer (current and future) on `bus`,
  /// labelled with this glass's report kind ("a2i"/"i2a").
  void set_event_bus(sim::EventBus* bus, const char* kind) {
    bus_ = bus;
    kind_ = kind;
    for (auto& [peer, entry] : peers_)
      entry.channel.set_event_bus(bus_, owner_, peer, kind_);
  }

  /// Opt a peer in: it may query with `token` and sees reports through
  /// `policy`, delayed by `delay` and subject to `fault` (default: ideal).
  void authorize(ProviderId peer, std::string token, Policy policy = {},
                 Duration delay = 0.0, FaultProfile fault = {}) {
    EONA_EXPECTS(!token.empty());
    auto [it, inserted] = peers_.insert_or_assign(
        peer, PeerEntry{std::move(token), policy,
                        ReportChannel<Report>(delay, std::move(fault))});
    (void)inserted;
    if (bus_ != nullptr)
      it->second.channel.set_event_bus(bus_, owner_, peer, kind_);
  }

  /// Opt a peer out again.
  void revoke(ProviderId peer) { peers_.erase(peer); }

  [[nodiscard]] bool authorized(ProviderId peer) const {
    return peers_.count(peer) > 0;
  }

  /// Change the staleness injected on a peer's channel (benches sweep this).
  void set_peer_delay(ProviderId peer, Duration delay) {
    require(peer).channel.set_delay(delay);
  }

  /// Change the fault profile injected on a peer's channel.
  void set_peer_fault(ProviderId peer, FaultProfile fault) {
    require(peer).channel.set_fault(std::move(fault));
  }

  /// Budget a peer's channel through a token bucket (broker rate limiting).
  void set_peer_rate_limit(ProviderId peer, RateLimit limit) {
    require(peer).channel.set_rate_limit(limit);
  }

  /// Delivery-health counters of one peer's channel.
  [[nodiscard]] const ChannelStats& peer_stats(ProviderId peer) const {
    return require(peer).channel.stats();
  }

  /// The export policy a peer's channel applies (auditor: verifies trust
  /// redaction survived broker re-registration).
  [[nodiscard]] const Policy& peer_policy(ProviderId peer) const {
    return require(peer).policy;
  }

  /// Delivery-health counters summed over every authorised peer.
  [[nodiscard]] ChannelStats delivery_stats() const {
    ChannelStats total;
    for (const auto& [peer, entry] : peers_) total += entry.channel.stats();
    return total;
  }

  /// Owner publishes its current report; every authorised peer's channel
  /// receives it (policy applied per peer, so different peers can see
  /// different subsets).
  void publish(const Report& report, TimePoint now) {
    ++publishes_;
    for (auto& [peer, entry] : peers_)
      entry.channel.publish(entry.policy.apply(report), now);
  }

  /// Peer queries the looking glass. Throws AccessDenied for unknown peers
  /// or bad tokens; returns nullopt when nothing is visible yet.
  [[nodiscard]] std::optional<Report> query(ProviderId peer,
                                            const std::string& token,
                                            TimePoint now) const {
    const PeerEntry& entry = require(peer);
    if (entry.token != token)
      throw AccessDenied("bad token for peer " + std::to_string(peer.value()));
    ++queries_;
    return entry.channel.fetch(now);
  }

  /// Staleness of what `peer` would currently see.
  [[nodiscard]] std::optional<Duration> staleness(ProviderId peer,
                                                  TimePoint now) const {
    return require(peer).channel.staleness(now);
  }

  [[nodiscard]] std::uint64_t publish_count() const { return publishes_; }
  [[nodiscard]] std::uint64_t query_count() const { return queries_; }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

 private:
  struct PeerEntry {
    std::string token;
    Policy policy;
    ReportChannel<Report> channel;
  };

  PeerEntry& require(ProviderId peer) {
    auto it = peers_.find(peer);
    if (it == peers_.end())
      throw AccessDenied("peer " + std::to_string(peer.value()) +
                         " not opted in");
    return it->second;
  }
  const PeerEntry& require(ProviderId peer) const {
    auto it = peers_.find(peer);
    if (it == peers_.end())
      throw AccessDenied("peer " + std::to_string(peer.value()) +
                         " not opted in");
    return it->second;
  }

  ProviderId owner_;
  std::unordered_map<ProviderId, PeerEntry> peers_;
  std::uint64_t publishes_ = 0;
  mutable std::uint64_t queries_ = 0;
  sim::EventBus* bus_ = nullptr;
  const char* kind_ = "";
};

/// An AppP's A2I looking glass (InfPs query it).
using A2IEndpoint = LookingGlass<A2IReport, A2IPolicy>;
/// An InfP's I2A looking glass (AppPs query it).
using I2AEndpoint = LookingGlass<I2AReport, I2APolicy>;

}  // namespace eona::core
