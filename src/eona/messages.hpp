// EONA message schema: what actually crosses the A2I and I2A interfaces.
//
// Deliberately narrow, following the paper's §4 recipe: aggregated QoE per
// (ISP, CDN) group and traffic forecasts flow App->Infra; peering status,
// server hints, and congestion attributions flow Infra->App. No per-user
// data, no topology dumps, no TE policy internals.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace eona::core {

// ---------------------------------------------------------------------------
// A2I: application provider -> infrastructure provider
// ---------------------------------------------------------------------------

/// Aggregated client-measured experience for one (ISP, CDN[, server]) group
/// over the report window. Means and percentiles only -- k-anonymity gated
/// before export.
struct QoeGroupReport {
  IspId isp;
  CdnId cdn;
  ServerId server;  ///< invalid when aggregated across servers
  double mean_buffering_ratio = 0.0;
  double p90_buffering_ratio = 0.0;
  BitsPerSecond mean_bitrate = 0.0;
  Duration mean_join_time = 0.0;
  double mean_engagement = 0.0;
  std::uint64_t sessions = 0;

  friend bool operator==(const QoeGroupReport&, const QoeGroupReport&) = default;
};

/// Expected near-term traffic volume the AppP intends to send through the
/// ISP from each CDN -- the input the InfP needs to size peering splits.
struct TrafficForecast {
  IspId isp;
  CdnId cdn;
  BitsPerSecond expected_rate = 0.0;

  friend bool operator==(const TrafficForecast&, const TrafficForecast&) = default;
};

/// One A2I report: everything an AppP shares with one InfP per window.
struct A2IReport {
  ProviderId from;
  TimePoint generated_at = 0.0;
  std::vector<QoeGroupReport> groups;
  std::vector<TrafficForecast> forecasts;

  friend bool operator==(const A2IReport&, const A2IReport&) = default;
};

/// Total forecast rate the report claims toward `isp` (forecasts with an
/// invalid ISP are global and count toward every ISP). The broker's egress
/// quota clamp and the InfP's egress sharing both consume this.
[[nodiscard]] inline BitsPerSecond total_forecast_rate(const A2IReport& report,
                                                       IspId isp) {
  BitsPerSecond total = 0.0;
  for (const TrafficForecast& f : report.forecasts)
    if (!f.isp.valid() || !isp.valid() || f.isp == isp)
      total += f.expected_rate;
  return total;
}

// ---------------------------------------------------------------------------
// I2A: infrastructure provider -> application provider
// ---------------------------------------------------------------------------

/// State of one peering point: enough for the AppP to attribute problems to
/// interconnects (not CDNs) and balance load, without exposing topology.
struct PeeringStatus {
  PeeringId peering;
  IspId isp;
  CdnId cdn;
  BitsPerSecond capacity = 0.0;
  double utilization = 0.0;  ///< 0..1
  bool congested = false;
  bool selected = false;  ///< is this the ISP's current choice for the CDN

  friend bool operator==(const PeeringStatus&, const PeeringStatus&) = default;
};

/// Hint about an individual CDN server: load and availability, so players
/// can switch servers inside a CDN instead of abandoning the CDN.
struct ServerHint {
  CdnId cdn;
  ServerId server;
  double load = 0.0;  ///< utilisation of the server's serving capacity, 0..1
  bool online = true;

  friend bool operator==(const ServerHint&, const ServerHint&) = default;
};

/// Where congestion is, as an attribution the application can act on.
enum class CongestionScope : std::uint8_t {
  kAccess = 0,   ///< the ISP's client access segment: no CDN switch will help
  kPeering = 1,  ///< a specific interconnect: reroute or rebalance helps
  kBackbone = 2,
};

struct CongestionSignal {
  IspId isp;
  CongestionScope scope = CongestionScope::kAccess;
  PeeringId peering;   ///< valid when scope == kPeering
  double severity = 0.0;  ///< 0 (none) .. 1 (hard-starved)

  friend bool operator==(const CongestionSignal&, const CongestionSignal&) = default;
};

/// One I2A report: everything an InfP shares with one AppP per window.
struct I2AReport {
  ProviderId from;
  TimePoint generated_at = 0.0;
  std::vector<PeeringStatus> peerings;
  std::vector<ServerHint> server_hints;
  std::vector<CongestionSignal> congestion;

  friend bool operator==(const I2AReport&, const I2AReport&) = default;
};

}  // namespace eona::core
