#include "eona/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace eona::core {

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

JsonValue JsonValue::boolean(bool v) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}
JsonValue JsonValue::number(double v) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}
JsonValue JsonValue::string(std::string v) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}
JsonValue JsonValue::array() {
  JsonValue value;
  value.kind_ = Kind::kArray;
  return value;
}
JsonValue JsonValue::object() {
  JsonValue value;
  value.kind_ = Kind::kObject;
  return value;
}

namespace {
[[noreturn]] void kind_error(const char* want) {
  throw CodecError(std::string("json: expected ") + want);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}
double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number");
  return number_;
}
const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}
const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return array_;
}
const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) kind_error("array");
  array_.push_back(std::move(v));
}
void JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject) kind_error("object");
  object_[key] = std::move(v);
}
const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw CodecError("json: missing field '" + key + "'");
  return it->second;
}
bool JsonValue::has(const std::string& key) const {
  return as_object().count(key) > 0;
}

// --- serialisation -----------------------------------------------------------

namespace {

void escape_into(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void number_into(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) throw CodecError("json: non-finite number");
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

void dump_into(std::ostringstream& out, const JsonValue& value, int indent,
               int depth) {
  auto pad = [&](int d) {
    if (indent > 0) {
      out << '\n';
      for (int i = 0; i < indent * d; ++i) out << ' ';
    }
  };
  switch (value.kind()) {
    case JsonValue::Kind::kNull: out << "null"; break;
    case JsonValue::Kind::kBool: out << (value.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::kNumber: number_into(out, value.as_number()); break;
    case JsonValue::Kind::kString: escape_into(out, value.as_string()); break;
    case JsonValue::Kind::kArray: {
      const auto& items = value.as_array();
      if (items.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      bool first = true;
      for (const auto& item : items) {
        if (!first) out << ',';
        first = false;
        pad(depth + 1);
        dump_into(out, item, indent, depth + 1);
      }
      pad(depth);
      out << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      const auto& fields = value.as_object();
      if (fields.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      bool first = true;
      for (const auto& [key, item] : fields) {
        if (!first) out << ',';
        first = false;
        pad(depth + 1);
        escape_into(out, key);
        out << (indent > 0 ? ": " : ":");
        dump_into(out, item, indent, depth + 1);
      }
      pad(depth);
      out << '}';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::ostringstream out;
  dump_into(out, *this, indent, 0);
  return out.str();
}

// --- parsing -------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw CodecError("json: trailing garbage");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) throw CodecError("json: unexpected end");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c)
      throw CodecError(std::string("json: expected '") + c + "'");
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p; ++p) expect(*p);
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue::boolean(true);
      case 'f':
        expect_literal("false");
        return JsonValue::boolean(false);
      case 'n':
        expect_literal("null");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      take();
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      char c = take();
      if (c == '}') return obj;
      if (c != ',') throw CodecError("json: expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      take();
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return arr;
      if (c != ',') throw CodecError("json: expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else throw CodecError("json: bad \\u escape");
            }
            if (code > 0x7F)
              throw CodecError("json: non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: throw CodecError("json: bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        throw CodecError("json: raw control character in string");
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      if (pos_ == before) throw CodecError("json: bad number");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    return JsonValue::number(std::stod(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).run();
}

// ---------------------------------------------------------------------------
// Report <-> JSON
// ---------------------------------------------------------------------------

namespace {

/// Invalid ids serialise as null so wildcards survive the round trip.
template <typename IdType>
JsonValue id_to_json(IdType id) {
  if (!id.valid()) return JsonValue{};
  return JsonValue::number(static_cast<double>(id.value()));
}

template <typename IdType>
IdType id_from_json(const JsonValue& v) {
  if (v.is_null()) return IdType{};
  auto raw = v.as_number();
  if (raw < 0) throw CodecError("json: negative id");
  return IdType(static_cast<typename IdType::rep_type>(raw));
}

}  // namespace

std::string to_json(const A2IReport& report, int indent) {
  JsonValue root = JsonValue::object();
  root.set("kind", JsonValue::string("a2i"));
  root.set("from", id_to_json(report.from));
  root.set("generated_at", JsonValue::number(report.generated_at));
  JsonValue groups = JsonValue::array();
  for (const auto& g : report.groups) {
    JsonValue item = JsonValue::object();
    item.set("isp", id_to_json(g.isp));
    item.set("cdn", id_to_json(g.cdn));
    item.set("server", id_to_json(g.server));
    item.set("mean_buffering_ratio", JsonValue::number(g.mean_buffering_ratio));
    item.set("p90_buffering_ratio", JsonValue::number(g.p90_buffering_ratio));
    item.set("mean_bitrate", JsonValue::number(g.mean_bitrate));
    item.set("mean_join_time", JsonValue::number(g.mean_join_time));
    item.set("mean_engagement", JsonValue::number(g.mean_engagement));
    item.set("sessions", JsonValue::number(static_cast<double>(g.sessions)));
    groups.push_back(std::move(item));
  }
  root.set("groups", std::move(groups));
  JsonValue forecasts = JsonValue::array();
  for (const auto& f : report.forecasts) {
    JsonValue item = JsonValue::object();
    item.set("isp", id_to_json(f.isp));
    item.set("cdn", id_to_json(f.cdn));
    item.set("expected_rate", JsonValue::number(f.expected_rate));
    forecasts.push_back(std::move(item));
  }
  root.set("forecasts", std::move(forecasts));
  return root.dump(indent);
}

A2IReport a2i_from_json(const std::string& text) {
  JsonValue root = JsonValue::parse(text);
  if (root.at("kind").as_string() != "a2i")
    throw CodecError("json: not an a2i report");
  A2IReport report;
  report.from = id_from_json<ProviderId>(root.at("from"));
  report.generated_at = root.at("generated_at").as_number();
  for (const auto& item : root.at("groups").as_array()) {
    QoeGroupReport g;
    g.isp = id_from_json<IspId>(item.at("isp"));
    g.cdn = id_from_json<CdnId>(item.at("cdn"));
    g.server = id_from_json<ServerId>(item.at("server"));
    g.mean_buffering_ratio = item.at("mean_buffering_ratio").as_number();
    g.p90_buffering_ratio = item.at("p90_buffering_ratio").as_number();
    g.mean_bitrate = item.at("mean_bitrate").as_number();
    g.mean_join_time = item.at("mean_join_time").as_number();
    g.mean_engagement = item.at("mean_engagement").as_number();
    g.sessions = static_cast<std::uint64_t>(item.at("sessions").as_number());
    report.groups.push_back(g);
  }
  for (const auto& item : root.at("forecasts").as_array()) {
    TrafficForecast f;
    f.isp = id_from_json<IspId>(item.at("isp"));
    f.cdn = id_from_json<CdnId>(item.at("cdn"));
    f.expected_rate = item.at("expected_rate").as_number();
    report.forecasts.push_back(f);
  }
  return report;
}

std::string to_json(const I2AReport& report, int indent) {
  JsonValue root = JsonValue::object();
  root.set("kind", JsonValue::string("i2a"));
  root.set("from", id_to_json(report.from));
  root.set("generated_at", JsonValue::number(report.generated_at));
  JsonValue peerings = JsonValue::array();
  for (const auto& p : report.peerings) {
    JsonValue item = JsonValue::object();
    item.set("peering", id_to_json(p.peering));
    item.set("isp", id_to_json(p.isp));
    item.set("cdn", id_to_json(p.cdn));
    item.set("capacity", JsonValue::number(p.capacity));
    item.set("utilization", JsonValue::number(p.utilization));
    item.set("congested", JsonValue::boolean(p.congested));
    item.set("selected", JsonValue::boolean(p.selected));
    peerings.push_back(std::move(item));
  }
  root.set("peerings", std::move(peerings));
  JsonValue hints = JsonValue::array();
  for (const auto& h : report.server_hints) {
    JsonValue item = JsonValue::object();
    item.set("cdn", id_to_json(h.cdn));
    item.set("server", id_to_json(h.server));
    item.set("load", JsonValue::number(h.load));
    item.set("online", JsonValue::boolean(h.online));
    hints.push_back(std::move(item));
  }
  root.set("server_hints", std::move(hints));
  JsonValue congestion = JsonValue::array();
  for (const auto& c : report.congestion) {
    JsonValue item = JsonValue::object();
    item.set("isp", id_to_json(c.isp));
    const char* scope = c.scope == CongestionScope::kAccess ? "access"
                        : c.scope == CongestionScope::kPeering ? "peering"
                                                               : "backbone";
    item.set("scope", JsonValue::string(scope));
    item.set("peering", id_to_json(c.peering));
    item.set("severity", JsonValue::number(c.severity));
    congestion.push_back(std::move(item));
  }
  root.set("congestion", std::move(congestion));
  return root.dump(indent);
}

I2AReport i2a_from_json(const std::string& text) {
  JsonValue root = JsonValue::parse(text);
  if (root.at("kind").as_string() != "i2a")
    throw CodecError("json: not an i2a report");
  I2AReport report;
  report.from = id_from_json<ProviderId>(root.at("from"));
  report.generated_at = root.at("generated_at").as_number();
  for (const auto& item : root.at("peerings").as_array()) {
    PeeringStatus p;
    p.peering = id_from_json<PeeringId>(item.at("peering"));
    p.isp = id_from_json<IspId>(item.at("isp"));
    p.cdn = id_from_json<CdnId>(item.at("cdn"));
    p.capacity = item.at("capacity").as_number();
    p.utilization = item.at("utilization").as_number();
    p.congested = item.at("congested").as_bool();
    p.selected = item.at("selected").as_bool();
    report.peerings.push_back(p);
  }
  for (const auto& item : root.at("server_hints").as_array()) {
    ServerHint h;
    h.cdn = id_from_json<CdnId>(item.at("cdn"));
    h.server = id_from_json<ServerId>(item.at("server"));
    h.load = item.at("load").as_number();
    h.online = item.at("online").as_bool();
    report.server_hints.push_back(h);
  }
  for (const auto& item : root.at("congestion").as_array()) {
    CongestionSignal c;
    c.isp = id_from_json<IspId>(item.at("isp"));
    const std::string& scope = item.at("scope").as_string();
    if (scope == "access") c.scope = CongestionScope::kAccess;
    else if (scope == "peering") c.scope = CongestionScope::kPeering;
    else if (scope == "backbone") c.scope = CongestionScope::kBackbone;
    else throw CodecError("json: bad congestion scope '" + scope + "'");
    c.peering = id_from_json<PeeringId>(item.at("peering"));
    c.severity = item.at("severity").as_number();
    report.congestion.push_back(c);
  }
  return report;
}

std::string to_json(const FaultProfile& fault, int indent) {
  JsonValue root = JsonValue::object();
  root.set("kind", JsonValue::string("fault_profile"));
  root.set("drop_rate", JsonValue::number(fault.drop_rate));
  root.set("duplicate_rate", JsonValue::number(fault.duplicate_rate));
  root.set("max_extra_delay", JsonValue::number(fault.max_extra_delay));
  root.set("seed", JsonValue::number(static_cast<double>(fault.seed)));
  JsonValue outages = JsonValue::array();
  for (const auto& w : fault.outages) {
    JsonValue item = JsonValue::object();
    item.set("start", JsonValue::number(w.start));
    item.set("end", JsonValue::number(w.end));
    outages.push_back(std::move(item));
  }
  root.set("outages", std::move(outages));
  return root.dump(indent);
}

FaultProfile fault_profile_from_json(const std::string& text) {
  JsonValue root = JsonValue::parse(text);
  if (root.at("kind").as_string() != "fault_profile")
    throw CodecError("json: not a fault profile");
  FaultProfile fault;
  fault.drop_rate = root.at("drop_rate").as_number();
  fault.duplicate_rate = root.at("duplicate_rate").as_number();
  fault.max_extra_delay = root.at("max_extra_delay").as_number();
  double seed = root.at("seed").as_number();
  if (seed < 0.0) throw CodecError("json: negative seed");
  fault.seed = static_cast<std::uint64_t>(seed);
  for (const auto& item : root.at("outages").as_array()) {
    OutageWindow w;
    w.start = item.at("start").as_number();
    w.end = item.at("end").as_number();
    fault.outages.push_back(w);
  }
  fault.validate();  // ConfigError on semantically invalid profiles
  return fault;
}

std::string to_json(const telemetry::DeliveryHealthSnapshot& h, int indent) {
  JsonValue root = JsonValue::object();
  root.set("kind", JsonValue::string("delivery_health"));
  auto count = [](std::uint64_t v) {
    return JsonValue::number(static_cast<double>(v));
  };
  root.set("publishes", count(h.publishes));
  root.set("deliveries", count(h.deliveries));
  root.set("drops", count(h.drops));
  root.set("duplicates", count(h.duplicates));
  root.set("fetch_attempts", count(h.fetch_attempts));
  root.set("retries", count(h.retries));
  root.set("fresh_hits", count(h.fresh_hits));
  root.set("stale_hits", count(h.stale_hits));
  root.set("misses", count(h.misses));
  root.set("stale_serves", count(h.stale_serves));
  root.set("staleness_p90", JsonValue::number(h.staleness_p90));
  return root.dump(indent);
}

telemetry::DeliveryHealthSnapshot delivery_health_from_json(
    const std::string& text) {
  JsonValue root = JsonValue::parse(text);
  if (root.at("kind").as_string() != "delivery_health")
    throw CodecError("json: not a delivery-health snapshot");
  auto count = [&](const char* key) {
    double v = root.at(key).as_number();
    if (v < 0.0) throw CodecError(std::string("json: negative count ") + key);
    return static_cast<std::uint64_t>(v);
  };
  telemetry::DeliveryHealthSnapshot h;
  h.publishes = count("publishes");
  h.deliveries = count("deliveries");
  h.drops = count("drops");
  h.duplicates = count("duplicates");
  h.fetch_attempts = count("fetch_attempts");
  h.retries = count("retries");
  h.fresh_hits = count("fresh_hits");
  h.stale_hits = count("stale_hits");
  h.misses = count("misses");
  h.stale_serves = count("stale_serves");
  h.staleness_p90 = root.at("staleness_p90").as_number();
  if (h.staleness_p90 < 0.0) throw CodecError("json: negative staleness_p90");
  return h;
}

}  // namespace eona::core
