// Query-side robustness for EONA consumers (§5: control logics "must be
// designed to be robust against" degraded interface data).
//
// A RobustFetcher wraps one subscription's fetch path with:
//  * bounded retry -- when the tick's fetch finds nothing (or only stale
//    data), a chain of up to max_retries re-fetches is scheduled with
//    exponential backoff + jitter, harvesting late (jittered/duplicated)
//    deliveries and riding out short outages between control ticks;
//  * a freshness deadline -- a fetched report older than this is *served*
//    but declared stale, so the consumer can degrade gracefully (e.g. widen
//    its dampening hysteresis) instead of trusting old data blindly;
//  * last-known-good fallback -- the newest report ever fetched is retained
//    and served while the channel yields nothing.
//
// The default RetryPolicy (no retries, infinite freshness) reproduces the
// naive single-fetch-per-tick behaviour exactly.
//
// EndpointHealth extends the same philosophy to *delivery* endpoints: a
// consumer that just watched a fetch die on some endpoint should back off
// from it (exponentially in the consecutive-failure count) instead of
// hammering a dead server, and should forgive it after one success.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "eona/fault.hpp"
#include "sim/scheduler.hpp"

namespace eona::core {

/// How hard a consumer works to get fresh data out of a failable channel.
struct RetryPolicy {
  std::size_t max_retries = 0;   ///< extra fetch attempts after a tick's miss
  Duration base_backoff = 0.5;   ///< delay before the first retry
  double backoff_factor = 2.0;   ///< each further retry waits this much longer
  double jitter_fraction = 0.25; ///< uniform +/- fraction on each backoff
  /// A report older than this is served as *stale*; infinity = never stale.
  Duration freshness_deadline = std::numeric_limits<double>::infinity();

  void validate() const {
    if (base_backoff <= 0.0)
      throw ConfigError("retry: base_backoff must be > 0");
    if (backoff_factor < 1.0)
      throw ConfigError("retry: backoff_factor must be >= 1");
    if (jitter_fraction < 0.0 || jitter_fraction >= 1.0)
      throw ConfigError("retry: jitter_fraction must be in [0, 1)");
    if (freshness_deadline <= 0.0)
      throw ConfigError("retry: freshness_deadline must be > 0");
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Consumer-side delivery-health counters for one subscription.
struct FetchStats {
  std::uint64_t attempts = 0;      ///< fetches issued (ticks + retries)
  std::uint64_t retries = 0;       ///< scheduled backoff re-fetches
  std::uint64_t fresh_hits = 0;    ///< fetches that returned fresh data
  std::uint64_t stale_hits = 0;    ///< fetches that returned only stale data
  std::uint64_t misses = 0;        ///< fetches that returned nothing

  FetchStats& operator+=(const FetchStats& other) {
    attempts += other.attempts;
    retries += other.retries;
    fresh_hits += other.fresh_hits;
    stale_hits += other.stale_hits;
    misses += other.misses;
    return *this;
  }
};

/// Robust wrapper around one subscription. `Report` must expose a
/// `generated_at` TimePoint (both A2IReport and I2AReport do).
template <typename Report>
class RobustFetcher {
 public:
  using Fetch = std::function<std::optional<Report>(TimePoint)>;

  /// `fetch` performs one raw query (may return nullopt); `on_update` (may be
  /// null) fires whenever a retry lands a newer report than previously held,
  /// so the owning controller can refresh its merged view between ticks.
  RobustFetcher(sim::Scheduler& sched, Fetch fetch, RetryPolicy policy,
                std::uint64_t seed, std::function<void()> on_update = nullptr)
      : sched_(sched),
        fetch_(std::move(fetch)),
        policy_(policy),
        stream_(seed),
        on_update_(std::move(on_update)) {
    EONA_EXPECTS(fetch_ != nullptr);
    policy_.validate();
  }

  RobustFetcher(const RobustFetcher&) = delete;
  RobustFetcher& operator=(const RobustFetcher&) = delete;
  ~RobustFetcher() { sched_.cancel(pending_); }

  /// Control-tick entry point: abandon any in-flight retry chain and attempt
  /// a fetch; on a miss or stale-only result, start a new backoff chain.
  void poll() {
    sched_.cancel(pending_);
    attempt_ = 0;
    attempt(/*is_retry=*/false);
  }

  /// Last-known-good report (freshest ever fetched); nullopt before any hit.
  [[nodiscard]] const std::optional<Report>& report() const { return best_; }

  /// Age of the last-known-good report; nullopt when none held.
  [[nodiscard]] std::optional<Duration> age(TimePoint now) const {
    if (!best_) return std::nullopt;
    return now - best_->generated_at;
  }

  /// True while no held report is within the freshness deadline: the
  /// consumer is serving stale data (or none) and should degrade gracefully.
  [[nodiscard]] bool stale(TimePoint now) const {
    return !best_ || now - best_->generated_at > policy_.freshness_deadline;
  }

  [[nodiscard]] const FetchStats& stats() const { return stats_; }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  void attempt(bool is_retry) {
    TimePoint now = sched_.now();
    ++stats_.attempts;
    if (is_retry) ++stats_.retries;
    std::optional<Report> got = fetch_(now);
    bool improved = false;
    if (got) {
      if (!best_ || got->generated_at > best_->generated_at) {
        best_ = std::move(got);
        improved = true;
      }
      if (now - best_->generated_at <= policy_.freshness_deadline)
        ++stats_.fresh_hits;
      else
        ++stats_.stale_hits;
    } else {
      ++stats_.misses;
    }
    if (improved && is_retry && on_update_) on_update_();
    // Fresh data ends the chain; otherwise keep trying, bounded.
    if (!stale(now)) return;
    if (attempt_ >= policy_.max_retries) return;
    Duration backoff = policy_.base_backoff;
    for (std::size_t i = 0; i < attempt_; ++i) backoff *= policy_.backoff_factor;
    if (policy_.jitter_fraction > 0.0)
      backoff *= 1.0 + policy_.jitter_fraction *
                           (2.0 * stream_.uniform(1.0) - 1.0);
    ++attempt_;
    pending_ = sched_.schedule_after(backoff,
                                     [this] { attempt(/*is_retry=*/true); });
  }

  sim::Scheduler& sched_;
  Fetch fetch_;
  RetryPolicy policy_;
  FaultStream stream_;
  std::function<void()> on_update_;
  std::optional<Report> best_;
  FetchStats stats_;
  sim::EventHandle pending_;
  std::size_t attempt_ = 0;
};

/// Per-endpoint failure/backoff tracker for health-checked re-selection.
///
/// Endpoints are caller-packed keys (the AppP uses cdn << 32 | server). A
/// failure opens a hold-down window of base_backoff * factor^(n-1) for n
/// consecutive failures (capped); while held down, available() is false and
/// selection logic should prefer another endpoint -- but MAY still use a
/// held-down one when nothing else is live (better a maybe-dead server than
/// certain failure). One success fully forgives the endpoint.
class EndpointHealth {
 public:
  struct Policy {
    Duration base_backoff = 2.0;  ///< hold-down after the first failure
    double backoff_factor = 2.0;  ///< growth per consecutive failure
    Duration max_backoff = 60.0;  ///< hold-down ceiling
  };

  // Two constructors rather than `Policy policy = {}`: a brace default
  // argument cannot name a nested aggregate whose member initializers are
  // still deferred at this point in the class body (GCC rejects it).
  EndpointHealth() : EndpointHealth(Policy{}) {}
  explicit EndpointHealth(Policy policy) : policy_(policy) {
    EONA_EXPECTS(policy_.base_backoff > 0.0);
    EONA_EXPECTS(policy_.backoff_factor >= 1.0);
    EONA_EXPECTS(policy_.max_backoff >= policy_.base_backoff);
  }

  void record_failure(std::uint64_t endpoint, TimePoint now) {
    Entry& e = entries_[endpoint];
    ++e.consecutive_failures;
    ++total_failures_;
    // Failures landing while the endpoint is already held down (selection
    // logic MAY still use it when nothing else is live) must not re-arm the
    // hold: each straggler would push held_until forward forever and an
    // all-unhealthy fleet would never be probed again. Counting the failure
    // above keeps the *next* post-expiry hold at full strength; the window
    // itself only ever extends when a failure lands on an available
    // endpoint, so a probe opens at least once per max_backoff.
    if (now < e.held_until) return;
    Duration hold = policy_.base_backoff;
    for (std::uint64_t i = 1;
         i < e.consecutive_failures && hold < policy_.max_backoff; ++i)
      hold *= policy_.backoff_factor;
    e.held_until = now + std::min(hold, policy_.max_backoff);
  }

  /// A delivered fetch on the endpoint: forgiven entirely.
  void record_success(std::uint64_t endpoint) { entries_.erase(endpoint); }

  /// False while the endpoint is inside its failure hold-down window.
  [[nodiscard]] bool available(std::uint64_t endpoint, TimePoint now) const {
    auto it = entries_.find(endpoint);
    return it == entries_.end() || now >= it->second.held_until;
  }

  [[nodiscard]] std::uint64_t consecutive_failures(
      std::uint64_t endpoint) const {
    auto it = entries_.find(endpoint);
    return it == entries_.end() ? 0 : it->second.consecutive_failures;
  }

  [[nodiscard]] std::uint64_t total_failures() const {
    return total_failures_;
  }

 private:
  struct Entry {
    std::uint64_t consecutive_failures = 0;
    TimePoint held_until = 0.0;
  };

  Policy policy_;
  std::map<std::uint64_t, Entry> entries_;  // ordered: deterministic
  std::uint64_t total_failures_ = 0;
};

}  // namespace eona::core
