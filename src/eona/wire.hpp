// Binary wire format for EONA reports.
//
// Self-describing enough to fail loudly: a 4-byte magic, a format version,
// a message-kind byte, and a trailing FNV-1a checksum. All integers are
// little-endian fixed width; doubles are IEEE-754 bit patterns. Round-trip
// fidelity is property-tested in tests/eona_wire_test.cpp.
//
// Version 2: A2I frames carry a dictionary of distinct (ISP, CDN, server)
// tuples -- built by interning each tuple once, exactly like the telemetry
// pipeline keys its group tables -- and groups/forecasts reference dict
// indexes instead of re-encoding their ids. Tuples shared between the QoE
// groups and the traffic forecasts (and any future per-tuple section) are
// emitted once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "eona/messages.hpp"

namespace eona::core {

/// Serialized message bytes.
using WireBytes = std::vector<std::uint8_t>;

/// Message kinds carried on the wire.
enum class MessageKind : std::uint8_t { kA2I = 1, kI2A = 2 };

/// Current format version; decoders reject other versions.
inline constexpr std::uint8_t kWireVersion = 2;

/// Low-level append-only byte writer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] const WireBytes& bytes() const { return bytes_; }
  [[nodiscard]] WireBytes take() { return std::move(bytes_); }

 private:
  WireBytes bytes_;
};

/// Low-level sequential byte reader; throws CodecError on underrun.
class WireReader {
 public:
  explicit WireReader(const WireBytes& bytes) : bytes_(&bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean() { return u8() != 0; }

  [[nodiscard]] std::size_t remaining() const {
    return bytes_->size() - pos_;
  }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const;
  const WireBytes* bytes_;
  std::size_t pos_ = 0;
};

/// Encode a report into framed, checksummed bytes.
[[nodiscard]] WireBytes encode(const A2IReport& report);
[[nodiscard]] WireBytes encode(const I2AReport& report);

/// Peek at the message kind of a frame (validates magic/version/checksum).
[[nodiscard]] MessageKind peek_kind(const WireBytes& bytes);

/// Decode; throws CodecError on malformed input or kind mismatch.
[[nodiscard]] A2IReport decode_a2i(const WireBytes& bytes);
[[nodiscard]] I2AReport decode_i2a(const WireBytes& bytes);

}  // namespace eona::core
