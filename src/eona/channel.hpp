// Report channel with propagation delay: models the inherent staleness of
// EONA data (§5 "dealing with staleness"). A report published at time t
// becomes visible to queries at t + delay; queries always see the newest
// visible report. The staleness bench sweeps `delay` from zero to minutes.
//
// The channel may additionally carry a FaultProfile (fault.hpp): publishes
// can be dropped or duplicated, deliveries gain jittered extra delay, and
// scheduled outage windows take the whole channel down (publishes lost,
// queries unanswered). An ideal profile leaves behaviour byte-identical to
// the unfaulted channel.
#pragma once

#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "eona/fault.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"

namespace eona::core {

/// Publish-rate budget for one broker leg. Default is unlimited, which is
/// byte-identical to a channel without a bucket (no draws, no suppression).
struct RateLimit {
  /// Sustained publishes per second the leg may carry; infinity = unlimited.
  double rate = std::numeric_limits<double>::infinity();
  /// Burst allowance (bucket depth, in publishes).
  double burst = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool unlimited() const {
    return !std::isfinite(rate) || !std::isfinite(burst);
  }

  void validate() const {
    if (rate <= 0.0) throw ConfigError("rate limit: rate must be > 0");
    if (burst < 1.0) throw ConfigError("rate limit: burst must be >= 1");
  }

  friend bool operator==(const RateLimit&, const RateLimit&) = default;
};

/// Deterministic token bucket (no randomness: refill is pure arithmetic on
/// the simulation clock, so rate-limited runs replay bit-for-bit).
class TokenBucket {
 public:
  TokenBucket() = default;
  explicit TokenBucket(RateLimit limit) : limit_(limit) {
    if (!limit_.unlimited()) {
      limit_.validate();
      tokens_ = limit_.burst;
    }
  }

  /// Take one token at `now`; false when the bucket is dry.
  bool try_take(TimePoint now) {
    if (limit_.unlimited()) return true;
    if (primed_) {
      tokens_ = std::min(limit_.burst, tokens_ + (now - last_) * limit_.rate);
    }
    last_ = now;
    primed_ = true;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] const RateLimit& limit() const { return limit_; }

 private:
  RateLimit limit_;
  double tokens_ = 0.0;
  TimePoint last_ = 0.0;
  bool primed_ = false;
};

/// Delayed-visibility single-producer channel of reports of type T.
template <typename T>
class ReportChannel {
 public:
  explicit ReportChannel(Duration delay = 0.0, FaultProfile fault = {})
      : delay_(delay), fault_(std::move(fault)), stream_(fault_.seed) {
    EONA_EXPECTS(delay >= 0.0);
    fault_.validate();
  }

  [[nodiscard]] Duration delay() const { return delay_; }
  void set_delay(Duration delay) {
    EONA_EXPECTS(delay >= 0.0);
    delay_ = delay;
  }

  [[nodiscard]] const FaultProfile& fault() const { return fault_; }
  /// Replace the fault profile (validates; restarts the fault stream).
  void set_fault(FaultProfile fault) {
    fault.validate();
    fault_ = std::move(fault);
    stream_ = FaultStream(fault_.seed);
  }

  /// Budget publishes through a token bucket (broker-side rate limiting).
  /// The default unlimited bucket leaves the channel byte-identical.
  void set_rate_limit(RateLimit limit) { bucket_ = TokenBucket(limit); }
  [[nodiscard]] const RateLimit& rate_limit() const { return bucket_.limit(); }

  /// Emit publish/drop/delivery events on `bus`, labelled with the channel's
  /// producer/consumer pair and report kind ("a2i"/"i2a"). Observational
  /// only; delivery behaviour is identical with or without a bus.
  void set_event_bus(sim::EventBus* bus, ProviderId from, ProviderId to,
                     const char* kind) {
    bus_ = bus;
    from_ = from;
    to_ = to;
    kind_ = kind;
  }

  /// Publish a report at time `now`. Subject to the fault profile: the
  /// delivery may be dropped (lost for good), duplicated, or delayed extra.
  void publish(T report, TimePoint now) {
    EONA_EXPECTS(history_.empty() || now >= history_.back().published_at);
    ++stats_.published;
    if (bus_ != nullptr)
      bus_->publish(sim::ReportPublishedEvent{now, from_, to_, kind_,
                                              stats_.published});
    // Broker-side budget: a dry bucket suppresses the publish before any
    // fault processing, so no fault-stream draw is consumed for it.
    if (!bucket_.try_take(now)) {
      ++stats_.rate_limited;
      return;
    }
    if (fault_.in_outage(now)) {
      ++stats_.dropped;  // the endpoint is down; the report is never queued
      if (bus_ != nullptr)
        bus_->publish(sim::ReportDroppedEvent{now, from_, to_, kind_, true});
      return;
    }
    if (fault_.drop_rate > 0.0 && stream_.chance(fault_.drop_rate)) {
      ++stats_.dropped;
      if (bus_ != nullptr)
        bus_->publish(sim::ReportDroppedEvent{now, from_, to_, kind_, false});
      return;
    }
    bool duplicate = fault_.duplicate_rate > 0.0 &&
                     stream_.chance(fault_.duplicate_rate);
    deliver(report, now);
    if (duplicate) {
      deliver(std::move(report), now);  // independent jitter per copy
      ++stats_.duplicated;
    }
    // Keep only what queries can still distinguish: everything older than
    // the newest visible entry will never be returned again.
    trim(now);
  }

  /// Newest report visible at `now` (i.e. whose delivery time, including any
  /// jitter, is at or before now). nullopt when none is visible yet, or when
  /// `now` falls inside an outage window (the endpoint does not answer).
  [[nodiscard]] std::optional<T> fetch(TimePoint now) const {
    if (fault_.in_outage(now)) return std::nullopt;
    const Entry* best = nullptr;
    for (const Entry& e : history_)
      if (visible_at(e) <= now) best = &e;
    if (!best) return std::nullopt;
    return best->report;
  }

  /// Age of the report `fetch(now)` would return; nullopt when none.
  [[nodiscard]] std::optional<Duration> staleness(TimePoint now) const {
    if (fault_.in_outage(now)) return std::nullopt;
    const Entry* best = nullptr;
    for (const Entry& e : history_)
      if (visible_at(e) <= now) best = &e;
    if (!best) return std::nullopt;
    return now - best->published_at;
  }

  [[nodiscard]] std::uint64_t published_count() const {
    return stats_.published;
  }
  /// Delivery-health counters for this channel.
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

 private:
  struct Entry {
    TimePoint published_at;
    Duration extra_delay;  ///< fault-injected jitter on top of delay_
    T report;
  };

  [[nodiscard]] TimePoint visible_at(const Entry& e) const {
    return e.published_at + delay_ + e.extra_delay;
  }

  void deliver(T report, TimePoint now) {
    Duration extra = fault_.max_extra_delay > 0.0
                         ? stream_.uniform(fault_.max_extra_delay)
                         : 0.0;
    history_.push_back(Entry{now, extra, std::move(report)});
    ++stats_.delivered;
    if (bus_ != nullptr)
      bus_->publish(
          sim::ReportDeliveredEvent{now, from_, to_, kind_, delay_ + extra});
  }

  void trim(TimePoint now) {
    // Drop entries strictly older than the newest one that is already
    // visible -- fetch() can never return them. (Entries queued after the
    // newest visible one may become visible later and survive.)
    std::size_t newest_visible = history_.size();
    for (std::size_t i = 0; i < history_.size(); ++i)
      if (visible_at(history_[i]) <= now) newest_visible = i;
    if (newest_visible == history_.size()) return;
    while (newest_visible > 0) {
      history_.pop_front();
      --newest_visible;
    }
  }

  Duration delay_;
  FaultProfile fault_;
  FaultStream stream_;
  TokenBucket bucket_;
  std::deque<Entry> history_;
  ChannelStats stats_;

  sim::EventBus* bus_ = nullptr;
  ProviderId from_;
  ProviderId to_;
  const char* kind_ = "";
};

}  // namespace eona::core
