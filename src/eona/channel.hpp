// Report channel with propagation delay: models the inherent staleness of
// EONA data (§5 "dealing with staleness"). A report published at time t
// becomes visible to queries at t + delay; queries always see the newest
// visible report. The staleness bench sweeps `delay` from zero to minutes.
#pragma once

#include <deque>
#include <optional>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace eona::core {

/// Delayed-visibility single-producer channel of reports of type T.
template <typename T>
class ReportChannel {
 public:
  explicit ReportChannel(Duration delay = 0.0) : delay_(delay) {
    EONA_EXPECTS(delay >= 0.0);
  }

  [[nodiscard]] Duration delay() const { return delay_; }
  void set_delay(Duration delay) {
    EONA_EXPECTS(delay >= 0.0);
    delay_ = delay;
  }

  /// Publish a report at time `now`.
  void publish(T report, TimePoint now) {
    EONA_EXPECTS(history_.empty() || now >= history_.back().published_at);
    history_.push_back(Entry{now, std::move(report)});
    ++published_;
    // Keep only what queries can still distinguish: everything older than
    // the newest visible entry will never be returned again.
    trim(now);
  }

  /// Newest report visible at `now` (i.e. published at or before
  /// now - delay). nullopt when none is visible yet.
  [[nodiscard]] std::optional<T> fetch(TimePoint now) const {
    const Entry* best = nullptr;
    for (const Entry& e : history_)
      if (e.published_at + delay_ <= now) best = &e;
    if (!best) return std::nullopt;
    return best->report;
  }

  /// Age of the report `fetch(now)` would return; nullopt when none.
  [[nodiscard]] std::optional<Duration> staleness(TimePoint now) const {
    const Entry* best = nullptr;
    for (const Entry& e : history_)
      if (e.published_at + delay_ <= now) best = &e;
    if (!best) return std::nullopt;
    return now - best->published_at;
  }

  [[nodiscard]] std::uint64_t published_count() const { return published_; }

 private:
  struct Entry {
    TimePoint published_at;
    T report;
  };

  void trim(TimePoint now) {
    // Drop entries strictly older than the newest one that is already
    // visible -- fetch() can never return them.
    std::size_t newest_visible = history_.size();
    for (std::size_t i = 0; i < history_.size(); ++i)
      if (history_[i].published_at + delay_ <= now) newest_visible = i;
    if (newest_visible == history_.size()) return;
    while (newest_visible > 0) {
      history_.pop_front();
      --newest_visible;
    }
  }

  Duration delay_;
  std::deque<Entry> history_;
  std::uint64_t published_ = 0;
};

}  // namespace eona::core
