// Fault injection for the EONA control plane (paper §5: staleness and trust
// across an organizational boundary presuppose that the boundary itself can
// misbehave).
//
// A FaultProfile makes one peer's ReportChannel unreliable in four seeded,
// deterministic ways:
//  * drop        -- a published report is lost before it reaches the peer;
//  * duplication -- a delivered report is enqueued twice (independent delays);
//  * jitter      -- each delivery gains an extra uniform [0, max) delay on top
//                   of the channel's configured propagation delay;
//  * outages     -- scheduled windows during which the looking glass is down:
//                   publishes into the channel are lost AND queries fail.
//
// All randomness flows through the profile's own seed, so a (profile, publish
// sequence) pair reproduces the same faults bit-for-bit, and an all-zero
// profile is byte-identical to the unfaulted channel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace eona::core {

/// A scheduled interval [start, end) during which the channel is fully down.
struct OutageWindow {
  TimePoint start = 0.0;
  TimePoint end = 0.0;

  friend bool operator==(const OutageWindow&, const OutageWindow&) = default;
};

/// Per-peer unreliability of one report channel. Default-constructed profile
/// is ideal (no faults).
struct FaultProfile {
  double drop_rate = 0.0;        ///< P(a publish into the channel is lost)
  double duplicate_rate = 0.0;   ///< P(a delivered publish is enqueued twice)
  Duration max_extra_delay = 0.0;  ///< per-delivery jitter, uniform [0, max)
  std::vector<OutageWindow> outages;  ///< must be sorted and non-overlapping
  std::uint64_t seed = 0;        ///< fault stream seed (deterministic)

  [[nodiscard]] bool ideal() const {
    return drop_rate == 0.0 && duplicate_rate == 0.0 &&
           max_extra_delay == 0.0 && outages.empty();
  }

  [[nodiscard]] bool in_outage(TimePoint t) const {
    for (const OutageWindow& w : outages)
      if (t >= w.start && t < w.end) return true;
    return false;
  }

  /// Throws ConfigError on out-of-range rates, negative jitter, or malformed
  /// (empty, inverted, unsorted, overlapping) outage windows.
  void validate() const {
    if (drop_rate < 0.0 || drop_rate > 1.0)
      throw ConfigError("fault: drop_rate must be in [0, 1]");
    if (duplicate_rate < 0.0 || duplicate_rate > 1.0)
      throw ConfigError("fault: duplicate_rate must be in [0, 1]");
    if (max_extra_delay < 0.0)
      throw ConfigError("fault: max_extra_delay must be >= 0");
    for (std::size_t i = 0; i < outages.size(); ++i) {
      if (outages[i].end <= outages[i].start)
        throw ConfigError("fault: outage window must have end > start");
      if (i > 0 && outages[i].start < outages[i - 1].end)
        throw ConfigError("fault: outage windows must be sorted and disjoint");
    }
  }

  friend bool operator==(const FaultProfile&, const FaultProfile&) = default;
};

/// Cumulative per-channel delivery counters (producer side of the health
/// telemetry; the consumer side lives with the robust fetcher).
struct ChannelStats {
  std::uint64_t published = 0;   ///< publish() calls
  std::uint64_t delivered = 0;   ///< entries that actually reached the queue
  std::uint64_t dropped = 0;     ///< lost to drop_rate or an outage
  std::uint64_t duplicated = 0;  ///< extra copies enqueued
  std::uint64_t rate_limited = 0;  ///< suppressed by the broker's token bucket

  ChannelStats& operator+=(const ChannelStats& other) {
    published += other.published;
    delivered += other.delivered;
    dropped += other.dropped;
    duplicated += other.duplicated;
    rate_limited += other.rate_limited;
    return *this;
  }

  friend bool operator==(const ChannelStats&, const ChannelStats&) = default;
};

/// Deterministic draw stream for one faulted channel. A tiny dedicated
/// generator (splitmix64) rather than sim::Rng so that a channel with an
/// all-zero profile performs *no* draws and stays byte-identical to the
/// unfaulted one, and so the fault stream never perturbs workload RNG.
class FaultStream {
 public:
  explicit FaultStream(std::uint64_t seed) : state_(seed) {}

  /// True with probability p; consumes one draw.
  bool chance(double p) { return next_unit() < p; }

  /// Uniform in [0, limit); consumes one draw.
  double uniform(double limit) { return next_unit() * limit; }

 private:
  double next_unit() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    // 53 mantissa bits -> [0, 1).
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  std::uint64_t state_;
};

}  // namespace eona::core
