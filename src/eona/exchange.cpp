#include "eona/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace eona::core {

void Exchange::set_event_bus(sim::EventBus* bus) {
  bus_ = bus;
  for (auto& [id, tenant] : appps_) tenant.glass.set_event_bus(bus_, "a2i");
  for (auto& [id, tenant] : infps_) tenant.glass.set_event_bus(bus_, "i2a");
}

void Exchange::register_appp(ProviderId id, TenantQuota quota) {
  EONA_EXPECTS(id.valid());
  if (quota.egress_share <= 0.0 || quota.egress_share > 1.0)
    throw ConfigError("exchange: egress_share must be in (0, 1]");
  auto [it, inserted] = appps_.try_emplace(id, id, quota);
  if (!inserted)
    throw ConfigError("exchange: appp " + std::to_string(id.value()) +
                      " already registered");
  if (bus_ != nullptr) it->second.glass.set_event_bus(bus_, "a2i");
}

void Exchange::register_infp(ProviderId id) {
  EONA_EXPECTS(id.valid());
  auto [it, inserted] = infps_.try_emplace(id, id);
  if (!inserted)
    throw ConfigError("exchange: infp " + std::to_string(id.value()) +
                      " already registered");
  if (bus_ != nullptr) it->second.glass.set_event_bus(bus_, "i2a");
}

void Exchange::unregister_appp(ProviderId id) {
  require_appp(id);
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->first.first == id) {
      close_a2i_leg(it->first.first, it->first.second);
      close_i2a_leg(it->first.first, it->first.second);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  appps_.erase(id);
}

void Exchange::unregister_infp(ProviderId id) {
  require_infp(id);
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->first.second == id) {
      close_a2i_leg(it->first.first, it->first.second);
      close_i2a_leg(it->first.first, it->first.second);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  infps_.erase(id);
}

void Exchange::set_quota(ProviderId appp, TenantQuota quota) {
  if (quota.egress_share <= 0.0 || quota.egress_share > 1.0)
    throw ConfigError("exchange: egress_share must be in (0, 1]");
  require_appp(appp).quota = quota;
}

const TenantQuota& Exchange::quota(ProviderId appp) const {
  return require_appp(appp).quota;
}

void Exchange::renormalize_quotas() {
  double total = total_egress_share();
  if (appps_.empty() || total <= 0.0) return;
  for (auto& [id, tenant] : appps_) tenant.quota.egress_share /= total;
}

double Exchange::total_egress_share() const {
  double total = 0.0;
  for (const auto& [id, tenant] : appps_) total += tenant.quota.egress_share;
  return total;
}

void Exchange::set_egress_reference(BitsPerSecond reference) {
  if (reference <= 0.0)
    throw ConfigError("exchange: egress reference must be > 0");
  egress_reference_ = reference;
}

void Exchange::open_a2i_leg(ProviderId appp, ProviderId infp,
                            const TenantLink& link) {
  if (a2i_tokens_.count({appp, infp}) > 0) return;  // already live
  std::string token = registry_.mint_token(appp, infp);
  require_appp(appp).glass.authorize(
      infp, token, apply_trust(link.trust, link.a2i_policy), link.a2i_delay,
      link.a2i_fault);
  a2i_tokens_[{appp, infp}] = std::move(token);
}

void Exchange::open_i2a_leg(ProviderId appp, ProviderId infp,
                            const TenantLink& link) {
  if (i2a_tokens_.count({infp, appp}) > 0) return;  // already live
  std::string token = registry_.mint_token(infp, appp);
  InfTenant& inf = require_infp(infp);
  inf.glass.authorize(appp, token, apply_trust(link.trust, link.i2a_policy),
                      link.i2a_delay, link.i2a_fault);
  if (!link.i2a_rate.unlimited())
    inf.glass.set_peer_rate_limit(appp, link.i2a_rate);
  i2a_tokens_[{infp, appp}] = std::move(token);
}

void Exchange::close_a2i_leg(ProviderId appp, ProviderId infp) {
  auto token = a2i_tokens_.find({appp, infp});
  if (token == a2i_tokens_.end()) return;
  AppTenant& app = require_appp(appp);
  retired_ += app.glass.peer_stats(infp);
  app.glass.revoke(infp);
  a2i_tokens_.erase(token);
}

void Exchange::close_i2a_leg(ProviderId appp, ProviderId infp) {
  auto token = i2a_tokens_.find({infp, appp});
  if (token == i2a_tokens_.end()) return;
  InfTenant& inf = require_infp(infp);
  retired_ += inf.glass.peer_stats(appp);
  inf.glass.revoke(appp);
  i2a_tokens_.erase(token);
}

void Exchange::wire(ProviderId appp, ProviderId infp, const TenantLink& link) {
  require_appp(appp);
  require_infp(infp);
  // Same sequence as the pre-broker scenarios::wire_eona helper: mint the
  // A2I token and open that leg, then the I2A token and leg. Trust-level
  // redaction composes onto the configured base policies here, once.
  open_a2i_leg(appp, infp, link);
  open_i2a_leg(appp, infp, link);
  links_[{appp, infp}] = link;
}

void Exchange::unwire(ProviderId appp, ProviderId infp) {
  auto it = links_.find({appp, infp});
  if (it == links_.end())
    throw ConfigError("exchange: no link " + std::to_string(appp.value()) +
                      " <-> " + std::to_string(infp.value()) + " to unwire");
  close_a2i_leg(appp, infp);
  close_i2a_leg(appp, infp);
  links_.erase(it);
}

void Exchange::crash() {
  if (crashed_) return;
  crashed_ = true;
  // Every broker-minted token dies with the broker: one epoch bump fences
  // all of them, and the legs themselves (undelivered reports included) are
  // torn down. The durable records -- registration, quotas, links_ -- are
  // what a restarted broker recovers from its registry.
  ++epoch_;
  for (const auto& [key, link] : links_) {
    close_a2i_leg(key.first, key.second);
    close_i2a_leg(key.first, key.second);
  }
}

void Exchange::restart() {
  crashed_ = false;
}

std::uint64_t Exchange::reattach(ProviderId tenant) {
  if (crashed_) return 0;  // still down: caller backs off and retries
  bool known = false;
  if (has_appp(tenant)) {
    known = true;
    for (const auto& [key, link] : links_)
      if (key.first == tenant) open_a2i_leg(key.first, key.second, link);
  }
  if (has_infp(tenant)) {
    known = true;
    for (const auto& [key, link] : links_)
      if (key.second == tenant) open_i2a_leg(key.first, key.second, link);
  }
  if (!known)
    throw NotFoundError("exchange: tenant " + std::to_string(tenant.value()) +
                        " not registered");
  return epoch_;
}

A2IReport Exchange::clamp_forecasts(const AppTenant& tenant,
                                    const A2IReport& report) {
  // Allowance per ISP: this tenant's share of the exchange's egress
  // reference. Infinite reference (the default) never clamps.
  const BitsPerSecond allowance =
      tenant.quota.egress_share * egress_reference_;
  if (!std::isfinite(allowance)) return report;

  std::map<IspId, BitsPerSecond> claimed;
  for (const TrafficForecast& f : report.forecasts)
    claimed[f.isp] += f.expected_rate;

  bool clamped = false;
  A2IReport out = report;
  for (TrafficForecast& f : out.forecasts) {
    BitsPerSecond total = claimed[f.isp];
    if (total <= allowance) continue;
    f.expected_rate *= allowance / total;
    clamped = true;
  }
  if (clamped) ++clamp_count_;
  return out;
}

bool Exchange::publish_a2i(ProviderId appp, const A2IReport& report,
                           TimePoint now, std::uint64_t epoch) {
  if (crashed_ || epoch != epoch_) {
    ++epoch_rejected_;
    return false;
  }
  auto it = appps_.find(appp);
  if (it == appps_.end()) return false;  // churned away mid-run
  it->second.glass.publish(clamp_forecasts(it->second, report), now);
  return true;
}

bool Exchange::publish_i2a(ProviderId infp, const I2AReport& report,
                           TimePoint now, std::uint64_t epoch) {
  if (crashed_ || epoch != epoch_) {
    ++epoch_rejected_;
    return false;
  }
  auto it = infps_.find(infp);
  if (it == infps_.end()) return false;  // churned away mid-run
  it->second.glass.publish(report, now);
  return true;
}

std::optional<A2IReport> Exchange::fetch_a2i(ProviderId infp, ProviderId appp,
                                             TimePoint now) const {
  if (crashed_) return std::nullopt;  // broker down: consumers fall back
  auto token = a2i_tokens_.find({appp, infp});
  if (token == a2i_tokens_.end()) {
    // A configured leg whose producer has not reattached yet answers empty;
    // a pair that was never wired is a caller bug, as before.
    if (wired(appp, infp)) return std::nullopt;
    throw AccessDenied("exchange: no a2i leg " + std::to_string(appp.value()) +
                       " -> " + std::to_string(infp.value()));
  }
  return require_appp(appp).glass.query(infp, token->second, now);
}

std::optional<I2AReport> Exchange::fetch_i2a(ProviderId appp, ProviderId infp,
                                             TimePoint now) const {
  if (crashed_) return std::nullopt;
  auto token = i2a_tokens_.find({infp, appp});
  if (token == i2a_tokens_.end()) {
    if (wired(appp, infp)) return std::nullopt;
    throw AccessDenied("exchange: no i2a leg " + std::to_string(infp.value()) +
                       " -> " + std::to_string(appp.value()));
  }
  return require_infp(infp).glass.query(appp, token->second, now);
}

const ChannelStats& Exchange::a2i_leg_stats(ProviderId appp,
                                            ProviderId infp) const {
  // A leg torn down by crash/churn has no live counters (its history lives
  // in retired_); health snapshots taken mid-outage must not throw.
  static const ChannelStats kNoLeg{};
  if (a2i_tokens_.count({appp, infp}) == 0) return kNoLeg;
  return require_appp(appp).glass.peer_stats(infp);
}

const ChannelStats& Exchange::i2a_leg_stats(ProviderId infp,
                                            ProviderId appp) const {
  static const ChannelStats kNoLeg{};
  if (i2a_tokens_.count({infp, appp}) == 0) return kNoLeg;
  return require_infp(infp).glass.peer_stats(appp);
}

ChannelStats Exchange::total_delivery_stats() const {
  ChannelStats total = retired_;
  for (const auto& [id, tenant] : appps_) total += tenant.glass.delivery_stats();
  for (const auto& [id, tenant] : infps_) total += tenant.glass.delivery_stats();
  return total;
}

A2IEndpoint& Exchange::a2i_glass(ProviderId appp) {
  return require_appp(appp).glass;
}

I2AEndpoint& Exchange::i2a_glass(ProviderId infp) {
  return require_infp(infp).glass;
}

std::string Exchange::invariant_violation() const {
  if (crashed_ && (!a2i_tokens_.empty() || !i2a_tokens_.empty()))
    return "exchange: bearer token outstanding while the broker is crashed";
  for (const auto& [key, token] : a2i_tokens_)
    if (links_.count(key) == 0)
      return "exchange: live a2i token without a durable link record";
  for (const auto& [key, token] : i2a_tokens_)
    if (links_.count({key.second, key.first}) == 0)
      return "exchange: live i2a token without a durable link record";
  for (const auto& [key, link] : links_) {
    // A restored leg must carry exactly the trust-redacted policy recorded
    // at wire() time: a reattach that replayed the raw base policy would
    // leak redacted attributes.
    if (a2i_tokens_.count(key) > 0) {
      const AppTenant& app = require_appp(key.first);
      if (!(app.glass.peer_policy(key.second) ==
            apply_trust(link.trust, link.a2i_policy)))
        return "exchange: a2i leg policy drifted from its trust redaction";
    }
    if (i2a_tokens_.count({key.second, key.first}) > 0) {
      const InfTenant& inf = require_infp(key.second);
      if (!(inf.glass.peer_policy(key.first) ==
            apply_trust(link.trust, link.i2a_policy)))
        return "exchange: i2a leg policy drifted from its trust redaction";
    }
  }
  if (std::isfinite(egress_reference_) &&
      total_egress_share() > 1.0 + 1e-9)
    return "exchange: tenant egress shares sum to " +
           std::to_string(total_egress_share()) + " > 1";
  return {};
}

Exchange::AppTenant& Exchange::require_appp(ProviderId id) {
  auto it = appps_.find(id);
  if (it == appps_.end())
    throw NotFoundError("exchange: appp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

const Exchange::AppTenant& Exchange::require_appp(ProviderId id) const {
  auto it = appps_.find(id);
  if (it == appps_.end())
    throw NotFoundError("exchange: appp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

Exchange::InfTenant& Exchange::require_infp(ProviderId id) {
  auto it = infps_.find(id);
  if (it == infps_.end())
    throw NotFoundError("exchange: infp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

const Exchange::InfTenant& Exchange::require_infp(ProviderId id) const {
  auto it = infps_.find(id);
  if (it == infps_.end())
    throw NotFoundError("exchange: infp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

// --- ExchangeEndpoint -------------------------------------------------------

ExchangeEndpoint& ExchangeEndpoint::operator=(const ExchangeEndpoint& other) {
  if (this == &other) return *this;
  disarm();
  exchange_ = other.exchange_;
  self_ = other.self_;
  epoch_ = other.epoch_;
  sched_ = nullptr;
  on_reattach_ = nullptr;
  attempt_ = 0;
  chain_armed_ = false;
  return *this;
}

void ExchangeEndpoint::arm_reattach(sim::Scheduler& sched, std::uint64_t seed,
                                    ReattachPolicy policy) {
  policy.validate();
  sched_ = &sched;
  policy_ = policy;
  rng_ = FaultStream(seed);
}

void ExchangeEndpoint::on_broker_fault(const char* kind, TimePoint now) {
  if (std::strcmp(kind, "exchange_crash") == 0) begin_reattach(now);
  // A restart needs no push: the running chain's next attempt lands it. An
  // endpoint that somehow missed the crash event re-arms off its first
  // rejected publish instead.
}

void ExchangeEndpoint::begin_reattach(TimePoint now) {
  if (sched_ == nullptr || chain_armed_ || attached()) return;
  chain_armed_ = true;
  detach_started_ = now;
  attempt_ = 0;
  schedule_next_attempt();
}

void ExchangeEndpoint::attempt_reattach() {
  ++attempts_total_;
  std::uint64_t epoch = exchange_->reattach(self_);
  if (epoch == 0) {  // broker still down
    schedule_next_attempt();
    return;
  }
  TimePoint now = sched_->now();
  epoch_ = epoch;
  chain_armed_ = false;
  ++reattaches_;
  last_reattach_at_ = now;
  detached_seconds_ += now - detach_started_;
  if (on_reattach_) on_reattach_(now);
}

void ExchangeEndpoint::schedule_next_attempt() {
  Duration backoff = policy_.base_backoff;
  for (std::size_t i = 0; i < attempt_ && backoff < policy_.max_backoff; ++i)
    backoff *= policy_.backoff_factor;
  backoff = std::min(backoff, policy_.max_backoff);
  if (policy_.jitter_fraction > 0.0)
    backoff *= 1.0 + policy_.jitter_fraction * (2.0 * rng_.uniform(1.0) - 1.0);
  ++attempt_;
  pending_ =
      sched_->schedule_after(backoff, [this] { attempt_reattach(); });
}

}  // namespace eona::core
