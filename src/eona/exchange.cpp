#include "eona/exchange.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace eona::core {

void Exchange::set_event_bus(sim::EventBus* bus) {
  bus_ = bus;
  for (auto& [id, tenant] : appps_) tenant.glass.set_event_bus(bus_, "a2i");
  for (auto& [id, tenant] : infps_) tenant.glass.set_event_bus(bus_, "i2a");
}

void Exchange::register_appp(ProviderId id, TenantQuota quota) {
  EONA_EXPECTS(id.valid());
  if (quota.egress_share <= 0.0 || quota.egress_share > 1.0)
    throw ConfigError("exchange: egress_share must be in (0, 1]");
  auto [it, inserted] = appps_.try_emplace(id, id, quota);
  if (!inserted)
    throw ConfigError("exchange: appp " + std::to_string(id.value()) +
                      " already registered");
  if (bus_ != nullptr) it->second.glass.set_event_bus(bus_, "a2i");
}

void Exchange::register_infp(ProviderId id) {
  EONA_EXPECTS(id.valid());
  auto [it, inserted] = infps_.try_emplace(id, id);
  if (!inserted)
    throw ConfigError("exchange: infp " + std::to_string(id.value()) +
                      " already registered");
  if (bus_ != nullptr) it->second.glass.set_event_bus(bus_, "i2a");
}

void Exchange::set_quota(ProviderId appp, TenantQuota quota) {
  if (quota.egress_share <= 0.0 || quota.egress_share > 1.0)
    throw ConfigError("exchange: egress_share must be in (0, 1]");
  require_appp(appp).quota = quota;
}

const TenantQuota& Exchange::quota(ProviderId appp) const {
  return require_appp(appp).quota;
}

void Exchange::set_egress_reference(BitsPerSecond reference) {
  if (reference <= 0.0)
    throw ConfigError("exchange: egress reference must be > 0");
  egress_reference_ = reference;
}

void Exchange::wire(ProviderId appp, ProviderId infp, const TenantLink& link) {
  AppTenant& app = require_appp(appp);
  InfTenant& inf = require_infp(infp);
  // Same sequence as the pre-broker scenarios::wire_eona helper: mint the
  // A2I token and open that leg, then the I2A token and leg. Trust-level
  // redaction composes onto the configured base policies here, once.
  std::string a2i_token = registry_.mint_token(appp, infp);
  app.glass.authorize(infp, a2i_token, apply_trust(link.trust, link.a2i_policy),
                      link.a2i_delay, link.a2i_fault);
  a2i_tokens_[{appp, infp}] = std::move(a2i_token);

  std::string i2a_token = registry_.mint_token(infp, appp);
  inf.glass.authorize(appp, i2a_token, apply_trust(link.trust, link.i2a_policy),
                      link.i2a_delay, link.i2a_fault);
  if (!link.i2a_rate.unlimited())
    inf.glass.set_peer_rate_limit(appp, link.i2a_rate);
  i2a_tokens_[{infp, appp}] = std::move(i2a_token);
}

A2IReport Exchange::clamp_forecasts(const AppTenant& tenant,
                                    const A2IReport& report) {
  // Allowance per ISP: this tenant's share of the exchange's egress
  // reference. Infinite reference (the default) never clamps.
  const BitsPerSecond allowance =
      tenant.quota.egress_share * egress_reference_;
  if (!std::isfinite(allowance)) return report;

  std::map<IspId, BitsPerSecond> claimed;
  for (const TrafficForecast& f : report.forecasts)
    claimed[f.isp] += f.expected_rate;

  bool clamped = false;
  A2IReport out = report;
  for (TrafficForecast& f : out.forecasts) {
    BitsPerSecond total = claimed[f.isp];
    if (total <= allowance) continue;
    f.expected_rate *= allowance / total;
    clamped = true;
  }
  if (clamped) ++clamp_count_;
  return out;
}

void Exchange::publish_a2i(ProviderId appp, const A2IReport& report,
                           TimePoint now) {
  AppTenant& tenant = require_appp(appp);
  tenant.glass.publish(clamp_forecasts(tenant, report), now);
}

void Exchange::publish_i2a(ProviderId infp, const I2AReport& report,
                           TimePoint now) {
  require_infp(infp).glass.publish(report, now);
}

std::optional<A2IReport> Exchange::fetch_a2i(ProviderId infp, ProviderId appp,
                                             TimePoint now) const {
  auto token = a2i_tokens_.find({appp, infp});
  if (token == a2i_tokens_.end())
    throw AccessDenied("exchange: no a2i leg " + std::to_string(appp.value()) +
                       " -> " + std::to_string(infp.value()));
  return require_appp(appp).glass.query(infp, token->second, now);
}

std::optional<I2AReport> Exchange::fetch_i2a(ProviderId appp, ProviderId infp,
                                             TimePoint now) const {
  auto token = i2a_tokens_.find({infp, appp});
  if (token == i2a_tokens_.end())
    throw AccessDenied("exchange: no i2a leg " + std::to_string(infp.value()) +
                       " -> " + std::to_string(appp.value()));
  return require_infp(infp).glass.query(appp, token->second, now);
}

const ChannelStats& Exchange::a2i_leg_stats(ProviderId appp,
                                            ProviderId infp) const {
  return require_appp(appp).glass.peer_stats(infp);
}

const ChannelStats& Exchange::i2a_leg_stats(ProviderId infp,
                                            ProviderId appp) const {
  return require_infp(infp).glass.peer_stats(appp);
}

A2IEndpoint& Exchange::a2i_glass(ProviderId appp) {
  return require_appp(appp).glass;
}

I2AEndpoint& Exchange::i2a_glass(ProviderId infp) {
  return require_infp(infp).glass;
}

Exchange::AppTenant& Exchange::require_appp(ProviderId id) {
  auto it = appps_.find(id);
  if (it == appps_.end())
    throw NotFoundError("exchange: appp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

const Exchange::AppTenant& Exchange::require_appp(ProviderId id) const {
  auto it = appps_.find(id);
  if (it == appps_.end())
    throw NotFoundError("exchange: appp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

Exchange::InfTenant& Exchange::require_infp(ProviderId id) {
  auto it = infps_.find(id);
  if (it == infps_.end())
    throw NotFoundError("exchange: infp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

const Exchange::InfTenant& Exchange::require_infp(ProviderId id) const {
  auto it = infps_.find(id);
  if (it == infps_.end())
    throw NotFoundError("exchange: infp " + std::to_string(id.value()) +
                        " not registered");
  return it->second;
}

}  // namespace eona::core
