// Export policy: the *minimality* half of the paper's interface recipe.
//
// Each provider declares which report sections it is willing to share with
// each peer, plus a k-anonymity floor on QoE groups. The policy is applied
// at publish time inside the endpoint, so nothing the policy suppresses is
// ever observable by a peer -- the narrow interface is enforced, not
// advisory.
#pragma once

#include <algorithm>
#include <cstdint>

#include "eona/messages.hpp"

namespace eona::core {

/// Which A2I sections cross the boundary.
struct A2IPolicy {
  bool share_qoe_groups = true;
  bool share_server_level_qoe = false;  ///< per-server groups (finer grain)
  bool share_traffic_forecasts = true;
  std::uint64_t k_anonymity = 1;  ///< suppress groups with fewer sessions

  friend bool operator==(const A2IPolicy&, const A2IPolicy&) = default;

  /// Returns the report as this policy allows the peer to see it.
  [[nodiscard]] A2IReport apply(const A2IReport& report) const {
    A2IReport out;
    out.from = report.from;
    out.generated_at = report.generated_at;
    if (share_qoe_groups) {
      for (const auto& g : report.groups) {
        if (g.sessions < k_anonymity) continue;
        if (g.server.valid() && !share_server_level_qoe) continue;
        out.groups.push_back(g);
      }
    }
    if (share_traffic_forecasts) out.forecasts = report.forecasts;
    return out;
  }
};

/// Which I2A sections cross the boundary.
struct I2APolicy {
  bool share_peering_status = true;
  bool share_peering_capacity = true;  ///< else capacity is zeroed out
  bool share_server_hints = true;
  bool share_congestion = true;

  friend bool operator==(const I2APolicy&, const I2APolicy&) = default;

  [[nodiscard]] I2AReport apply(const I2AReport& report) const {
    I2AReport out;
    out.from = report.from;
    out.generated_at = report.generated_at;
    if (share_peering_status) {
      out.peerings = report.peerings;
      if (!share_peering_capacity)
        for (auto& p : out.peerings) p.capacity = 0.0;
    }
    if (share_server_hints) out.server_hints = report.server_hints;
    if (share_congestion) out.congestion = report.congestion;
    return out;
  }
};

/// How much a tenant pair trusts each other on the brokered exchange. A
/// trust level is a *mask* over the pair's base policies: it can only narrow
/// what crosses the boundary, never widen it, so kFull leaves the configured
/// policy untouched (byte-identical to direct point-to-point wiring).
enum class TrustLevel : std::uint8_t {
  kFull = 0,       ///< base policy as configured
  kAggregate = 1,  ///< CDN-level aggregates only: no per-server attributes
  kMinimal = 2,    ///< coarse health bits only: no forecasts, no capacities
};

[[nodiscard]] inline const char* to_string(TrustLevel level) {
  switch (level) {
    case TrustLevel::kFull: return "full";
    case TrustLevel::kAggregate: return "aggregate";
    case TrustLevel::kMinimal: return "minimal";
  }
  return "?";
}

/// The A2I attribute set `base` redacted down to `level`.
[[nodiscard]] inline A2IPolicy apply_trust(TrustLevel level, A2IPolicy base) {
  switch (level) {
    case TrustLevel::kFull:
      break;
    case TrustLevel::kAggregate:
      base.share_server_level_qoe = false;
      base.k_anonymity = std::max<std::uint64_t>(base.k_anonymity, 5);
      break;
    case TrustLevel::kMinimal:
      base.share_server_level_qoe = false;
      base.share_traffic_forecasts = false;
      base.k_anonymity = std::max<std::uint64_t>(base.k_anonymity, 10);
      break;
  }
  return base;
}

/// The I2A attribute set `base` redacted down to `level`.
[[nodiscard]] inline I2APolicy apply_trust(TrustLevel level, I2APolicy base) {
  switch (level) {
    case TrustLevel::kFull:
      break;
    case TrustLevel::kAggregate:
      base.share_server_hints = false;
      break;
    case TrustLevel::kMinimal:
      base.share_server_hints = false;
      base.share_peering_capacity = false;
      break;
  }
  return base;
}

}  // namespace eona::core
