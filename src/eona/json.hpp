// Human-readable JSON codec for EONA reports.
//
// The binary wire format (wire.hpp) is what crosses the A2I/I2A boundary in
// volume; the JSON form is what a "looking glass" serves to humans and
// debugging tools (the paper imagines queryable looking-glass servers).
// Self-contained: a minimal JSON value model + parser sufficient for the
// report schema, with strict validation (CodecError on malformed input).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "eona/fault.hpp"
#include "eona/messages.hpp"
#include "telemetry/delivery_health.hpp"

namespace eona::core {

/// Minimal JSON value: null, bool, number (double), string, array, object.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  // Checked accessors; CodecError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  // Builders.
  void push_back(JsonValue v);                      ///< array append
  void set(const std::string& key, JsonValue v);    ///< object insert

  /// Object field lookup; CodecError when missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Serialise (stable field order: objects are sorted maps).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse; throws CodecError on any malformed input or trailing garbage.
  static JsonValue parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Report <-> JSON. Round-trip safe for all field values the schema allows.
[[nodiscard]] std::string to_json(const A2IReport& report, int indent = 2);
[[nodiscard]] std::string to_json(const I2AReport& report, int indent = 2);
[[nodiscard]] A2IReport a2i_from_json(const std::string& text);
[[nodiscard]] I2AReport i2a_from_json(const std::string& text);

/// Fault profile <-> JSON (lab configs). Decoding runs FaultProfile::
/// validate(), so malformed input (negative drop rate, inverted or
/// overlapping outage windows, ...) throws ConfigError; structurally bad
/// JSON throws CodecError.
[[nodiscard]] std::string to_json(const FaultProfile& fault, int indent = 2);
[[nodiscard]] FaultProfile fault_profile_from_json(const std::string& text);

/// Delivery-health snapshot <-> JSON (what the lab tool prints).
[[nodiscard]] std::string to_json(const telemetry::DeliveryHealthSnapshot& h,
                                  int indent = 2);
[[nodiscard]] telemetry::DeliveryHealthSnapshot delivery_health_from_json(
    const std::string& text);

}  // namespace eona::core
