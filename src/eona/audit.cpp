#include "eona/audit.hpp"

namespace eona::core {

InterfaceAuditor::Health InterfaceAuditor::classify(
    const CdnEvidence& e) const {
  if (e.sessions < config_.min_sessions || e.intended_bitrate <= 0.0)
    return Health::kAmbiguous;
  double fraction = e.mean_bitrate / e.intended_bitrate;
  if (fraction >= config_.healthy_bitrate_fraction &&
      e.mean_buffering <= config_.healthy_buffering_limit)
    return Health::kHealthy;
  if (fraction < config_.starving_bitrate_fraction ||
      e.mean_buffering > config_.starving_buffering_limit)
    return Health::kStarving;
  return Health::kAmbiguous;
}

bool InterfaceAuditor::excused(const I2AReport& report, CdnId cdn) {
  for (const auto& c : report.congestion)
    if (c.scope == CongestionScope::kAccess && c.severity > 0.0) return true;
  for (const auto& h : report.server_hints)
    if (h.cdn == cdn && (!h.online || h.load > 0.95)) return true;
  return false;
}

AuditOutcome InterfaceAuditor::audit(
    const I2AReport& report, const std::vector<CdnEvidence>& evidence) {
  AuditOutcome outcome;
  for (const CdnEvidence& e : evidence) {
    Health health = classify(e);
    if (health == Health::kAmbiguous) continue;

    // Find the selected interconnect claim for this CDN, if reported.
    const PeeringStatus* selected = nullptr;
    for (const auto& p : report.peerings)
      if (p.cdn == e.cdn && p.selected) selected = &p;
    if (selected == nullptr) continue;

    ++outcome.claims_checked;
    bool contradiction = false;
    if (selected->congested && health == Health::kHealthy) {
      // Cried congestion, clients are thriving.
      contradiction = true;
    } else if (!selected->congested && health == Health::kStarving &&
               !excused(report, e.cdn)) {
      // Denied congestion, clients are starving, and nothing else in the
      // report accounts for it.
      contradiction = true;
    }
    if (contradiction) ++outcome.contradictions;
  }

  checked_ += outcome.claims_checked;
  contradicted_ += outcome.contradictions;
  // One EWMA step per audited claim so evidence-rich reports weigh more.
  for (std::size_t i = 0; i < outcome.claims_checked; ++i) {
    bool ok = i >= outcome.contradictions;  // contradictions first: order
    trust_ = (1.0 - config_.alpha) * trust_ + config_.alpha * (ok ? 1.0 : 0.0);
  }
  return outcome;
}

}  // namespace eona::core
