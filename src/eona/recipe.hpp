// The §4 interface-design recipe, mechanised.
//
// The paper's recipe: (1) enumerate use cases; (2) imagine a global
// controller with all data and all knobs; (3) map knobs/data to owners --
// any optimisation that pairs one owner's knob with another's data marks a
// field that must be shared; (4) narrow: pick the minimal subset of shared
// fields whose quality stays close to the global controller.
//
// Steps 1-3 are the inventory types below; step 4 is greedy forward
// selection against a caller-supplied quality evaluator (the benches run a
// full scenario per evaluation).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/ids.hpp"

namespace eona::core {

enum class Owner : std::uint8_t { kAppP, kInfP };

/// A control knob in the ecosystem (step 2/3 of the recipe).
struct Knob {
  std::string name;
  Owner owner = Owner::kAppP;
};

/// A data attribute some control logic could use.
struct DataAttribute {
  std::string name;
  Owner owner = Owner::kAppP;
};

/// A (knob, data) pairing the hypothetical global controller exploits.
struct Coupling {
  std::size_t knob;  ///< index into the knob inventory
  std::size_t data;  ///< index into the data inventory
};

/// The full step-1..3 inventory for one use-case suite.
struct InterfaceInventory {
  std::vector<Knob> knobs;
  std::vector<DataAttribute> data;
  std::vector<Coupling> couplings;

  /// Data attributes that must cross the boundary: used by a knob whose
  /// owner differs from the data's owner. Returns indices into `data`,
  /// deduplicated, in first-coupling order. This is the "wide" interface.
  [[nodiscard]] std::vector<std::size_t> shared_fields() const {
    std::vector<std::size_t> fields;
    for (const Coupling& c : couplings) {
      EONA_EXPECTS(c.knob < knobs.size() && c.data < data.size());
      if (knobs[c.knob].owner == data[c.data].owner) continue;
      bool seen = false;
      for (std::size_t f : fields) seen = seen || (f == c.data);
      if (!seen) fields.push_back(c.data);
    }
    return fields;
  }
};

/// Quality of the system when a given subset of candidate fields is shared
/// (enabled[i] says whether field i crosses the boundary). Higher is
/// better; callers typically return mean engagement from a scenario run.
using QualityFn = std::function<double(const std::vector<bool>& enabled)>;

/// One step of the greedy narrowing trace.
struct NarrowingStep {
  std::size_t field;   ///< which field was added
  double quality;      ///< quality with the subset up to and including it
};

/// Result of step 4.
struct NarrowingResult {
  double baseline_quality = 0.0;  ///< nothing shared
  std::vector<NarrowingStep> steps;  ///< fields in greedy order

  /// Smallest number of shared fields whose quality is within
  /// `tolerance` (absolute) of the best achieved quality.
  [[nodiscard]] std::size_t minimal_width(double tolerance) const {
    double best = baseline_quality;
    for (const auto& s : steps) best = std::max(best, s.quality);
    if (baseline_quality >= best - tolerance) return 0;
    for (std::size_t i = 0; i < steps.size(); ++i)
      if (steps[i].quality >= best - tolerance) return i + 1;
    return steps.size();
  }
};

/// Greedy forward selection: starting from nothing shared, repeatedly add
/// the candidate field with the largest quality gain until all fields are
/// included (the caller inspects the trace to pick the knee). `eval` is
/// called O(n^2) times.
[[nodiscard]] NarrowingResult narrow_interface(std::size_t field_count,
                                               const QualityFn& eval);

}  // namespace eona::core
