#include "eona/recipe.hpp"

#include <algorithm>

namespace eona::core {

NarrowingResult narrow_interface(std::size_t field_count,
                                 const QualityFn& eval) {
  EONA_EXPECTS(eval != nullptr);
  NarrowingResult result;
  std::vector<bool> enabled(field_count, false);
  result.baseline_quality = eval(enabled);

  std::vector<bool> remaining(field_count, true);
  for (std::size_t round = 0; round < field_count; ++round) {
    double best_quality = 0.0;
    std::size_t best_field = field_count;
    for (std::size_t f = 0; f < field_count; ++f) {
      if (!remaining[f]) continue;
      enabled[f] = true;
      double quality = eval(enabled);
      enabled[f] = false;
      if (best_field == field_count || quality > best_quality) {
        best_quality = quality;
        best_field = f;
      }
    }
    EONA_ASSERT(best_field < field_count);
    enabled[best_field] = true;
    remaining[best_field] = false;
    result.steps.push_back(NarrowingStep{best_field, best_quality});
  }
  return result;
}

}  // namespace eona::core
