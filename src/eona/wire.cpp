#include "eona/wire.hpp"

#include <bit>
#include <cstring>

#include "telemetry/interner.hpp"
#include "telemetry/session_record.hpp"

namespace eona::core {

namespace {

constexpr std::uint32_t kMagic = 0x454F4E41;  // "EONA"

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename IdType>
void put_id(WireWriter& w, IdType id) {
  if constexpr (sizeof(typename IdType::rep_type) == 8)
    w.u64(id.value());
  else
    w.u32(id.value());
}

template <typename IdType>
IdType get_id32(WireReader& r) {
  return IdType(r.u32());
}

}  // namespace

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireReader::need(std::size_t n) const {
  if (remaining() < n) throw CodecError("truncated frame");
}

std::uint8_t WireReader::u8() {
  need(1);
  return (*bytes_)[pos_++];
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>((*bytes_)[pos_++]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>((*bytes_)[pos_++]) << (8 * i);
  return v;
}

double WireReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

namespace {

void write_header(WireWriter& w, MessageKind kind) {
  w.u32(kMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(kind));
}

/// Appends the checksum over everything written so far.
WireBytes seal(WireWriter&& w) {
  WireBytes bytes = w.take();
  std::uint64_t checksum = fnv1a(bytes.data(), bytes.size());
  for (int i = 0; i < 8; ++i)
    bytes.push_back((checksum >> (8 * i)) & 0xFF);
  return bytes;
}

/// Validates framing and returns a reader positioned after the header.
WireReader open_frame(const WireBytes& bytes, MessageKind expected) {
  if (bytes.size() < 4 + 1 + 1 + 8) throw CodecError("frame too short");
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i)
    stored |= static_cast<std::uint64_t>(bytes[bytes.size() - 8 + i]) << (8 * i);
  if (fnv1a(bytes.data(), bytes.size() - 8) != stored)
    throw CodecError("checksum mismatch");
  WireReader r(bytes);
  if (r.u32() != kMagic) throw CodecError("bad magic");
  if (r.u8() != kWireVersion) throw CodecError("unsupported version");
  auto kind = static_cast<MessageKind>(r.u8());
  if (kind != expected) throw CodecError("unexpected message kind");
  return r;
}

}  // namespace

MessageKind peek_kind(const WireBytes& bytes) {
  if (bytes.size() < 4 + 1 + 1 + 8) throw CodecError("frame too short");
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i)
    stored |= static_cast<std::uint64_t>(bytes[bytes.size() - 8 + i]) << (8 * i);
  if (fnv1a(bytes.data(), bytes.size() - 8) != stored)
    throw CodecError("checksum mismatch");
  WireReader r(bytes);
  if (r.u32() != kMagic) throw CodecError("bad magic");
  if (r.u8() != kWireVersion) throw CodecError("unsupported version");
  auto kind = static_cast<MessageKind>(r.u8());
  if (kind != MessageKind::kA2I && kind != MessageKind::kI2A)
    throw CodecError("unknown message kind");
  return kind;
}

namespace {

constexpr telemetry::Dim kTupleMask =
    telemetry::Dim::kIsp | telemetry::Dim::kCdn | telemetry::Dim::kServer;

telemetry::Dimensions tuple_of(IspId isp, CdnId cdn, ServerId server) {
  telemetry::Dimensions d;
  d.isp = isp;
  d.cdn = cdn;
  d.server = server;
  return d;
}

}  // namespace

WireBytes encode(const A2IReport& report) {
  // Intern every (ISP, CDN, server) tuple the frame mentions; groups and
  // forecasts then carry 4-byte dictionary indexes. Forecast tuples are
  // interned with an invalid server so they coincide with the CDN-level
  // group tuples they mirror.
  telemetry::DimensionInterner interner(kTupleMask);
  std::vector<telemetry::GroupId> group_ids;
  group_ids.reserve(report.groups.size());
  for (const auto& g : report.groups)
    group_ids.push_back(interner.intern(tuple_of(g.isp, g.cdn, g.server)));
  std::vector<telemetry::GroupId> forecast_ids;
  forecast_ids.reserve(report.forecasts.size());
  for (const auto& f : report.forecasts)
    forecast_ids.push_back(interner.intern(tuple_of(f.isp, f.cdn, ServerId())));

  WireWriter w;
  write_header(w, MessageKind::kA2I);
  put_id(w, report.from);
  w.f64(report.generated_at);
  w.u32(static_cast<std::uint32_t>(interner.size()));
  for (telemetry::GroupId id = 0; id < interner.size(); ++id) {
    const telemetry::Dimensions& d = interner.dims_of(id);
    put_id(w, d.isp);
    put_id(w, d.cdn);
    put_id(w, d.server);
  }
  w.u32(static_cast<std::uint32_t>(report.groups.size()));
  for (std::size_t i = 0; i < report.groups.size(); ++i) {
    const auto& g = report.groups[i];
    w.u32(group_ids[i]);
    w.f64(g.mean_buffering_ratio);
    w.f64(g.p90_buffering_ratio);
    w.f64(g.mean_bitrate);
    w.f64(g.mean_join_time);
    w.f64(g.mean_engagement);
    w.u64(g.sessions);
  }
  w.u32(static_cast<std::uint32_t>(report.forecasts.size()));
  for (std::size_t i = 0; i < report.forecasts.size(); ++i) {
    w.u32(forecast_ids[i]);
    w.f64(report.forecasts[i].expected_rate);
  }
  return seal(std::move(w));
}

A2IReport decode_a2i(const WireBytes& bytes) {
  WireReader r = open_frame(bytes, MessageKind::kA2I);
  A2IReport report;
  report.from = get_id32<ProviderId>(r);
  report.generated_at = r.f64();
  std::uint32_t tuple_count = r.u32();
  std::vector<telemetry::Dimensions> tuples;
  tuples.reserve(tuple_count);
  for (std::uint32_t i = 0; i < tuple_count; ++i) {
    IspId isp = get_id32<IspId>(r);
    CdnId cdn = get_id32<CdnId>(r);
    ServerId server = get_id32<ServerId>(r);
    tuples.push_back(tuple_of(isp, cdn, server));
  }
  auto tuple_at = [&](std::uint32_t index) -> const telemetry::Dimensions& {
    if (index >= tuples.size()) throw CodecError("dict index out of range");
    return tuples[index];
  };
  std::uint32_t group_count = r.u32();
  report.groups.reserve(group_count);
  for (std::uint32_t i = 0; i < group_count; ++i) {
    QoeGroupReport g;
    const telemetry::Dimensions& d = tuple_at(r.u32());
    g.isp = d.isp;
    g.cdn = d.cdn;
    g.server = d.server;
    g.mean_buffering_ratio = r.f64();
    g.p90_buffering_ratio = r.f64();
    g.mean_bitrate = r.f64();
    g.mean_join_time = r.f64();
    g.mean_engagement = r.f64();
    g.sessions = r.u64();
    report.groups.push_back(g);
  }
  std::uint32_t forecast_count = r.u32();
  report.forecasts.reserve(forecast_count);
  for (std::uint32_t i = 0; i < forecast_count; ++i) {
    TrafficForecast f;
    const telemetry::Dimensions& d = tuple_at(r.u32());
    f.isp = d.isp;
    f.cdn = d.cdn;
    f.expected_rate = r.f64();
    report.forecasts.push_back(f);
  }
  if (r.remaining() != 8) throw CodecError("trailing bytes in A2I frame");
  return report;
}

WireBytes encode(const I2AReport& report) {
  WireWriter w;
  write_header(w, MessageKind::kI2A);
  put_id(w, report.from);
  w.f64(report.generated_at);
  w.u32(static_cast<std::uint32_t>(report.peerings.size()));
  for (const auto& p : report.peerings) {
    put_id(w, p.peering);
    put_id(w, p.isp);
    put_id(w, p.cdn);
    w.f64(p.capacity);
    w.f64(p.utilization);
    w.boolean(p.congested);
    w.boolean(p.selected);
  }
  w.u32(static_cast<std::uint32_t>(report.server_hints.size()));
  for (const auto& h : report.server_hints) {
    put_id(w, h.cdn);
    put_id(w, h.server);
    w.f64(h.load);
    w.boolean(h.online);
  }
  w.u32(static_cast<std::uint32_t>(report.congestion.size()));
  for (const auto& c : report.congestion) {
    put_id(w, c.isp);
    w.u8(static_cast<std::uint8_t>(c.scope));
    put_id(w, c.peering);
    w.f64(c.severity);
  }
  return seal(std::move(w));
}

I2AReport decode_i2a(const WireBytes& bytes) {
  WireReader r = open_frame(bytes, MessageKind::kI2A);
  I2AReport report;
  report.from = get_id32<ProviderId>(r);
  report.generated_at = r.f64();
  std::uint32_t peering_count = r.u32();
  report.peerings.reserve(peering_count);
  for (std::uint32_t i = 0; i < peering_count; ++i) {
    PeeringStatus p;
    p.peering = get_id32<PeeringId>(r);
    p.isp = get_id32<IspId>(r);
    p.cdn = get_id32<CdnId>(r);
    p.capacity = r.f64();
    p.utilization = r.f64();
    p.congested = r.boolean();
    p.selected = r.boolean();
    report.peerings.push_back(p);
  }
  std::uint32_t hint_count = r.u32();
  report.server_hints.reserve(hint_count);
  for (std::uint32_t i = 0; i < hint_count; ++i) {
    ServerHint h;
    h.cdn = get_id32<CdnId>(r);
    h.server = get_id32<ServerId>(r);
    h.load = r.f64();
    h.online = r.boolean();
    report.server_hints.push_back(h);
  }
  std::uint32_t congestion_count = r.u32();
  report.congestion.reserve(congestion_count);
  for (std::uint32_t i = 0; i < congestion_count; ++i) {
    CongestionSignal c;
    c.isp = get_id32<IspId>(r);
    auto scope = r.u8();
    if (scope > 2) throw CodecError("bad congestion scope");
    c.scope = static_cast<CongestionScope>(scope);
    c.peering = get_id32<PeeringId>(r);
    c.severity = r.f64();
    report.congestion.push_back(c);
  }
  if (r.remaining() != 8) throw CodecError("trailing bytes in I2A frame");
  return report;
}

}  // namespace eona::core
