// Canonical entity id types shared across subsystems. Declared centrally so
// the network substrate, applications, EONA messages, and controllers all
// agree on the identity vocabulary.
#pragma once

#include "common/strong_id.hpp"

namespace eona {

struct NodeTag {};
struct LinkTag {};
struct FlowTag {};
struct PeeringTag {};
struct CdnTag {};
struct ServerTag {};
struct IspTag {};
struct SessionTag {};
struct ContentTag {};
struct ProviderTag {};

/// A vertex in the network topology (router, host aggregate, PoP).
using NodeId = StrongId<NodeTag>;
/// A directed capacity-constrained edge.
using LinkId = StrongId<LinkTag>;
/// One fluid flow traversing a path of links.
using FlowId = StrongId<FlowTag, std::uint64_t>;
/// An interconnection point between an ISP and a CDN (e.g. private peering
/// or a public IXP port).
using PeeringId = StrongId<PeeringTag>;
/// A content delivery network operated by one InfP.
using CdnId = StrongId<CdnTag>;
/// A server cluster inside a CDN.
using ServerId = StrongId<ServerTag>;
/// An access ISP ("eyeball" network).
using IspId = StrongId<IspTag>;
/// One client application session (video view, page load, ...).
using SessionId = StrongId<SessionTag, std::uint64_t>;
/// A piece of content in the catalog.
using ContentId = StrongId<ContentTag>;
/// An EONA participant (an AppP or an InfP) in the provider registry.
using ProviderId = StrongId<ProviderTag>;

}  // namespace eona
