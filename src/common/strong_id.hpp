// Strongly typed entity identifiers (Core Guidelines I.4: make interfaces
// precisely and strongly typed). A NodeId cannot be passed where a LinkId is
// expected, eliminating a whole class of cross-entity mixups in the
// simulator and controllers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace eona {

/// A zero-overhead wrapper around an integer id, parameterised on a tag type
/// so distinct entity kinds get distinct, non-convertible id types.
///
/// Usage:
///   struct NodeTag {};
///   using NodeId = StrongId<NodeTag>;
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  /// Sentinel for "no entity"; default construction yields it.
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  Rep value_ = kInvalid;
};

}  // namespace eona

// Hash support so StrongId keys work in unordered containers.
template <typename Tag, typename Rep>
struct std::hash<eona::StrongId<Tag, Rep>> {
  std::size_t operator()(eona::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
