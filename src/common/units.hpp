// Physical units used throughout the emulator. The fluid (flow-level) model
// works in continuous quantities, so rates and sizes are doubles; the helpers
// below keep call sites explicit about units (Core Guidelines P.1: express
// ideas directly in code -- `kbps(800)` rather than a bare 800'000.0).
#pragma once

namespace eona {

/// Simulated time in seconds since simulation start.
using TimePoint = double;
/// A span of simulated time, in seconds.
using Duration = double;
/// Data rate in bits per second.
using BitsPerSecond = double;
/// Data volume in bits.
using Bits = double;

inline constexpr Duration milliseconds(double ms) { return ms / 1e3; }
inline constexpr Duration seconds(double s) { return s; }
inline constexpr Duration minutes(double m) { return m * 60.0; }
inline constexpr Duration hours(double h) { return h * 3600.0; }

inline constexpr BitsPerSecond kbps(double v) { return v * 1e3; }
inline constexpr BitsPerSecond mbps(double v) { return v * 1e6; }
inline constexpr BitsPerSecond gbps(double v) { return v * 1e9; }

inline constexpr Bits kilobits(double v) { return v * 1e3; }
inline constexpr Bits megabits(double v) { return v * 1e6; }
inline constexpr Bits megabytes(double v) { return v * 8e6; }

}  // namespace eona
