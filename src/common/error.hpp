// Error hierarchy for the EONA libraries. Exceptions signal failure to
// perform a required task (Core Guidelines I.10); recoverable conditions are
// expressed in return types instead.
#pragma once

#include <stdexcept>
#include <string>

namespace eona {

/// Root of all runtime errors raised by the EONA libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A configuration value is out of range or inconsistent.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// An entity id does not resolve (unknown node, link, CDN, session, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what)
      : Error("not found: " + what) {}
};

/// Wire-format encoding or decoding failed.
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what) : Error("codec: " + what) {}
};

/// An EONA endpoint rejected a request (not authorised / not opted in).
class AccessDenied : public Error {
 public:
  explicit AccessDenied(const std::string& what)
      : Error("access denied: " + what) {}
};

}  // namespace eona
