// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.5-I.8). Violations throw eona::ContractViolation so
// tests can assert on them and long-running experiments fail loudly instead
// of corrupting results.
#pragma once

#include <stdexcept>
#include <string>

namespace eona {

/// Thrown when a precondition, postcondition, or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line)
      : std::logic_error(std::string(kind) + " failed: " + expr + " at " +
                         file + ":" + std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace eona

#define EONA_EXPECTS(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::eona::detail::contract_fail("precondition", #cond, __FILE__,    \
                                    __LINE__);                          \
  } while (false)

#define EONA_ENSURES(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::eona::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                    __LINE__);                          \
  } while (false)

#define EONA_ASSERT(cond)                                               \
  do {                                                                  \
    if (!(cond))                                                        \
      ::eona::detail::contract_fail("invariant", #cond, __FILE__,       \
                                    __LINE__);                          \
  } while (false)
