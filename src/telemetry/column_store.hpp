// In-memory columnar telemetry store: the queryable half of the measurement
// plane (ROADMAP item 3; SONoMA's "measurement as a service" framing).
//
// Rows arrive in narrow/long form -- (time, dimensions, metric, entity,
// value) -- from the A2I tuple stream and the event bus (see
// store_recorder.hpp). Ingest dictionary-encodes the dimension tuple through
// the same DimensionInterner the aggregation pipeline uses, interns metric
// names to dense ids, and appends to time-partitioned segments of parallel
// column vectors. Queries filter on any attribute, group by any Dim mask,
// and aggregate count/sum/mean/p50/p90 over a half-open time window.
//
// Determinism contract (pinned by tests/telemetry_store_property_test.cpp):
// a query folds rows in canonical order -- segments in ascending partition
// index, append order within a segment -- with plain left-to-right double
// accumulation. A naive row-scan over the same rows in the same order is
// therefore bit-identical, which is exactly how the property test's oracle
// checks the store. Percentiles are exact order statistics (nearest-rank via
// nth_element, same convention as scenarios/common.hpp), so they are
// insensitive to fold order by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "telemetry/interner.hpp"
#include "telemetry/session_record.hpp"

namespace eona::telemetry {

/// Dense identifier of one interned metric name.
using MetricId = std::uint32_t;
inline constexpr MetricId kNoMetric = 0xFFFFFFFFu;

/// All four attribute columns; the store's dictionary interns full tuples
/// and queries project them per group-by mask.
inline constexpr Dim kAllDims = Dim::kIsp | Dim::kCdn | Dim::kServer |
                                Dim::kRegion;

/// Aggregate functions the query API supports.
enum class Agg : std::uint8_t { kCount, kSum, kMean, kP50, kP90 };

[[nodiscard]] inline const char* agg_name(Agg agg) {
  switch (agg) {
    case Agg::kCount: return "count";
    case Agg::kSum: return "sum";
    case Agg::kMean: return "mean";
    case Agg::kP50: return "p50";
    case Agg::kP90: return "p90";
  }
  return "?";
}

/// One query plan: which metric, over which window, filtered how, grouped
/// how, aggregated how. Unset filters are wildcards; a set filter matches
/// rows whose attribute equals the filter value exactly (an invalid id
/// filter matches rows where that attribute is unknown).
struct StoreQuery {
  std::string metric;
  TimePoint t0 = -std::numeric_limits<double>::infinity();
  TimePoint t1 = std::numeric_limits<double>::infinity();  ///< window [t0,t1)
  std::optional<IspId> isp;
  std::optional<CdnId> cdn;
  std::optional<ServerId> server;
  std::optional<std::uint32_t> region;
  std::optional<std::uint64_t> entity;
  Dim group_by = Dim::kNone;
  Agg agg = Agg::kMean;
};

/// One result row: the projected group key, how many rows matched, and the
/// aggregate value over them.
struct StoreResultRow {
  Dimensions key;
  std::uint64_t rows = 0;
  double value = 0.0;
};

/// The columnar store proper. Single-writer, append-only; queries are const.
class ColumnStore {
 public:
  /// `segment_span` is the width of one time partition in seconds; rows at
  /// time t land in partition floor(t / segment_span).
  explicit ColumnStore(Duration segment_span = 60.0)
      : segment_span_(segment_span), dict_(kAllDims) {
    EONA_EXPECTS(segment_span > 0.0);
  }

  // --- ingest ---------------------------------------------------------

  /// Interns `name`, assigning a dense id on first sight. Hot ingest loops
  /// should intern once and use the MetricId overload of append().
  MetricId intern_metric(std::string_view name) {
    auto it = metric_ids_.find(name);
    if (it != metric_ids_.end()) return it->second;
    auto id = static_cast<MetricId>(metric_names_.size());
    metric_names_.emplace_back(name);
    metric_ids_.emplace(metric_names_.back(), id);
    return id;
  }

  /// Transparent string hashing so find_metric(string_view) avoids a
  /// temporary std::string per lookup.
  struct MetricNameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Id for `name` if already interned; kNoMetric otherwise.
  [[nodiscard]] MetricId find_metric(std::string_view name) const {
    auto it = metric_ids_.find(name);
    return it == metric_ids_.end() ? kNoMetric : it->second;
  }

  [[nodiscard]] const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// Appends one row. `entity` is the subject's raw id (link, session,
  /// provider, ...) for point lookups that dimensions do not cover.
  void append(TimePoint t, const Dimensions& dims, MetricId metric,
              std::uint64_t entity, double value) {
    EONA_EXPECTS(metric < metric_names_.size());
    Segment& seg = segment_for(t);
    seg.t.push_back(t);
    seg.group.push_back(dict_.intern(dims));
    seg.metric.push_back(metric);
    seg.entity.push_back(entity);
    seg.value.push_back(value);
    ++rows_;
  }

  void append(TimePoint t, const Dimensions& dims, std::string_view metric,
              std::uint64_t entity, double value) {
    append(t, dims, intern_metric(metric), entity, value);
  }

  // --- introspection --------------------------------------------------

  [[nodiscard]] std::uint64_t row_count() const { return rows_; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t group_count() const { return dict_.size(); }
  [[nodiscard]] Duration segment_span() const { return segment_span_; }
  [[nodiscard]] const DimensionInterner& dictionary() const { return dict_; }

  // --- query ----------------------------------------------------------

  /// Runs one query plan. Results hold only groups with at least one
  /// matching row, sorted by the canonical dimension order, so output is
  /// deterministic and diff-friendly.
  [[nodiscard]] std::vector<StoreResultRow> run(const StoreQuery& q) const {
    std::vector<StoreResultRow> out;
    out_slots_.clear();
    MetricId metric = find_metric(q.metric);
    if (metric == kNoMetric || !(q.t0 < q.t1)) return out;

    // Dictionary-side filter + projection: one pass over distinct groups
    // instead of per-row tuple compares.
    std::vector<GroupKeyInfo> keys = plan_groups(q);

    const bool wants_values = q.agg == Agg::kP50 || q.agg == Agg::kP90;
    std::vector<Acc> accs;
    std::vector<std::vector<double>> values;

    // Canonical fold order: ascending partition, append order within.
    for (const auto& [part, seg] : segments_) {
      if (!segment_overlaps(part, q.t0, q.t1)) continue;
      const std::size_t n = seg.t.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (seg.metric[i] != metric) continue;
        if (seg.t[i] < q.t0 || seg.t[i] >= q.t1) continue;
        const GroupKeyInfo& info = keys[seg.group[i]];
        if (!info.pass) continue;
        if (q.entity && seg.entity[i] != *q.entity) continue;
        if (info.out == kNoGroup) {
          // First row of this projected group: materialize an accumulator.
          keys[seg.group[i]].out = assign_out(info.projected, accs, values,
                                              wants_values, out);
        }
        const GroupId slot = keys[seg.group[i]].out;
        Acc& acc = accs[slot];
        ++acc.count;
        acc.sum += seg.value[i];
        if (wants_values) values[slot].push_back(seg.value[i]);
      }
    }

    for (std::size_t slot = 0; slot < accs.size(); ++slot) {
      out[slot].rows = accs[slot].count;
      out[slot].value = finish(q.agg, accs[slot], values, slot);
    }
    std::sort(out.begin(), out.end(),
              [](const StoreResultRow& a, const StoreResultRow& b) {
                return dim_order(a.key, b.key);
              });
    return out;
  }

  // --- dump / load ----------------------------------------------------

  /// Appends every row as one JSONL line, in canonical (partition-major,
  /// append) order. Reloading a dump with store_replay.hpp's replay_jsonl()
  /// reproduces a store whose dump and query output are byte-identical to
  /// the original (doubles are printed in round-trip "%.17g" form).
  void dump_rows(std::string& out) const {
    char buf[64];
    for (const auto& [part, seg] : segments_) {
      (void)part;
      for (std::size_t i = 0; i < seg.t.size(); ++i) {
        out += "{\"t\":";
        std::snprintf(buf, sizeof(buf), "%.17g", seg.t[i]);
        out += buf;
        const Dimensions& d = dict_.dims_of(seg.group[i]);
        append_u32_field(out, "isp", d.isp.value());
        append_u32_field(out, "cdn", d.cdn.value());
        append_u32_field(out, "server", d.server.value());
        append_u32_field(out, "region", d.region);
        out += ",\"entity\":";
        out += std::to_string(seg.entity[i]);
        out += ",\"metric\":\"";
        out += metric_names_[seg.metric[i]];
        out += "\",\"value\":";
        std::snprintf(buf, sizeof(buf), "%.17g", seg.value[i]);
        out += buf;
        out += "}\n";
      }
    }
  }

  [[nodiscard]] std::string dump_rows() const {
    std::string out;
    dump_rows(out);
    return out;
  }

 private:
  struct Segment {
    std::vector<TimePoint> t;
    std::vector<GroupId> group;
    std::vector<MetricId> metric;
    std::vector<std::uint64_t> entity;
    std::vector<double> value;
  };

  struct Acc {
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  /// Per-dictionary-group query plan: does the group pass the filters, what
  /// is its projected key, and which output slot (lazily assigned) holds it.
  struct GroupKeyInfo {
    bool pass = false;
    Dimensions projected;
    GroupId out = kNoGroup;
  };

  [[nodiscard]] std::int64_t partition_of(TimePoint t) const {
    return static_cast<std::int64_t>(std::floor(t / segment_span_));
  }

  [[nodiscard]] bool segment_overlaps(std::int64_t part, TimePoint t0,
                                      TimePoint t1) const {
    const double lo = static_cast<double>(part) * segment_span_;
    return lo < t1 && lo + segment_span_ > t0;
  }

  Segment& segment_for(TimePoint t) {
    const std::int64_t part = partition_of(t);
    if (last_segment_ != nullptr && last_partition_ == part)
      return *last_segment_;
    last_partition_ = part;
    last_segment_ = &segments_[part];
    return *last_segment_;
  }

  [[nodiscard]] std::vector<GroupKeyInfo> plan_groups(
      const StoreQuery& q) const {
    std::vector<GroupKeyInfo> keys(dict_.size());
    for (GroupId g = 0; g < keys.size(); ++g) {
      const Dimensions& d = dict_.dims_of(g);
      if (q.isp && d.isp != *q.isp) continue;
      if (q.cdn && d.cdn != *q.cdn) continue;
      if (q.server && d.server != *q.server) continue;
      if (q.region && d.region != *q.region) continue;
      keys[g].pass = true;
      keys[g].projected = project(d, q.group_by);
    }
    return keys;
  }

  /// Materializes the output slot for a projected key on first sight,
  /// sharing slots between dictionary groups that project to the same key.
  GroupId assign_out(const Dimensions& projected, std::vector<Acc>& accs,
                     std::vector<std::vector<double>>& values,
                     bool wants_values,
                     std::vector<StoreResultRow>& out) const {
    auto it = out_slots_.find(projected);
    if (it != out_slots_.end()) return it->second;
    auto slot = static_cast<GroupId>(accs.size());
    out_slots_.emplace(projected, slot);
    accs.emplace_back();
    if (wants_values) values.emplace_back();
    out.push_back(StoreResultRow{projected, 0, 0.0});
    return slot;
  }

  [[nodiscard]] double finish(Agg agg, const Acc& acc,
                              std::vector<std::vector<double>>& values,
                              std::size_t slot) const {
    switch (agg) {
      case Agg::kCount: return static_cast<double>(acc.count);
      case Agg::kSum: return acc.sum;
      case Agg::kMean: return acc.sum / static_cast<double>(acc.count);
      case Agg::kP50: return nearest_rank(values[slot], 0.5);
      case Agg::kP90: return nearest_rank(values[slot], 0.9);
    }
    return 0.0;
  }

  /// Lower nearest-rank percentile: index floor(q*(n-1)) of the sorted
  /// sample -- same convention as scenarios/common.hpp QoeSummary.
  [[nodiscard]] static double nearest_rank(std::vector<double>& sample,
                                           double q) {
    const auto rank =
        static_cast<std::size_t>(q * static_cast<double>(sample.size() - 1));
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<std::ptrdiff_t>(rank),
                     sample.end());
    return sample[rank];
  }

  static void append_u32_field(std::string& out, const char* key,
                               std::uint32_t value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  }

  Duration segment_span_;
  DimensionInterner dict_;
  std::map<std::int64_t, Segment> segments_;  ///< partition -> columns
  std::int64_t last_partition_ = 0;
  Segment* last_segment_ = nullptr;  ///< one-entry cache for the hot append
  std::vector<std::string> metric_names_;
  std::unordered_map<std::string, MetricId, MetricNameHash, std::equal_to<>>
      metric_ids_;
  std::uint64_t rows_ = 0;
  /// Scratch for run(): projected key -> output slot. Cleared per query;
  /// kept as a member so repeated queries reuse capacity.
  mutable std::unordered_map<Dimensions, GroupId> out_slots_;
};

}  // namespace eona::telemetry
