// Mergeable aggregate of session metrics: the unit the pipeline stores per
// group and per window bucket. Exact and O(1)-mergeable (Welford/Chan);
// quantile sketches, which do not merge exactly, live at the query layer
// (GroupByAggregator).
#pragma once

#include <cstdint>

#include "telemetry/session_record.hpp"
#include "telemetry/welford.hpp"

namespace eona::telemetry {

/// Streaming aggregate of SessionMetrics observations.
struct MetricAggregate {
  Welford buffering_ratio;
  Welford avg_bitrate;
  Welford join_time;
  Welford rebuffer_rate;
  Welford page_load_time;
  Welford ttfb;
  Welford engagement;
  double total_bits = 0.0;  ///< summed traffic volume (for A2I forecasts)
  std::uint64_t records = 0;

  void add(const SessionMetrics& m) {
    buffering_ratio.add(m.buffering_ratio);
    avg_bitrate.add(m.avg_bitrate);
    join_time.add(m.join_time);
    rebuffer_rate.add(m.rebuffer_rate);
    page_load_time.add(m.page_load_time);
    ttfb.add(m.ttfb);
    engagement.add(m.engagement);
    total_bits += m.bytes_delivered;
    ++records;
  }

  void merge(const MetricAggregate& other) {
    buffering_ratio.merge(other.buffering_ratio);
    avg_bitrate.merge(other.avg_bitrate);
    join_time.merge(other.join_time);
    rebuffer_rate.merge(other.rebuffer_rate);
    page_load_time.merge(other.page_load_time);
    ttfb.merge(other.ttfb);
    engagement.merge(other.engagement);
    total_bits += other.total_bits;
    records += other.records;
  }

  [[nodiscard]] bool empty() const { return records == 0; }
};

}  // namespace eona::telemetry
