// Mergeable aggregate of session metrics: the unit the pipeline stores per
// group and per window bucket. Exact and O(1)-mergeable (Welford/Chan);
// quantile sketches, which do not merge exactly, live at the query layer
// (GroupByAggregator).
#pragma once

#include <cstdint>

#include "telemetry/session_record.hpp"
#include "telemetry/welford.hpp"

namespace eona::telemetry {

/// Streaming aggregate of SessionMetrics observations.
struct MetricAggregate {
  Welford buffering_ratio;
  Welford avg_bitrate;
  Welford join_time;
  Welford rebuffer_rate;
  Welford page_load_time;
  Welford ttfb;
  Welford engagement;
  double total_bits = 0.0;  ///< summed traffic volume (for A2I forecasts)
  std::uint64_t records = 0;

  void add(const SessionMetrics& m) {
    buffering_ratio.add(m.buffering_ratio);
    avg_bitrate.add(m.avg_bitrate);
    join_time.add(m.join_time);
    rebuffer_rate.add(m.rebuffer_rate);
    page_load_time.add(m.page_load_time);
    ttfb.add(m.ttfb);
    engagement.add(m.engagement);
    total_bits += m.bytes_delivered;
    ++records;
  }

  void merge(const MetricAggregate& other) {
    // add() feeds every field, so all seven Welfords share `records` as
    // their count: one aggregate-level emptiness check replaces seven
    // per-field guard pairs on the merge-heavy window refold path.
    if (other.records == 0) return;
    if (records == 0) {
      *this = other;
      return;
    }
    buffering_ratio.merge_nonempty(other.buffering_ratio);
    avg_bitrate.merge_nonempty(other.avg_bitrate);
    join_time.merge_nonempty(other.join_time);
    rebuffer_rate.merge_nonempty(other.rebuffer_rate);
    page_load_time.merge_nonempty(other.page_load_time);
    ttfb.merge_nonempty(other.ttfb);
    engagement.merge_nonempty(other.engagement);
    total_bits += other.total_bits;
    records += other.records;
  }

  [[nodiscard]] bool empty() const { return records == 0; }
};

}  // namespace eona::telemetry
