// Dimension interning: the ingest-side key compression of the telemetry
// pipeline.
//
// A DimensionInterner maps each distinct projected `Dimensions` tuple to a
// dense GroupId exactly once. Hot-path cost per beacon is one hash of a
// packed 16-byte key plus a linear probe of a flat open-addressing table --
// no node allocation, no bucket chasing, no equality on a padded struct.
// Everything downstream (group tables, window buckets, prefix caches, wire
// dictionaries) then works on small dense integers instead of re-hashing
// full structs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "telemetry/session_record.hpp"

namespace eona::telemetry {

/// Dense identifier of one distinct (projected) dimension tuple.
using GroupId = std::uint32_t;
inline constexpr GroupId kNoGroup = 0xFFFFFFFFu;

/// Open-addressing interner from projected Dimensions to dense GroupId.
/// Ids are assigned 0,1,2,... in first-seen order and never change, so they
/// index flat arrays everywhere else in the pipeline.
class DimensionInterner {
 public:
  explicit DimensionInterner(Dim mask) : mask_(mask) { rehash(kMinCapacity); }

  [[nodiscard]] Dim mask() const { return mask_; }
  [[nodiscard]] std::size_t size() const { return dims_.size(); }

  /// Id for `dims` (projected through the mask), interning on first sight.
  GroupId intern(const Dimensions& dims) {
    Dimensions key = project(dims, mask_);
    PackedDimensions packed = pack(key);
    std::size_t slot = probe(packed);
    if (slots_[slot].id != kNoGroup) return slots_[slot].id;
    auto id = static_cast<GroupId>(dims_.size());
    slots_[slot] = Slot{packed, id};
    dims_.push_back(key);
    if (dims_.size() * kLoadDen >= slots_.size() * kLoadNum)
      rehash(slots_.size() * 2);
    return id;
  }

  /// Id for `dims` if already interned; kNoGroup otherwise. Does not mutate,
  /// so const query paths can use it.
  [[nodiscard]] GroupId find(const Dimensions& dims) const {
    PackedDimensions packed = pack(project(dims, mask_));
    std::size_t slot = probe(packed);
    return slots_[slot].id;
  }

  /// The projected tuple a dense id stands for.
  [[nodiscard]] const Dimensions& dims_of(GroupId id) const {
    EONA_EXPECTS(id < dims_.size());
    return dims_[id];
  }

 private:
  struct Slot {
    PackedDimensions key;
    GroupId id = kNoGroup;
  };

  static constexpr std::size_t kMinCapacity = 64;  // power of two
  static constexpr std::size_t kLoadNum = 7;       // grow above 7/10 load
  static constexpr std::size_t kLoadDen = 10;

  static std::uint64_t mix(PackedDimensions p) {
    std::uint64_t x = p.lo ^ (p.hi * 0x9E3779B97F4A7C15ull);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Slot holding `packed`, or the empty slot where it would go.
  [[nodiscard]] std::size_t probe(PackedDimensions packed) const {
    std::size_t index = mix(packed) & (slots_.size() - 1);
    while (slots_[index].id != kNoGroup && !(slots_[index].key == packed))
      index = (index + 1) & (slots_.size() - 1);
    return index;
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    for (const Slot& s : old)
      if (s.id != kNoGroup) slots_[probe(s.key)] = s;
  }

  Dim mask_;
  std::vector<Slot> slots_;
  std::vector<Dimensions> dims_;  ///< reverse map, indexed by GroupId
};

}  // namespace eona::telemetry
