// P-square (P²) streaming quantile estimator (Jain & Chlamtac 1985).
//
// Tracks one quantile with five markers in O(1) memory and O(1) update time.
// The telemetry pipeline uses it for percentile QoE (e.g. p90 buffering
// ratio per (ISP, CDN) group), where exact percentiles over tens of millions
// of sessions would be prohibitive.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"

namespace eona::telemetry {

/// Streaming estimator of a single quantile q in (0, 1).
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {
    EONA_EXPECTS(q > 0.0 && q < 1.0);
  }

  void add(double x) {
    if (count_ < 5) {
      // Bootstrap: store the first five observations sorted.
      heights_[count_++] = x;
      if (count_ == 5) {
        std::sort(heights_.begin(), heights_.end());
        positions_ = {1, 2, 3, 4, 5};
        desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
        increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
      }
      return;
    }

    // Locate the cell containing x and clamp the extreme markers.
    int cell;
    if (x < heights_[0]) {
      heights_[0] = x;
      cell = 0;
    } else if (x >= heights_[4]) {
      heights_[4] = std::max(heights_[4], x);
      cell = 3;
    } else {
      cell = 0;
      while (cell < 3 && x >= heights_[cell + 1]) ++cell;
    }

    ++count_;
    for (int i = cell + 1; i < 5; ++i) ++positions_[i];
    for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

    // Adjust interior markers toward their desired positions using the
    // piecewise-parabolic (P²) interpolation, falling back to linear when
    // the parabola would violate monotonicity.
    for (int i = 1; i <= 3; ++i) {
      double d = desired_[i] - positions_[i];
      if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1) ||
          (d <= -1.0 && positions_[i - 1] - positions_[i] < -1)) {
        int sign = d >= 0 ? 1 : -1;
        double candidate = parabolic(i, sign);
        if (heights_[i - 1] < candidate && candidate < heights_[i + 1])
          heights_[i] = candidate;
        else
          heights_[i] = linear(i, sign);
        positions_[i] += sign;
      }
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Current quantile estimate. With fewer than 5 samples, falls back to the
  /// nearest-rank quantile of what has been seen.
  [[nodiscard]] double value() const {
    EONA_EXPECTS(count_ > 0);
    if (count_ < 5) {
      std::array<double, 5> sorted = heights_;
      std::sort(sorted.begin(), sorted.begin() + count_);
      auto rank = static_cast<std::size_t>(
          std::ceil(q_ * static_cast<double>(count_)));
      rank = std::min(std::max<std::size_t>(rank, 1),
                      static_cast<std::size_t>(count_));
      return sorted[rank - 1];
    }
    return heights_[2];
  }

  [[nodiscard]] double quantile() const { return q_; }

 private:
  double parabolic(int i, int sign) const {
    double d = static_cast<double>(sign);
    double qi = heights_[i];
    double np = static_cast<double>(positions_[i + 1] - positions_[i]);
    double nm = static_cast<double>(positions_[i - 1] - positions_[i]);
    double ntot = static_cast<double>(positions_[i + 1] - positions_[i - 1]);
    return qi + d / ntot *
                    ((static_cast<double>(positions_[i] - positions_[i - 1]) +
                      d) *
                         (heights_[i + 1] - qi) / np +
                     (static_cast<double>(positions_[i + 1] - positions_[i]) -
                      d) *
                         (qi - heights_[i - 1]) / (-nm));
  }

  double linear(int i, int sign) const {
    return heights_[i] + static_cast<double>(sign) *
                             (heights_[i + sign] - heights_[i]) /
                             static_cast<double>(positions_[i + sign] -
                                                 positions_[i]);
  }

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<std::int64_t, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace eona::telemetry
