// Welford's online algorithm for numerically stable streaming mean and
// variance. Constant memory per metric; the workhorse of the aggregation
// pipeline.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"

namespace eona::telemetry {

/// Streaming mean / variance / min / max over a sequence of observations.
class Welford {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  /// Merge another accumulator into this one (parallel aggregation, window
  /// bucket merging). Uses Chan's parallel variance formula.
  void merge(const Welford& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    merge_nonempty(other);
  }

  /// Chan merge with both sides known non-empty; branch-free caller fast
  /// path. Bit-identical to merge() in that case.
  void merge_nonempty(const Welford& other) {
    std::uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] double mean() const {
    EONA_EXPECTS(count_ > 0);
    return mean_;
  }

  /// Population variance.
  [[nodiscard]] double variance() const {
    EONA_EXPECTS(count_ > 0);
    return m2_ / static_cast<double>(count_);
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  [[nodiscard]] double min() const {
    EONA_EXPECTS(count_ > 0);
    return min_;
  }
  [[nodiscard]] double max() const {
    EONA_EXPECTS(count_ > 0);
    return max_;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace eona::telemetry
