// Sharded flat storage keyed by dense GroupId.
//
// Because GroupIds are dense (the interner hands them out 0,1,2,...), a
// "table" needs no hashing at all: a shard is picked by the id's low bits
// and a direct-index slot array maps the id to a slot in that shard's
// contiguous entry vector. Lookup and insert are a couple of arithmetic ops
// and two array indexes -- the integer-indexed array update the ingest path
// is built around. Shards bound slot-array growth spikes and give a natural
// unit for future parallel merging; entries stay contiguous per shard so
// iteration is cache-friendly.
//
// Used by both GroupByAggregator (dense: every interned group present) and
// WindowedAggregator's ring buckets (sparse: only groups seen in that time
// slice), which is why present-entry iteration and O(present) clearing both
// matter.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "telemetry/interner.hpp"

namespace eona::telemetry {

/// Sharded GroupId -> V table with O(1) find-or-insert, O(present)
/// iteration and clear, and stable references between rehash-free inserts.
template <typename V, std::size_t Shards = 16>
class ShardedGroupTable {
  static_assert((Shards & (Shards - 1)) == 0, "shard count is a power of two");

 public:
  struct Entry {
    GroupId group;
    V value{};
  };

  /// Value slot for `id`, default-constructed on first touch.
  V& at(GroupId id) {
    Shard& shard = shards_[id & (Shards - 1)];
    std::size_t local = id / Shards;
    if (local >= shard.slot.size()) shard.slot.resize(local + 1, kEmpty);
    std::int32_t& slot = shard.slot[local];
    if (slot == kEmpty) {
      slot = static_cast<std::int32_t>(shard.entries.size());
      shard.entries.push_back(Entry{id, V{}});
      ++size_;
    }
    return shard.entries[static_cast<std::size_t>(slot)].value;
  }

  /// Value for `id` when present, nullptr otherwise.
  [[nodiscard]] const V* find(GroupId id) const {
    if (id == kNoGroup) return nullptr;
    const Shard& shard = shards_[id & (Shards - 1)];
    std::size_t local = id / Shards;
    if (local >= shard.slot.size() || shard.slot[local] == kEmpty)
      return nullptr;
    return &shard.entries[static_cast<std::size_t>(shard.slot[local])].value;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  static constexpr std::size_t kShards = Shards;

  /// Present entries of one shard (ids congruent to `s` mod Shards), in
  /// insertion order. Lets mergers walk shard-compact id ranges.
  [[nodiscard]] const std::vector<Entry>& shard_entries(std::size_t s) const {
    return shards_[s].entries;
  }

  /// Visit every present entry (shard-major, insertion order within a
  /// shard). Deterministic for a given insert sequence.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_)
      for (const Entry& e : shard.entries) fn(e.group, e.value);
  }

  /// Drop all entries; touches only slots that were actually occupied, so
  /// recycling a sparse window bucket costs O(present), not O(groups).
  void clear() {
    for (Shard& shard : shards_) {
      for (const Entry& e : shard.entries)
        shard.slot[e.group / Shards] = kEmpty;
      shard.entries.clear();
    }
    size_ = 0;
  }

  /// Reserve entry capacity spread across shards (merge pre-sizing).
  void reserve(std::size_t groups) {
    for (Shard& shard : shards_) shard.entries.reserve(groups / Shards + 1);
  }

 private:
  static constexpr std::int32_t kEmpty = -1;
  struct Shard {
    std::vector<std::int32_t> slot;  ///< local index -> entry slot or kEmpty
    std::vector<Entry> entries;      ///< contiguous present entries
  };

  std::array<Shard, Shards> shards_;
  std::size_t size_ = 0;
};

}  // namespace eona::telemetry
