// Group-by aggregation: the "big data platform" stand-in.
//
// Both aggregators intern dimension tuples into dense GroupIds once
// (interner.hpp) and keep their per-group state in sharded flat tables
// keyed by those ids (group_table.hpp), so the per-beacon ingest path is
// one packed-key hash plus integer-indexed array updates -- no per-beacon
// struct hashing or node allocation.
//
// GroupByAggregator keys incoming beacons by a projection of their
// dimensions (e.g. per (ISP, CDN)) and maintains a mergeable aggregate plus
// median/p90 buffering-ratio sketches per group. WindowedAggregator adds a
// rotating time-bucket ring so queries cover only the recent past -- the
// freshness the A2I interface exports -- and maintains the window merge
// incrementally: a per-group prefix aggregate over all live buckets except
// the newest is cached and refolded only when the window position moves, so
// query() is O(1) and snapshot() is O(groups) amortized instead of
// O(buckets x groups) per call.
//
// Canonical merge semantics (and the contract the property test pins
// against a from-scratch oracle, bit for bit): a group's windowed aggregate
// is the left-fold, starting from a default MetricAggregate, of its
// per-bucket aggregates over live buckets in chronological order. The
// incremental path reproduces exactly that fold -- the cached prefix is the
// fold over all but the newest bucket and the newest bucket's aggregate is
// merged last -- rather than approximating expiry by floating-point
// subtraction, which could never be bit-identical.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/group_table.hpp"
#include "telemetry/interner.hpp"
#include "telemetry/p2_quantile.hpp"
#include "telemetry/session_record.hpp"

namespace eona::telemetry {

/// Unwindowed group-by over a fixed projection mask.
class GroupByAggregator {
 public:
  explicit GroupByAggregator(Dim mask) : interner_(mask) {}

  void ingest(const SessionRecord& record) {
    GroupId id = interner_.intern(record.dims);
    Group& group = groups_.at(id);
    group.aggregate.add(record.metrics);
    group.buffering_p50.add(record.metrics.buffering_ratio);
    group.buffering_p90.add(record.metrics.buffering_ratio);
  }

  [[nodiscard]] Dim mask() const { return interner_.mask(); }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  [[nodiscard]] const MetricAggregate* find(const Dimensions& dims) const {
    const Group* group = groups_.find(interner_.find(dims));
    return group == nullptr ? nullptr : &group->aggregate;
  }

  /// p50/p90 buffering ratio estimates for a group; {0,0} when unseen.
  [[nodiscard]] std::pair<double, double> buffering_percentiles(
      const Dimensions& dims) const {
    const Group* group = groups_.find(interner_.find(dims));
    if (group == nullptr || group->buffering_p50.empty()) return {0.0, 0.0};
    return {group->buffering_p50.value(), group->buffering_p90.value()};
  }

  /// Deterministically ordered snapshot of all groups.
  [[nodiscard]] std::vector<std::pair<Dimensions, MetricAggregate>> snapshot()
      const {
    std::vector<std::pair<Dimensions, MetricAggregate>> result;
    result.reserve(groups_.size());
    groups_.for_each([&](GroupId id, const Group& group) {
      result.emplace_back(interner_.dims_of(id), group.aggregate);
    });
    std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
      return dim_order(a.first, b.first);
    });
    return result;
  }

  void clear() {
    interner_ = DimensionInterner(interner_.mask());
    groups_.clear();
  }

 private:
  struct Group {
    MetricAggregate aggregate;
    P2Quantile buffering_p50{0.5};
    P2Quantile buffering_p90{0.9};
  };

  DimensionInterner interner_;
  ShardedGroupTable<Group> groups_;
};

/// Time-windowed group-by: a ring of bucket tables covering the trailing
/// window, with an incrementally maintained per-group merge (see file
/// header). Buckets older than the window are recycled lazily as time
/// advances.
class WindowedAggregator {
 public:
  /// `window` trailing seconds of data retained, in `buckets` equal slices.
  WindowedAggregator(Dim mask, Duration window, std::size_t buckets)
      : interner_(mask),
        bucket_span_(window / static_cast<double>(buckets)),
        ring_(buckets) {
    EONA_EXPECTS(window > 0.0);
    EONA_EXPECTS(buckets >= 2);
  }

  void ingest(const SessionRecord& record) {
    GroupId id = interner_.intern(record.dims);
    std::int64_t idx = index_of(record.timestamp);
    Bucket& bucket = bucket_for(idx);
    bucket.groups.at(id).add(record.metrics);
    // Appends to the newest cached bucket leave the prefix fold intact;
    // anything else (older bucket, or a bucket beyond the cached window
    // position) changes what the fold must cover. A materialized snapshot
    // is stale either way.
    if (idx != cached_newest_) cache_valid_ = false;
    snap_valid_ = false;
  }

  /// Merged aggregate for `dims`' group over the window ending at `now`.
  /// Empty aggregate when the group produced no beacons in the window.
  [[nodiscard]] MetricAggregate query(const Dimensions& dims,
                                      TimePoint now) const {
    refresh_cache(index_of(now));
    GroupId id = interner_.find(dims);
    if (id == kNoGroup) return {};
    return merged_of(id, bucket_at(cached_newest_));
  }

  /// All groups seen in the window ending at `now`, deterministically
  /// ordered. Returns a reference to an internally memoized vector: valid
  /// until the next ingest() or a read at a different window position. The
  /// controller reads several snapshots per control tick at one position,
  /// so repeat calls are O(1) instead of re-copying O(groups) state.
  [[nodiscard]] const std::vector<std::pair<Dimensions, MetricAggregate>>&
  snapshot(TimePoint now) const {
    refresh_cache(index_of(now));
    if (snap_valid_) return snap_;
    refresh_order();
    snap_.clear();
    // Pre-reserve from the live buckets' group counts: an upper bound on
    // (and usually close to) the number of distinct groups in the window.
    std::size_t live_entries = 0;
    for (const Bucket& bucket : ring_)
      if (bucket_live(bucket.index)) live_entries += bucket.groups.size();
    snap_.reserve(std::min(live_entries, order_.size()));
    const Bucket* newest = bucket_at(cached_newest_);
    for (GroupId id : order_) {
      MetricAggregate merged = merged_of(id, newest);
      if (merged.empty()) continue;
      snap_.emplace_back(interner_.dims_of(id), merged);
    }
    snap_valid_ = true;
    return snap_;
  }

  [[nodiscard]] Duration window() const {
    return bucket_span_ * static_cast<double>(ring_.size());
  }

 private:
  struct Bucket {
    std::int64_t index = -1;  ///< which bucket_span_-slice of time this holds
    ShardedGroupTable<MetricAggregate> groups;
  };

  [[nodiscard]] std::int64_t index_of(TimePoint t) const {
    return static_cast<std::int64_t>(t / bucket_span_);
  }

  Bucket& bucket_for(std::int64_t idx) {
    Bucket& bucket = ring_[static_cast<std::size_t>(idx) % ring_.size()];
    if (bucket.index != idx) {  // recycle an expired slot
      bucket.index = idx;
      bucket.groups.clear();
    }
    return bucket;
  }

  /// Is the bucket holding slice `idx` live for the cached window position?
  [[nodiscard]] bool bucket_live(std::int64_t idx) const {
    if (idx < 0) return false;
    std::int64_t oldest =
        cached_newest_ - static_cast<std::int64_t>(ring_.size()) + 1;
    return idx >= oldest && idx <= cached_newest_;
  }

  /// The bucket currently holding slice `idx`, or nullptr.
  [[nodiscard]] const Bucket* bucket_at(std::int64_t idx) const {
    if (idx < 0) return nullptr;
    const Bucket& bucket = ring_[static_cast<std::size_t>(idx) % ring_.size()];
    return bucket.index == idx ? &bucket : nullptr;
  }

  using GroupTable = ShardedGroupTable<MetricAggregate>;
  static constexpr std::size_t kShards = GroupTable::kShards;

  /// Rebuild the per-group prefix fold for the window ending at bucket
  /// `newest`. O(buckets x groups), paid once per window position instead
  /// of on every query/snapshot. The fold runs shard-by-shard so each pass
  /// writes one compact slice of the prefix instead of scattering over the
  /// whole group range; a group lives in exactly one shard, so its buckets
  /// are still merged in chronological order -- exactly the order the
  /// canonical from-scratch merge uses.
  void refresh_cache(std::int64_t newest) const {
    if (cache_valid_ && cached_newest_ == newest) return;
    cached_newest_ = newest;
    cache_valid_ = true;
    snap_valid_ = false;
    ++epoch_;
    std::int64_t oldest =
        newest - static_cast<std::int64_t>(ring_.size()) + 1;
    std::size_t per_shard = interner_.size() / kShards + 1;
    for (std::size_t s = 0; s < kShards; ++s) {
      PrefixShard& pre = prefix_[s];
      if (pre.agg.size() < per_shard) {
        pre.agg.resize(per_shard);
        pre.stamp.resize(per_shard, 0);
      }
      for (std::int64_t idx = oldest; idx < newest; ++idx) {
        const Bucket* bucket = bucket_at(idx);
        if (bucket == nullptr) continue;
        for (const GroupTable::Entry& e : bucket->groups.shard_entries(s)) {
          std::size_t local = e.group / kShards;
          // Epoch stamps let every rebuild start from logically-empty slots
          // without re-zeroing the whole array; the first contribution is
          // an assignment (== merge into empty), later ones merge.
          if (pre.stamp[local] != epoch_) {
            pre.stamp[local] = epoch_;
            pre.agg[local] = e.value;
          } else {
            pre.agg[local].merge(e.value);
          }
        }
      }
    }
  }

  /// Canonical windowed aggregate of one group at the cached position:
  /// prefix fold, then the newest bucket's contribution last.
  [[nodiscard]] MetricAggregate merged_of(GroupId id,
                                          const Bucket* newest) const {
    const PrefixShard& pre = prefix_[id % kShards];
    std::size_t local = id / kShards;
    MetricAggregate merged;
    if (local < pre.agg.size() && pre.stamp[local] == epoch_)
      merged = pre.agg[local];
    if (newest != nullptr) {
      if (const MetricAggregate* agg = newest->groups.find(id))
        merged.merge(*agg);
    }
    return merged;
  }

  /// Keep the deterministic dims-sorted emit order cached; it only changes
  /// when a new group is interned.
  void refresh_order() const {
    if (order_.size() == interner_.size()) return;
    for (auto id = static_cast<GroupId>(order_.size());
         id < interner_.size(); ++id)
      order_.push_back(id);
    std::sort(order_.begin(), order_.end(), [this](GroupId a, GroupId b) {
      return dim_order(interner_.dims_of(a), interner_.dims_of(b));
    });
  }

  DimensionInterner interner_;
  Duration bucket_span_;
  std::vector<Bucket> ring_;

  // Incremental window state (const query paths maintain it lazily).
  struct PrefixShard {
    std::vector<MetricAggregate> agg;   ///< indexed by id / kShards
    std::vector<std::uint64_t> stamp;   ///< epoch that last wrote each slot
  };
  mutable std::array<PrefixShard, kShards> prefix_;
  mutable std::uint64_t epoch_ = 0;
  mutable std::vector<GroupId> order_;           ///< dims-sorted ids
  mutable std::vector<std::pair<Dimensions, MetricAggregate>>
      snap_;  ///< memoized snapshot for the current window contents
  mutable std::int64_t cached_newest_ =
      std::numeric_limits<std::int64_t>::min();
  mutable bool cache_valid_ = false;
  mutable bool snap_valid_ = false;
};

}  // namespace eona::telemetry
