// Group-by aggregation: the "big data platform" stand-in.
//
// GroupByAggregator keys incoming beacons by a projection of their
// dimensions (e.g. per (ISP, CDN)) and maintains a mergeable aggregate plus
// median/p90 buffering-ratio sketches per group. WindowedAggregator adds a
// rotating time-bucket ring so queries cover only the recent past -- the
// freshness the A2I interface exports.
#pragma once

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/p2_quantile.hpp"
#include "telemetry/session_record.hpp"

namespace eona::telemetry {

/// Unwindowed group-by over a fixed projection mask.
class GroupByAggregator {
 public:
  explicit GroupByAggregator(Dim mask) : mask_(mask) {}

  void ingest(const SessionRecord& record) {
    Dimensions key = project(record.dims, mask_);
    Group& group = groups_.try_emplace(key, Group{}).first->second;
    group.aggregate.add(record.metrics);
    group.buffering_p50.add(record.metrics.buffering_ratio);
    group.buffering_p90.add(record.metrics.buffering_ratio);
  }

  [[nodiscard]] Dim mask() const { return mask_; }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  [[nodiscard]] const MetricAggregate* find(const Dimensions& dims) const {
    auto it = groups_.find(project(dims, mask_));
    return it == groups_.end() ? nullptr : &it->second.aggregate;
  }

  /// p50/p90 buffering ratio estimates for a group; {0,0} when unseen.
  [[nodiscard]] std::pair<double, double> buffering_percentiles(
      const Dimensions& dims) const {
    auto it = groups_.find(project(dims, mask_));
    if (it == groups_.end() || it->second.buffering_p50.empty())
      return {0.0, 0.0};
    return {it->second.buffering_p50.value(), it->second.buffering_p90.value()};
  }

  /// Deterministically ordered snapshot of all groups.
  [[nodiscard]] std::vector<std::pair<Dimensions, MetricAggregate>> snapshot()
      const {
    std::vector<std::pair<Dimensions, MetricAggregate>> result;
    result.reserve(groups_.size());
    for (const auto& [key, group] : groups_)
      result.emplace_back(key, group.aggregate);
    std::sort(result.begin(), result.end(),
              [](const auto& a, const auto& b) { return before(a.first, b.first); });
    return result;
  }

  void clear() { groups_.clear(); }

 private:
  struct Group {
    MetricAggregate aggregate;
    P2Quantile buffering_p50{0.5};
    P2Quantile buffering_p90{0.9};
  };

  static bool before(const Dimensions& a, const Dimensions& b) {
    auto tup = [](const Dimensions& d) {
      return std::make_tuple(d.isp.value(), d.cdn.value(), d.server.value(),
                             d.region);
    };
    return tup(a) < tup(b);
  }

  Dim mask_;
  std::unordered_map<Dimensions, Group> groups_;
};

/// Time-windowed group-by: a ring of bucket maps covering the trailing
/// window. `query` merges the live buckets; buckets older than the window
/// are recycled lazily as time advances.
class WindowedAggregator {
 public:
  /// `window` trailing seconds of data retained, in `buckets` equal slices.
  WindowedAggregator(Dim mask, Duration window, std::size_t buckets)
      : mask_(mask),
        bucket_span_(window / static_cast<double>(buckets)),
        ring_(buckets) {
    EONA_EXPECTS(window > 0.0);
    EONA_EXPECTS(buckets >= 2);
  }

  void ingest(const SessionRecord& record) {
    Bucket& bucket = bucket_for(record.timestamp);
    bucket.groups[project(record.dims, mask_)].add(record.metrics);
  }

  /// Merged aggregate for `dims`' group over the window ending at `now`.
  /// Empty aggregate when the group produced no beacons in the window.
  [[nodiscard]] MetricAggregate query(const Dimensions& dims,
                                      TimePoint now) const {
    Dimensions key = project(dims, mask_);
    MetricAggregate merged;
    for (const Bucket& bucket : ring_) {
      if (!live(bucket, now)) continue;
      auto it = bucket.groups.find(key);
      if (it != bucket.groups.end()) merged.merge(it->second);
    }
    return merged;
  }

  /// All groups seen in the window ending at `now`, deterministically
  /// ordered.
  [[nodiscard]] std::vector<std::pair<Dimensions, MetricAggregate>> snapshot(
      TimePoint now) const {
    std::unordered_map<Dimensions, MetricAggregate> merged;
    for (const Bucket& bucket : ring_) {
      if (!live(bucket, now)) continue;
      for (const auto& [key, agg] : bucket.groups) merged[key].merge(agg);
    }
    std::vector<std::pair<Dimensions, MetricAggregate>> result(merged.begin(),
                                                               merged.end());
    std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
      auto tup = [](const Dimensions& d) {
        return std::make_tuple(d.isp.value(), d.cdn.value(), d.server.value(),
                               d.region);
      };
      return tup(a.first) < tup(b.first);
    });
    return result;
  }

  [[nodiscard]] Duration window() const {
    return bucket_span_ * static_cast<double>(ring_.size());
  }

 private:
  struct Bucket {
    std::int64_t index = -1;  ///< which bucket_span_-slice of time this holds
    std::unordered_map<Dimensions, MetricAggregate> groups;
  };

  [[nodiscard]] std::int64_t index_of(TimePoint t) const {
    return static_cast<std::int64_t>(t / bucket_span_);
  }

  Bucket& bucket_for(TimePoint t) {
    std::int64_t idx = index_of(t);
    Bucket& bucket = ring_[static_cast<std::size_t>(idx) % ring_.size()];
    if (bucket.index != idx) {  // recycle an expired slot
      bucket.index = idx;
      bucket.groups.clear();
    }
    return bucket;
  }

  /// A bucket is live for a query at `now` when its slice overlaps the
  /// trailing window (now - window, now].
  [[nodiscard]] bool live(const Bucket& bucket, TimePoint now) const {
    if (bucket.index < 0) return false;
    std::int64_t newest = index_of(now);
    std::int64_t oldest = newest - static_cast<std::int64_t>(ring_.size()) + 1;
    return bucket.index >= oldest && bucket.index <= newest;
  }

  Dim mask_;
  Duration bucket_span_;
  std::vector<Bucket> ring_;
};

}  // namespace eona::telemetry
