// Beacon ingestion point: clients report here; registered sinks (group-by
// aggregators, windowed aggregators, experiment recorders) receive each
// record. Mirrors the AppP's collection tier in front of the analytics
// platform.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/contracts.hpp"
#include "telemetry/session_record.hpp"

namespace eona::telemetry {

/// Fan-out ingestion of session beacons with basic accounting.
class BeaconCollector {
 public:
  using Sink = std::function<void(const SessionRecord&)>;

  /// Register a sink; all subsequent beacons are delivered to it in
  /// registration order. Returns the sink's index (for diagnostics only).
  std::size_t add_sink(Sink sink) {
    EONA_EXPECTS(sink != nullptr);
    sinks_.push_back(std::move(sink));
    return sinks_.size() - 1;
  }

  /// Ingest one beacon.
  void report(const SessionRecord& record) {
    ++beacons_;
    bits_reported_ += record.metrics.bytes_delivered;
    for (const auto& sink : sinks_) sink(record);
  }

  [[nodiscard]] std::uint64_t beacon_count() const { return beacons_; }
  [[nodiscard]] double total_bits_reported() const { return bits_reported_; }
  [[nodiscard]] std::size_t sink_count() const { return sinks_.size(); }

 private:
  std::vector<Sink> sinks_;
  std::uint64_t beacons_ = 0;
  double bits_reported_ = 0.0;
};

}  // namespace eona::telemetry
