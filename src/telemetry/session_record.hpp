// Client-side measurement schema: what one session beacon carries.
//
// This mirrors the Conviva-style instrumentation the paper leans on: each
// client session periodically reports experience metrics together with the
// attributes needed to aggregate them (client ISP, CDN, server, region).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace eona::telemetry {

/// Attribute tuple identifying where a session lives in the delivery chain.
/// Invalid ids mean "unknown / not applicable" (e.g. web sessions have no
/// CDN server).
struct Dimensions {
  IspId isp;
  CdnId cdn;
  ServerId server;
  std::uint32_t region = 0;

  friend bool operator==(const Dimensions&, const Dimensions&) = default;
};

/// Which attribute columns a group-by keeps; the rest are wildcarded.
/// E.g. (kIsp | kCdn) aggregates per (ISP, CDN) pair -- exactly the
/// granularity the paper's A2I example exports.
enum class Dim : std::uint8_t {
  kNone = 0,
  kIsp = 1 << 0,
  kCdn = 1 << 1,
  kServer = 1 << 2,
  kRegion = 1 << 3,
};

constexpr Dim operator|(Dim a, Dim b) {
  return static_cast<Dim>(static_cast<std::uint8_t>(a) |
                          static_cast<std::uint8_t>(b));
}
constexpr bool has_dim(Dim mask, Dim d) {
  return (static_cast<std::uint8_t>(mask) & static_cast<std::uint8_t>(d)) != 0;
}

/// Projects `dims` onto the columns selected by `mask` (others invalidated),
/// producing the group key.
inline Dimensions project(const Dimensions& dims, Dim mask) {
  Dimensions key;
  if (has_dim(mask, Dim::kIsp)) key.isp = dims.isp;
  if (has_dim(mask, Dim::kCdn)) key.cdn = dims.cdn;
  if (has_dim(mask, Dim::kServer)) key.server = dims.server;
  if (has_dim(mask, Dim::kRegion)) key.region = dims.region;
  return key;
}

/// Canonical (isp, cdn, server, region) ordering used everywhere a snapshot
/// or export must be deterministically sorted.
[[nodiscard]] inline auto dim_tuple(const Dimensions& d) {
  return std::make_tuple(d.isp.value(), d.cdn.value(), d.server.value(),
                         d.region);
}
[[nodiscard]] inline bool dim_order(const Dimensions& a, const Dimensions& b) {
  return dim_tuple(a) < dim_tuple(b);
}

/// The four id columns packed into two words: the exact-equality key the
/// interner hashes and probes on (16 bytes, no padding ambiguity).
struct PackedDimensions {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const PackedDimensions&,
                         const PackedDimensions&) = default;
};

[[nodiscard]] inline PackedDimensions pack(const Dimensions& d) {
  PackedDimensions p;
  p.lo = (static_cast<std::uint64_t>(d.isp.value()) << 32) | d.cdn.value();
  p.hi = (static_cast<std::uint64_t>(d.server.value()) << 32) | d.region;
  return p;
}

/// Experience metrics carried by one beacon. Video sessions fill the video
/// fields; web sessions fill the web fields; both fill traffic volume.
struct SessionMetrics {
  // --- video ---
  double buffering_ratio = 0.0;   ///< fraction of wall time spent rebuffering
  BitsPerSecond avg_bitrate = 0;  ///< mean playback bitrate
  Duration join_time = 0.0;       ///< startup delay until first frame
  double rebuffer_rate = 0.0;     ///< rebuffer events per minute
  // --- web ---
  Duration page_load_time = 0.0;
  Duration ttfb = 0.0;
  // --- common ---
  double engagement = 0.0;  ///< model-predicted engagement (0..1 of content)
  Bits bytes_delivered = 0.0;  ///< traffic volume (bits, despite legacy name)
};

/// One beacon: session identity + where it sits + what it measured + when.
struct SessionRecord {
  SessionId session;
  Dimensions dims;
  SessionMetrics metrics;
  TimePoint timestamp = 0.0;
};

}  // namespace eona::telemetry

template <>
struct std::hash<eona::telemetry::Dimensions> {
  std::size_t operator()(const eona::telemetry::Dimensions& d) const noexcept {
    std::size_t h = std::hash<eona::IspId>{}(d.isp);
    h = h * 1315423911u ^ std::hash<eona::CdnId>{}(d.cdn);
    h = h * 1315423911u ^ std::hash<eona::ServerId>{}(d.server);
    h = h * 1315423911u ^ std::hash<std::uint32_t>{}(d.region);
    return h;
  }
};
