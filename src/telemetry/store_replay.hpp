// Offline ingestion: rebuild a ColumnStore from JSONL text, either a store
// row dump (ColumnStore::dump_rows) or a raw event trace (sim::TraceWriter
// buffer, the eona_lab --trace format).
//
// Trace lines are parsed back into the flat sim event structs and fed
// through the same StoreRecorder::ingest overloads the live recorder uses,
// so a replayed store is byte-identical to one fed live from the bus:
// doubles round-trip through the "%.17g" trace format, integers are exact,
// and line order equals publish order equals append order.
//
// The parser is a deliberately small field scanner, not a general JSON
// reader: trace field names are unique per line and the string payloads of
// mapped event types are static label tokens (no quotes or escapes). Lines
// of unmapped types (rate recomputes, report channel hops, logs) are
// skipped, matching what the live recorder subscribes to.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>

#include "telemetry/column_store.hpp"
#include "telemetry/store_recorder.hpp"

namespace eona::telemetry {
namespace detail {

/// Position of the value of `"key":` in `line`, or npos.
inline std::size_t value_pos(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return at;
  return at + needle.size();
}

inline double num_field(std::string_view line, std::string_view key,
                        double fallback = 0.0) {
  std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos) return fallback;
  return std::strtod(line.data() + at, nullptr);
}

inline std::uint64_t u64_field(std::string_view line, std::string_view key,
                               std::uint64_t fallback = 0) {
  std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos) return fallback;
  return std::strtoull(line.data() + at, nullptr, 10);
}

inline std::uint32_t u32_field(std::string_view line, std::string_view key) {
  return static_cast<std::uint32_t>(u64_field(line, key));
}

/// Unescaped string value ("label tokens" only -- see header comment).
inline std::string str_field(std::string_view line, std::string_view key) {
  std::size_t at = value_pos(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"')
    return {};
  std::size_t close = line.find('"', at + 1);
  if (close == std::string_view::npos) return {};
  return std::string(line.substr(at + 1, close - at - 1));
}

inline bool bool_field(std::string_view line, std::string_view key) {
  std::size_t at = value_pos(line, key);
  return at != std::string_view::npos &&
         line.substr(at, 4) == std::string_view("true");
}

}  // namespace detail

/// Replays one JSONL line into `store`. Returns true if the line produced
/// rows (store row, or a trace event the recorder maps), false if skipped.
inline bool replay_jsonl_line(ColumnStore& store, std::string_view line) {
  using namespace detail;
  if (line.empty() || line[0] != '{') return false;
  const TimePoint t = num_field(line, "t");

  std::string type = str_field(line, "type");
  if (type.empty()) {
    // Store row dump format: no "type", explicit metric + dims columns.
    std::string metric = str_field(line, "metric");
    if (metric.empty()) return false;
    Dimensions dims;
    dims.isp = IspId{u32_field(line, "isp")};
    dims.cdn = CdnId{u32_field(line, "cdn")};
    dims.server = ServerId{u32_field(line, "server")};
    dims.region = u32_field(line, "region");
    store.append(t, dims, metric, u64_field(line, "entity"),
                 num_field(line, "value"));
    return true;
  }

  if (type == "link_saturation") {
    sim::LinkSaturationEvent e;
    e.t = t;
    e.link = LinkId{u32_field(line, "link")};
    e.saturated = bool_field(line, "saturated");
    e.utilization = num_field(line, "utilization");
    StoreRecorder::ingest(store, e);
  } else if (type == "transfer_aborted") {
    sim::TransferAbortedEvent e;
    e.t = t;
    e.transfer = u64_field(line, "transfer");
    e.flow = FlowId{u64_field(line, "flow")};
    StoreRecorder::ingest(store, e);
  } else if (type == "fault") {
    sim::FaultEvent e;
    e.t = t;
    std::string kind = str_field(line, "kind");
    e.kind = kind.c_str();
    e.link = LinkId{u32_field(line, "link")};
    e.factor = num_field(line, "factor");
    StoreRecorder::ingest(store, e);
  } else if (type == "report_served") {
    sim::ReportServedEvent e;
    e.t = t;
    e.consumer = ProviderId{u32_field(line, "consumer")};
    std::string kind = str_field(line, "kind");
    e.kind = kind.c_str();
    e.age = num_field(line, "age");
    e.stale = bool_field(line, "stale");
    StoreRecorder::ingest(store, e);
  } else if (type == "steering") {
    sim::SteeringEvent e;
    e.t = t;
    e.appp = ProviderId{u32_field(line, "appp")};
    e.from = CdnId{u32_field(line, "from")};
    e.to = CdnId{u32_field(line, "to")};
    e.held = bool_field(line, "held");
    StoreRecorder::ingest(store, e);
  } else if (type == "migration") {
    sim::MigrationEvent e;
    e.t = t;
    e.infp = ProviderId{u32_field(line, "infp")};
    e.cdn = CdnId{u32_field(line, "cdn")};
    e.flows = static_cast<std::size_t>(u64_field(line, "flows"));
    StoreRecorder::ingest(store, e);
  } else if (type == "provision") {
    sim::ProvisionEvent e;
    e.t = t;
    e.infp = ProviderId{u32_field(line, "infp")};
    e.link = LinkId{u32_field(line, "link")};
    e.from_capacity = num_field(line, "from_capacity");
    e.to_capacity = num_field(line, "to_capacity");
    e.lead = num_field(line, "lead");
    std::string phase = str_field(line, "phase");
    e.phase = phase.c_str();
    StoreRecorder::ingest(store, e);
  } else if (type == "session_started") {
    sim::SessionStartedEvent e;
    e.t = t;
    e.session = SessionId{u64_field(line, "session")};
    StoreRecorder::ingest(store, e);
  } else if (type == "session_stalled") {
    sim::SessionStalledEvent e;
    e.t = t;
    e.session = SessionId{u64_field(line, "session")};
    e.stall_count = u64_field(line, "stall_count");
    StoreRecorder::ingest(store, e);
  } else if (type == "session_finished") {
    sim::SessionFinishedEvent e;
    e.t = t;
    e.session = SessionId{u64_field(line, "session")};
    e.stalls = u64_field(line, "stalls");
    e.cdn_switches = u64_field(line, "cdn_switches");
    StoreRecorder::ingest(store, e);
  } else if (type == "session_stranded") {
    sim::SessionStrandedEvent e;
    e.t = t;
    e.session = SessionId{u64_field(line, "session")};
    StoreRecorder::ingest(store, e);
  } else if (type == "session_resumed") {
    sim::SessionResumedEvent e;
    e.t = t;
    e.session = SessionId{u64_field(line, "session")};
    e.outage = num_field(line, "outage");
    StoreRecorder::ingest(store, e);
  } else if (type == "a2i_qoe_sample") {
    sim::A2IQoeSampleEvent e;
    e.t = t;
    e.from = ProviderId{u32_field(line, "from")};
    e.isp = IspId{u32_field(line, "isp")};
    e.cdn = CdnId{u32_field(line, "cdn")};
    e.server = ServerId{u32_field(line, "server")};
    e.mean_buffering_ratio = num_field(line, "mean_buffering_ratio");
    e.p90_buffering_ratio = num_field(line, "p90_buffering_ratio");
    e.mean_bitrate = num_field(line, "mean_bitrate");
    e.mean_engagement = num_field(line, "mean_engagement");
    e.sessions = u64_field(line, "sessions");
    StoreRecorder::ingest(store, e);
  } else if (type == "a2i_forecast_sample") {
    sim::A2IForecastSampleEvent e;
    e.t = t;
    e.from = ProviderId{u32_field(line, "from")};
    e.isp = IspId{u32_field(line, "isp")};
    e.cdn = CdnId{u32_field(line, "cdn")};
    e.expected_rate = num_field(line, "expected_rate");
    StoreRecorder::ingest(store, e);
  } else if (type == "link_sample") {
    sim::LinkSampleEvent e;
    e.t = t;
    e.link = LinkId{u32_field(line, "link")};
    e.utilization = num_field(line, "utilization");
    e.rate = num_field(line, "rate");
    e.capacity = num_field(line, "capacity");
    StoreRecorder::ingest(store, e);
  } else {
    return false;  // unmapped event type (by design; see header comment)
  }
  return true;
}

/// Replays a whole JSONL buffer; returns the number of lines that produced
/// rows.
inline std::size_t replay_jsonl(ColumnStore& store, std::string_view text) {
  std::size_t ingested = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    if (replay_jsonl_line(store, text.substr(start, nl - start))) ++ingested;
    start = nl + 1;
  }
  return ingested;
}

}  // namespace eona::telemetry
