// Delivery-health telemetry for the failable EONA control plane: counters
// for the producer side (publish/deliver/drop/duplicate, from the channel)
// and the consumer side (fetch attempts/retries/hits/misses/stale serves,
// from the robust fetcher), plus a streaming staleness quantile.
//
// Controllers own one accumulator per direction and expose snapshots; the
// lab tool and the fault-tolerance bench print them.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "telemetry/p2_quantile.hpp"

namespace eona::telemetry {

/// Plain-value snapshot: trivially comparable and JSON-serialisable.
struct DeliveryHealthSnapshot {
  // Producer side (summed over the peer channels feeding this consumer).
  std::uint64_t publishes = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  // Consumer side.
  std::uint64_t fetch_attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t fresh_hits = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_serves = 0;  ///< control epochs served last-known-good
  double staleness_p90 = 0.0;      ///< p90 age of served reports (seconds)

  friend bool operator==(const DeliveryHealthSnapshot&,
                         const DeliveryHealthSnapshot&) = default;
};

/// Accumulator a controller feeds each control epoch.
class DeliveryHealth {
 public:
  /// Record the age of the report served to the control logic this epoch,
  /// and whether it was past the freshness deadline (a stale serve).
  void observe_serve(Duration age, bool stale) {
    staleness_.add(age);
    if (stale) ++stale_serves_;
  }

  [[nodiscard]] std::uint64_t stale_serves() const { return stale_serves_; }

  [[nodiscard]] double staleness_p90() const {
    return staleness_.empty() ? 0.0 : staleness_.value();
  }

  [[nodiscard]] DeliveryHealthSnapshot snapshot() const {
    DeliveryHealthSnapshot s;
    s.stale_serves = stale_serves_;
    s.staleness_p90 = staleness_p90();
    return s;
  }

 private:
  P2Quantile staleness_{0.9};
  std::uint64_t stale_serves_ = 0;
};

}  // namespace eona::telemetry
