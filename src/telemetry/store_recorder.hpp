// Bus-to-store bridge: subscribes to the event stream and maps each
// observable fact to narrow rows in a ColumnStore.
//
// The mapping lives in the static ingest() overloads so there is exactly one
// definition of "what row does event X become". The live recorder (this
// file) and the offline trace replayer (store_replay.hpp) both call the same
// overloads, which is what makes a store fed live and a store replayed from
// a --trace JSONL file byte-identical (pinned by trace_determinism_test).
//
// Only events whose payload fully survives the JSONL trace are mapped --
// anything ingested live must be reconstructible offline. High-volume
// bookkeeping events (rate recomputes, report channel hops, logs) are
// deliberately left out of the store.
#pragma once

#include <string>

#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "telemetry/column_store.hpp"

namespace eona::telemetry {

/// Live store feeder. Keep alive at least as long as the bus dispatches.
class StoreRecorder {
 public:
  explicit StoreRecorder(ColumnStore& store) : store_(store) {}
  StoreRecorder(const StoreRecorder&) = delete;
  StoreRecorder& operator=(const StoreRecorder&) = delete;

  /// Subscribe to every mapped event type on `bus`; call once per bus.
  void subscribe_all(sim::EventBus& bus) {
    subscribe_one<sim::LinkSaturationEvent>(bus);
    subscribe_one<sim::TransferAbortedEvent>(bus);
    subscribe_one<sim::FaultEvent>(bus);
    subscribe_one<sim::ReportServedEvent>(bus);
    subscribe_one<sim::SteeringEvent>(bus);
    subscribe_one<sim::MigrationEvent>(bus);
    subscribe_one<sim::ProvisionEvent>(bus);
    subscribe_one<sim::SessionStartedEvent>(bus);
    subscribe_one<sim::SessionStalledEvent>(bus);
    subscribe_one<sim::SessionFinishedEvent>(bus);
    subscribe_one<sim::SessionStrandedEvent>(bus);
    subscribe_one<sim::SessionResumedEvent>(bus);
    subscribe_one<sim::A2IQoeSampleEvent>(bus);
    subscribe_one<sim::A2IForecastSampleEvent>(bus);
    subscribe_one<sim::LinkSampleEvent>(bus);
  }

  // --- the event -> row mapping (one overload per mapped type) ---------

  static void ingest(ColumnStore& s, const sim::LinkSaturationEvent& e) {
    s.append(e.t, Dimensions{}, "link_saturation", e.link.value(),
             e.utilization);
  }
  static void ingest(ColumnStore& s, const sim::TransferAbortedEvent& e) {
    s.append(e.t, Dimensions{}, "transfer_aborted", e.flow.value(), 1.0);
  }
  static void ingest(ColumnStore& s, const sim::FaultEvent& e) {
    s.append(e.t, Dimensions{}, std::string("fault_") + e.kind,
             e.link.value(), e.factor);
  }
  static void ingest(ColumnStore& s, const sim::ReportServedEvent& e) {
    s.append(e.t, Dimensions{}, std::string(e.kind) + "_served_age",
             e.consumer.value(), e.age);
  }
  static void ingest(ColumnStore& s, const sim::SteeringEvent& e) {
    Dimensions dims;
    dims.cdn = e.to;
    s.append(e.t, dims, "steering", e.appp.value(), e.held ? 0.0 : 1.0);
  }
  static void ingest(ColumnStore& s, const sim::MigrationEvent& e) {
    Dimensions dims;
    dims.cdn = e.cdn;
    s.append(e.t, dims, "migration_flows", e.infp.value(),
             static_cast<double>(e.flows));
  }
  static void ingest(ColumnStore& s, const sim::ProvisionEvent& e) {
    s.append(e.t, Dimensions{}, std::string("provision_") + e.phase,
             e.link.value(), e.to_capacity);
  }
  static void ingest(ColumnStore& s, const sim::SessionStartedEvent& e) {
    s.append(e.t, Dimensions{}, "session_started", e.session.value(), 1.0);
  }
  static void ingest(ColumnStore& s, const sim::SessionStalledEvent& e) {
    s.append(e.t, Dimensions{}, "session_stalled", e.session.value(),
             static_cast<double>(e.stall_count));
  }
  static void ingest(ColumnStore& s, const sim::SessionFinishedEvent& e) {
    s.append(e.t, Dimensions{}, "session_finished", e.session.value(),
             static_cast<double>(e.stalls));
  }
  static void ingest(ColumnStore& s, const sim::SessionStrandedEvent& e) {
    s.append(e.t, Dimensions{}, "session_stranded", e.session.value(), 1.0);
  }
  static void ingest(ColumnStore& s, const sim::SessionResumedEvent& e) {
    s.append(e.t, Dimensions{}, "session_resumed", e.session.value(),
             e.outage);
  }
  static void ingest(ColumnStore& s, const sim::A2IQoeSampleEvent& e) {
    Dimensions dims;
    dims.isp = e.isp;
    dims.cdn = e.cdn;
    dims.server = e.server;
    const std::uint64_t from = e.from.value();
    s.append(e.t, dims, "a2i_mean_buffering", from, e.mean_buffering_ratio);
    s.append(e.t, dims, "a2i_p90_buffering", from, e.p90_buffering_ratio);
    s.append(e.t, dims, "a2i_mean_bitrate", from, e.mean_bitrate);
    s.append(e.t, dims, "a2i_mean_engagement", from, e.mean_engagement);
    s.append(e.t, dims, "a2i_sessions", from,
             static_cast<double>(e.sessions));
  }
  static void ingest(ColumnStore& s, const sim::A2IForecastSampleEvent& e) {
    Dimensions dims;
    dims.isp = e.isp;
    dims.cdn = e.cdn;
    s.append(e.t, dims, "a2i_forecast_rate", e.from.value(),
             e.expected_rate);
  }
  static void ingest(ColumnStore& s, const sim::LinkSampleEvent& e) {
    s.append(e.t, Dimensions{}, "link_rate", e.link.value(), e.rate);
    s.append(e.t, Dimensions{}, "link_util", e.link.value(), e.utilization);
  }

 private:
  template <typename Event>
  void subscribe_one(sim::EventBus& bus) {
    bus.subscribe<Event>([this](const Event& e) { ingest(store_, e); });
  }

  ColumnStore& store_;
};

}  // namespace eona::telemetry
