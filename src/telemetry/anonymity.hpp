// k-anonymity gate: the "blinding" technique the paper's interface-design
// recipe calls for (§4, minimality vs effectiveness). Before aggregates
// cross the A2I/I2A boundary, groups backed by fewer than k sessions are
// suppressed so no export can be traced to a small user population.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/session_record.hpp"

namespace eona::telemetry {

/// Result of gating a snapshot: surviving groups plus suppression counts.
struct GatedSnapshot {
  std::vector<std::pair<Dimensions, MetricAggregate>> groups;
  std::size_t suppressed_groups = 0;
  std::uint64_t suppressed_records = 0;
};

/// Drops every group with fewer than `k` backing records.
inline GatedSnapshot k_anonymity_gate(
    std::vector<std::pair<Dimensions, MetricAggregate>> snapshot,
    std::uint64_t k) {
  EONA_EXPECTS(k >= 1);
  GatedSnapshot result;
  for (auto& entry : snapshot) {
    if (entry.second.records >= k) {
      result.groups.push_back(std::move(entry));
    } else {
      ++result.suppressed_groups;
      result.suppressed_records += entry.second.records;
    }
  }
  return result;
}

}  // namespace eona::telemetry
