// Web QoE model for the cellular-web scenario (paper Figure 4).
//
// A page load is modelled as: DNS+TLS setup, a first-byte delay dominated by
// RTT, then transfer of the page's critical bytes over the available
// bandwidth, with render overhead proportional to object count. This is the
// standard first-order PLT model; it gives the ground-truth experience that
// the InfP either infers (baseline) or receives via A2I (EONA).
#pragma once

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "telemetry/session_record.hpp"

namespace eona::qoe {

/// Inputs of one page load.
struct PageLoadInputs {
  Duration rtt = 0.050;          ///< end-to-end round-trip time
  BitsPerSecond bandwidth = 0;   ///< delivered bandwidth to the client
  Bits page_bits = 0;            ///< critical-path payload
  int objects = 10;              ///< object count (each costs ~1 RTT setup)
  Duration server_think = 0.05;  ///< backend processing before first byte
};

/// Derived web experience metrics.
struct PageLoadResult {
  Duration ttfb = 0.0;
  Duration plt = 0.0;
  double engagement = 0.0;  ///< probability the user stays (vs abandons)
};

/// Tunables for the web engagement (abandonment) curve. Empirically users
/// abandon steeply beyond a few seconds of PLT.
struct WebEngagementModel {
  Duration tolerable_plt = 2.0;  ///< below this, engagement ~ 1
  Duration halving_time = 3.0;   ///< every extra `halving_time`, halves

  [[nodiscard]] double predict(Duration plt) const {
    EONA_EXPECTS(plt >= 0.0);
    if (plt <= tolerable_plt) return 1.0;
    double excess = (plt - tolerable_plt) / halving_time;
    return std::pow(0.5, excess);
  }
};

/// Evaluates the page-load model.
[[nodiscard]] inline PageLoadResult evaluate_page_load(
    const PageLoadInputs& in, const WebEngagementModel& model = {}) {
  EONA_EXPECTS(in.rtt >= 0.0);
  EONA_EXPECTS(in.bandwidth > 0.0);
  EONA_EXPECTS(in.page_bits >= 0.0);
  EONA_EXPECTS(in.objects >= 1);
  PageLoadResult out;
  // TTFB: connection setup (1.5 RTT for TCP+TLS-ish), server think time,
  // then half an RTT for the first byte to travel back.
  out.ttfb = 1.5 * in.rtt + in.server_think + 0.5 * in.rtt;
  // Each additional object burns roughly one extra RTT of request latency
  // (amortised over parallel connections: count / 6 rounds).
  double request_rounds = static_cast<double>((in.objects + 5) / 6);
  out.plt = out.ttfb + in.page_bits / in.bandwidth + request_rounds * in.rtt;
  out.engagement = model.predict(out.plt);
  return out;
}

/// Packs a page-load result into the beacon schema.
[[nodiscard]] inline telemetry::SessionMetrics to_session_metrics(
    const PageLoadInputs& in, const PageLoadResult& result) {
  telemetry::SessionMetrics m;
  m.page_load_time = result.plt;
  m.ttfb = result.ttfb;
  m.engagement = result.engagement;
  m.bytes_delivered = in.page_bits;
  return m;
}

}  // namespace eona::qoe
