// Information-gain feature ranking (paper §4, "identifying useful knobs and
// data"): given candidate attributes and an experience label, rank the
// attributes by mutual information so the interface designer can decide
// which fields are worth exporting across A2I/I2A.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eona::qoe {

/// One candidate feature column with a display name.
struct FeatureColumn {
  std::string name;
  std::vector<double> values;
};

/// Shannon entropy (bits) of a discrete histogram given as counts.
[[nodiscard]] double entropy_bits(const std::vector<std::size_t>& counts);

/// Information gain (bits) of `feature` about `label`, with both continuous
/// columns discretised into `bins` equal-width bins over their observed
/// range. Returns 0 for degenerate (constant) inputs.
[[nodiscard]] double information_gain(const std::vector<double>& feature,
                                      const std::vector<double>& label,
                                      std::size_t bins = 8);

/// Ranks columns by information gain about `label`, descending; returns
/// (name, gain) pairs. Deterministic: equal gains keep input order.
[[nodiscard]] std::vector<std::pair<std::string, double>> rank_features(
    const std::vector<FeatureColumn>& columns,
    const std::vector<double>& label, std::size_t bins = 8);

}  // namespace eona::qoe
