#include "qoe/infogain.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace eona::qoe {

double entropy_bits(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

namespace {

/// Equal-width binning over the observed range; constant columns collapse
/// into a single bin.
std::vector<std::size_t> discretise(const std::vector<double>& values,
                                    std::size_t bins) {
  auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  double lo = *lo_it, hi = *hi_it;
  std::vector<std::size_t> out(values.size(), 0);
  if (hi <= lo) return out;
  double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < values.size(); ++i) {
    auto b = static_cast<std::size_t>((values[i] - lo) / width);
    out[i] = std::min(b, bins - 1);
  }
  return out;
}

}  // namespace

double information_gain(const std::vector<double>& feature,
                        const std::vector<double>& label, std::size_t bins) {
  EONA_EXPECTS(!feature.empty());
  EONA_EXPECTS(feature.size() == label.size());
  EONA_EXPECTS(bins >= 2);

  const std::size_t n = feature.size();
  std::vector<std::size_t> fb = discretise(feature, bins);
  std::vector<std::size_t> lb = discretise(label, bins);

  std::vector<std::size_t> label_counts(bins, 0);
  for (std::size_t b : lb) ++label_counts[b];
  double h_label = entropy_bits(label_counts);
  if (h_label == 0.0) return 0.0;

  // Conditional entropy H(label | feature bin).
  double h_conditional = 0.0;
  for (std::size_t f = 0; f < bins; ++f) {
    std::vector<std::size_t> conditional(bins, 0);
    std::size_t in_bin = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (fb[i] == f) {
        ++conditional[lb[i]];
        ++in_bin;
      }
    }
    if (in_bin == 0) continue;
    h_conditional += (static_cast<double>(in_bin) / static_cast<double>(n)) *
                     entropy_bits(conditional);
  }
  double gain = h_label - h_conditional;
  return gain < 0.0 ? 0.0 : gain;
}

std::vector<std::pair<std::string, double>> rank_features(
    const std::vector<FeatureColumn>& columns, const std::vector<double>& label,
    std::size_t bins) {
  std::vector<std::pair<std::string, double>> ranked;
  ranked.reserve(columns.size());
  for (const auto& col : columns)
    ranked.emplace_back(col.name, information_gain(col.values, label, bins));
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

}  // namespace eona::qoe
