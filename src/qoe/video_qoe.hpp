// Video QoE accounting and the QoE -> engagement model.
//
// VideoQoeTracker turns player lifecycle events (join, stall, bitrate
// switches) into the session metrics the A2I interface exports: buffering
// ratio, time-weighted average bitrate, join time, rebuffer rate. The
// engagement model follows the empirical shape of Dobrian et al. (SIGCOMM
// 2011) and Krishnan & Sitaraman (IMC 2012): engagement falls steeply with
// buffering ratio, mildly with join time, and rises with bitrate.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "telemetry/session_record.hpp"

namespace eona::qoe {

/// Tunable coefficients of the engagement model. Defaults approximate the
/// published regressions; benches may sweep them.
struct EngagementModel {
  /// Engagement lost per unit buffering ratio (1% buffering ~ 3% viewing).
  double buffering_penalty = 3.0;
  /// e-folding join time: engagement *= exp(-join_time / this).
  Duration join_time_scale = 30.0;
  /// Bitrate at which the bitrate factor saturates.
  BitsPerSecond bitrate_saturation = 2.0e6;
  /// Floor of the bitrate factor (engagement at ~zero bitrate).
  double bitrate_floor = 0.6;

  /// Predicted fraction of the content the viewer watches, in [0, 1].
  [[nodiscard]] double predict(double buffering_ratio,
                               BitsPerSecond avg_bitrate,
                               Duration join_time) const {
    EONA_EXPECTS(buffering_ratio >= 0.0 && buffering_ratio <= 1.0);
    double base = 1.0 - buffering_penalty * buffering_ratio;
    if (base < 0.0) base = 0.0;
    double bitrate_frac = avg_bitrate / bitrate_saturation;
    if (bitrate_frac > 1.0) bitrate_frac = 1.0;
    double bitrate_factor =
        bitrate_floor + (1.0 - bitrate_floor) * bitrate_frac;
    double join_factor =
        join_time <= 0.0 ? 1.0 : std::exp(-join_time / join_time_scale);
    double engagement = base * bitrate_factor * join_factor;
    return engagement < 0.0 ? 0.0 : (engagement > 1.0 ? 1.0 : engagement);
  }
};

/// Accumulates one video session's QoE from player lifecycle callbacks.
///
/// State machine: created (startup) -> playing <-> stalled -> finalized.
/// All timestamps must be non-decreasing.
class VideoQoeTracker {
 public:
  explicit VideoQoeTracker(TimePoint session_start)
      : start_(session_start), last_event_(session_start) {}

  /// First frame rendered; startup ends.
  void on_join(TimePoint t, BitsPerSecond initial_bitrate) {
    EONA_EXPECTS(!joined_);
    advance(t);
    joined_ = true;
    playing_ = true;
    join_time_ = t - start_;
    bitrate_ = initial_bitrate;
  }

  /// Playback stalled (buffer ran dry).
  void on_stall_start(TimePoint t) {
    EONA_EXPECTS(joined_ && playing_);
    advance(t);
    playing_ = false;
    ++rebuffer_events_;
  }

  /// Playback resumed after a stall.
  void on_stall_end(TimePoint t) {
    EONA_EXPECTS(joined_ && !playing_);
    advance(t);
    playing_ = true;
  }

  /// The ABR logic switched rendition.
  void on_bitrate_change(TimePoint t, BitsPerSecond bitrate) {
    EONA_EXPECTS(bitrate >= 0.0);
    advance(t);
    bitrate_ = bitrate;
  }

  /// Record delivered volume (for traffic forecasts).
  void on_bits_delivered(Bits bits) {
    EONA_EXPECTS(bits >= 0.0);
    bits_delivered_ += bits;
  }

  [[nodiscard]] bool joined() const { return joined_; }
  [[nodiscard]] bool stalled() const { return joined_ && !playing_; }
  [[nodiscard]] std::uint64_t rebuffer_events() const {
    return rebuffer_events_;
  }

  /// Buffering ratio so far: stall time / (play + stall) time.
  [[nodiscard]] double buffering_ratio(TimePoint now) const {
    VideoQoeTracker copy = *this;
    copy.advance(now);
    Duration active = copy.play_time_ + copy.stall_time_;
    return active <= 0.0 ? 0.0 : copy.stall_time_ / active;
  }

  /// Snapshot the session metrics as of `now` (also used for the periodic
  /// beacons clients emit mid-session).
  [[nodiscard]] telemetry::SessionMetrics snapshot(
      TimePoint now, const EngagementModel& model = {}) const {
    VideoQoeTracker copy = *this;
    copy.advance(now);
    telemetry::SessionMetrics m;
    Duration active = copy.play_time_ + copy.stall_time_;
    m.buffering_ratio = active <= 0.0 ? 0.0 : copy.stall_time_ / active;
    m.avg_bitrate =
        copy.play_time_ <= 0.0 ? 0.0 : copy.bitrate_seconds_ / copy.play_time_;
    m.join_time = copy.joined_ ? copy.join_time_ : now - copy.start_;
    m.rebuffer_rate =
        active <= 0.0
            ? 0.0
            : static_cast<double>(copy.rebuffer_events_) / (active / 60.0);
    m.engagement = model.predict(m.buffering_ratio, m.avg_bitrate,
                                 copy.joined_ ? copy.join_time_ : 60.0);
    m.bytes_delivered = copy.bits_delivered_;
    return m;
  }

 private:
  /// Accrue play/stall time and bitrate-seconds up to t.
  void advance(TimePoint t) {
    EONA_EXPECTS(t >= last_event_);
    Duration elapsed = t - last_event_;
    if (joined_) {
      if (playing_) {
        play_time_ += elapsed;
        bitrate_seconds_ += bitrate_ * elapsed;
      } else {
        stall_time_ += elapsed;
      }
    }
    last_event_ = t;
  }

  TimePoint start_;
  TimePoint last_event_;
  bool joined_ = false;
  bool playing_ = false;
  Duration join_time_ = 0.0;
  Duration play_time_ = 0.0;
  Duration stall_time_ = 0.0;
  double bitrate_seconds_ = 0.0;  ///< integral of bitrate over play time
  BitsPerSecond bitrate_ = 0.0;
  std::uint64_t rebuffer_events_ = 0;
  Bits bits_delivered_ = 0.0;
};

}  // namespace eona::qoe
