// Network-metric -> QoE inference: the stop-gap the paper says ISPs use
// today (Figure 4). An InfP that cannot see application experience fits a
// regression from passively observable network features (throughput, RTT,
// loss proxy, bytes, flow duration) to the experience metric, and uses the
// model's predictions in its control loop. The Fig 4 experiment measures
// how inaccurate this is compared to direct A2I export.
#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"

namespace eona::qoe {

/// Dense ridge regression y ~ w.x + b, fitted by the regularised normal
/// equations. Feature dimension is small (network features), so the O(d^3)
/// solve is negligible.
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {
    EONA_EXPECTS(lambda >= 0.0);
  }

  /// Fit on rows `x` (all the same dimension) and targets `y`.
  /// Throws ConfigError on shape mismatch or an unsolvable system.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  [[nodiscard]] bool fitted() const { return !weights_.empty(); }

  /// Predict one sample; dimension must match the training data.
  [[nodiscard]] double predict(const std::vector<double>& features) const;

  /// Mean absolute error over a dataset.
  [[nodiscard]] double mae(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y) const;

  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] double bias() const { return bias_; }

 private:
  double lambda_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Solves the symmetric positive-definite system A x = b in place by
/// Gaussian elimination with partial pivoting. Exposed for direct testing.
/// Throws ConfigError when the matrix is singular.
[[nodiscard]] std::vector<double> solve_linear_system(
    std::vector<std::vector<double>> a, std::vector<double> b);

/// Spearman rank correlation between two equally sized samples; the Fig 4
/// experiment reports it alongside MAE (an ISP ranking CDNs/cells by
/// inferred QoE cares about ordering, not absolute values).
[[nodiscard]] double spearman_correlation(const std::vector<double>& a,
                                          const std::vector<double>& b);

}  // namespace eona::qoe
