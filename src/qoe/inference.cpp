#include "qoe/inference.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace eona::qoe {

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = a.size();
  EONA_EXPECTS(b.size() == n);
  for (const auto& row : a) EONA_EXPECTS(row.size() == n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    if (std::abs(a[pivot][col]) < 1e-12)
      throw ConfigError("singular system in solve_linear_system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i][k] * x[k];
    x[i] = sum / a[i][i];
  }
  return x;
}

void RidgeRegression::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size())
    throw ConfigError("ridge fit: empty or mismatched data");
  const std::size_t d = x.front().size();
  if (d == 0) throw ConfigError("ridge fit: zero-dimensional features");
  for (const auto& row : x)
    if (row.size() != d) throw ConfigError("ridge fit: ragged feature rows");

  // Augment with a constant 1 for the bias; regularise only the weights.
  const std::size_t m = d + 1;
  std::vector<std::vector<double>> gram(m, std::vector<double>(m, 0.0));
  std::vector<double> xty(m, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto feature = [&](std::size_t j) {
      return j < d ? x[i][j] : 1.0;
    };
    for (std::size_t j = 0; j < m; ++j) {
      xty[j] += feature(j) * y[i];
      for (std::size_t k = j; k < m; ++k) gram[j][k] += feature(j) * feature(k);
    }
  }
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t k = 0; k < j; ++k) gram[j][k] = gram[k][j];
  for (std::size_t j = 0; j < d; ++j) gram[j][j] += lambda_;

  std::vector<double> solution = solve_linear_system(std::move(gram), xty);
  bias_ = solution.back();
  solution.pop_back();
  weights_ = std::move(solution);
}

double RidgeRegression::predict(const std::vector<double>& features) const {
  EONA_EXPECTS(fitted());
  EONA_EXPECTS(features.size() == weights_.size());
  double result = bias_;
  for (std::size_t j = 0; j < weights_.size(); ++j)
    result += weights_[j] * features[j];
  return result;
}

double RidgeRegression::mae(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) const {
  EONA_EXPECTS(!x.empty() && x.size() == y.size());
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    total += std::abs(predict(x[i]) - y[i]);
  return total / static_cast<double>(x.size());
}

namespace {
/// Average ranks with ties sharing the mean rank.
std::vector<double> ranks_of(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double mean_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman_correlation(const std::vector<double>& a,
                            const std::vector<double>& b) {
  EONA_EXPECTS(a.size() == b.size());
  EONA_EXPECTS(a.size() >= 2);
  std::vector<double> ra = ranks_of(a);
  std::vector<double> rb = ranks_of(b);
  double mean = (static_cast<double>(a.size()) + 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double da = ra[i] - mean;
    double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;  // constant input: undefined
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace eona::qoe
