// Deterministic JSONL trace of the event stream: one line per bus event,
// appended to an in-memory buffer (never directly to a file, so sweep jobs
// can run concurrently and collate buffers in job order). Field order is
// fixed per event type and doubles are printed with the same "%.17g"
// round-trip format as the JSON codec, so for a fixed seed the buffer is
// bit-identical run-to-run and across sweep thread counts (pinned by
// tests/trace_determinism_test.cpp).
#pragma once

#include <cstdio>
#include <string>

#include "sim/event_bus.hpp"
#include "sim/events.hpp"

namespace eona::sim {

/// Subscribes to every event type in events.hpp and renders each to one
/// JSONL line. Keep alive at least as long as the bus dispatches.
class TraceWriter {
 public:
  TraceWriter() = default;
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Subscribe this writer to all event types on `bus`. The subscriptions
  /// live as long as the bus; call once per bus.
  void subscribe_all(EventBus& bus) {
    bus.subscribe<LinkSaturationEvent>([this](const LinkSaturationEvent& e) {
      begin("link_saturation", e.t);
      field_id("link", e.link.value());
      field_bool("saturated", e.saturated);
      field_num("utilization", e.utilization);
      end();
    });
    bus.subscribe<RateRecomputeEvent>([this](const RateRecomputeEvent& e) {
      begin("rate_recompute", e.t);
      field_u64("recompute", e.recompute);
      field_u64("affected_flows", e.affected_flows);
      field_u64("affected_links", e.affected_links);
      end();
    });
    bus.subscribe<TransferAbortedEvent>([this](const TransferAbortedEvent& e) {
      begin("transfer_aborted", e.t);
      field_u64("transfer", e.transfer);
      field_u64("flow", e.flow.value());
      field_str("reason", e.reason);
      end();
    });
    bus.subscribe<FaultEvent>([this](const FaultEvent& e) {
      begin("fault", e.t);
      field_str("kind", e.kind);
      field_id("link", e.link.value());
      field_num("factor", e.factor);
      end();
    });
    bus.subscribe<ReportPublishedEvent>([this](const ReportPublishedEvent& e) {
      begin("report_published", e.t);
      field_id("from", e.from.value());
      field_id("to", e.to.value());
      field_str("kind", e.kind);
      field_u64("seq", e.seq);
      end();
    });
    bus.subscribe<ReportDroppedEvent>([this](const ReportDroppedEvent& e) {
      begin("report_dropped", e.t);
      field_id("from", e.from.value());
      field_id("to", e.to.value());
      field_str("kind", e.kind);
      field_bool("outage", e.outage);
      end();
    });
    bus.subscribe<ReportDeliveredEvent>([this](const ReportDeliveredEvent& e) {
      begin("report_delivered", e.t);
      field_id("from", e.from.value());
      field_id("to", e.to.value());
      field_str("kind", e.kind);
      field_num("visible_in", e.visible_in);
      end();
    });
    bus.subscribe<ReportServedEvent>([this](const ReportServedEvent& e) {
      begin("report_served", e.t);
      field_id("consumer", e.consumer.value());
      field_str("kind", e.kind);
      field_num("age", e.age);
      field_bool("stale", e.stale);
      end();
    });
    bus.subscribe<SteeringEvent>([this](const SteeringEvent& e) {
      begin("steering", e.t);
      field_id("appp", e.appp.value());
      field_id("from", e.from.value());
      field_id("to", e.to.value());
      field_bool("held", e.held);
      field_str("reason", e.reason);
      end();
    });
    bus.subscribe<MigrationEvent>([this](const MigrationEvent& e) {
      begin("migration", e.t);
      field_id("infp", e.infp.value());
      field_id("cdn", e.cdn.value());
      field_id("from", e.from.value());
      field_id("to", e.to.value());
      field_u64("flows", e.flows);
      field_str("reason", e.reason);
      end();
    });
    bus.subscribe<SessionStartedEvent>([this](const SessionStartedEvent& e) {
      begin("session_started", e.t);
      field_u64("session", e.session.value());
      end();
    });
    bus.subscribe<SessionStalledEvent>([this](const SessionStalledEvent& e) {
      begin("session_stalled", e.t);
      field_u64("session", e.session.value());
      field_u64("stall_count", e.stall_count);
      end();
    });
    bus.subscribe<SessionFinishedEvent>([this](const SessionFinishedEvent& e) {
      begin("session_finished", e.t);
      field_u64("session", e.session.value());
      field_u64("stalls", e.stalls);
      field_u64("cdn_switches", e.cdn_switches);
      end();
    });
    bus.subscribe<SessionStrandedEvent>([this](const SessionStrandedEvent& e) {
      begin("session_stranded", e.t);
      field_u64("session", e.session.value());
      field_str("reason", e.reason);
      end();
    });
    bus.subscribe<SessionResumedEvent>([this](const SessionResumedEvent& e) {
      begin("session_resumed", e.t);
      field_u64("session", e.session.value());
      field_num("outage", e.outage);
      end();
    });
    bus.subscribe<ProvisionEvent>([this](const ProvisionEvent& e) {
      begin("provision", e.t);
      field_id("infp", e.infp.value());
      field_id("link", e.link.value());
      field_num("from_capacity", e.from_capacity);
      field_num("to_capacity", e.to_capacity);
      field_num("lead", e.lead);
      field_str("phase", e.phase);
      field_str("reason", e.reason);
      end();
    });
    bus.subscribe<A2IQoeSampleEvent>([this](const A2IQoeSampleEvent& e) {
      begin("a2i_qoe_sample", e.t);
      field_id("from", e.from.value());
      field_id("isp", e.isp.value());
      field_id("cdn", e.cdn.value());
      field_id("server", e.server.value());
      field_num("mean_buffering_ratio", e.mean_buffering_ratio);
      field_num("p90_buffering_ratio", e.p90_buffering_ratio);
      field_num("mean_bitrate", e.mean_bitrate);
      field_num("mean_engagement", e.mean_engagement);
      field_u64("sessions", e.sessions);
      end();
    });
    bus.subscribe<A2IForecastSampleEvent>(
        [this](const A2IForecastSampleEvent& e) {
          begin("a2i_forecast_sample", e.t);
          field_id("from", e.from.value());
          field_id("isp", e.isp.value());
          field_id("cdn", e.cdn.value());
          field_num("expected_rate", e.expected_rate);
          end();
        });
    bus.subscribe<LinkSampleEvent>([this](const LinkSampleEvent& e) {
      begin("link_sample", e.t);
      field_id("link", e.link.value());
      field_num("utilization", e.utilization);
      field_num("rate", e.rate);
      field_num("capacity", e.capacity);
      end();
    });
    bus.subscribe<LogEvent>([this](const LogEvent& e) {
      begin("log", e.t);
      field_u64("level", static_cast<std::uint64_t>(e.level));
      field_str("component", e.component);
      field_escaped("message", e.message);
      end();
    });
  }

  /// The JSONL buffer accumulated so far ('\n'-terminated lines).
  [[nodiscard]] const std::string& buffer() const { return out_; }
  [[nodiscard]] std::size_t line_count() const { return lines_; }

 private:
  void begin(const char* type, TimePoint t) {
    out_ += "{\"t\":";
    append_num(t);
    out_ += ",\"type\":\"";
    out_ += type;
    out_ += '"';
  }
  void end() {
    out_ += "}\n";
    ++lines_;
  }
  void field_str(const char* key, const char* value) {
    key_(key);
    out_ += '"';
    out_ += value;
    out_ += '"';
  }
  void field_escaped(const char* key, const std::string& value) {
    key_(key);
    out_ += '"';
    for (char c : value) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }
  void field_num(const char* key, double value) {
    key_(key);
    append_num(value);
  }
  void field_u64(const char* key, std::uint64_t value) {
    key_(key);
    out_ += std::to_string(value);
  }
  void field_id(const char* key, std::uint64_t value) { field_u64(key, value); }
  void field_bool(const char* key, bool value) {
    key_(key);
    out_ += value ? "true" : "false";
  }
  void key_(const char* key) {
    out_ += ",\"";
    out_ += key;
    out_ += "\":";
  }
  /// Shortest round-trip double format; matches the JSON codec so numbers
  /// in traces and results agree byte-for-byte.
  void append_num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  }

  std::string out_;
  std::size_t lines_ = 0;
};

}  // namespace eona::sim
