// Barrier-round execution of sector-partitioned simulations.
//
// A million-session world is split into sectors (ISP x CDN-region cells in
// the scale scenario), each a complete, self-contained mini sim::World with
// its own Scheduler, Rng and Network. Between coupling points the sectors
// share no mutable state, so their event streams can run on worker threads
// concurrently; at each barrier tick a serial coordinator reads every
// sector in index order and applies cross-sector mutations (backbone
// headroom reallocation) before the next round starts.
//
// SectorRunner is the pool that executes one such round: run_round(jobs,
// fn) invokes fn(i) for every i in [0, jobs) and returns when all are done.
// Unlike SweepRunner (one-shot fan-out, pool per call), the workers here
// persist across rounds -- a barrier loop calls run_round thousands of
// times and must not pay thread creation per tick. With threads <= 1 the
// round runs inline on the caller's thread; because sectors are independent
// between barriers, the simulation output is byte-identical at ANY thread
// count (pinned by tests/scenario_scale_test.cpp).
//
// Exceptions thrown by jobs are captured per-index; after the round drains,
// the error with the lowest job index is rethrown on the caller's thread
// (deterministic regardless of worker interleaving).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace eona::sim {

class SectorRunner {
 public:
  /// `threads` worker count; 0 means one per hardware thread. Workers are
  /// spawned lazily on the first parallel round.
  explicit SectorRunner(std::size_t threads = 0)
      : threads_(threads != 0 ? threads : default_threads()) {}

  SectorRunner(const SectorRunner&) = delete;
  SectorRunner& operator=(const SectorRunner&) = delete;

  ~SectorRunner() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : pool_) worker.join();
  }

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Total rounds executed (observability for tests and benchmarks).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Run `fn(i)` for every i in [0, jobs) and block until all complete.
  /// Inline (no pool) when one worker suffices. Must be called from the
  /// owning thread only; rounds never overlap.
  void run_round(std::size_t jobs, const std::function<void(std::size_t)>& fn) {
    ++rounds_;
    if (threads_ <= 1 || jobs <= 1) {
      for (std::size_t i = 0; i < jobs; ++i) fn(i);
      return;
    }
    if (pool_.empty()) start_workers();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      jobs_ = jobs;
      next_ = 0;
      busy_ = pool_.size();
      ++round_;
    }
    work_ready_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_done_.wait(lock, [this] { return busy_ == 0; });
      fn_ = nullptr;
    }
    rethrow_first_error();
  }

 private:
  static std::size_t default_threads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  void start_workers() {
    pool_.reserve(threads_);
    for (std::size_t t = 0; t < threads_; ++t)
      pool_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t jobs = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
        fn = fn_;
        jobs = jobs_;
      }
      for (;;) {
        std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) break;
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          errors_.emplace_back(i, std::current_exception());
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--busy_ == 0) round_done_.notify_all();
      }
    }
  }

  /// Rethrow the failure with the lowest job index -- the same error a
  /// serial round would have hit first.
  void rethrow_first_error() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (errors_.empty()) return;
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr error = first->second;
    errors_.clear();
    std::rethrow_exception(error);
  }

  std::size_t threads_;
  std::vector<std::thread> pool_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable round_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t jobs_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t busy_ = 0;
  std::uint64_t round_ = 0;
  bool stop_ = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;

  std::uint64_t rounds_ = 0;
};

}  // namespace eona::sim
