// Barrier-round execution of sector-partitioned simulations.
//
// A million-session world is split into sectors (ISP x CDN-region cells in
// the scale scenario), each a complete, self-contained mini sim::World with
// its own Scheduler, Rng and Network. Between coupling points the sectors
// share no mutable state, so their event streams can run on worker threads
// concurrently; at each barrier tick a serial coordinator reads every
// sector in index order and applies cross-sector mutations (backbone
// headroom reallocation) before the next round starts.
//
// SectorRunner is the pool that executes one such round: run_round(jobs,
// fn) invokes fn(i) for every i in [0, jobs) and returns when all are done.
// The sparse overload run_round(indices, fn) dispatches only the listed
// sector indices -- the quiescence-aware barrier loop in scenarios/scale
// hands it the active subset and skips idle sectors entirely. Unlike
// SweepRunner (one-shot fan-out, pool per call), the workers here
// persist across rounds -- a barrier loop calls run_round thousands of
// times and must not pay thread creation per tick. With threads <= 1 the
// round runs inline on the caller's thread; because sectors are independent
// between barriers, the simulation output is byte-identical at ANY thread
// count (pinned by tests/scenario_scale_test.cpp).
//
// Rounds smaller than the pool wake only min(jobs, threads) workers
// (notify_one per needed worker, not notify_all), so a mostly-quiescent
// round does not pay a thundering herd of wakeups that immediately find
// next_ exhausted. participations() counts workers that actually joined a
// pooled round, which is what tests pin.
//
// Exceptions thrown by jobs are captured per-index; after the round drains,
// the error with the lowest job index is rethrown on the caller's thread
// (deterministic regardless of worker interleaving).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace eona::sim {

class SectorRunner {
 public:
  /// `threads` worker count; 0 means one per hardware thread. Workers are
  /// spawned lazily on the first parallel round.
  explicit SectorRunner(std::size_t threads = 0)
      : threads_(threads != 0 ? threads : default_threads()) {}

  SectorRunner(const SectorRunner&) = delete;
  SectorRunner& operator=(const SectorRunner&) = delete;

  ~SectorRunner() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : pool_) worker.join();
  }

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Total rounds executed (observability for tests and benchmarks).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Total (worker, round) participations on the pooled path: how many
  /// workers actually woke and claimed jobs, summed over all rounds. A
  /// round of j jobs on t workers adds exactly min(j, t) -- the thundering
  /// herd fix's observable contract. Inline rounds add nothing.
  [[nodiscard]] std::uint64_t participations() const { return participations_; }

  /// Run `fn(i)` for every i in [0, jobs) and block until all complete.
  /// Inline (no pool) when one worker suffices. Must be called from the
  /// owning thread only; rounds never overlap.
  void run_round(std::size_t jobs, const std::function<void(std::size_t)>& fn) {
    dispatch(nullptr, jobs, fn);
  }

  /// Sparse round: run `fn(indices[k])` for every k in [0, indices.size())
  /// and block until all complete. The caller keeps `indices` alive and
  /// unchanged for the duration of the round. Error selection is by claim
  /// position, so the failure rethrown is the one a serial walk of
  /// `indices` would have hit first.
  void run_round(std::span<const std::size_t> indices,
                 const std::function<void(std::size_t)>& fn) {
    dispatch(indices.data(), indices.size(), fn);
  }

 private:
  void dispatch(const std::size_t* indices, std::size_t jobs,
                const std::function<void(std::size_t)>& fn) {
    ++rounds_;
    if (threads_ <= 1 || jobs <= 1) {
      for (std::size_t i = 0; i < jobs; ++i)
        fn(indices != nullptr ? indices[i] : i);
      return;
    }
    if (pool_.empty()) start_workers();
    std::size_t participants = std::min(jobs, pool_.size());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      indices_ = indices;
      jobs_ = jobs;
      next_ = 0;
      participants_ = participants;
      entered_ = 0;
      busy_ = participants;
      ++round_;
    }
    // Wake only as many workers as can possibly claim a job. Workers that
    // wake anyway (spurious or late from a prior round) bounce off the
    // entered_ cap without touching busy_.
    if (participants == pool_.size()) {
      work_ready_.notify_all();
    } else {
      for (std::size_t t = 0; t < participants; ++t) work_ready_.notify_one();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_done_.wait(lock, [this] { return busy_ == 0; });
      fn_ = nullptr;
      indices_ = nullptr;
    }
    rethrow_first_error();
  }

 private:
  static std::size_t default_threads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  void start_workers() {
    pool_.reserve(threads_);
    for (std::size_t t = 0; t < threads_; ++t)
      pool_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      const std::size_t* indices = nullptr;
      std::size_t jobs = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
        // Participation cap: exactly participants_ workers join a round
        // (busy_ expects exactly that many decrements). A worker waking
        // beyond the cap -- spurious wakeup, or late enough that the round
        // already drained -- goes back to sleep without claiming anything.
        if (entered_ >= participants_) continue;
        ++entered_;
        ++participations_;
        fn = fn_;
        indices = indices_;
        jobs = jobs_;
      }
      for (;;) {
        std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) break;
        try {
          (*fn)(indices != nullptr ? indices[i] : i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          errors_.emplace_back(i, std::current_exception());
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--busy_ == 0) round_done_.notify_all();
      }
    }
  }

  /// Rethrow the failure with the lowest claim position -- the same error a
  /// serial round (a serial walk of the sparse index list) would hit first.
  void rethrow_first_error() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (errors_.empty()) return;
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr error = first->second;
    errors_.clear();
    std::rethrow_exception(error);
  }

  std::size_t threads_;
  std::vector<std::thread> pool_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable round_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  const std::size_t* indices_ = nullptr;  ///< sparse round map; null = dense
  std::size_t jobs_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t participants_ = 0;  ///< workers this round needs, = min(jobs, threads)
  std::size_t entered_ = 0;       ///< workers that joined so far (capped)
  std::size_t busy_ = 0;
  std::uint64_t round_ = 0;
  bool stop_ = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;

  std::uint64_t rounds_ = 0;
  std::uint64_t participations_ = 0;  ///< see participations()
};

}  // namespace eona::sim
