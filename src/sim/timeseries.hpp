// Time-series recording for experiment outputs. Controllers and players
// record gauges over simulated time; the bench harnesses resample and
// summarise them into the tables/series the experiments report.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace eona::sim {

/// One sample of a recorded metric.
struct Sample {
  TimePoint t = 0.0;
  double value = 0.0;
};

/// An append-only series of (time, value) samples with non-decreasing time.
class TimeSeries {
 public:
  void record(TimePoint t, double value) {
    EONA_EXPECTS(samples_.empty() || t >= samples_.back().t);
    samples_.push_back(Sample{t, value});
  }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const Sample& back() const {
    EONA_EXPECTS(!samples_.empty());
    return samples_.back();
  }

  /// Plain arithmetic mean of sample values.
  [[nodiscard]] double mean() const {
    EONA_EXPECTS(!samples_.empty());
    double total = 0.0;
    for (const auto& s : samples_) total += s.value;
    return total / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    EONA_EXPECTS(!samples_.empty());
    return std::min_element(samples_.begin(), samples_.end(),
                            [](const Sample& a, const Sample& b) {
                              return a.value < b.value;
                            })
        ->value;
  }

  [[nodiscard]] double max() const {
    EONA_EXPECTS(!samples_.empty());
    return std::max_element(samples_.begin(), samples_.end(),
                            [](const Sample& a, const Sample& b) {
                              return a.value < b.value;
                            })
        ->value;
  }

  /// Time-weighted mean over [from, to], treating the series as a
  /// step function (each sample holds until the next). This is the right
  /// average for gauges like link utilisation or buffer level.
  [[nodiscard]] double time_weighted_mean(TimePoint from, TimePoint to) const {
    EONA_EXPECTS(to > from);
    EONA_EXPECTS(!samples_.empty());
    double area = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      TimePoint seg_start = std::max(from, samples_[i].t);
      TimePoint seg_end =
          (i + 1 < samples_.size()) ? std::min(to, samples_[i + 1].t) : to;
      if (seg_end > seg_start) area += samples_[i].value * (seg_end - seg_start);
    }
    // Before the first sample the gauge is taken as the first value.
    if (samples_.front().t > from) {
      TimePoint seg_end = std::min(to, samples_.front().t);
      if (seg_end > from) area += samples_.front().value * (seg_end - from);
    }
    return area / (to - from);
  }

  /// Value of the step function at time t (last sample at or before t);
  /// before the first sample, the first value.
  [[nodiscard]] double value_at(TimePoint t) const {
    EONA_EXPECTS(!samples_.empty());
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](TimePoint tp, const Sample& s) { return tp < s.t; });
    if (it == samples_.begin()) return samples_.front().value;
    return std::prev(it)->value;
  }

  /// Resample onto a fixed grid [from, to) with the given step; used to emit
  /// aligned series for figures.
  [[nodiscard]] std::vector<Sample> resample(TimePoint from, TimePoint to,
                                             Duration step) const {
    EONA_EXPECTS(step > 0.0);
    std::vector<Sample> grid;
    for (TimePoint t = from; t < to; t += step)
      grid.push_back(Sample{t, value_at(t)});
    return grid;
  }

 private:
  std::vector<Sample> samples_;
};

/// A named collection of time series plus scalar counters; each experiment
/// owns one MetricSet and benches read results out of it.
class MetricSet {
 public:
  /// Get-or-create the named series.
  TimeSeries& series(const std::string& name) { return series_[name]; }

  [[nodiscard]] bool has_series(const std::string& name) const {
    return series_.count(name) > 0;
  }

  [[nodiscard]] const TimeSeries& series(const std::string& name) const {
    auto it = series_.find(name);
    EONA_EXPECTS(it != series_.end());
    return it->second;
  }

  /// Add to a named scalar counter.
  void count(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }

  [[nodiscard]] double counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, TimeSeries>& all_series() const {
    return series_;
  }
  [[nodiscard]] const std::map<std::string, double>& all_counters() const {
    return counters_;
  }

 private:
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, double> counters_;
};

}  // namespace eona::sim
