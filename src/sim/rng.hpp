// Deterministic random number facade. Every stochastic decision in the
// emulator draws from an Rng created from the experiment seed, so runs are
// reproducible and variance across seeds is a first-class experimental
// variable.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/contracts.hpp"

namespace eona::sim {

/// Seeded pseudo-random generator with the distributions the workloads need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derive an independent child stream; used to give each subsystem its own
  /// stream so adding draws in one place does not perturb another.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Derive a child stream keyed by `salt` WITHOUT consuming state from this
  /// stream. Fault injection uses this: a channel's fault stream must be
  /// reproducible from (seed, salt) alone, and enabling faults must not
  /// advance -- and thereby perturb -- the workload's entropy stream.
  [[nodiscard]] Rng fork_salted(std::uint64_t salt) const {
    std::uint64_t x = seed_ ^ (salt + 0x9E3779B97F4A7C15ull);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return Rng(x ^ (x >> 31));
  }

  /// The seed this stream was constructed with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    EONA_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    EONA_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    EONA_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given mean (inter-arrival times).
  double exponential(double mean) {
    EONA_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal; sigma may be zero (returns mu).
  double normal(double mu, double sigma) {
    EONA_EXPECTS(sigma >= 0.0);
    if (sigma == 0.0) return mu;
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  /// Log-normal parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    EONA_EXPECTS(sigma >= 0.0);
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double xm, double alpha) {
    EONA_EXPECTS(xm > 0.0 && alpha > 0.0);
    double u = uniform(0.0, 1.0);
    // Guard the u == 0 corner (would divide by zero).
    if (u <= 0.0) u = 1e-12;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Poisson count with the given mean.
  std::int64_t poisson(double mean) {
    EONA_EXPECTS(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Index drawn from a discrete distribution proportional to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    EONA_EXPECTS(!weights.empty());
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Raw 64-bit draw (used by fork and hashing-style consumers).
  std::uint64_t next_u64() { return engine_(); }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Precomputed Zipf(s) sampler over ranks [0, n): rank r has probability
/// proportional to 1/(r+1)^s. Content popularity in CDN workloads is
/// classically Zipf-distributed.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : weights_(n) {
    EONA_EXPECTS(n > 0);
    EONA_EXPECTS(s >= 0.0);
    for (std::size_t r = 0; r < n; ++r)
      weights_[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
    dist_ = std::discrete_distribution<std::size_t>(weights_.begin(),
                                                    weights_.end());
  }

  [[nodiscard]] std::size_t size() const { return weights_.size(); }

  std::size_t sample(Rng& rng) const {
    // discrete_distribution needs an engine; route through Rng's raw draws
    // via a thin adaptor to keep all entropy in one stream.
    struct Adaptor {
      Rng& rng;
      using result_type = std::uint64_t;
      static constexpr result_type min() { return 0; }
      static constexpr result_type max() { return ~result_type{0}; }
      result_type operator()() { return rng.next_u64(); }
    } adaptor{rng};
    return dist_(adaptor);
  }

  /// Probability mass of a given rank (for analytic checks in tests).
  [[nodiscard]] double probability(std::size_t rank) const {
    EONA_EXPECTS(rank < weights_.size());
    double total = 0.0;
    for (double w : weights_) total += w;
    return weights_[rank] / total;
  }

 private:
  std::vector<double> weights_;
  mutable std::discrete_distribution<std::size_t> dist_;
};

}  // namespace eona::sim
