// Deterministic discrete-event scheduler: the heartbeat of the emulator.
//
// Events are (time, sequence) ordered; the sequence number makes ties
// deterministic (events scheduled earlier fire earlier), which in turn makes
// every experiment bit-for-bit reproducible from its seed and config.
//
// Hot-path storage is allocation-free at steady state: actions live in
// small-buffer InlineAction storage inside the queue entries, the queue is a
// plain vector heap (reservable via reserve_events), and both Gates and
// EventHandles are {slot, generation} tokens into one scheduler-owned arena
// whose slots recycle through a free list.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/action.hpp"

namespace eona::sim {

class Scheduler;

/// Opaque handle to a scheduled event; allows cancellation. A {slot,
/// generation} token into the owning scheduler's arena -- the same storage
/// discipline as Gate, so per-event scheduling allocates nothing. Value
/// type; copies refer to the same event. Must not outlive the scheduler.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has neither fired nor been
  /// cancelled.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  static constexpr std::uint32_t kNone = 0xffffffffu;
  EventHandle(const Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
      : sched_(sched), slot_(slot), gen_(gen) {}
  const Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = kNone;
  std::uint32_t gen_ = 0;
};

/// Allocation-free revocation token for handle-free posts (see
/// Scheduler::post_at). A Gate is a {slot, generation} pair into a
/// scheduler-owned arena: closing the gate bumps the slot's generation, so
/// every event posted through the old generation is skipped without firing
/// -- the exact semantics of cancelling an EventHandle, minus the per-event
/// handle bookkeeping. Value type; copying copies the token, not the gate.
class Gate {
 public:
  Gate() = default;
  /// True if this token was obtained from open_gate() (says nothing about
  /// whether the gate has since been closed -- ask Scheduler::gate_open).
  [[nodiscard]] bool valid() const { return slot_ != kNone; }

 private:
  friend class Scheduler;
  static constexpr std::uint32_t kNone = 0xffffffffu;
  std::uint32_t slot_ = kNone;
  std::uint32_t gen_ = 0;
};

/// Priority-queue based event scheduler with a virtual clock.
///
/// Not thread-safe by design: the whole emulation is single-threaded and
/// deterministic (Core Guidelines CP.1 -- assume your code will run as part
/// of a multi-threaded program only where you have made that true). Sector-
/// parallel execution runs one Scheduler per sector, never sharing one.
class Scheduler {
 public:
  using Action = InlineAction;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Number of events that have fired so far.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Number of events still queued (including cancelled-but-unpopped ones).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Pre-size the event queue so steady-state posting never reallocates.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Pre-size the gate/handle slot arena.
  void reserve_slots(std::size_t n) {
    slot_gen_.reserve(n);
    slot_free_.reserve(n);
  }

  /// Schedule `action` to run at absolute time `when` (>= now).
  EventHandle schedule_at(TimePoint when, Action action) {
    EONA_EXPECTS(when >= now_);
    EONA_EXPECTS(action);
    std::uint32_t slot = acquire_slot();
    std::uint32_t gen = slot_gen_[slot];
    push_entry(Entry{when, next_seq_++, std::move(action), slot, gen,
                     /*owns_slot=*/true});
    return EventHandle(this, slot, gen);
  }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  // --- handle-free posts ---------------------------------------------------
  // Fire-and-forget events (transfer completions, periodic ticks) dominate
  // the event stream; posting them skips even the arena slot the schedule_*
  // path claims. Ordering and tie-breaking are identical to schedule_at
  // (same sequence counter), pinned by tests/sim_scheduler_post_test.cpp.

  /// Post `action` at absolute time `when` with no cancellation handle.
  void post_at(TimePoint when, Action action) {
    EONA_EXPECTS(when >= now_);
    EONA_EXPECTS(action);
    push_entry(Entry{when, next_seq_++, std::move(action), kNoSlot, 0,
                     /*owns_slot=*/false});
  }

  /// Post `action` after `delay` seconds with no cancellation handle.
  void post_after(Duration delay, Action action) {
    post_at(now_ + delay, std::move(action));
  }

  /// Post `action` at `when`, revocable in bulk through `gate`: if the gate
  /// is closed before the event's turn, the event is skipped without firing.
  void post_at(TimePoint when, const Gate& gate, Action action) {
    EONA_EXPECTS(when >= now_);
    EONA_EXPECTS(action);
    EONA_EXPECTS(gate_open(gate));
    push_entry(Entry{when, next_seq_++, std::move(action), gate.slot_,
                     gate.gen_, /*owns_slot=*/false});
  }

  void post_after(Duration delay, const Gate& gate, Action action) {
    post_at(now_ + delay, gate, std::move(action));
  }

  /// Open a revocation gate. Gates are slots in a scheduler-owned arena;
  /// opening reuses closed slots, so steady-state churn allocates nothing.
  [[nodiscard]] Gate open_gate() {
    Gate gate;
    gate.slot_ = acquire_slot();
    gate.gen_ = slot_gen_[gate.slot_];
    return gate;
  }

  /// Close a gate: every event posted through it is skipped (idempotent;
  /// closing an already-closed or default token is a no-op). Resets `gate`
  /// to the default (invalid) token.
  void close_gate(Gate& gate) {
    if (gate.slot_ != Gate::kNone && slot_gen_[gate.slot_] == gate.gen_)
      release_slot(gate.slot_);
    gate = Gate{};
  }

  /// True while `gate` is open (events posted through it will fire).
  [[nodiscard]] bool gate_open(const Gate& gate) const {
    return gate.slot_ != Gate::kNone && slot_gen_[gate.slot_] == gate.gen_;
  }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op (idempotent).
  void cancel(const EventHandle& handle) {
    if (handle.sched_ == this && handle.slot_ != EventHandle::kNone &&
        slot_gen_[handle.slot_] == handle.gen_)
      release_slot(handle.slot_);
  }

  /// Fire the single next pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      Entry entry = pop_entry();
      if (!live(entry)) continue;  // cancelled handle or closed gate
      // Release the handle slot before invoking so pending() reads false
      // from inside the action (matches the pre-arena flag semantics).
      if (entry.owns_slot) release_slot(entry.slot);
      EONA_ASSERT(entry.when >= now_);
      now_ = entry.when;
      ++fired_;
      entry.action();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or the clock would pass `deadline`.
  /// The clock is left at exactly `deadline` (events at == deadline fire).
  void run_until(TimePoint deadline) {
    EONA_EXPECTS(deadline >= now_);
    while (!empty()) {
      if (next_event_time() > deadline) break;
      step();
    }
    now_ = deadline;
  }

  /// Run until no events remain. Guarded by a generous safety valve so a
  /// buggy self-rescheduling loop fails loudly instead of hanging.
  void run_all(std::uint64_t max_events = 500'000'000) {
    while (step()) {
      if (fired_ > max_events)
        throw Error("scheduler: event budget exhausted (runaway loop?)");
    }
  }

  /// Time of the earliest pending (non-cancelled) event.
  /// Precondition: at least one pending event.
  [[nodiscard]] TimePoint next_event_time() {
    drop_cancelled();
    EONA_EXPECTS(!queue_.empty());
    return queue_.front().when;
  }

  /// Time of the earliest pending event, or `fallback` when the queue is
  /// empty. The O(1) peek barrier loops use to classify a sector as
  /// quiescent for a round (no event to run before the round's target).
  [[nodiscard]] TimePoint next_event_time_or(TimePoint fallback) {
    drop_cancelled();
    return queue_.empty() ? fallback : queue_.front().when;
  }

  [[nodiscard]] bool empty() {
    drop_cancelled();
    return queue_.empty();
  }

 private:
  friend class EventHandle;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    Action action;
    std::uint32_t slot;  ///< kNoSlot for plain posts
    std::uint32_t gen;
    bool owns_slot;  ///< true for schedule_* entries: slot freed on fire
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot() {
    std::uint32_t slot;
    if (!slot_free_.empty()) {
      slot = slot_free_.back();
      slot_free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slot_gen_.size());
      slot_gen_.push_back(0);
    }
    return slot;
  }

  void release_slot(std::uint32_t slot) {
    ++slot_gen_[slot];
    slot_free_.push_back(slot);
  }

  [[nodiscard]] bool slot_live(std::uint32_t slot, std::uint32_t gen) const {
    return slot != kNoSlot && slot_gen_[slot] == gen;
  }

  [[nodiscard]] bool live(const Entry& entry) const {
    return entry.slot == kNoSlot || slot_gen_[entry.slot] == entry.gen;
  }

  void push_entry(Entry entry) {
    queue_.push_back(std::move(entry));
    std::push_heap(queue_.begin(), queue_.end(), Later{});
  }

  [[nodiscard]] Entry pop_entry() {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Entry entry = std::move(queue_.back());
    queue_.pop_back();
    return entry;
  }

  void drop_cancelled() {
    while (!queue_.empty() && !live(queue_.front())) pop_entry();
  }

  // Binary heap over a plain vector (std::push_heap/pop_heap with Later):
  // same ordering as std::priority_queue but reservable and movable-from.
  std::vector<Entry> queue_;
  std::vector<std::uint32_t> slot_gen_;   ///< generation per arena slot
  std::vector<std::uint32_t> slot_free_;  ///< recyclable (released) slots
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

inline bool EventHandle::pending() const {
  return sched_ != nullptr && sched_->slot_live(slot_, gen_);
}

/// Repeatedly runs an action at a fixed period until stopped. Used for
/// control loops (AppP/InfP controllers act on their own cadence).
class PeriodicTask {
 public:
  /// Starts ticking `period` seconds after `start_offset`; fires action at
  /// each tick. The first tick is at now + start_offset + period unless
  /// `fire_immediately`.
  PeriodicTask(Scheduler& sched, Duration period, Scheduler::Action action,
               Duration start_offset = 0.0, bool fire_immediately = false)
      : sched_(sched), period_(period), action_(std::move(action)) {
    EONA_EXPECTS(period > 0.0);
    EONA_EXPECTS(start_offset >= 0.0);
    gate_ = sched_.open_gate();
    Duration first = fire_immediately ? start_offset : start_offset + period_;
    sched_.post_after(first, gate_, [this] { tick(); });
  }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { stop(); }

  /// Stop ticking; idempotent. Closing the gate revokes the pending tick,
  /// so the scheduler never calls back into a destroyed task.
  void stop() {
    stopped_ = true;
    sched_.close_gate(gate_);
  }

  /// Change the period for subsequent ticks (takes effect after the next
  /// already-scheduled tick fires).
  void set_period(Duration period) {
    EONA_EXPECTS(period > 0.0);
    period_ = period;
  }

  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick() {
    if (stopped_) return;
    ++ticks_;
    action_();
    if (!stopped_) sched_.post_after(period_, gate_, [this] { tick(); });
  }

  Scheduler& sched_;
  Duration period_;
  Scheduler::Action action_;
  Gate gate_;
  bool stopped_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace eona::sim
