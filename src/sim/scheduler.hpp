// Deterministic discrete-event scheduler: the heartbeat of the emulator.
//
// Events are (time, sequence) ordered; the sequence number makes ties
// deterministic (events scheduled earlier fire earlier), which in turn makes
// every experiment bit-for-bit reproducible from its seed and config.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace eona::sim {

/// Opaque handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has neither fired nor been
  /// cancelled.
  [[nodiscard]] bool pending() const { return state_ && !*state_; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}
  // Shared "cancelled/fired" flag; the queue entry holds the other reference.
  std::shared_ptr<bool> state_;
};

/// Allocation-free revocation token for handle-free posts (see
/// Scheduler::post_at). A Gate is a {slot, generation} pair into a
/// scheduler-owned arena: closing the gate bumps the slot's generation, so
/// every event posted through the old generation is skipped without firing
/// -- the exact semantics of cancelling an EventHandle, minus the per-event
/// shared_ptr. Value type; copying copies the token, not the gate.
class Gate {
 public:
  Gate() = default;
  /// True if this token was obtained from open_gate() (says nothing about
  /// whether the gate has since been closed -- ask Scheduler::gate_open).
  [[nodiscard]] bool valid() const { return slot_ != kNone; }

 private:
  friend class Scheduler;
  static constexpr std::uint32_t kNone = 0xffffffffu;
  std::uint32_t slot_ = kNone;
  std::uint32_t gen_ = 0;
};

/// Priority-queue based event scheduler with a virtual clock.
///
/// Not thread-safe by design: the whole emulation is single-threaded and
/// deterministic (Core Guidelines CP.1 -- assume your code will run as part
/// of a multi-threaded program only where you have made that true).
class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Number of events that have fired so far.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Number of events still queued (including cancelled-but-unpopped ones).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Schedule `action` to run at absolute time `when` (>= now).
  EventHandle schedule_at(TimePoint when, Action action) {
    EONA_EXPECTS(when >= now_);
    EONA_EXPECTS(action != nullptr);
    auto state = std::make_shared<bool>(false);
    queue_.push(Entry{when, next_seq_++, std::move(action), state});
    return EventHandle(std::move(state));
  }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  // --- handle-free posts ---------------------------------------------------
  // Fire-and-forget events (transfer completions, periodic ticks) dominate
  // the event stream; posting them skips the per-event shared_ptr<bool> the
  // schedule_* path allocates. Ordering and tie-breaking are identical to
  // schedule_at (same sequence counter), pinned by
  // tests/sim_scheduler_post_test.cpp.

  /// Post `action` at absolute time `when` with no cancellation handle.
  void post_at(TimePoint when, Action action) {
    EONA_EXPECTS(when >= now_);
    EONA_EXPECTS(action != nullptr);
    queue_.push(Entry{when, next_seq_++, std::move(action), nullptr, Gate{}});
  }

  /// Post `action` after `delay` seconds with no cancellation handle.
  void post_after(Duration delay, Action action) {
    post_at(now_ + delay, std::move(action));
  }

  /// Post `action` at `when`, revocable in bulk through `gate`: if the gate
  /// is closed before the event's turn, the event is skipped without firing.
  void post_at(TimePoint when, const Gate& gate, Action action) {
    EONA_EXPECTS(when >= now_);
    EONA_EXPECTS(action != nullptr);
    EONA_EXPECTS(gate_open(gate));
    queue_.push(Entry{when, next_seq_++, std::move(action), nullptr, gate});
  }

  void post_after(Duration delay, const Gate& gate, Action action) {
    post_at(now_ + delay, gate, std::move(action));
  }

  /// Open a revocation gate. Gates are slots in a scheduler-owned arena;
  /// opening reuses closed slots, so steady-state churn allocates nothing.
  [[nodiscard]] Gate open_gate() {
    Gate gate;
    if (!gate_free_.empty()) {
      gate.slot_ = gate_free_.back();
      gate_free_.pop_back();
    } else {
      gate.slot_ = static_cast<std::uint32_t>(gate_gen_.size());
      gate_gen_.push_back(0);
    }
    gate.gen_ = gate_gen_[gate.slot_];
    return gate;
  }

  /// Close a gate: every event posted through it is skipped (idempotent;
  /// closing an already-closed or default token is a no-op). Resets `gate`
  /// to the default (invalid) token.
  void close_gate(Gate& gate) {
    if (gate.slot_ != Gate::kNone && gate_gen_[gate.slot_] == gate.gen_) {
      ++gate_gen_[gate.slot_];
      gate_free_.push_back(gate.slot_);
    }
    gate = Gate{};
  }

  /// True while `gate` is open (events posted through it will fire).
  [[nodiscard]] bool gate_open(const Gate& gate) const {
    return gate.slot_ != Gate::kNone && gate_gen_[gate.slot_] == gate.gen_;
  }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op (idempotent).
  void cancel(const EventHandle& handle) {
    if (handle.state_) *handle.state_ = true;
  }

  /// Fire the single next pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      // The queue is ordered; copy out the top then pop so the action may
      // itself schedule or cancel events.
      Entry entry = queue_.top();
      queue_.pop();
      if (!live(entry)) continue;  // cancelled handle or closed gate
      if (entry.done) *entry.done = true;
      EONA_ASSERT(entry.when >= now_);
      now_ = entry.when;
      ++fired_;
      entry.action();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or the clock would pass `deadline`.
  /// The clock is left at exactly `deadline` (events at == deadline fire).
  void run_until(TimePoint deadline) {
    EONA_EXPECTS(deadline >= now_);
    while (!empty()) {
      if (next_event_time() > deadline) break;
      step();
    }
    now_ = deadline;
  }

  /// Run until no events remain. Guarded by a generous safety valve so a
  /// buggy self-rescheduling loop fails loudly instead of hanging.
  void run_all(std::uint64_t max_events = 500'000'000) {
    while (step()) {
      if (fired_ > max_events)
        throw Error("scheduler: event budget exhausted (runaway loop?)");
    }
  }

  /// Time of the earliest pending (non-cancelled) event.
  /// Precondition: at least one pending event.
  [[nodiscard]] TimePoint next_event_time() {
    drop_cancelled();
    EONA_EXPECTS(!queue_.empty());
    return queue_.top().when;
  }

  [[nodiscard]] bool empty() {
    drop_cancelled();
    return queue_.empty();
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> done;  ///< null for handle-free posts
    Gate gate;                   ///< invalid for ungated events
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool live(const Entry& entry) const {
    if (entry.done && *entry.done) return false;
    if (entry.gate.slot_ != Gate::kNone &&
        gate_gen_[entry.gate.slot_] != entry.gate.gen_)
      return false;
    return true;
  }

  void drop_cancelled() {
    while (!queue_.empty() && !live(queue_.top())) queue_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::uint32_t> gate_gen_;   ///< generation per gate slot
  std::vector<std::uint32_t> gate_free_;  ///< recyclable (closed) slots
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

/// Repeatedly runs an action at a fixed period until stopped. Used for
/// control loops (AppP/InfP controllers act on their own cadence).
class PeriodicTask {
 public:
  /// Starts ticking `period` seconds after `start_offset`; fires action at
  /// each tick. The first tick is at now + start_offset + period unless
  /// `fire_immediately`.
  PeriodicTask(Scheduler& sched, Duration period, Scheduler::Action action,
               Duration start_offset = 0.0, bool fire_immediately = false)
      : sched_(sched), period_(period), action_(std::move(action)) {
    EONA_EXPECTS(period > 0.0);
    EONA_EXPECTS(start_offset >= 0.0);
    gate_ = sched_.open_gate();
    Duration first = fire_immediately ? start_offset : start_offset + period_;
    sched_.post_after(first, gate_, [this] { tick(); });
  }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { stop(); }

  /// Stop ticking; idempotent. Closing the gate revokes the pending tick,
  /// so the scheduler never calls back into a destroyed task.
  void stop() {
    stopped_ = true;
    sched_.close_gate(gate_);
  }

  /// Change the period for subsequent ticks (takes effect after the next
  /// already-scheduled tick fires).
  void set_period(Duration period) {
    EONA_EXPECTS(period > 0.0);
    period_ = period;
  }

  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick() {
    if (stopped_) return;
    ++ticks_;
    action_();
    if (!stopped_) sched_.post_after(period_, gate_, [this] { tick(); });
  }

  Scheduler& sched_;
  Duration period_;
  Scheduler::Action action_;
  Gate gate_;
  bool stopped_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace eona::sim
