// Minimal leveled logger stamped with simulated time. Quiet by default so
// benches stay clean; examples turn it up to narrate scenarios.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "common/units.hpp"

namespace eona::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink configuration. A deliberate, tiny exception to the
/// "no globals" rule (Core Guidelines I.2 allows cerr-like channels): logging
/// is observational and never feeds back into behaviour.
class Log {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static void set_threshold(LogLevel level) { threshold() = level; }

  static bool enabled(LogLevel level) { return level >= threshold(); }

  static void write(LogLevel level, TimePoint now, const std::string& msg) {
    if (!enabled(level)) return;
    std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::cout;
    os << "[" << label(level) << " t=" << now << "] " << msg << '\n';
  }

 private:
  static const char* label(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }
};

}  // namespace eona::sim
