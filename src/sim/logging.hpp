// Minimal leveled logger stamped with simulated time. Quiet by default so
// benches stay clean; examples turn it up to narrate scenarios.
//
// Components no longer call Log::write directly: they publish typed events
// on the sim::EventBus and the LogSink below renders the interesting ones
// as human-readable lines -- same thresholds, same format, but the console
// is now just one more subscriber next to the counters and the trace.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "common/units.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"

namespace eona::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink configuration. A deliberate, tiny exception to the
/// "no globals" rule (Core Guidelines I.2 allows cerr-like channels): logging
/// is observational and never feeds back into behaviour.
class Log {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static void set_threshold(LogLevel level) { threshold() = level; }

  static bool enabled(LogLevel level) { return level >= threshold(); }

  static void write(LogLevel level, TimePoint now, const std::string& msg) {
    if (!enabled(level)) return;
    std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::cout;
    os << "[" << label(level) << " t=" << now << "] " << msg << '\n';
  }

 private:
  static const char* label(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }
};

/// Renders bus events as leveled console lines through Log::write (which
/// applies the process-wide threshold, kWarn by default -- so a wired world
/// stays silent unless a scenario turns the level up). Free-form LogEvents
/// pass through at their own level.
class LogSink {
 public:
  LogSink() = default;
  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;

  /// Subscribe the sink to the narratable event types on `bus`. The
  /// subscriptions live as long as the bus; call once per bus.
  void subscribe_all(EventBus& bus) {
    bus.subscribe<LinkSaturationEvent>([](const LinkSaturationEvent& e) {
      if (!Log::enabled(LogLevel::kDebug)) return;
      std::ostringstream os;
      os << "link " << e.link.value()
         << (e.saturated ? " saturated" : " drained")
         << " (util=" << e.utilization << ")";
      Log::write(LogLevel::kDebug, e.t, os.str());
    });
    bus.subscribe<SteeringEvent>([](const SteeringEvent& e) {
      LogLevel level = e.held ? LogLevel::kDebug : LogLevel::kInfo;
      if (!Log::enabled(level)) return;
      std::ostringstream os;
      if (e.held)
        os << "appp " << e.appp.value() << " held primary cdn "
           << e.to.value() << " (" << e.reason << ")";
      else
        os << "appp " << e.appp.value() << " steered primary cdn "
           << e.from.value() << " -> " << e.to.value() << " (" << e.reason
           << ")";
      Log::write(level, e.t, os.str());
    });
    bus.subscribe<MigrationEvent>([](const MigrationEvent& e) {
      if (!Log::enabled(LogLevel::kInfo)) return;
      std::ostringstream os;
      os << "infp " << e.infp.value() << " moved cdn " << e.cdn.value()
         << " egress " << e.from.value() << " -> " << e.to.value() << " ("
         << e.flows << " flows, " << e.reason << ")";
      Log::write(LogLevel::kInfo, e.t, os.str());
    });
    bus.subscribe<ReportDroppedEvent>([](const ReportDroppedEvent& e) {
      if (!Log::enabled(LogLevel::kDebug)) return;
      std::ostringstream os;
      os << e.kind << " report " << e.from.value() << " -> " << e.to.value()
         << (e.outage ? " lost to outage" : " dropped");
      Log::write(LogLevel::kDebug, e.t, os.str());
    });
    bus.subscribe<SessionStalledEvent>([](const SessionStalledEvent& e) {
      if (!Log::enabled(LogLevel::kTrace)) return;
      std::ostringstream os;
      os << "session " << e.session.value() << " stalled (#" << e.stall_count
         << ")";
      Log::write(LogLevel::kTrace, e.t, os.str());
    });
    bus.subscribe<LogEvent>([](const LogEvent& e) {
      auto level = static_cast<LogLevel>(e.level);
      if (!Log::enabled(level)) return;
      Log::write(level, e.t, std::string(e.component) + ": " + e.message);
    });
  }
};

}  // namespace eona::sim
