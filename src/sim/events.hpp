// The event taxonomy carried by sim::EventBus: one struct per observable
// fact, each stamped with the simulated time it happened. Payloads use only
// common-layer vocabulary (strong ids, units) so every layer can emit and
// every layer can subscribe without new dependencies.
//
// Reason strings are static string literals (`const char*`) -- attribution
// labels, not prose -- which keeps publish() allocation-free. LogEvent is
// the one exception (free-form message, cold path by construction).
//
// Taxonomy:
//   net      LinkSaturationEvent, RateRecomputeEvent, TransferAbortedEvent
//   chaos    FaultEvent
//   eona     ReportPublishedEvent, ReportDroppedEvent, ReportDeliveredEvent,
//            ReportServedEvent
//   control  SteeringEvent, MigrationEvent, ProvisionEvent
//   app      SessionStartedEvent, SessionStalledEvent, SessionFinishedEvent,
//            SessionStrandedEvent, SessionResumedEvent
//   telemetry A2IQoeSampleEvent, A2IForecastSampleEvent, LinkSampleEvent
//   logging  LogEvent
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace eona::sim {

// --- data plane (emitted by net::Network) ----------------------------------

/// A link crossed the saturation threshold in either direction after a rate
/// recompute. `saturated` is the new state.
struct LinkSaturationEvent {
  TimePoint t = 0.0;
  LinkId link;
  bool saturated = false;
  double utilization = 0.0;
};

/// One max-min rate recompute finished (one per unbatched mutation, one per
/// non-empty batch commit).
struct RateRecomputeEvent {
  TimePoint t = 0.0;
  std::uint64_t recompute = 0;      ///< running recompute count
  std::size_t affected_flows = 0;   ///< size of the re-solved dirty component
  std::size_t affected_links = 0;
};

/// A volume transfer was aborted by the data plane instead of completing --
/// today always because its path crossed a dead link and the flow stranded
/// (distinct from cancel(): the application did not ask for this).
struct TransferAbortedEvent {
  TimePoint t = 0.0;
  std::uint64_t transfer = 0;  ///< net::TransferId value
  FlowId flow;                 ///< the stranded flow that was torn down
  const char* reason = "";     ///< e.g. "link-down"
};

// --- chaos plane (emitted by sim::ChaosEngine) -----------------------------

/// One fault-plan action was applied to the infrastructure. `link` is the
/// affected link (the egress link for server faults; invalid for broker
/// faults, which have no topology element); `factor` is the capacity scale
/// for brown-outs (1 = restored, 0 otherwise unused).
struct FaultEvent {
  TimePoint t = 0.0;
  const char* kind = "";  ///< "link_down" | "link_up" | "brownout" |
                          ///< "server_crash" | "server_restart" |
                          ///< "exchange_crash" | "exchange_restart"
  LinkId link;
  double factor = 0.0;
};

// --- EONA report plane (emitted by core::ReportChannel) --------------------

/// A report was published into one peer's channel (before faults).
struct ReportPublishedEvent {
  TimePoint t = 0.0;
  ProviderId from;
  ProviderId to;
  const char* kind = "";  ///< "a2i" | "i2a"
  std::uint64_t seq = 0;  ///< per-channel running publish count
};

/// A published report was lost: channel outage or injected drop.
struct ReportDroppedEvent {
  TimePoint t = 0.0;
  ProviderId from;
  ProviderId to;
  const char* kind = "";
  bool outage = false;  ///< true = outage window, false = random drop
};

/// A report was queued for delivery (becomes visible after delay + jitter).
struct ReportDeliveredEvent {
  TimePoint t = 0.0;
  ProviderId from;
  ProviderId to;
  const char* kind = "";
  Duration visible_in = 0.0;  ///< channel delay + fault jitter
};

/// A controller served a report to its control logic this epoch (the signal
/// the delivery-health accumulators consume).
struct ReportServedEvent {
  TimePoint t = 0.0;
  ProviderId consumer;
  const char* kind = "";
  Duration age = 0.0;
  bool stale = false;
};

// --- control plane ---------------------------------------------------------

/// AppP primary-CDN steering decision. `held` = true records a considered
/// switch that EONA attribution suppressed (from == to in that case).
struct SteeringEvent {
  TimePoint t = 0.0;
  ProviderId appp;
  CdnId from;
  CdnId to;
  bool held = false;
  const char* reason = "";
};

/// InfP egress migration: the peering point serving `cdn` moved and `flows`
/// live flows were rerouted.
struct MigrationEvent {
  TimePoint t = 0.0;
  ProviderId infp;
  CdnId cdn;
  PeeringId from;
  PeeringId to;
  std::size_t flows = 0;
  const char* reason = "";
};

/// InfP elastic capacity provisioning: an access/egress capacity change was
/// ordered (capacity lands after the lead time) or delivered (applied to the
/// network). `from_capacity` is the capacity in force when the order was
/// placed; `to_capacity` the ordered target.
struct ProvisionEvent {
  TimePoint t = 0.0;
  ProviderId infp;
  LinkId link;
  BitsPerSecond from_capacity = 0.0;
  BitsPerSecond to_capacity = 0.0;
  Duration lead = 0.0;
  const char* phase = "";  ///< "ordered" | "delivered"
  const char* reason = "";  ///< "reactive" | "forecast"
};

// --- application sessions (emitted by app::SessionPool / VideoPlayer) ------

struct SessionStartedEvent {
  TimePoint t = 0.0;
  SessionId session;
};

/// A player entered a buffering stall.
struct SessionStalledEvent {
  TimePoint t = 0.0;
  SessionId session;
  std::uint64_t stall_count = 0;  ///< including this one
};

struct SessionFinishedEvent {
  TimePoint t = 0.0;
  SessionId session;
  std::uint64_t stalls = 0;
  std::uint64_t cdn_switches = 0;
};

/// A session's in-flight fetch was aborted by the network (dead path); the
/// player is holding no transfer and must re-plan. Every stranded session
/// must eventually resume or finish (checked by the InvariantAuditor).
struct SessionStrandedEvent {
  TimePoint t = 0.0;
  SessionId session;
  const char* reason = "";
};

/// A previously stranded session delivered a chunk again on a new path.
struct SessionResumedEvent {
  TimePoint t = 0.0;
  SessionId session;
  Duration outage = 0.0;  ///< stranded-to-resumed wall time
};

// --- telemetry samples (emitted by AppP publish / control::LinkMonitor) ----

/// One v2 A2I QoE tuple as published on the wire: per-(isp, cdn, server)
/// group summary at publish time. Emitted once per tuple per A2I publish so
/// the columnar store (and traces) carry the full exported stream.
struct A2IQoeSampleEvent {
  TimePoint t = 0.0;
  ProviderId from;  ///< publishing AppP
  IspId isp;
  CdnId cdn;
  ServerId server;
  double mean_buffering_ratio = 0.0;
  double p90_buffering_ratio = 0.0;
  BitsPerSecond mean_bitrate = 0.0;
  double mean_engagement = 0.0;
  std::uint64_t sessions = 0;
};

/// One v2 A2I traffic-volume forecast tuple as published on the wire.
struct A2IForecastSampleEvent {
  TimePoint t = 0.0;
  ProviderId from;
  IspId isp;
  CdnId cdn;
  BitsPerSecond expected_rate = 0.0;
};

/// One periodic link utilization sample from control::LinkMonitor. `rate`
/// is utilization x effective capacity -- the carried-demand estimate the
/// provisioning forecaster trends on.
struct LinkSampleEvent {
  TimePoint t = 0.0;
  LinkId link;
  double utilization = 0.0;
  BitsPerSecond rate = 0.0;
  BitsPerSecond capacity = 0.0;
};

// --- logging ---------------------------------------------------------------

/// A leveled, human-oriented message routed through the bus so it reaches
/// structured outputs (traces) as well as the console Log sink. Levels
/// mirror sim::LogLevel numerically.
struct LogEvent {
  TimePoint t = 0.0;
  int level = 0;
  const char* component = "";
  std::string message;
};

}  // namespace eona::sim
