// Parallel fan-out of independent jobs with deterministic collation.
//
// A SweepRunner owns nothing between calls: run(jobs, fn) spins up a pool,
// hands out job indexes through one atomic counter, stores each result at
// its job's index, joins, and returns the results in job order -- so the
// output is byte-for-byte independent of how the OS interleaved the
// workers. Simulation runs are independent by construction (each builds its
// own Scheduler/Network/Rng from a seed), which is exactly the shape this
// exploits: no shared mutable state, no locks on the hot path.
//
// The first exception thrown by any job is captured and rethrown on the
// caller's thread after the pool drains; remaining workers stop picking up
// new jobs once a failure is recorded.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace eona::sim {

class SweepRunner {
 public:
  /// `threads` worker count; 0 means one per hardware thread.
  explicit SweepRunner(std::size_t threads = 0)
      : threads_(threads != 0 ? threads : default_threads()) {}

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Run `fn(index)` for index in [0, jobs) and return the results indexed
  /// by job. The result type must be default-constructible and movable.
  /// Serial (pool-free) when one worker suffices, so a threads=1 sweep is
  /// the plain loop the determinism test compares against.
  template <typename Fn>
  auto run(std::size_t jobs, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{}))> {
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(jobs);
    if (threads_ <= 1 || jobs <= 1) {
      for (std::size_t i = 0; i < jobs; ++i) results[i] = fn(i);
      return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
      while (!failed.load(std::memory_order_relaxed)) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };

    std::vector<std::thread> pool;
    std::size_t workers = std::min(threads_, jobs);
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return results;
  }

 private:
  static std::size_t default_threads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  std::size_t threads_;
};

}  // namespace eona::sim
