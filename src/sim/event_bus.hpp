// Typed publish/subscribe bus threaded through every layer of a wired
// world: the network emits saturation transitions, report channels emit
// publish/drop/delivery, controllers emit steering and migration decisions
// with attributed reasons, session pools emit lifecycle events. Subscribers
// (MetricsRegistry counters, the delivery-health accumulators, the JSONL
// TraceWriter, the human-readable Log sink) observe without being wired to
// any producer.
//
// Determinism contract: dispatch order is subscription order per event
// type, publishers run synchronously on the simulation thread, and the bus
// itself holds no clock or randomness -- so for a fixed seed the event
// stream is bit-for-bit reproducible (pinned by the golden-trace tests).
//
// Allocation: publish() performs no allocation -- it walks a flat slot
// vector and invokes the stored callbacks. Subscribe/unsubscribe are cold
// paths and may allocate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace eona::sim {

/// Synchronous, deterministic, type-erased event bus.
///
/// Reentrancy: a handler may publish further events (nested dispatch) and
/// may unsubscribe any subscription -- including its own -- mid-dispatch;
/// removal during dispatch marks the slot dead (it stops receiving
/// immediately) and the vector is compacted once the outermost dispatch of
/// that type unwinds. Handlers subscribed during a dispatch do not receive
/// the event being dispatched.
class EventBus {
 public:
  /// Identifies one subscription; pass back to unsubscribe(). Value type,
  /// default-constructed == empty.
  class Subscription {
   public:
    Subscription() = default;
    [[nodiscard]] bool active() const { return id_ != 0; }

   private:
    friend class EventBus;
    Subscription(std::type_index type, std::uint64_t id)
        : type_(type), id_(id) {}
    std::type_index type_ = typeid(void);
    std::uint64_t id_ = 0;
  };

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Register a handler for events of type E. Handlers fire in
  /// subscription order.
  template <typename E>
  Subscription subscribe(std::function<void(const E&)> handler) {
    EONA_EXPECTS(handler != nullptr);
    Channel& channel = channels_[std::type_index(typeid(E))];
    std::uint64_t id = next_id_++;
    channel.slots.push_back(
        Slot{id, [h = std::move(handler)](const void* event) {
               h(*static_cast<const E*>(event));
             }});
    return Subscription(std::type_index(typeid(E)), id);
  }

  /// Remove a subscription; idempotent, and safe to call from inside a
  /// handler (even the one being removed).
  void unsubscribe(Subscription& sub) {
    if (sub.id_ == 0) return;
    auto it = channels_.find(sub.type_);
    if (it != channels_.end()) {
      Channel& channel = it->second;
      for (Slot& slot : channel.slots) {
        if (slot.id == sub.id_) {
          slot.handler = nullptr;  // dead; skipped by any in-flight dispatch
          channel.dead = true;
          break;
        }
      }
      if (channel.dispatch_depth == 0) compact(channel);
    }
    sub = Subscription{};
  }

  /// Deliver `event` synchronously to every live subscriber of E, in
  /// subscription order. No-op (and allocation-free) with no subscribers.
  template <typename E>
  void publish(const E& event) {
    auto it = channels_.find(std::type_index(typeid(E)));
    if (it == channels_.end()) return;
    Channel& channel = it->second;
    ++channel.dispatch_depth;
    // Snapshot the size: handlers subscribed mid-dispatch (which may also
    // reallocate the vector) must not see this event.
    std::size_t count = channel.slots.size();
    for (std::size_t i = 0; i < count; ++i) {
      if (channel.slots[i].handler) channel.slots[i].handler(&event);
    }
    if (--channel.dispatch_depth == 0 && channel.dead) compact(channel);
  }

  /// Live subscriber count for E (dead-but-uncompacted slots excluded).
  template <typename E>
  [[nodiscard]] std::size_t subscriber_count() const {
    auto it = channels_.find(std::type_index(typeid(E)));
    if (it == channels_.end()) return 0;
    std::size_t n = 0;
    for (const Slot& slot : it->second.slots)
      if (slot.handler) ++n;
    return n;
  }

 private:
  struct Slot {
    std::uint64_t id;
    std::function<void(const void*)> handler;  ///< null = dead slot
  };
  struct Channel {
    std::vector<Slot> slots;
    int dispatch_depth = 0;  ///< >0 while publish() of this type is live
    bool dead = false;       ///< dead slots awaiting compaction
  };

  static void compact(Channel& channel) {
    std::erase_if(channel.slots,
                  [](const Slot& slot) { return slot.handler == nullptr; });
    channel.dead = false;
  }

  std::unordered_map<std::type_index, Channel> channels_;
  std::uint64_t next_id_ = 1;
};

}  // namespace eona::sim
