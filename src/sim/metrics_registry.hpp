// Counter-based bus subscriber: one monotone counter per event type (plus a
// few derived splits such as held vs. acted steering decisions). The cheap,
// always-on complement to the TraceWriter -- scenarios surface the counters
// in their JSON results without paying for a full trace.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/event_bus.hpp"
#include "sim/events.hpp"

namespace eona::sim {

/// Subscribes to every event type and counts occurrences. Deterministic:
/// counters are keyed by fixed names in a sorted map.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Subscribe the registry to all event types on `bus`. The subscriptions
  /// live as long as the bus; call once per bus.
  void subscribe_all(EventBus& bus) {
    bus.subscribe<LinkSaturationEvent>([this](const LinkSaturationEvent& e) {
      bump("link_saturation");
      bump(e.saturated ? "link_saturation.onset" : "link_saturation.clear");
    });
    bus.subscribe<RateRecomputeEvent>(
        [this](const RateRecomputeEvent&) { bump("rate_recompute"); });
    bus.subscribe<TransferAbortedEvent>(
        [this](const TransferAbortedEvent&) { bump("transfer_aborted"); });
    bus.subscribe<FaultEvent>([this](const FaultEvent& e) {
      bump("fault");
      bump_prefixed("fault.", e.kind);
    });
    bus.subscribe<ReportPublishedEvent>(
        [this](const ReportPublishedEvent&) { bump("report_published"); });
    bus.subscribe<ReportDroppedEvent>([this](const ReportDroppedEvent& e) {
      bump("report_dropped");
      if (e.outage) bump("report_dropped.outage");
    });
    bus.subscribe<ReportDeliveredEvent>(
        [this](const ReportDeliveredEvent&) { bump("report_delivered"); });
    bus.subscribe<ReportServedEvent>([this](const ReportServedEvent& e) {
      bump("report_served");
      if (e.stale) bump("report_served.stale");
    });
    bus.subscribe<SteeringEvent>([this](const SteeringEvent& e) {
      bump(e.held ? "steering.held" : "steering.switched");
    });
    bus.subscribe<MigrationEvent>(
        [this](const MigrationEvent&) { bump("migration"); });
    bus.subscribe<SessionStartedEvent>(
        [this](const SessionStartedEvent&) { bump("session_started"); });
    bus.subscribe<SessionStalledEvent>(
        [this](const SessionStalledEvent&) { bump("session_stalled"); });
    bus.subscribe<SessionFinishedEvent>(
        [this](const SessionFinishedEvent&) { bump("session_finished"); });
    bus.subscribe<SessionStrandedEvent>(
        [this](const SessionStrandedEvent&) { bump("session_stranded"); });
    bus.subscribe<SessionResumedEvent>(
        [this](const SessionResumedEvent&) { bump("session_resumed"); });
    bus.subscribe<LogEvent>([this](const LogEvent&) { bump("log"); });
  }

  [[nodiscard]] std::uint64_t count(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// All counters, sorted by name (deterministic iteration).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

 private:
  void bump(const char* name) { ++counters_[name]; }
  void bump_prefixed(const char* prefix, const char* name) {
    ++counters_[std::string(prefix) + name];
  }

  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace eona::sim
