// Small-buffer-optimized move-only callable for scheduler actions.
//
// std::function heap-allocates once its capture block outgrows the
// implementation's tiny inline buffer (typically 16 bytes with libstdc++),
// and every transfer completion / periodic tick / deferred erase posts one.
// At millions of events that allocation dominates the scheduler's cost.
// InlineAction stores captures up to kInlineBytes in place and only falls
// back to the heap for oversized callables; the fallback is counted so
// tests can assert the hot paths stay allocation-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace eona::sim {

/// Move-only type-erased `void()` callable with inline storage.
class InlineAction {
 public:
  /// Inline capture budget. Sized for the scheduler's real callers: the
  /// largest hot-path lambda (VideoPlayer chunk completion: this + a couple
  /// of ids) fits with room to spare, as does a whole std::function.
  static constexpr std::size_t kInlineBytes = 48;

  InlineAction() = default;
  InlineAction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (storage()) Fn(std::forward<F>(fn));
      vtable_ = &kInlineOps<Fn>;
    } else {
      *static_cast<Fn**>(storage()) = new Fn(std::forward<F>(fn));
      vtable_ = &kHeapOps<Fn>;
      heap_fallbacks().fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { vtable_->invoke(storage()); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  /// Total number of actions (process-wide) that outgrew the inline buffer
  /// and heap-allocated. Atomic because sweep/sector runners construct
  /// actions from worker threads. Monotonic; sample before/after a region
  /// to assert it stayed allocation-free.
  [[nodiscard]] static std::uint64_t heap_fallbacks_count() {
    return heap_fallbacks().load(std::memory_order_relaxed);
  }

  /// True if a callable of type F would be stored inline (no allocation).
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  ///< move + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr VTable kInlineOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  static std::atomic<std::uint64_t>& heap_fallbacks() {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  void* storage() { return static_cast<void*>(buffer_); }

  void move_from(InlineAction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) vtable_->relocate(storage(), other.storage());
    other.vtable_ = nullptr;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage());
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
};

}  // namespace eona::sim
