// Session arrival processes: Poisson arrivals with a piecewise-constant
// rate profile, which is how the scenarios express diurnal load and the
// Figure 3 flash crowd (a sudden rate step).
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace eona::app {

/// From `start` onwards, arrivals occur at `rate` per second (until the
/// next phase begins).
struct ArrivalPhase {
  TimePoint start = 0.0;
  double rate = 0.0;
};

/// Piecewise-constant approximation of a diurnal (raised-cosine) rate
/// curve: `steps` equal slices per `period`, each carrying the curve's
/// value at the slice midpoint, tiled until `horizon`. The curve starts at
/// `night_rate` (midnight), peaks at `day_rate` half a period in, and its
/// mean over a whole period is (night_rate + day_rate) / 2.
inline std::vector<ArrivalPhase> diurnal_phases(double night_rate,
                                                double day_rate,
                                                Duration period,
                                                std::size_t steps,
                                                Duration horizon) {
  EONA_EXPECTS(night_rate >= 0.0 && day_rate >= 0.0);
  EONA_EXPECTS(period > 0.0 && horizon > 0.0);
  EONA_EXPECTS(steps >= 1);
  constexpr double kTau = 6.283185307179586476925286766559;
  std::vector<ArrivalPhase> phases;
  double slice = period / static_cast<double>(steps);
  for (TimePoint start = 0.0; start < horizon; start += slice) {
    double mid = start + 0.5 * slice;
    double wave = 0.5 * (1.0 - std::cos(kTau * mid / period));
    phases.push_back({start, night_rate + (day_rate - night_rate) * wave});
  }
  return phases;
}

/// Flash-crowd profile: `base` rate with a step to `surge` over [t0, t1).
inline std::vector<ArrivalPhase> flash_phases(double base, double surge,
                                              TimePoint t0, TimePoint t1) {
  EONA_EXPECTS(base >= 0.0 && surge >= 0.0);
  EONA_EXPECTS(t0 > 0.0 && t1 > t0);
  return {{0.0, base}, {t0, surge}, {t1, base}};
}

/// Non-homogeneous Poisson arrival process over a piecewise-constant rate
/// profile. Exact (no thinning needed): by memorylessness, the exponential
/// draw is restarted at each phase boundary it crosses.
class PoissonArrivals {
 public:
  PoissonArrivals(sim::Scheduler& sched, sim::Rng rng,
                  std::vector<ArrivalPhase> phases, TimePoint end,
                  std::function<void()> on_arrival)
      : sched_(sched),
        rng_(std::move(rng)),
        phases_(std::move(phases)),
        end_(end),
        on_arrival_(std::move(on_arrival)) {
    EONA_EXPECTS(!phases_.empty());
    EONA_EXPECTS(on_arrival_ != nullptr);
    for (std::size_t i = 1; i < phases_.size(); ++i)
      EONA_EXPECTS(phases_[i].start > phases_[i - 1].start);
    for (const auto& phase : phases_) EONA_EXPECTS(phase.rate >= 0.0);
    schedule_next(sched_.now());
  }

  PoissonArrivals(const PoissonArrivals&) = delete;
  PoissonArrivals& operator=(const PoissonArrivals&) = delete;
  ~PoissonArrivals() { stop(); }

  void stop() { sched_.cancel(pending_); }

  [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }

  /// Absolute time of the process's next scheduled wake-up -- the pending
  /// arrival, or the phase boundary where the draw restarts; +infinity once
  /// the process has run off its horizon. Barrier loops use this to prove a
  /// drained sector cannot produce an arrival before the round's target.
  [[nodiscard]] TimePoint next_fire_at() const { return next_fire_; }

  /// Rate in effect at time t (0 before the first phase).
  [[nodiscard]] double rate_at(TimePoint t) const {
    double rate = 0.0;
    for (const auto& phase : phases_) {
      if (phase.start > t) break;
      rate = phase.rate;
    }
    return rate;
  }

  /// Start of the next phase strictly after t; end_ if none.
  [[nodiscard]] TimePoint next_boundary(TimePoint t) const {
    for (const auto& phase : phases_)
      if (phase.start > t) return std::min(phase.start, end_);
    return end_;
  }

 private:
  void schedule_next(TimePoint from) {
    next_fire_ = std::numeric_limits<TimePoint>::infinity();
    if (from >= end_) return;
    double rate = rate_at(from);
    TimePoint boundary = next_boundary(from);
    if (rate <= 0.0) {
      // Idle phase: jump to the next boundary and retry.
      if (boundary >= end_) return;
      next_fire_ = boundary;
      pending_ = sched_.schedule_at(boundary,
                                    [this, boundary] { schedule_next(boundary); });
      return;
    }
    TimePoint candidate = from + rng_.exponential(1.0 / rate);
    if (candidate > boundary) {
      // Crossed into a new phase: restart the draw there (memorylessness).
      if (boundary >= end_) return;
      next_fire_ = boundary;
      pending_ = sched_.schedule_at(boundary,
                                    [this, boundary] { schedule_next(boundary); });
      return;
    }
    if (candidate >= end_) return;
    next_fire_ = candidate;
    pending_ = sched_.schedule_at(candidate, [this, candidate] {
      ++arrivals_;
      on_arrival_();
      schedule_next(candidate);
    });
  }

  sim::Scheduler& sched_;
  sim::Rng rng_;
  std::vector<ArrivalPhase> phases_;
  TimePoint end_;
  std::function<void()> on_arrival_;
  sim::EventHandle pending_;
  std::uint64_t arrivals_ = 0;
  TimePoint next_fire_ = 0.0;  ///< see next_fire_at(); set by schedule_next
};

}  // namespace eona::app
