#include "app/video_player.hpp"

#include <algorithm>
#include <cmath>

namespace eona::app {

VideoPlayer::VideoPlayer(sim::Scheduler& sched,
                         net::TransferManager& transfers, net::Network& network,
                         const net::Routing& routing, const CdnDirectory& cdns,
                         PlayerBrain& brain,
                         telemetry::BeaconCollector* collector,
                         PlayerConfig config, SessionId session,
                         telemetry::Dimensions dims, NodeId client,
                         ContentItem content, qoe::EngagementModel engagement,
                         DoneCallback on_done)
    : sched_(sched),
      transfers_(transfers),
      network_(network),
      routing_(routing),
      cdns_(cdns),
      brain_(brain),
      collector_(collector),
      config_(std::move(config)),
      session_(session),
      dims_(dims),
      client_(client),
      content_(std::move(content)),
      engagement_(engagement),
      on_done_(std::move(on_done)),
      qoe_(sched.now()),
      buffer_synced_at_(sched.now()) {
  EONA_EXPECTS(!config_.ladder.empty());
  EONA_EXPECTS(std::is_sorted(config_.ladder.begin(), config_.ladder.end()));
  EONA_EXPECTS(config_.chunk_duration > 0.0);
  EONA_EXPECTS(config_.startup_target < config_.max_buffer);
  EONA_EXPECTS(config_.resume_target < config_.max_buffer);
  EONA_EXPECTS(content_.kind == ContentKind::kVideo);
  EONA_EXPECTS(content_.video_duration > 0.0);
  chunks_total_ = static_cast<std::size_t>(
      std::ceil(content_.video_duration / config_.chunk_duration));
  dims_.isp = dims.isp;
}

VideoPlayer::~VideoPlayer() {
  // Silent teardown (no final beacon): the owner is dismantling the world.
  if (inflight_ && transfers_.active(*inflight_)) transfers_.cancel(*inflight_);
  sched_.cancel(underrun_event_);
  sched_.cancel(fetch_resume_event_);
  sched_.cancel(finish_event_);
}

void VideoPlayer::start() {
  EONA_EXPECTS(state_ == State::kCreated);
  state_ = State::kStartup;
  PlayerView v = view();
  endpoint_ = brain_.choose_endpoint(v);
  dims_.cdn = endpoint_.cdn;
  dims_.server = endpoint_.server;
  if (collector_ && config_.beacon_period > 0.0) {
    beacon_task_ = std::make_unique<sim::PeriodicTask>(
        sched_, config_.beacon_period, [this] { emit_beacon(); });
  }
  request_next_chunk();
}

void VideoPlayer::abort() {
  if (state_ == State::kDone) return;
  if (inflight_ && transfers_.active(*inflight_)) transfers_.cancel(*inflight_);
  inflight_.reset();
  finish();
}

Duration VideoPlayer::buffer_level() const {
  if (state_ != State::kPlaying) return buffer_;
  Duration drained = sched_.now() - buffer_synced_at_;
  return std::max(buffer_ - drained, 0.0);
}

telemetry::SessionMetrics VideoPlayer::metrics_now() const {
  return qoe_.snapshot(sched_.now(), engagement_);
}

PlayerView VideoPlayer::view() const {
  PlayerView v;
  v.session = session_;
  v.now = sched_.now();
  v.buffer = buffer_level();
  v.throughput_estimate = throughput_ewma_;
  v.bitrate_index = bitrate_index_;
  v.cdn = endpoint_.cdn;
  v.server = endpoint_.server;
  v.stall_count = stall_count_;
  v.stalls_since_switch = stalls_since_switch_;
  v.stalled = state_ == State::kStalled;
  v.joined = qoe_.joined();
  v.chunks_fetched = chunks_fetched_;
  v.chunks_total = chunks_total_;
  v.isp = dims_.isp;
  v.client_node = client_;
  v.ladder = &config_.ladder;
  v.max_buffer = config_.max_buffer;
  return v;
}

void VideoPlayer::sync_buffer() {
  TimePoint now = sched_.now();
  if (state_ == State::kPlaying)
    buffer_ = std::max(buffer_ - (now - buffer_synced_at_), 0.0);
  buffer_synced_at_ = now;
}

void VideoPlayer::request_next_chunk() {
  EONA_ASSERT(!inflight_);
  if (state_ == State::kDone || chunks_fetched_ == chunks_total_) return;
  sync_buffer();

  PlayerView v = view();
  // Endpoint reconsideration happens at every chunk boundary after the
  // first: this is where trial-and-error CDN switching (baseline) or
  // hint-guided switching (EONA) plugs in. A switch pays the reconnect
  // delay before the next chunk request can leave.
  if (chunks_fetched_ > 0 && sched_.now() >= switch_block_until_ &&
      brain_.should_switch_endpoint(v)) {
    Endpoint next = brain_.choose_endpoint(v);
    if (!(next == endpoint_)) {
      if (next.cdn != endpoint_.cdn)
        ++cdn_switches_;
      else
        ++server_switches_;
      endpoint_ = next;
      stalls_since_switch_ = 0;
      dims_.cdn = endpoint_.cdn;
      dims_.server = endpoint_.server;
      switch_block_until_ =
          sched_.now() +
          std::max(config_.switch_delay, config_.min_switch_interval);
      if (config_.switch_delay > 0.0) {
        fetch_resume_event_ = sched_.schedule_after(
            config_.switch_delay, [this] { request_next_chunk(); });
        return;
      }
      v = view();
    }
  }

  std::size_t idx = brain_.choose_bitrate(v);
  EONA_EXPECTS(idx < config_.ladder.size());
  if (idx != bitrate_index_) {
    bitrate_index_ = idx;
    if (qoe_.joined())
      qoe_.on_bitrate_change(sched_.now(), config_.ladder[idx]);
  }

  Cdn& cdn = cdns_.at(endpoint_.cdn);
  FetchPlan plan = cdn.plan_fetch(content_.id, endpoint_.server, client_,
                                  dims_.isp, routing_);
  inflight_bits_ = config_.ladder[bitrate_index_] * config_.chunk_duration;
  fetch_started_ = sched_.now();
  inflight_ = transfers_.start(
      plan.path, inflight_bits_,
      [this](net::TransferId) { on_chunk_complete(); }, net::kElasticDemand,
      [this](net::TransferId, const char* reason) { on_fetch_failed(reason); });
}

void VideoPlayer::on_fetch_failed(const char* reason) {
  inflight_.reset();
  sync_buffer();
  TimePoint now = sched_.now();
  if (!stranded_) {
    stranded_ = true;
    stranded_since_ = now;
    if (bus_ != nullptr)
      bus_->publish(sim::SessionStrandedEvent{now, session_, reason});
  }

  // Let a health-tracking brain remember the dead endpoint, then re-select.
  // A hard failure bypasses the switch cooldown: the connection is gone and
  // a reconnect is due either way, so pinning to the dead endpoint only
  // guarantees another failure.
  PlayerView v = view();
  v.endpoint_failed = true;
  brain_.note_transfer_failure(v);
  Endpoint next = brain_.choose_endpoint(v);
  if (!(next == endpoint_)) {
    if (next.cdn != endpoint_.cdn)
      ++cdn_switches_;
    else
      ++server_switches_;
    endpoint_ = next;
    stalls_since_switch_ = 0;
    dims_.cdn = endpoint_.cdn;
    dims_.server = endpoint_.server;
    switch_block_until_ =
        now + std::max(config_.switch_delay, config_.min_switch_interval);
  }
  // Re-request after the retry pacing delay (never same-timestamp: a still-
  // dead path would abort the refetch immediately and spin the scheduler).
  sched_.cancel(fetch_resume_event_);
  fetch_resume_event_ = sched_.schedule_after(
      std::max(config_.retry_backoff, config_.switch_delay),
      [this] { request_next_chunk(); });
}

void VideoPlayer::on_chunk_complete() {
  inflight_.reset();
  sync_buffer();
  TimePoint now = sched_.now();
  if (stranded_) {
    stranded_ = false;
    brain_.note_transfer_success(view());
    if (bus_ != nullptr)
      bus_->publish(
          sim::SessionResumedEvent{now, session_, now - stranded_since_});
  }

  Duration fetch_time = now - fetch_started_;
  if (fetch_time > 0.0) {
    BitsPerSecond sample = inflight_bits_ / fetch_time;
    throughput_ewma_ = throughput_ewma_ <= 0.0
                           ? sample
                           : kEwmaAlpha * sample +
                                 (1.0 - kEwmaAlpha) * throughput_ewma_;
  }
  qoe_.on_bits_delivered(inflight_bits_);
  buffer_ += config_.chunk_duration;
  ++chunks_fetched_;

  if (state_ == State::kStartup && buffer_ >= config_.startup_target) {
    state_ = State::kPlaying;
    qoe_.on_join(now, config_.ladder[bitrate_index_]);
  } else if (state_ == State::kStalled && buffer_ >= config_.resume_target) {
    state_ = State::kPlaying;
    qoe_.on_stall_end(now);
  }
  reschedule_underrun();

  if (chunks_fetched_ == chunks_total_) {
    maybe_schedule_finish();
    return;
  }

  if (buffer_ > config_.max_buffer - config_.chunk_duration) {
    // No room for a whole chunk below the cap: let playback drain first,
    // so the buffer never exceeds max_buffer.
    Duration wait = buffer_ - (config_.max_buffer - config_.chunk_duration);
    fetch_resume_event_ =
        sched_.schedule_after(wait, [this] { request_next_chunk(); });
  } else {
    request_next_chunk();
  }
}

void VideoPlayer::reschedule_underrun() {
  sched_.cancel(underrun_event_);
  if (state_ != State::kPlaying) return;
  sync_buffer();
  underrun_event_ =
      sched_.schedule_after(buffer_, [this] { on_buffer_underrun(); });
}

void VideoPlayer::on_buffer_underrun() {
  sync_buffer();
  buffer_ = 0.0;
  if (chunks_fetched_ == chunks_total_) {
    finish();
    return;
  }
  EONA_ASSERT(state_ == State::kPlaying);
  state_ = State::kStalled;
  ++stall_count_;
  ++stalls_since_switch_;
  qoe_.on_stall_start(sched_.now());
  if (bus_ != nullptr)
    bus_->publish(
        sim::SessionStalledEvent{sched_.now(), session_, stall_count_});

  // Stall-time abandonment: ask the brain whether to give up on the current
  // endpoint right now. A switch cancels the in-flight chunk -- its partial
  // progress is lost (as with a real aborted HTTP request) -- and re-requests
  // from the new endpoint after the reconnect delay.
  if (inflight_ && sched_.now() >= switch_block_until_) {
    PlayerView v = view();
    if (brain_.should_switch_endpoint(v)) {
      Endpoint next = brain_.choose_endpoint(v);
      if (!(next == endpoint_)) {
        if (next.cdn != endpoint_.cdn)
          ++cdn_switches_;
        else
          ++server_switches_;
        endpoint_ = next;
        stalls_since_switch_ = 0;
        dims_.cdn = endpoint_.cdn;
        dims_.server = endpoint_.server;
        switch_block_until_ =
            sched_.now() +
            std::max(config_.switch_delay, config_.min_switch_interval);
        // Abandon the in-flight chunk; its partial bits are wasted and the
        // chunk is re-requested from the new endpoint (it was never counted
        // in chunks_fetched_, so no counter adjustment is needed).
        transfers_.cancel(*inflight_);
        inflight_.reset();
        fetch_resume_event_ = sched_.schedule_after(
            config_.switch_delay, [this] { request_next_chunk(); });
        return;
      }
    }
  }
  // Bitrate abandonment: the in-flight chunk is evidently not arriving in
  // time; if a lower rendition is available, abort the request and refetch
  // small (standard DASH abandonment). Progress on the aborted chunk is
  // lost. Guarded to strictly-lower renditions so a floor-rate stall cannot
  // livelock on restarts.
  if (inflight_ && bitrate_index_ > 0) {
    std::size_t fallback = brain_.choose_bitrate(view());
    if (fallback < bitrate_index_) {
      transfers_.cancel(*inflight_);
      inflight_.reset();
      request_next_chunk();
      return;
    }
  }
  // Defensive: if no fetch is in flight or queued (should not happen), kick
  // the pipeline so the session cannot wedge.
  if (!inflight_ && !fetch_resume_event_.pending()) request_next_chunk();
}

void VideoPlayer::maybe_schedule_finish() {
  sync_buffer();
  TimePoint now = sched_.now();
  if (state_ == State::kStartup) {
    // Whole (short) video fetched before the startup target was reached:
    // join now and play it out.
    state_ = State::kPlaying;
    qoe_.on_join(now, config_.ladder[bitrate_index_]);
  } else if (state_ == State::kStalled) {
    state_ = State::kPlaying;
    qoe_.on_stall_end(now);
  }
  sched_.cancel(underrun_event_);
  buffer_synced_at_ = now;
  finish_event_ = sched_.schedule_after(buffer_, [this] { finish(); });
}

void VideoPlayer::emit_beacon() {
  if (!collector_ || state_ == State::kDone) return;
  telemetry::SessionRecord record;
  record.session = session_;
  record.dims = dims_;
  record.metrics = metrics_now();
  // Beacons carry the traffic *delta* since the previous beacon so the
  // AppP's windowed aggregation can sum volumes without double counting.
  Bits cumulative = record.metrics.bytes_delivered;
  record.metrics.bytes_delivered = cumulative - reported_bits_;
  reported_bits_ = cumulative;
  record.timestamp = sched_.now();
  collector_->report(record);
}

void VideoPlayer::finish() {
  if (state_ == State::kDone) return;
  sync_buffer();
  state_ = State::kDone;
  beacon_task_.reset();
  sched_.cancel(underrun_event_);
  sched_.cancel(fetch_resume_event_);
  sched_.cancel(finish_event_);

  telemetry::SessionRecord record;
  record.session = session_;
  record.dims = dims_;
  record.metrics = qoe_.snapshot(sched_.now(), engagement_);
  record.timestamp = sched_.now();
  // The completion callback sees whole-session metrics (cumulative volume);
  // only the beacon stream into the collector is delta-encoded.
  telemetry::SessionRecord beacon = record;
  beacon.metrics.bytes_delivered =
      record.metrics.bytes_delivered - reported_bits_;
  reported_bits_ = record.metrics.bytes_delivered;
  if (collector_) collector_->report(beacon);
  if (on_done_) on_done_(record);
}

}  // namespace eona::app
