// Ownership and lifecycle for dynamically spawned video sessions.
//
// Players finish asynchronously (their DoneCallback fires from inside their
// own event handlers), so destruction must be deferred: the pool collects
// the final record, then destroys finished players in one zero-delay sweep.
//
// Storage is struct-of-arrays style: players live in fixed-size slabs owned
// by the pool (placement-new, recycled through a free list -- no
// per-session heap allocation at steady state) and are addressed through a
// dense slot vector with a session-id -> slot index. Iteration walks the
// slot vector in index order, which is a deterministic function of the
// spawn/finish history. The legacy Factory spawn path (caller-allocated
// unique_ptr) is kept for tests and external embedders; slabs and heap
// players coexist in the same slot table.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "app/video_player.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::app {

/// Final per-session outcome, including the counters that live on the
/// player (collected before the player is destroyed).
struct SessionSummary {
  telemetry::SessionRecord record;
  std::uint64_t stalls = 0;
  std::uint64_t cdn_switches = 0;
  std::uint64_t server_switches = 0;
};

/// Owns active VideoPlayers; collects final session records.
class SessionPool {
 public:
  /// `make` receives the done-callback the player must invoke and returns
  /// the constructed player.
  using Factory = std::function<std::unique_ptr<VideoPlayer>(
      VideoPlayer::DoneCallback)>;

  /// When `network` is given, bulk operations (abort_all) coalesce their
  /// flow removals into a single Network batch: one rate recompute instead
  /// of one per aborted session.
  explicit SessionPool(sim::Scheduler& sched, net::Network* network = nullptr)
      : sched_(sched), network_(network), gate_(sched.open_gate()) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  ~SessionPool() {
    sched_.close_gate(gate_);
    for (Slot& slot : slots_) destroy(slot);
  }

  /// Emit session lifecycle events (start/stall/finish) on `bus`; spawned
  /// players inherit it for stall events.
  void set_event_bus(sim::EventBus* bus) { bus_ = bus; }

  /// Pre-size the slot table and recycling lists for `n` concurrent
  /// sessions (slabs still grow on demand).
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_list_.reserve(n);
    free_storage_.reserve(n);
  }

  /// Construct a player in pool-owned slab storage, register it, and start
  /// it. Forwards `args` to the VideoPlayer constructor and appends the
  /// pool's done-callback, so callers pass everything up to and including
  /// the engagement model. This is the allocation-free hot path: steady
  /// session churn recycles slab slots and never touches the heap.
  template <typename... Args>
  SessionId spawn_player(Args&&... args) {
    void* storage = acquire_storage();
    VideoPlayer* player = nullptr;
    try {
      player = ::new (storage) VideoPlayer(
          std::forward<Args>(args)...,
          [this](const telemetry::SessionRecord& record) {
            on_session_done(record);
          });
    } catch (...) {
      free_storage_.push_back(storage);
      throw;
    }
    return adopt(player, /*arena=*/true);
  }

  /// Create, register, and start a caller-constructed player (legacy path;
  /// one heap allocation per session).
  SessionId spawn(const Factory& make) {
    auto player = make([this](const telemetry::SessionRecord& record) {
      on_session_done(record);
    });
    EONA_EXPECTS(player != nullptr);
    return adopt(player.release(), /*arena=*/false);
  }

  [[nodiscard]] std::size_t active_count() const { return active_; }

  /// Active players currently in a buffering stall.
  [[nodiscard]] std::size_t stalled_count() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_)
      if (slot.player != nullptr && slot.player->stalled()) ++n;
    return n;
  }

  /// Active players stranded by a data-plane fetch abort and not yet
  /// resumed on a live path (see VideoPlayer::stranded()).
  [[nodiscard]] std::size_t stranded_count() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_)
      if (slot.player != nullptr && slot.player->stranded()) ++n;
    return n;
  }
  [[nodiscard]] const std::vector<telemetry::SessionRecord>& finished()
      const {
    return finished_;
  }
  [[nodiscard]] const std::vector<SessionSummary>& summaries() const {
    return summaries_;
  }

  [[nodiscard]] bool contains(SessionId id) const {
    return find_slot(id) != kNoSlot;
  }

  [[nodiscard]] VideoPlayer& player(SessionId id) {
    std::uint32_t slot = find_slot(id);
    if (slot == kNoSlot)
      throw NotFoundError("session " + std::to_string(id.value()));
    return *slots_[slot].player;
  }

  /// Iterate active players (e.g. the AppP controller pushing guidance) in
  /// slot order -- deterministic given the spawn/finish history.
  void for_each(const std::function<void(VideoPlayer&)>& fn) {
    for (Slot& slot : slots_)
      if (slot.player != nullptr) fn(*slot.player);
  }

  /// Abort every active session (end of experiment); final beacons fire.
  /// With an attached network, the burst of transfer cancellations lands as
  /// one batched recompute. O(n): the player teardown is deferred to one
  /// sweep, so no per-session erase churn happens inside this loop.
  void abort_all() {
    std::optional<net::Network::Batch> batch;
    if (network_ != nullptr) batch.emplace(*network_);
    // Collect first: abort() triggers on_session_done -> deferred erase.
    std::vector<SessionId> ids;
    ids.reserve(active_);
    for (const Slot& slot : slots_)
      if (slot.player != nullptr && !slot.player->finished())
        ids.push_back(slot.player->session());
    for (SessionId id : ids) {
      std::uint32_t slot = find_slot(id);
      if (slot != kNoSlot) slots_[slot].player->abort();
    }
  }

 private:
  struct Slot {
    VideoPlayer* player = nullptr;
    bool arena = false;  ///< slab storage (placement-new) vs heap (delete)
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Players per slab. Big enough to amortize the allocation, small enough
  /// that short experiments don't overshoot wildly.
  static constexpr std::size_t kSlabPlayers = 64;

  /// Register a constructed player under a recycled slot, wire the bus, and
  /// start it. Event order matches the historical spawn(): bus attach,
  /// SessionStartedEvent, then start().
  SessionId adopt(VideoPlayer* player, bool arena) {
    SessionId id = player->session();
    std::uint32_t slot;
    if (!free_list_.empty()) {
      slot = free_list_.back();
      free_list_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].player = player;
    slots_[slot].arena = arena;
    map_slot(id, slot);
    ++active_;
    if (bus_ != nullptr) {
      player->set_event_bus(bus_);
      bus_->publish(sim::SessionStartedEvent{sched_.now(), id});
    }
    player->start();
    return id;
  }

  void* acquire_storage() {
    if (!free_storage_.empty()) {
      void* storage = free_storage_.back();
      free_storage_.pop_back();
      return storage;
    }
    if (slab_used_ == kSlabPlayers) {
      slabs_.push_back(
          std::make_unique<std::byte[]>(kSlabPlayers * sizeof(VideoPlayer)));
      slab_used_ = 0;
    }
    return slabs_.back().get() + (slab_used_++) * sizeof(VideoPlayer);
  }

  void destroy(Slot& slot) {
    if (slot.player == nullptr) return;
    if (slot.arena) {
      slot.player->~VideoPlayer();
      free_storage_.push_back(static_cast<void*>(slot.player));
    } else {
      delete slot.player;
    }
    slot.player = nullptr;
  }

  /// id -> slot through a dense vector indexed by id value (session ids are
  /// assigned sequentially by scenarios; sparse ids just leave holes).
  void map_slot(SessionId id, std::uint32_t slot) {
    auto index = static_cast<std::size_t>(id.value());
    if (index >= slot_of_.size()) slot_of_.resize(index + 1, kNoSlot);
    slot_of_[index] = slot;
  }

  [[nodiscard]] std::uint32_t find_slot(SessionId id) const {
    auto index = static_cast<std::size_t>(id.value());
    return index < slot_of_.size() ? slot_of_[index] : kNoSlot;
  }

  void on_session_done(const telemetry::SessionRecord& record) {
    finished_.push_back(record);
    SessionId id = record.session;
    SessionSummary summary;
    summary.record = record;
    std::uint32_t slot = find_slot(id);
    if (slot != kNoSlot) {
      const VideoPlayer& done = *slots_[slot].player;
      summary.stalls = done.stall_count();
      summary.cdn_switches = done.cdn_switches();
      summary.server_switches = done.server_switches();
    }
    summaries_.push_back(summary);
    if (bus_ != nullptr)
      bus_->publish(sim::SessionFinishedEvent{
          sched_.now(), id, summary.stalls, summary.cdn_switches});
    // Deferred destruction: the player is still on the call stack. One
    // zero-delay sweep drains however many sessions finished at this
    // instant (an abort_all burst costs one event, not one per session).
    // Gated on the pool's lifetime so the post never outlives the pool.
    pending_erase_.push_back(id);
    if (!erase_sweep_scheduled_) {
      erase_sweep_scheduled_ = true;
      sched_.post_after(0.0, gate_, [this] { erase_pending(); });
    }
  }

  void erase_pending() {
    erase_sweep_scheduled_ = false;
    std::vector<SessionId> ids;
    ids.swap(pending_erase_);
    for (SessionId id : ids) {
      std::uint32_t slot = find_slot(id);
      if (slot == kNoSlot) continue;
      destroy(slots_[slot]);
      slot_of_[static_cast<std::size_t>(id.value())] = kNoSlot;
      free_list_.push_back(slot);
      --active_;
    }
  }

  sim::Scheduler& sched_;
  net::Network* network_;
  sim::EventBus* bus_ = nullptr;
  sim::Gate gate_;  ///< revokes the deferred erase sweep if the pool dies

  std::vector<Slot> slots_;              ///< dense player table
  std::vector<std::uint32_t> free_list_;  ///< recyclable slot indices
  std::vector<std::uint32_t> slot_of_;   ///< id value -> slot (kNoSlot = gone)
  std::size_t active_ = 0;

  // Slab arena for spawn_player storage.
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t slab_used_ = kSlabPlayers;  ///< forces a slab on first use
  std::vector<void*> free_storage_;       ///< recycled player-sized blocks

  std::vector<SessionId> pending_erase_;
  bool erase_sweep_scheduled_ = false;

  std::vector<telemetry::SessionRecord> finished_;
  std::vector<SessionSummary> summaries_;
};

}  // namespace eona::app
