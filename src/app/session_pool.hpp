// Ownership and lifecycle for dynamically spawned video sessions.
//
// Players finish asynchronously (their DoneCallback fires from inside their
// own event handlers), so destruction must be deferred: the pool collects
// the final record, then erases the player on a zero-delay follow-up event.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "app/video_player.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::app {

/// Final per-session outcome, including the counters that live on the
/// player (collected before the player is destroyed).
struct SessionSummary {
  telemetry::SessionRecord record;
  std::uint64_t stalls = 0;
  std::uint64_t cdn_switches = 0;
  std::uint64_t server_switches = 0;
};

/// Owns active VideoPlayers; collects final session records.
class SessionPool {
 public:
  /// `make` receives the done-callback the player must invoke and returns
  /// the constructed player.
  using Factory = std::function<std::unique_ptr<VideoPlayer>(
      VideoPlayer::DoneCallback)>;

  /// When `network` is given, bulk operations (abort_all) coalesce their
  /// flow removals into a single Network batch: one rate recompute instead
  /// of one per aborted session.
  explicit SessionPool(sim::Scheduler& sched, net::Network* network = nullptr)
      : sched_(sched), network_(network), gate_(sched.open_gate()) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  ~SessionPool() { sched_.close_gate(gate_); }

  /// Emit session lifecycle events (start/stall/finish) on `bus`; spawned
  /// players inherit it for stall events.
  void set_event_bus(sim::EventBus* bus) { bus_ = bus; }

  /// Create, register, and start a player.
  SessionId spawn(const Factory& make) {
    auto player = make([this](const telemetry::SessionRecord& record) {
      on_session_done(record);
    });
    EONA_EXPECTS(player != nullptr);
    SessionId id = player->session();
    VideoPlayer& ref = *player;
    players_.emplace(id, std::move(player));
    if (bus_ != nullptr) {
      ref.set_event_bus(bus_);
      bus_->publish(sim::SessionStartedEvent{sched_.now(), id});
    }
    ref.start();
    return id;
  }

  [[nodiscard]] std::size_t active_count() const { return players_.size(); }

  /// Active players currently in a buffering stall.
  [[nodiscard]] std::size_t stalled_count() const {
    std::size_t n = 0;
    for (const auto& [id, player] : players_)
      if (player->stalled()) ++n;
    return n;
  }

  /// Active players stranded by a data-plane fetch abort and not yet
  /// resumed on a live path (see VideoPlayer::stranded()).
  [[nodiscard]] std::size_t stranded_count() const {
    std::size_t n = 0;
    for (const auto& [id, player] : players_)
      if (player->stranded()) ++n;
    return n;
  }
  [[nodiscard]] const std::vector<telemetry::SessionRecord>& finished()
      const {
    return finished_;
  }
  [[nodiscard]] const std::vector<SessionSummary>& summaries() const {
    return summaries_;
  }

  [[nodiscard]] bool contains(SessionId id) const {
    return players_.count(id) > 0;
  }

  [[nodiscard]] VideoPlayer& player(SessionId id) {
    auto it = players_.find(id);
    if (it == players_.end())
      throw NotFoundError("session " + std::to_string(id.value()));
    return *it->second;
  }

  /// Iterate active players (e.g. the AppP controller pushing guidance).
  void for_each(const std::function<void(VideoPlayer&)>& fn) {
    for (auto& [id, player] : players_) fn(*player);
  }

  /// Abort every active session (end of experiment); final beacons fire.
  /// With an attached network, the burst of transfer cancellations lands as
  /// one batched recompute.
  void abort_all() {
    std::optional<net::Network::Batch> batch;
    if (network_ != nullptr) batch.emplace(*network_);
    // Collect ids first: abort() triggers on_session_done -> deferred erase.
    std::vector<SessionId> ids;
    ids.reserve(players_.size());
    for (auto& [id, player] : players_) ids.push_back(id);
    for (SessionId id : ids) {
      auto it = players_.find(id);
      if (it != players_.end()) it->second->abort();
    }
  }

 private:
  void on_session_done(const telemetry::SessionRecord& record) {
    finished_.push_back(record);
    SessionId id = record.session;
    SessionSummary summary;
    summary.record = record;
    auto it = players_.find(id);
    if (it != players_.end()) {
      summary.stalls = it->second->stall_count();
      summary.cdn_switches = it->second->cdn_switches();
      summary.server_switches = it->second->server_switches();
    }
    summaries_.push_back(summary);
    if (bus_ != nullptr)
      bus_->publish(sim::SessionFinishedEvent{
          sched_.now(), id, summary.stalls, summary.cdn_switches});
    // Deferred destruction: the player is still on the call stack. Gated on
    // the pool's lifetime so a post never outlives the pool.
    sched_.post_after(0.0, gate_, [this, id] { players_.erase(id); });
  }

  sim::Scheduler& sched_;
  net::Network* network_;
  sim::EventBus* bus_ = nullptr;
  sim::Gate gate_;  ///< revokes deferred erases if the pool dies first
  std::unordered_map<SessionId, std::unique_ptr<VideoPlayer>> players_;
  std::vector<telemetry::SessionRecord> finished_;
  std::vector<SessionSummary> summaries_;
};

}  // namespace eona::app
