// HTTP adaptive video player over the fluid network.
//
// Mechanics live here (buffer dynamics, chunk pipeline, stall accounting,
// throughput estimation, beacons); *decisions* -- which CDN/server to use,
// which bitrate to request, when to switch -- are delegated to a PlayerBrain
// so the control module can plug in today's trial-and-error logic or the
// EONA-informed logic without touching the player.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "app/cdn.hpp"
#include "app/content_catalog.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/transfer.hpp"
#include "qoe/video_qoe.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/session_record.hpp"

namespace eona::app {

/// Player tunables; defaults are typical of production HLS/DASH players.
struct PlayerConfig {
  std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5), mbps(3),
                                    mbps(6)};  ///< ascending renditions
  Duration chunk_duration = 4.0;
  Duration startup_target = 8.0;  ///< join when buffered >= this
  Duration resume_target = 4.0;   ///< restart playback after a stall
  Duration max_buffer = 24.0;     ///< stop fetching above this
  Duration beacon_period = 10.0;  ///< mid-session QoE beacon cadence
  /// Reconnect cost paid on every endpoint switch (DNS + TCP + TLS to the
  /// new server) before the next chunk request leaves.
  Duration switch_delay = 0.3;
  /// Cooldown before the brain is consulted about switching again.
  Duration min_switch_interval = 8.0;
  /// Delay before re-requesting after the data plane aborted the in-flight
  /// chunk (dead path); models client-side connection-error retry pacing.
  Duration retry_backoff = 1.0;
};

/// Read-only player state handed to the brain at each decision point.
struct PlayerView {
  SessionId session;
  TimePoint now = 0.0;
  Duration buffer = 0.0;
  BitsPerSecond throughput_estimate = 0.0;  ///< EWMA; 0 before first chunk
  std::size_t bitrate_index = 0;
  CdnId cdn;
  ServerId server;
  std::uint64_t stall_count = 0;
  std::uint64_t stalls_since_switch = 0;
  bool stalled = false;
  bool joined = false;
  std::size_t chunks_fetched = 0;
  std::size_t chunks_total = 0;
  IspId isp;
  NodeId client_node;
  const std::vector<BitsPerSecond>* ladder = nullptr;
  Duration max_buffer = 0.0;  ///< the player's buffer ceiling
  /// True only for the choose_endpoint consult right after the data plane
  /// aborted a fetch on the current endpoint (hard failure, not QoE drift):
  /// hold/dwell logic should not pin the player to a dead endpoint.
  bool endpoint_failed = false;
};

/// Where the player is (or should be) fetching from.
struct Endpoint {
  CdnId cdn;
  ServerId server;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Decision interface. One brain instance may serve many players (it gets
/// the full view each call); implementations live in eona::control.
class PlayerBrain {
 public:
  virtual ~PlayerBrain() = default;

  /// Pick the starting endpoint (and again whenever the player asks to
  /// switch).
  virtual Endpoint choose_endpoint(const PlayerView& view) = 0;

  /// Should the player abandon its current endpoint before the next chunk?
  virtual bool should_switch_endpoint(const PlayerView& view) = 0;

  /// Index into the ladder for the next chunk.
  virtual std::size_t choose_bitrate(const PlayerView& view) = 0;

  /// The data plane aborted a fetch on view's endpoint (view.endpoint_failed
  /// is set). Default: ignore. Health-tracking brains record the failure so
  /// subsequent choose_endpoint calls back off from the endpoint.
  virtual void note_transfer_failure(const PlayerView& view) {
    (void)view;
  }

  /// A chunk landed on view's endpoint after a failure episode; the brain
  /// may forgive any failure hold-down it held for it. Default: ignore.
  virtual void note_transfer_success(const PlayerView& view) {
    (void)view;
  }
};

/// One adaptive video session. Create, then call start(); the player runs
/// itself on the scheduler and reports the final beacon through the
/// collector and the completion callback.
class VideoPlayer {
 public:
  using DoneCallback = std::function<void(const telemetry::SessionRecord&)>;

  VideoPlayer(sim::Scheduler& sched, net::TransferManager& transfers,
              net::Network& network, const net::Routing& routing,
              const CdnDirectory& cdns, PlayerBrain& brain,
              telemetry::BeaconCollector* collector, PlayerConfig config,
              SessionId session, telemetry::Dimensions dims, NodeId client,
              ContentItem content, qoe::EngagementModel engagement = {},
              DoneCallback on_done = nullptr);

  VideoPlayer(const VideoPlayer&) = delete;
  VideoPlayer& operator=(const VideoPlayer&) = delete;
  ~VideoPlayer();

  /// Begin the session (request the first chunk).
  void start();

  /// Emit lifecycle events (stalls) on `bus`; usually set by SessionPool.
  void set_event_bus(sim::EventBus* bus) { bus_ = bus; }

  /// Tear down mid-session: cancels transfers, emits a final beacon.
  void abort();

  [[nodiscard]] bool finished() const { return state_ == State::kDone; }
  [[nodiscard]] bool stalled() const { return state_ == State::kStalled; }
  /// True from a data-plane fetch abort until the next delivered chunk.
  [[nodiscard]] bool stranded() const { return stranded_; }
  [[nodiscard]] SessionId session() const { return session_; }
  [[nodiscard]] Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] std::size_t bitrate_index() const { return bitrate_index_; }
  [[nodiscard]] Duration buffer_level() const;
  [[nodiscard]] std::uint64_t stall_count() const { return stall_count_; }
  [[nodiscard]] std::uint64_t cdn_switches() const { return cdn_switches_; }
  [[nodiscard]] std::uint64_t server_switches() const {
    return server_switches_;
  }
  [[nodiscard]] BitsPerSecond throughput_estimate() const {
    return throughput_ewma_;
  }

  /// Current session metrics snapshot (what a beacon would carry now).
  [[nodiscard]] telemetry::SessionMetrics metrics_now() const;

 private:
  enum class State { kCreated, kStartup, kPlaying, kStalled, kDone };

  [[nodiscard]] PlayerView view() const;
  void request_next_chunk();
  void on_chunk_complete();
  /// The data plane aborted the in-flight fetch (e.g. "link-down").
  void on_fetch_failed(const char* reason);
  void on_buffer_underrun();
  void reschedule_underrun();
  void maybe_schedule_finish();
  void emit_beacon();
  void finish();
  /// Accrue buffer drain up to now.
  void sync_buffer();

  sim::Scheduler& sched_;
  net::TransferManager& transfers_;
  net::Network& network_;
  const net::Routing& routing_;
  const CdnDirectory& cdns_;
  PlayerBrain& brain_;
  telemetry::BeaconCollector* collector_;
  PlayerConfig config_;
  SessionId session_;
  telemetry::Dimensions dims_;
  NodeId client_;
  ContentItem content_;
  qoe::EngagementModel engagement_;
  DoneCallback on_done_;

  State state_ = State::kCreated;
  qoe::VideoQoeTracker qoe_;
  Endpoint endpoint_;
  std::size_t bitrate_index_ = 0;
  Duration buffer_ = 0.0;
  TimePoint buffer_synced_at_ = 0.0;
  BitsPerSecond throughput_ewma_ = 0.0;
  static constexpr double kEwmaAlpha = 0.4;

  std::size_t chunks_total_ = 0;
  std::size_t chunks_fetched_ = 0;
  std::optional<net::TransferId> inflight_;
  TimePoint fetch_started_ = 0.0;
  Bits inflight_bits_ = 0.0;

  bool stranded_ = false;
  TimePoint stranded_since_ = 0.0;

  std::uint64_t stall_count_ = 0;
  std::uint64_t stalls_since_switch_ = 0;
  TimePoint switch_block_until_ = 0.0;  ///< reconnect cooldown
  std::uint64_t cdn_switches_ = 0;
  std::uint64_t server_switches_ = 0;

  Bits reported_bits_ = 0.0;  ///< volume already beaconed (delta encoding)

  sim::EventBus* bus_ = nullptr;

  sim::EventHandle underrun_event_;
  sim::EventHandle fetch_resume_event_;
  sim::EventHandle finish_event_;
  std::unique_ptr<sim::PeriodicTask> beacon_task_;
};

}  // namespace eona::app
