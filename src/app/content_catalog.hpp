// Content catalog with Zipf popularity: what clients request. Video items
// carry a duration (the bitrate ladder decides actual bits); web items carry
// a page weight. Popularity rank 0 is the hottest item.
#pragma once

#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "sim/rng.hpp"

namespace eona::app {

enum class ContentKind { kVideo, kWebPage };

struct ContentItem {
  ContentId id;
  ContentKind kind = ContentKind::kVideo;
  Duration video_duration = 0.0;  ///< video length (kVideo)
  Bits page_bits = 0.0;           ///< payload size (kWebPage)
  std::string name;
};

/// Catalog of items ordered by popularity rank with a Zipf sampler.
class ContentCatalog {
 public:
  /// Builds `count` video items of `duration` seconds, Zipf(skew) popular.
  static ContentCatalog videos(std::size_t count, Duration duration,
                               double skew = 0.8) {
    EONA_EXPECTS(count > 0);
    EONA_EXPECTS(duration > 0.0);
    ContentCatalog catalog(count, skew);
    for (std::size_t i = 0; i < count; ++i) {
      ContentItem item;
      item.id = ContentId(static_cast<ContentId::rep_type>(i));
      item.kind = ContentKind::kVideo;
      item.video_duration = duration;
      item.name = "video-" + std::to_string(i);
      catalog.items_.push_back(std::move(item));
    }
    return catalog;
  }

  /// Builds `count` web pages of `page_bits` each, Zipf(skew) popular.
  static ContentCatalog pages(std::size_t count, Bits page_bits,
                              double skew = 0.8) {
    EONA_EXPECTS(count > 0);
    EONA_EXPECTS(page_bits > 0.0);
    ContentCatalog catalog(count, skew);
    for (std::size_t i = 0; i < count; ++i) {
      ContentItem item;
      item.id = ContentId(static_cast<ContentId::rep_type>(i));
      item.kind = ContentKind::kWebPage;
      item.page_bits = page_bits;
      item.name = "page-" + std::to_string(i);
      catalog.items_.push_back(std::move(item));
    }
    return catalog;
  }

  [[nodiscard]] const ContentItem& item(ContentId id) const {
    EONA_EXPECTS(id.valid() && id.value() < items_.size());
    return items_[id.value()];
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Draw a content id by popularity.
  [[nodiscard]] ContentId sample(sim::Rng& rng) const {
    return ContentId(
        static_cast<ContentId::rep_type>(sampler_.sample(rng)));
  }

  /// Popularity mass of a rank (analytic checks).
  [[nodiscard]] double popularity(ContentId id) const {
    return sampler_.probability(id.value());
  }

 private:
  ContentCatalog(std::size_t count, double skew) : sampler_(count, skew) {}

  std::vector<ContentItem> items_;
  sim::ZipfSampler sampler_;
};

}  // namespace eona::app
