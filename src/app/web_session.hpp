// Web page-load session over the fluid network (paper Figure 4 substrate).
//
// The payload transfer rides the network (so congestion shows up in PLT);
// handshake and request-round latencies are derived analytically from path
// delay. The outcome carries both the client-side truth (the beacon) and
// the network-level features an InfP could observe passively -- the two
// sides the Fig 4 experiment compares.
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/routing.hpp"
#include "net/transfer.hpp"
#include "qoe/web_qoe.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/session_record.hpp"

namespace eona::app {

/// What the InfP can see on the wire about a finished page load, plus the
/// client-measured record.
struct WebSessionOutcome {
  telemetry::SessionRecord record;  ///< client-side truth (A2I payload)
  // --- passively observable network features ---
  Duration rtt = 0.0;
  BitsPerSecond observed_throughput = 0.0;
  Bits bytes = 0.0;
  Duration flow_duration = 0.0;
};

struct WebSessionConfig {
  int objects = 12;
  Duration server_think = 0.05;
  /// Per-session radio-access latency on top of the wired path (cellular
  /// last-mile variability; drawn by the scenario per session).
  Duration extra_rtt = 0.0;
  qoe::WebEngagementModel engagement{};
};

/// One page load: start() kicks the payload transfer; the outcome callback
/// fires when the page completes.
class WebSession {
 public:
  using DoneCallback = std::function<void(const WebSessionOutcome&)>;

  WebSession(sim::Scheduler& sched, net::TransferManager& transfers,
             const net::Routing& routing, WebSessionConfig config,
             SessionId session, telemetry::Dimensions dims, NodeId client,
             NodeId server, Bits page_bits,
             telemetry::BeaconCollector* collector, DoneCallback on_done)
      : sched_(sched),
        transfers_(transfers),
        routing_(routing),
        config_(config),
        session_(session),
        dims_(dims),
        client_(client),
        server_(server),
        page_bits_(page_bits),
        collector_(collector),
        on_done_(std::move(on_done)) {
    EONA_EXPECTS(page_bits > 0.0);
  }

  WebSession(const WebSession&) = delete;
  WebSession& operator=(const WebSession&) = delete;

  ~WebSession() {
    if (inflight_ && transfers_.active(*inflight_)) transfers_.cancel(*inflight_);
  }

  void start() {
    EONA_EXPECTS(!started_);
    started_ = true;
    net::Path path = routing_.shortest_path(server_, client_);
    rtt_ = 2.0 * net::path_delay(routing_.topology(), path) + config_.extra_rtt;
    started_at_ = sched_.now();
    inflight_ = transfers_.start(path, page_bits_, [this](net::TransferId) {
      on_transfer_done();
    });
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] SessionId session() const { return session_; }

 private:
  void on_transfer_done() {
    inflight_.reset();
    finished_ = true;
    Duration transfer_time = sched_.now() - started_at_;

    qoe::PageLoadInputs inputs;
    inputs.rtt = rtt_;
    inputs.bandwidth = transfer_time > 0.0 ? page_bits_ / transfer_time
                                           : kbps(1);  // degenerate guard
    inputs.page_bits = page_bits_;
    inputs.objects = config_.objects;
    inputs.server_think = config_.server_think;
    qoe::PageLoadResult result =
        qoe::evaluate_page_load(inputs, config_.engagement);

    WebSessionOutcome outcome;
    outcome.record.session = session_;
    outcome.record.dims = dims_;
    outcome.record.metrics = qoe::to_session_metrics(inputs, result);
    outcome.record.timestamp = sched_.now();
    outcome.rtt = rtt_;
    outcome.observed_throughput = inputs.bandwidth;
    outcome.bytes = page_bits_;
    outcome.flow_duration = transfer_time;

    if (collector_) collector_->report(outcome.record);
    if (on_done_) on_done_(outcome);
  }

  sim::Scheduler& sched_;
  net::TransferManager& transfers_;
  const net::Routing& routing_;
  WebSessionConfig config_;
  SessionId session_;
  telemetry::Dimensions dims_;
  NodeId client_;
  NodeId server_;
  Bits page_bits_;
  telemetry::BeaconCollector* collector_;
  DoneCallback on_done_;

  bool started_ = false;
  bool finished_ = false;
  TimePoint started_at_ = 0.0;
  Duration rtt_ = 0.0;
  std::optional<net::TransferId> inflight_;
};

}  // namespace eona::app
