// CDN model: server clusters with egress capacity (their access link into
// the topology), per-server LRU content caches, and an origin for misses.
//
// A cache hit serves content straight from the server; a miss pulls the
// content through the origin (the fluid flow traverses origin -> server ->
// client), so misses are naturally slower and load the origin links -- the
// cache-locality effect behind the paper's "coarse control" scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/network.hpp"
#include "net/peering.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "app/lru_cache.hpp"
#include "sim/rng.hpp"

namespace eona::app {

/// One server cluster inside a CDN.
struct CdnServer {
  ServerId id;
  NodeId node;
  LinkId egress;  ///< access link server -> edge; its capacity is the
                       ///< server's serving capacity
  bool online = true;
  LruCache<ContentId> cache;

  CdnServer(ServerId id_, NodeId node_, LinkId egress_,
            std::size_t cache_capacity)
      : id(id_), node(node_), egress(egress_), cache(cache_capacity) {}
};

/// How a chunk/page fetch will be carried by the network.
struct FetchPlan {
  net::Path path;
  bool cache_hit = false;
  ServerId server;
};

/// A CDN: servers + origin + cache bookkeeping. Server selection policy is
/// parameterised (least-loaded is the house default); the AppP's brain may
/// override the choice entirely when EONA-I2A supplies server hints.
class Cdn {
 public:
  Cdn(CdnId id, std::string name, NodeId origin_node)
      : id_(id), name_(std::move(name)), origin_(origin_node) {}

  [[nodiscard]] CdnId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NodeId origin_node() const { return origin_; }

  /// When set, delivery paths into an ISP honour the ISP's currently
  /// selected peering point for this CDN (the InfP's routing knob).
  void set_peering_book(const net::PeeringBook* book) { book_ = book; }

  ServerId add_server(NodeId node, LinkId egress,
                      std::size_t cache_capacity) {
    ServerId sid(static_cast<ServerId::rep_type>(servers_.size()));
    servers_.emplace_back(sid, node, egress, cache_capacity);
    return sid;
  }

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }

  [[nodiscard]] const CdnServer& server(ServerId id) const {
    if (!id.valid() || id.value() >= servers_.size())
      throw NotFoundError("server " + std::to_string(id.value()) + " in cdn " +
                          name_);
    return servers_[id.value()];
  }

  /// Take a server in or out of rotation (energy management knob). Offline
  /// servers receive no new selections; existing sessions keep flowing until
  /// the application moves them.
  void set_online(ServerId id, bool online) { mutable_server(id).online = online; }

  [[nodiscard]] std::size_t online_count() const {
    std::size_t n = 0;
    for (const auto& s : servers_)
      if (s.online) ++n;
    return n;
  }

  /// Current load of a server: concurrent flows on its egress link.
  [[nodiscard]] int server_load(ServerId id, const net::Network& net) const {
    return net.link_flow_count(server(id).egress);
  }

  /// Least-loaded online server (ties broken by lowest id, deterministic).
  /// Throws NotFoundError when every server is offline.
  [[nodiscard]] ServerId pick_server(const net::Network& net) const {
    ServerId best;
    int best_load = 0;
    for (const auto& s : servers_) {
      if (!s.online) continue;
      int load = net.link_flow_count(s.egress);
      if (!best.valid() || load < best_load) {
        best = s.id;
        best_load = load;
      }
    }
    if (!best.valid()) throw NotFoundError("no online server in cdn " + name_);
    return best;
  }

  /// Plan fetching `content` from `server` to `client` in `client_isp`. On
  /// a miss the path detours through the origin and (by default) the content
  /// is inserted into the server's cache. When a peering book is attached
  /// and the (ISP, CDN) pair has peering points, the path into the ISP
  /// crosses the ISP's *selected* peering link.
  FetchPlan plan_fetch(ContentId content, ServerId server_id, NodeId client,
                       IspId client_isp, const net::Routing& routing,
                       bool fill_cache = true) {
    CdnServer& srv = mutable_server(server_id);
    FetchPlan plan;
    plan.server = server_id;
    plan.cache_hit = srv.cache.touch(content);
    net::Path tail = delivery_path(srv.node, client, client_isp, routing);
    if (plan.cache_hit) {
      ++hits_;
      plan.path = std::move(tail);
    } else {
      ++misses_;
      plan.path = routing.shortest_path(origin_, srv.node);
      plan.path.insert(plan.path.end(), tail.begin(), tail.end());
      if (fill_cache) srv.cache.insert(content);
    }
    return plan;
  }

  /// Path server -> client honouring the ISP's peering selection if known.
  [[nodiscard]] net::Path delivery_path(NodeId server_node, NodeId client,
                                        IspId client_isp,
                                        const net::Routing& routing) const {
    if (book_ && client_isp.valid() &&
        !book_->points_between(client_isp, id_).empty()) {
      PeeringId selected = book_->selected(client_isp, id_);
      return routing.path_via_link(server_node,
                                   book_->point(selected).ingress_link, client);
    }
    return routing.shortest_path(server_node, client);
  }

  /// Pre-populate a server's cache (warm start for scenarios).
  void warm_cache(ServerId server_id, const std::vector<ContentId>& contents) {
    CdnServer& srv = mutable_server(server_id);
    for (ContentId c : contents) srv.cache.insert(c);
  }

  /// Drop a server's cache (it was powered off; RAM cache is gone).
  void clear_cache(ServerId server_id) {
    mutable_server(server_id).cache.clear();
  }

  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }
  [[nodiscard]] double hit_ratio() const {
    std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  [[nodiscard]] const std::vector<CdnServer>& servers() const {
    return servers_;
  }

 private:
  CdnServer& mutable_server(ServerId id) {
    if (!id.valid() || id.value() >= servers_.size())
      throw NotFoundError("server " + std::to_string(id.value()) + " in cdn " +
                          name_);
    return servers_[id.value()];
  }

  CdnId id_;
  std::string name_;
  NodeId origin_;
  const net::PeeringBook* book_ = nullptr;
  std::vector<CdnServer> servers_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Lookup of all CDNs an AppP can use, keyed by CdnId.
class CdnDirectory {
 public:
  void add(Cdn* cdn) {
    EONA_EXPECTS(cdn != nullptr);
    cdns_.push_back(cdn);
  }

  [[nodiscard]] Cdn& at(CdnId id) const {
    for (Cdn* cdn : cdns_)
      if (cdn->id() == id) return *cdn;
    throw NotFoundError("cdn " + std::to_string(id.value()));
  }

  [[nodiscard]] const std::vector<Cdn*>& all() const { return cdns_; }
  [[nodiscard]] std::size_t size() const { return cdns_.size(); }

 private:
  std::vector<Cdn*> cdns_;
};

}  // namespace eona::app
