// Fixed-capacity LRU set used for CDN server content caches. O(1) touch,
// insert, and lookup via list + hash-map iterators.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>

#include "common/contracts.hpp"

namespace eona::app {

/// LRU set of keys: membership + recency, no values.
template <typename Key>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    EONA_EXPECTS(capacity > 0);
  }

  /// Is the key cached? Does not affect recency.
  [[nodiscard]] bool contains(const Key& key) const {
    return index_.count(key) > 0;
  }

  /// Mark key as most-recently-used if present; returns whether it was.
  bool touch(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  /// Insert (or refresh) a key, evicting the LRU entry when full.
  /// Returns true if the key was newly inserted.
  bool insert(const Key& key) {
    if (touch(key)) return false;
    if (order_.size() >= capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(key);
    index_[key] = order_.begin();
    return true;
  }

  /// Remove a key if present; returns whether it was.
  bool erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<Key> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<Key>::iterator> index_;
};

}  // namespace eona::app
