// Oscillation detection over discrete decision traces. The Fig 5 experiment
// records each controller's decision (peering point id, CDN id) over time
// and asks: did the pair of loops settle, or cycle forever?
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace eona::control {

/// Append-only trace of one discrete decision variable.
class DecisionTrace {
 public:
  /// Record the decision in effect from `t` (only appends when it differs
  /// from the last recorded value).
  void record(TimePoint t, int value) {
    EONA_EXPECTS(entries_.empty() || t >= entries_.back().t);
    if (!entries_.empty() && entries_.back().value == value) return;
    entries_.push_back(Entry{t, value});
  }

  /// Total number of decision changes (transitions).
  [[nodiscard]] std::size_t change_count() const {
    return entries_.empty() ? 0 : entries_.size() - 1;
  }

  /// Changes occurring at or after `t` -- "did it keep flapping late in the
  /// run, or converge?"
  [[nodiscard]] std::size_t changes_after(TimePoint t) const {
    std::size_t n = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i)
      if (entries_[i].t >= t) ++n;
    return n;
  }

  /// Changes within [from, to) -- measurement windows that exclude e.g. the
  /// end-of-experiment traffic drain.
  [[nodiscard]] std::size_t changes_between(TimePoint from, TimePoint to) const {
    std::size_t n = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i)
      if (entries_[i].t >= from && entries_[i].t < to) ++n;
    return n;
  }

  /// Decision in effect at time t (last entry at or before t).
  /// Precondition: at least one entry recorded at or before t.
  [[nodiscard]] int value_at(TimePoint t) const {
    EONA_EXPECTS(!entries_.empty() && entries_.front().t <= t);
    int value = entries_.front().value;
    for (const Entry& e : entries_) {
      if (e.t > t) break;
      value = e.value;
    }
    return value;
  }

  /// Time of the last change; 0 when never changed.
  [[nodiscard]] TimePoint settled_at() const {
    return entries_.size() <= 1 ? 0.0 : entries_.back().t;
  }

  /// Number of A->B->A reversals: the signature of a control loop fighting
  /// itself (or another loop).
  [[nodiscard]] std::size_t reversal_count() const {
    std::size_t n = 0;
    for (std::size_t i = 2; i < entries_.size(); ++i)
      if (entries_[i].value == entries_[i - 2].value &&
          entries_[i].value != entries_[i - 1].value)
        ++n;
    return n;
  }

  [[nodiscard]] int last_value() const {
    EONA_EXPECTS(!entries_.empty());
    return entries_.back().value;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    TimePoint t;
    int value;
  };
  std::vector<Entry> entries_;
};

/// Joint-state cycle detector: feed it the combined (AppP decision, InfP
/// decision) state at each control epoch; it reports whether the joint
/// trajectory entered a repeating cycle of period >= 2 rather than a fixed
/// point.
class CycleDetector {
 public:
  void observe(int joint_state) { states_.push_back(joint_state); }

  /// True when the tail of the trajectory repeats with some period in
  /// [2, max_period] for at least `repetitions` full periods.
  [[nodiscard]] bool cycling(std::size_t max_period = 8,
                             std::size_t repetitions = 2) const {
    EONA_EXPECTS(repetitions >= 1);
    for (std::size_t period = 2; period <= max_period; ++period) {
      std::size_t needed = period * (repetitions + 1);
      if (states_.size() < needed) continue;
      bool match = true;
      // The last `needed` states must be periodic with this period, and the
      // cycle must not be constant (that's convergence, not oscillation).
      bool varies = false;
      for (std::size_t i = states_.size() - needed;
           i + period < states_.size(); ++i) {
        if (states_[i] != states_[i + period]) {
          match = false;
          break;
        }
        if (states_[i] != states_[states_.size() - 1]) varies = true;
      }
      if (match && varies) return true;
    }
    return false;
  }

  /// True when the last `window` observations are all identical.
  [[nodiscard]] bool converged(std::size_t window = 5) const {
    if (states_.size() < window) return false;
    for (std::size_t i = states_.size() - window; i < states_.size(); ++i)
      if (states_[i] != states_.back()) return false;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return states_.size(); }

 private:
  std::vector<int> states_;
};

}  // namespace eona::control
