// Server energy management (paper §2 "impacts of configuration changes" and
// §5 InfP control logic): an infrastructure operator powers server clusters
// down off-peak. Without application visibility it steers by load alone --
// and is either too conservative (wasted energy) or too aggressive (QoE
// collapse). With A2I it adds a QoE guardrail: scale down only while client
// experience is healthy, wake servers immediately when it degrades.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/cdn.hpp"
#include "eona/endpoint.hpp"
#include "eona/messages.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/timeseries.hpp"

namespace eona::control {

struct EnergyConfig {
  Duration control_period = 60.0;
  double scale_down_load = 0.40;  ///< mean online-server load below: -1 server
  double scale_up_load = 0.80;    ///< above: +1 server
  std::size_t min_online = 1;
  // --- EONA guardrail ---
  double qoe_buffering_limit = 0.05;  ///< A2I mean buffering above: wake + hold
  /// A2I mean engagement below this wakes a server and pauses shedding;
  /// shedding requires engagement at least `floor + headroom`. Engagement is
  /// the composite experience measure, so bitrate collapse (which adaptive
  /// players suffer *instead of* buffering) is caught too.
  double qoe_engagement_floor = 0.90;
  double qoe_engagement_headroom = 0.02;
};

/// Energy controller for one CDN's server fleet.
class EnergyManager {
 public:
  EnergyManager(sim::Scheduler& sched, net::Network& network, app::Cdn& cdn,
                ProviderId self, EnergyConfig config = {});

  EnergyManager(const EnergyManager&) = delete;
  EnergyManager& operator=(const EnergyManager&) = delete;
  ~EnergyManager();

  void subscribe_a2i(core::A2IEndpoint* endpoint, std::string token);
  void set_eona_enabled(bool enabled) { eona_enabled_ = enabled; }
  [[nodiscard]] bool eona_enabled() const { return eona_enabled_; }

  void start();
  void stop();
  void tick();

  /// Mean egress utilisation across currently online servers.
  [[nodiscard]] double mean_online_load() const;

  /// Mean A2I-reported buffering ratio for this CDN; nullopt without data.
  [[nodiscard]] std::optional<double> reported_buffering() const;

  /// Session-weighted mean A2I engagement for this CDN; nullopt without data.
  [[nodiscard]] std::optional<double> reported_engagement() const;

  /// Time series of the online-server count (energy = its time integral).
  [[nodiscard]] const sim::TimeSeries& online_series() const {
    return online_series_;
  }

  /// Server-seconds of energy saved vs all-on, up to `now`.
  [[nodiscard]] double server_seconds_saved(TimePoint now) const;

  [[nodiscard]] std::uint64_t shutdowns() const { return shutdowns_; }
  [[nodiscard]] std::uint64_t wakes() const { return wakes_; }
  [[nodiscard]] ProviderId id() const { return self_; }

 private:
  void refresh_a2i();
  void shut_down_one();
  void wake_one();
  void record_online();

  sim::Scheduler& sched_;
  net::Network& network_;
  app::Cdn& cdn_;
  ProviderId self_;
  EnergyConfig config_;

  struct A2ISubscription {
    core::A2IEndpoint* endpoint;
    std::string token;
  };
  std::vector<A2ISubscription> subscriptions_;
  std::optional<core::A2IReport> latest_a2i_;
  bool eona_enabled_ = false;

  /// Original egress capacity per server (restored on wake).
  std::vector<BitsPerSecond> saved_capacity_;
  sim::TimeSeries online_series_;
  std::uint64_t shutdowns_ = 0;
  std::uint64_t wakes_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace eona::control
