// Windowed link statistics for controllers.
//
// With elastic (TCP-like) transfers, instantaneous utilisation of a busy
// link flips between 0 and 1; what a real ISP measures -- and what control
// decisions need -- is utilisation averaged over a window, plus how often
// flows on the link were demand-starved. The monitor samples chosen links
// on a fixed cadence into per-link rings.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "net/network.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::control {

/// Samples a set of links periodically; answers windowed queries.
class LinkMonitor {
 public:
  LinkMonitor(sim::Scheduler& sched, const net::Network& network,
              std::vector<LinkId> links, Duration sample_period = 1.0,
              std::size_t window_samples = 30)
      : sched_(sched), network_(network), window_(window_samples) {
    EONA_EXPECTS(sample_period > 0.0);
    EONA_EXPECTS(window_samples >= 2);
    for (LinkId lid : links)
      rings_.emplace(lid, Ring{});
    task_ = std::make_unique<sim::PeriodicTask>(
        sched, sample_period, [this] { sample(); }, /*start_offset=*/0.0,
        /*fire_immediately=*/true);
  }

  LinkMonitor(const LinkMonitor&) = delete;
  LinkMonitor& operator=(const LinkMonitor&) = delete;

  /// Mean utilisation over the trailing window; 0 before the first sample.
  [[nodiscard]] double mean_utilization(LinkId link) const {
    const Ring& ring = require(link);
    if (ring.samples.empty()) return 0.0;
    double total = 0.0;
    for (const auto& s : ring.samples) total += s.utilization;
    return total / static_cast<double>(ring.samples.size());
  }

  /// Fraction of window samples where the link was saturated AND some flow
  /// on it wanted more -- the fluid-model analogue of sustained queueing.
  [[nodiscard]] double starved_fraction(LinkId link) const {
    const Ring& ring = require(link);
    if (ring.samples.empty()) return 0.0;
    std::size_t starved = 0;
    for (const auto& s : ring.samples)
      if (s.starved) ++starved;
    return static_cast<double>(starved) /
           static_cast<double>(ring.samples.size());
  }

  /// Mean number of concurrent flows on the link over the window.
  [[nodiscard]] double mean_flows(LinkId link) const {
    const Ring& ring = require(link);
    if (ring.samples.empty()) return 0.0;
    double total = 0.0;
    for (const auto& s : ring.samples) total += s.flows;
    return total / static_cast<double>(ring.samples.size());
  }

  /// Sustained congestion: high windowed utilisation with real starvation.
  [[nodiscard]] bool congested(LinkId link, double utilization_threshold,
                               double starved_threshold = 0.3) const {
    return mean_utilization(link) >= utilization_threshold &&
           starved_fraction(link) >= starved_threshold;
  }

  [[nodiscard]] bool tracks(LinkId link) const {
    return rings_.count(link) > 0;
  }

  /// Add a link to the tracked set (starts empty).
  void track(LinkId link) { rings_.emplace(link, Ring{}); }

  /// Drop a link's window (no-op when untracked). Called on link up/down
  /// transitions so post-outage queries never blend samples from before the
  /// event -- a ring that straddles an outage reports stale utilisation.
  void clear(LinkId link) {
    auto it = rings_.find(link);
    if (it == rings_.end()) return;
    it->second.samples.clear();
    it->second.next = 0;
  }

  /// Number of samples currently held for a link (tests / diagnostics).
  [[nodiscard]] std::size_t window_fill(LinkId link) const {
    return require(link).samples.size();
  }

  [[nodiscard]] std::uint64_t sample_count() const { return samples_taken_; }

  /// Attach a bus: every subsequent sample round publishes one
  /// LinkSampleEvent per tracked link (ascending link id, so traces and the
  /// telemetry store see a deterministic order). nullptr detaches.
  void set_event_bus(sim::EventBus* bus) { bus_ = bus; }

 private:
  struct Sample {
    double utilization = 0.0;
    bool starved = false;
    int flows = 0;
  };
  struct Ring {
    std::vector<Sample> samples;  // bounded by window_
    std::size_t next = 0;
  };

  const Ring& require(LinkId link) const {
    auto it = rings_.find(link);
    if (it == rings_.end())
      throw NotFoundError("link " + std::to_string(link.value()) +
                          " not monitored");
    return it->second;
  }

  void sample() {
    ++samples_taken_;
    for (auto& [lid, ring] : rings_) {
      Sample s;
      s.utilization = network_.link_utilization(lid);
      s.starved = network_.link_congested(lid, 0.98);
      s.flows = network_.link_flow_count(lid);
      if (ring.samples.size() < window_) {
        ring.samples.push_back(s);
      } else {
        ring.samples[ring.next] = s;
        ring.next = (ring.next + 1) % window_;
      }
    }
    if (bus_ == nullptr) return;
    scratch_.clear();
    for (const auto& [lid, ring] : rings_) scratch_.push_back(lid);
    std::sort(scratch_.begin(), scratch_.end());
    const TimePoint now = sched_.now();
    for (LinkId lid : scratch_) {
      const double util = network_.link_utilization(lid);
      const BitsPerSecond cap = network_.link_capacity(lid);
      bus_->publish(sim::LinkSampleEvent{now, lid, util, util * cap, cap});
    }
  }

  sim::Scheduler& sched_;
  const net::Network& network_;
  std::size_t window_;
  std::unordered_map<LinkId, Ring> rings_;
  std::uint64_t samples_taken_ = 0;
  sim::EventBus* bus_ = nullptr;
  std::vector<LinkId> scratch_;  ///< sorted link ids for publish order
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace eona::control
