// What-if engine: the §5 "search space exploration" open challenge.
//
// "Both AppPs and InfPs are deploying new capabilities that give them more
// control knobs. With more knobs, however, the search space of options
// grows combinatorially. A natural question is if and how EONA interfaces
// can simplify this exploration process."
//
// This module makes the question concrete. A *plan* fixes the joint knobs
// for a session population: which CDN/server each group uses, a bitrate
// cap, and the ISP's egress point per CDN. The engine predicts the plan's
// quality by solving the max-min allocation the plan would induce (no
// simulation: one fluid solve per candidate). A searcher enumerates
// candidate plans; EONA information prunes the enumeration:
//   * A2I traffic intent fixes the demand vector (no per-demand sweep);
//   * I2A congestion attribution removes knobs that cannot help (don't
//     enumerate CDN moves when the access segment is the bottleneck);
//   * I2A server hints drop unhealthy servers from the candidate set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "eona/messages.hpp"
#include "net/fairshare.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "qoe/video_qoe.hpp"

namespace eona::control {

/// One group of identical sessions the planner places as a unit.
struct SessionGroup {
  std::string name;
  std::size_t sessions = 0;
  IspId isp;
  NodeId client;
  BitsPerSecond intended_bitrate = 0.0;  ///< demand per session at full quality
};

/// A candidate endpoint for a group (one CDN server and the path quality
/// metadata the planner needs).
struct EndpointOption {
  CdnId cdn;
  ServerId server;
  net::Path path;  ///< server -> client under a given egress selection
};

/// The joint decision being scored: per group, an endpoint option index and
/// a bitrate cap (as an index into the ladder).
struct Plan {
  std::vector<std::size_t> endpoint;  ///< per group: index into its options
  std::vector<std::size_t> bitrate;   ///< per group: index into the ladder
};

/// Prediction for one plan.
struct PlanScore {
  double mean_engagement = 0.0;   ///< across sessions, demand-weighted
  double satisfied_fraction = 0;  ///< sessions whose cap is fully served
  BitsPerSecond total_rate = 0.0;
};

/// The planning problem: groups, their endpoint options, and the ladder.
struct Problem {
  std::vector<SessionGroup> groups;
  std::vector<std::vector<EndpointOption>> options;  ///< per group
  std::vector<BitsPerSecond> ladder;                 ///< ascending

  [[nodiscard]] std::size_t plan_count() const {
    std::size_t count = 1;
    for (const auto& opts : options) count *= opts.size() * ladder.size();
    return count;
  }
};

/// Scores plans against the fluid model.
class WhatIfEngine {
 public:
  WhatIfEngine(const net::Topology& topo, qoe::EngagementModel model = {})
      : topo_(&topo), model_(model) {}

  /// Predict a plan's outcome: one max-min solve over the induced flows.
  [[nodiscard]] PlanScore score(const Problem& problem, const Plan& plan) const;

  /// Exhaustive search; returns the best plan and the number of plans
  /// evaluated. Deterministic tie-breaking (first best wins).
  struct SearchResult {
    Plan best;
    PlanScore best_score;
    std::size_t evaluated = 0;
  };
  [[nodiscard]] SearchResult search(const Problem& problem) const;

  /// EONA-pruned search: uses an I2A report to shrink the space before the
  /// same exhaustive sweep. Returns the pruned problem's result plus how
  /// many candidates pruning removed.
  struct PrunedResult {
    SearchResult result;
    std::size_t plans_before = 0;
    std::size_t plans_after = 0;
  };
  [[nodiscard]] PrunedResult search_pruned(const Problem& problem,
                                           const core::I2AReport& i2a) const;

 private:
  const net::Topology* topo_;
  qoe::EngagementModel model_;
};

/// Builds the pruned problem (exposed for testing): drops endpoint options
/// through hinted-unhealthy servers, and under access-scope congestion
/// collapses each group's endpoint choice to its current/first option
/// (moving cannot help; only the bitrate knob remains).
[[nodiscard]] Problem prune_problem(const Problem& problem,
                                    const core::I2AReport& i2a);

}  // namespace eona::control
