#include "control/whatif.hpp"

#include <algorithm>

namespace eona::control {

PlanScore WhatIfEngine::score(const Problem& problem, const Plan& plan) const {
  EONA_EXPECTS(plan.endpoint.size() == problem.groups.size());
  EONA_EXPECTS(plan.bitrate.size() == problem.groups.size());
  EONA_EXPECTS(!problem.ladder.empty());

  // Build one demand-capped flow per group (sessions * capped bitrate). The
  // fluid model treats a group as one aggregate flow; the max-min share it
  // receives divides evenly among its sessions.
  std::vector<net::FlowSpec> flows;
  flows.reserve(problem.groups.size());
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    EONA_EXPECTS(plan.endpoint[g] < problem.options[g].size());
    EONA_EXPECTS(plan.bitrate[g] < problem.ladder.size());
    const SessionGroup& group = problem.groups[g];
    BitsPerSecond cap = std::min(problem.ladder[plan.bitrate[g]],
                                 group.intended_bitrate);
    flows.push_back(net::FlowSpec{
        problem.options[g][plan.endpoint[g]].path,
        cap * static_cast<double>(group.sessions)});
  }

  std::vector<BitsPerSecond> rates = net::max_min_allocation(*topo_, flows);

  PlanScore result;
  double weighted_engagement = 0.0;
  double total_sessions = 0.0;
  double satisfied = 0.0;
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const SessionGroup& group = problem.groups[g];
    if (group.sessions == 0) continue;
    double n = static_cast<double>(group.sessions);
    BitsPerSecond per_session = rates[g] / n;
    BitsPerSecond cap = std::min(problem.ladder[plan.bitrate[g]],
                                 group.intended_bitrate);
    // Under-delivery relative to the chosen cap manifests as buffering in
    // the fluid model: the shortfall ratio approximates buffering ratio.
    double shortfall =
        cap <= 0.0 ? 0.0 : std::clamp(1.0 - per_session / cap, 0.0, 1.0);
    double engagement = model_.predict(std::min(shortfall, 1.0),
                                       per_session, /*join_time=*/2.0);
    weighted_engagement += engagement * n;
    total_sessions += n;
    if (shortfall < 1e-6) satisfied += n;
    result.total_rate += rates[g];
  }
  if (total_sessions > 0.0) {
    result.mean_engagement = weighted_engagement / total_sessions;
    result.satisfied_fraction = satisfied / total_sessions;
  }
  return result;
}

WhatIfEngine::SearchResult WhatIfEngine::search(const Problem& problem) const {
  EONA_EXPECTS(!problem.groups.empty());
  EONA_EXPECTS(problem.options.size() == problem.groups.size());
  for (const auto& opts : problem.options) EONA_EXPECTS(!opts.empty());

  SearchResult result;
  Plan plan;
  plan.endpoint.assign(problem.groups.size(), 0);
  plan.bitrate.assign(problem.groups.size(), 0);

  // Odometer enumeration over (endpoint x bitrate) per group.
  bool first = true;
  while (true) {
    PlanScore score_now = score(problem, plan);
    ++result.evaluated;
    if (first || score_now.mean_engagement > result.best_score.mean_engagement) {
      result.best = plan;
      result.best_score = score_now;
      first = false;
    }
    // Increment the odometer.
    std::size_t g = 0;
    while (g < problem.groups.size()) {
      if (++plan.bitrate[g] < problem.ladder.size()) break;
      plan.bitrate[g] = 0;
      if (++plan.endpoint[g] < problem.options[g].size()) break;
      plan.endpoint[g] = 0;
      ++g;
    }
    if (g == problem.groups.size()) break;
  }
  return result;
}

Problem prune_problem(const Problem& problem, const core::I2AReport& i2a) {
  Problem pruned = problem;

  // Access-scope congestion: endpoint moves cannot help the affected ISP's
  // groups; keep only their first (current) option.
  auto access_congested = [&](IspId isp) {
    for (const auto& c : i2a.congestion)
      if (c.scope == core::CongestionScope::kAccess &&
          (!c.isp.valid() || !isp.valid() || c.isp == isp) && c.severity > 0.0)
        return true;
    return false;
  };

  auto server_unhealthy = [&](CdnId cdn, ServerId server) {
    for (const auto& h : i2a.server_hints)
      if (h.cdn == cdn && h.server == server && (!h.online || h.load > 0.95))
        return true;
    return false;
  };

  for (std::size_t g = 0; g < pruned.groups.size(); ++g) {
    auto& opts = pruned.options[g];
    if (access_congested(pruned.groups[g].isp)) {
      opts.erase(opts.begin() + 1, opts.end());
      continue;
    }
    // Drop hinted-unhealthy servers (keep at least one option).
    std::vector<EndpointOption> kept;
    for (const auto& option : opts)
      if (!server_unhealthy(option.cdn, option.server)) kept.push_back(option);
    if (!kept.empty()) opts = std::move(kept);
  }
  return pruned;
}

WhatIfEngine::PrunedResult WhatIfEngine::search_pruned(
    const Problem& problem, const core::I2AReport& i2a) const {
  PrunedResult result;
  result.plans_before = problem.plan_count();
  Problem pruned = prune_problem(problem, i2a);
  result.plans_after = pruned.plan_count();
  result.result = search(pruned);
  return result;
}

}  // namespace eona::control
