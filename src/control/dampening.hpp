// Dampening primitives for control loops (paper §5: "some sort of
// dampening or backoff algorithms can help" against oscillation).
//
// Three composable mechanisms:
//  * DwellTimer      -- minimum time between decision changes (hysteresis
//                       in time).
//  * ImprovementGate -- only act when the expected gain clears a threshold
//                       (hysteresis in value).
//  * ExponentialBackoff -- consecutive flip-flops stretch the dwell time.
#pragma once

#include <algorithm>
#include <optional>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace eona::control {

/// Allows at most one change per `dwell` seconds. The effective dwell can be
/// temporarily *widened* (multiplied) by a controller that is operating on
/// stale or missing EONA data: with degraded information, acting less often
/// is the graceful way to degrade (§5).
class DwellTimer {
 public:
  explicit DwellTimer(Duration dwell) : dwell_(dwell) {
    EONA_EXPECTS(dwell >= 0.0);
  }

  [[nodiscard]] bool may_change(TimePoint now) const {
    return !changed_once_ || now - last_change_ >= dwell_ * widening_;
  }

  void record_change(TimePoint now) {
    changed_once_ = true;
    last_change_ = now;
  }

  [[nodiscard]] Duration dwell() const { return dwell_; }
  void set_dwell(Duration dwell) {
    EONA_EXPECTS(dwell >= 0.0);
    dwell_ = dwell;
  }

  /// Multiply the effective dwell by `factor` (>= 1) until reset to 1.
  void set_widening(double factor) {
    EONA_EXPECTS(factor >= 1.0);
    widening_ = factor;
  }
  [[nodiscard]] double widening() const { return widening_; }

 private:
  Duration dwell_;
  double widening_ = 1.0;
  TimePoint last_change_ = 0.0;
  bool changed_once_ = false;
};

/// Only act when the candidate's score beats the incumbent's by a relative
/// margin: score_new > score_old * (1 + margin).
class ImprovementGate {
 public:
  explicit ImprovementGate(double margin) : margin_(margin) {
    EONA_EXPECTS(margin >= 0.0);
  }

  [[nodiscard]] bool clears(double incumbent, double candidate) const {
    return candidate > incumbent * (1.0 + margin_);
  }

  [[nodiscard]] double margin() const { return margin_; }

 private:
  double margin_;
};

/// Dwell time that doubles on every reversal (a change back to the previous
/// value within the observation window) and resets after a quiet period.
class ExponentialBackoff {
 public:
  ExponentialBackoff(Duration base_dwell, Duration quiet_period,
                     double factor = 2.0, Duration max_dwell = 3600.0)
      : base_(base_dwell),
        quiet_(quiet_period),
        factor_(factor),
        max_(max_dwell),
        current_(base_dwell) {
    EONA_EXPECTS(base_dwell > 0.0);
    EONA_EXPECTS(quiet_period > 0.0);
    EONA_EXPECTS(factor > 1.0);
  }

  [[nodiscard]] bool may_change(TimePoint now) const {
    return !changed_once_ || now - last_change_ >= current_;
  }

  /// Record a change to `value`; if it reverses the previous change (ABA),
  /// the dwell doubles. A quiet period since the last change resets the
  /// dwell *and* the reversal history (old flip-flops are forgiven).
  void record_change(TimePoint now, int value) {
    if (changed_once_ && now - last_change_ >= quiet_) {
      current_ = base_;
      previous_value_.reset();
    }
    if (changed_once_ && previous_value_ && value == *previous_value_) {
      current_ = std::min(current_ * factor_, max_);
    }
    previous_value_ = current_value_;
    current_value_ = value;
    last_change_ = now;
    changed_once_ = true;
  }

  [[nodiscard]] Duration current_dwell() const { return current_; }

 private:
  Duration base_;
  Duration quiet_;
  double factor_;
  Duration max_;
  Duration current_;
  TimePoint last_change_ = 0.0;
  bool changed_once_ = false;
  std::optional<int> current_value_;
  std::optional<int> previous_value_;
};

}  // namespace eona::control
