// The hypothetical global controller of the paper's §4 recipe: a player
// brain allowed to introspect the live network directly (all data, zero
// staleness) and pick the jointly best endpoint and bitrate. It upper-bounds
// what any interface -- wide or narrow -- can achieve, which is exactly the
// reference the interface-width experiment (E7) needs.
#pragma once

#include <limits>

#include "app/cdn.hpp"
#include "app/video_player.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"

namespace eona::control {

struct OracleConfig {
  double abr_safety = 0.85;
  Duration panic_buffer = 4.0;
  /// Required relative gain before moving an active session (prevents the
  /// oracle itself from thrashing).
  double switch_gain = 1.3;
};

/// Omniscient player brain. Not deployable (it reads other providers'
/// private state) -- used only as the quality ceiling in experiments.
class OracleBrain final : public app::PlayerBrain {
 public:
  OracleBrain(const net::Network& network, const net::Routing& routing,
              const app::CdnDirectory& cdns, OracleConfig config = {})
      : network_(network), routing_(routing), cdns_(cdns), config_(config) {}

  app::Endpoint choose_endpoint(const app::PlayerView& v) override {
    return best_endpoint(v).first;
  }

  bool should_switch_endpoint(const app::PlayerView& v) override {
    auto [best, best_share] = best_endpoint(v);
    if (best == app::Endpoint{v.cdn, v.server}) return false;
    BitsPerSecond current = predicted_share(v, v.cdn, v.server);
    return best_share > current * config_.switch_gain;
  }

  std::size_t choose_bitrate(const app::PlayerView& v) override {
    const auto& ladder = *v.ladder;
    if (v.joined && v.buffer < config_.panic_buffer) return 0;
    // Perfect knowledge: the post-join sustainable rate is the fair share
    // of the current path, tempered by measured throughput when available.
    BitsPerSecond share = predicted_share(v, v.cdn, v.server);
    if (v.throughput_estimate > 0.0)
      share = std::min(share, v.throughput_estimate);
    BitsPerSecond budget = config_.abr_safety * share;
    std::size_t best = 0;
    for (std::size_t i = 0; i < ladder.size(); ++i)
      if (ladder[i] <= budget) best = i;
    return best;
  }

 private:
  [[nodiscard]] BitsPerSecond predicted_share(const app::PlayerView& v,
                                              CdnId cdn_id,
                                              ServerId server_id) const {
    if (!cdn_id.valid() || !server_id.valid()) return 0.0;
    const app::Cdn& cdn = cdns_.at(cdn_id);
    const app::CdnServer& server = cdn.server(server_id);
    if (!server.online) return 0.0;
    net::Path path =
        cdn.delivery_path(server.node, v.client_node, v.isp, routing_);
    return network_.predicted_share(path);
  }

  [[nodiscard]] std::pair<app::Endpoint, BitsPerSecond> best_endpoint(
      const app::PlayerView& v) const {
    app::Endpoint best{};
    BitsPerSecond best_share = -1.0;
    for (const app::Cdn* cdn : cdns_.all()) {
      for (const auto& server : cdn->servers()) {
        if (!server.online) continue;
        BitsPerSecond share = predicted_share(v, cdn->id(), server.id);
        if (share > best_share) {
          best_share = share;
          best = app::Endpoint{cdn->id(), server.id};
        }
      }
    }
    EONA_ENSURES(best.cdn.valid());
    return {best, best_share};
  }

  const net::Network& network_;
  const net::Routing& routing_;
  const app::CdnDirectory& cdns_;
  OracleConfig config_;
};

}  // namespace eona::control
