// Traffic forecasting for proactive provisioning: per-group exponential
// smoothers that trend the demand signal the telemetry store serves.
//
// Two estimators, deliberately simple enough to verify against closed-form
// sequences (tests/control_forecaster_test.cpp):
//
//  - Ewma: level-only exponential smoothing. On a step input the level
//    converges geometrically: after m observations of x from a cold start
//    at 0, level = x * (1 - (1-alpha)^m).
//  - HoltWinters: Holt's linear (level + trend) double exponential
//    smoothing. With alpha = beta = 1 it reproduces a ramp exactly
//    (level = last sample, trend = last step), and forecast(h) projects
//    level + trend * h/period.
//
// Observations carry their timestamp; a gap of n sample periods first
// projects the level forward by n trend steps, then applies one smoothing
// update with the step-normalized trend innovation -- so a forecaster fed a
// sparse series degrades gracefully instead of treating a gap as one step.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace eona::control {

/// Smoothing parameters shared by the per-group estimators.
struct ForecastConfig {
  double alpha = 0.5;     ///< level smoothing weight (0..1]
  double beta = 0.3;      ///< trend smoothing weight [0..1]
  Duration period = 10.0; ///< nominal sample spacing for gap normalization
};

/// Level-only exponential smoothing.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    EONA_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  }

  void observe(double x) {
    if (count_ == 0) {
      level_ = x;  // cold start: adopt the first sample
    } else {
      level_ = alpha_ * x + (1.0 - alpha_) * level_;
    }
    ++count_;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::uint64_t observations() const { return count_; }
  [[nodiscard]] double value() const {
    EONA_EXPECTS(count_ > 0);
    return level_;
  }

 private:
  double alpha_;
  double level_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Holt's linear-trend double exponential smoothing with gap handling.
class HoltWinters {
 public:
  explicit HoltWinters(const ForecastConfig& cfg) : cfg_(cfg) {
    EONA_EXPECTS(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
    EONA_EXPECTS(cfg.beta >= 0.0 && cfg.beta <= 1.0);
    EONA_EXPECTS(cfg.period > 0.0);
  }

  void observe(TimePoint t, double x) {
    if (count_ == 0) {
      level_ = x;
      trend_ = 0.0;  // no trend information from a single sample
    } else {
      // Steps elapsed since the previous observation, min 1 (out-of-order
      // or duplicate timestamps count as one step).
      const double steps =
          std::max(1.0, std::round((t - last_t_) / cfg_.period));
      const double predicted = level_ + trend_ * steps;
      const double prev_level = level_;
      level_ = cfg_.alpha * x + (1.0 - cfg_.alpha) * predicted;
      trend_ = cfg_.beta * (level_ - prev_level) / steps +
               (1.0 - cfg_.beta) * trend_;
    }
    last_t_ = t;
    ++count_;
  }

  [[nodiscard]] std::uint64_t observations() const { return count_; }
  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double trend() const { return trend_; }

  /// Projection `horizon` seconds past the last observation. With a single
  /// observation this is the level (trend unknown, assumed flat).
  [[nodiscard]] double forecast(Duration horizon) const {
    EONA_EXPECTS(count_ > 0);
    return level_ + trend_ * (horizon / cfg_.period);
  }

 private:
  ForecastConfig cfg_;
  double level_ = 0.0;
  double trend_ = 0.0;
  TimePoint last_t_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Keyed family of HoltWinters smoothers: one per group (link, (isp, cdn)
/// pair hash, ...). Keys are raw 64-bit ids chosen by the caller.
class Forecaster {
 public:
  explicit Forecaster(const ForecastConfig& cfg = {}) : cfg_(cfg) {}

  void observe(std::uint64_t key, TimePoint t, double x) {
    auto [it, inserted] = groups_.try_emplace(key, HoltWinters{cfg_});
    (void)inserted;
    it->second.observe(t, x);
  }

  /// Projection for `key`, or nullopt before any observation.
  [[nodiscard]] std::optional<double> forecast(std::uint64_t key,
                                               Duration horizon) const {
    auto it = groups_.find(key);
    if (it == groups_.end()) return std::nullopt;
    return it->second.forecast(horizon);
  }

  [[nodiscard]] const HoltWinters* group(std::uint64_t key) const {
    auto it = groups_.find(key);
    return it == groups_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const { return groups_.size(); }
  [[nodiscard]] const ForecastConfig& config() const { return cfg_; }

 private:
  ForecastConfig cfg_;
  std::unordered_map<std::uint64_t, HoltWinters> groups_;
};

}  // namespace eona::control
