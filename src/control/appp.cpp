#include "control/appp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace eona::control {

namespace {

/// Deterministic 64-bit mixer for hash-style server picks.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Rate-based ABR shared by both brains: highest rendition within
/// safety * estimated throughput, subject to an absolute cap; lowest rung
/// in panic (buffer nearly dry) or before any throughput sample exists.
/// With a comfortably full buffer the player probes one rung above the safe
/// choice (probe_up_buffer <= 0 disables probing).
std::size_t rate_based_bitrate(const app::PlayerView& v, double safety,
                               Duration panic_buffer, BitsPerSecond cap,
                               double probe_up_buffer,
                               std::size_t max_down_steps) {
  const auto& ladder = *v.ladder;
  if (v.joined && v.buffer < panic_buffer) return 0;
  if (v.throughput_estimate <= 0.0) return 0;
  BitsPerSecond budget = std::min(safety * v.throughput_estimate, cap);
  std::size_t best = 0;
  for (std::size_t i = 0; i < ladder.size(); ++i)
    if (ladder[i] <= budget) best = i;
  if (probe_up_buffer > 0.0 && v.joined && v.max_buffer > 0.0 &&
      v.buffer >= probe_up_buffer * v.max_buffer && best + 1 < ladder.size() &&
      ladder[best + 1] <= cap)
    ++best;
  // Downswitch smoothing: without better information the player treats a
  // throughput dip as possible noise and descends gradually.
  if (max_down_steps > 0 && best < v.bitrate_index) {
    std::size_t lowest_allowed =
        v.bitrate_index >= max_down_steps ? v.bitrate_index - max_down_steps
                                          : 0;
    best = std::max(best, lowest_allowed);
  }
  return best;
}

/// Sustained throughput too weak to carry the configured rung of the
/// ladder -- the "my CDN is slow" trigger of 2012-era switching players.
bool poor_throughput(const app::PlayerView& v,
                     const control::AppPConfig& cfg) {
  if (cfg.poor_throughput_rung == 0) return false;
  if (!v.joined || v.throughput_estimate <= 0.0) return false;
  if (cfg.poor_throughput_rung >= v.ladder->size()) return false;
  return v.throughput_estimate < (*v.ladder)[cfg.poor_throughput_rung];
}

/// Merge one I2A report into the accumulated multi-InfP view.
void merge_i2a(std::optional<core::I2AReport>& merged,
               core::I2AReport report) {
  if (!merged) {
    merged = std::move(report);
    return;
  }
  merged->generated_at = std::max(merged->generated_at, report.generated_at);
  merged->peerings.insert(merged->peerings.end(), report.peerings.begin(),
                          report.peerings.end());
  merged->server_hints.insert(merged->server_hints.end(),
                              report.server_hints.begin(),
                              report.server_hints.end());
  merged->congestion.insert(merged->congestion.end(),
                            report.congestion.begin(),
                            report.congestion.end());
}

/// Hash-pick an online server: what an AppP without load visibility gets
/// from CDN DNS. `salt` varies on re-picks so retries can land elsewhere.
ServerId hashed_server(const app::Cdn& cdn, SessionId session,
                       std::uint64_t salt) {
  std::vector<ServerId> online;
  for (const auto& s : cdn.servers())
    if (s.online) online.push_back(s.id);
  if (online.empty()) {
    // The whole fleet is dark (e.g. a chaos-injected crash of a
    // single-server CDN). DNS keeps resolving rather than erroring the
    // player out: hash over all servers; the fetch fails fast on the dead
    // egress and the player's failure path retries elsewhere.
    for (const auto& s : cdn.servers()) online.push_back(s.id);
  }
  if (online.empty())
    throw NotFoundError("no server in cdn " + cdn.name());
  std::uint64_t h = splitmix64(session.value() ^ (salt * 0x517CC1B727220A95ull));
  return online[h % online.size()];
}

}  // namespace

// ---------------------------------------------------------------------------
// BaselineBrain: trial-and-error. No visibility below the application layer.
// ---------------------------------------------------------------------------

class AppPController::BaselineBrain final : public app::PlayerBrain {
 public:
  explicit BaselineBrain(AppPController& ctl) : ctl_(ctl) {}

  app::Endpoint choose_endpoint(const app::PlayerView& v) override {
    CdnId cdn =
        v.cdn.valid() ? ctl_.next_cdn_after(v.cdn) : ctl_.primary_cdn();
    return {cdn, hashed_server(ctl_.cdns_.at(cdn), v.session, v.stall_count)};
  }

  bool should_switch_endpoint(const app::PlayerView& v) override {
    // The only signals available: my own stalls and my own throughput.
    // Whole-CDN switch is the only recourse (paper §2 "coarse control").
    if (v.stalls_since_switch >= ctl_.config_.stalls_before_switch)
      return true;
    return poor_throughput(v, ctl_.config_);
  }

  std::size_t choose_bitrate(const app::PlayerView& v) override {
    return rate_based_bitrate(v, ctl_.config_.abr_safety,
                              ctl_.config_.panic_buffer,
                              std::numeric_limits<BitsPerSecond>::infinity(),
                              ctl_.config_.probe_up_buffer,
                              ctl_.config_.max_down_steps);
  }

 private:
  AppPController& ctl_;
};

// ---------------------------------------------------------------------------
// EonaBrain: same mechanics, I2A-informed decisions.
// ---------------------------------------------------------------------------

class AppPController::EonaBrain final : public app::PlayerBrain {
 public:
  explicit EonaBrain(AppPController& ctl)
      : ctl_(ctl), health_(ctl.config_.endpoint_health) {}

  app::Endpoint choose_endpoint(const app::PlayerView& v) override {
    const auto& i2a = ctl_.latest_i2a_;
    if (!v.cdn.valid()) {
      CdnId cdn = ctl_.primary_cdn();
      return {cdn, pick_server(cdn, v, ServerId{})};
    }
    if (i2a) {
      // Problem attributed to the access network: switching cannot help;
      // stay put (bitrate logic reacts instead). A hard fetch failure
      // trumps the attribution -- the current endpoint is unreachable, so
      // staying put means staying dead.
      if (!v.endpoint_failed &&
          access_severity(v.isp) >=
              ctl_.config_.congestion_severity_threshold)
        return {v.cdn, v.server};
      // Prefer an intra-CDN server switch (cache locality, §2) when the
      // current CDN's interconnect is healthy and a better server is hinted.
      if (peering_healthy(v.isp, v.cdn)) {
        ServerId sibling = best_hinted_server(v.cdn, v.server, v.session,
                                              v.now);
        if (sibling.valid()) return {v.cdn, sibling};
      }
      // Otherwise move to a CDN whose interconnect is healthy.
      for (const app::Cdn* cdn : ctl_.cdns_.all()) {
        if (cdn->id() == v.cdn) continue;
        if (peering_healthy(v.isp, cdn->id()))
          return {cdn->id(), pick_server(cdn->id(), v, ServerId{})};
      }
    }
    // No usable information: behave like the baseline.
    CdnId cdn = ctl_.next_cdn_after(v.cdn);
    return {cdn, pick_server(cdn, v, ServerId{})};
  }

  void note_transfer_failure(const app::PlayerView& v) override {
    health_.record_failure(endpoint_key(v.cdn, v.server), v.now);
  }

  void note_transfer_success(const app::PlayerView& v) override {
    health_.record_success(endpoint_key(v.cdn, v.server));
  }

  [[nodiscard]] const core::EndpointHealth& health() const { return health_; }

  bool should_switch_endpoint(const app::PlayerView& v) override {
    const auto& i2a = ctl_.latest_i2a_;
    if (i2a) {
      // Hinted hard failures trump everything.
      for (const auto& h : i2a->server_hints)
        if (h.cdn == v.cdn && h.server == v.server && !h.online) return true;
      // Access congestion: do NOT switch (Fig 3's lesson).
      if (access_severity(v.isp) >=
          ctl_.config_.congestion_severity_threshold)
        return false;
      // Current server's hint, if any: overload with a healthy sibling is a
      // reason to move; a clean bill of health is a reason to *stay* -- the
      // player attributes its own transient stall to noise rather than
      // burning a switch (the paper's "reduce trial-and-error" claim).
      for (const auto& h : i2a->server_hints) {
        if (h.cdn != v.cdn || h.server != v.server) continue;
        if (h.load > ctl_.config_.server_overload_threshold)
          return best_hinted_server(v.cdn, v.server, v.session, v.now)
              .valid();
        return false;  // hinted healthy: hold
      }
    }
    if (v.stalls_since_switch >= ctl_.config_.stalls_before_switch)
      return true;
    // Poor throughput without an access-congestion attribution: worth
    // trying elsewhere (same trigger as baseline, but informed).
    return poor_throughput(v, ctl_.config_);
  }

  std::size_t choose_bitrate(const app::PlayerView& v) override {
    BitsPerSecond cap = std::numeric_limits<BitsPerSecond>::infinity();
    double severity = access_severity(v.isp);
    double probe = ctl_.config_.probe_up_buffer;
    std::size_t down_steps = ctl_.config_.max_down_steps;
    if (severity >= ctl_.config_.congestion_severity_threshold &&
        v.throughput_estimate > 0.0) {
      // Congestion is in the shared access segment: be deliberately more
      // conservative than the fair share we currently measure, so the
      // aggregate steps down and the bottleneck drains (Fig 3). The
      // attribution also says the dip is real: stop probing upward and
      // lift the downswitch smoothing (jump straight to sustainable).
      cap = v.throughput_estimate *
            (1.0 - ctl_.config_.congestion_bitrate_margin * severity);
      probe = 0.0;
      down_steps = 0;
    }
    return rate_based_bitrate(v, ctl_.config_.abr_safety,
                              ctl_.config_.panic_buffer, cap, probe,
                              down_steps);
  }

 private:
  /// Endpoint-health key: one player's aborted fetch on (cdn, server) backs
  /// the whole fleet off that endpoint until the hold expires or a chunk
  /// lands there again.
  [[nodiscard]] static std::uint64_t endpoint_key(CdnId cdn,
                                                  ServerId server) {
    return (static_cast<std::uint64_t>(cdn.value()) << 32) | server.value();
  }

  /// Max hinted severity of access-scope congestion for this ISP; 0 if none.
  [[nodiscard]] double access_severity(IspId isp) const {
    const auto& i2a = ctl_.latest_i2a_;
    if (!i2a) return 0.0;
    double severity = 0.0;
    for (const auto& c : i2a->congestion)
      if (c.scope == core::CongestionScope::kAccess &&
          (!c.isp.valid() || !isp.valid() || c.isp == isp))
        severity = std::max(severity, c.severity);
    return severity;
  }

  /// Is the ISP's selected interconnect for `cdn` NOT congested? Unknown
  /// pairs count as healthy.
  [[nodiscard]] bool peering_healthy(IspId isp, CdnId cdn) const {
    const auto& i2a = ctl_.latest_i2a_;
    if (!i2a) return true;
    for (const auto& p : i2a->peerings)
      if (p.cdn == cdn && (!isp.valid() || p.isp == isp) && p.selected &&
          p.congested)
        return false;
    return true;
  }

  /// A healthy hinted server of `cdn` other than `exclude`; invalid when no
  /// hint qualifies. Chosen by session hash across all under-threshold
  /// servers rather than argmin-load: a fleet of players all chasing the
  /// same "least loaded" server would simply move the hot spot. Endpoints
  /// inside a failure hold-down are skipped unless every qualifying server
  /// is held down (a maybe-dead server beats certain failure).
  [[nodiscard]] ServerId best_hinted_server(CdnId cdn, ServerId exclude,
                                            SessionId session,
                                            TimePoint now) const {
    const auto& i2a = ctl_.latest_i2a_;
    if (!i2a) return ServerId{};
    std::vector<ServerId> healthy;
    std::vector<ServerId> held;
    for (const auto& h : i2a->server_hints) {
      if (h.cdn != cdn || !h.online || h.server == exclude) continue;
      if (h.load >= ctl_.config_.server_overload_threshold) continue;
      if (health_.available(endpoint_key(cdn, h.server), now))
        healthy.push_back(h.server);
      else
        held.push_back(h.server);
    }
    if (healthy.empty()) healthy.swap(held);
    if (healthy.empty()) return ServerId{};
    return healthy[splitmix64(session.value()) % healthy.size()];
  }

  /// Hinted least-loaded pick; falls back to the hashed pick when no hints.
  /// The hashed fallback re-salts a few times to step around endpoints in a
  /// failure hold-down before giving in and using one anyway.
  [[nodiscard]] ServerId pick_server(CdnId cdn, const app::PlayerView& v,
                                     ServerId exclude) const {
    ServerId hinted = best_hinted_server(cdn, exclude, v.session, v.now);
    if (hinted.valid()) return hinted;
    const app::Cdn& directory = ctl_.cdns_.at(cdn);
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
      ServerId s = hashed_server(directory, v.session, v.stall_count + salt);
      if (health_.available(endpoint_key(cdn, s), v.now)) return s;
    }
    return hashed_server(directory, v.session, v.stall_count);
  }

  AppPController& ctl_;
  core::EndpointHealth health_;
};

// ---------------------------------------------------------------------------
// AppPController
// ---------------------------------------------------------------------------

AppPController::AppPController(sim::Scheduler& sched, net::Network& network,
                               const app::CdnDirectory& cdns, ProviderId self,
                               AppPConfig config)
    : sched_(sched),
      network_(network),
      cdns_(cdns),
      self_(self),
      config_(config),
      by_isp_cdn_(telemetry::Dim::kIsp | telemetry::Dim::kCdn,
                  config.qoe_window, config.qoe_window_buckets),
      by_isp_cdn_server_(telemetry::Dim::kIsp | telemetry::Dim::kCdn |
                             telemetry::Dim::kServer,
                         config.qoe_window, config.qoe_window_buckets),
      primary_dwell_(config.primary_dwell),
      baseline_brain_(std::make_unique<BaselineBrain>(*this)),
      eona_brain_(std::make_unique<EonaBrain>(*this)) {
  EONA_EXPECTS(cdns.size() > 0);
  primary_cdn_ = cdns.all().front()->id();
  primary_trace_.record(sched_.now(), static_cast<int>(primary_cdn_.value()));
  collector_.add_sink([this](const telemetry::SessionRecord& r) {
    by_isp_cdn_.ingest(r);
    by_isp_cdn_server_.ingest(r);
  });
}

AppPController::~AppPController() = default;

void AppPController::bind_exchange(core::ExchangeEndpoint port) {
  port_ = port;
  // Arm the broker re-registration chain. The seed depends on the tenant
  // identity alone, so backoff jitter is reproducible regardless of build
  // order or workload randomness.
  if (port_.bound()) {
    port_.arm_reattach(sched_,
                       splitmix64(self_.value() ^ 0xB5026F5AA96619E9ull),
                       config_.reattach);
    // Republish out of band the moment we are re-admitted: subscribed InfPs
    // recover a fresh view without waiting out our control period.
    port_.set_on_reattach(
        [this](TimePoint now) { port_.publish_a2i(build_a2i_report(), now); });
  }
}

void AppPController::subscribe_i2a(ProviderId infp) {
  EONA_EXPECTS(port_.bound());
  I2ASubscription sub{infp, nullptr};
  // Deterministic per-subscription seed: backoff jitter must not depend on
  // subscription order elsewhere or on any workload randomness.
  std::uint64_t seed =
      splitmix64(self_.value() ^ (subscriptions_.size() + 1) * 0xD1B54A32D192ED03ull);
  sub.fetcher = std::make_unique<core::RobustFetcher<core::I2AReport>>(
      sched_,
      [this, infp](TimePoint now) { return port_.fetch_i2a(infp, now); },
      config_.i2a_retry, seed, [this] { remerge_i2a(); });
  subscriptions_.push_back(std::move(sub));
}

void AppPController::unsubscribe_i2a(ProviderId infp) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end(); ++it) {
    if (it->producer != infp) continue;
    // The departing fetcher's counters fold into the naive accumulator so
    // i2a_health() keeps counting history across churn.
    naive_stats_ += it->fetcher->stats();
    subscriptions_.erase(it);
    // Rebuild the merged view from scratch: the departed producer's
    // last-known-good data must not linger.
    latest_i2a_.reset();
    remerge_i2a();
    return;
  }
  throw NotFoundError("appp " + std::to_string(self_.value()) +
                      ": no i2a subscription to infp " +
                      std::to_string(infp.value()));
}

void AppPController::set_event_bus(sim::EventBus* bus) {
  bus_ = bus;
  if (bus_ != nullptr) {
    // The delivery-health accumulator becomes a subscriber: the controller
    // publishes ReportServedEvent each epoch and consumes its own event.
    // Synchronous dispatch keeps the accumulator's update sequence (and so
    // the health snapshot) identical to the direct call it replaces.
    bus_->subscribe<sim::ReportServedEvent>(
        [this](const sim::ReportServedEvent& e) {
          if (e.consumer == self_ && std::strcmp(e.kind, "i2a") == 0)
            i2a_delivery_.observe_serve(e.age, e.stale);
        });
    // Broker faults go straight to the endpoint: a crash starts its
    // reattach backoff chain without waiting for a rejected publish.
    bus_->subscribe<sim::FaultEvent>([this](const sim::FaultEvent& e) {
      if (std::strcmp(e.kind, "exchange_crash") == 0 ||
          std::strcmp(e.kind, "exchange_restart") == 0)
        port_.on_broker_fault(e.kind, e.t);
    });
  }
}

void AppPController::observe_i2a_serve(Duration age, bool stale) {
  if (bus_ != nullptr) {
    bus_->publish(
        sim::ReportServedEvent{sched_.now(), self_, "i2a", age, stale});
  } else {
    i2a_delivery_.observe_serve(age, stale);
  }
}

app::PlayerBrain& AppPController::brain() {
  return eona_enabled_ ? static_cast<app::PlayerBrain&>(*eona_brain_)
                       : static_cast<app::PlayerBrain&>(*baseline_brain_);
}
app::PlayerBrain& AppPController::baseline_brain() { return *baseline_brain_; }
app::PlayerBrain& AppPController::eona_brain() { return *eona_brain_; }

std::uint64_t AppPController::endpoint_failures() const {
  return eona_brain_->health().total_failures();
}

void AppPController::start() {
  EONA_EXPECTS(task_ == nullptr);
  task_ = std::make_unique<sim::PeriodicTask>(sched_, config_.control_period,
                                              [this] { tick(); });
}

void AppPController::stop() { task_.reset(); }

void AppPController::tick() {
  ++tick_count_;
  // Build the report once per epoch; publish and steering both consume it.
  core::A2IReport report = build_a2i_report();
  if (port_.bound()) port_.publish_a2i(report, sched_.now());
  publish_a2i_samples(report);
  refresh_i2a();
  steer_primary_cdn(report);
}

void AppPController::publish_a2i_samples(const core::A2IReport& report) {
  // Mirror every exported v2 tuple onto the bus, one event per tuple, so
  // the trace and the columnar telemetry store carry the full A2I stream
  // (report order, which is already deterministically sorted).
  if (bus_ == nullptr) return;
  const TimePoint now = sched_.now();
  for (const auto& g : report.groups) {
    bus_->publish(sim::A2IQoeSampleEvent{
        now, self_, g.isp, g.cdn, g.server, g.mean_buffering_ratio,
        g.p90_buffering_ratio, g.mean_bitrate, g.mean_engagement,
        g.sessions});
  }
  for (const auto& f : report.forecasts) {
    bus_->publish(sim::A2IForecastSampleEvent{now, self_, f.isp, f.cdn,
                                              f.expected_rate});
  }
}

void AppPController::refresh_i2a() {
  TimePoint now = sched_.now();
  if (config_.robust_fetch) {
    for (auto& sub : subscriptions_) sub.fetcher->poll();
    remerge_i2a();
  } else {
    // Naive consumer: trust only what this tick's fetches returned. A tick
    // where every subscription misses (drop streak, outage) goes blind.
    std::optional<core::I2AReport> merged;
    for (const auto& sub : subscriptions_) {
      ++naive_stats_.attempts;
      auto report = port_.fetch_i2a(sub.producer, now);
      if (!report) {
        ++naive_stats_.misses;
        continue;
      }
      ++naive_stats_.fresh_hits;
      merge_i2a(merged, std::move(*report));
    }
    latest_i2a_ = std::move(merged);
  }

  if (subscriptions_.empty()) return;
  if (config_.robust_fetch) {
    i2a_stale_ = true;
    for (const auto& sub : subscriptions_)
      if (!sub.fetcher->stale(now)) i2a_stale_ = false;
  } else {
    i2a_stale_ = !latest_i2a_ ||
                 now - latest_i2a_->generated_at >
                     config_.i2a_retry.freshness_deadline;
  }
  if (latest_i2a_)
    observe_i2a_serve(now - latest_i2a_->generated_at, i2a_stale_);
  // Graceful degradation: on stale data the primary-CDN knob moves at most
  // half as often (stale_widening). Gated on a finite freshness deadline so
  // the default configuration is bit-identical to the pre-fault controller.
  if (std::isfinite(config_.i2a_retry.freshness_deadline))
    primary_dwell_.set_widening(
        i2a_stale_ ? std::max(1.0, config_.stale_widening) : 1.0);
}

void AppPController::remerge_i2a() {
  std::optional<core::I2AReport> merged;
  for (const auto& sub : subscriptions_) {
    const auto& report = sub.fetcher->report();
    if (!report) continue;
    merge_i2a(merged, *report);
  }
  if (merged) latest_i2a_ = std::move(merged);
}

telemetry::DeliveryHealthSnapshot AppPController::i2a_health() const {
  telemetry::DeliveryHealthSnapshot s = i2a_delivery_.snapshot();
  core::FetchStats fetches = naive_stats_;
  for (const auto& sub : subscriptions_) {
    fetches += sub.fetcher->stats();
    const core::ChannelStats& ch = port_.i2a_leg_stats(sub.producer);
    s.publishes += ch.published;
    s.deliveries += ch.delivered;
    s.drops += ch.dropped;
    s.duplicates += ch.duplicated;
  }
  s.fetch_attempts = fetches.attempts;
  s.retries = fetches.retries;
  s.fresh_hits = fetches.fresh_hits;
  s.stale_hits = fetches.stale_hits;
  s.misses = fetches.misses;
  return s;
}

core::A2IReport AppPController::build_a2i_report() const {
  TimePoint now = sched_.now();
  core::A2IReport report;
  report.from = self_;
  report.generated_at = now;

  auto fill_group = [](const telemetry::Dimensions& dims,
                       const telemetry::MetricAggregate& agg) {
    core::QoeGroupReport g;
    g.isp = dims.isp;
    g.cdn = dims.cdn;
    g.server = dims.server;
    g.mean_buffering_ratio = agg.buffering_ratio.mean();
    // p90 via a normal approximation of the window distribution; the exact
    // sketch lives in the unwindowed aggregator, but control wants recency.
    double p90 = agg.buffering_ratio.mean() +
                 1.2816 * agg.buffering_ratio.stddev();
    g.p90_buffering_ratio = std::clamp(p90, 0.0, 1.0);
    g.mean_bitrate = agg.avg_bitrate.mean();
    g.mean_join_time = agg.join_time.mean();
    g.mean_engagement = agg.engagement.mean();
    g.sessions = agg.records;
    return g;
  };

  for (const auto& [dims, agg] : by_isp_cdn_.snapshot(now)) {
    if (agg.empty()) continue;
    report.groups.push_back(fill_group(dims, agg));
    core::TrafficForecast f;
    f.isp = dims.isp;
    f.cdn = dims.cdn;
    f.expected_rate = agg.total_bits / config_.qoe_window;
    if (config_.intended_bitrate > 0.0) {
      // Forecast *intended* volume (paper §4): sessions times the rate the
      // AppP wants to deliver, not the degraded rate it currently achieves.
      double active_estimate = static_cast<double>(agg.records) *
                               config_.assumed_beacon_period /
                               config_.qoe_window;
      f.expected_rate = std::max(f.expected_rate,
                                 active_estimate * config_.intended_bitrate);
    }
    f.expected_rate *= config_.forecast_exaggeration;
    report.forecasts.push_back(f);
  }
  for (const auto& [dims, agg] : by_isp_cdn_server_.snapshot(now)) {
    if (agg.empty()) continue;
    // Beacons with no server attribution project to a server-wildcard group
    // that would duplicate the CDN-level one above; skip those.
    if (!dims.server.valid()) continue;
    report.groups.push_back(fill_group(dims, agg));
  }
  return report;
}

std::optional<double> AppPController::cdn_buffering(CdnId cdn) const {
  telemetry::MetricAggregate merged;
  for (const auto& [dims, agg] : by_isp_cdn_.snapshot(sched_.now()))
    if (dims.cdn == cdn) merged.merge(agg);
  if (merged.empty()) return std::nullopt;
  return merged.buffering_ratio.mean();
}

bool AppPController::primary_qoe_bad() const {
  telemetry::MetricAggregate merged;
  for (const auto& [dims, agg] : by_isp_cdn_.snapshot(sched_.now()))
    if (dims.cdn == primary_cdn_) merged.merge(agg);
  if (merged.empty()) return false;
  if (merged.buffering_ratio.mean() > config_.bad_qoe_buffering) return true;
  if (config_.bad_qoe_bitrate > 0.0 &&
      merged.avg_bitrate.mean() < config_.bad_qoe_bitrate)
    return true;
  return false;
}

CdnId AppPController::next_cdn_after(CdnId current) const {
  const auto& all = cdns_.all();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i]->id() == current) return all[(i + 1) % all.size()]->id();
  return all.front()->id();
}

void AppPController::set_primary_cdn(CdnId cdn, const char* reason) {
  if (cdn == primary_cdn_) return;
  CdnId from = primary_cdn_;
  primary_cdn_ = cdn;
  primary_trace_.record(sched_.now(), static_cast<int>(cdn.value()));
  primary_dwell_.record_change(sched_.now());
  if (bus_ != nullptr)
    bus_->publish(
        sim::SteeringEvent{sched_.now(), self_, from, cdn, false, reason});
}

void AppPController::hold_primary_cdn(const char* reason) {
  if (bus_ != nullptr)
    bus_->publish(sim::SteeringEvent{sched_.now(), self_, primary_cdn_,
                                     primary_cdn_, true, reason});
}

void AppPController::steer_primary_cdn(const core::A2IReport& report) {
  if (cdns_.size() < 2) return;
  if (!primary_qoe_bad()) return;
  if (!primary_dwell_.may_change(sched_.now())) return;

  if (eona_enabled_ && latest_i2a_) {
    // Attribute before acting. Access congestion: no CDN will do better.
    for (const auto& c : latest_i2a_->congestion)
      if (c.scope == core::CongestionScope::kAccess &&
          c.severity >= config_.congestion_severity_threshold)
        return hold_primary_cdn("access-congestion");
    // The primary CDN still has healthy capacity behind it (hinted online,
    // unloaded servers): players will move servers inside the CDN; a
    // wholesale primary switch would only cold-start the rival (§2).
    for (const auto& h : latest_i2a_->server_hints)
      if (h.cdn == primary_cdn_ && h.online &&
          h.load < config_.server_overload_threshold)
        return hold_primary_cdn("healthy-primary-servers");
    // Interconnect trouble, but the ISP has (or can move to) a peering
    // point with headroom for us: hold position and let the InfP act --
    // this is exactly the information that breaks the Fig 5 cycle.
    BitsPerSecond our_rate = 0.0;
    for (const auto& f : report.forecasts)
      if (f.cdn == primary_cdn_) our_rate += f.expected_rate;
    for (const auto& p : latest_i2a_->peerings) {
      if (p.cdn != primary_cdn_) continue;
      BitsPerSecond headroom = p.capacity * (1.0 - p.utilization);
      if (!p.congested && (p.selected || headroom >= our_rate))
        return hold_primary_cdn("peering-healthy");
      if (p.capacity >= our_rate && !p.selected)
        return hold_primary_cdn("isp-can-shift-egress");
    }
  }
  set_primary_cdn(next_cdn_after(primary_cdn_), "bad-qoe-trial-switch");
}

}  // namespace eona::control
