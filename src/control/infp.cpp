#include "control/infp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace eona::control {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Merge one A2I report into the accumulated multi-AppP view.
void merge_a2i(std::optional<core::A2IReport>& merged,
               core::A2IReport report) {
  if (!merged) {
    merged = std::move(report);
    return;
  }
  merged->generated_at = std::max(merged->generated_at, report.generated_at);
  merged->groups.insert(merged->groups.end(), report.groups.begin(),
                        report.groups.end());
  merged->forecasts.insert(merged->forecasts.end(), report.forecasts.begin(),
                           report.forecasts.end());
}

}  // namespace

InfPController::InfPController(sim::Scheduler& sched, net::Network& network,
                               const net::Routing& routing,
                               net::PeeringBook& peering, IspId isp,
                               ProviderId self,
                               std::vector<LinkId> access_links,
                               InfPConfig config)
    : sched_(sched),
      network_(network),
      routing_(routing),
      peering_(peering),
      isp_(isp),
      self_(self),
      access_links_(std::move(access_links)),
      config_(config) {
  // Record initial selections; the first-registered point per CDN is the
  // ISP's preferred (cheapest) interconnect.
  std::vector<LinkId> monitored = access_links_;
  for (PeeringId pid : peering_.points_of_isp(isp_)) {
    const net::PeeringPoint& p = peering_.point(pid);
    monitored.push_back(p.ingress_link);
    if (preferred_.find(p.cdn) == preferred_.end()) {
      preferred_.emplace(p.cdn, pid);
      egress_dwell_.emplace(p.cdn, DwellTimer(config_.egress_dwell));
      egress_traces_[p.cdn].record(
          sched_.now(),
          static_cast<int>(peering_.selected(isp_, p.cdn).value()));
    }
  }
  monitor_ = std::make_unique<LinkMonitor>(sched_, network_,
                                           std::move(monitored),
                                           config_.sample_period,
                                           config_.window_samples);
  forecaster_ = Forecaster(config_.forecast);
}

InfPController::~InfPController() = default;

void InfPController::bind_exchange(core::ExchangeEndpoint port) {
  port_ = port;
  // Arm the broker re-registration chain. The seed depends on the tenant
  // identity alone, so backoff jitter is reproducible regardless of build
  // order or workload randomness.
  if (port_.bound()) {
    port_.arm_reattach(sched_,
                       splitmix64(self_.value() ^ 0x8CB92BA72F3D8DD7ull),
                       config_.reattach);
    // Republish out of band the moment we are re-admitted: subscribed AppPs
    // recover a fresh view without waiting out our control period.
    port_.set_on_reattach(
        [this](TimePoint now) { port_.publish_i2a(build_i2a_report(), now); });
  }
}

void InfPController::subscribe_a2i(ProviderId appp) {
  EONA_EXPECTS(port_.bound());
  A2ISubscription sub{appp, nullptr};
  std::uint64_t seed = splitmix64(
      self_.value() ^ (subscriptions_.size() + 1) * 0x2545F4914F6CDD1Dull);
  sub.fetcher = std::make_unique<core::RobustFetcher<core::A2IReport>>(
      sched_,
      [this, appp](TimePoint now) { return port_.fetch_a2i(appp, now); },
      config_.a2i_retry, seed, [this] { remerge_a2i(); });
  subscriptions_.push_back(std::move(sub));
}

void InfPController::unsubscribe_a2i(ProviderId appp) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end(); ++it) {
    if (it->producer != appp) continue;
    // The departing fetcher's counters fold into the naive accumulator so
    // a2i_health() keeps counting history across churn.
    naive_stats_ += it->fetcher->stats();
    subscriptions_.erase(it);
    // Rebuild the merged view from scratch: the departed producer's
    // last-known-good data must not linger.
    latest_a2i_.reset();
    remerge_a2i();
    return;
  }
  throw NotFoundError("infp " + std::to_string(self_.value()) +
                      ": no a2i subscription to appp " +
                      std::to_string(appp.value()));
}

void InfPController::attach_cdn(const app::Cdn* cdn) {
  EONA_EXPECTS(cdn != nullptr);
  operated_cdns_.push_back(cdn);
  for (const auto& server : cdn->servers()) {
    if (!monitor_->tracks(server.egress)) monitor_->track(server.egress);
    nominal_capacity_[server.egress] = network_.link_capacity(server.egress);
  }
}

void InfPController::start() {
  EONA_EXPECTS(task_ == nullptr);
  task_ = std::make_unique<sim::PeriodicTask>(sched_, config_.control_period,
                                              [this] { tick(); });
}

void InfPController::set_event_bus(sim::EventBus* bus) {
  bus_ = bus;
  monitor_->set_event_bus(bus);
  if (bus_ != nullptr) {
    // Delivery health as a subscriber: the controller publishes its own
    // ReportServedEvent and the accumulator consumes it synchronously, so
    // the health snapshot matches the direct-call wiring bit-for-bit.
    bus_->subscribe<sim::ReportServedEvent>(
        [this](const sim::ReportServedEvent& e) {
          if (e.consumer == self_ && std::strcmp(e.kind, "a2i") == 0)
            a2i_delivery_.observe_serve(e.age, e.stale);
        });
    bus_->subscribe<sim::FaultEvent>(
        [this](const sim::FaultEvent& e) { on_fault(e); });
  }
}

void InfPController::on_fault(const sim::FaultEvent& e) {
  // Broker faults carry no topology element: hand them to the endpoint (a
  // crash starts its reattach backoff chain) and leave the link logic alone.
  if (std::strcmp(e.kind, "exchange_crash") == 0 ||
      std::strcmp(e.kind, "exchange_restart") == 0) {
    if (port_.bound()) port_.on_broker_fault(e.kind, e.t);
    return;
  }
  // Detection hygiene (both modes): every sample taken before the event
  // describes a link that no longer exists in that form; a window that
  // straddles the fault reports stale utilisation.
  if (monitor_->tracks(e.link)) monitor_->clear(e.link);
  bool dead = std::strcmp(e.kind, "link_down") == 0 ||
              std::strcmp(e.kind, "server_crash") == 0;
  if (!eona_enabled_ || !dead) return;
  // Self-healing: when the dead link is a *selected* peering ingress, steer
  // the affected CDN's sector onto the best surviving point right now --
  // select_egress reroutes its live flows before the data plane's stranded
  // sweep can abort them.
  bool affected = false;
  for (PeeringId pid : peering_.points_of_isp(isp_)) {
    const net::PeeringPoint& point = peering_.point(pid);
    if (point.ingress_link != e.link) continue;
    affected = true;
    if (peering_.selected(isp_, point.cdn) != pid) continue;
    PeeringId target = pick_failover_target(point.cdn);
    if (!target.valid() || target == pid) continue;
    select_egress(target, "failover");
    ++failover_count_;
  }
  // Reflect the outage in the looking glass immediately: zero capacity,
  // congested peering, offline server hints reach subscribed AppPs without
  // waiting out the control period.
  if ((affected || nominal_capacity_.count(e.link) > 0) && port_.bound())
    port_.publish_i2a(build_i2a_report(), sched_.now());
}

PeeringId InfPController::pick_failover_target(CdnId cdn) const {
  auto up = [this](PeeringId pid) {
    return network_.link_up(peering_.point(pid).ingress_link);
  };
  auto preferred = preferred_.find(cdn);
  if (preferred != preferred_.end() && up(preferred->second))
    return preferred->second;
  for (PeeringId pid : peering_.points_of_isp(isp_))
    if (peering_.point(pid).cdn == cdn && up(pid)) return pid;
  return PeeringId{};
}

void InfPController::observe_a2i_serve(Duration age, bool stale) {
  if (bus_ != nullptr) {
    bus_->publish(
        sim::ReportServedEvent{sched_.now(), self_, "a2i", age, stale});
  } else {
    a2i_delivery_.observe_serve(age, stale);
  }
}

void InfPController::stop() { task_.reset(); }

void InfPController::tick() {
  ++tick_count_;
  refresh_a2i();
  run_traffic_engineering();
  run_provisioning();
  run_egress_sharing();
  if (port_.bound()) port_.publish_i2a(build_i2a_report(), sched_.now());
}

void InfPController::run_egress_sharing() {
  const InfPConfig::EgressShareConfig& es = config_.egress_share;
  if (!es.enabled || es.pool <= 0.0) return;
  // One ingress link per CDN: the selected peering point's. The pool is
  // divided proportional to each CDN's visible A2I forecast claim (equal
  // split when nothing is visible yet), floored at min_share so no tenant
  // starves outright, then renormalised.
  std::map<CdnId, LinkId> ingress;
  for (PeeringId pid : peering_.points_of_isp(isp_)) {
    const net::PeeringPoint& p = peering_.point(pid);
    if (peering_.selected(isp_, p.cdn) == pid) ingress[p.cdn] = p.ingress_link;
  }
  if (ingress.empty()) return;

  std::map<CdnId, double> weight;
  double total = 0.0;
  for (const auto& [cdn, link] : ingress) {
    auto claim = forecast_for(cdn);
    double w = claim ? std::max(*claim, 0.0) : 0.0;
    weight[cdn] = w;
    total += w;
  }
  std::map<CdnId, double> share;
  double renorm = 0.0;
  for (const auto& [cdn, w] : weight) {
    double s = total > 0.0 ? w / total : 1.0 / ingress.size();
    s = std::max(s, es.min_share);
    share[cdn] = s;
    renorm += s;
  }
  net::Network::Batch batch(network_);
  for (const auto& [cdn, link] : ingress) {
    double s = share[cdn] / renorm;
    egress_shares_[cdn] = s;
    network_.set_link_capacity(link, s * es.pool);
  }
}

void InfPController::run_provisioning() {
  const ProvisionConfig& pc = config_.provision;
  if (!pc.enabled || pc.step <= 0.0 || pc.max_capacity <= 0.0) return;
  const TimePoint now = sched_.now();
  for (LinkId link : access_links_) {
    if (!network_.link_up(link)) continue;
    const BitsPerSecond capacity = network_.link_capacity(link);
    auto pending = pending_orders_.find(link);
    // Capacity already committed: the live link plus any in-flight order.
    const BitsPerSecond provisioned =
        pending != pending_orders_.end() ? pending->second : capacity;
    const double windowed_util = monitor_->mean_utilization(link);
    double demand = windowed_util * capacity;

    if (pc.forecast_driven) {
      // Feed the smoother the freshest demand estimate available: the
      // store's mean carried rate over the trailing control period when a
      // store is attached, the instantaneous rate otherwise -- then order
      // against the projected demand, not just the current one.
      double sample = network_.link_utilization(link) * capacity;
      if (store_ != nullptr) {
        telemetry::StoreQuery q;
        q.metric = "link_rate";
        q.entity = link.value();
        q.t0 = now - config_.control_period;
        q.t1 = now;
        q.agg = telemetry::Agg::kMean;
        auto rows = store_->run(q);
        if (!rows.empty()) sample = rows.front().value;
      }
      forecaster_.observe(link.value(), now, sample);
      auto projected = forecaster_.forecast(link.value(), pc.horizon);
      demand = std::max(demand, sample);
      if (projected) demand = std::max(demand, *projected);
    } else if (windowed_util < pc.order_utilization) {
      continue;  // reactive: not sustained-hot yet, hold
    }

    const BitsPerSecond needed = demand * pc.headroom;
    if (needed <= provisioned) continue;
    const double steps = std::ceil((needed - provisioned) / pc.step);
    const BitsPerSecond target =
        std::min(pc.max_capacity, provisioned + steps * pc.step);
    if (target <= provisioned) continue;

    pending_orders_[link] = target;
    ++provision_order_count_;
    const char* reason = pc.forecast_driven ? "forecast" : "reactive";
    if (bus_ != nullptr)
      bus_->publish(sim::ProvisionEvent{now, self_, link, provisioned,
                                        target, pc.lead_time, "ordered",
                                        reason});
    sched_.schedule_at(now + pc.lead_time, [this, link, target, reason] {
      const BitsPerSecond from = network_.link_capacity(link);
      if (target > from) network_.set_link_capacity(link, target);
      auto it = pending_orders_.find(link);
      if (it != pending_orders_.end() && it->second <= target)
        pending_orders_.erase(it);
      if (bus_ != nullptr)
        bus_->publish(sim::ProvisionEvent{sched_.now(), self_, link, from,
                                          target, 0.0, "delivered", reason});
    });
  }
}

void InfPController::refresh_a2i() {
  TimePoint now = sched_.now();
  if (config_.robust_fetch) {
    for (auto& sub : subscriptions_) sub.fetcher->poll();
    remerge_a2i();
  } else {
    std::optional<core::A2IReport> merged;
    for (const auto& sub : subscriptions_) {
      ++naive_stats_.attempts;
      auto report = port_.fetch_a2i(sub.producer, now);
      if (!report) {
        ++naive_stats_.misses;
        continue;
      }
      ++naive_stats_.fresh_hits;
      merge_a2i(merged, std::move(*report));
    }
    latest_a2i_ = std::move(merged);
  }

  if (subscriptions_.empty()) return;
  if (config_.robust_fetch) {
    a2i_stale_ = true;
    for (const auto& sub : subscriptions_)
      if (!sub.fetcher->stale(now)) a2i_stale_ = false;
  } else {
    a2i_stale_ = !latest_a2i_ ||
                 now - latest_a2i_->generated_at >
                     config_.a2i_retry.freshness_deadline;
  }
  if (latest_a2i_)
    observe_a2i_serve(now - latest_a2i_->generated_at, a2i_stale_);
  // Graceful degradation: stale forecasts slow every egress knob down.
  // Gated on a finite freshness deadline so the default configuration is
  // bit-identical to the pre-fault controller.
  if (std::isfinite(config_.a2i_retry.freshness_deadline)) {
    double widening = a2i_stale_ ? std::max(1.0, config_.stale_widening) : 1.0;
    for (auto& [cdn, dwell] : egress_dwell_) dwell.set_widening(widening);
  }
}

void InfPController::remerge_a2i() {
  std::optional<core::A2IReport> merged;
  for (const auto& sub : subscriptions_) {
    const auto& report = sub.fetcher->report();
    if (!report) continue;
    merge_a2i(merged, *report);
  }
  if (merged) latest_a2i_ = std::move(merged);
}

telemetry::DeliveryHealthSnapshot InfPController::a2i_health() const {
  telemetry::DeliveryHealthSnapshot s = a2i_delivery_.snapshot();
  core::FetchStats fetches = naive_stats_;
  for (const auto& sub : subscriptions_) {
    fetches += sub.fetcher->stats();
    const core::ChannelStats& ch = port_.a2i_leg_stats(sub.producer);
    s.publishes += ch.published;
    s.deliveries += ch.delivered;
    s.drops += ch.dropped;
    s.duplicates += ch.duplicated;
  }
  s.fetch_attempts = fetches.attempts;
  s.retries = fetches.retries;
  s.fresh_hits = fetches.fresh_hits;
  s.stale_hits = fetches.stale_hits;
  s.misses = fetches.misses;
  return s;
}

core::I2AReport InfPController::build_i2a_report() const {
  core::I2AReport report;
  report.from = self_;
  report.generated_at = sched_.now();

  for (PeeringId pid : peering_.points_of_isp(isp_)) {
    const net::PeeringPoint& point = peering_.point(pid);
    core::PeeringStatus status;
    status.peering = pid;
    status.isp = isp_;
    status.cdn = point.cdn;
    status.capacity = network_.link_capacity(point.ingress_link);
    status.utilization = monitor_->mean_utilization(point.ingress_link);
    status.congested = monitor_->congested(point.ingress_link,
                                           config_.congested_utilization,
                                           config_.starved_fraction) ||
                       !network_.link_up(point.ingress_link);
    status.selected = peering_.selected(isp_, point.cdn) == pid;
    report.peerings.push_back(status);

    if (status.congested) {
      core::CongestionSignal signal;
      signal.isp = isp_;
      signal.scope = core::CongestionScope::kPeering;
      signal.peering = pid;
      signal.severity = std::clamp(
          (status.utilization - config_.access_alert_utilization) /
              (1.0 - config_.access_alert_utilization),
          0.0, 1.0);
      report.congestion.push_back(signal);
    }
  }

  for (LinkId lid : access_links_) {
    double util = monitor_->mean_utilization(lid);
    bool starved =
        monitor_->starved_fraction(lid) >= config_.starved_fraction;
    if (util >= config_.access_alert_utilization && starved) {
      core::CongestionSignal signal;
      signal.isp = isp_;
      signal.scope = core::CongestionScope::kAccess;
      signal.severity = std::clamp(
          (util - config_.access_alert_utilization) /
              (1.0 - config_.access_alert_utilization),
          0.0, 1.0);
      report.congestion.push_back(signal);
    }
  }

  for (const app::Cdn* cdn : operated_cdns_) {
    for (const auto& server : cdn->servers()) {
      core::ServerHint hint;
      hint.cdn = cdn->id();
      hint.server = server.id;
      hint.load = monitor_->tracks(server.egress)
                      ? monitor_->mean_utilization(server.egress)
                      : network_.link_utilization(server.egress);
      // Health check: degraded serving capacity marks the server offline in
      // the hint even though it technically still answers.
      auto nominal = nominal_capacity_.find(server.egress);
      bool healthy = nominal == nominal_capacity_.end() ||
                     network_.link_capacity(server.egress) >=
                         config_.server_health_fraction * nominal->second;
      hint.online = server.online && healthy;
      report.server_hints.push_back(hint);
    }
  }
  return report;
}

double InfPController::utilization(PeeringId point) const {
  return monitor_->mean_utilization(peering_.point(point).ingress_link);
}

std::optional<BitsPerSecond> InfPController::forecast_for(CdnId cdn) const {
  if (!latest_a2i_) return std::nullopt;
  BitsPerSecond total = 0.0;
  bool found = false;
  for (const auto& f : latest_a2i_->forecasts) {
    if (f.cdn != cdn) continue;
    if (f.isp.valid() && f.isp != isp_) continue;
    total += f.expected_rate;
    found = true;
  }
  if (!found) return std::nullopt;
  return total;
}

void InfPController::run_traffic_engineering() {
  // Group this ISP's peering points by CDN, preserving registration order.
  std::map<CdnId, std::vector<PeeringId>> by_cdn;
  for (PeeringId pid : peering_.points_of_isp(isp_))
    by_cdn[peering_.point(pid).cdn].push_back(pid);
  for (const auto& [cdn, candidates] : by_cdn) {
    if (candidates.size() < 2) continue;
    engineer_cdn(cdn, candidates);
  }
}

void InfPController::engineer_cdn(CdnId cdn,
                                  const std::vector<PeeringId>& candidates) {
  PeeringId current = peering_.selected(isp_, cdn);
  PeeringId preferred = preferred_.at(cdn);
  PeeringId target = current;
  const char* reason = "forecast-fit";

  if (eona_enabled_) {
    // EONA TE: place the CDN's *forecast* volume, not its momentary load.
    auto forecast = forecast_for(cdn);
    if (!forecast) return;  // no information, hold position
    BitsPerSecond needed = *forecast * config_.forecast_headroom;
    auto fits = [&](PeeringId pid) {
      return network_.link_capacity(peering_.point(pid).ingress_link) >=
             needed;
    };
    if (fits(preferred)) {
      target = preferred;
    } else if (!fits(current)) {
      // Smallest point that fits; otherwise the biggest available.
      PeeringId best_fit;
      BitsPerSecond best_cap = 0.0;
      PeeringId biggest;
      BitsPerSecond biggest_cap = -1.0;
      for (PeeringId pid : candidates) {
        BitsPerSecond cap =
            network_.link_capacity(peering_.point(pid).ingress_link);
        if (cap >= needed && (!best_fit.valid() || cap < best_cap)) {
          best_fit = pid;
          best_cap = cap;
        }
        if (cap > biggest_cap) {
          biggest = pid;
          biggest_cap = cap;
        }
      }
      target = best_fit.valid() ? best_fit : biggest;
    }
  } else {
    // Baseline TE: flee heat, drift home to the cheap point when idle.
    if (utilization(current) >= config_.flee_utilization) {
      PeeringId coolest;
      double coolest_util = 0.0;
      for (PeeringId pid : candidates) {
        if (pid == current) continue;
        double util = utilization(pid);
        if (!coolest.valid() || util < coolest_util) {
          coolest = pid;
          coolest_util = util;
        }
      }
      if (coolest.valid()) {
        target = coolest;
        reason = "flee-hot-peering";
      }
    } else if (current != preferred &&
               utilization(preferred) <= config_.return_utilization) {
      target = preferred;
      reason = "return-to-preferred";
    }
  }

  if (target == current) return;
  // Dampening applies to both worlds: the egress knob may only move once
  // per dwell period (§5's dampening ablation sweeps this).
  auto dwell = egress_dwell_.find(cdn);
  if (dwell != egress_dwell_.end() && !dwell->second.may_change(sched_.now()))
    return;
  select_egress(target, reason);
}

void InfPController::select_egress(PeeringId point, const char* reason) {
  const net::PeeringPoint& to = peering_.point(point);
  PeeringId current = peering_.selected(isp_, to.cdn);
  if (current == point) return;
  const net::PeeringPoint& from = peering_.point(current);
  peering_.select(point);
  std::size_t moved = migrate_flows(from, to);
  egress_traces_[to.cdn].record(sched_.now(), static_cast<int>(point.value()));
  auto dwell = egress_dwell_.find(to.cdn);
  if (dwell != egress_dwell_.end()) dwell->second.record_change(sched_.now());
  if (bus_ != nullptr)
    bus_->publish(sim::MigrationEvent{sched_.now(), self_, to.cdn, current,
                                      point, moved, reason});
}

std::size_t InfPController::migrate_flows(const net::PeeringPoint& from,
                                          const net::PeeringPoint& to) {
  // An egress shift moves every flow on the old ingress at once; batch the
  // reroutes so the data plane re-solves rates a single time.
  net::Network::Batch batch(network_);
  std::size_t moved = 0;
  for (FlowId fid : network_.flows_on(from.ingress_link)) {
    NodeId src = network_.flow_src(fid);
    NodeId dst = network_.flow_dst(fid);
    network_.reroute(fid, routing_.path_via_link(src, to.ingress_link, dst));
    ++reroute_count_;
    ++moved;
  }
  return moved;
}

const DecisionTrace& InfPController::egress_trace(CdnId cdn) const {
  auto it = egress_traces_.find(cdn);
  if (it == egress_traces_.end())
    throw NotFoundError("no egress trace for cdn " +
                        std::to_string(cdn.value()));
  return it->second;
}

}  // namespace eona::control
