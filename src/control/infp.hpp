// The infrastructure provider's control plane (an access ISP).
//
// Owns the ISP-side knobs: per-CDN peering-point selection (traffic
// engineering) -- and publishes the I2A looking glass: peering status,
// congestion attribution, and (when operating CDN infrastructure) server
// hints.
//
//  * Baseline TE  -- network metrics only: flees a hot peering point, and
//    drifts back to the *preferred* (cheap, local) point as soon as it
//    looks idle. Blind to why the load moved -- one half of the Fig 5
//    oscillation.
//  * EONA TE      -- consumes A2I traffic forecasts: picks the peering
//    point that actually fits the application's expected volume, holds it
//    (dampened), and thereby ends the cycle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/cdn.hpp"
#include "control/dampening.hpp"
#include "control/forecaster.hpp"
#include "control/link_monitor.hpp"
#include "control/oscillation.hpp"
#include "eona/exchange.hpp"
#include "eona/messages.hpp"
#include "eona/robust.hpp"
#include "net/network.hpp"
#include "net/peering.hpp"
#include "net/routing.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/column_store.hpp"
#include "telemetry/delivery_health.hpp"

namespace eona::control {

/// Elastic access-capacity provisioning (E16). Disabled by default so every
/// pre-existing configuration is bit-identical. When enabled, the InfP
/// watches each access link's demand and orders capacity in `step`
/// increments up to `max_capacity`; an order takes `lead_time` to land
/// (turning up ports / wavelengths is not instant -- that lead time is
/// exactly what forecasting buys back).
struct ProvisionConfig {
  bool enabled = false;
  /// true: trend per-link demand (Holt linear smoothing over the telemetry
  /// store's link_rate rows) and order ahead of the projected need.
  /// false: reactive -- order only once windowed utilization is already hot.
  bool forecast_driven = false;
  BitsPerSecond step = 0.0;          ///< capacity increment per order
  BitsPerSecond max_capacity = 0.0;  ///< provisioning ceiling
  Duration lead_time = 15.0;         ///< order-to-delivery delay
  double order_utilization = 0.85;   ///< reactive trigger (windowed mean)
  double headroom = 1.15;            ///< provisioned / demand target ratio
  Duration horizon = 30.0;           ///< forecast projection horizon
};

struct InfPConfig {
  Duration control_period = 30.0;
  // --- link monitoring (windowed means; see LinkMonitor) ---
  Duration sample_period = 1.0;
  std::size_t window_samples = 30;
  // --- congestion detection (thresholds on windowed means) ---
  double congested_utilization = 0.85;
  double starved_fraction = 0.30;          ///< min starved share to call it
  double access_alert_utilization = 0.80;  ///< access severity starts here
  // --- baseline TE ---
  double flee_utilization = 0.85;    ///< leave a peering point above this
  double return_utilization = 0.40;  ///< return to preferred below this
  // --- EONA TE ---
  double forecast_headroom = 1.15;  ///< required capacity / forecast ratio
  Duration egress_dwell = 0.0;      ///< dampening on the egress knob
  // --- server health checks (operated CDNs) ---
  /// A server whose current serving capacity has fallen below this fraction
  /// of its nominal capacity is hinted offline (an idle degraded box would
  /// otherwise advertise load ~0 and lure the fleet straight back).
  double server_health_fraction = 0.5;
  // --- A2I robustness (§5 graceful degradation) ---
  /// When false, a tick whose A2I fetches all miss clears the forecast view
  /// (EONA TE then holds position for lack of information).
  bool robust_fetch = true;
  /// Retry/backoff + freshness policy for A2I fetches; default = naive.
  core::RetryPolicy a2i_retry{};
  /// Dwell multiplier on every egress knob while all A2I data is stale.
  /// Only active when a2i_retry.freshness_deadline is finite.
  double stale_widening = 2.0;
  /// Backoff schedule for broker re-registration after an exchange crash
  /// (armed automatically when the controller is bound to an exchange).
  core::ReattachPolicy reattach{};
  // --- elastic capacity provisioning (E16; off by default) ---
  ProvisionConfig provision{};
  ForecastConfig forecast{};  ///< smoothing for the provisioning forecaster
  // --- egress-share division (federation; off by default) ---
  /// When enabled, each control tick divides `pool` of CDN-ingress capacity
  /// across this ISP's peering ingress links, proportional to the per-CDN
  /// A2I traffic forecasts (equal split when no forecasts are visible).
  /// This is the resource a lying tenant can steal by over-reporting -- and
  /// the broker's egress quota clamp is what contains the lie.
  struct EgressShareConfig {
    bool enabled = false;
    BitsPerSecond pool = 0.0;  ///< total ingress capacity to divide
    double min_share = 0.05;   ///< floor fraction per CDN (starvation guard)
  };
  EgressShareConfig egress_share{};
};

/// ISP control plane; see file header.
class InfPController {
 public:
  InfPController(sim::Scheduler& sched, net::Network& network,
                 const net::Routing& routing, net::PeeringBook& peering,
                 IspId isp, ProviderId self, std::vector<LinkId> access_links,
                 InfPConfig config = {});

  InfPController(const InfPController&) = delete;
  InfPController& operator=(const InfPController&) = delete;
  ~InfPController();

  // --- EONA wiring ---
  /// Bind this controller to its exchange identity. All I2A publishes and
  /// A2I fetches flow through the broker; unbound controllers (bare unit
  /// fixtures) skip publishing and cannot subscribe. Binding also arms the
  /// endpoint's broker re-registration chain (config().reattach) with a
  /// seed derived from the tenant identity alone.
  void bind_exchange(core::ExchangeEndpoint port);
  [[nodiscard]] const core::ExchangeEndpoint& port() const { return port_; }
  /// Subscribe to an AppP tenant's A2I leg on the exchange (the broker
  /// holds the bearer token; the leg must have been wired).
  void subscribe_a2i(ProviderId appp);
  /// Drop the subscription to a departing AppP tenant (mid-run churn): its
  /// fetcher dies, its contribution leaves the merged A2I view, and its
  /// fetch counters are folded into the controller's history.
  void unsubscribe_a2i(ProviderId appp);

  /// Attach the world's event bus: egress migrations are published with
  /// attributed reasons, and the a2i delivery-health accumulator is rewired
  /// as a ReportServedEvent subscriber (identical update sequence to the
  /// direct call it replaces).
  void set_event_bus(sim::EventBus* bus);
  void set_eona_enabled(bool enabled) { eona_enabled_ = enabled; }
  [[nodiscard]] bool eona_enabled() const { return eona_enabled_; }
  [[nodiscard]] const std::optional<core::A2IReport>& latest_a2i() const {
    return latest_a2i_;
  }

  /// True while no A2I subscription holds data within the freshness
  /// deadline (always false before the first tick).
  [[nodiscard]] bool a2i_stale() const { return a2i_stale_; }

  /// Combined delivery-health snapshot of the A2I consumption path.
  [[nodiscard]] telemetry::DeliveryHealthSnapshot a2i_health() const;

  /// CDNs whose servers this InfP operates (emits server hints for them).
  void attach_cdn(const app::Cdn* cdn);

  // --- control loop ---
  void start();
  void stop();
  void tick();

  /// Current I2A report contents (exposed for tests / benches).
  [[nodiscard]] core::I2AReport build_i2a_report() const;

  /// Force a specific egress selection (scenario setup); reroutes live
  /// flows. `reason` labels the MigrationEvent emitted on the bus.
  void select_egress(PeeringId point, const char* reason = "operator");

  /// Decision history of the egress knob for a CDN.
  [[nodiscard]] const DecisionTrace& egress_trace(CdnId cdn) const;

  [[nodiscard]] IspId isp() const { return isp_; }
  [[nodiscard]] ProviderId id() const { return self_; }
  [[nodiscard]] const InfPConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t ticks() const { return tick_count_; }
  [[nodiscard]] std::uint64_t reroutes() const { return reroute_count_; }
  /// Immediate fault-driven egress re-steers (EONA self-healing path).
  [[nodiscard]] std::uint64_t failovers() const { return failover_count_; }

  /// The windowed link statistics the ISP sees (tests introspect it).
  [[nodiscard]] const LinkMonitor& monitor() const { return *monitor_; }

  /// Attach a read-only telemetry store: forecast-driven provisioning then
  /// trends the store's link_rate rows instead of raw instantaneous
  /// utilization. Optional -- provisioning works (coarser) without it.
  void attach_store(const telemetry::ColumnStore* store) { store_ = store; }

  /// The per-link demand forecaster (tests / benches introspect it).
  [[nodiscard]] const Forecaster& forecaster() const { return forecaster_; }
  /// Capacity orders placed by elastic provisioning so far.
  [[nodiscard]] std::uint64_t provision_orders() const {
    return provision_order_count_;
  }

  /// Current share fraction of the egress pool assigned to `cdn`'s ingress
  /// link (0 before the first sharing tick or when sharing is disabled).
  [[nodiscard]] double egress_share_of(CdnId cdn) const {
    auto it = egress_shares_.find(cdn);
    return it == egress_shares_.end() ? 0.0 : it->second;
  }

 private:
  void refresh_a2i();
  /// Rebuild latest_a2i_ from the robust fetchers' last-known-good reports.
  void remerge_a2i();
  void run_traffic_engineering();
  /// Elastic access-capacity control; see ProvisionConfig.
  void run_provisioning();
  /// Forecast-proportional division of the CDN-ingress pool; see
  /// EgressShareConfig.
  void run_egress_sharing();
  void engineer_cdn(CdnId cdn, const std::vector<PeeringId>& candidates);
  /// Moves live flows from `from`'s ingress link onto paths via `to`;
  /// returns how many flows moved.
  std::size_t migrate_flows(const net::PeeringPoint& from,
                            const net::PeeringPoint& to);
  /// Bus-delivered fault: broker faults are forwarded to the exchange
  /// endpoint (starting its reattach chain); for link faults, clear the
  /// affected monitor window (both modes), and in EONA mode re-steer
  /// sectors off a dead selected peering point immediately instead of
  /// waiting for the next tick.
  void on_fault(const sim::FaultEvent& e);
  /// Best surviving peering point for `cdn`: the preferred point when its
  /// ingress is up, else the first-registered live candidate; invalid id
  /// when every point is dark.
  [[nodiscard]] PeeringId pick_failover_target(CdnId cdn) const;
  /// Record the report age served to control logic this epoch: published on
  /// the bus (accumulator subscribed) or fed directly when no bus attached.
  void observe_a2i_serve(Duration age, bool stale);
  [[nodiscard]] double utilization(PeeringId point) const;
  /// Forecast rate the AppPs intend to send us from `cdn` (A2I); nullopt
  /// when no forecast is available.
  [[nodiscard]] std::optional<BitsPerSecond> forecast_for(CdnId cdn) const;

  sim::Scheduler& sched_;
  net::Network& network_;
  const net::Routing& routing_;
  net::PeeringBook& peering_;
  IspId isp_;
  ProviderId self_;
  std::vector<LinkId> access_links_;
  InfPConfig config_;

  core::ExchangeEndpoint port_;
  struct A2ISubscription {
    ProviderId producer;  ///< the AppP tenant whose leg this subscribes
    std::unique_ptr<core::RobustFetcher<core::A2IReport>> fetcher;
  };
  std::vector<A2ISubscription> subscriptions_;
  std::optional<core::A2IReport> latest_a2i_;
  bool a2i_stale_ = false;
  telemetry::DeliveryHealth a2i_delivery_;
  core::FetchStats naive_stats_;  ///< fetch counters in non-robust mode
  sim::EventBus* bus_ = nullptr;

  std::vector<const app::Cdn*> operated_cdns_;
  /// Nominal (healthy) capacity per operated server egress, snapshotted at
  /// attach time for health checking.
  std::map<LinkId, BitsPerSecond> nominal_capacity_;
  bool eona_enabled_ = false;
  std::map<CdnId, DecisionTrace> egress_traces_;
  std::map<CdnId, DwellTimer> egress_dwell_;
  std::map<CdnId, PeeringId> preferred_;  ///< first-registered = cheapest
  std::uint64_t tick_count_ = 0;
  std::uint64_t reroute_count_ = 0;
  std::uint64_t failover_count_ = 0;
  // --- elastic provisioning state ---
  const telemetry::ColumnStore* store_ = nullptr;
  Forecaster forecaster_;
  std::map<LinkId, BitsPerSecond> pending_orders_;  ///< in-flight targets
  std::uint64_t provision_order_count_ = 0;
  std::map<CdnId, double> egress_shares_;  ///< last sharing division
  std::unique_ptr<LinkMonitor> monitor_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace eona::control
