#include "control/energy.hpp"

#include <algorithm>

namespace eona::control {

EnergyManager::EnergyManager(sim::Scheduler& sched, net::Network& network,
                             app::Cdn& cdn, ProviderId self,
                             EnergyConfig config)
    : sched_(sched),
      network_(network),
      cdn_(cdn),
      self_(self),
      config_(config) {
  EONA_EXPECTS(config_.min_online >= 1);
  EONA_EXPECTS(config_.scale_down_load < config_.scale_up_load);
  saved_capacity_.reserve(cdn_.server_count());
  for (const auto& server : cdn_.servers())
    saved_capacity_.push_back(network_.link_capacity(server.egress));
  record_online();
}

EnergyManager::~EnergyManager() = default;

void EnergyManager::subscribe_a2i(core::A2IEndpoint* endpoint,
                                  std::string token) {
  EONA_EXPECTS(endpoint != nullptr);
  subscriptions_.push_back(A2ISubscription{endpoint, std::move(token)});
}

void EnergyManager::start() {
  EONA_EXPECTS(task_ == nullptr);
  task_ = std::make_unique<sim::PeriodicTask>(sched_, config_.control_period,
                                              [this] { tick(); });
}

void EnergyManager::stop() { task_.reset(); }

void EnergyManager::refresh_a2i() {
  for (const auto& sub : subscriptions_) {
    auto report = sub.endpoint->query(self_, sub.token, sched_.now());
    if (report) latest_a2i_ = std::move(report);
  }
}

std::optional<double> EnergyManager::reported_buffering() const {
  if (!latest_a2i_) return std::nullopt;
  double weighted = 0.0;
  std::uint64_t sessions = 0;
  for (const auto& g : latest_a2i_->groups) {
    if (g.cdn != cdn_.id()) continue;
    if (g.server.valid()) continue;  // use CDN-level groups only
    weighted += g.mean_buffering_ratio * static_cast<double>(g.sessions);
    sessions += g.sessions;
  }
  if (sessions == 0) return std::nullopt;
  return weighted / static_cast<double>(sessions);
}

std::optional<double> EnergyManager::reported_engagement() const {
  if (!latest_a2i_) return std::nullopt;
  double weighted = 0.0;
  std::uint64_t sessions = 0;
  for (const auto& g : latest_a2i_->groups) {
    if (g.cdn != cdn_.id()) continue;
    if (g.server.valid()) continue;
    weighted += g.mean_engagement * static_cast<double>(g.sessions);
    sessions += g.sessions;
  }
  if (sessions == 0) return std::nullopt;
  return weighted / static_cast<double>(sessions);
}

double EnergyManager::mean_online_load() const {
  double total = 0.0;
  std::size_t online = 0;
  for (const auto& server : cdn_.servers()) {
    if (!server.online) continue;
    total += network_.link_utilization(server.egress);
    ++online;
  }
  return online == 0 ? 0.0 : total / static_cast<double>(online);
}

void EnergyManager::tick() {
  refresh_a2i();
  double load = mean_online_load();

  if (eona_enabled_) {
    auto buffering = reported_buffering();
    auto engagement = reported_engagement();
    // Guardrail first: measured experience trumps load heuristics.
    bool qoe_bad =
        (buffering && *buffering > config_.qoe_buffering_limit) ||
        (engagement && *engagement < config_.qoe_engagement_floor);
    if (qoe_bad) {
      wake_one();
      return;
    }
    bool qoe_comfortable =
        (!buffering || *buffering <= config_.qoe_buffering_limit * 0.5) &&
        (!engagement || *engagement >= config_.qoe_engagement_floor +
                                           config_.qoe_engagement_headroom);
    if (load >= config_.scale_up_load) {
      wake_one();
    } else if (load <= config_.scale_down_load && qoe_comfortable) {
      // Only shed capacity while experience is comfortably healthy.
      shut_down_one();
    }
    return;
  }

  // Baseline: load thresholds alone.
  if (load >= config_.scale_up_load)
    wake_one();
  else if (load <= config_.scale_down_load)
    shut_down_one();
}

void EnergyManager::shut_down_one() {
  if (cdn_.online_count() <= config_.min_online) return;
  // Shed the most lightly loaded online server (its sessions suffer least).
  ServerId victim;
  double victim_load = 0.0;
  for (const auto& server : cdn_.servers()) {
    if (!server.online) continue;
    double load = network_.link_utilization(server.egress);
    if (!victim.valid() || load < victim_load) {
      victim = server.id;
      victim_load = load;
    }
  }
  if (!victim.valid()) return;
  cdn_.set_online(victim, false);
  // Powering off forfeits the server's RAM cache: when it wakes it serves
  // misses through the origin until it re-warms -- a QoE cost invisible to
  // the egress-load metric this controller steers by.
  cdn_.clear_cache(victim);
  network_.set_link_capacity(cdn_.server(victim).egress, 0.0);
  ++shutdowns_;
  record_online();
}

void EnergyManager::wake_one() {
  ServerId sleeper;
  for (const auto& server : cdn_.servers()) {
    if (!server.online) {
      sleeper = server.id;
      break;
    }
  }
  if (!sleeper.valid()) return;
  cdn_.set_online(sleeper, true);
  network_.set_link_capacity(cdn_.server(sleeper).egress,
                             saved_capacity_[sleeper.value()]);
  ++wakes_;
  record_online();
}

void EnergyManager::record_online() {
  online_series_.record(sched_.now(),
                        static_cast<double>(cdn_.online_count()));
}

double EnergyManager::server_seconds_saved(TimePoint now) const {
  if (online_series_.empty() || now <= 0.0) return 0.0;
  double total = static_cast<double>(cdn_.server_count());
  double mean_online = online_series_.time_weighted_mean(0.0, now);
  return (total - mean_online) * now;
}

}  // namespace eona::control
